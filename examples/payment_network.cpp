// Payment-network example: a synthetic economy runs on Algorand for several
// rounds — random payments every round, one attempted double-spend — and we
// audit conservation of money and cross-node agreement at the end.
//
//   $ ./examples/payment_network
#include <cstdio>

#include "src/common/rng.h"
#include "src/core/sim_harness.h"

using namespace algorand;

int main() {
  HarnessConfig cfg;
  cfg.n_nodes = 25;
  cfg.stake_per_user = 10000;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 64 * 1024;
  cfg.latency = HarnessConfig::Latency::kCity;
  cfg.rng_seed = 7;

  SimHarness net(cfg);
  DeterministicRng workload(99, "payments");

  const uint64_t kTotalMoney = cfg.n_nodes * cfg.stake_per_user;
  printf("payment network: %zu users, %llu total microalgos\n\n", net.node_count(),
         static_cast<unsigned long long>(kTotalMoney));

  // Pre-load a batch of random payments (clients submit via gossip; here we
  // inject into every pool). Track nonces per sender.
  std::vector<uint64_t> nonces(cfg.n_nodes, 0);
  std::vector<Transaction> submitted;
  for (int i = 0; i < 40; ++i) {
    size_t from = static_cast<size_t>(workload.UniformU64(cfg.n_nodes));
    size_t to = static_cast<size_t>(workload.UniformU64(cfg.n_nodes));
    if (to == from) {
      to = (to + 1) % cfg.n_nodes;
    }
    uint64_t amount = 1 + workload.UniformU64(500);
    submitted.push_back(net.SubmitPayment(from, to, amount, nonces[from]++));
  }

  // One deliberate double-spend: user 5 signs two conflicting transactions
  // with the same nonce.
  Transaction ds_a = net.SubmitPayment(5, 6, 9000, nonces[5]);
  Transaction ds_b = net.SubmitPayment(5, 7, 9000, nonces[5]);
  printf("injected 40 random payments and a double-spend pair from user5\n");

  net.Start();
  if (!net.RunRounds(4, Hours(2))) {
    printf("network failed to complete 4 rounds\n");
    return 1;
  }

  const Ledger& ledger = net.node(0).ledger();
  size_t confirmed = 0;
  for (const Transaction& tx : submitted) {
    confirmed += ledger.IsConfirmed(tx.Id());
  }
  printf("\nconfirmed %zu/40 random payments in %llu rounds\n", confirmed,
         static_cast<unsigned long long>(ledger.chain_length() - 1));

  bool a = ledger.IsConfirmed(ds_a.Id());
  bool b = ledger.IsConfirmed(ds_b.Id());
  printf("double-spend: txA %s, txB %s -> %s\n", a ? "confirmed" : "rejected",
         b ? "confirmed" : "rejected",
         (a != b) ? "exactly one accepted (correct)" : "UNEXPECTED");

  // Audit: money is conserved and all nodes agree on every balance.
  uint64_t total = ledger.accounts().total_weight();
  printf("money conserved: %llu == %llu -> %s\n", static_cast<unsigned long long>(total),
         static_cast<unsigned long long>(kTotalMoney),
         total == kTotalMoney ? "yes" : "NO (fees are burned only if set)");

  bool agree = true;
  for (size_t i = 1; i < net.node_count(); ++i) {
    for (size_t u = 0; u < cfg.n_nodes; ++u) {
      const PublicKey& pk = net.genesis().keys[u].public_key;
      if (net.node(i).ledger().accounts().BalanceOf(pk) != ledger.accounts().BalanceOf(pk)) {
        agree = false;
      }
    }
  }
  printf("all %zu nodes agree on every balance: %s\n", net.node_count(), agree ? "yes" : "NO");

  auto safety = net.CheckSafety();
  printf("safety invariant: %s\n", safety.ok ? "holds" : safety.violation.c_str());
  return (a != b) && agree && safety.ok ? 0 : 1;
}
