// check_cli: command-line driver for the BA* schedule-exploring model checker
// (src/check). Five modes:
//
//   --mode=exhaustive   DFS over the depth-bounded choice tree
//       $ check_cli --mode=exhaustive --nodes=4 --rounds=2 --depth=12 --max-schedules=10000
//   --mode=random       seeded randomized exploration (the overnight sweep)
//       $ check_cli --mode=random --schedules=500 --seed=42 --adv=4 --crashes=1
//   --mode=scenario     named attack scenarios (--scenario=NAME, --list)
//   --mode=replay       re-run a counterexample artifact, compare fingerprints
//   --mode=minimize     delta-minimize a counterexample artifact in place
//
// On any safety violation the offending schedule is delta-minimized and
// written to --counterexample-dir (default ".") as check_counterexample.txt,
// replayable with --mode=replay --trace=FILE.
//
// Exit codes: 0 = clean / scenario passed; 1 = safety violation found or
// scenario failed; 2 = usage error; 3 = replay fingerprint mismatch.
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/check/model_checker.h"
#include "src/check/scenarios.h"

using namespace algorand;

namespace {

struct CliOptions {
  std::string mode = "exhaustive";
  size_t nodes = 4;
  uint64_t rounds = 2;
  uint64_t seed = 7;
  uint64_t explore_seed = 42;       // RNG seed for --mode=random.
  size_t depth = 12;
  double window_ms = 5;
  size_t max_candidates = 3;
  uint64_t max_schedules = 10000;   // Exhaustive cap (0 = full tree).
  uint64_t schedules = 200;         // Random-mode batch size.
  size_t adv = 0;                   // Adversary decisions per schedule.
  double adv_delay_ms = 250;
  size_t crashes = 0;               // Crash/restart events per schedule.
  double malicious = 0.0;
  size_t grinders = 0;
  bool seed_bug = false;            // Install the test-only forced-final bug.
  std::string trace_file;           // Artifact for replay/minimize.
  std::string counterexample_dir = ".";
  std::string scenario;
  bool list = false;
  bool help = false;
};

bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

void PrintHelp() {
  printf(
      "check_cli - BA* schedule-exploring model checker\n\n"
      "  --mode=MODE            exhaustive | random | scenario | replay | minimize\n"
      "  --nodes=N              deployment size (default 4)\n"
      "  --rounds=N             rounds per schedule (default 2)\n"
      "  --seed=N               harness seed (default 7)\n"
      "  --explore-seed=N       RNG seed for --mode=random (default 42)\n"
      "  --depth=N              schedule-depth bound / max choice points (default 12)\n"
      "  --window-ms=F          delivery concurrency window (default 5)\n"
      "  --max-candidates=N     events racing per choice point (default 3)\n"
      "  --max-schedules=N      exhaustive-mode cap, 0 = whole tree (default 10000)\n"
      "  --schedules=N          random-mode batch size (default 200)\n"
      "  --adv=N                adversary drop/delay decisions per schedule (default 0)\n"
      "  --adv-delay-ms=F       delay applied by 'delay' decisions (default 250)\n"
      "  --crashes=N            crash/restart injections per schedule (default 0)\n"
      "  --malicious=F          fraction of equivocating nodes (default 0)\n"
      "  --grinders=N           seed-grinding proposers (default 0)\n"
      "  --seed-bug             install the test-only forced-final safety bug\n"
      "  --trace=FILE           counterexample artifact for replay/minimize\n"
      "  --counterexample-dir=D where violations are dumped (default .)\n"
      "  --scenario=NAME        scenario to run (--list to enumerate)\n"
      "  --list                 list scenarios\n");
}

CliOptions Parse(int argc, char** argv) {
  CliOptions opt;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--help") == 0) {
      opt.help = true;
    } else if (strcmp(argv[i], "--list") == 0) {
      opt.list = true;
    } else if (strcmp(argv[i], "--seed-bug") == 0) {
      opt.seed_bug = true;
    } else if (ParseFlag(argc, argv, &i, "mode", &v)) {
      opt.mode = v;
    } else if (ParseFlag(argc, argv, &i, "nodes", &v)) {
      opt.nodes = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "seed", &v)) {
      opt.seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "explore-seed", &v)) {
      opt.explore_seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "depth", &v)) {
      opt.depth = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "window-ms", &v)) {
      opt.window_ms = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "max-candidates", &v)) {
      opt.max_candidates = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "max-schedules", &v)) {
      opt.max_schedules = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "schedules", &v)) {
      opt.schedules = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "adv", &v)) {
      opt.adv = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "adv-delay-ms", &v)) {
      opt.adv_delay_ms = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "crashes", &v)) {
      opt.crashes = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "malicious", &v)) {
      opt.malicious = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "grinders", &v)) {
      opt.grinders = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "trace", &v)) {
      opt.trace_file = v;
    } else if (ParseFlag(argc, argv, &i, "counterexample-dir", &v)) {
      opt.counterexample_dir = v;
    } else if (ParseFlag(argc, argv, &i, "scenario", &v)) {
      opt.scenario = v;
    } else {
      fprintf(stderr, "unknown flag: %s (try --help)\n", argv[i]);
      exit(2);
    }
  }
  return opt;
}

CheckConfig ConfigFrom(const CliOptions& opt) {
  CheckConfig cfg;
  cfg.n_nodes = opt.nodes;
  cfg.rounds = opt.rounds;
  cfg.harness_seed = opt.seed;
  cfg.window = static_cast<SimTime>(opt.window_ms * kMillisecond);
  cfg.max_candidates = opt.max_candidates;
  cfg.max_choice_points = opt.depth;
  cfg.adversary_max_decisions = opt.adv;
  cfg.adversary_delay = static_cast<SimTime>(opt.adv_delay_ms * kMillisecond);
  cfg.max_crash_events = opt.crashes;
  cfg.malicious_fraction = opt.malicious;
  cfg.grinding_count = opt.grinders;
  cfg.seeded_bug = opt.seed_bug;
  return cfg;
}

// Minimizes and dumps a violating schedule; returns the artifact path.
std::string DumpCounterexample(ModelChecker& checker, const ScheduleOutcome& violation,
                               const std::string& dir) {
  printf("violating trace (%zu choices): %s\n", violation.trace.choices.size(),
         violation.trace.Serialize().c_str());
  for (const std::string& v : violation.violations) {
    printf("  VIOLATION: %s\n", v.c_str());
  }
  ChoiceTrace minimized = checker.Minimize(violation.trace);
  ScheduleOutcome replay = checker.RunOne(minimized);
  printf("minimized to %zu choices: %s\n", minimized.choices.size(),
         minimized.Serialize().c_str());
  const std::string path = dir + "/check_counterexample.txt";
  if (ModelChecker::WriteCounterexample(path, checker.config(), replay)) {
    printf("counterexample written to %s\n", path.c_str());
  } else {
    fprintf(stderr, "failed to write %s\n", path.c_str());
  }
  return path;
}

int RunExplore(const CliOptions& opt) {
  ModelChecker checker(ConfigFrom(opt));
  const bool exhaustive = opt.mode == "exhaustive";
  auto progress = [](const ModelChecker::ExploreResult& r) {
    printf("  ... %" PRIu64 " schedules, %" PRIu64 " violations, %" PRIu64 " incomplete\n",
           r.schedules, r.violations, r.incomplete);
    fflush(stdout);
  };
  const auto start = std::chrono::steady_clock::now();
  ModelChecker::ExploreResult res =
      exhaustive ? checker.RunExhaustive(opt.max_schedules, progress)
                 : checker.RunRandom(opt.schedules, opt.explore_seed, progress);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  printf("%s exploration: %" PRIu64 " schedules (%.1f/s), %" PRIu64 " violations, %" PRIu64
         " incomplete%s\n",
         exhaustive ? "exhaustive" : "random", res.schedules,
         secs > 0 ? static_cast<double>(res.schedules) / secs : 0.0, res.violations,
         res.incomplete, res.exhausted ? ", tree exhausted" : "");
  if (res.first_violation) {
    DumpCounterexample(checker, *res.first_violation, opt.counterexample_dir);
    return 1;
  }
  return 0;
}

int RunReplay(const CliOptions& opt) {
  auto ce = ModelChecker::ReadCounterexample(opt.trace_file);
  if (!ce) {
    fprintf(stderr, "cannot read counterexample %s\n", opt.trace_file.c_str());
    return 2;
  }
  ModelChecker checker(ce->config);
  ScheduleOutcome out = checker.RunOne(ce->trace);
  const std::string fingerprint = out.Fingerprint();
  printf("replayed %zu choices: %s\n", ce->trace.choices.size(), fingerprint.c_str());
  if (out.diverged) {
    fprintf(stderr, "REPLAY DIVERGED: run presented different choice points than recorded\n");
    return 3;
  }
  if (fingerprint != ce->fingerprint) {
    fprintf(stderr, "FINGERPRINT MISMATCH\n  recorded: %s\n  replayed: %s\n",
            ce->fingerprint.c_str(), fingerprint.c_str());
    return 3;
  }
  printf("fingerprint matches the recorded run bit-for-bit\n");
  return out.safety_ok ? 0 : 1;
}

int RunMinimize(const CliOptions& opt) {
  auto ce = ModelChecker::ReadCounterexample(opt.trace_file);
  if (!ce) {
    fprintf(stderr, "cannot read counterexample %s\n", opt.trace_file.c_str());
    return 2;
  }
  ModelChecker checker(ce->config);
  ChoiceTrace minimized = checker.Minimize(ce->trace);
  ScheduleOutcome out = checker.RunOne(minimized);
  printf("minimized %zu -> %zu choices: %s\n", ce->trace.choices.size(),
         minimized.choices.size(), minimized.Serialize().c_str());
  if (out.safety_ok) {
    fprintf(stderr, "minimized trace no longer violates; keeping original artifact\n");
    return 1;
  }
  ModelChecker::WriteCounterexample(opt.trace_file, ce->config, out);
  printf("artifact %s rewritten\n", opt.trace_file.c_str());
  return 0;
}

int RunScenarioMode(const CliOptions& opt) {
  if (opt.list || opt.scenario.empty()) {
    printf("scenarios:\n");
    for (const ScenarioInfo& info : ListScenarios()) {
      printf("  %-24s %s\n", info.name, info.description);
    }
    return opt.list ? 0 : 2;
  }
  auto result = RunScenarioByName(opt.scenario);
  if (!result) {
    fprintf(stderr, "unknown scenario %s (try --list)\n", opt.scenario.c_str());
    return 2;
  }
  printf("%s", result->detail.c_str());
  printf("scenario %s: %s\n", opt.scenario.c_str(), result->pass ? "PASS" : "FAIL");
  return result->pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt = Parse(argc, argv);
  if (opt.help) {
    PrintHelp();
    return 0;
  }
  if (opt.mode == "exhaustive" || opt.mode == "random") {
    return RunExplore(opt);
  }
  if (opt.mode == "replay") {
    return RunReplay(opt);
  }
  if (opt.mode == "minimize") {
    return RunMinimize(opt);
  }
  if (opt.mode == "scenario" || opt.list) {
    return RunScenarioMode(opt);
  }
  fprintf(stderr, "unknown mode %s (try --help)\n", opt.mode.c_str());
  return 2;
}
