// Catch-up example (§8.3): a brand-new user joins after the network has been
// running, downloads the block history with per-round certificates from an
// untrusted server node, and validates everything from genesis — including
// rejecting a tampered history.
//
//   $ ./examples/catchup_node
#include <cstdio>

#include "src/core/catchup.h"
#include "src/core/sim_harness.h"

using namespace algorand;

int main() {
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.rng_seed = 5;

  SimHarness net(cfg);
  net.SubmitPayment(1, 2, 400, 0);
  net.Start();
  if (!net.RunRounds(5, Hours(2))) {
    printf("network failed to run\n");
    return 1;
  }

  // The "server" hands over its history. The new user trusts only the
  // genesis configuration (public keys + initial stakes + seed0).
  const Node& server = net.node(4);
  std::vector<Block> blocks;
  std::vector<Certificate> certs;
  for (uint64_t r = 1; r < server.ledger().chain_length(); ++r) {
    if (!server.certificates().count(r)) {
      break;
    }
    blocks.push_back(server.ledger().BlockAtRound(r));
    certs.push_back(server.certificates().at(r));
  }
  uint64_t cert_bytes = 0;
  for (const Certificate& c : certs) {
    cert_bytes += c.WireSize();
  }
  printf("downloaded %zu blocks + certificates (%llu cert bytes, %.0f B/round)\n", blocks.size(),
         static_cast<unsigned long long>(cert_bytes),
         static_cast<double>(cert_bytes) / static_cast<double>(certs.size()));

  CatchupResult result =
      CatchupFromGenesis(net.genesis().config, cfg.params, blocks, certs, net.vrf(), net.signer());
  if (!result.ok) {
    printf("catch-up failed: %s\n", result.error.c_str());
    return 1;
  }
  printf("verified %llu rounds from genesis; tip %s...\n",
         static_cast<unsigned long long>(result.verified_rounds),
         result.ledger->tip_hash().ToHex().substr(0, 16).c_str());

  // Upgrade to finality with the server's most recent final-step certificate.
  const Certificate* final_cert = nullptr;
  for (auto it = server.final_certificates().rbegin(); it != server.final_certificates().rend();
       ++it) {
    if (it->first < result.ledger->next_round()) {
      final_cert = &it->second;
      break;
    }
  }
  if (final_cert != nullptr) {
    CatchupResult final_result = CatchupFromGenesis(net.genesis().config, cfg.params, blocks,
                                                    certs, net.vrf(), net.signer(), final_cert);
    printf("final-step certificate for round %llu: %s\n",
           static_cast<unsigned long long>(final_cert->round),
           final_result.ok ? "verified -> chain prefix is FINAL" : final_result.error.c_str());
  }

  // The new user's state matches the running network's.
  bool match = result.ledger->tip_hash() == server.ledger().tip_hash();
  printf("state matches the live network: %s\n", match ? "yes" : "NO");

  // An adversarial server cannot forge history: flip one byte in a block.
  auto forged = blocks;
  forged[1].padding_digest[0] ^= 1;
  CatchupResult reject =
      CatchupFromGenesis(net.genesis().config, cfg.params, forged, certs, net.vrf(), net.signer());
  printf("tampered history rejected: %s (%s)\n", reject.ok ? "NO -- BUG" : "yes",
         reject.error.c_str());

  return match && !reject.ok ? 0 : 1;
}
