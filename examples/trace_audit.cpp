// trace_audit: offline safety audit (and optional waterfall) over a trace
// JSONL dump — the post-run CI gate behind the live SafetyAuditor.
//
//   $ ./examples/trace_audit run.trace.jsonl
//   $ ./examples/trace_audit --step-threshold=68.5 --final-threshold=222 \
//         --expect-equivocation run.trace.jsonl
//
// Exit codes: 0 = clean (and expectations met), 1 = safety violation (or an
// expected equivocation never appeared), 2 = unreadable/malformed input.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/safety_auditor.h"
#include "src/obs/trace_collector.h"

using namespace algorand;

namespace {

struct Options {
  std::string path;
  double step_threshold = 0;   // 0 = quorum checks off (unknown parameters).
  double final_threshold = 0;
  bool expect_equivocation = false;
  bool waterfall = false;
  bool help = false;
};

bool ParseValueFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  *value = arg + prefix.size();
  return true;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseValueFlag(argv[i], "step-threshold", &v)) {
      opt.step_threshold = std::stod(v);
    } else if (ParseValueFlag(argv[i], "final-threshold", &v)) {
      opt.final_threshold = std::stod(v);
    } else if (strcmp(argv[i], "--expect-equivocation") == 0) {
      opt.expect_equivocation = true;
    } else if (strcmp(argv[i], "--waterfall") == 0) {
      opt.waterfall = true;
    } else if (argv[i][0] == '-') {
      opt.help = true;
    } else if (opt.path.empty()) {
      opt.path = argv[i];
    } else {
      opt.help = true;
    }
  }
  if (opt.path.empty()) {
    opt.help = true;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (opt.help) {
    printf(
        "usage: trace_audit [flags] TRACE.jsonl\n"
        "  --step-threshold=F     weighted-vote quorum for ordinary steps\n"
        "  --final-threshold=F    weighted-vote quorum for the final step\n"
        "                         (omit both to skip quorum checks)\n"
        "  --expect-equivocation  fail unless the trace shows an equivocating\n"
        "                         proposer (adversarial-run regression gate)\n"
        "  --waterfall            also print the per-round latency waterfall\n");
    return 2;
  }

  std::ifstream in(opt.path, std::ios::binary);
  if (!in) {
    fprintf(stderr, "trace_audit: cannot open %s\n", opt.path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto events = ParseTraceJsonl(buf.str());
  if (!events) {
    fprintf(stderr, "trace_audit: %s is not a valid trace JSONL dump\n", opt.path.c_str());
    return 2;
  }

  SafetyAuditorConfig cfg;
  cfg.step_threshold = opt.step_threshold;
  cfg.final_threshold = opt.final_threshold;
  SafetyAuditor auditor(cfg);
  auditor.AddEvents(*events);

  printf("trace_audit: %zu events from %s\n%s", events->size(), opt.path.c_str(),
         auditor.Report().c_str());

  if (opt.waterfall) {
    TraceCollector collector;
    collector.AddEvents(*events);
    printf("%s", TraceCollector::ToText(collector.Waterfalls()).c_str());
  }

  if (opt.expect_equivocation && auditor.equivocations() == 0) {
    fprintf(stderr, "trace_audit: expected an equivocation but the trace shows none\n");
    return 1;
  }
  return auditor.ok() ? 0 : 1;
}
