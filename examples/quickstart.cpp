// Quickstart: stand up a 30-user Algorand network in the discrete-event
// simulator, submit a payment, and watch it confirm with final consensus.
//
//   $ ./examples/quickstart
//
// Everything is deterministic: re-running prints identical output.
#include <cstdio>

#include "src/core/sim_harness.h"

using namespace algorand;

int main() {
  HarnessConfig cfg;
  cfg.n_nodes = 30;
  cfg.stake_per_user = 1000;                            // Equal stakes.
  cfg.params = ProtocolParams::ScaledCommittees(0.02);  // Committees sized for 30 users.
  cfg.params.block_size_bytes = 256 * 1024;
  cfg.latency = HarnessConfig::Latency::kCity;  // 20-city latency model.
  cfg.rng_seed = 2026;

  SimHarness net(cfg);

  printf("Algorand quickstart: %zu users, %llu microalgos each\n", net.node_count(),
         static_cast<unsigned long long>(cfg.stake_per_user));
  printf("protocol: tau_proposer=%.0f tau_step=%.0f (T=%.3f) tau_final=%.0f (T=%.2f)\n\n",
         cfg.params.tau_proposer, cfg.params.tau_step, cfg.params.t_step, cfg.params.tau_final,
         cfg.params.t_final);

  // Alice (user 3) pays Bob (user 7) 250 before the network starts.
  Transaction payment = net.SubmitPayment(3, 7, 250, /*nonce=*/0);
  printf("submitted payment: user3 -> user7, amount 250, txn %s...\n\n",
         payment.Id().ToHex().substr(0, 16).c_str());

  net.Start();
  if (!net.RunRounds(3, Hours(1))) {
    printf("network failed to complete 3 rounds\n");
    return 1;
  }

  printf("%-6s %-9s %-10s %-6s %-8s\n", "round", "latency", "consensus", "steps", "payload");
  const Node& observer = net.node(0);
  for (const RoundRecord& rec : observer.round_records()) {
    if (rec.end_time == 0) {
      continue;
    }
    const Block& block = observer.ledger().BlockAtRound(rec.round);
    printf("%-6llu %7.1fs  %-10s %-6d %llu txns + %llu pad B\n",
           static_cast<unsigned long long>(rec.round), ToSeconds(rec.end_time - rec.start_time),
           rec.final ? "FINAL" : "tentative", rec.binary_steps,
           static_cast<unsigned long long>(block.txns.size()),
           static_cast<unsigned long long>(block.padding_bytes));
  }

  printf("\npayment confirmed on all nodes: ");
  bool all = true;
  for (size_t i = 0; i < net.node_count(); ++i) {
    all = all && net.node(i).ledger().IsConfirmed(payment.Id());
  }
  printf("%s\n", all ? "yes" : "NO");

  auto safety = net.CheckSafety();
  printf("safety invariant (no conflicting finals): %s\n", safety.ok ? "holds" : "VIOLATED");
  printf("user3 balance: %llu, user7 balance: %llu\n",
         static_cast<unsigned long long>(
             observer.ledger().accounts().BalanceOf(net.genesis().keys[3].public_key)),
         static_cast<unsigned long long>(
             observer.ledger().accounts().BalanceOf(net.genesis().keys[7].public_key)));
  return all && safety.ok ? 0 : 1;
}
