// sim_cli: a parameterized command-line driver for the Algorand simulator —
// the knob-turning tool for running your own experiments without writing
// code.
//
//   $ ./examples/sim_cli --users=100 --rounds=5 --block-kb=1024
//         --malicious=0.1 --tau-step=200 --seed=7   (one command line)
//
// Prints one row per round (latency percentiles across honest users) plus a
// summary with safety status, phase breakdown, and per-user bandwidth.
// --metrics-json=FILE dumps the merged cross-node MetricsRegistry snapshot;
// --trace-jsonl=FILE dumps the BA* round tracer (one JSON event per line).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/sim_harness.h"
#include "src/netsim/adversary.h"
#include "src/obs/safety_auditor.h"
#include "src/obs/stats_reporter.h"
#include "src/obs/trace_collector.h"

using namespace algorand;

namespace {

struct CliOptions {
  size_t users = 100;
  uint64_t rounds = 3;
  uint64_t block_kb = 1024;
  double malicious = 0.0;
  double tau_step = 100;
  double tau_final = 300;
  double tau_proposer = 26;
  uint64_t seed = 1;
  double uplink_mbit = 20;
  int verify_workers = -1;
  int exec_workers = -1;
  // Synthetic payment load: tx per round injected across tx_clients client
  // accounts. 0 = no load (blocks carry only padding, the historical mode).
  size_t tx_load = 0;
  size_t tx_clients = 16;
  size_t workers = 0;          // Engine workers; 0 = sequential engine.
  size_t users_per_group = 1;  // Users hosted per node (aggregation).
  bool real_crypto = false;
  bool uniform_latency = false;
  bool map_queue = false;
  bool help = false;
  std::string metrics_json;
  std::string trace_jsonl;
  // Live introspection, safety auditing, and cross-node latency waterfalls.
  double report_interval_ms = 0;  // 0 = no periodic reports.
  std::string report_file;        // Empty = stdout.
  bool audit = false;
  bool waterfall = false;
  std::string waterfall_json;
  // Chaos knobs: crash schedule "node:crash_s:restart_s[:fresh][,...]" and
  // uniform per-transmission loss probability.
  std::string crash_schedule;
  double loss_rate = 0.0;
  // "start_s:duration_s": partition the first n/2 nodes away from the rest
  // for the given window, then heal. Implies --audit.
  std::string partition;
  // Durability: per-node disk logs under DIR; restarts replay from disk.
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kBatched;
  // Checkpoints + fast-sync (DESIGN.md §13): periodic ledger-state
  // checkpoints every N final rounds (0 = off; needs --data-dir), and
  // checkpoint fast-sync for fresh joiners instead of genesis replay.
  uint64_t checkpoint_interval = 0;
  bool fast_sync = false;
};

// "3:20:50" -> node 3 crashes at t=20s, restarts (from snapshot) at t=50s.
// "3:20:50:fresh" restarts with durable state wiped (fresh join);
// "3:20:0" never restarts. Returns false on malformed input.
bool ParseCrashSchedule(const std::string& spec,
                        std::vector<HarnessConfig::CrashEvent>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    HarnessConfig::CrashEvent ev;
    int node = 0;
    double crash_s = 0;
    double restart_s = 0;
    char tail[8] = {0};
    int matched = sscanf(item.c_str(), "%d:%lf:%lf:%7s", &node, &crash_s, &restart_s, tail);
    if (matched < 3 || node < 0 || crash_s < 0) {
      return false;
    }
    ev.node = static_cast<size_t>(node);
    ev.crash_at = Seconds(crash_s);
    ev.restart_at = Seconds(restart_s);
    ev.from_snapshot = !(matched == 4 && strcmp(tail, "fresh") == 0);
    out->push_back(ev);
  }
  return true;
}

// Accepts both `--name=value` and `--name value`. On a match, *value is set
// and *i advances past any consumed extra argument.
bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

CliOptions Parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, &i, "users", &v)) {
      opt.users = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "block-kb", &v)) {
      opt.block_kb = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "malicious", &v)) {
      opt.malicious = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "tau-step", &v)) {
      opt.tau_step = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "tau-final", &v)) {
      opt.tau_final = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "tau-proposer", &v)) {
      opt.tau_proposer = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "seed", &v)) {
      opt.seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "uplink-mbit", &v)) {
      opt.uplink_mbit = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "verify-workers", &v)) {
      opt.verify_workers = std::stoi(v);
    } else if (ParseFlag(argc, argv, &i, "exec-workers", &v)) {
      opt.exec_workers = std::stoi(v);
    } else if (ParseFlag(argc, argv, &i, "tx-load", &v)) {
      opt.tx_load = static_cast<size_t>(std::stoull(v));
    } else if (ParseFlag(argc, argv, &i, "tx-clients", &v)) {
      opt.tx_clients = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "workers", &v)) {
      opt.workers = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "users-per-group", &v)) {
      opt.users_per_group = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "metrics-json", &v)) {
      opt.metrics_json = v;
    } else if (ParseFlag(argc, argv, &i, "trace-jsonl", &v)) {
      opt.trace_jsonl = v;
    } else if (ParseFlag(argc, argv, &i, "report-interval", &v)) {
      opt.report_interval_ms = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "report-file", &v)) {
      opt.report_file = v;
    } else if (ParseFlag(argc, argv, &i, "waterfall-json", &v)) {
      opt.waterfall_json = v;
    } else if (strcmp(argv[i], "--audit") == 0) {
      opt.audit = true;
    } else if (strcmp(argv[i], "--waterfall") == 0) {
      opt.waterfall = true;
    } else if (ParseFlag(argc, argv, &i, "crash-schedule", &v)) {
      opt.crash_schedule = v;
    } else if (ParseFlag(argc, argv, &i, "loss-rate", &v)) {
      opt.loss_rate = std::stod(v);
    } else if (ParseFlag(argc, argv, &i, "partition", &v)) {
      opt.partition = v;
      opt.audit = true;  // A partition run is only meaningful under audit.
    } else if (ParseFlag(argc, argv, &i, "data-dir", &v)) {
      opt.data_dir = v;
    } else if (ParseFlag(argc, argv, &i, "checkpoint-interval", &v)) {
      opt.checkpoint_interval = std::stoull(v);
    } else if (strcmp(argv[i], "--fast-sync") == 0) {
      opt.fast_sync = true;
    } else if (ParseFlag(argc, argv, &i, "fsync", &v)) {
      if (auto policy = ParseFsyncPolicy(v)) {
        opt.fsync = *policy;
      } else {
        fprintf(stderr, "bad --fsync=%s (want every_round, batched or off)\n", v.c_str());
        opt.help = true;
      }
    } else if (strcmp(argv[i], "--real-crypto") == 0) {
      opt.real_crypto = true;
    } else if (strcmp(argv[i], "--uniform-latency") == 0) {
      opt.uniform_latency = true;
    } else if (strcmp(argv[i], "--map-queue") == 0) {
      opt.map_queue = true;
    } else {
      opt.help = true;
    }
  }
  return opt;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

void PrintHelp() {
  printf(
      "usage: sim_cli [flags]\n"
      "  --users=N           simulated users (default 100)\n"
      "  --rounds=N          rounds to run (default 3)\n"
      "  --block-kb=N        block size in KB (default 1024)\n"
      "  --malicious=F       equivocating stake fraction 0..0.3 (default 0)\n"
      "  --tau-step=F        expected committee size (default 100)\n"
      "  --tau-final=F       expected final-step committee (default 300)\n"
      "  --tau-proposer=F    expected proposers (default 26)\n"
      "  --uplink-mbit=F     per-user uplink in Mbit/s (default 20)\n"
      "  --verify-workers=N  verification worker threads; 0 = inline,\n"
      "                      default reads ALGORAND_VERIFY_WORKERS\n"
      "  --exec-workers=N    block-apply worker threads; 0 = sequential apply,\n"
      "                      default reads ALGORAND_EXEC_WORKERS. Any N\n"
      "                      commits bit-identical state to 0\n"
      "  --tx-load=N         inject N signed payments per round (default 0 =\n"
      "                      padded blocks only); the run fails unless the\n"
      "                      chain actually commits transactions\n"
      "  --tx-clients=N      client accounts carrying the payment load\n"
      "                      (default 16)\n"
      "  --workers=N         parallel event-loop shard workers; 0 (default) =\n"
      "                      the classic sequential engine. Any N >= 1 gives\n"
      "                      bit-identical results to N = 1\n"
      "  --users-per-group=K aggregate-user modeling: every node hosts K\n"
      "                      users' stake (total users = --users * K)\n"
      "  --seed=N            deterministic seed (default 1)\n"
      "  --real-crypto       real Ed25519+ECVRF instead of the sim backends\n"
      "  --uniform-latency   50ms uniform links instead of the 20-city model\n"
      "  --map-queue         reference std::map event queue (A/B testing)\n"
      "  --metrics-json=FILE write the merged metrics snapshot as JSON\n"
      "  --trace-jsonl=FILE  write the BA* round trace (one JSON event/line)\n"
      "  --report-interval=MS  periodic live stats, one JSON line per interval\n"
      "  --report-file=FILE  where periodic reports go (default stdout)\n"
      "  --audit             run the online SafetyAuditor over the live trace\n"
      "                      stream; violations fail the run (exit 1)\n"
      "  --waterfall         print the per-round latency waterfall joined from\n"
      "                      cross-node trace events (Fig-5 phase breakdown)\n"
      "  --waterfall-json=FILE  write the waterfall as JSON\n"
      "  --crash-schedule=S  chaos: node:crash_s:restart_s[:fresh][,...]\n"
      "                      (restart_s <= crash_s = never restarts)\n"
      "  --loss-rate=F       chaos: drop each transmission with prob. F\n"
      "  --partition=S:D     chaos: split the first n/2 nodes from the rest at\n"
      "                      t=S seconds for D seconds, then heal; implies\n"
      "                      --audit, and post-heal non-convergence fails the\n"
      "                      run (exit 1)\n"
      "  --data-dir=DIR      durable block store per node under DIR; crashed\n"
      "                      nodes restart by replaying their disk log\n"
      "  --fsync=POLICY      store fsync policy: every_round, batched (default)\n"
      "                      or off\n"
      "  --checkpoint-interval=N  write a ledger-state checkpoint every N final\n"
      "                      rounds and compact log segments below it (needs\n"
      "                      --data-dir; 0 = off)\n"
      "  --fast-sync         fresh joiners bootstrap from a peer's checkpoint\n"
      "                      via the certificate chain instead of replaying\n"
      "                      every block; a --fast-sync run fails unless a\n"
      "                      fast-sync actually completed and converged\n"
      "flags also accept the space-separated form: --rounds 5\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt = Parse(argc, argv);
  if (opt.help) {
    PrintHelp();
    return 2;
  }

  HarnessConfig cfg;
  cfg.n_nodes = opt.users;
  cfg.rng_seed = opt.seed;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = opt.tau_proposer;
  cfg.params.tau_step = opt.tau_step;
  cfg.params.tau_final = opt.tau_final;
  cfg.params.block_size_bytes = opt.block_kb << 10;
  cfg.net.uplink_bytes_per_sec = opt.uplink_mbit * 1e6 / 8;
  cfg.use_sim_crypto = !opt.real_crypto;
  cfg.verify_workers = opt.verify_workers;
  cfg.exec_workers = opt.exec_workers;
  if (opt.tx_load > 0) {
    cfg.tx_load_per_round = opt.tx_load;
    cfg.tx_clients = std::max<size_t>(2, opt.tx_clients);
    // Keep consensus stake with the nodes: scale node stake up so the client
    // accounts (sized to afford the run's fees) stay at noise-level weight,
    // or committees thin out and rounds stall.
    cfg.stake_per_user = 1'000'000;
    cfg.client_stake =
        std::max<uint64_t>(10'000, opt.rounds * opt.tx_load * 16 / cfg.tx_clients);
    cfg.params.mempool_capacity = std::max<uint64_t>(cfg.params.mempool_capacity,
                                                     4 * opt.tx_load);
  }
  cfg.malicious_fraction = opt.malicious;
  cfg.use_map_event_queue = opt.map_queue;
  cfg.sim_workers = opt.workers;
  cfg.users_per_group = opt.users_per_group;
  cfg.latency =
      opt.uniform_latency ? HarnessConfig::Latency::kUniform : HarnessConfig::Latency::kCity;
  if (!opt.crash_schedule.empty() &&
      !ParseCrashSchedule(opt.crash_schedule, &cfg.crash_schedule)) {
    fprintf(stderr, "bad --crash-schedule (want node:crash_s:restart_s[:fresh][,...])\n");
    return 2;
  }
  cfg.data_dir = opt.data_dir;
  cfg.store_fsync = opt.fsync;
  if (opt.checkpoint_interval > 0 && opt.data_dir.empty()) {
    fprintf(stderr, "--checkpoint-interval needs --data-dir (checkpoints live in the store)\n");
    return 2;
  }
  cfg.params.checkpoint_interval = opt.checkpoint_interval;
  cfg.params.fastsync_enabled = opt.fast_sync;

  const std::string engine = cfg.sim_workers > 0
                                 ? "parallel/" + std::to_string(cfg.sim_workers) + "-worker"
                                 : std::string("sequential");
  printf("algorand-sim: %llu users (%zu nodes x %zu users/group, %.0f%% malicious), "
         "%llu KB blocks, tau_step=%.0f tau_final=%.0f, %s crypto, %s engine, seed %llu\n\n",
         static_cast<unsigned long long>(cfg.n_nodes) *
             static_cast<unsigned long long>(cfg.users_per_group),
         cfg.n_nodes, cfg.users_per_group, opt.malicious * 100,
         static_cast<unsigned long long>(opt.block_kb), cfg.params.tau_step,
         cfg.params.tau_final, opt.real_crypto ? "real" : "sim", engine.c_str(),
         static_cast<unsigned long long>(opt.seed));

  SimHarness h(cfg);
  if (opt.loss_rate > 0) {
    h.SetNetworkAdversary(std::make_unique<LossyAdversary>(opt.loss_rate, opt.seed));
  }

  // Network partition: split the first n/2 nodes from the rest for the given
  // window, then heal. The interesting question is what happens afterwards —
  // the run fails unless both sides reconverge and the auditor stays silent.
  double partition_start_s = 0;
  double partition_duration_s = 0;
  if (!opt.partition.empty()) {
    if (opt.loss_rate > 0) {
      fprintf(stderr, "--partition and --loss-rate both claim the network adversary slot\n");
      return 2;
    }
    if (sscanf(opt.partition.c_str(), "%lf:%lf", &partition_start_s,
               &partition_duration_s) != 2 ||
        partition_start_s < 0 || partition_duration_s <= 0) {
      fprintf(stderr, "bad --partition=%s (want start_s:duration_s)\n", opt.partition.c_str());
      return 2;
    }
    std::set<NodeId> group_a;
    for (size_t i = 0; i < cfg.n_nodes / 2; ++i) {
      group_a.insert(static_cast<NodeId>(i));
    }
    h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(
        group_a, Seconds(partition_start_s),
        Seconds(partition_start_s + partition_duration_s)));
  }

  // Online safety auditing: consume the trace stream live, with the quorum
  // thresholds this run actually uses.
  SafetyAuditorConfig audit_cfg;
  audit_cfg.step_threshold = cfg.params.StepThreshold();
  audit_cfg.final_threshold = cfg.params.FinalThreshold();
  SafetyAuditor auditor(audit_cfg);
  if (opt.audit) {
    auditor.AttachMetrics(&h.global_metrics());  // audit.* counters in dumps.
    h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });
  }

  // Periodic live introspection (simulated time): one JSON line per interval.
  std::ofstream report_stream;
  std::unique_ptr<StatsReporter> reporter;
  if (opt.report_interval_ms > 0) {
    std::ostream* out = &std::cout;
    if (!opt.report_file.empty()) {
      report_stream.open(opt.report_file, std::ios::binary);
      if (!report_stream) {
        fprintf(stderr, "report: cannot open %s\n", opt.report_file.c_str());
        return 2;
      }
      out = &report_stream;
    }
    reporter = std::make_unique<StatsReporter>(
        &h.sim(), FromSeconds(opt.report_interval_ms / 1e3),
        [&h]() -> StatsReporter::Sample {
          uint64_t tip = 0;
          uint64_t min_tip = UINT64_MAX;
          double alive = 0;
          for (size_t i = 0; i < h.node_count(); ++i) {
            if (!h.node_alive(i)) {
              continue;
            }
            alive += 1;
            uint64_t len = h.node(i).ledger().chain_length();
            tip = std::max(tip, len);
            min_tip = std::min(min_tip, len);
          }
          double sim_s = ToSeconds(h.sim().now());
          return {{"tip", static_cast<double>(tip)},
                  {"min_tip", min_tip == UINT64_MAX ? 0.0 : static_cast<double>(min_tip)},
                  {"alive", alive},
                  {"rounds_per_sec", sim_s > 0 ? static_cast<double>(tip) / sim_s : 0.0},
                  {"events", static_cast<double>(h.sim().executed_events())},
                  {"trace_recorded", static_cast<double>(h.tracer().recorded())},
                  {"trace_dropped", static_cast<double>(h.tracer().dropped())}};
        },
        out);
    reporter->Start();
  }

  h.Start();
  auto wall_start = std::chrono::steady_clock::now();
  bool done = h.RunRounds(opt.rounds, Hours(24));
  double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (reporter != nullptr) {
    reporter->Stop();
  }

  printf("%-7s %-9s %-9s %-9s %-9s %-9s\n", "round", "min(s)", "p25(s)", "med(s)", "p75(s)",
         "max(s)");
  for (uint64_t r = 1; r <= opt.rounds; ++r) {
    Summary s = Summarize(h.RoundLatencies(r));
    if (s.count == 0) {
      printf("%-7llu (incomplete)\n", static_cast<unsigned long long>(r));
      continue;
    }
    printf("%-7llu %-9.1f %-9.1f %-9.1f %-9.1f %-9.1f\n", static_cast<unsigned long long>(r),
           s.min, s.p25, s.median, s.p75, s.max);
  }

  auto phases = h.MeanPhaseBreakdown(1, opt.rounds);
  auto safety = h.CheckSafety();
  bool chains_ok = h.ChainsConsistent();
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    total_bytes += h.network().traffic(static_cast<NodeId>(i)).bytes_sent;
  }
  printf("\nphases: proposal %.1fs | BA* w/o final %.1fs | final %.1fs\n", phases.proposal,
         phases.ba_without_final, phases.final_step);
  // Per hosted user, so aggregate runs (--users-per-group) stay comparable.
  printf("bandwidth: %.1f MB sent per user per round\n",
         static_cast<double>(total_bytes) / static_cast<double>(h.total_users()) /
             static_cast<double>(opt.rounds) / 1e6);
  printf("completed: %s | safety: %s | chains consistent: %s\n", done ? "yes" : "NO",
         safety.ok ? "holds" : safety.violation.c_str(), chains_ok ? "yes" : "no");
  uint64_t events = h.sim().executed_events();
  printf("engine: %s | wall %.2fs | %llu events | %.0f events/sec\n",
         cfg.sim_workers > 0 ? engine.c_str() : (opt.map_queue ? "map queue" : "heap queue"),
         wall_s, static_cast<unsigned long long>(events),
         wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0);

  // Chaos convergence: every live node (including restarted ones) must be
  // within one round of the longest honest chain.
  bool converged = true;
  if (!cfg.crash_schedule.empty()) {
    uint64_t max_len = 0;
    for (size_t i = h.malicious_count(); i < h.node_count(); ++i) {
      if (h.node_alive(i)) {
        max_len = std::max<uint64_t>(max_len, h.node(i).ledger().chain_length());
      }
    }
    for (size_t i = h.malicious_count(); i < h.node_count(); ++i) {
      if (h.node_alive(i) && h.node(i).ledger().chain_length() + 1 < max_len) {
        converged = false;
        printf("convergence: node %zu at round %llu, tip %llu\n", i,
               static_cast<unsigned long long>(h.node(i).ledger().chain_length() - 1),
               static_cast<unsigned long long>(max_len - 1));
      }
    }
    MetricsSnapshot chaos = h.AggregateMetrics();
    if (!opt.data_dir.empty()) {
      // Restarts went through the disk log, not the in-memory snapshot; a
      // crash-restart run that never replayed a round did not exercise it.
      printf("store: fsync=%s | %llu records, %llu fsyncs, %llu replayed rounds\n",
             FsyncPolicyName(opt.fsync),
             static_cast<unsigned long long>(chaos.counters["store.records_written"]),
             static_cast<unsigned long long>(chaos.counters["store.fsyncs"]),
             static_cast<unsigned long long>(chaos.counters["store.replay_rounds"]));
    }
    printf("chaos: kills %llu restarts %llu | catchup sessions %llu completed %llu "
           "blocks %llu timeouts %llu rotations %llu | converged: %s\n",
           static_cast<unsigned long long>(chaos.counters["restart.kills"]),
           static_cast<unsigned long long>(chaos.counters["restart.restarts"]),
           static_cast<unsigned long long>(chaos.counters["catchup.sessions"]),
           static_cast<unsigned long long>(chaos.counters["catchup.completed"]),
           static_cast<unsigned long long>(chaos.counters["catchup.blocks_applied"]),
           static_cast<unsigned long long>(chaos.counters["catchup.timeouts"]),
           static_cast<unsigned long long>(chaos.counters["catchup.peer_rotations"]),
           converged ? "yes" : "NO");
  }

  // Post-heal convergence: after the partition window every honest node must
  // sit within one round of the longest honest chain, on a consistent chain.
  if (!opt.partition.empty()) {
    uint64_t max_len = 0;
    for (size_t i = h.malicious_count(); i < h.node_count(); ++i) {
      max_len = std::max<uint64_t>(max_len, h.node(i).ledger().chain_length());
    }
    for (size_t i = h.malicious_count(); i < h.node_count(); ++i) {
      if (h.node(i).ledger().chain_length() + 1 < max_len) {
        converged = false;
        printf("partition: node %zu stuck at tip %llu (longest %llu)\n", i,
               static_cast<unsigned long long>(h.node(i).ledger().chain_length() - 1),
               static_cast<unsigned long long>(max_len - 1));
      }
    }
    converged = converged && chains_ok;
    printf("partition: split nodes 0..%zu at %.0fs for %.0fs | post-heal converged: %s\n",
           cfg.n_nodes / 2 - 1, partition_start_s, partition_duration_s,
           converged ? "yes" : "NO");
  }

  bool dumps_ok = true;
  if (opt.waterfall || !opt.waterfall_json.empty()) {
    TraceCollector collector;
    std::vector<TraceEvent> events = h.tracer().Events();
    collector.AddEvents(events);
    std::vector<RoundWaterfall> waterfalls = collector.Waterfalls();
    if (opt.waterfall) {
      printf("\nlatency waterfall (joined from %zu trace events across %zu nodes):\n%s",
             events.size(), h.node_count(), TraceCollector::ToText(waterfalls).c_str());
    }
    if (!opt.waterfall_json.empty()) {
      if (WriteFile(opt.waterfall_json, TraceCollector::ToJson(waterfalls))) {
        printf("waterfall: wrote %zu rounds to %s\n", waterfalls.size(),
               opt.waterfall_json.c_str());
      } else {
        fprintf(stderr, "waterfall: failed to write %s\n", opt.waterfall_json.c_str());
        dumps_ok = false;
      }
    }
  }
  if (!opt.metrics_json.empty()) {
    MetricsSnapshot snapshot = h.AggregateMetrics();
    if (WriteFile(opt.metrics_json, snapshot.ToJson())) {
      printf("metrics: wrote %zu counters, %zu histograms to %s\n", snapshot.counters.size(),
             snapshot.histograms.size(), opt.metrics_json.c_str());
    } else {
      fprintf(stderr, "metrics: failed to write %s\n", opt.metrics_json.c_str());
      dumps_ok = false;
    }
  }
  if (!opt.trace_jsonl.empty()) {
    if (WriteFile(opt.trace_jsonl, h.tracer().ToJsonl())) {
      printf("trace: wrote %llu events (%llu dropped) to %s\n",
             static_cast<unsigned long long>(h.tracer().recorded() - h.tracer().dropped()),
             static_cast<unsigned long long>(h.tracer().dropped()), opt.trace_jsonl.c_str());
    } else {
      fprintf(stderr, "trace: failed to write %s\n", opt.trace_jsonl.c_str());
      dumps_ok = false;
    }
  }
  if (reporter != nullptr) {
    printf("report: %llu interval lines\n",
           static_cast<unsigned long long>(reporter->lines_emitted()));
  }
  bool audit_ok = true;
  if (opt.audit) {
    audit_ok = auditor.ok();
    printf("%s", auditor.Report().c_str());
  }

  // With --tx-load, an all-empty chain means the pipeline silently stalled;
  // fail the run so scripts catch it.
  bool txload_ok = true;
  if (opt.tx_load > 0) {
    const uint64_t committed = h.CommittedTxCount(h.malicious_count());
    txload_ok = committed > 0;
    printf("txload: %zu tx/round across %zu clients | committed %llu transactions%s\n",
           opt.tx_load, cfg.tx_clients, static_cast<unsigned long long>(committed),
           txload_ok ? "" : "  [NONE COMMITTED]");
  }

  // Checkpoint/compaction and fast-sync accounting. A --fast-sync run fails
  // unless some fresh node actually completed the checkpoint bootstrap —
  // silently falling back to full replay would pass convergence but not
  // exercise the path under test.
  bool fastsync_ok = true;
  if (opt.checkpoint_interval > 0 || opt.fast_sync) {
    MetricsSnapshot snap = h.AggregateMetrics();
    if (opt.checkpoint_interval > 0) {
      printf("checkpoints: every %llu final rounds | %llu written (%llu MB) | "
             "compaction runs %llu, segments removed %llu, %.1f MB reclaimed\n",
             static_cast<unsigned long long>(opt.checkpoint_interval),
             static_cast<unsigned long long>(snap.counters["store.checkpoints_written"]),
             static_cast<unsigned long long>(snap.counters["store.checkpoint_bytes"] >> 20),
             static_cast<unsigned long long>(snap.counters["store.compaction_runs"]),
             static_cast<unsigned long long>(snap.counters["store.compaction_segments_removed"]),
             static_cast<double>(snap.counters["store.compaction_bytes_reclaimed"]) / 1e6);
    }
    if (opt.fast_sync) {
      uint64_t sessions = snap.counters["catchup.fastsync_sessions"];
      uint64_t completed = snap.counters["catchup.fastsync_completed"];
      fastsync_ok = sessions == 0 || completed >= 1;
      printf("fastsync: sessions %llu completed %llu failed %llu | %llu links verified, "
             "%.1f MB state fetched | %s\n",
             static_cast<unsigned long long>(sessions),
             static_cast<unsigned long long>(completed),
             static_cast<unsigned long long>(snap.counters["catchup.fastsync_failed"]),
             static_cast<unsigned long long>(snap.counters["catchup.fastsync_links_verified"]),
             static_cast<double>(snap.counters["catchup.fastsync_bytes"]) / 1e6,
             fastsync_ok ? "ok" : "NO COMPLETED FAST-SYNC");
    }
  }

  // Durability runs additionally require byte-identical chains on common
  // rounds: replayed-from-disk state must never diverge from the network.
  bool durable_ok = opt.data_dir.empty() || chains_ok;
  return done && safety.ok && converged && dumps_ok && durable_ok && audit_ok && txload_ok &&
                 fastsync_ok
             ? 0
             : 1;
}
