// Real-network example: twelve Algorand nodes over genuine TCP sockets on
// localhost, wall-clock timers, wire-serialized messages — the same Node and
// BA* code the simulator runs, in its deployment shape (§9: the paper's
// prototype used TCP with an address-book file).
//
//   $ ./examples/tcp_localnet
//
// Timeout parameters are scaled to milliseconds so the demo finishes in a few
// wall-clock seconds; localhost latency is microseconds, not the paper's
// inter-city milliseconds.
#include <cstdio>

#include "src/tcp/local_cluster.h"

using namespace algorand;

int main() {
  LocalClusterConfig cfg;
  cfg.n_nodes = 12;
  cfg.rng_seed = 2026;
  cfg.use_sim_crypto = false;  // Real Ed25519 + ECVRF end to end.
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 8192;
  cfg.params.lambda_priority = Millis(150);
  cfg.params.lambda_stepvar = Millis(150);
  cfg.params.lambda_step = Millis(500);
  cfg.params.lambda_block = Millis(2000);
  cfg.params.recovery_interval = Minutes(10);

  LocalCluster cluster(cfg);
  printf("tcp_localnet: %zu nodes listening on 127.0.0.1 ports", cluster.node_count());
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    printf(" %u", cluster.endpoint(i).port());
  }
  printf("\nreal Ed25519 signatures + ECVRF sortition, wire-serialized gossip\n\n");

  // A client attached to node 2 gossips a payment.
  Transaction tx = MakeTransaction(cluster.genesis().keys[2],
                                   cluster.genesis().keys[9].public_key, 111, 0,
                                   cluster.signer());
  cluster.node(2).GossipTransaction(tx);

  cluster.Start();
  bool ok = cluster.RunRounds(3, Seconds(60));
  printf("3 rounds completed: %s\n", ok ? "yes" : "NO (wall budget exceeded)");

  const Node& observer = cluster.node(0);
  for (const RoundRecord& rec : observer.round_records()) {
    if (rec.end_time == 0) {
      continue;
    }
    printf("  round %llu: %s, %.2f s wall, %s block\n",
           static_cast<unsigned long long>(rec.round), rec.final ? "FINAL" : "tentative",
           ToSeconds(rec.end_time - rec.start_time), rec.empty ? "empty" : "payload");
  }

  printf("\npayment user2 -> user9 confirmed: %s\n",
         observer.ledger().IsConfirmed(tx.Id()) ? "yes" : "no");
  printf("chains consistent across all nodes: %s\n", cluster.ChainsConsistent() ? "yes" : "NO");

  uint64_t total_bytes = 0, total_msgs = 0;
  for (size_t i = 0; i < cluster.node_count(); ++i) {
    total_bytes += cluster.endpoint(i).stats().bytes_sent;
    total_msgs += cluster.endpoint(i).stats().messages_sent;
  }
  printf("network totals: %llu messages, %.1f KB over real TCP\n",
         static_cast<unsigned long long>(total_msgs), static_cast<double>(total_bytes) / 1024);
  return ok && cluster.ChainsConsistent() ? 0 : 1;
}
