// Adversarial demo: reproduces the paper's two headline attack scenarios in
// one run —
//   1. §10.4: equivocating block proposers + double-voting committees holding
//      20% of the stake, while honest users keep confirming transactions;
//   2. §8.2: a full network partition long enough to hang BA*, followed by
//      clock-driven fork recovery once the partition heals.
//
//   $ ./examples/adversarial_demo
#include <cstdio>

#include "src/common/stats.h"
#include "src/core/sim_harness.h"

using namespace algorand;

static int RunEquivocationScenario() {
  printf("=== scenario 1: 20%% equivocating stake (the Figure 8 attack) ===\n");
  HarnessConfig cfg;
  cfg.n_nodes = 25;
  cfg.malicious_fraction = 0.20;
  // Committee scale matters for the honest-votes-vs-threshold margin: the
  // paper's tau_step = 2000 gives a 5.7-sigma margin at 20% malicious stake;
  // tau_step = 200 keeps ~1.8 sigma, enough to see the paper's "not
  // significantly affected" behaviour at simulation scale.
  cfg.params = ProtocolParams::ScaledCommittees(0.1);
  cfg.params.block_size_bytes = 64 * 1024;
  cfg.latency = HarnessConfig::Latency::kCity;
  cfg.rng_seed = 11;

  SimHarness net(cfg);
  net.Start();
  bool done = net.RunRounds(3, Hours(2));

  printf("honest nodes completed 3 rounds: %s\n", done ? "yes" : "NO");
  for (uint64_t r = 1; r <= 3; ++r) {
    Summary s = Summarize(net.RoundLatencies(r));
    printf("  round %llu latency: median %.1fs (min %.1f, max %.1f) across %zu honest nodes\n",
           static_cast<unsigned long long>(r), s.median, s.min, s.max, s.count);
  }
  auto safety = net.CheckSafety();
  printf("safety under equivocation: %s\n\n", safety.ok ? "holds" : safety.violation.c_str());
  return done && safety.ok ? 0 : 1;
}

static int RunPartitionScenario() {
  printf("=== scenario 2: network partition, hang, and clock-driven recovery ===\n");
  HarnessConfig cfg;
  cfg.n_nodes = 20;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.max_steps = 9;                    // Hang quickly for the demo.
  cfg.params.recovery_interval = Minutes(10);  // Loosely synchronized clocks.
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.rng_seed = 12;

  SimHarness net(cfg);
  std::set<NodeId> group_a;
  for (NodeId i = 0; i < 10; ++i) {
    group_a.insert(i);
  }
  net.SetNetworkAdversary(std::make_unique<PartitionAdversary>(group_a, 0, Minutes(9)));
  net.Start();

  net.sim().RunUntil(Minutes(9));
  size_t hung = 0;
  for (size_t i = 0; i < net.node_count(); ++i) {
    hung += net.node(i).hung() || net.node(i).in_recovery();
  }
  printf("after 9 minutes of partition: %zu/%zu nodes stuck (BA* exhausted MaxSteps)\n", hung,
         net.node_count());

  net.sim().RunUntil(Minutes(40));
  size_t recovered = 0;
  uint64_t min_chain = UINT64_MAX;
  for (size_t i = 0; i < net.node_count(); ++i) {
    recovered += net.node(i).recoveries_completed() > 0;
    min_chain = std::min<uint64_t>(min_chain, net.node(i).ledger().chain_length());
  }
  printf("after heal + recovery window: %zu/%zu nodes ran recovery, min chain length %llu\n",
         recovered, net.node_count(), static_cast<unsigned long long>(min_chain));

  bool consistent = net.ChainsConsistent();
  auto safety = net.CheckSafety();
  printf("chains consistent after recovery: %s; safety: %s\n", consistent ? "yes" : "NO",
         safety.ok ? "holds" : safety.violation.c_str());
  return consistent && safety.ok && min_chain > 2 ? 0 : 1;
}

int main() {
  int rc1 = RunEquivocationScenario();
  int rc2 = RunPartitionScenario();
  return rc1 != 0 || rc2 != 0 ? 1 : 0;
}
