#include "src/common/verify_pool.h"

#include <cstdlib>

namespace algorand {

VerifyPool::VerifyPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

VerifyPool::~VerifyPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void VerifyPool::Submit(std::function<void()> job) {
  if (threads_.empty()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    jobs_->Increment();
    if (queue_depth_ != nullptr) {
      queue_depth_->Observe(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void VerifyPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void VerifyPool::AttachMetrics(MetricsRegistry* registry, const std::string& prefix) {
  if (registry == nullptr) {
    jobs_ = &fallback_jobs_;
    queue_depth_ = nullptr;
    return;
  }
  jobs_ = &registry->GetCounter(prefix + ".pool_jobs");
  queue_depth_ = &registry->GetHistogram(prefix + ".pool_queue_depth",
                                         MetricsRegistry::DefaultCountBuckets());
}

void VerifyPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left: the destructor drains first.
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

size_t ResolveVerifyWorkers(int configured) {
  if (configured >= 0) {
    return static_cast<size_t>(configured);
  }
  const char* env = std::getenv("ALGORAND_VERIFY_WORKERS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 0;
}

}  // namespace algorand
