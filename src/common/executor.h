// Scheduling abstraction shared by the discrete-event simulator and the
// real-time (TCP) runtime.
//
// Protocol code (Node, BA*) is written against this interface only, so the
// same consensus implementation runs inside the deterministic simulator and
// over real sockets with wall-clock timers.
#ifndef ALGORAND_SRC_COMMON_EXECUTOR_H_
#define ALGORAND_SRC_COMMON_EXECUTOR_H_

#include "src/common/callback.h"
#include "src/common/time_units.h"

namespace algorand {

class Executor {
 public:
  // Move-only with inline storage: scheduling a typical protocol closure
  // neither copies it nor heap-allocates (see callback.h). Any callable —
  // lambdas, std::function, move-only captures — converts implicitly.
  using Callback = UniqueCallback;

  virtual ~Executor() = default;

  // Current time: simulated nanoseconds, or monotonic wall-clock nanoseconds
  // since the runtime started.
  virtual SimTime now() const = 0;

  // Runs `fn` after `delay` (clamped at now for non-positive delays).
  virtual void Schedule(SimTime delay, Callback fn) = 0;

  // Runs `fn` at the absolute time `when` (clamped at now).
  virtual void ScheduleAt(SimTime when, Callback fn) = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_EXECUTOR_H_
