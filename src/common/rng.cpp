#include "src/common/rng.h"

#include <cmath>
#include <cstring>

namespace algorand {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// FNV-1a over the label, mixed into the seed. Good enough to derive
// independent-looking streams; not cryptographic.
uint64_t MixLabel(uint64_t seed, std::string_view label) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : label) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

DeterministicRng::DeterministicRng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

DeterministicRng::DeterministicRng(uint64_t seed, std::string_view label)
    : DeterministicRng(MixLabel(seed, label)) {}

uint64_t DeterministicRng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t DeterministicRng::UniformU64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t DeterministicRng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(range));
}

double DeterministicRng::UniformDouble() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double DeterministicRng::Exponential(double mean) {
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double DeterministicRng::Normal(double mean, double stddev) {
  if (have_gauss_) {
    have_gauss_ = false;
    return mean + stddev * gauss_;
  }
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  gauss_ = mag * std::sin(2.0 * M_PI * u2);
  have_gauss_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

void DeterministicRng::FillBytes(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i < n) {
    uint64_t r = NextU64();
    size_t take = std::min<size_t>(8, n - i);
    std::memcpy(out + i, &r, take);
    i += take;
  }
}

DeterministicRng DeterministicRng::Fork(std::string_view label) {
  return DeterministicRng(NextU64(), label);
}

}  // namespace algorand
