#include "src/common/stats.h"

#include <numeric>

namespace algorand {

double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  if (sorted.size() == 1) {
    return sorted[0];
  }
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) {
    return s;
  }
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.p25 = PercentileSorted(values, 0.25);
  s.median = PercentileSorted(values, 0.5);
  s.p75 = PercentileSorted(values, 0.75);
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) / static_cast<double>(values.size());
  return s;
}

}  // namespace algorand
