// Small statistics helpers used by benchmarks and tests: percentile summaries
// of round-completion times (the paper plots min/25th/median/75th/max).
#ifndef ALGORAND_SRC_COMMON_STATS_H_
#define ALGORAND_SRC_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace algorand {

struct Summary {
  double min = 0;
  double p25 = 0;
  double median = 0;
  double p75 = 0;
  double max = 0;
  double mean = 0;
  size_t count = 0;
};

// Computes a five-number summary (plus mean). Empty input yields zeros.
Summary Summarize(std::vector<double> values);

// Linear-interpolation percentile of a sorted vector, q in [0, 1].
double PercentileSorted(const std::vector<double>& sorted, double q);

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_STATS_H_
