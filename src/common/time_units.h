// Simulated time representation.
//
// The discrete-event simulator counts nanoseconds in a signed 64-bit integer
// (292 years of headroom). Helpers construct durations readably:
// Seconds(20), Millis(85), Minutes(1).
#ifndef ALGORAND_SRC_COMMON_TIME_UNITS_H_
#define ALGORAND_SRC_COMMON_TIME_UNITS_H_

#include <cstdint>

namespace algorand {

// Both absolute simulated time (since simulation start) and durations.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;

constexpr SimTime Nanos(int64_t n) { return n * kNanosecond; }
constexpr SimTime Micros(int64_t n) { return n * kMicrosecond; }
constexpr SimTime Millis(int64_t n) { return n * kMillisecond; }
constexpr SimTime Seconds(int64_t n) { return n * kSecond; }
constexpr SimTime Minutes(int64_t n) { return n * kMinute; }
constexpr SimTime Hours(int64_t n) { return n * kHour; }

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_TIME_UNITS_H_
