// VerifyPool: a small worker-thread pool that batch-verifies gossip payloads
// off the protocol thread.
//
// The paper's evaluation (§10.1) identifies signature and VRF verification as
// the dominant CPU cost of a node. All verification in this codebase is a
// pure function of the message bytes and a context resolved at submit time,
// so the work can run on any thread: the network layer *prewarms* the shared
// VerificationCache while a message is still in flight, and the protocol
// thread's lookup either hits a finished entry or briefly waits for the
// worker that is computing it. The pool never makes a protocol decision —
// with identical inputs the cached values are identical to what the inline
// path would compute, so a run with N workers is decision-for-decision
// equal to a run with zero (the default, which stays single-threaded and
// fully deterministic).
#ifndef ALGORAND_SRC_COMMON_VERIFY_POOL_H_
#define ALGORAND_SRC_COMMON_VERIFY_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace algorand {

class VerifyPool {
 public:
  // Starts `workers` threads. 0 is valid and means the pool is inert:
  // Submit() runs nothing and callers should keep verifying inline.
  explicit VerifyPool(size_t workers);

  // Drains the queue (every submitted job still runs) and joins the workers.
  ~VerifyPool();

  VerifyPool(const VerifyPool&) = delete;
  VerifyPool& operator=(const VerifyPool&) = delete;

  // Enqueues a job for a worker. Jobs must be self-contained: they run on a
  // worker thread, possibly after the submitting round has moved on. No-op
  // when the pool has zero workers.
  void Submit(std::function<void()> job);

  // Blocks until the queue is empty and every worker is idle.
  void Drain();

  size_t worker_count() const { return threads_.size(); }

  // Routes pool counters through `registry`: "<prefix>.pool_jobs" (submitted)
  // and the "<prefix>.pool_queue_depth" histogram (depth observed at submit).
  // The prefix keeps pools with different jobs apart — "verify" for the
  // signature/VRF pipeline, "exec" for the block-apply pipeline.
  void AttachMetrics(MetricsRegistry* registry, const std::string& prefix = "verify");

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;        // Signals workers: work or stop.
  std::condition_variable idle_cv_;   // Signals Drain: queue empty, all idle.
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;  // Jobs currently executing.
  bool stop_ = false;

  Counter fallback_jobs_;
  Counter* jobs_ = &fallback_jobs_;
  Histogram* queue_depth_ = nullptr;
};

// Resolves the worker count for a `verify_workers` config field: a
// non-negative value is used as-is; a negative value (the default) defers to
// the ALGORAND_VERIFY_WORKERS environment variable, else 0 (single-threaded).
// The env hook lets CI run the whole existing test suite with the threaded
// pipeline enabled without touching each test's config.
size_t ResolveVerifyWorkers(int configured);

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_VERIFY_POOL_H_
