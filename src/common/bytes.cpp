#include "src/common/bytes.h"

#include "src/common/hex.h"

namespace algorand {

template <size_t N>
FixedBytes<N> FixedBytes<N>::FromHex(std::string_view hex) {
  FixedBytes out;
  auto decoded = HexDecode(hex);
  if (decoded && decoded->size() == N) {
    std::memcpy(out.data_.data(), decoded->data(), N);
  }
  return out;
}

template <size_t N>
std::string FixedBytes<N>::ToHex() const {
  return HexEncode(span());
}

void AppendBytes(std::vector<uint8_t>* out, std::span<const uint8_t> bytes) {
  out->insert(out->end(), bytes.begin(), bytes.end());
}

std::vector<uint8_t> BytesOfString(std::string_view s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Explicit instantiations for the sizes used across the project.
template class FixedBytes<16>;
template class FixedBytes<32>;
template class FixedBytes<64>;
template class FixedBytes<80>;

}  // namespace algorand
