// Hex encoding and decoding helpers.
#ifndef ALGORAND_SRC_COMMON_HEX_H_
#define ALGORAND_SRC_COMMON_HEX_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace algorand {

// Lowercase hex encoding of `bytes`.
std::string HexEncode(std::span<const uint8_t> bytes);

// Decodes a hex string (case-insensitive). Returns nullopt on odd length or
// non-hex characters.
std::optional<std::vector<uint8_t>> HexDecode(std::string_view hex);

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_HEX_H_
