// Fixed-size byte-array value types used throughout the Algorand implementation.
//
// Hashes, public keys, signatures, VRF outputs, and VRF proofs are all fixed-size
// opaque byte strings. FixedBytes<N> gives them value semantics, total ordering
// (lexicographic, which matches interpreting the bytes as a big-endian integer),
// and cheap hashing so they can key unordered containers.
#ifndef ALGORAND_SRC_COMMON_BYTES_H_
#define ALGORAND_SRC_COMMON_BYTES_H_

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace algorand {

// A fixed-size, comparable, hashable byte string.
template <size_t N>
class FixedBytes {
 public:
  static constexpr size_t kSize = N;

  constexpr FixedBytes() : data_{} {}

  // Builds from exactly N bytes. The span must have size N.
  static FixedBytes FromSpan(std::span<const uint8_t> bytes) {
    FixedBytes out;
    if (bytes.size() == N) {
      std::memcpy(out.data_.data(), bytes.data(), N);
    }
    return out;
  }

  // Parses a 2N-character lowercase/uppercase hex string; returns all-zero on
  // malformed input (callers that need strictness use hex.h directly).
  static FixedBytes FromHex(std::string_view hex);

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  constexpr size_t size() const { return N; }

  uint8_t& operator[](size_t i) { return data_[i]; }
  const uint8_t& operator[](size_t i) const { return data_[i]; }

  std::span<const uint8_t> span() const { return std::span<const uint8_t>(data_.data(), N); }

  auto operator<=>(const FixedBytes&) const = default;

  bool is_zero() const {
    for (uint8_t b : data_) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  // First 8 bytes interpreted as a big-endian integer. Used for cheap
  // stochastic decisions and container hashing; uniformly distributed when the
  // contents come from a cryptographic hash.
  uint64_t prefix_u64() const {
    uint64_t v = 0;
    for (size_t i = 0; i < 8 && i < N; ++i) {
      v = (v << 8) | data_[i];
    }
    return v;
  }

  std::string ToHex() const;

 private:
  std::array<uint8_t, N> data_;
};

using Hash256 = FixedBytes<32>;
using Hash512 = FixedBytes<64>;
using PublicKey = FixedBytes<32>;
using Signature = FixedBytes<64>;
using VrfOutput = FixedBytes<64>;  // ECVRF beta string (SHA-512 wide).
using VrfProof = FixedBytes<80>;   // ECVRF pi: Gamma (32) || c (16) || s (32).
using SeedBytes = FixedBytes<32>;  // Per-round sortition seed.

// Appends `bytes` to `out`.
void AppendBytes(std::vector<uint8_t>* out, std::span<const uint8_t> bytes);

// Convenience: builds a byte vector from a string literal (no NUL).
std::vector<uint8_t> BytesOfString(std::string_view s);

struct FixedBytesHasher {
  template <size_t N>
  size_t operator()(const FixedBytes<N>& b) const {
    return static_cast<size_t>(b.prefix_u64());
  }
};

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_BYTES_H_
