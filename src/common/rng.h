// Deterministic random number generation for the simulator.
//
// All simulation randomness (topology, latency jitter, workload, adversary
// choices) flows through DeterministicRng so that every test and benchmark is
// reproducible bit-for-bit from a named seed. This is *not* cryptographic
// randomness; key generation in tests also uses it deliberately, so test
// keys are stable across runs.
#ifndef ALGORAND_SRC_COMMON_RNG_H_
#define ALGORAND_SRC_COMMON_RNG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace algorand {

// xoshiro256** with splitmix64 seeding.
class DeterministicRng {
 public:
  explicit DeterministicRng(uint64_t seed);
  // Derives the seed by hashing a label; convenient for named streams
  // ("topology", "jitter", ...) forked from one master seed.
  DeterministicRng(uint64_t seed, std::string_view label);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so the
  // distribution is exactly uniform.
  uint64_t UniformU64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Fills `out` with random bytes.
  void FillBytes(uint8_t* out, size_t n);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Creates a new independent stream labelled from this one.
  DeterministicRng Fork(std::string_view label);

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_RNG_H_
