// Bounds-checked binary serialization.
//
// All wire structures in this project (transactions, blocks, votes,
// certificates) serialize through Writer/Reader. The format is little-endian
// fixed-width integers plus length-prefixed byte strings; it is deliberately
// simple so message sizes are easy to reason about (the paper cares about the
// ~200-byte vote message and the 1 MB block).
#ifndef ALGORAND_SRC_COMMON_SERIALIZE_H_
#define ALGORAND_SRC_COMMON_SERIALIZE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace algorand {

class Writer {
 public:
  Writer() = default;

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { WriteLE(v, 2); }
  void U32(uint32_t v) { WriteLE(v, 4); }
  void U64(uint64_t v) { WriteLE(v, 8); }
  void I64(int64_t v) { WriteLE(static_cast<uint64_t>(v), 8); }

  template <size_t N>
  void Fixed(const FixedBytes<N>& b) {
    buf_.insert(buf_.end(), b.data(), b.data() + N);
  }

  // Length-prefixed (u32) byte string.
  void Bytes(std::span<const uint8_t> bytes) {
    U32(static_cast<uint32_t>(bytes.size()));
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  // Raw bytes with no length prefix (caller knows the framing).
  void Raw(std::span<const uint8_t> bytes) { buf_.insert(buf_.end(), bytes.begin(), bytes.end()); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void WriteLE(uint64_t v, int nbytes) {
    for (int i = 0; i < nbytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

// Reader returns std::nullopt-style failure through ok(); every accessor
// returns a zero value after the first out-of-bounds read, and ok() goes
// false, so callers can decode a full struct and check ok() once at the end.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8() { return static_cast<uint8_t>(ReadLE(1)); }
  uint16_t U16() { return static_cast<uint16_t>(ReadLE(2)); }
  uint32_t U32() { return static_cast<uint32_t>(ReadLE(4)); }
  uint64_t U64() { return ReadLE(8); }
  int64_t I64() { return static_cast<int64_t>(ReadLE(8)); }

  template <size_t N>
  FixedBytes<N> Fixed() {
    FixedBytes<N> out;
    if (!Check(N)) {
      return out;
    }
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return out;
  }

  std::vector<uint8_t> Bytes() {
    uint32_t n = U32();
    std::vector<uint8_t> out;
    if (!Check(n)) {
      return out;
    }
    out.assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
               data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::vector<uint8_t> Raw(size_t n) {
    std::vector<uint8_t> out;
    if (!Check(n)) {
      return out;
    }
    out.assign(data_.begin() + static_cast<ptrdiff_t>(pos_),
               data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  // Marks the reader failed if any input is left over (strict decode).
  bool AtEnd() {
    if (pos_ != data_.size()) {
      ok_ = false;
    }
    return ok_;
  }

 private:
  bool Check(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  uint64_t ReadLE(int nbytes) {
    if (!Check(static_cast<size_t>(nbytes))) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < nbytes; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += static_cast<size_t>(nbytes);
    return v;
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_SERIALIZE_H_
