// UniqueCallback: a move-only callable slot with small-buffer optimization.
//
// The simulator's event queue stores millions of short-lived closures; most
// capture a couple of pointers plus a round number and fit comfortably in a
// small inline buffer. std::function requires copyability and (depending on
// the library) may heap-allocate captures beyond two words. UniqueCallback
// accepts any callable — including move-only ones — stores it inline when it
// fits kInlineBytes, and spills to the heap otherwise. Moving a UniqueCallback
// never allocates: inline payloads move member-wise, heap payloads transfer
// the pointer.
#ifndef ALGORAND_SRC_COMMON_CALLBACK_H_
#define ALGORAND_SRC_COMMON_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace algorand {

class UniqueCallback {
 public:
  // Inline capacity. Sized for the simulator's common case: a lambda holding
  // `this`, a shared_ptr, and one or two integers (see simulation.h).
  static constexpr size_t kInlineBytes = 48;

  UniqueCallback() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::kOps;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  UniqueCallback(UniqueCallback&& other) noexcept { MoveFrom(std::move(other)); }

  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  ~UniqueCallback() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    // Move-constructs `to` from `from` and destroys `from`'s payload.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* target);
    void (*invoke)(void* target);
  };

  template <typename D>
  struct InlineOps {
    static void Relocate(void* from, void* to) {
      D* src = std::launder(reinterpret_cast<D*>(from));
      ::new (to) D(std::move(*src));
      src->~D();
    }
    static void Destroy(void* target) { std::launder(reinterpret_cast<D*>(target))->~D(); }
    static void Invoke(void* target) { (*std::launder(reinterpret_cast<D*>(target)))(); }
    static constexpr Ops kOps{&Relocate, &Destroy, &Invoke};
  };

  template <typename D>
  struct HeapOps {
    static void Relocate(void* from, void* to) {
      *reinterpret_cast<D**>(to) = *reinterpret_cast<D**>(from);
    }
    static void Destroy(void* target) { delete *reinterpret_cast<D**>(target); }
    static void Invoke(void* target) { (**reinterpret_cast<D**>(target))(); }
    static constexpr Ops kOps{&Relocate, &Destroy, &Invoke};
  };

  void MoveFrom(UniqueCallback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_COMMON_CALLBACK_H_
