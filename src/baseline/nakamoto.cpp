#include "src/baseline/nakamoto.h"

#include <algorithm>
#include <cstdint>

#include "src/common/rng.h"

namespace algorand {
namespace {

struct MinedBlock {
  uint64_t id = 0;
  uint64_t parent = 0;
  uint64_t height = 0;
  double mined_at = 0;
  double visible_at = 0;  // When every other miner knows it.
};

}  // namespace

NakamotoResult SimulateNakamoto(const NakamotoConfig& config, double duration_s) {
  DeterministicRng rng(config.rng_seed, "nakamoto");
  std::vector<MinedBlock> blocks;
  blocks.push_back(MinedBlock{0, 0, 0, 0, 0});  // Genesis.

  // Longest *visible* chain tip at time t, ties by earliest visibility (the
  // first-seen rule miners actually use).
  auto visible_tip = [&](double t, uint64_t exclude_id) {
    uint64_t best = 0;
    for (const MinedBlock& b : blocks) {
      if (b.id == exclude_id || b.visible_at > t) {
        continue;
      }
      const MinedBlock& cur = blocks[best];
      if (b.height > cur.height ||
          (b.height == cur.height && b.visible_at < cur.visible_at)) {
        best = b.id;
      }
    }
    return best;
  };

  double t = 0;
  while (true) {
    t += rng.Exponential(config.mean_block_interval_s);
    if (t > duration_s) {
      break;
    }
    // The discovering miner extends the longest chain it can see. A miner
    // that just mined knows its own block immediately; modelling the common
    // case, the miner sees everything visible at t (its own last block is
    // visible to itself, covered by visible_at <= t for blocks it mined --
    // approximation: self-mined blocks are globally visible after the delay
    // but locally immediately; we grant local knowledge with probability
    // 1/n_miners, which is negligible for large networks, so we skip it).
    uint64_t parent = visible_tip(t, /*exclude_id=*/UINT64_MAX);
    MinedBlock b;
    b.id = blocks.size();
    b.parent = parent;
    b.height = blocks[parent].height + 1;
    b.mined_at = t;
    b.visible_at = t + config.propagation_delay_s;
    blocks.push_back(b);
  }

  NakamotoResult result;
  result.duration_s = duration_s;
  result.blocks_mined = blocks.size() - 1;
  if (result.blocks_mined == 0) {
    return result;
  }

  // Main chain: walk back from the highest block (ties by first-seen).
  uint64_t tip = visible_tip(duration_s + config.propagation_delay_s, UINT64_MAX);
  std::vector<uint64_t> main_chain;
  for (uint64_t id = tip; id != 0; id = blocks[id].parent) {
    main_chain.push_back(id);
  }
  std::reverse(main_chain.begin(), main_chain.end());
  result.main_chain_blocks = main_chain.size();
  result.orphans = result.blocks_mined - result.main_chain_blocks;
  result.fork_rate =
      static_cast<double>(result.orphans) / static_cast<double>(result.blocks_mined);
  result.throughput_bytes_per_hour = static_cast<double>(result.main_chain_blocks) *
                                     static_cast<double>(config.block_size_bytes) /
                                     (duration_s / 3600.0);

  // Confirmation latency: for each main-chain block with `confirmations`
  // successors on the main chain, the time from its mining until the
  // confirming block is visible.
  double latency_sum = 0;
  size_t latency_count = 0;
  for (size_t i = 0; i + static_cast<size_t>(config.confirmations) < main_chain.size(); ++i) {
    const MinedBlock& b = blocks[main_chain[i]];
    const MinedBlock& confirming =
        blocks[main_chain[i + static_cast<size_t>(config.confirmations) - 1]];
    latency_sum += confirming.visible_at - b.mined_at;
    ++latency_count;
  }
  if (latency_count > 0) {
    result.mean_confirmation_latency_s = latency_sum / static_cast<double>(latency_count);
  }
  return result;
}

}  // namespace algorand
