// Nakamoto-consensus (Bitcoin-like) baseline simulator.
//
// The paper's throughput claim (§10.2) compares Algorand against Bitcoin:
// a 1 MB block every ~10 minutes, with transactions considered confirmed
// after 6 blocks. This module simulates proof-of-work longest-chain
// consensus with exponential block arrivals and a propagation-delay fork
// model (two blocks found within a propagation window orphan one of them),
// producing committed-bytes-per-hour and confirmation-latency numbers that
// the throughput bench sets against Algorand's.
#ifndef ALGORAND_SRC_BASELINE_NAKAMOTO_H_
#define ALGORAND_SRC_BASELINE_NAKAMOTO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace algorand {

struct NakamotoConfig {
  size_t n_miners = 100;
  // Expected time between blocks network-wide (Bitcoin: 600 s).
  double mean_block_interval_s = 600;
  uint64_t block_size_bytes = 1 << 20;
  // Blocks on top required before a transaction counts as confirmed
  // (Bitcoin folklore: 6).
  int confirmations = 6;
  // Time for a freshly mined block to reach (almost) every miner. Decker &
  // Wattenhofer measured ~10 s per MB scale for Bitcoin.
  double propagation_delay_s = 10;
  uint64_t rng_seed = 1;
};

struct NakamotoResult {
  uint64_t blocks_mined = 0;
  uint64_t main_chain_blocks = 0;
  uint64_t orphans = 0;
  double duration_s = 0;
  double fork_rate = 0;  // Orphans / blocks mined.
  // Committed payload on the main chain per hour.
  double throughput_bytes_per_hour = 0;
  // Mean time from a transaction entering a block until that block has
  // `confirmations` blocks on top of it (and the last one propagated).
  double mean_confirmation_latency_s = 0;
};

NakamotoResult SimulateNakamoto(const NakamotoConfig& config, double duration_s);

}  // namespace algorand

#endif  // ALGORAND_SRC_BASELINE_NAKAMOTO_H_
