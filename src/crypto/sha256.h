// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The paper uses SHA-256 as its hash function H for block hashes, priorities,
// seeds, and the common coin. Incremental interface plus one-shot helpers.
#ifndef ALGORAND_SRC_CRYPTO_SHA256_H_
#define ALGORAND_SRC_CRYPTO_SHA256_H_

#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace algorand {

class Sha256 {
 public:
  Sha256();

  Sha256& Update(std::span<const uint8_t> data);
  Sha256& Update(std::string_view s) {
    return Update(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  // Finalizes and returns the digest. The object must not be reused after.
  Hash256 Finish();

  static Hash256 Hash(std::span<const uint8_t> data);
  static Hash256 Hash(std::string_view s);

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t length_ = 0;  // Total bytes absorbed.
  uint8_t buf_[64];
  size_t buf_len_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_SHA256_H_
