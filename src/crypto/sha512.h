// SHA-512 (FIPS 180-4), implemented from scratch.
//
// Ed25519 (RFC 8032) and the ECVRF construction both hash with SHA-512.
#ifndef ALGORAND_SRC_CRYPTO_SHA512_H_
#define ALGORAND_SRC_CRYPTO_SHA512_H_

#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace algorand {

class Sha512 {
 public:
  Sha512();

  Sha512& Update(std::span<const uint8_t> data);
  Sha512& Update(std::string_view s) {
    return Update(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  // Finalizes and returns the digest. The object must not be reused after.
  Hash512 Finish();

  static Hash512 Hash(std::span<const uint8_t> data);
  static Hash512 Hash(std::string_view s);

 private:
  void Compress(const uint8_t block[128]);

  uint64_t state_[8];
  uint64_t length_ = 0;  // Total bytes absorbed (enough for simulation scale).
  uint8_t buf_[128];
  size_t buf_len_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_SHA512_H_
