#include "src/crypto/vrf.h"

#include <cstring>

#include "src/crypto/internal/ge25519.h"
#include "src/crypto/internal/sc25519.h"
#include "src/crypto/sha512.h"

namespace algorand {
namespace {

using internal::GeFromBytes;
using internal::GeMulByCofactor;
using internal::GePoint;
using internal::GeScalarMult;
using internal::GeScalarMultBase;
using internal::GeSub;
using internal::GeToBytes;
using internal::ScIsCanonical;
using internal::ScMulAdd;
using internal::ScReduce64;

constexpr uint8_t kSuite = 0x03;  // ECVRF-ED25519-SHA512-TAI.
constexpr uint8_t kDomainHashToCurve = 0x01;
constexpr uint8_t kDomainChallenge = 0x02;
constexpr uint8_t kDomainProofToHash = 0x03;

// Try-and-increment hash to curve: hash (suite || 0x01 || pk || alpha || ctr)
// until the first 32 bytes decode as a point, then clear the cofactor.
std::optional<GePoint> HashToCurveTai(const PublicKey& pk, std::span<const uint8_t> alpha) {
  for (int ctr = 0; ctr < 256; ++ctr) {
    uint8_t ctr_byte = static_cast<uint8_t>(ctr);
    Hash512 h = Sha512()
                    .Update(std::span<const uint8_t>(&kSuite, 1))
                    .Update(std::span<const uint8_t>(&kDomainHashToCurve, 1))
                    .Update(pk.span())
                    .Update(alpha)
                    .Update(std::span<const uint8_t>(&ctr_byte, 1))
                    .Finish();
    uint8_t candidate[32];
    std::memcpy(candidate, h.data(), 32);
    auto p = GeFromBytes(candidate);
    if (p) {
      return GeMulByCofactor(*p);
    }
  }
  return std::nullopt;  // Probability ~2^-256; treated as malformed input.
}

// c = first 16 bytes of SHA512(suite || 0x02 || H || Gamma || U || V), widened
// to a 32-byte scalar (little-endian, high 16 bytes zero).
void ChallengeScalar(uint8_t c_out16[16], uint8_t c_scalar32[32], const uint8_t h_bytes[32],
                     const uint8_t gamma_bytes[32], const uint8_t u_bytes[32],
                     const uint8_t v_bytes[32]) {
  Hash512 ch = Sha512()
                   .Update(std::span<const uint8_t>(&kSuite, 1))
                   .Update(std::span<const uint8_t>(&kDomainChallenge, 1))
                   .Update(std::span<const uint8_t>(h_bytes, 32))
                   .Update(std::span<const uint8_t>(gamma_bytes, 32))
                   .Update(std::span<const uint8_t>(u_bytes, 32))
                   .Update(std::span<const uint8_t>(v_bytes, 32))
                   .Finish();
  std::memcpy(c_out16, ch.data(), 16);
  std::memset(c_scalar32, 0, 32);
  std::memcpy(c_scalar32, ch.data(), 16);
}

VrfOutput GammaToHash(const GePoint& gamma) {
  GePoint cg = GeMulByCofactor(gamma);
  uint8_t cg_bytes[32];
  GeToBytes(cg_bytes, cg);
  Hash512 beta = Sha512()
                     .Update(std::span<const uint8_t>(&kSuite, 1))
                     .Update(std::span<const uint8_t>(&kDomainProofToHash, 1))
                     .Update(std::span<const uint8_t>(cg_bytes, 32))
                     .Finish();
  return beta;
}

}  // namespace

VrfResult EcVrfProve(const Ed25519KeyPair& key, std::span<const uint8_t> alpha) {
  VrfResult out;
  auto h_point = HashToCurveTai(key.public_key, alpha);
  if (!h_point) {
    return out;  // All-zero result; unreachable in practice.
  }
  uint8_t h_bytes[32];
  GeToBytes(h_bytes, *h_point);

  // Gamma = x * H.
  GePoint gamma = GeScalarMult(key.scalar.data(), *h_point);
  uint8_t gamma_bytes[32];
  GeToBytes(gamma_bytes, gamma);

  // Nonce k = SHA512(prefix || H) mod L (RFC 8032 style generation).
  Hash512 kh =
      Sha512().Update(key.prefix.span()).Update(std::span<const uint8_t>(h_bytes, 32)).Finish();
  uint8_t k[32];
  ScReduce64(k, kh.data());

  GePoint u = GeScalarMultBase(k);
  GePoint v = GeScalarMult(k, *h_point);
  uint8_t u_bytes[32], v_bytes[32];
  GeToBytes(u_bytes, u);
  GeToBytes(v_bytes, v);

  uint8_t c16[16], c_scalar[32];
  ChallengeScalar(c16, c_scalar, h_bytes, gamma_bytes, u_bytes, v_bytes);

  // s = c*x + k mod L.
  uint8_t s[32];
  ScMulAdd(s, c_scalar, key.scalar.data(), k);

  std::memcpy(out.proof.data(), gamma_bytes, 32);
  std::memcpy(out.proof.data() + 32, c16, 16);
  std::memcpy(out.proof.data() + 48, s, 32);
  out.output = GammaToHash(gamma);
  return out;
}

namespace {

// Both verify paths share everything but the U/V curve arithmetic.
enum class VrfVerifyPath { kDoubleScalar, kLegacy };

std::optional<VrfOutput> EcVrfVerifyImpl(const PublicKey& pk, std::span<const uint8_t> alpha,
                                         const VrfProof& proof, VrfVerifyPath path) {
  const uint8_t* gamma_bytes = proof.data();
  const uint8_t* c16 = proof.data() + 32;
  const uint8_t* s_bytes = proof.data() + 48;

  if (!ScIsCanonical(s_bytes)) {
    return std::nullopt;
  }
  auto gamma = GeFromBytes(gamma_bytes);
  if (!gamma) {
    return std::nullopt;
  }
  auto y = GeFromBytes(pk.data());
  if (!y) {
    return std::nullopt;
  }
  auto h_point = HashToCurveTai(pk, alpha);
  if (!h_point) {
    return std::nullopt;
  }
  uint8_t h_bytes[32];
  GeToBytes(h_bytes, *h_point);

  uint8_t c_scalar[32];
  std::memset(c_scalar, 0, 32);
  std::memcpy(c_scalar, c16, 16);

  // U = s*B - c*Y ; V = s*H - c*Gamma.
  GePoint u, v;
  if (path == VrfVerifyPath::kDoubleScalar) {
    u = internal::GeDoubleScalarMultVartime(c_scalar, internal::GeNeg(*y), s_bytes);
    v = internal::GeTwoScalarMultVartime(s_bytes, *h_point, c_scalar, internal::GeNeg(*gamma));
  } else {
    u = GeSub(GeScalarMultBase(s_bytes), GeScalarMult(c_scalar, *y));
    v = GeSub(GeScalarMult(s_bytes, *h_point), GeScalarMult(c_scalar, *gamma));
  }
  uint8_t u_bytes[32], v_bytes[32];
  GeToBytes(u_bytes, u);
  GeToBytes(v_bytes, v);

  uint8_t c_check16[16], c_check_scalar[32];
  ChallengeScalar(c_check16, c_check_scalar, h_bytes, gamma_bytes, u_bytes, v_bytes);
  if (std::memcmp(c_check16, c16, 16) != 0) {
    return std::nullopt;
  }
  return GammaToHash(*gamma);
}

}  // namespace

std::optional<VrfOutput> EcVrfVerify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                     const VrfProof& proof) {
  return EcVrfVerifyImpl(pk, alpha, proof, VrfVerifyPath::kDoubleScalar);
}

std::optional<VrfOutput> EcVrfVerifyLegacy(const PublicKey& pk, std::span<const uint8_t> alpha,
                                           const VrfProof& proof) {
  return EcVrfVerifyImpl(pk, alpha, proof, VrfVerifyPath::kLegacy);
}

VrfResult EcVrf::Prove(const Ed25519KeyPair& key, std::span<const uint8_t> alpha) const {
  return EcVrfProve(key, alpha);
}

std::optional<VrfOutput> EcVrf::Verify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                       const VrfProof& proof) const {
  return EcVrfVerify(pk, alpha, proof);
}

VrfResult SimVrf::Prove(const Ed25519KeyPair& key, std::span<const uint8_t> alpha) const {
  VrfResult out;
  Hash512 h = Sha512().Update("simvrf").Update(key.public_key.span()).Update(alpha).Finish();
  out.output = h;
  // Proof carries the output so Verify can check it byte-for-byte; the
  // remaining 16 bytes tag the backend.
  std::memcpy(out.proof.data(), h.data(), 64);
  std::memset(out.proof.data() + 64, 0x5a, 16);
  return out;
}

std::optional<VrfOutput> SimVrf::Verify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                        const VrfProof& proof) const {
  Hash512 h = Sha512().Update("simvrf").Update(pk.span()).Update(alpha).Finish();
  if (std::memcmp(proof.data(), h.data(), 64) != 0) {
    return std::nullopt;
  }
  for (int i = 64; i < 80; ++i) {
    if (proof.data()[i] != 0x5a) {
      return std::nullopt;
    }
  }
  return h;
}

}  // namespace algorand
