#include "src/crypto/ed25519.h"

#include <cstring>

#include "src/crypto/internal/ge25519.h"
#include "src/crypto/internal/sc25519.h"
#include "src/crypto/sha512.h"

namespace algorand {

using internal::GeAdd;
using internal::GeEq;
using internal::GeFromBytes;
using internal::GePoint;
using internal::GeScalarMult;
using internal::GeScalarMultBase;
using internal::GeToBytes;
using internal::ScIsCanonical;
using internal::ScMulAdd;
using internal::ScReduce64;

Ed25519KeyPair Ed25519KeyFromSeed(const FixedBytes<32>& seed) {
  Ed25519KeyPair kp;
  kp.seed = seed;
  Hash512 h = Sha512::Hash(seed.span());
  std::memcpy(kp.scalar.data(), h.data(), 32);
  std::memcpy(kp.prefix.data(), h.data() + 32, 32);
  // Clamp per RFC 8032.
  kp.scalar[0] &= 248;
  kp.scalar[31] &= 127;
  kp.scalar[31] |= 64;

  GePoint a = GeScalarMultBase(kp.scalar.data());
  GeToBytes(kp.public_key.data(), a);
  return kp;
}

Signature Ed25519Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message) {
  // r = SHA512(prefix || M) mod L.
  Hash512 rh = Sha512().Update(key.prefix.span()).Update(message).Finish();
  uint8_t r[32];
  ScReduce64(r, rh.data());

  GePoint rp = GeScalarMultBase(r);
  Signature sig;
  GeToBytes(sig.data(), rp);  // R in the first 32 bytes.

  // k = SHA512(R || A || M) mod L.
  Hash512 kh = Sha512()
                   .Update(std::span<const uint8_t>(sig.data(), 32))
                   .Update(key.public_key.span())
                   .Update(message)
                   .Finish();
  uint8_t k[32];
  ScReduce64(k, kh.data());

  // S = k*a + r mod L.
  ScMulAdd(sig.data() + 32, k, key.scalar.data(), r);
  return sig;
}

bool Ed25519Verify(const PublicKey& pk, std::span<const uint8_t> message, const Signature& sig) {
  const uint8_t* r_bytes = sig.data();
  const uint8_t* s_bytes = sig.data() + 32;
  if (!ScIsCanonical(s_bytes)) {
    return false;
  }
  auto a = GeFromBytes(pk.data());
  if (!a) {
    return false;
  }
  auto r = GeFromBytes(r_bytes);
  if (!r) {
    return false;
  }

  Hash512 kh = Sha512()
                   .Update(std::span<const uint8_t>(r_bytes, 32))
                   .Update(pk.span())
                   .Update(message)
                   .Finish();
  uint8_t k[32];
  ScReduce64(k, kh.data());

  // Check [S]B == R + [k]A.
  GePoint sb = GeScalarMultBase(s_bytes);
  GePoint rka = GeAdd(*r, GeScalarMult(k, *a));
  return GeEq(sb, rka);
}

}  // namespace algorand
