#include "src/crypto/ed25519.h"

#include <cstring>

#include "src/crypto/internal/ge25519.h"
#include "src/crypto/internal/sc25519.h"
#include "src/crypto/sha512.h"

namespace algorand {

using internal::GeAdd;
using internal::GeDoubleScalarMultVartime;
using internal::GeEq;
using internal::GeFromBytes;
using internal::GeNeg;
using internal::GePoint;
using internal::GeScalarMult;
using internal::GeScalarMultBase;
using internal::GeToBytes;
using internal::ScIsCanonical;
using internal::ScMulAdd;
using internal::ScReduce64;

Ed25519KeyPair Ed25519KeyFromSeed(const FixedBytes<32>& seed) {
  Ed25519KeyPair kp;
  kp.seed = seed;
  Hash512 h = Sha512::Hash(seed.span());
  std::memcpy(kp.scalar.data(), h.data(), 32);
  std::memcpy(kp.prefix.data(), h.data() + 32, 32);
  // Clamp per RFC 8032.
  kp.scalar[0] &= 248;
  kp.scalar[31] &= 127;
  kp.scalar[31] |= 64;

  GePoint a = GeScalarMultBase(kp.scalar.data());
  GeToBytes(kp.public_key.data(), a);
  return kp;
}

Signature Ed25519Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message) {
  // r = SHA512(prefix || M) mod L.
  Hash512 rh = Sha512().Update(key.prefix.span()).Update(message).Finish();
  uint8_t r[32];
  ScReduce64(r, rh.data());

  GePoint rp = GeScalarMultBase(r);
  Signature sig;
  GeToBytes(sig.data(), rp);  // R in the first 32 bytes.

  // k = SHA512(R || A || M) mod L.
  Hash512 kh = Sha512()
                   .Update(std::span<const uint8_t>(sig.data(), 32))
                   .Update(key.public_key.span())
                   .Update(message)
                   .Finish();
  uint8_t k[32];
  ScReduce64(k, kh.data());

  // S = k*a + r mod L.
  ScMulAdd(sig.data() + 32, k, key.scalar.data(), r);
  return sig;
}

namespace {

// Shared preamble of both verify paths: canonicality and point decoding
// checks, then k = SHA-512(R || A || M) mod L. Returns false on malformed
// input. Both paths must reject exactly the same encodings — decision parity
// is a tested invariant.
bool VerifyPreamble(const PublicKey& pk, std::span<const uint8_t> message, const Signature& sig,
                    GePoint* a, GePoint* r, uint8_t k[32]) {
  const uint8_t* r_bytes = sig.data();
  const uint8_t* s_bytes = sig.data() + 32;
  if (!ScIsCanonical(s_bytes)) {
    return false;
  }
  auto a_opt = GeFromBytes(pk.data());
  if (!a_opt) {
    return false;
  }
  auto r_opt = GeFromBytes(r_bytes);
  if (!r_opt) {
    return false;
  }
  *a = *a_opt;
  *r = *r_opt;
  Hash512 kh = Sha512()
                   .Update(std::span<const uint8_t>(r_bytes, 32))
                   .Update(pk.span())
                   .Update(message)
                   .Finish();
  ScReduce64(k, kh.data());
  return true;
}

}  // namespace

bool Ed25519Verify(const PublicKey& pk, std::span<const uint8_t> message, const Signature& sig) {
  GePoint a, r;
  uint8_t k[32];
  if (!VerifyPreamble(pk, message, sig, &a, &r, k)) {
    return false;
  }
  // [S]B == R + [k]A  <=>  [k](-A) + [S]B == R, one Straus pass.
  GePoint check = GeDoubleScalarMultVartime(k, GeNeg(a), sig.data() + 32);
  return GeEq(check, r);
}

bool Ed25519VerifyLegacy(const PublicKey& pk, std::span<const uint8_t> message,
                         const Signature& sig) {
  GePoint a, r;
  uint8_t k[32];
  if (!VerifyPreamble(pk, message, sig, &a, &r, k)) {
    return false;
  }
  // Check [S]B == R + [k]A with two independent multiplications.
  GePoint sb = GeScalarMultBase(sig.data() + 32);
  GePoint rka = GeAdd(r, GeScalarMult(k, a));
  return GeEq(sb, rka);
}

}  // namespace algorand
