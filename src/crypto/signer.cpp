#include "src/crypto/signer.h"

#include <cstring>

#include "src/crypto/sha512.h"

namespace algorand {

Signature SimSigner::Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message) const {
  Hash512 h = Sha512().Update("simsig").Update(key.public_key.span()).Update(message).Finish();
  Signature sig;
  std::memcpy(sig.data(), h.data(), 64);
  return sig;
}

bool SimSigner::Verify(const PublicKey& pk, std::span<const uint8_t> message,
                       const Signature& sig) const {
  Hash512 h = Sha512().Update("simsig").Update(pk.span()).Update(message).Finish();
  return std::memcmp(sig.data(), h.data(), 64) == 0;
}

}  // namespace algorand
