// Ed25519 signatures (RFC 8032), implemented from scratch on the internal
// Curve25519 arithmetic. Used to sign every gossip message in Algorand.
#ifndef ALGORAND_SRC_CRYPTO_ED25519_H_
#define ALGORAND_SRC_CRYPTO_ED25519_H_

#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace algorand {

// A key pair expanded from a 32-byte seed. The expanded fields are cached so
// repeated signing does not re-derive them.
struct Ed25519KeyPair {
  FixedBytes<32> seed;
  PublicKey public_key;
  // SHA-512(seed): low half clamped is the scalar, high half is the prefix.
  FixedBytes<32> scalar;
  FixedBytes<32> prefix;
};

// Derives a key pair from a seed.
Ed25519KeyPair Ed25519KeyFromSeed(const FixedBytes<32>& seed);

// Signs `message` with the key pair.
Signature Ed25519Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message);

// Verifies; rejects malformed points and non-canonical scalars. Evaluates
// [k](-A) + [S]B with one interleaved w-NAF double-scalar multiplication and
// compares against R as group elements — the exact accept set of the
// textbook [S]B == R + [k]A check, at under half the cost.
bool Ed25519Verify(const PublicKey& pk, std::span<const uint8_t> message, const Signature& sig);

// The original two-multiplication verification ([S]B == R + [k]A evaluated
// independently). Kept as the reference implementation: the test suite
// asserts decision parity with Ed25519Verify on RFC 8032 vectors, crafted
// negative encodings, and randomized signatures, and the benchmarks report
// both so the speedup stays measured. Not used by production paths.
bool Ed25519VerifyLegacy(const PublicKey& pk, std::span<const uint8_t> message,
                         const Signature& sig);

}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_ED25519_H_
