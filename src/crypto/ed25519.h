// Ed25519 signatures (RFC 8032), implemented from scratch on the internal
// Curve25519 arithmetic. Used to sign every gossip message in Algorand.
#ifndef ALGORAND_SRC_CRYPTO_ED25519_H_
#define ALGORAND_SRC_CRYPTO_ED25519_H_

#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace algorand {

// A key pair expanded from a 32-byte seed. The expanded fields are cached so
// repeated signing does not re-derive them.
struct Ed25519KeyPair {
  FixedBytes<32> seed;
  PublicKey public_key;
  // SHA-512(seed): low half clamped is the scalar, high half is the prefix.
  FixedBytes<32> scalar;
  FixedBytes<32> prefix;
};

// Derives a key pair from a seed.
Ed25519KeyPair Ed25519KeyFromSeed(const FixedBytes<32>& seed);

// Signs `message` with the key pair.
Signature Ed25519Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message);

// Verifies; rejects malformed points and non-canonical scalars.
bool Ed25519Verify(const PublicKey& pk, std::span<const uint8_t> message, const Signature& sig);

}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_ED25519_H_
