#include "src/crypto/internal/fe25519.h"

#include <cstring>

namespace algorand {
namespace internal {
namespace {

// Folds `carry` (value carried out past 2^256) back in using 2^256 = 38 mod p.
void FoldCarry(U256* v, uint64_t carry) {
  while (carry != 0) {
    // carry * 38 fits easily in 128 bits; add limb-wise.
    unsigned __int128 c = static_cast<unsigned __int128>(carry) * 38;
    uint64_t add_lo = static_cast<uint64_t>(c);
    uint64_t add_hi = static_cast<uint64_t>(c >> 64);
    U256 add{add_lo, add_hi, 0, 0};
    carry = Add(v, *v, add);
  }
}

}  // namespace

const U256& FieldPrime() {
  static const U256 kP = {0xffffffffffffffedULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
                          0x7fffffffffffffffULL};
  return kP;
}

Fe FeZero() { return Fe{}; }

Fe FeOne() { return Fe{{1, 0, 0, 0}}; }

Fe FeFromU64(uint64_t x) { return Fe{{x, 0, 0, 0}}; }

Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  uint64_t carry = Add(&r.v, a.v, b.v);
  FoldCarry(&r.v, carry);
  return r;
}

Fe FeSub(const Fe& a, const Fe& b) {
  // a - b (mod p): compute the 2^256 wraparound, then correct by 38 per wrap.
  Fe r;
  uint64_t borrow = Sub(&r.v, a.v, b.v);
  while (borrow != 0) {
    // Value wrapped: the stored r.v equals a-b+2^256 == (a-b) + 38 (mod p).
    U256 thirty_eight{38, 0, 0, 0};
    borrow = Sub(&r.v, r.v, thirty_eight);
  }
  return r;
}

namespace {

using u128 = unsigned __int128;

// Folds an 8-limb (512-bit) product down to 4 limbs with 2^256 = 38 mod p:
// r = lo + 38 * hi, then the (< 6-bit) carry out is folded again. FeMul and
// FeSq sit under every curve operation, so this path is fully unrolled.
inline Fe ReduceWide(const uint64_t w[8]) {
  Fe r;
  u128 s;
  s = static_cast<u128>(w[0]) + static_cast<u128>(w[4]) * 38;
  r.v[0] = static_cast<uint64_t>(s);
  s = static_cast<u128>(w[1]) + static_cast<u128>(w[5]) * 38 + static_cast<uint64_t>(s >> 64);
  r.v[1] = static_cast<uint64_t>(s);
  s = static_cast<u128>(w[2]) + static_cast<u128>(w[6]) * 38 + static_cast<uint64_t>(s >> 64);
  r.v[2] = static_cast<uint64_t>(s);
  s = static_cast<u128>(w[3]) + static_cast<u128>(w[7]) * 38 + static_cast<uint64_t>(s >> 64);
  r.v[3] = static_cast<uint64_t>(s);
  FoldCarry(&r.v, static_cast<uint64_t>(s >> 64));
  return r;
}

}  // namespace

Fe FeMul(const Fe& a, const Fe& b) {
  // Unrolled 4x4 schoolbook product (16 hardware multiplies), row by row so
  // every partial sum fits in 128 bits, then the 38-fold reduction.
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3];
  const uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3];
  uint64_t w[8];
  u128 t, c;
  t = static_cast<u128>(a0) * b0;
  w[0] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a0) * b1 + c;
  w[1] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a0) * b2 + c;
  w[2] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a0) * b3 + c;
  w[3] = static_cast<uint64_t>(t);
  w[4] = static_cast<uint64_t>(t >> 64);

  t = static_cast<u128>(a1) * b0 + w[1];
  w[1] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a1) * b1 + w[2] + c;
  w[2] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a1) * b2 + w[3] + c;
  w[3] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a1) * b3 + w[4] + c;
  w[4] = static_cast<uint64_t>(t);
  w[5] = static_cast<uint64_t>(t >> 64);

  t = static_cast<u128>(a2) * b0 + w[2];
  w[2] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a2) * b1 + w[3] + c;
  w[3] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a2) * b2 + w[4] + c;
  w[4] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a2) * b3 + w[5] + c;
  w[5] = static_cast<uint64_t>(t);
  w[6] = static_cast<uint64_t>(t >> 64);

  t = static_cast<u128>(a3) * b0 + w[3];
  w[3] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a3) * b1 + w[4] + c;
  w[4] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a3) * b2 + w[5] + c;
  w[5] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a3) * b3 + w[6] + c;
  w[6] = static_cast<uint64_t>(t);
  w[7] = static_cast<uint64_t>(t >> 64);

  return ReduceWide(w);
}

Fe FeSq(const Fe& a) {
  // Squaring: the six off-diagonal products are computed once and doubled by
  // a word shift, then the four diagonal squares are added — 10 hardware
  // multiplies to FeMul's 16.
  const uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3];
  uint64_t w[8];
  u128 t, c;
  t = static_cast<u128>(a1) * a0;
  w[1] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a2) * a0 + c;
  w[2] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a3) * a0 + c;
  w[3] = static_cast<uint64_t>(t);
  w[4] = static_cast<uint64_t>(t >> 64);

  t = static_cast<u128>(a2) * a1 + w[3];
  w[3] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a3) * a1 + w[4] + c;
  w[4] = static_cast<uint64_t>(t);
  w[5] = static_cast<uint64_t>(t >> 64);

  t = static_cast<u128>(a3) * a2 + w[5];
  w[5] = static_cast<uint64_t>(t);
  w[6] = static_cast<uint64_t>(t >> 64);

  // Double the cross sum: it is < 2^511, so the shift cannot overflow.
  w[7] = w[6] >> 63;
  w[6] = (w[6] << 1) | (w[5] >> 63);
  w[5] = (w[5] << 1) | (w[4] >> 63);
  w[4] = (w[4] << 1) | (w[3] >> 63);
  w[3] = (w[3] << 1) | (w[2] >> 63);
  w[2] = (w[2] << 1) | (w[1] >> 63);
  w[1] = w[1] << 1;

  t = static_cast<u128>(a0) * a0;
  w[0] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(w[1]) + c;
  w[1] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a1) * a1 + w[2] + c;
  w[2] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(w[3]) + c;
  w[3] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a2) * a2 + w[4] + c;
  w[4] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(w[5]) + c;
  w[5] = static_cast<uint64_t>(t);
  c = t >> 64;
  t = static_cast<u128>(a3) * a3 + w[6] + c;
  w[6] = static_cast<uint64_t>(t);
  w[7] += static_cast<uint64_t>(t >> 64);

  return ReduceWide(w);
}

Fe FeNeg(const Fe& a) { return FeSub(FeZero(), a); }

Fe FePow(const Fe& a, const U256& e) {
  Fe result = FeOne();
  Fe base = a;
  for (int i = 0; i < 256; ++i) {
    if (Bit(e, i)) {
      result = FeMul(result, base);
    }
    base = FeSq(base);
  }
  return result;
}

namespace {

// a^(2^n), n repeated squarings.
Fe FeSqN(Fe a, int n) {
  for (int i = 0; i < n; ++i) {
    a = FeSq(a);
  }
  return a;
}

// The shared prefix of the inversion and decompression chains: returns
// (a^(2^250 - 1), a^11). Classic curve25519 ladder: build a^(2^k - 1) for
// k = 5, 10, 20, 40, 50, 100, 200, 250 by square-and-merge.
struct ChainPrefix {
  Fe t250;  // a^(2^250 - 1)
  Fe t11;   // a^11
};

ChainPrefix FeChain250(const Fe& a) {
  Fe a2 = FeSq(a);                      // a^2
  Fe a9 = FeMul(FeSqN(a2, 2), a);       // a^9
  Fe a11 = FeMul(a9, a2);               // a^11
  Fe t5 = FeMul(FeSq(a11), a9);         // a^31 = a^(2^5 - 1)
  Fe t10 = FeMul(FeSqN(t5, 5), t5);     // a^(2^10 - 1)
  Fe t20 = FeMul(FeSqN(t10, 10), t10);  // a^(2^20 - 1)
  Fe t40 = FeMul(FeSqN(t20, 20), t20);  // a^(2^40 - 1)
  Fe t50 = FeMul(FeSqN(t40, 10), t10);  // a^(2^50 - 1)
  Fe t100 = FeMul(FeSqN(t50, 50), t50);    // a^(2^100 - 1)
  Fe t200 = FeMul(FeSqN(t100, 100), t100);  // a^(2^200 - 1)
  Fe t250 = FeMul(FeSqN(t200, 50), t50);    // a^(2^250 - 1)
  return {t250, a11};
}

}  // namespace

Fe FeInvert(const Fe& a) {
  // a^(p-2) by Fermat; p - 2 = 2^255 - 21 = (2^250 - 1) * 2^5 + 11.
  ChainPrefix c = FeChain250(a);
  return FeMul(FeSqN(c.t250, 5), c.t11);
}

Fe FePow22523(const Fe& a) {
  // 2^252 - 3 = (2^250 - 1) * 2^2 + 1.
  ChainPrefix c = FeChain250(a);
  return FeMul(FeSqN(c.t250, 2), a);
}

void FeCanonicalize(Fe* a) {
  const U256& p = FieldPrime();
  // v < 2^256 and 2^256 < 4p, so at most 3 subtractions.
  while (Cmp(a->v, p) >= 0) {
    Sub(&a->v, a->v, p);
  }
}

bool FeEq(const Fe& a, const Fe& b) {
  Fe x = a, y = b;
  FeCanonicalize(&x);
  FeCanonicalize(&y);
  return Cmp(x.v, y.v) == 0;
}

bool FeIsZero(const Fe& a) {
  Fe x = a;
  FeCanonicalize(&x);
  return IsZero(x.v);
}

int FeIsNegative(const Fe& a) {
  Fe x = a;
  FeCanonicalize(&x);
  return static_cast<int>(x.v[0] & 1);
}

void FeToBytes(uint8_t out[32], const Fe& a) {
  Fe x = a;
  FeCanonicalize(&x);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>(x.v[static_cast<size_t>(i)] >> (8 * j));
    }
  }
}

Fe FeFromBytes(const uint8_t in[32]) {
  Fe r;
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = 0;
    for (int j = 7; j >= 0; --j) {
      limb = (limb << 8) | in[8 * i + j];
    }
    r.v[static_cast<size_t>(i)] = limb;
  }
  r.v[3] &= 0x7fffffffffffffffULL;  // Clear the sign bit.
  return r;
}

const Fe& FeSqrtM1() {
  static const Fe kSqrtM1 = [] {
    // 2^((p-1)/4) is a square root of -1 because 2 is a non-square mod p.
    U256 e = FieldPrime();
    U256 one{1, 0, 0, 0};
    Sub(&e, e, one);
    Shr1(&e);
    Shr1(&e);
    return FePow(FeFromU64(2), e);
  }();
  return kSqrtM1;
}

}  // namespace internal
}  // namespace algorand
