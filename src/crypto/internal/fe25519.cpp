#include "src/crypto/internal/fe25519.h"

#include <cstring>

namespace algorand {
namespace internal {
namespace {

// Folds `carry` (value carried out past 2^256) back in using 2^256 = 38 mod p.
void FoldCarry(U256* v, uint64_t carry) {
  while (carry != 0) {
    // carry * 38 fits easily in 128 bits; add limb-wise.
    unsigned __int128 c = static_cast<unsigned __int128>(carry) * 38;
    uint64_t add_lo = static_cast<uint64_t>(c);
    uint64_t add_hi = static_cast<uint64_t>(c >> 64);
    U256 add{add_lo, add_hi, 0, 0};
    carry = Add(v, *v, add);
  }
}

}  // namespace

const U256& FieldPrime() {
  static const U256 kP = {0xffffffffffffffedULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
                          0x7fffffffffffffffULL};
  return kP;
}

Fe FeZero() { return Fe{}; }

Fe FeOne() { return Fe{{1, 0, 0, 0}}; }

Fe FeFromU64(uint64_t x) { return Fe{{x, 0, 0, 0}}; }

Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  uint64_t carry = Add(&r.v, a.v, b.v);
  FoldCarry(&r.v, carry);
  return r;
}

Fe FeSub(const Fe& a, const Fe& b) {
  // a - b (mod p): compute the 2^256 wraparound, then correct by 38 per wrap.
  Fe r;
  uint64_t borrow = Sub(&r.v, a.v, b.v);
  while (borrow != 0) {
    // Value wrapped: the stored r.v equals a-b+2^256 == (a-b) + 38 (mod p).
    U256 thirty_eight{38, 0, 0, 0};
    borrow = Sub(&r.v, r.v, thirty_eight);
  }
  return r;
}

Fe FeMul(const Fe& a, const Fe& b) {
  U512 wide = MulWide(a.v, b.v);
  // lo + 38 * hi.
  U256 lo{wide[0], wide[1], wide[2], wide[3]};
  U256 hi{wide[4], wide[5], wide[6], wide[7]};
  // hi * 38 produces at most 262 bits; accumulate into 5 limbs.
  U256 hi38{};
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 cur =
        static_cast<unsigned __int128>(hi[static_cast<size_t>(i)]) * 38 + carry;
    hi38[static_cast<size_t>(i)] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  uint64_t top = static_cast<uint64_t>(carry);  // < 38.
  Fe r;
  uint64_t c2 = Add(&r.v, lo, hi38);
  FoldCarry(&r.v, c2 + top);
  return r;
}

Fe FeSq(const Fe& a) { return FeMul(a, a); }

Fe FeNeg(const Fe& a) { return FeSub(FeZero(), a); }

Fe FePow(const Fe& a, const U256& e) {
  Fe result = FeOne();
  Fe base = a;
  for (int i = 0; i < 256; ++i) {
    if (Bit(e, i)) {
      result = FeMul(result, base);
    }
    base = FeSq(base);
  }
  return result;
}

Fe FeInvert(const Fe& a) {
  // a^(p-2) by Fermat.
  U256 e = FieldPrime();
  U256 two{2, 0, 0, 0};
  Sub(&e, e, two);
  return FePow(a, e);
}

void FeCanonicalize(Fe* a) {
  const U256& p = FieldPrime();
  // v < 2^256 and 2^256 < 4p, so at most 3 subtractions.
  while (Cmp(a->v, p) >= 0) {
    Sub(&a->v, a->v, p);
  }
}

bool FeEq(const Fe& a, const Fe& b) {
  Fe x = a, y = b;
  FeCanonicalize(&x);
  FeCanonicalize(&y);
  return Cmp(x.v, y.v) == 0;
}

bool FeIsZero(const Fe& a) {
  Fe x = a;
  FeCanonicalize(&x);
  return IsZero(x.v);
}

int FeIsNegative(const Fe& a) {
  Fe x = a;
  FeCanonicalize(&x);
  return static_cast<int>(x.v[0] & 1);
}

void FeToBytes(uint8_t out[32], const Fe& a) {
  Fe x = a;
  FeCanonicalize(&x);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>(x.v[static_cast<size_t>(i)] >> (8 * j));
    }
  }
}

Fe FeFromBytes(const uint8_t in[32]) {
  Fe r;
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = 0;
    for (int j = 7; j >= 0; --j) {
      limb = (limb << 8) | in[8 * i + j];
    }
    r.v[static_cast<size_t>(i)] = limb;
  }
  r.v[3] &= 0x7fffffffffffffffULL;  // Clear the sign bit.
  return r;
}

const Fe& FeSqrtM1() {
  static const Fe kSqrtM1 = [] {
    // 2^((p-1)/4) is a square root of -1 because 2 is a non-square mod p.
    U256 e = FieldPrime();
    U256 one{1, 0, 0, 0};
    Sub(&e, e, one);
    Shr1(&e);
    Shr1(&e);
    return FePow(FeFromU64(2), e);
  }();
  return kSqrtM1;
}

}  // namespace internal
}  // namespace algorand
