#include "src/crypto/internal/u256.h"

namespace algorand {
namespace internal {

U256 Mod512(const U512& n, const U256& m) {
  // Shift-subtract over the 512 bits, MSB first. rem always stays < m, and m
  // fits in 256 bits, so rem << 1 | bit fits in 257 bits; we track the
  // overflow bit explicitly.
  U256 rem{};
  for (int i = 511; i >= 0; --i) {
    // rem = (rem << 1) | bit_i(n)
    uint64_t overflow = rem[3] >> 63;
    for (int j = 3; j > 0; --j) {
      rem[static_cast<size_t>(j)] =
          (rem[static_cast<size_t>(j)] << 1) | (rem[static_cast<size_t>(j - 1)] >> 63);
    }
    uint64_t bit = (n[static_cast<size_t>(i / 64)] >> (i % 64)) & 1;
    rem[0] = (rem[0] << 1) | bit;
    if (overflow != 0 || Cmp(rem, m) >= 0) {
      Sub(&rem, rem, m);
    }
  }
  return rem;
}

}  // namespace internal
}  // namespace algorand
