// Edwards curve group operations for edwards25519:
//   -x^2 + y^2 = 1 + d x^2 y^2  over GF(2^255 - 19),
// in extended homogeneous coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z,
// xy = T/Z.
//
// d and the standard base point are derived at startup (d = -121665/121666,
// base point y = 4/5 with even x) rather than transcribed, to remove a class
// of constant-entry mistakes.
#ifndef ALGORAND_SRC_CRYPTO_INTERNAL_GE25519_H_
#define ALGORAND_SRC_CRYPTO_INTERNAL_GE25519_H_

#include <cstdint>
#include <optional>

#include "src/crypto/internal/fe25519.h"

namespace algorand {
namespace internal {

struct GePoint {
  Fe X, Y, Z, T;
};

// The neutral element (0, 1).
GePoint GeIdentity();

// The standard base point B (y = 4/5, x even).
const GePoint& GeBasePoint();

// The curve constant d, and 2d used by the addition formulas.
const Fe& GeConstD();

// Complete point addition / subtraction / doubling.
GePoint GeAdd(const GePoint& p, const GePoint& q);
GePoint GeSub(const GePoint& p, const GePoint& q);
GePoint GeDouble(const GePoint& p);
GePoint GeNeg(const GePoint& p);

// A point preprocessed for repeated addition: the sums/differences and the
// 2d-scaled T that GeAdd would otherwise recompute per call (Hisil et al.
// "cached" form). Saves one field multiply and two adds per addition.
struct GeCached {
  Fe YplusX, YminusX, Z, T2d;
};
GeCached GeToCached(const GePoint& p);
GePoint GeAddCached(const GePoint& p, const GeCached& q);
GePoint GeSubCached(const GePoint& p, const GeCached& q);

// scalar * point, scalar given as 32 little-endian bytes. Variable time.
// The textbook MSB-first double-and-add ladder, kept as the reference
// implementation the windowed paths are cross-checked against.
GePoint GeScalarMult(const uint8_t scalar[32], const GePoint& p);
GePoint GeScalarMultBase(const uint8_t scalar[32]);

// --- Verification fast paths (variable time, public inputs only) ---
//
// Width-5 w-NAF over a per-call table of odd multiples {1,3,...,15}*p:
// 256 doublings but only ~43 additions against GeScalarMult's ~128.
GePoint GeScalarMultVartime(const uint8_t scalar[32], const GePoint& p);

// [a]A + [b]B for the standard base point B (Straus/Shamir interleaving):
// one shared doubling chain, w-NAF(5) digits of `a` against the per-call
// table of A, w-NAF(7) digits of `b` against a static affine table of odd
// base-point multiples. The workhorse of Ed25519 and ECVRF verification.
GePoint GeDoubleScalarMultVartime(const uint8_t a[32], const GePoint& A, const uint8_t b[32]);

// [a]A + [b]B for two arbitrary points (ECVRF's V = [s]H - [c]Gamma with
// B = -Gamma): same interleaving, both tables built per call.
GePoint GeTwoScalarMultVartime(const uint8_t a[32], const GePoint& A, const uint8_t b[32],
                               const GePoint& B);

// Multiplies by the cofactor 8 (three doublings).
GePoint GeMulByCofactor(const GePoint& p);

bool GeIsIdentity(const GePoint& p);
// Projective equality: same affine point.
bool GeEq(const GePoint& p, const GePoint& q);

// RFC 8032 point compression: 32 bytes, y with the sign of x in the top bit.
void GeToBytes(uint8_t out[32], const GePoint& p);
// Decompression; rejects non-curve encodings. Accepts non-canonical y
// values only if they decode to a curve point (matching common practice).
std::optional<GePoint> GeFromBytes(const uint8_t in[32]);

}  // namespace internal
}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_INTERNAL_GE25519_H_
