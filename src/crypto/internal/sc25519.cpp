#include "src/crypto/internal/sc25519.h"

namespace algorand {
namespace internal {

const U256& ScOrder() {
  static const U256 kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0, 0x1000000000000000ULL};
  return kL;
}

U256 ScFromBytes(const uint8_t in[32]) {
  U256 r{};
  for (int i = 0; i < 4; ++i) {
    uint64_t limb = 0;
    for (int j = 7; j >= 0; --j) {
      limb = (limb << 8) | in[8 * i + j];
    }
    r[static_cast<size_t>(i)] = limb;
  }
  return r;
}

void ScToBytes(uint8_t out[32], const U256& s) {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>(s[static_cast<size_t>(i)] >> (8 * j));
    }
  }
}

void ScReduce64(uint8_t out[32], const uint8_t in[64]) {
  U512 n{};
  for (int i = 0; i < 8; ++i) {
    uint64_t limb = 0;
    for (int j = 7; j >= 0; --j) {
      limb = (limb << 8) | in[8 * i + j];
    }
    n[static_cast<size_t>(i)] = limb;
  }
  U256 r = Mod512(n, ScOrder());
  ScToBytes(out, r);
}

void ScMulAdd(uint8_t out[32], const uint8_t a[32], const uint8_t b[32], const uint8_t c[32]) {
  U256 ua = ScFromBytes(a);
  U256 ub = ScFromBytes(b);
  U256 uc = ScFromBytes(c);
  U512 prod = MulWide(ua, ub);
  // prod += c (c < 2^256, so it only touches the low limbs plus carries).
  unsigned __int128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    unsigned __int128 add = (i < 4) ? uc[static_cast<size_t>(i)] : 0;
    unsigned __int128 cur =
        static_cast<unsigned __int128>(prod[static_cast<size_t>(i)]) + add + carry;
    prod[static_cast<size_t>(i)] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  // a*b + c < 2^512 + 2^256, and carry out of the top limb is impossible:
  // (2^256-1)^2 + (2^256-1) = 2^512 - 2^256 < 2^512.
  U256 r = Mod512(prod, ScOrder());
  ScToBytes(out, r);
}

bool ScIsCanonical(const uint8_t s[32]) { return Cmp(ScFromBytes(s), ScOrder()) < 0; }

int ScWNaf(int8_t out[kWNafMaxDigits], const uint8_t s[32], int width) {
  // Work on the bit expansion; a window whose value exceeds 2^(width-1) is
  // replaced by its (odd, negative) complement and a borrow carried upward.
  // The carry can ripple through runs of set bits, but never past index 256.
  int8_t bits[kWNafMaxDigits + 8] = {0};
  for (int i = 0; i < 256; ++i) {
    bits[i] = static_cast<int8_t>((s[i / 8] >> (i % 8)) & 1);
  }
  for (int i = 0; i < kWNafMaxDigits; ++i) {
    out[i] = 0;
  }
  const int full = 1 << width;
  const int half = full >> 1;
  int len = 0;
  for (int i = 0; i < kWNafMaxDigits;) {
    if (bits[i] == 0) {
      ++i;
      continue;
    }
    int window = 0;
    for (int j = 0; j < width; ++j) {
      window |= bits[i + j] << j;
    }
    for (int j = 0; j < width; ++j) {
      bits[i + j] = 0;
    }
    int digit = window;
    if (digit >= half) {
      digit -= full;
      // Borrow: add 1 at position i + width, rippling over set bits.
      int k = i + width;
      while (bits[k] == 1) {
        bits[k] = 0;
        ++k;
      }
      bits[k] = 1;
    }
    out[i] = static_cast<int8_t>(digit);
    len = i + 1;
    i += width;
  }
  return len;
}

}  // namespace internal
}  // namespace algorand
