// Field arithmetic modulo p = 2^255 - 19.
//
// Representation: a U256 value that is kept < 2^256 between operations and
// reduced to canonical (< p) form only when serializing or comparing. The
// reduction uses 2^256 = 38 (mod p).
//
// These routines are variable-time. That is acceptable for this research
// reproduction (documented in README): the simulator's security analysis does
// not model local side channels.
#ifndef ALGORAND_SRC_CRYPTO_INTERNAL_FE25519_H_
#define ALGORAND_SRC_CRYPTO_INTERNAL_FE25519_H_

#include <cstdint>
#include <span>

#include "src/crypto/internal/u256.h"

namespace algorand {
namespace internal {

struct Fe {
  U256 v{};
};

// p = 2^255 - 19.
const U256& FieldPrime();

Fe FeZero();
Fe FeOne();
Fe FeFromU64(uint64_t x);

Fe FeAdd(const Fe& a, const Fe& b);
Fe FeSub(const Fe& a, const Fe& b);
Fe FeMul(const Fe& a, const Fe& b);
Fe FeSq(const Fe& a);
Fe FeNeg(const Fe& a);

// a^e (mod p), e an arbitrary 256-bit exponent. Variable time.
Fe FePow(const Fe& a, const U256& e);

// a^(2^252 - 3): the fixed exponent of RFC 8032 point decompression
// (x = uv^3 * (uv^7)^(2^252-3)), via an addition chain (~254 squarings +
// 11 multiplies instead of ~250 multiplies through the generic FePow).
Fe FePow22523(const Fe& a);

// Multiplicative inverse; FeInvert(0) == 0. Addition chain for a^(p-2).
Fe FeInvert(const Fe& a);

// Reduces to the canonical representative in [0, p).
void FeCanonicalize(Fe* a);

bool FeEq(const Fe& a, const Fe& b);
bool FeIsZero(const Fe& a);
// Least significant bit of the canonical representative ("sign" in RFC 8032).
int FeIsNegative(const Fe& a);

// Little-endian 32-byte encoding of the canonical representative.
void FeToBytes(uint8_t out[32], const Fe& a);
// Interprets 32 little-endian bytes, ignoring the top bit (RFC 8032 style).
Fe FeFromBytes(const uint8_t in[32]);

// sqrt(-1) mod p, computed once as 2^((p-1)/4).
const Fe& FeSqrtM1();

}  // namespace internal
}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_INTERNAL_FE25519_H_
