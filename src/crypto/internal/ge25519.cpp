#include "src/crypto/internal/ge25519.h"

#include <algorithm>

#include "src/crypto/internal/sc25519.h"

namespace algorand {
namespace internal {
namespace {

const Fe& GeConst2D() {
  static const Fe k2D = [] {
    Fe d = GeConstD();
    return FeAdd(d, d);
  }();
  return k2D;
}

}  // namespace

const Fe& GeConstD() {
  static const Fe kD = [] {
    // d = -121665/121666 mod p.
    Fe num = FeNeg(FeFromU64(121665));
    Fe den = FeFromU64(121666);
    return FeMul(num, FeInvert(den));
  }();
  return kD;
}

GePoint GeIdentity() {
  GePoint p;
  p.X = FeZero();
  p.Y = FeOne();
  p.Z = FeOne();
  p.T = FeZero();
  return p;
}

const GePoint& GeBasePoint() {
  static const GePoint kBase = [] {
    // y = 4/5, x even: the canonical encoding is y with sign bit 0.
    Fe y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
    uint8_t enc[32];
    FeToBytes(enc, y);  // Sign bit is already 0.
    auto p = GeFromBytes(enc);
    // The base point always decodes; dereference is safe.
    return *p;
  }();
  return kBase;
}

GePoint GeAdd(const GePoint& p, const GePoint& q) {
  // add-2008-hwcd-3 (a = -1), complete.
  Fe a = FeMul(FeSub(p.Y, p.X), FeSub(q.Y, q.X));
  Fe b = FeMul(FeAdd(p.Y, p.X), FeAdd(q.Y, q.X));
  Fe c = FeMul(FeMul(p.T, GeConst2D()), q.T);
  Fe d = FeMul(FeAdd(p.Z, p.Z), q.Z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(d, c);
  Fe g = FeAdd(d, c);
  Fe h = FeAdd(b, a);
  GePoint r;
  r.X = FeMul(e, f);
  r.Y = FeMul(g, h);
  r.T = FeMul(e, h);
  r.Z = FeMul(f, g);
  return r;
}

GePoint GeNeg(const GePoint& p) {
  GePoint r = p;
  r.X = FeNeg(p.X);
  r.T = FeNeg(p.T);
  return r;
}

GePoint GeSub(const GePoint& p, const GePoint& q) { return GeAdd(p, GeNeg(q)); }

GeCached GeToCached(const GePoint& p) {
  GeCached c;
  c.YplusX = FeAdd(p.Y, p.X);
  c.YminusX = FeSub(p.Y, p.X);
  c.Z = p.Z;
  c.T2d = FeMul(p.T, GeConst2D());
  return c;
}

GePoint GeAddCached(const GePoint& p, const GeCached& q) {
  // GeAdd with q's sums and 2d*T precomputed: 8 multiplies instead of 9.
  Fe a = FeMul(FeSub(p.Y, p.X), q.YminusX);
  Fe b = FeMul(FeAdd(p.Y, p.X), q.YplusX);
  Fe c = FeMul(p.T, q.T2d);
  Fe d = FeMul(FeAdd(p.Z, p.Z), q.Z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(d, c);
  Fe g = FeAdd(d, c);
  Fe h = FeAdd(b, a);
  GePoint r;
  r.X = FeMul(e, f);
  r.Y = FeMul(g, h);
  r.T = FeMul(e, h);
  r.Z = FeMul(f, g);
  return r;
}

GePoint GeSubCached(const GePoint& p, const GeCached& q) {
  // Adding -q swaps q's Y±X and negates its T, so C changes sign and F/G swap.
  Fe a = FeMul(FeSub(p.Y, p.X), q.YplusX);
  Fe b = FeMul(FeAdd(p.Y, p.X), q.YminusX);
  Fe c = FeMul(p.T, q.T2d);
  Fe d = FeMul(FeAdd(p.Z, p.Z), q.Z);
  Fe e = FeSub(b, a);
  Fe f = FeAdd(d, c);
  Fe g = FeSub(d, c);
  Fe h = FeAdd(b, a);
  GePoint r;
  r.X = FeMul(e, f);
  r.Y = FeMul(g, h);
  r.T = FeMul(e, h);
  r.Z = FeMul(f, g);
  return r;
}

GePoint GeDouble(const GePoint& p) {
  // dbl-2008-hwcd specialized to a = -1 (signs folded; see fe tests).
  Fe a = FeSq(p.X);
  Fe b = FeSq(p.Y);
  Fe zz = FeSq(p.Z);
  Fe c = FeAdd(zz, zz);
  Fe h = FeAdd(a, b);
  Fe xy = FeAdd(p.X, p.Y);
  Fe e = FeSub(h, FeSq(xy));
  Fe g = FeSub(a, b);
  Fe f = FeAdd(c, g);
  GePoint r;
  r.X = FeMul(e, f);
  r.Y = FeMul(g, h);
  r.T = FeMul(e, h);
  r.Z = FeMul(f, g);
  return r;
}

GePoint GeScalarMult(const uint8_t scalar[32], const GePoint& p) {
  GePoint r = GeIdentity();
  // MSB-first double-and-add, variable time.
  for (int i = 255; i >= 0; --i) {
    r = GeDouble(r);
    if ((scalar[i / 8] >> (i % 8)) & 1) {
      r = GeAdd(r, p);
    }
  }
  return r;
}

namespace {

// Fixed-base acceleration: a 4-bit window table, table[j][v] = v * 16^j * B
// for j in [0, 64), v in [1, 16). Base-point multiplication then costs at
// most 64 additions and no doublings (~4x faster than double-and-add), which
// dominates signing and VRF proving.
struct BaseTable {
  GePoint entry[64][15];
};

const BaseTable& GetBaseTable() {
  static const BaseTable* kTable = [] {
    auto* table = new BaseTable;
    GePoint radix = GeBasePoint();  // 16^j * B.
    for (int j = 0; j < 64; ++j) {
      GePoint acc = radix;
      for (int v = 1; v < 16; ++v) {
        table->entry[j][v - 1] = acc;
        acc = GeAdd(acc, radix);
      }
      radix = acc;  // 16 * (16^j * B).
    }
    return table;
  }();
  return *kTable;
}

}  // namespace

GePoint GeScalarMultBase(const uint8_t scalar[32]) {
  const BaseTable& table = GetBaseTable();
  GePoint r = GeIdentity();
  for (int j = 0; j < 64; ++j) {
    uint8_t byte = scalar[j / 2];
    int nibble = (j % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    if (nibble != 0) {
      r = GeAdd(r, table.entry[j][nibble - 1]);
    }
  }
  return r;
}

namespace {

// Table of the odd multiples {1, 3, 5, ..., 15} * p in cached form, for
// width-5 w-NAF evaluation. Costs one doubling plus seven additions.
struct OddTable {
  GeCached entry[8];
};

OddTable BuildOddTable(const GePoint& p) {
  OddTable table;
  GeCached twice = GeToCached(GeDouble(p));
  GePoint cur = p;
  table.entry[0] = GeToCached(cur);
  for (int i = 1; i < 8; ++i) {
    cur = GeAddCached(cur, twice);
    table.entry[i] = GeToCached(cur);
  }
  return table;
}

// Affine precomputed multiple (Z == 1): y+x, y-x, 2d*x*y. Addition against
// one of these skips the Z multiplication (7 multiplies).
struct GePrecomp {
  Fe YplusX, YminusX, XY2d;
};

GePrecomp ToPrecomp(const GePoint& p) {
  Fe zinv = FeInvert(p.Z);
  Fe x = FeMul(p.X, zinv);
  Fe y = FeMul(p.Y, zinv);
  GePrecomp q;
  q.YplusX = FeAdd(y, x);
  q.YminusX = FeSub(y, x);
  q.XY2d = FeMul(FeMul(x, y), GeConst2D());
  return q;
}

GePoint GeAddPrecomp(const GePoint& p, const GePrecomp& q) {
  Fe a = FeMul(FeSub(p.Y, p.X), q.YminusX);
  Fe b = FeMul(FeAdd(p.Y, p.X), q.YplusX);
  Fe c = FeMul(p.T, q.XY2d);
  Fe d = FeAdd(p.Z, p.Z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(d, c);
  Fe g = FeAdd(d, c);
  Fe h = FeAdd(b, a);
  GePoint r;
  r.X = FeMul(e, f);
  r.Y = FeMul(g, h);
  r.T = FeMul(e, h);
  r.Z = FeMul(f, g);
  return r;
}

GePoint GeSubPrecomp(const GePoint& p, const GePrecomp& q) {
  Fe a = FeMul(FeSub(p.Y, p.X), q.YplusX);
  Fe b = FeMul(FeAdd(p.Y, p.X), q.YminusX);
  Fe c = FeMul(p.T, q.XY2d);
  Fe d = FeAdd(p.Z, p.Z);
  Fe e = FeSub(b, a);
  Fe f = FeAdd(d, c);
  Fe g = FeSub(d, c);
  Fe h = FeAdd(b, a);
  GePoint r;
  r.X = FeMul(e, f);
  r.Y = FeMul(g, h);
  r.T = FeMul(e, h);
  r.Z = FeMul(f, g);
  return r;
}

// w-NAF window width for the static base-point table: odd multiples
// {1, 3, ..., 2^(kBaseWNafWidth-1) - 1} * B in affine form.
constexpr int kBaseWNafWidth = 7;
constexpr int kBaseWNafTableSize = 1 << (kBaseWNafWidth - 2);  // 32 entries.

struct BaseWNafTable {
  GePrecomp entry[kBaseWNafTableSize];
};

const BaseWNafTable& GetBaseWNafTable() {
  static const BaseWNafTable* kTable = [] {
    auto* table = new BaseWNafTable;
    GePoint twice = GeDouble(GeBasePoint());
    GePoint cur = GeBasePoint();
    table->entry[0] = ToPrecomp(cur);
    for (int i = 1; i < kBaseWNafTableSize; ++i) {
      cur = GeAdd(cur, twice);
      table->entry[i] = ToPrecomp(cur);
    }
    return table;
  }();
  return *kTable;
}

// Shared Straus/Shamir loop: one doubling chain, `naf_a` digits applied
// against `ta`, optional `naf_b` digits against either a cached table `tb`
// or the static base table (when `tb` is null). Digit d indexes entry
// (|d| - 1) / 2 == |d| >> 1 for odd d.
GePoint WNafEvaluate(const int8_t* naf_a, int len_a, const OddTable& ta, const int8_t* naf_b,
                     int len_b, const OddTable* tb) {
  const BaseWNafTable* base = tb == nullptr ? &GetBaseWNafTable() : nullptr;
  GePoint r = GeIdentity();
  for (int i = std::max(len_a, len_b) - 1; i >= 0; --i) {
    r = GeDouble(r);
    if (i < len_a && naf_a[i] != 0) {
      r = naf_a[i] > 0 ? GeAddCached(r, ta.entry[naf_a[i] >> 1])
                       : GeSubCached(r, ta.entry[(-naf_a[i]) >> 1]);
    }
    if (i < len_b && naf_b[i] != 0) {
      if (base != nullptr) {
        r = naf_b[i] > 0 ? GeAddPrecomp(r, base->entry[naf_b[i] >> 1])
                         : GeSubPrecomp(r, base->entry[(-naf_b[i]) >> 1]);
      } else {
        r = naf_b[i] > 0 ? GeAddCached(r, tb->entry[naf_b[i] >> 1])
                         : GeSubCached(r, tb->entry[(-naf_b[i]) >> 1]);
      }
    }
  }
  return r;
}

}  // namespace

GePoint GeScalarMultVartime(const uint8_t scalar[32], const GePoint& p) {
  int8_t naf[kWNafMaxDigits];
  int len = ScWNaf(naf, scalar, 5);
  if (len == 0) {
    return GeIdentity();
  }
  OddTable table = BuildOddTable(p);
  return WNafEvaluate(naf, len, table, naf, 0, &table);
}

GePoint GeDoubleScalarMultVartime(const uint8_t a[32], const GePoint& A, const uint8_t b[32]) {
  int8_t naf_a[kWNafMaxDigits];
  int8_t naf_b[kWNafMaxDigits];
  int len_a = ScWNaf(naf_a, a, 5);
  int len_b = ScWNaf(naf_b, b, kBaseWNafWidth);
  OddTable table = BuildOddTable(A);
  return WNafEvaluate(naf_a, len_a, table, naf_b, len_b, nullptr);
}

GePoint GeTwoScalarMultVartime(const uint8_t a[32], const GePoint& A, const uint8_t b[32],
                               const GePoint& B) {
  int8_t naf_a[kWNafMaxDigits];
  int8_t naf_b[kWNafMaxDigits];
  int len_a = ScWNaf(naf_a, a, 5);
  int len_b = ScWNaf(naf_b, b, 5);
  OddTable table_a = BuildOddTable(A);
  OddTable table_b = BuildOddTable(B);
  return WNafEvaluate(naf_a, len_a, table_a, naf_b, len_b, &table_b);
}

GePoint GeMulByCofactor(const GePoint& p) { return GeDouble(GeDouble(GeDouble(p))); }

bool GeIsIdentity(const GePoint& p) { return FeIsZero(p.X) && FeEq(p.Y, p.Z); }

bool GeEq(const GePoint& p, const GePoint& q) {
  // X1/Z1 == X2/Z2  and  Y1/Z1 == Y2/Z2, cross-multiplied.
  return FeEq(FeMul(p.X, q.Z), FeMul(q.X, p.Z)) && FeEq(FeMul(p.Y, q.Z), FeMul(q.Y, p.Z));
}

void GeToBytes(uint8_t out[32], const GePoint& p) {
  Fe zinv = FeInvert(p.Z);
  Fe x = FeMul(p.X, zinv);
  Fe y = FeMul(p.Y, zinv);
  FeToBytes(out, y);
  out[31] = static_cast<uint8_t>(out[31] | (FeIsNegative(x) << 7));
}

std::optional<GePoint> GeFromBytes(const uint8_t in[32]) {
  int sign = in[31] >> 7;
  Fe y = FeFromBytes(in);

  // x^2 = (y^2 - 1) / (d*y^2 + 1)
  Fe y2 = FeSq(y);
  Fe u = FeSub(y2, FeOne());
  Fe v = FeAdd(FeMul(GeConstD(), y2), FeOne());

  // Candidate root: x = u * v^3 * (u * v^7)^((p-5)/8), with the fixed
  // exponent (p-5)/8 = 2^252 - 3 evaluated by addition chain.
  Fe v3 = FeMul(FeSq(v), v);
  Fe v7 = FeMul(FeSq(v3), v);
  Fe x = FeMul(FeMul(u, v3), FePow22523(FeMul(u, v7)));

  Fe vx2 = FeMul(v, FeSq(x));
  if (FeEq(vx2, u)) {
    // x is the root.
  } else if (FeEq(vx2, FeNeg(u))) {
    x = FeMul(x, FeSqrtM1());
  } else {
    return std::nullopt;
  }

  if (FeIsZero(x) && sign == 1) {
    return std::nullopt;  // -0 is not a valid encoding.
  }
  if (FeIsNegative(x) != sign) {
    x = FeNeg(x);
  }

  GePoint p;
  p.X = x;
  p.Y = y;
  p.Z = FeOne();
  p.T = FeMul(x, y);
  return p;
}

}  // namespace internal
}  // namespace algorand
