// Minimal 256/512-bit unsigned integer helpers shared by the Curve25519 field
// and scalar arithmetic. Little-endian 64-bit limbs, __int128 partial products.
//
// These are internal building blocks; they favour obvious correctness over
// peak speed (the simulator additionally caches verifications, so crypto is
// not the bottleneck).
#ifndef ALGORAND_SRC_CRYPTO_INTERNAL_U256_H_
#define ALGORAND_SRC_CRYPTO_INTERNAL_U256_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace algorand {
namespace internal {

using U256 = std::array<uint64_t, 4>;
using U512 = std::array<uint64_t, 8>;

// r = a + b, returns the carry-out (0 or 1).
inline uint64_t Add(U256* r, const U256& a, const U256& b) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 s = static_cast<unsigned __int128>(a[static_cast<size_t>(i)]) +
                          b[static_cast<size_t>(i)] + carry;
    (*r)[static_cast<size_t>(i)] = static_cast<uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<uint64_t>(carry);
}

// r = a + small, returns carry-out.
inline uint64_t AddSmall(U256* r, const U256& a, uint64_t small) {
  unsigned __int128 carry = small;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 s = static_cast<unsigned __int128>(a[static_cast<size_t>(i)]) + carry;
    (*r)[static_cast<size_t>(i)] = static_cast<uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<uint64_t>(carry);
}

// r = a - b, returns the borrow-out (0 or 1).
inline uint64_t Sub(U256* r, const U256& a, const U256& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(a[static_cast<size_t>(i)]) -
                          b[static_cast<size_t>(i)] - borrow;
    (*r)[static_cast<size_t>(i)] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>((d >> 64) & 1);
  }
  return borrow;
}

// Lexicographic compare as integers: -1, 0, +1.
inline int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[static_cast<size_t>(i)] != b[static_cast<size_t>(i)]) {
      return a[static_cast<size_t>(i)] < b[static_cast<size_t>(i)] ? -1 : 1;
    }
  }
  return 0;
}

inline bool IsZero(const U256& a) { return (a[0] | a[1] | a[2] | a[3]) == 0; }

// Full 256x256 -> 512 schoolbook multiply.
inline U512 MulWide(const U256& a, const U256& b) {
  U512 r{};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a[static_cast<size_t>(i)]) *
                                  b[static_cast<size_t>(j)] +
                              r[static_cast<size_t>(i + j)] + carry;
      r[static_cast<size_t>(i + j)] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    r[static_cast<size_t>(i + 4)] = static_cast<uint64_t>(carry);
  }
  return r;
}

// a >> 1 in place.
inline void Shr1(U256* a) {
  for (int i = 0; i < 3; ++i) {
    (*a)[static_cast<size_t>(i)] =
        ((*a)[static_cast<size_t>(i)] >> 1) | ((*a)[static_cast<size_t>(i + 1)] << 63);
  }
  (*a)[3] >>= 1;
}

// Returns bit `i` (0-based from the least significant) of a.
inline int Bit(const U256& a, int i) {
  return static_cast<int>((a[static_cast<size_t>(i / 64)] >> (i % 64)) & 1);
}

// 512-bit value mod a 256-bit modulus via binary long division. `m` must have
// its top bit (bit 255) clear is NOT required; m must be nonzero.
U256 Mod512(const U512& n, const U256& m);

}  // namespace internal
}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_INTERNAL_U256_H_
