// Scalar arithmetic modulo the Ed25519 group order
// L = 2^252 + 27742317777372353535851937790883648493.
#ifndef ALGORAND_SRC_CRYPTO_INTERNAL_SC25519_H_
#define ALGORAND_SRC_CRYPTO_INTERNAL_SC25519_H_

#include <cstdint>

#include "src/crypto/internal/u256.h"

namespace algorand {
namespace internal {

// The group order L.
const U256& ScOrder();

// Reduces a 512-bit little-endian value (e.g. a SHA-512 digest) mod L and
// writes the 32-byte little-endian result.
void ScReduce64(uint8_t out[32], const uint8_t in[64]);

// out = (a*b + c) mod L; inputs are 32-byte little-endian scalars (a and c
// may be >= L; they are reduced).
void ScMulAdd(uint8_t out[32], const uint8_t a[32], const uint8_t b[32], const uint8_t c[32]);

// Returns true iff the 32-byte little-endian value is < L (canonical).
bool ScIsCanonical(const uint8_t s[32]);

// Helpers between byte strings and U256.
U256 ScFromBytes(const uint8_t in[32]);
void ScToBytes(uint8_t out[32], const U256& s);

// Maximum digit count of a width-w NAF of a 256-bit scalar (the borrow of
// the top window can carry one position past bit 255).
constexpr int kWNafMaxDigits = 257;

// Width-`width` non-adjacent form: writes little-endian digits such that
// s = sum_i out[i] * 2^i, each digit zero or odd in
// [-(2^(width-1) - 1), 2^(width-1) - 1], with at least width-1 zeros after
// every nonzero digit. Returns the number of significant digits (index of
// the highest nonzero digit + 1; 0 for s = 0). width must be in [2, 8].
// Variable time — verification-side use only.
int ScWNaf(int8_t out[kWNafMaxDigits], const uint8_t s[32], int width);

}  // namespace internal
}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_INTERNAL_SC25519_H_
