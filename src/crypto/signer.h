// Signature backend abstraction (real Ed25519 vs. cheap simulation signer).
//
// Every gossip message in Algorand is signed by its originator and verified
// before relay (§4, §8.4). For very large simulations the signing/verifying
// cost can be replaced by a keyed hash, mirroring the paper's own 500k-user
// methodology; the default everywhere is the real Ed25519.
#ifndef ALGORAND_SRC_CRYPTO_SIGNER_H_
#define ALGORAND_SRC_CRYPTO_SIGNER_H_

#include <span>

#include "src/common/bytes.h"
#include "src/crypto/ed25519.h"

namespace algorand {

class SignerBackend {
 public:
  virtual ~SignerBackend() = default;
  virtual Signature Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message) const = 0;
  virtual bool Verify(const PublicKey& pk, std::span<const uint8_t> message,
                      const Signature& sig) const = 0;
  virtual const char* name() const = 0;
};

class Ed25519Signer : public SignerBackend {
 public:
  Signature Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message) const override {
    return Ed25519Sign(key, message);
  }
  bool Verify(const PublicKey& pk, std::span<const uint8_t> message,
              const Signature& sig) const override {
    return Ed25519Verify(pk, message, sig);
  }
  const char* name() const override { return "ed25519"; }
};

// sig = SHA512("simsig" || pk || message) truncated to 64 bytes: forgeable by
// anyone who can hash, so only valid for honest-performance simulations.
class SimSigner : public SignerBackend {
 public:
  Signature Sign(const Ed25519KeyPair& key, std::span<const uint8_t> message) const override;
  bool Verify(const PublicKey& pk, std::span<const uint8_t> message,
              const Signature& sig) const override;
  const char* name() const override { return "simsig"; }
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_SIGNER_H_
