// ECVRF-ED25519-SHA512-TAI (the Goldberg et al. construction the paper cites,
// as specified in draft-irtf-cfrg-vrf), plus the VrfBackend abstraction.
//
// The VRF is the heart of cryptographic sortition (§5): VRF_sk(x) returns a
// pseudo-random 64-byte output plus an 80-byte proof that anyone holding pk
// can check. EcVrf is the real construction; SimVrf is a keyed-hash stand-in
// with the same output distribution for very large simulations — the same
// substitution the paper makes when it replaces verifications with sleeps at
// 500,000 users (§10.1).
#ifndef ALGORAND_SRC_CRYPTO_VRF_H_
#define ALGORAND_SRC_CRYPTO_VRF_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "src/common/bytes.h"
#include "src/crypto/ed25519.h"

namespace algorand {

struct VrfResult {
  VrfOutput output;  // beta: the pseudo-random value.
  VrfProof proof;    // pi: proves output corresponds to (pk, alpha).
};

// ECVRF prove: requires the full key pair.
VrfResult EcVrfProve(const Ed25519KeyPair& key, std::span<const uint8_t> alpha);

// ECVRF verify: recomputes beta from (pk, alpha, proof); nullopt if invalid.
// The challenge equations U = [s]B - [c]Y and V = [s]H - [c]Gamma are
// evaluated with interleaved w-NAF double-scalar multiplications.
std::optional<VrfOutput> EcVrfVerify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                     const VrfProof& proof);

// The original verify with four independent scalar multiplications. Kept as
// the reference implementation for decision-parity tests and the
// baseline-vs-optimized benchmarks; not used by production paths.
std::optional<VrfOutput> EcVrfVerifyLegacy(const PublicKey& pk, std::span<const uint8_t> alpha,
                                           const VrfProof& proof);

// Abstraction over the VRF so simulations can swap the real construction for
// a cheap deterministic stand-in.
class VrfBackend {
 public:
  virtual ~VrfBackend() = default;
  virtual VrfResult Prove(const Ed25519KeyPair& key, std::span<const uint8_t> alpha) const = 0;
  virtual std::optional<VrfOutput> Verify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                          const VrfProof& proof) const = 0;
  virtual const char* name() const = 0;
};

// Real elliptic-curve VRF.
class EcVrf : public VrfBackend {
 public:
  VrfResult Prove(const Ed25519KeyPair& key, std::span<const uint8_t> alpha) const override;
  std::optional<VrfOutput> Verify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                  const VrfProof& proof) const override;
  const char* name() const override { return "ecvrf"; }
};

// Keyed-hash stand-in: output = SHA512("simvrf" || pk || alpha). Verifiable by
// anyone (so it loses the privacy property — documented in DESIGN.md), but
// uniformly distributed and deterministic, which is all the performance
// simulations need.
class SimVrf : public VrfBackend {
 public:
  VrfResult Prove(const Ed25519KeyPair& key, std::span<const uint8_t> alpha) const override;
  std::optional<VrfOutput> Verify(const PublicKey& pk, std::span<const uint8_t> alpha,
                                  const VrfProof& proof) const override;
  const char* name() const override { return "simvrf"; }
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CRYPTO_VRF_H_
