// Conservative-lookahead parallel discrete-event engine.
//
// The sequential Simulation dilutes one core as the node count grows; this
// engine shards the simulated nodes across worker threads and synchronizes
// them with the classic conservative-parallel-DES argument: every
// node-to-node message takes at least `lookahead` of simulated time to
// arrive (uplink send overhead plus the latency-matrix floor), so all events
// inside a window [T, T + lookahead) are causally independent across nodes
// and may run concurrently. Cross-shard sends are buffered in per-(src,dst)
// exchange queues and merged into the target shard's heap at the window
// barrier — always before the window that contains their delivery time.
//
// Determinism contract (the property sim_determinism_test pins): the result
// of a run depends only on (seed, scenario), never on the worker count.
// Mechanism: every event carries a key (when, key_stream, key_seq), where
// key_stream is the *logical stream* — the node whose callback scheduled the
// event — and key_seq a per-stream counter. A stream's events execute in key
// order on exactly one shard; schedules during those executions increment the
// stream's counter in a deterministic order; cross-shard deliveries are keyed
// by their sender. Window boundaries are derived from the global minimum
// event time and the lookahead only — quantities independent of the worker
// count — so workers=1 and workers=N take byte-identical window sequences
// and every per-stream execution order matches exactly.
//
// Events scheduled from outside event execution (harness probes, crash
// schedules, stats reporters) belong to the distinguished kGlobalStream:
// they run on the coordinator thread at window barriers, when every worker
// is parked, and may therefore touch any node's state. At equal timestamps,
// node-stream events order before global-stream events (kGlobalStream is the
// largest stream id).
#ifndef ALGORAND_SRC_NETSIM_PARALLEL_SIMULATION_H_
#define ALGORAND_SRC_NETSIM_PARALLEL_SIMULATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/netsim/simulation.h"

namespace algorand {

class ParallelSimulation : public Simulation {
 public:
  // `workers`: shard/worker count (>= 1; 1 runs the single shard inline on
  // the calling thread — same windows, no thread hand-off). `n_streams`:
  // number of logical node streams (stream ids 0..n_streams-1; kGlobalStream
  // is implicit). `lookahead`: strictly positive minimum cross-node delivery
  // delay in simulated time.
  ParallelSimulation(size_t workers, size_t n_streams, SimTime lookahead);
  ~ParallelSimulation() override;

  SimTime now() const override;
  void Schedule(SimTime delay, Callback fn) override;
  void ScheduleAt(SimTime when, Callback fn) override;
  void ScheduleAtForStream(SimTime when, uint32_t stream, Callback fn) override;
  void SetExternalStream(uint32_t stream) override { external_stream_ = stream; }

  void Run() override;
  void RunUntil(SimTime deadline) override;
  bool Step() override;  // One conservative window.

  void Stop() override { pstopped_.store(true, std::memory_order_relaxed); }
  bool stopped() const override { return pstopped_.load(std::memory_order_relaxed); }
  size_t pending_events() const override;
  uint64_t executed_events() const override;
  std::vector<std::pair<std::string, uint64_t>> EngineStats() const override;

  size_t workers() const { return workers_; }
  SimTime lookahead() const { return lookahead_; }
  uint64_t windows() const { return windows_; }
  uint64_t cross_shard_events() const { return exchanged_; }

 private:
  struct PEvent {
    SimTime when;
    uint32_t key_stream;   // Stream whose callback scheduled the event.
    uint64_t key_seq;      // Per-key_stream counter: makes the key total.
    uint32_t exec_stream;  // Stream whose state the event touches.
    Callback fn;
  };

  static bool Before(const PEvent& a, const PEvent& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    if (a.key_stream != b.key_stream) {
      return a.key_stream < b.key_stream;
    }
    return a.key_seq < b.key_seq;
  }

  struct Shard {
    std::vector<PEvent> heap;  // 4-ary array heap ordered by Before().
    SimTime local_now = 0;
    uint32_t current_stream = kGlobalStream;
    uint64_t executed = 0;
    uint64_t peak_queue = 0;
  };

  size_t ShardOf(uint32_t stream) const { return static_cast<size_t>(stream) % workers_; }
  // The stream on whose behalf the calling thread is scheduling right now.
  uint32_t ContextStream() const;
  SimTime ContextNow() const;

  void PushEvent(size_t shard, PEvent ev);
  static void HeapPush(std::vector<PEvent>* heap, PEvent ev);
  static PEvent HeapPop(std::vector<PEvent>* heap);

  // Runs every event with when <= window_end on shard `s`. Sets the calling
  // thread's worker context for the duration.
  void ProcessShardWindow(size_t s, SimTime window_end);
  // Runs one window across all shards (threads or inline). Returns false if
  // there was nothing to run at or before `deadline`.
  bool Advance(SimTime deadline);
  void DrainExchanges();
  SimTime MinShardTime() const;
  void WorkerLoop(size_t shard_index);

  const size_t workers_;
  const SimTime lookahead_;
  std::vector<Shard> shards_;
  // Per-stream schedule counters; index n_streams_ holds kGlobalStream's.
  std::vector<uint64_t> stream_seq_;
  const size_t n_streams_;

  // Cross-shard exchange buffers: exchange_[src][dst] is written only by
  // src's worker during a window and drained only at barriers.
  std::vector<std::vector<std::vector<PEvent>>> exchange_;

  // Global-stream events, run at barriers on the coordinator thread.
  std::map<std::pair<SimTime, uint64_t>, Callback> global_;
  uint64_t global_executed_ = 0;

  uint32_t external_stream_ = kGlobalStream;
  std::atomic<bool> pstopped_{false};
  uint64_t windows_ = 0;
  uint64_t exchanged_ = 0;

  // Worker pool synchronization (unused when workers_ == 1).
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_done_;
  uint64_t epoch_ = 0;
  SimTime window_end_ = 0;
  size_t workers_done_ = 0;
  bool exit_ = false;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_PARALLEL_SIMULATION_H_
