// The type-erased message interface the network simulator transports.
//
// Within a single simulation process, messages travel as shared_ptr to an
// immutable object rather than as serialized bytes: the declared WireSize()
// is what bandwidth accounting charges (for real wire formats this is the
// serialized size; blocks add their simulated padding). DedupId() lets gossip
// agents drop duplicates, as in the paper's "users do not relay the same
// message twice".
//
// Identity is memoized: WireSize, DedupId, and the transport encoding are
// computed at most once per message and then frozen. The contract that makes
// this sound: a message is immutable from the moment it is first
// gossiped/sent; builders fill fields only before that, and copying or
// assigning a message resets the destination's cache, so a mutated copy
// never inherits stale identity. First use may race between the protocol
// thread and verification workers, so publication is a tiny acquire/release
// state machine (empty -> building -> ready) per cached field.
#ifndef ALGORAND_SRC_NETSIM_MESSAGE_H_
#define ALGORAND_SRC_NETSIM_MESSAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"

namespace algorand {

// Compact causal trace context a message carries from its originator: who
// first gossiped it and when (executor nanoseconds). Receivers use it to
// measure true propagation latency across nodes (and, over TCP, across
// processes — the codec carries it in the frame envelope). UINT32_MAX means
// "never stamped" (pre-tracing senders, hand-built test messages).
struct TraceContext {
  uint32_t origin = UINT32_MAX;
  uint64_t emitted_at = 0;

  bool stamped() const { return origin != UINT32_MAX; }
};

class SimMessage {
 public:
  // Produces the tagged transport encoding of a message (see wire_codec.h).
  // A function pointer, not std::function: EncodedWire is called per send and
  // the encoder set is fixed at compile time.
  using WireEncoder = std::vector<uint8_t> (*)(const SimMessage&);

  SimMessage() = default;
  virtual ~SimMessage() = default;

  // Bytes this message occupies on the wire. First call invokes
  // ComputeWireSize(); later calls return the frozen value.
  uint64_t WireSize() const;

  // Identity for gossip deduplication (content hash), computed once.
  const Hash256& DedupId() const;

  // The tagged transport encoding, computed by `encode` on first use and
  // reused for every subsequent send (the TCP layer fans one buffer out to
  // all neighbours instead of re-serializing per connection). The reference
  // is valid for the message's lifetime. All callers of a given message must
  // pass the same encoder.
  const std::vector<uint8_t>& EncodedWire(WireEncoder encode) const;

  // Causal trace context, set once at origination and frozen (like the other
  // memoized identity fields). StampTraceContext is a no-op after the first
  // call, so relays forwarding a message never overwrite the originator's
  // stamp. trace_context() returns a default (unstamped) context until the
  // stamp is published.
  const TraceContext& trace_context() const;
  void StampTraceContext(uint32_t origin, uint64_t emitted_at) const;

  // Short label for metrics ("vote", "block", ...).
  virtual const char* TypeName() const = 0;

 protected:
  // Compute hooks, invoked at most once each by the memoized accessors.
  virtual uint64_t ComputeWireSize() const = 0;
  virtual Hash256 ComputeDedupId() const = 0;

 private:
  enum : uint8_t { kEmpty = 0, kBuilding = 1, kReady = 2 };

  // Runs `fill` under the slot's once-discipline: exactly one caller computes,
  // racing callers spin briefly until the value is published.
  template <typename Fill>
  void Once(std::atomic<uint8_t>* state, Fill&& fill) const;

  // The cache is identity-of-content, not identity-of-object: copies and
  // assigned-to messages start cold, because their content may (or did) just
  // change under the same object. Reset happens while the destination is
  // exclusively owned — sharing starts only once the message is frozen.
  struct Memo {
    Memo() = default;
    Memo(const Memo&) noexcept {}
    Memo& operator=(const Memo&) noexcept {
      size_state.store(kEmpty, std::memory_order_relaxed);
      id_state.store(kEmpty, std::memory_order_relaxed);
      wire_state.store(kEmpty, std::memory_order_relaxed);
      trace_state.store(kEmpty, std::memory_order_relaxed);
      encoded.clear();
      trace = TraceContext{};
      return *this;
    }

    std::atomic<uint8_t> size_state{kEmpty};
    std::atomic<uint8_t> id_state{kEmpty};
    std::atomic<uint8_t> wire_state{kEmpty};
    std::atomic<uint8_t> trace_state{kEmpty};
    uint64_t wire_size = 0;
    Hash256 dedup_id;
    std::vector<uint8_t> encoded;
    TraceContext trace;
  };
  mutable Memo memo_;
};

using MessagePtr = std::shared_ptr<const SimMessage>;

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_MESSAGE_H_
