// The type-erased message interface the network simulator transports.
//
// Within a single simulation process, messages travel as shared_ptr to an
// immutable object rather than as serialized bytes: the declared WireSize()
// is what bandwidth accounting charges (for real wire formats this is the
// serialized size; blocks add their simulated padding). DedupId() lets gossip
// agents drop duplicates, as in the paper's "users do not relay the same
// message twice".
#ifndef ALGORAND_SRC_NETSIM_MESSAGE_H_
#define ALGORAND_SRC_NETSIM_MESSAGE_H_

#include <cstdint>
#include <memory>

#include "src/common/bytes.h"

namespace algorand {

class SimMessage {
 public:
  virtual ~SimMessage() = default;
  // Bytes this message occupies on the wire.
  virtual uint64_t WireSize() const = 0;
  // Identity for gossip deduplication (content hash).
  virtual Hash256 DedupId() const = 0;
  // Short label for metrics ("vote", "block", ...).
  virtual const char* TypeName() const = 0;
};

using MessagePtr = std::shared_ptr<const SimMessage>;

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_MESSAGE_H_
