#include "src/netsim/latency.h"

#include <cmath>

namespace algorand {
namespace {

struct City {
  const char* name;
  double lat;  // degrees
  double lon;  // degrees
};

// Twenty major cities spread across the paper's deployment regions.
constexpr City kCities[20] = {
    {"New York", 40.71, -74.01},    {"San Francisco", 37.77, -122.42},
    {"Chicago", 41.88, -87.63},     {"Toronto", 43.65, -79.38},
    {"Sao Paulo", -23.55, -46.63},  {"London", 51.51, -0.13},
    {"Paris", 48.86, 2.35},         {"Frankfurt", 50.11, 8.68},
    {"Madrid", 40.42, -3.70},       {"Stockholm", 59.33, 18.06},
    {"Moscow", 55.76, 37.62},       {"Mumbai", 19.08, 72.88},
    {"Singapore", 1.35, 103.82},    {"Hong Kong", 22.32, 114.17},
    {"Tokyo", 35.68, 139.65},       {"Seoul", 37.57, 126.98},
    {"Sydney", -33.87, 151.21},     {"Johannesburg", -26.20, 28.05},
    {"Dubai", 25.20, 55.27},        {"Mexico City", 19.43, -99.13},
};

double Radians(double deg) { return deg * M_PI / 180.0; }

// Great-circle distance in km.
double HaversineKm(const City& a, const City& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  double dlat = Radians(b.lat - a.lat);
  double dlon = Radians(b.lon - a.lon);
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(Radians(a.lat)) * std::cos(Radians(b.lat)) * std::sin(dlon / 2) *
                 std::sin(dlon / 2);
  return 2 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace

const std::vector<std::string>& CityLatencyModel::CityNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const City& c : kCities) {
      names.emplace_back(c.name);
    }
    return names;
  }();
  return kNames;
}

CityLatencyModel::CityLatencyModel(size_t n_nodes, uint64_t rng_seed)
    : rng_(rng_seed, "city-latency") {
  constexpr int kNumCities = 20;
  // Speed of light in fibre ~ 200,000 km/s; routing inflates path length.
  constexpr double kKmPerMs = 200.0;
  constexpr double kRoutingFactor = 1.6;
  constexpr SimTime kLastMile = Millis(4);
  constexpr SimTime kIntraCity = Millis(1);

  base_.assign(kNumCities, std::vector<SimTime>(kNumCities, 0));
  for (int i = 0; i < kNumCities; ++i) {
    for (int j = 0; j < kNumCities; ++j) {
      if (i == j) {
        base_[static_cast<size_t>(i)][static_cast<size_t>(j)] = kIntraCity;
        continue;
      }
      double km = HaversineKm(kCities[i], kCities[j]);
      double ms = km / kKmPerMs * kRoutingFactor;
      base_[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          kLastMile + static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
    }
  }
  city_of_.resize(n_nodes);
  for (size_t n = 0; n < n_nodes; ++n) {
    city_of_[n] = static_cast<int>(n % kNumCities);
  }
  floor_ = kIntraCity;
  for (const auto& row : base_) {
    for (SimTime t : row) {
      if (t < floor_) {
        floor_ = t;
      }
    }
  }
}

void CityLatencyModel::SetPerSenderStreams(size_t n_senders) {
  per_sender_.clear();
  per_sender_.reserve(n_senders);
  for (size_t i = 0; i < n_senders; ++i) {
    per_sender_.push_back(rng_.Fork("sender-" + std::to_string(i)));
  }
}

SimTime CityLatencyModel::BaseLatency(int city_a, int city_b) const {
  return base_[static_cast<size_t>(city_a)][static_cast<size_t>(city_b)];
}

SimTime CityLatencyModel::Sample(NodeId from, NodeId to) {
  SimTime base = base_[static_cast<size_t>(city_of_[from])][static_cast<size_t>(city_of_[to])];
  DeterministicRng& rng =
      per_sender_.empty() ? rng_ : per_sender_[static_cast<size_t>(from) % per_sender_.size()];
  double jitter = std::abs(rng.Normal(0.0, 0.10));
  return base + static_cast<SimTime>(static_cast<double>(base) * jitter);
}

}  // namespace algorand
