#include "src/netsim/gossip.h"

#include <algorithm>
#include <queue>

namespace algorand {

GossipTopology::GossipTopology(size_t n_nodes, size_t out_degree, DeterministicRng* rng) {
  adj_.assign(n_nodes, {});
  if (n_nodes <= 1) {
    return;
  }
  // Each node dials `out_degree` distinct random peers; a connection is
  // bidirectional (TCP), so the expected total degree is about twice that
  // (out-peers plus whoever dialed us).
  std::vector<std::unordered_set<NodeId>> sets(n_nodes);
  for (size_t n = 0; n < n_nodes; ++n) {
    std::unordered_set<NodeId> dialed;
    size_t want = std::min(out_degree, n_nodes - 1);
    while (dialed.size() < want) {
      NodeId peer = static_cast<NodeId>(rng->UniformU64(n_nodes));
      if (peer == n) {
        continue;
      }
      if (dialed.insert(peer).second) {
        sets[n].insert(peer);
        sets[peer].insert(static_cast<NodeId>(n));
      }
    }
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    adj_[n].assign(sets[n].begin(), sets[n].end());
    std::sort(adj_[n].begin(), adj_[n].end());  // Determinism.
  }
}

double GossipTopology::average_degree() const {
  if (adj_.empty()) {
    return 0;
  }
  size_t total = 0;
  for (const auto& nbrs : adj_) {
    total += nbrs.size();
  }
  return static_cast<double>(total) / static_cast<double>(adj_.size());
}

size_t GossipTopology::LargestComponentLowerBound() const {
  if (adj_.empty()) {
    return 0;
  }
  std::vector<bool> visited(adj_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  visited[0] = true;
  size_t count = 0;
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop();
    ++count;
    for (NodeId peer : adj_[n]) {
      if (!visited[peer]) {
        visited[peer] = true;
        frontier.push(peer);
      }
    }
  }
  return count;
}

GossipAgent::GossipAgent(NodeId self, Transport* network, const GossipTopology* topology)
    : self_(self), network_(network), topology_(topology) {}

void GossipAgent::Gossip(const MessagePtr& msg) {
  if (!seen_.insert(msg->DedupId()).second) {
    return;  // Already originated/relayed.
  }
  if (handler_) {
    handler_(msg);
  }
  Forward(msg, self_);
}

void GossipAgent::SendToNeighbors(const MessagePtr& msg) {
  seen_.insert(msg->DedupId());
  Forward(msg, self_);
}

void GossipAgent::SendTo(NodeId peer, const MessagePtr& msg) {
  seen_.insert(msg->DedupId());
  network_->Send(self_, peer, msg);
}

void GossipAgent::OnReceive(NodeId from, const MessagePtr& msg) {
  if (seen_.count(msg->DedupId())) {
    ++duplicates_dropped_;
    return;
  }
  GossipVerdict verdict = validator_ ? validator_(msg) : GossipVerdict::kRelay;
  if (verdict == GossipVerdict::kReject) {
    ++rejected_;
    return;  // Not marked seen: a valid copy arriving later is still usable.
  }
  seen_.insert(msg->DedupId());
  if (handler_) {
    handler_(msg);
  }
  if (verdict == GossipVerdict::kRelay) {
    Forward(msg, from);
  }
}

void GossipAgent::Forward(const MessagePtr& msg, NodeId except) {
  for (NodeId peer : topology_->neighbors(self_)) {
    if (peer != except) {
      network_->Send(self_, peer, msg);
    }
  }
}

}  // namespace algorand
