#include "src/netsim/gossip.h"

#include <algorithm>
#include <queue>

namespace algorand {

GossipTopology::GossipTopology(size_t n_nodes, size_t out_degree, DeterministicRng* rng) {
  adj_.assign(n_nodes, {});
  if (n_nodes <= 1) {
    return;
  }
  // Each node dials `out_degree` distinct random peers; a connection is
  // bidirectional (TCP), so the expected total degree is about twice that
  // (out-peers plus whoever dialed us).
  std::vector<std::unordered_set<NodeId>> sets(n_nodes);
  for (size_t n = 0; n < n_nodes; ++n) {
    std::unordered_set<NodeId> dialed;
    size_t want = std::min(out_degree, n_nodes - 1);
    while (dialed.size() < want) {
      NodeId peer = static_cast<NodeId>(rng->UniformU64(n_nodes));
      if (peer == n) {
        continue;
      }
      if (dialed.insert(peer).second) {
        sets[n].insert(peer);
        sets[peer].insert(static_cast<NodeId>(n));
      }
    }
  }
  for (NodeId n = 0; n < n_nodes; ++n) {
    adj_[n].assign(sets[n].begin(), sets[n].end());
    std::sort(adj_[n].begin(), adj_[n].end());  // Determinism.
  }
}

double GossipTopology::average_degree() const {
  if (adj_.empty()) {
    return 0;
  }
  size_t total = 0;
  for (const auto& nbrs : adj_) {
    total += nbrs.size();
  }
  return static_cast<double>(total) / static_cast<double>(adj_.size());
}

size_t GossipTopology::LargestComponentLowerBound() const {
  if (adj_.empty()) {
    return 0;
  }
  std::vector<bool> visited(adj_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  visited[0] = true;
  size_t count = 0;
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop();
    ++count;
    for (NodeId peer : adj_[n]) {
      if (!visited[peer]) {
        visited[peer] = true;
        frontier.push(peer);
      }
    }
  }
  return count;
}

GossipAgent::GossipAgent(NodeId self, Transport* network, const GossipTopology* topology)
    : self_(self), network_(network), topology_(topology) {}

void GossipAgent::AttachMetrics(MetricsRegistry* registry) {
  metrics_ = registry;
  msgs_in_by_type_.clear();
  msgs_out_by_type_.clear();
  if (registry == nullptr) {
    duplicates_dropped_ = &fallback_duplicates_;
    rejected_ = &fallback_rejected_;
    seen_size_gauge_ = &fallback_seen_size_;
    delivered_ = relayed_ = bytes_in_ = bytes_out_ = nullptr;
    return;
  }
  duplicates_dropped_ = &registry->GetCounter("gossip.dup_dropped");
  rejected_ = &registry->GetCounter("gossip.rejected");
  seen_size_gauge_ = &registry->GetGauge("gossip.seen_size");
  delivered_ = &registry->GetCounter("gossip.delivered");
  relayed_ = &registry->GetCounter("gossip.relayed");
  bytes_in_ = &registry->GetCounter("gossip.bytes_in");
  bytes_out_ = &registry->GetCounter("gossip.bytes_out");
}

Counter* GossipAgent::TypeCounter(std::unordered_map<const char*, Counter*>* cache,
                                  const char* direction, const MessagePtr& msg) {
  if (metrics_ == nullptr) {
    return nullptr;
  }
  const char* type = msg->TypeName();
  auto it = cache->find(type);
  if (it != cache->end()) {
    return it->second;
  }
  Counter* counter = &metrics_->GetCounter(std::string("gossip.") + direction + "." + type);
  cache->emplace(type, counter);
  return counter;
}

void GossipAgent::CountSend(const MessagePtr& msg, size_t copies) {
  if (metrics_ == nullptr || copies == 0) {
    return;
  }
  TypeCounter(&msgs_out_by_type_, "msgs_out", msg)->Increment(copies);
  bytes_out_->Increment(msg->WireSize() * copies);
}

bool GossipAgent::MarkSeen(const Hash256& id) {
  if (seen_prev_.count(id) != 0) {
    return false;
  }
  bool inserted = seen_current_.insert(id).second;
  if (inserted) {
    seen_size_gauge_->Set(static_cast<int64_t>(seen_size()));
  }
  return inserted;
}

void GossipAgent::AdvanceSeenWindow(uint64_t window) {
  if (window <= seen_window_) {
    return;
  }
  if (window == seen_window_ + 1) {
    seen_prev_ = std::move(seen_current_);
    seen_current_.clear();
  } else {
    seen_prev_.clear();
    seen_current_.clear();
  }
  seen_window_ = window;
  seen_size_gauge_->Set(static_cast<int64_t>(seen_size()));
}

void GossipAgent::Gossip(const MessagePtr& msg) {
  if (!MarkSeen(msg->DedupId())) {
    return;  // Already originated/relayed.
  }
  StampOrigination(msg);
  if (handler_) {
    handler_(msg);
  }
  Forward(msg, self_);
}

void GossipAgent::SendToNeighbors(const MessagePtr& msg) {
  MarkSeen(msg->DedupId());
  StampOrigination(msg);
  Forward(msg, self_);
}

void GossipAgent::SendTo(NodeId peer, const MessagePtr& msg) {
  MarkSeen(msg->DedupId());
  StampOrigination(msg);
  CountSend(msg, 1);
  network_->Send(self_, peer, msg);
}

void GossipAgent::OnReceive(NodeId from, const MessagePtr& msg) {
  if (metrics_ != nullptr) {
    TypeCounter(&msgs_in_by_type_, "msgs_in", msg)->Increment();
    bytes_in_->Increment(msg->WireSize());
  }
  if (SeenBefore(msg->DedupId())) {
    duplicates_dropped_->Increment();
    return;
  }
  GossipVerdict verdict = validator_ ? validator_(msg) : GossipVerdict::kRelay;
  if (verdict == GossipVerdict::kReject) {
    rejected_->Increment();
    return;  // Not marked seen: a valid copy arriving later is still usable.
  }
  MarkSeen(msg->DedupId());
  if (delivered_ != nullptr) {
    delivered_->Increment();
  }
  if (handler_) {
    handler_(msg);
  }
  if (verdict == GossipVerdict::kRelay) {
    if (relayed_ != nullptr) {
      relayed_->Increment();
    }
    Forward(msg, from);
  }
}

void GossipAgent::Forward(const MessagePtr& msg, NodeId except) {
  size_t copies = 0;
  for (NodeId peer : topology_->neighbors(self_)) {
    if (peer != except) {
      network_->Send(self_, peer, msg);
      ++copies;
    }
  }
  CountSend(msg, copies);
}

}  // namespace algorand
