// Network latency models.
//
// The paper's testbed assigns each VM to one of 20 major cities and applies
// measured inter-city latencies with jitter (§10). CityLatencyModel embeds a
// one-way latency matrix built from geographic distance between those cities
// (great-circle distance over fibre plus a routing overhead factor), which
// matches the magnitude of the WonderNetwork measurements the paper used.
#ifndef ALGORAND_SRC_NETSIM_LATENCY_H_
#define ALGORAND_SRC_NETSIM_LATENCY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_units.h"

namespace algorand {

using NodeId = uint32_t;

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  // One-way propagation delay for a message sent from -> to, including jitter
  // (may be sampled; models may hold mutable rng state).
  virtual SimTime Sample(NodeId from, NodeId to) = 0;
  // A strictly positive lower bound on Sample() over all (from, to) pairs.
  // The parallel engine's conservative lookahead is derived from this floor:
  // no delivery can land earlier than send time + Floor().
  virtual SimTime Floor() const = 0;
  // Splits the jitter rng into one independent stream per sender, so that
  // concurrent senders on different workers sample without sharing state.
  // Draw *values* change versus the shared-stream default (which is why the
  // harness only enables this in parallel mode), but each run remains a pure
  // function of (seed, scenario) — per-stream draws depend only on that
  // sender's own deterministic send sequence.
  virtual void SetPerSenderStreams(size_t n_senders) { (void)n_senders; }
};

// Constant latency plus uniform jitter: handy for unit tests.
class UniformLatencyModel : public LatencyModel {
 public:
  UniformLatencyModel(SimTime base, SimTime jitter, uint64_t rng_seed)
      : base_(base), jitter_(jitter), rng_(rng_seed, "uniform-latency") {}

  SimTime Sample(NodeId from, NodeId) override {
    if (jitter_ <= 0) {
      return base_;
    }
    DeterministicRng& rng =
        per_sender_.empty() ? rng_ : per_sender_[static_cast<size_t>(from) % per_sender_.size()];
    return base_ + static_cast<SimTime>(rng.UniformU64(static_cast<uint64_t>(jitter_)));
  }

  SimTime Floor() const override { return base_ > 0 ? base_ : 1; }

  void SetPerSenderStreams(size_t n_senders) override {
    per_sender_.clear();
    per_sender_.reserve(n_senders);
    for (size_t i = 0; i < n_senders; ++i) {
      per_sender_.push_back(rng_.Fork("sender-" + std::to_string(i)));
    }
  }

 private:
  SimTime base_;
  SimTime jitter_;
  DeterministicRng rng_;
  std::vector<DeterministicRng> per_sender_;
};

// Twenty world cities; nodes are assigned round-robin (matching the paper's
// equal spread of VMs across cities). Latency between cities is derived from
// great-circle distance at 2/3 c with a 1.6x routing factor plus a 4 ms
// last-mile floor; intra-city latency is ~1 ms. Jitter is lognormal-ish:
// base * (1 + |N(0, 0.1)|).
class CityLatencyModel : public LatencyModel {
 public:
  CityLatencyModel(size_t n_nodes, uint64_t rng_seed);

  SimTime Sample(NodeId from, NodeId to) override;
  SimTime Floor() const override { return floor_; }
  void SetPerSenderStreams(size_t n_senders) override;

  int city_of(NodeId n) const { return city_of_[n]; }
  static const std::vector<std::string>& CityNames();
  // Base one-way latency between two cities (no jitter), for tests.
  SimTime BaseLatency(int city_a, int city_b) const;

 private:
  std::vector<int> city_of_;
  std::vector<std::vector<SimTime>> base_;  // [city][city] one-way latency.
  SimTime floor_ = 0;  // min over the base matrix (jitter is non-negative).
  DeterministicRng rng_;
  std::vector<DeterministicRng> per_sender_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_LATENCY_H_
