#include "src/netsim/parallel_simulation.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace algorand {

namespace {

constexpr size_t kArity = 4;
constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

// Identifies the shard (and owning engine) the calling thread is currently
// executing a window for. Workers of different ParallelSimulation instances
// (nested scenario sweeps) never confuse each other: the owner pointer is
// checked on every access.
struct WorkerTls {
  const void* owner = nullptr;
  size_t shard = 0;
};
thread_local WorkerTls tls_worker;

SimTime SaturatingAdd(SimTime a, SimTime b) {
  SimTime out;
  if (__builtin_add_overflow(a, b, &out)) {
    return kNever;
  }
  return out;
}

}  // namespace

ParallelSimulation::ParallelSimulation(size_t workers, size_t n_streams, SimTime lookahead)
    : workers_(workers == 0 ? 1 : workers),
      lookahead_(lookahead < 1 ? 1 : lookahead),
      shards_(workers == 0 ? 1 : workers),
      stream_seq_(n_streams + 1, 0),
      n_streams_(n_streams),
      exchange_(workers_) {
  for (auto& row : exchange_) {
    row.resize(workers_);
  }
  if (workers_ > 1) {
    pool_.reserve(workers_);
    for (size_t i = 0; i < workers_; ++i) {
      pool_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }
}

ParallelSimulation::~ParallelSimulation() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      exit_ = true;
    }
    cv_workers_.notify_all();
    for (auto& t : pool_) {
      t.join();
    }
  }
}

uint32_t ParallelSimulation::ContextStream() const {
  if (tls_worker.owner == this) {
    return shards_[tls_worker.shard].current_stream;
  }
  return external_stream_;
}

SimTime ParallelSimulation::ContextNow() const {
  if (tls_worker.owner == this) {
    return shards_[tls_worker.shard].local_now;
  }
  return Simulation::now();
}

SimTime ParallelSimulation::now() const { return ContextNow(); }

void ParallelSimulation::HeapPush(std::vector<PEvent>* heap, PEvent ev) {
  size_t i = heap->size();
  heap->emplace_back();
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!Before(ev, (*heap)[parent])) {
      break;
    }
    (*heap)[i] = std::move((*heap)[parent]);
    i = parent;
  }
  (*heap)[i] = std::move(ev);
}

ParallelSimulation::PEvent ParallelSimulation::HeapPop(std::vector<PEvent>* heap) {
  PEvent top = std::move(heap->front());
  PEvent last = std::move(heap->back());
  heap->pop_back();
  if (!heap->empty()) {
    size_t i = 0;
    const size_t n = heap->size();
    for (;;) {
      size_t first_child = i * kArity + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      size_t end = first_child + kArity < n ? first_child + kArity : n;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Before((*heap)[c], (*heap)[best])) {
          best = c;
        }
      }
      if (!Before((*heap)[best], last)) {
        break;
      }
      (*heap)[i] = std::move((*heap)[best]);
      i = best;
    }
    (*heap)[i] = std::move(last);
  }
  return top;
}

void ParallelSimulation::PushEvent(size_t shard, PEvent ev) {
  Shard& sh = shards_[shard];
  HeapPush(&sh.heap, std::move(ev));
  if (sh.heap.size() > sh.peak_queue) {
    sh.peak_queue = sh.heap.size();
  }
}

void ParallelSimulation::Schedule(SimTime delay, Callback fn) {
  ScheduleAt(ContextNow() + (delay < 0 ? 0 : delay), std::move(fn));
}

void ParallelSimulation::ScheduleAt(SimTime when, Callback fn) {
  // An event scheduled with no target stream acts on its scheduler's own
  // state (timers); deliveries go through ScheduleAtForStream.
  ScheduleAtForStream(when, ContextStream(), std::move(fn));
}

void ParallelSimulation::ScheduleAtForStream(SimTime when, uint32_t stream, Callback fn) {
  const SimTime current = ContextNow();
  if (when < current) {
    when = current;
  }
  const uint32_t src = ContextStream();
  if (stream == kGlobalStream) {
    // Global events carry a global sequence; they run at barriers.
    const uint64_t seq = stream_seq_[n_streams_]++;
    global_.emplace(std::make_pair(when, seq), std::move(fn));
    return;
  }
  PEvent ev;
  ev.when = when;
  ev.key_stream = src;
  ev.key_seq = src == kGlobalStream ? stream_seq_[n_streams_]++ : stream_seq_[src]++;
  ev.exec_stream = stream;
  ev.fn = std::move(fn);
  const size_t dst = ShardOf(stream);
  if (tls_worker.owner == this && dst != tls_worker.shard) {
    // Cross-shard send from inside a window: buffer for the barrier merge.
    exchange_[tls_worker.shard][dst].push_back(std::move(ev));
    return;
  }
  // Same-shard send, or an external/barrier-context schedule while every
  // worker is parked: push straight into the target heap.
  PushEvent(dst, std::move(ev));
}

SimTime ParallelSimulation::MinShardTime() const {
  SimTime t = kNever;
  for (const Shard& sh : shards_) {
    if (!sh.heap.empty() && sh.heap.front().when < t) {
      t = sh.heap.front().when;
    }
  }
  return t;
}

void ParallelSimulation::DrainExchanges() {
  for (size_t src = 0; src < workers_; ++src) {
    for (size_t dst = 0; dst < workers_; ++dst) {
      std::vector<PEvent>& q = exchange_[src][dst];
      if (q.empty()) {
        continue;
      }
      exchanged_ += q.size();
      for (PEvent& ev : q) {
        PushEvent(dst, std::move(ev));
      }
      q.clear();
    }
  }
}

void ParallelSimulation::ProcessShardWindow(size_t s, SimTime window_end) {
  WorkerTls saved = tls_worker;
  tls_worker.owner = this;
  tls_worker.shard = s;
  Shard& sh = shards_[s];
  while (!sh.heap.empty() && sh.heap.front().when <= window_end) {
    PEvent ev = HeapPop(&sh.heap);
    sh.local_now = ev.when;
    sh.current_stream = ev.exec_stream;
    ++sh.executed;
    ev.fn();
  }
  tls_worker = saved;
}

bool ParallelSimulation::Advance(SimTime deadline) {
  DrainExchanges();
  const SimTime t_shard = MinShardTime();
  const SimTime t_global = global_.empty() ? kNever : global_.begin()->first.first;
  const SimTime t = std::min(t_shard, t_global);
  if (t == kNever || t > deadline) {
    return false;
  }
  SimTime window_end = SaturatingAdd(t, lookahead_ - 1);
  if (window_end > deadline) {
    window_end = deadline;
  }
  bool run_globals = false;
  if (t_global <= window_end) {
    // Clamp the window at the global event: shard events up to (and at) its
    // timestamp run first, then the global events run at the barrier.
    window_end = t_global;
    run_globals = true;
  }
  ++windows_;
  if (t_shard <= window_end) {
    if (workers_ == 1) {
      ProcessShardWindow(0, window_end);
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        window_end_ = window_end;
        workers_done_ = 0;
        ++epoch_;
      }
      cv_workers_.notify_all();
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [this] { return workers_done_ == workers_; });
    }
  }
  DrainExchanges();
  set_now(window_end);
  if (run_globals) {
    while (!stopped() && !global_.empty() && global_.begin()->first.first <= window_end) {
      auto node = global_.extract(global_.begin());
      set_now(node.key().first);
      ++global_executed_;
      node.mapped()();
    }
  }
  return true;
}

void ParallelSimulation::WorkerLoop(size_t shard_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_workers_.wait(lock, [&] { return exit_ || epoch_ != seen_epoch; });
      if (exit_) {
        return;
      }
      seen_epoch = epoch_;
      end = window_end_;
    }
    ProcessShardWindow(shard_index, end);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
    }
    cv_done_.notify_one();
  }
}

void ParallelSimulation::Run() {
  pstopped_.store(false, std::memory_order_relaxed);
  while (!stopped() && Advance(kNever - 1)) {
  }
}

void ParallelSimulation::RunUntil(SimTime deadline) {
  pstopped_.store(false, std::memory_order_relaxed);
  while (!stopped() && Advance(deadline)) {
  }
  if (!stopped() && Simulation::now() < deadline) {
    set_now(deadline);
  }
}

bool ParallelSimulation::Step() { return Advance(kNever - 1); }

size_t ParallelSimulation::pending_events() const {
  size_t n = global_.size();
  for (const Shard& sh : shards_) {
    n += sh.heap.size();
  }
  for (const auto& row : exchange_) {
    for (const auto& q : row) {
      n += q.size();
    }
  }
  return n;
}

uint64_t ParallelSimulation::executed_events() const {
  uint64_t n = global_executed_;
  for (const Shard& sh : shards_) {
    n += sh.executed;
  }
  return n;
}

std::vector<std::pair<std::string, uint64_t>> ParallelSimulation::EngineStats() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.emplace_back("sim.windows", windows_);
  out.emplace_back("sim.cross_shard_events", exchanged_);
  out.emplace_back("sim.global_events", global_executed_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "sim.worker" + std::to_string(i);
    out.emplace_back(prefix + ".events", shards_[i].executed);
    out.emplace_back(prefix + ".peak_queue", shards_[i].peak_queue);
  }
  return out;
}

}  // namespace algorand
