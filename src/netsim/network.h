// Point-to-point transport with bandwidth serialization and latency.
//
// Each node has an uplink of fixed capacity (20 Mbit/s per process in the
// paper's testbed). Sending a message occupies the uplink for
// size/bandwidth; concurrent sends queue behind each other, which is what
// makes large blocks slow to gossip (Figure 7) and what starves the
// 500-users-per-VM configuration (Figure 6). Propagation delay then comes
// from the latency model, and the adversary can drop or delay any
// transmission.
#ifndef ALGORAND_SRC_NETSIM_NETWORK_H_
#define ALGORAND_SRC_NETSIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/netsim/adversary.h"
#include "src/netsim/latency.h"
#include "src/netsim/message.h"
#include "src/netsim/simulation.h"
#include "src/netsim/transport.h"

namespace algorand {

struct NetworkConfig {
  // Uplink capacity per node, bytes per second. 20 Mbit/s default.
  double uplink_bytes_per_sec = 20e6 / 8;
  // Fixed per-message processing overhead at the sender.
  SimTime send_overhead = Micros(50);
  // Messages at or below this size ride a priority channel and do not queue
  // behind bulk transfers (blocks). This models TCP packet interleaving
  // across a node's peer connections: a 300-byte vote slips out between
  // block segments instead of waiting for megabytes to drain. Control
  // traffic is <1% of bytes, so the capacity it "borrows" is negligible.
  uint64_t control_cutoff_bytes = 4096;
};

struct NodeTraffic {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

class Network : public Transport {
 public:
  using DeliveryHandler = std::function<void(NodeId to, NodeId from, const MessagePtr&)>;

  Network(Simulation* sim, LatencyModel* latency, NetworkConfig config, size_t n_nodes);

  // Delivery callback invoked when a message arrives at a node.
  void set_delivery_handler(DeliveryHandler handler) { deliver_ = std::move(handler); }
  // Optional adversary inspecting every transmission.
  void set_adversary(NetworkAdversary* adversary) { adversary_ = adversary; }

  // Sends `msg` from -> to. Charges the sender's uplink and schedules
  // delivery.
  void Send(NodeId from, NodeId to, const MessagePtr& msg) override;

  size_t node_count() const { return traffic_.size(); }
  const NodeTraffic& traffic(NodeId n) const { return traffic_[n]; }
  // Aggregated across per-sender shards; call from a quiescent simulation
  // (between windows / after a run), not from inside node callbacks.
  std::map<std::string, uint64_t> message_counts_by_type() const;
  uint64_t total_bytes_sent() const;

  // Overrides one node's uplink capacity (heterogeneous experiments).
  void set_uplink(NodeId n, double bytes_per_sec) { uplink_rate_[n] = bytes_per_sec; }

 private:
  Simulation* sim_;
  LatencyModel* latency_;
  NetworkConfig config_;
  NetworkAdversary* adversary_ = nullptr;
  DeliveryHandler deliver_;

  std::vector<SimTime> uplink_free_at_;   // Bulk channel: next idle instant.
  std::vector<SimTime> control_free_at_;  // Priority channel for small messages.
  std::vector<double> uplink_rate_;
  std::vector<NodeTraffic> traffic_;
  // Per-sender message-type counters: each entry is only ever written by its
  // sender's worker thread, so Send() needs no lock under the parallel engine.
  std::vector<std::map<std::string, uint64_t>> by_type_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_NETWORK_H_
