// Point-to-point message transport abstraction.
//
// GossipAgent sends through this interface, so the same gossip/relay logic
// runs over the simulated Network (bandwidth + latency models) and over the
// real TCP transport (src/tcp).
#ifndef ALGORAND_SRC_NETSIM_TRANSPORT_H_
#define ALGORAND_SRC_NETSIM_TRANSPORT_H_

#include <cstdint>

#include "src/netsim/message.h"

namespace algorand {

using NodeId = uint32_t;

class Transport {
 public:
  virtual ~Transport() = default;
  // Delivers `msg` from node `from` to node `to` (asynchronously).
  virtual void Send(NodeId from, NodeId to, const MessagePtr& msg) = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_TRANSPORT_H_
