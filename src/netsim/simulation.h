// Deterministic discrete-event simulation core.
//
// A single-threaded event queue ordered by (time, insertion sequence). All of
// Algorand's behaviour in this repository — gossip, timeouts, BA* steps,
// recovery timers — runs as callbacks scheduled here, so a (seed, scenario)
// pair replays identically every run.
//
// The queue is a 4-ary array heap of (when, seq, callback) events. Keying on
// the insertion sequence makes the ordering total, so the heap pops events in
// exactly the (time, insertion) order the reference std::map implementation
// used — replays are bit-identical across both (QueueKind::kMap keeps the map
// around for the determinism regression test and A/B benchmarking). The 4-ary
// layout halves tree depth versus a binary heap and keeps the sift working
// set in one or two cache lines; callbacks live in a small-buffer slot
// (UniqueCallback) so sift moves shuffle 64-ish-byte events instead of
// chasing per-node allocations.
//
// ParallelSimulation (parallel_simulation.h) subclasses this interface with a
// conservative-lookahead multi-worker engine; the virtual hooks below
// (ScheduleAtForStream, SetExternalStream, EngineStats) are no-ops /
// pass-throughs here so single-threaded callers pay nothing.
#ifndef ALGORAND_SRC_NETSIM_SIMULATION_H_
#define ALGORAND_SRC_NETSIM_SIMULATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/executor.h"
#include "src/common/time_units.h"

namespace algorand {

// Model-checker seam: when installed on a (sequential, heap-queue) Simulation,
// the hook is consulted at every dequeue where more than one event is eligible
// to run "next" under a weak-synchrony window. Events whose timestamps lie
// within `Window()` of the earliest pending event are concurrent candidates
// (capped at `MaxCandidates()`); `ChooseNext` picks which one runs. The chosen
// event executes at max(now, event.when) — reordering is equivalent to an
// adversary delaying the passed-over deliveries, so the clock never regresses.
// Unchosen events keep their original (when, seq) keys, so choosing index 0
// everywhere reproduces the default FIFO schedule exactly.
class ScheduleChoiceHook {
 public:
  virtual ~ScheduleChoiceHook() = default;
  // Width of the concurrency window. 0 means only exact-time ties race.
  virtual SimTime Window() const = 0;
  // Cap on candidates gathered per choice point (branching factor bound).
  virtual size_t MaxCandidates() const = 0;
  // Picks which of `count` candidates (listed in default (when, seq) order)
  // runs next. Called only when count > 1; must return a value in [0, count).
  virtual size_t ChooseNext(SimTime earliest, size_t count) = 0;
};

class Simulation : public Executor {
 public:
  using Callback = Executor::Callback;

  enum class QueueKind {
    kHeap,  // 4-ary array heap (default).
    kMap,   // Reference node-based std::map; same ordering, kept for tests.
  };

  // Stream id for events not owned by any simulated node (harness probes,
  // crash schedules, reporters). The parallel engine runs them at window
  // barriers, when every worker is parked.
  static constexpr uint32_t kGlobalStream = UINT32_MAX;

  explicit Simulation(QueueKind queue = QueueKind::kHeap) : queue_kind_(queue) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const override { return now_; }
  QueueKind queue_kind() const { return queue_kind_; }

  // Schedules `fn` to run `delay` from now (negative delays clamp to now).
  void Schedule(SimTime delay, Callback fn) override;
  // Schedules at an absolute time (times in the past clamp to now).
  void ScheduleAt(SimTime when, Callback fn) override;

  // Schedules an event that acts on `stream`'s state (a delivery to node
  // `stream`). The sequential engine ignores the stream; the parallel engine
  // routes the event to the stream's shard and runs it with that stream
  // current, which is what keeps cross-shard sends deterministic.
  virtual void ScheduleAtForStream(SimTime when, uint32_t stream, Callback fn) {
    (void)stream;
    ScheduleAt(when, std::move(fn));
  }

  // Declares which stream subsequent Schedule* calls from *outside* event
  // execution belong to (harness setup, node restarts). No-op here; the
  // parallel engine keys those events to the stream so their ordering is
  // independent of worker count. Pass kGlobalStream to revert to
  // barrier-executed global events.
  virtual void SetExternalStream(uint32_t stream) { (void)stream; }

  // Runs events until the queue drains or `Stop()` is called.
  virtual void Run();
  // Runs events with time <= deadline; leaves later events queued. The clock
  // advances to the deadline.
  virtual void RunUntil(SimTime deadline);
  // Runs at most one event; returns false if the queue was empty. (On the
  // parallel engine: runs one conservative window.)
  virtual bool Step();

  virtual void Stop() { stopped_ = true; }
  virtual bool stopped() const { return stopped_; }
  virtual size_t pending_events() const {
    return queue_kind_ == QueueKind::kHeap ? heap_.size() : map_queue_.size();
  }
  virtual uint64_t executed_events() const { return executed_; }

  // Engine-specific counters folded into metrics snapshots ("sim.windows",
  // per-worker event counts). Empty for the sequential engine.
  virtual std::vector<std::pair<std::string, uint64_t>> EngineStats() const { return {}; }

  // Installs (or clears, with nullptr) the model checker's scheduling hook.
  // Supported only on the sequential heap engine; the parallel engine and the
  // reference map queue ignore it. Not owned.
  void set_choice_hook(ScheduleChoiceHook* hook) { choice_hook_ = hook; }
  ScheduleChoiceHook* choice_hook() const { return choice_hook_; }

 protected:
  void set_now(SimTime t) { now_ = t; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // Insertion order: ties on `when` run FIFO.
    Callback fn;
  };

  // True if `a` runs before `b` under the (time, insertion) total order.
  static bool Before(const Event& a, const Event& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  void HeapPush(Event ev);
  Event HeapPop();
  // Step() body when a choice hook is installed and >1 event is pending.
  void StepWithChoice();

  using Key = std::pair<SimTime, uint64_t>;  // (when, sequence): total order.

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  QueueKind queue_kind_;
  ScheduleChoiceHook* choice_hook_ = nullptr;
  std::vector<Event> heap_;
  std::map<Key, Callback> map_queue_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_SIMULATION_H_
