// Deterministic discrete-event simulation core.
//
// A single-threaded event queue ordered by (time, insertion sequence). All of
// Algorand's behaviour in this repository — gossip, timeouts, BA* steps,
// recovery timers — runs as callbacks scheduled here, so a (seed, scenario)
// pair replays identically every run.
#ifndef ALGORAND_SRC_NETSIM_SIMULATION_H_
#define ALGORAND_SRC_NETSIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/common/executor.h"
#include "src/common/time_units.h"

namespace algorand {

class Simulation : public Executor {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const override { return now_; }

  // Schedules `fn` to run `delay` from now (negative delays clamp to now).
  void Schedule(SimTime delay, Callback fn) override;
  // Schedules at an absolute time (times in the past clamp to now).
  void ScheduleAt(SimTime when, Callback fn) override;

  // Runs events until the queue drains or `Stop()` is called.
  void Run();
  // Runs events with time <= deadline; leaves later events queued. The clock
  // advances to the deadline.
  void RunUntil(SimTime deadline);
  // Runs at most one event; returns false if the queue was empty.
  bool Step();

  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  using Key = std::pair<SimTime, uint64_t>;  // (when, sequence): total order.

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  std::map<Key, Callback> queue_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_SIMULATION_H_
