// Deterministic discrete-event simulation core.
//
// A single-threaded event queue ordered by (time, insertion sequence). All of
// Algorand's behaviour in this repository — gossip, timeouts, BA* steps,
// recovery timers — runs as callbacks scheduled here, so a (seed, scenario)
// pair replays identically every run.
//
// The queue is a 4-ary array heap of (when, seq, callback) events. Keying on
// the insertion sequence makes the ordering total, so the heap pops events in
// exactly the (time, insertion) order the reference std::map implementation
// used — replays are bit-identical across both (QueueKind::kMap keeps the map
// around for the determinism regression test and A/B benchmarking). The 4-ary
// layout halves tree depth versus a binary heap and keeps the sift working
// set in one or two cache lines; callbacks live in a small-buffer slot
// (UniqueCallback) so sift moves shuffle 64-ish-byte events instead of
// chasing per-node allocations.
#ifndef ALGORAND_SRC_NETSIM_SIMULATION_H_
#define ALGORAND_SRC_NETSIM_SIMULATION_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "src/common/executor.h"
#include "src/common/time_units.h"

namespace algorand {

class Simulation : public Executor {
 public:
  using Callback = Executor::Callback;

  enum class QueueKind {
    kHeap,  // 4-ary array heap (default).
    kMap,   // Reference node-based std::map; same ordering, kept for tests.
  };

  explicit Simulation(QueueKind queue = QueueKind::kHeap) : queue_kind_(queue) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const override { return now_; }
  QueueKind queue_kind() const { return queue_kind_; }

  // Schedules `fn` to run `delay` from now (negative delays clamp to now).
  void Schedule(SimTime delay, Callback fn) override;
  // Schedules at an absolute time (times in the past clamp to now).
  void ScheduleAt(SimTime when, Callback fn) override;

  // Runs events until the queue drains or `Stop()` is called.
  void Run();
  // Runs events with time <= deadline; leaves later events queued. The clock
  // advances to the deadline.
  void RunUntil(SimTime deadline);
  // Runs at most one event; returns false if the queue was empty.
  bool Step();

  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }
  size_t pending_events() const {
    return queue_kind_ == QueueKind::kHeap ? heap_.size() : map_queue_.size();
  }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // Insertion order: ties on `when` run FIFO.
    Callback fn;
  };

  // True if `a` runs before `b` under the (time, insertion) total order.
  static bool Before(const Event& a, const Event& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  void HeapPush(Event ev);
  Event HeapPop();

  using Key = std::pair<SimTime, uint64_t>;  // (when, sequence): total order.

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  bool stopped_ = false;
  QueueKind queue_kind_;
  std::vector<Event> heap_;
  std::map<Key, Callback> map_queue_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_SIMULATION_H_
