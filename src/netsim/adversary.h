// Network adversary hooks (§3's threat model).
//
// The adversary inspects every point-to-point transmission and can drop or
// delay it. Implementations model partitions ("the adversary may temporarily
// fully control the network"), targeted DoS of specific nodes, and plain
// packet loss.
#ifndef ALGORAND_SRC_NETSIM_ADVERSARY_H_
#define ALGORAND_SRC_NETSIM_ADVERSARY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time_units.h"
#include "src/netsim/latency.h"
#include "src/netsim/message.h"

namespace algorand {

struct AdversaryAction {
  enum Kind { kDeliver, kDrop, kDelay } kind = kDeliver;
  SimTime extra_delay = 0;

  static AdversaryAction Deliver() { return {kDeliver, 0}; }
  static AdversaryAction Drop() { return {kDrop, 0}; }
  static AdversaryAction Delay(SimTime d) { return {kDelay, d}; }
};

// OnTransmit is called from the sending node's execution context. Under the
// parallel engine different senders call concurrently, so implementations
// must be race-free; those whose *decisions* depend on cross-sender mutable
// state (VoterDosAdversary) are additionally order-sensitive and only give
// reproducible drop patterns on the sequential engine or with workers=1.
class NetworkAdversary {
 public:
  virtual ~NetworkAdversary() = default;
  virtual AdversaryAction OnTransmit(NodeId from, NodeId to, const MessagePtr& msg,
                                     SimTime now) = 0;
  // See LatencyModel::SetPerSenderStreams: adversaries that sample randomness
  // split it per sender so concurrent transmissions stay deterministic.
  virtual void SetPerSenderStreams(size_t n_senders) { (void)n_senders; }
};

// Delegates every per-transmission decision to an external decider — the
// model checker's adversary choice point. The decider sees (from, to, msg,
// now) and returns deliver/drop/delay; sequential-engine use only (deciders
// are stateful strategy callbacks and not thread-safe).
class HookedAdversary : public NetworkAdversary {
 public:
  using Decider =
      std::function<AdversaryAction(NodeId from, NodeId to, const MessagePtr& msg, SimTime now)>;

  explicit HookedAdversary(Decider decider) : decider_(std::move(decider)) {}

  AdversaryAction OnTransmit(NodeId from, NodeId to, const MessagePtr& msg,
                             SimTime now) override {
    if (!decider_) {
      return AdversaryAction::Deliver();
    }
    AdversaryAction act = decider_(from, to, msg, now);
    if (act.kind == AdversaryAction::kDrop) {
      ++dropped_;
    }
    return act;
  }

  uint64_t dropped() const { return dropped_; }

 private:
  Decider decider_;
  uint64_t dropped_ = 0;
};

// Splits nodes into two groups and blocks cross-group traffic during
// [start, end). Models the weak-synchrony asynchronous period.
class PartitionAdversary : public NetworkAdversary {
 public:
  PartitionAdversary(std::set<NodeId> group_a, SimTime start, SimTime end)
      : group_a_(std::move(group_a)), start_(start), end_(end) {}

  AdversaryAction OnTransmit(NodeId from, NodeId to, const MessagePtr&, SimTime now) override {
    if (now >= start_ && now < end_ && (group_a_.count(from) != group_a_.count(to))) {
      return AdversaryAction::Drop();
    }
    return AdversaryAction::Deliver();
  }

 private:
  std::set<NodeId> group_a_;
  SimTime start_;
  SimTime end_;
};

// Drops every packet to/from a set of victims during [start, end): a targeted
// DoS on (for example) revealed committee members.
class TargetedDosAdversary : public NetworkAdversary {
 public:
  TargetedDosAdversary(std::set<NodeId> victims, SimTime start, SimTime end)
      : victims_(std::move(victims)), start_(start), end_(end) {}

  void AddVictim(NodeId v) { victims_.insert(v); }

  AdversaryAction OnTransmit(NodeId from, NodeId to, const MessagePtr&, SimTime now) override {
    if (now >= start_ && now < end_ && (victims_.count(from) || victims_.count(to))) {
      return AdversaryAction::Drop();
    }
    return AdversaryAction::Deliver();
  }

 private:
  std::set<NodeId> victims_;
  SimTime start_;
  SimTime end_;
};

// The fully adaptive attacker of §2: watches the wire and, the moment a node
// reveals itself by originating a vote, cuts that node off (drops all its
// traffic) for `dos_duration`. Participant replacement is exactly the defence
// against this adversary — by the time a committee member is identified, its
// role is already over.
class VoterDosAdversary : public NetworkAdversary {
 public:
  // `reaction_delay` models §8.4's practical bound: the attack lands only
  // after the victim's current send burst has left its uplink (the paper
  // argues a quicker adversary could stop all communication anyway).
  VoterDosAdversary(SimTime dos_duration, size_t max_concurrent_victims,
                    SimTime reaction_delay = Seconds(1))
      : dos_duration_(dos_duration),
        max_victims_(max_concurrent_victims),
        reaction_delay_(reaction_delay) {}

  AdversaryAction OnTransmit(NodeId from, NodeId to, const MessagePtr& msg,
                             SimTime now) override {
    std::lock_guard<std::mutex> lock(mu_);
    // Expire stale victims.
    for (auto it = blocked_until_.begin(); it != blocked_until_.end();) {
      it = it->second <= now ? blocked_until_.erase(it) : std::next(it);
    }
    auto blocked = [&](NodeId n) {
      auto it = blocked_until_.find(n);
      return it != blocked_until_.end() && now >= it->second - dos_duration_;
    };
    if (blocked(from) || blocked(to)) {
      ++dropped_;
      return AdversaryAction::Drop();
    }
    // The first transmission of a vote comes from its originator — the
    // committee member revealing itself. Relays by others don't mark anyone.
    if (std::string_view(msg->TypeName()) == "vote" &&
        seen_votes_.insert(msg->DedupId()).second && blocked_until_.size() < max_victims_ &&
        !blocked_until_.count(from)) {
      // Blocking begins after the reaction delay and lasts dos_duration.
      blocked_until_[from] = now + reaction_delay_ + dos_duration_;
      ++victims_targeted_;
    }
    return AdversaryAction::Deliver();
  }

  uint64_t victims_targeted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return victims_targeted_;
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

 private:
  SimTime dos_duration_;
  size_t max_victims_;
  SimTime reaction_delay_;
  // Victim selection inspects every sender's traffic, so the state is shared
  // and mutex-guarded; see the class-level note on order sensitivity.
  mutable std::mutex mu_;
  std::map<NodeId, SimTime> blocked_until_;
  std::unordered_set<Hash256, FixedBytesHasher> seen_votes_;
  uint64_t victims_targeted_ = 0;
  uint64_t dropped_ = 0;
};

// Rolling churn: in every `period`-long window a different contiguous group
// of `group_size` node ids is offline (all its traffic dropped) for the first
// `offline_for` of the window, cycling through the whole population. Models
// continuous membership churn — each group misses rounds, then must catch up
// while the next group is down.
class ChurnAdversary : public NetworkAdversary {
 public:
  ChurnAdversary(size_t n_nodes, size_t group_size, SimTime period, SimTime offline_for)
      : n_nodes_(n_nodes == 0 ? 1 : n_nodes),
        group_size_(group_size),
        period_(period <= 0 ? Seconds(1) : period),
        offline_for_(offline_for) {}

  bool Offline(NodeId node, SimTime now) const {
    if (group_size_ == 0 || (now % period_) >= offline_for_) {
      return false;
    }
    uint64_t window = static_cast<uint64_t>(now / period_);
    size_t base = static_cast<size_t>((window * group_size_) % n_nodes_);
    size_t offset = (static_cast<size_t>(node) + n_nodes_ - base) % n_nodes_;
    return offset < group_size_;
  }

  AdversaryAction OnTransmit(NodeId from, NodeId to, const MessagePtr&, SimTime now) override {
    if (Offline(from, now) || Offline(to, now)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return AdversaryAction::Drop();
    }
    return AdversaryAction::Deliver();
  }

  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  size_t n_nodes_;
  size_t group_size_;
  SimTime period_;
  SimTime offline_for_;
  // The decision is a pure function of (from, to, now); only the counter is
  // shared, so a relaxed atomic keeps parallel runs deterministic.
  std::atomic<uint64_t> dropped_{0};
};

// Drops each transmission independently with fixed probability.
class LossyAdversary : public NetworkAdversary {
 public:
  LossyAdversary(double drop_probability, uint64_t rng_seed)
      : drop_probability_(drop_probability), rng_(rng_seed, "lossy-adversary") {}

  AdversaryAction OnTransmit(NodeId from, NodeId, const MessagePtr&, SimTime) override {
    DeterministicRng& rng =
        per_sender_.empty() ? rng_ : per_sender_[static_cast<size_t>(from) % per_sender_.size()];
    return rng.UniformDouble() < drop_probability_ ? AdversaryAction::Drop()
                                                   : AdversaryAction::Deliver();
  }

  void SetPerSenderStreams(size_t n_senders) override {
    per_sender_.clear();
    per_sender_.reserve(n_senders);
    for (size_t i = 0; i < n_senders; ++i) {
      per_sender_.push_back(rng_.Fork("sender-" + std::to_string(i)));
    }
  }

 private:
  double drop_probability_;
  DeterministicRng rng_;
  std::vector<DeterministicRng> per_sender_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_ADVERSARY_H_
