#include "src/netsim/network.h"

namespace algorand {

Network::Network(Simulation* sim, LatencyModel* latency, NetworkConfig config, size_t n_nodes)
    : sim_(sim),
      latency_(latency),
      config_(config),
      uplink_free_at_(n_nodes, 0),
      control_free_at_(n_nodes, 0),
      uplink_rate_(n_nodes, config.uplink_bytes_per_sec),
      traffic_(n_nodes),
      by_type_(n_nodes) {}

std::map<std::string, uint64_t> Network::message_counts_by_type() const {
  std::map<std::string, uint64_t> out;
  for (const auto& per_sender : by_type_) {
    for (const auto& [type, count] : per_sender) {
      out[type] += count;
    }
  }
  return out;
}

uint64_t Network::total_bytes_sent() const {
  uint64_t total = 0;
  for (const NodeTraffic& t : traffic_) {
    total += t.bytes_sent;
  }
  return total;
}

void Network::Send(NodeId from, NodeId to, const MessagePtr& msg) {
  const uint64_t size = msg->WireSize();
  traffic_[from].bytes_sent += size;
  traffic_[from].messages_sent += 1;
  by_type_[from][msg->TypeName()] += 1;

  // Uplink serialization: bulk messages queue on the uplink; small control
  // messages (votes, priorities) interleave on the priority channel.
  SimTime tx_time =
      static_cast<SimTime>(static_cast<double>(size) / uplink_rate_[from] *
                           static_cast<double>(kSecond));
  SimTime done;
  if (size <= config_.control_cutoff_bytes) {
    SimTime start = std::max(sim_->now(), control_free_at_[from]) + config_.send_overhead;
    done = start + tx_time;
    control_free_at_[from] = done;
  } else {
    SimTime start = std::max(sim_->now(), uplink_free_at_[from]) + config_.send_overhead;
    done = start + tx_time;
    uplink_free_at_[from] = done;
  }

  AdversaryAction action = AdversaryAction::Deliver();
  if (adversary_ != nullptr) {
    action = adversary_->OnTransmit(from, to, msg, sim_->now());
  }
  if (action.kind == AdversaryAction::kDrop) {
    return;  // Uplink time is still consumed (the bytes left the host).
  }

  // The delivery mutates the receiver's state, so it is keyed to `to`'s
  // stream: the parallel engine routes it to to's shard (cross-shard sends
  // ride the exchange queues and land at a window barrier).
  SimTime arrival = done + latency_->Sample(from, to) + action.extra_delay;
  sim_->ScheduleAtForStream(arrival, to, [this, to, from, msg] {
    traffic_[to].bytes_received += msg->WireSize();
    traffic_[to].messages_received += 1;
    if (deliver_) {
      deliver_(to, from, msg);
    }
  });
}

}  // namespace algorand
