#include "src/netsim/network.h"

namespace algorand {

Network::Network(Simulation* sim, LatencyModel* latency, NetworkConfig config, size_t n_nodes)
    : sim_(sim),
      latency_(latency),
      config_(config),
      uplink_free_at_(n_nodes, 0),
      control_free_at_(n_nodes, 0),
      uplink_rate_(n_nodes, config.uplink_bytes_per_sec),
      traffic_(n_nodes) {}

void Network::Send(NodeId from, NodeId to, const MessagePtr& msg) {
  const uint64_t size = msg->WireSize();
  traffic_[from].bytes_sent += size;
  traffic_[from].messages_sent += 1;
  total_bytes_sent_ += size;
  by_type_[msg->TypeName()] += 1;

  // Uplink serialization: bulk messages queue on the uplink; small control
  // messages (votes, priorities) interleave on the priority channel.
  SimTime tx_time =
      static_cast<SimTime>(static_cast<double>(size) / uplink_rate_[from] *
                           static_cast<double>(kSecond));
  SimTime done;
  if (size <= config_.control_cutoff_bytes) {
    SimTime start = std::max(sim_->now(), control_free_at_[from]) + config_.send_overhead;
    done = start + tx_time;
    control_free_at_[from] = done;
  } else {
    SimTime start = std::max(sim_->now(), uplink_free_at_[from]) + config_.send_overhead;
    done = start + tx_time;
    uplink_free_at_[from] = done;
  }

  AdversaryAction action = AdversaryAction::Deliver();
  if (adversary_ != nullptr) {
    action = adversary_->OnTransmit(from, to, msg, sim_->now());
  }
  if (action.kind == AdversaryAction::kDrop) {
    return;  // Uplink time is still consumed (the bytes left the host).
  }

  SimTime arrival = done + latency_->Sample(from, to) + action.extra_delay;
  sim_->ScheduleAt(arrival, [this, to, from, msg] {
    traffic_[to].bytes_received += msg->WireSize();
    traffic_[to].messages_received += 1;
    if (deliver_) {
      deliver_(to, from, msg);
    }
  });
}

}  // namespace algorand
