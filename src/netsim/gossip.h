// Gossip overlay (§4 "Gossip protocol", §8.4).
//
// Topology: every node opens connections to a small number of random peers
// (4 in the paper's prototype) and also accepts incoming connections, for ~8
// neighbours on average. GossipAgent handles per-node relay behaviour:
// drop duplicates, validate before relaying (the validator is supplied by the
// consensus layer and can accept-without-relay, e.g. for non-best block
// proposals), and forward to all neighbours except the one the message came
// from.
#ifndef ALGORAND_SRC_NETSIM_GOSSIP_H_
#define ALGORAND_SRC_NETSIM_GOSSIP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/executor.h"
#include "src/common/rng.h"
#include "src/netsim/network.h"
#include "src/obs/metrics.h"

namespace algorand {

// Undirected neighbour lists built from random out-peer selection.
class GossipTopology {
 public:
  GossipTopology(size_t n_nodes, size_t out_degree, DeterministicRng* rng);

  const std::vector<NodeId>& neighbors(NodeId n) const { return adj_[n]; }
  size_t node_count() const { return adj_.size(); }

  // Average neighbour count (~2x out_degree).
  double average_degree() const;

  // Size of the connected component containing node 0 (the paper argues
  // almost all nodes land in one giant component).
  size_t LargestComponentLowerBound() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
};

// What the consensus layer tells the gossip agent to do with a first-seen
// message.
enum class GossipVerdict : uint8_t {
  kRelay = 0,        // Valid: deliver locally and forward to neighbours.
  kDeliverOnly = 1,  // Valid but don't forward (e.g. superseded proposal).
  kReject = 2,       // Invalid: drop silently.
};

class GossipAgent {
 public:
  using Validator = std::function<GossipVerdict(const MessagePtr&)>;
  using Handler = std::function<void(const MessagePtr&)>;

  GossipAgent(NodeId self, Transport* network, const GossipTopology* topology);

  void set_validator(Validator v) { validator_ = std::move(v); }
  void set_handler(Handler h) { handler_ = std::move(h); }

  // Routes this agent's relay counters through `registry` ("gossip.*"
  // namespace, per-message-type ins/outs plus byte totals). Without a
  // registry the agent still counts into private fallback instruments so the
  // accessors below always work. Call before traffic flows.
  void AttachMetrics(MetricsRegistry* registry);

  // With a clock, every message this agent *originates* (Gossip,
  // SendToNeighbors, SendTo) is stamped with a trace context (self, now)
  // before its first send; relayed messages keep the originator's stamp
  // (StampTraceContext no-ops once set). Without a clock nothing is stamped.
  void set_clock(const Executor* clock) { clock_ = clock; }

  // Originates a message: delivers locally and forwards to all neighbours.
  void Gossip(const MessagePtr& msg);

  // Sends to neighbours without local delivery (used by adversarial nodes to
  // send conflicting payloads to disjoint peer subsets).
  void SendToNeighbors(const MessagePtr& msg);
  void SendTo(NodeId peer, const MessagePtr& msg);

  // Network delivery entry point.
  void OnReceive(NodeId from, const MessagePtr& msg);

  const std::vector<NodeId>& neighbors() const { return topology_->neighbors(self_); }
  // Every node the transport can address (the paper's §9 address book spans
  // all users, not just gossip neighbours).
  size_t network_size() const { return topology_->node_count(); }
  uint64_t duplicates_dropped() const { return duplicates_dropped_->Value(); }
  uint64_t rejected() const { return rejected_->Value(); }

  // Round-windowed pruning of the dedup memory. The consensus layer calls
  // this when its round advances; ids inserted during window w survive
  // through window w+1 and are forgotten when w+2 begins (two generations).
  // That is enough for correctness because the validator rejects
  // stale-round traffic anyway — a long-forgotten duplicate re-validates and
  // drops without relaying — while without pruning a chaos run leaks one
  // Hash256 per unique message per node forever. Jumping multiple windows at
  // once (catch-up) clears both generations.
  void AdvanceSeenWindow(uint64_t window);
  uint64_t seen_window() const { return seen_window_; }
  size_t seen_size() const { return seen_current_.size() + seen_prev_.size(); }

 private:
  void Forward(const MessagePtr& msg, NodeId except);
  void CountSend(const MessagePtr& msg, size_t copies);
  // Per-message-type counter, cached by TypeName()'s (static) pointer so the
  // hot path does one hash-map probe instead of a string concatenation.
  Counter* TypeCounter(std::unordered_map<const char*, Counter*>* cache,
                       const char* direction, const MessagePtr& msg);

  bool SeenBefore(const Hash256& id) const {
    return seen_current_.count(id) != 0 || seen_prev_.count(id) != 0;
  }
  // Returns false if `id` was already known.
  bool MarkSeen(const Hash256& id);

  // Stamps outgoing originations when set (see set_clock).
  void StampOrigination(const MessagePtr& msg) const {
    if (clock_ != nullptr) {
      msg->StampTraceContext(self_, static_cast<uint64_t>(clock_->now()));
    }
  }

  NodeId self_;
  Transport* network_;
  const GossipTopology* topology_;
  const Executor* clock_ = nullptr;
  Validator validator_;
  Handler handler_;
  // Two-generation dedup memory (see AdvanceSeenWindow).
  uint64_t seen_window_ = 0;
  std::unordered_set<Hash256, FixedBytesHasher> seen_current_;
  std::unordered_set<Hash256, FixedBytesHasher> seen_prev_;

  // Metrics: pointers target the attached registry, or the private fallback
  // instruments when none is attached (one observability path either way).
  MetricsRegistry* metrics_ = nullptr;
  Counter fallback_duplicates_;
  Counter fallback_rejected_;
  Gauge fallback_seen_size_;
  Counter* duplicates_dropped_ = &fallback_duplicates_;
  Counter* rejected_ = &fallback_rejected_;
  Gauge* seen_size_gauge_ = &fallback_seen_size_;
  Counter* delivered_ = nullptr;
  Counter* relayed_ = nullptr;
  Counter* bytes_in_ = nullptr;
  Counter* bytes_out_ = nullptr;
  std::unordered_map<const char*, Counter*> msgs_in_by_type_;
  std::unordered_map<const char*, Counter*> msgs_out_by_type_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_NETSIM_GOSSIP_H_
