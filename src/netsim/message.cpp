#include "src/netsim/message.h"

#include <thread>

namespace algorand {

template <typename Fill>
void SimMessage::Once(std::atomic<uint8_t>* state, Fill&& fill) const {
  uint8_t s = state->load(std::memory_order_acquire);
  while (s != kReady) {
    if (s == kEmpty &&
        state->compare_exchange_weak(s, kBuilding, std::memory_order_acquire,
                                     std::memory_order_acquire)) {
      fill();
      state->store(kReady, std::memory_order_release);
      return;
    }
    // Another thread is computing (or the CAS failed spuriously): the compute
    // hooks are short, so yield rather than block.
    if (s == kBuilding) {
      std::this_thread::yield();
      s = state->load(std::memory_order_acquire);
    }
  }
}

uint64_t SimMessage::WireSize() const {
  Once(&memo_.size_state, [this] { memo_.wire_size = ComputeWireSize(); });
  return memo_.wire_size;
}

const Hash256& SimMessage::DedupId() const {
  Once(&memo_.id_state, [this] { memo_.dedup_id = ComputeDedupId(); });
  return memo_.dedup_id;
}

const std::vector<uint8_t>& SimMessage::EncodedWire(WireEncoder encode) const {
  Once(&memo_.wire_state, [this, encode] { memo_.encoded = encode(*this); });
  return memo_.encoded;
}

const TraceContext& SimMessage::trace_context() const {
  // Readers that race the (single) stamping call see the unstamped default
  // instead of a half-written context.
  static const TraceContext kUnstamped;
  return memo_.trace_state.load(std::memory_order_acquire) == kReady ? memo_.trace : kUnstamped;
}

void SimMessage::StampTraceContext(uint32_t origin, uint64_t emitted_at) const {
  Once(&memo_.trace_state, [this, origin, emitted_at] {
    memo_.trace.origin = origin;
    memo_.trace.emitted_at = emitted_at;
  });
}

}  // namespace algorand
