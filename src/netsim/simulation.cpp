#include "src/netsim/simulation.h"

namespace algorand {

void Simulation::Schedule(SimTime delay, Callback fn) {
  ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void Simulation::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  queue_.emplace(Key{when, next_seq_++}, std::move(fn));
}

bool Simulation::Step() {
  if (queue_.empty()) {
    return false;
  }
  auto node = queue_.extract(queue_.begin());
  now_ = node.key().first;
  ++executed_;
  node.mapped()();
  return true;
}

void Simulation::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.begin()->first.first <= deadline) {
    Step();
  }
  // The full window elapsed only if nothing stopped us early.
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace algorand
