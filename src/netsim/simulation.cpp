#include "src/netsim/simulation.h"

#include <algorithm>

namespace algorand {

namespace {
constexpr size_t kArity = 4;
}  // namespace

void Simulation::Schedule(SimTime delay, Callback fn) {
  ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void Simulation::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) {
    when = now_;
  }
  const uint64_t seq = next_seq_++;
  if (queue_kind_ == QueueKind::kMap) {
    map_queue_.emplace(Key{when, seq}, std::move(fn));
    return;
  }
  HeapPush(Event{when, seq, std::move(fn)});
}

void Simulation::HeapPush(Event ev) {
  // Sift up with a hole: parents shift down into the gap and `ev` moves once.
  size_t i = heap_.size();
  heap_.emplace_back();  // Placeholder; overwritten below.
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!Before(ev, heap_[parent])) {
      break;
    }
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(ev);
}

Simulation::Event Simulation::HeapPop() {
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift `last` down from the root: pull the smallest child up into the
    // hole until `last` fits.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      size_t first_child = i * kArity + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      size_t end = first_child + kArity < n ? first_child + kArity : n;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!Before(heap_[best], last)) {
        break;
      }
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(last);
  }
  return top;
}

bool Simulation::Step() {
  if (queue_kind_ == QueueKind::kMap) {
    if (map_queue_.empty()) {
      return false;
    }
    auto node = map_queue_.extract(map_queue_.begin());
    now_ = node.key().first;
    ++executed_;
    node.mapped()();
    return true;
  }
  if (heap_.empty()) {
    return false;
  }
  if (choice_hook_ != nullptr) {
    StepWithChoice();
    return true;
  }
  Event ev = HeapPop();
  now_ = ev.when;
  ++executed_;
  ev.fn();
  return true;
}

void Simulation::StepWithChoice() {
  const SimTime earliest = heap_.front().when;
  const SimTime horizon = earliest + choice_hook_->Window();
  size_t cap = choice_hook_->MaxCandidates();
  if (cap < 1) {
    cap = 1;
  }
  std::vector<Event> candidates;
  while (!heap_.empty() && candidates.size() < cap &&
         heap_.front().when <= horizon) {
    candidates.push_back(HeapPop());
  }
  size_t pick = 0;
  if (candidates.size() > 1) {
    pick = choice_hook_->ChooseNext(earliest, candidates.size());
    if (pick >= candidates.size()) {
      pick = 0;
    }
  }
  Event chosen = std::move(candidates[pick]);
  // Unchosen candidates keep their original (when, seq) keys: they stay in
  // default order relative to each other, and a hook that always picks 0
  // replays the unhooked schedule bit-for-bit.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i != pick) {
      HeapPush(std::move(candidates[i]));
    }
  }
  // Running a later event first models the adversary delaying the others;
  // time advances to the chosen event and never regresses afterwards.
  now_ = std::max(now_, chosen.when);
  ++executed_;
  chosen.fn();
}

void Simulation::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulation::RunUntil(SimTime deadline) {
  stopped_ = false;
  for (;;) {
    if (stopped_) {
      break;
    }
    SimTime next;
    if (queue_kind_ == QueueKind::kMap) {
      if (map_queue_.empty()) {
        break;
      }
      next = map_queue_.begin()->first.first;
    } else {
      if (heap_.empty()) {
        break;
      }
      next = heap_.front().when;
    }
    if (next > deadline) {
      break;
    }
    Step();
  }
  // The full window elapsed only if nothing stopped us early.
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace algorand
