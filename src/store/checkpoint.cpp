#include "src/store/checkpoint.h"

#include "src/common/serialize.h"

namespace algorand {

std::vector<uint8_t> CheckpointData::Serialize() const {
  Writer w;
  w.U64(manifest.round);
  w.Fixed(manifest.tip_hash);
  w.Fixed(manifest.fingerprint);
  w.U64(manifest.highest_final);
  w.Fixed(manifest.genesis_hash);
  w.U64(seed_base);
  w.U64(seeds.size());
  w.Bytes(tip_block);
  w.Bytes(accounts);
  for (const SeedBytes& s : seeds) {
    w.Fixed(s);
  }
  return w.Take();
}

std::optional<CheckpointData> CheckpointData::Deserialize(std::span<const uint8_t> data) {
  Reader rd(data);
  CheckpointData c;
  c.manifest.round = rd.U64();
  c.manifest.tip_hash = rd.Fixed<32>();
  c.manifest.fingerprint = rd.Fixed<32>();
  c.manifest.highest_final = rd.U64();
  c.manifest.genesis_hash = rd.Fixed<32>();
  c.seed_base = rd.U64();
  const uint64_t seed_count = rd.U64();
  c.tip_block = rd.Bytes();
  c.accounts = rd.Bytes();
  if (!rd.ok() || seed_count != rd.remaining() / 32 || rd.remaining() % 32 != 0) {
    return std::nullopt;
  }
  c.seeds.reserve(seed_count);
  for (uint64_t i = 0; i < seed_count; ++i) {
    c.seeds.push_back(rd.Fixed<32>());
  }
  if (!rd.AtEnd() || c.manifest.round == 0 || c.tip_block.empty() ||
      c.seed_base + c.seeds.size() != c.manifest.round + 1) {
    return std::nullopt;
  }
  return c;
}

std::optional<CheckpointManifest> CheckpointData::ParseManifest(
    std::span<const uint8_t> data) {
  if (data.size() < kManifestBytes) {
    return std::nullopt;
  }
  Reader rd(data.subspan(0, kManifestBytes));
  CheckpointManifest m;
  m.round = rd.U64();
  m.tip_hash = rd.Fixed<32>();
  m.fingerprint = rd.Fixed<32>();
  m.highest_final = rd.U64();
  m.genesis_hash = rd.Fixed<32>();
  if (!rd.ok() || m.round == 0) {
    return std::nullopt;
  }
  return m;
}

}  // namespace algorand
