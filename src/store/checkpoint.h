// Ledger-state checkpoints (ROADMAP item 3, the §8.3 bootstrapping story
// made O(recent)): a checkpoint captures everything a node needs to resume —
// or a fresh node needs to join — from round B without replaying rounds
// 1..B: the round-B block, the account state it implies (with its
// layout-independent StateFingerprint), and the sortition-seed window the
// seed-refresh rule (§5.2) can still reach back to.
//
// This layer is payload-typed but ledger-agnostic: the tip block and the
// account table travel as opaque serialized sections (Block::Serialize /
// AccountTable::SerializeTo), so src/store still depends only on common/ and
// obs/. Node (src/core) re-types them when installing.
//
// On disk a checkpoint is a sidecar file next to the log segments,
//   ckpt-<round>.ckpt := "ALGOCKP1" | version u32 | payload_len u64
//                        | crc32c(payload) u32 | payload
// written tmp + fsync + rename + dir-fsync so it is atomically either absent
// or complete. A torn or bit-flipped file fails the CRC (or the parse) and
// is treated as absent — restore falls back to an older checkpoint or to
// full WAL replay, never loads silently (PR 5's corruption discipline).
#ifndef ALGORAND_SRC_STORE_CHECKPOINT_H_
#define ALGORAND_SRC_STORE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/bytes.h"

namespace algorand {

// Fixed-size head of the serialized payload; cheap to parse without loading
// the (potentially tens-of-MB) account section — the fast-sync manifest.
struct CheckpointManifest {
  uint64_t round = 0;        // B: the checkpointed round.
  Hash256 tip_hash;          // Hash of the round-B block.
  Hash256 fingerprint;       // AccountTable::StateFingerprint at B.
  uint64_t highest_final = 0;  // Highest final round when written (>= B).
  Hash256 genesis_hash;      // Round-0 block hash: refuses cross-chain installs.
};

struct CheckpointData {
  CheckpointManifest manifest;

  // Sortition seeds of rounds [seed_base .. round]: the window
  // SortitionSeed() can reach back to from any round > B under the
  // seed-refresh rule, with margin. seeds[i] is the seed of round
  // seed_base + i; the round-(B+1) seed comes from the tip block itself.
  uint64_t seed_base = 0;
  std::vector<SeedBytes> seeds;

  std::vector<uint8_t> tip_block;  // Block::Serialize of the round-B block.
  std::vector<uint8_t> accounts;   // AccountTable::SerializeTo section at B.

  std::vector<uint8_t> Serialize() const;
  static std::optional<CheckpointData> Deserialize(std::span<const uint8_t> data);
  // Parses just the manifest prefix (any Serialize() output, or the first
  // kManifestBytes of one).
  static std::optional<CheckpointManifest> ParseManifest(std::span<const uint8_t> data);

  static constexpr size_t kManifestBytes = 8 + 32 + 32 + 8 + 32;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_STORE_CHECKPOINT_H_
