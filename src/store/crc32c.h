// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for log-record framing in the
// durable block store. Uses the SSE4.2 crc32 instruction when the CPU has it
// (runtime-detected), falling back to a portable slice-by-8 table.
#ifndef ALGORAND_SRC_STORE_CRC32C_H_
#define ALGORAND_SRC_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace algorand {

// One-shot CRC32C of `data` (initial value 0, standard final inversion).
uint32_t Crc32c(std::span<const uint8_t> data);

// Incremental form: feed `crc` from a previous Crc32cExtend/0 and extend it.
// Crc32c(x) == Crc32cFinish(Crc32cExtend(Crc32cInit(), x)).
uint32_t Crc32cInit();
uint32_t Crc32cExtend(uint32_t crc, std::span<const uint8_t> data);
uint32_t Crc32cFinish(uint32_t crc);

}  // namespace algorand

#endif  // ALGORAND_SRC_STORE_CRC32C_H_
