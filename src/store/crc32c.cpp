#include "src/store/crc32c.h"

#include <array>

namespace algorand {
namespace {

constexpr uint32_t kPolyReflected = 0x82f63b78;  // 0x1EDC6F41 bit-reversed.

struct Crc32cTables {
  // tables[k][b]: CRC contribution of byte b at distance k from the tail,
  // the standard slice-by-8 layout.
  std::array<std::array<uint32_t, 256>, 8> t{};

  constexpr Crc32cTables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolyReflected : 0);
      }
      t[0][b] = crc;
    }
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = t[0][b];
      for (size_t k = 1; k < 8; ++k) {
        crc = (crc >> 8) ^ t[0][crc & 0xff];
        t[k][b] = crc;
      }
    }
  }
};

constexpr Crc32cTables kTables;

uint32_t ExtendSoft(uint32_t crc, const uint8_t* p, size_t n) {
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][crc & 0xff] ^ kTables.t[6][(crc >> 8) & 0xff] ^
          kTables.t[5][(crc >> 16) & 0xff] ^ kTables.t[4][crc >> 24] ^ kTables.t[3][p[4]] ^
          kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^ kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

#if defined(__x86_64__) || defined(_M_X64)
// SSE4.2 crc32 instruction computes this exact (Castagnoli) polynomial at
// ~8 bytes/cycle vs ~1 for slice-by-8 — the difference is visible in the
// Figure 5 wall-clock when the writer shares a core with the protocol loop.
__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc, const uint8_t* p, size_t n) {
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    c = __builtin_ia32_crc32di(c, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n-- > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool HwCrcAvailable() { return __builtin_cpu_supports("sse4.2"); }
#else
uint32_t ExtendHw(uint32_t crc, const uint8_t* p, size_t n) { return ExtendSoft(crc, p, n); }
bool HwCrcAvailable() { return false; }
#endif

const bool kUseHwCrc = HwCrcAvailable();

}  // namespace

uint32_t Crc32cInit() { return 0xffffffff; }

uint32_t Crc32cExtend(uint32_t crc, std::span<const uint8_t> data) {
  return kUseHwCrc ? ExtendHw(crc, data.data(), data.size())
                   : ExtendSoft(crc, data.data(), data.size());
}

uint32_t Crc32cFinish(uint32_t crc) { return crc ^ 0xffffffff; }

uint32_t Crc32c(std::span<const uint8_t> data) {
  return Crc32cFinish(Crc32cExtend(Crc32cInit(), data));
}

}  // namespace algorand
