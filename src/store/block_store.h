// Durable block store (§8.3-8.4): a segmented, append-only, CRC32C-framed
// log of per-round records — block, consensus kind, deciding certificate,
// optional final certificate — that makes a node's chain survive a process
// kill. The paper's bootstrapping story assumes nodes hold history durably so
// new and recovering users can fetch and validate it; this is that layer.
//
// Log discipline (write-ahead, commit-framed):
//   - Every logical operation (append round, final upgrade, suffix truncate)
//     writes its payload record(s), then an explicit COMMIT record. Under
//     fsync=every_round the payload is fsync'd *before* the commit frame is
//     written, so a commit frame on disk implies its payload is on disk.
//   - On open, the log is scanned frame by frame; operations become visible
//     only when their commit frame checks out (magic, CRC, round/tip echo).
//     A torn or corrupt tail — any partially-written suffix — is truncated
//     back to the last committed frame, so reopen always yields a committed
//     prefix, never a corrupt or speculative one.
//   - Fork switches (ReplaceSuffix, §8.2) append a TRUNCATE record; replay
//     discards rounds >= from_round when it sees one, and segments whose
//     whole round range is dead are garbage-collected after the truncate
//     record is durable.
//
// Checkpoints + compaction (DESIGN.md §13): AppendCheckpoint writes a
// sidecar ckpt-<round>.ckpt file (store/checkpoint.h) off the protocol
// thread, then garbage-collects every whole segment strictly below the
// oldest *retained* checkpoint — but first extracts each doomed round's
// chain link (round, block hash, next-round seed, certificate) into the
// chain.log sidecar, so the certificate chain genesis -> checkpoint stays
// servable for fast-sync after the full blocks are gone. Every segment
// starts with a SEGSTART frame echoing the committed (next_round, tip), so
// replay of a compacted log primes itself at the first retained round
// instead of assuming round 1.
//
// The store is payload-agnostic: blocks and certificates travel as opaque
// serialized byte strings, so this layer depends only on common/ and obs/ —
// Node (src/core) does the protocol-level validation when it replays the
// recovered records back into a ledger (Node::RestoreFromStore).
//
// Threading: appends enqueue to a background writer thread (the protocol
// thread never blocks on disk); Flush() is the barrier. ReadRound() serves
// committed records (for disk-backed catch-up) and is safe against the
// writer. With background_writer=false every call is synchronous — the
// deterministic test configuration.
#ifndef ALGORAND_SRC_STORE_BLOCK_STORE_H_
#define ALGORAND_SRC_STORE_BLOCK_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace algorand {

// When appended records are forced to disk. every_round fsyncs payload and
// commit of each operation (strongest: a commit frame implies durable
// payload); batched fsyncs once per `batch_bytes` of log (a crash loses at
// most the unsynced window, still never yields a corrupt prefix); off leaves
// durability to the OS page cache (process kills are still safe — the data
// survives in the page cache — only a machine crash can lose it).
enum class FsyncPolicy : uint8_t { kEveryRound = 0, kBatched = 1, kOff = 2 };

const char* FsyncPolicyName(FsyncPolicy policy);
std::optional<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

struct StoreOptions {
  std::string dir;  // Created if missing (one level).
  FsyncPolicy fsync = FsyncPolicy::kBatched;
  uint64_t segment_bytes = 8ull << 20;  // Roll to a new segment past this.
  uint64_t batch_bytes = 1ull << 20;    // fsync cadence for kBatched.
  // false = all operations run synchronously on the caller's thread
  // (deterministic; used by tests and the discrete-event harness default).
  bool background_writer = true;
  // Checkpoints kept on disk. Compaction prunes segments strictly below the
  // *oldest* retained checkpoint, so >= 2 keeps one full checkpoint interval
  // of raw history around the newest checkpoint.
  uint64_t checkpoint_retain = 2;
};

// One round's durable record. Blocks/certificates are opaque serialized
// bytes (Block::Serialize / Certificate::Serialize); empty cert/final_cert
// means "none" (e.g. recovery-adopted blocks carry no per-round certificate).
struct StoredRound {
  uint64_t round = 0;
  uint8_t kind = 0;   // ConsensusKind as u8.
  Hash256 tip_hash;   // Chain tip hash after appending this block.
  SeedBytes next_seed;  // The block's round+1 seed (zero on pre-seed logs).
  std::vector<uint8_t> block;
  std::vector<uint8_t> cert;
  std::vector<uint8_t> final_cert;
};

// One hop of the certificate chain (§8.3): what fast-sync needs per round —
// and what compaction preserves in chain.log after pruning the full block.
struct ChainLink {
  uint64_t round = 0;
  uint8_t kind = 0;
  Hash256 hash;         // Block hash of this round.
  SeedBytes next_seed;  // Seed of round + 1, for seed-window cross-checks.
  std::vector<uint8_t> cert;  // Deciding-step certificate (may be empty).

  std::vector<uint8_t> SerializePayload() const;
  static std::optional<ChainLink> DecodePayload(std::span<const uint8_t> payload);
};

// A durable checkpoint file the store knows about (see store/checkpoint.h).
struct CheckpointInfo {
  uint64_t round = 0;
  uint64_t payload_bytes = 0;
  std::string path;
};

class BlockStore {
 public:
  // Opens (or creates) the store in `opts.dir`, scans the segments, repairs
  // any torn tail, and builds the round index. Returns nullptr with `*error`
  // set on I/O failure or structural corruption that repair cannot contain.
  static std::unique_ptr<BlockStore> Open(const StoreOptions& opts, std::string* error);

  // Drains the writer queue, flushes (per policy) and closes every file.
  ~BlockStore();

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  // --- Append API (protocol thread; enqueues to the writer) ---

  // Appends one round. Rounds must arrive in chain order (next_round()).
  void AppendRound(StoredRound r);

  // Records that rounds <= `round` became final, with the final-step
  // certificate proving it (catch-up finality upgrades).
  void AppendFinalUpgrade(uint64_t round, std::vector<uint8_t> final_cert);

  // Fork switch: atomically discards rounds >= from_round (truncate record,
  // fsync'd regardless of policy, then dead-segment GC). The replacement
  // suffix follows through ordinary AppendRound calls. Checkpoints at
  // rounds >= from_round are unlinked too (they describe dead history).
  void TruncateSuffix(uint64_t from_round);

  // Writes a durable checkpoint for `round` (which must already be
  // committed), then compacts: prunes every whole segment strictly below the
  // oldest retained checkpoint, extracting chain links into chain.log first.
  // `serialize` builds the checkpoint payload (store/checkpoint.h format) and
  // runs on the writer thread — pass a closure over copied state so the
  // protocol thread never pays the serialization cost.
  void AppendCheckpoint(uint64_t round, std::function<std::vector<uint8_t>()> serialize);

  // Fast-sync install path (empty store only): adopt a checkpoint payload
  // fetched from a peer, prime the log so appends continue at `next_round`
  // (writes the SEGSTART base frame replay will pick up), and persist the
  // verified cert-chain links so this node can serve fast-sync in turn.
  void AdoptCheckpoint(uint64_t round, std::vector<uint8_t> payload);
  void PrimeAt(uint64_t next_round, const Hash256& tip_hash);
  void AppendChainLinks(std::vector<std::vector<uint8_t>> link_payloads);

  // Barrier: returns once every queued operation is written (and fsync'd,
  // unless the policy is kOff).
  void Flush();

  // Simulates a process kill: queued-but-unwritten operations are dropped
  // and files are closed without flushing. The store object becomes inert
  // (all later calls no-op). What was already write()n survives — exactly
  // the durability a SIGKILL leaves behind.
  void Crash();

  // --- Recovered/committed state ---

  // Next round the log expects, i.e. 1 + highest committed round.
  uint64_t next_round() const;
  // Highest committed round (0 = empty store).
  uint64_t max_round() const;
  // Highest round covered by finality (final-kind round or upgrade record).
  uint64_t highest_final_round() const;
  // Tip hash of the highest committed round (zero when empty).
  Hash256 tip_hash() const;

  // Reads one committed round from disk (index lookup + cached-fd pread).
  // Returns nullopt for rounds the log does not (durably) hold — including
  // rounds compaction pruned. Any final certificate recorded for the round —
  // inline or via a later upgrade record — is folded into the result.
  // Thread-safe against the writer.
  std::optional<StoredRound> ReadRound(uint64_t round) const;

  // The certificate-chain link for `round`: synthesized from the round
  // record when retained, served from chain.log when pruned. nullopt if the
  // round is in neither (never committed, or truncated away).
  std::optional<ChainLink> ChainLinkAt(uint64_t round) const;

  // Lowest round ReadRound can still serve (compaction moves this up);
  // next_round() when the log holds no rounds at all.
  uint64_t first_retained_round() const;

  // Durable checkpoints, oldest first.
  std::vector<CheckpointInfo> checkpoints() const;

  // Loads and CRC-validates one checkpoint's payload (cached: manifest and
  // chunk serving hit the same bytes). nullptr if absent or corrupt — a
  // corrupt file counts store.checkpoint_load_failures and is never
  // partially returned.
  std::shared_ptr<const std::vector<uint8_t>> ReadCheckpointPayload(uint64_t round) const;

  // Replay cost of the Open() scan, for observability.
  uint64_t replayed_rounds() const { return replayed_rounds_; }
  double replay_wall_ms() const { return replay_wall_ms_; }

  // Registers store.* counters ("store.bytes_written", "store.records_
  // written", "store.fsyncs", "store.truncates", "store.segments_created",
  // "store.reads", "store.index_hits", "store.index_misses",
  // "store.checkpoints_written", "store.checkpoint_bytes",
  // "store.checkpoint_load_failures", "store.compaction_runs",
  // "store.compaction_segments_removed", "store.compaction_bytes_reclaimed",
  // "store.replay_rounds", "store.replay_wall_ms_total") and publishes the
  // Open() replay cost immediately.
  void AttachMetrics(MetricsRegistry* metrics);

  const std::string& dir() const { return opts_.dir; }
  const StoreOptions& options() const { return opts_; }

 private:
  // One queued write operation. Complete here (not just forward-declared)
  // because std::deque<Op> below requires a complete element type.
  struct Op {
    enum class Kind { kRound, kFinal, kTruncate, kFlush, kCheckpoint, kAdopt, kPrime, kLinks };
    struct FlushWaiter {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
    };

    Kind kind = Kind::kRound;
    StoredRound round;          // kRound.
    uint64_t a = 0;             // kFinal/kCheckpoint/kAdopt: round;
                                // kTruncate: from_round; kPrime: next_round.
    std::vector<uint8_t> blob;  // kFinal: final cert; kAdopt: ckpt payload.
    Hash256 hash;               // kPrime: tip hash.
    std::function<std::vector<uint8_t>()> serialize;  // kCheckpoint.
    std::vector<std::vector<uint8_t>> blobs;          // kLinks.
    std::shared_ptr<FlushWaiter> waiter;
  };
  // Index entry for one committed round.
  struct RoundLoc {
    uint32_t segment = 0;  // Segment sequence number.
    uint64_t offset = 0;   // Frame start of the round record.
    uint8_t kind = 0;
    Hash256 tip_hash;
    bool has_final_inline = false;
  };

  explicit BlockStore(StoreOptions opts);

  // Open()-time scan of all segments; fills index/tip/next_round and repairs
  // the tail. Returns false with *error set on unrecoverable conditions.
  bool Recover(std::string* error);

  // Writer-thread entry point.
  void WriterLoop();
  // Executes one queued operation (writer thread, or caller thread when
  // background_writer=false). mu_ must NOT be held.
  void Execute(Op& op);

  void DoAppendRound(const StoredRound& r);
  void DoFinalUpgrade(uint64_t round, const std::vector<uint8_t>& final_cert);
  void DoTruncate(uint64_t from_round);
  void DoCheckpoint(uint64_t round, const std::function<std::vector<uint8_t>()>& serialize);
  void DoAdoptCheckpoint(uint64_t round, const std::vector<uint8_t>& payload);
  void DoPrime(uint64_t next_round, const Hash256& tip);
  void DoAppendLinks(const std::vector<std::vector<uint8_t>>& payloads);

  // Enqueues `op` (or executes it inline without a background writer).
  void Enqueue(Op op);
  // Writes `payload` as ckpt-<round>.ckpt via tmp + fsync + rename +
  // dir-fsync; registers it in checkpoints_. False on I/O failure.
  bool WriteCheckpointFile(uint64_t round, const std::vector<uint8_t>& payload);
  // Prunes whole segments strictly below `cutoff` (oldest retained
  // checkpoint round), extracting chain links into chain.log first.
  void CompactBelow(uint64_t cutoff);
  // Appends one chain-link frame to chain.log; registers its offset.
  bool AppendChainLinkFrame(const std::vector<uint8_t>& payload);
  // Opens (or reuses via the LRU fd cache) `path` and reads the frame at
  // `offset`, validating magic/type/CRC. nullopt on any mismatch.
  std::optional<std::vector<uint8_t>> ReadFrameAt(const std::string& path, uint64_t offset,
                                                  uint8_t want_type) const;
  void DropCachedFd(const std::string& path) const;

  // Appends one framed record to the active segment (rolling first if the
  // segment is full and `at_op_start`), without fsync.
  void WriteFrame(uint8_t type, const std::vector<uint8_t>& payload);
  // Same, with the payload supplied as a list of spans (written via writev so
  // block bodies skip the contiguous-payload assembly copy).
  void WriteFramePieces(uint8_t type, std::span<const std::span<const uint8_t>> pieces);
  void RollSegmentIfNeeded();
  void SyncActive(bool force);
  void MaybeBatchedSync();

  StoreOptions opts_;
  bool dead_ = false;  // Crash()ed or failed; every operation no-ops.

  // Segment bookkeeping (guarded by index_mu_ where the reader looks, plus
  // effectively single-writer: only the writer thread mutates).
  struct SegmentInfo {
    std::string path;
    uint64_t size = 0;
    uint64_t min_round = 0;  // 0 = holds no live round records.
    uint64_t max_round = 0;
    // True if the segment opens with a SEGSTART base frame. Compaction may
    // only cut the log at a segment that has one — replay of an older
    // (pre-checkpoint-era) segment without it would assume round 1.
    bool has_base = false;
  };
  std::map<uint32_t, SegmentInfo> segments_;  // seq -> info.
  uint32_t active_seq_ = 0;
  int active_fd_ = -1;
  uint64_t active_size_ = 0;
  uint64_t unsynced_bytes_ = 0;

  // Committed-round index; shared between writer and readers.
  mutable std::mutex index_mu_;
  std::map<uint64_t, RoundLoc> index_;
  std::map<uint64_t, std::pair<uint32_t, uint64_t>> final_upgrades_;  // round -> loc.
  uint64_t next_round_ = 1;
  uint64_t highest_final_ = 0;
  Hash256 tip_hash_;

  // Checkpoint + chain-link sidecar state (also under index_mu_).
  std::vector<CheckpointInfo> checkpoints_;  // Sorted by round, oldest first.
  std::map<uint64_t, std::pair<uint64_t, uint32_t>> chain_links_;  // round -> (offset, frame len).
  std::string chain_path_;
  int chain_fd_ = -1;        // Append fd for chain.log (writer thread only).
  uint64_t chain_size_ = 0;  // Committed size of chain.log.

  // LRU cache of read fds (segments + chain.log): the read path used to
  // open/close per call, which made disk-served catch-up O(syscalls) hot.
  mutable std::mutex fd_mu_;
  mutable std::vector<std::pair<std::string, int>> fd_cache_;  // Front = MRU.

  // One-entry cache of the last checkpoint payload read (manifest + chunk
  // serving hit the same immutable bytes repeatedly).
  mutable std::mutex ckpt_cache_mu_;
  mutable uint64_t ckpt_cache_round_ = 0;
  mutable std::shared_ptr<const std::vector<uint8_t>> ckpt_cache_;

  // Writer queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Op> queue_;
  bool stop_ = false;
  bool writer_busy_ = false;
  std::thread writer_;

  // Observability (null until AttachMetrics).
  Counter* c_bytes_ = nullptr;
  Counter* c_records_ = nullptr;
  Counter* c_fsyncs_ = nullptr;
  Counter* c_truncates_ = nullptr;
  Counter* c_segments_ = nullptr;
  Counter* c_reads_ = nullptr;
  Counter* c_index_hits_ = nullptr;
  Counter* c_index_misses_ = nullptr;
  Counter* c_ckpts_written_ = nullptr;
  Counter* c_ckpt_bytes_ = nullptr;
  mutable Counter* c_ckpt_load_failures_ = nullptr;
  mutable Counter* c_ckpt_loads_ = nullptr;
  Counter* c_compaction_runs_ = nullptr;
  Counter* c_compaction_segments_ = nullptr;
  Counter* c_compaction_bytes_ = nullptr;

  uint64_t replayed_rounds_ = 0;
  double replay_wall_ms_ = 0;
  uint64_t ckpt_scan_failures_ = 0;  // Bad headers found by Open()'s scan.
};

}  // namespace algorand

#endif  // ALGORAND_SRC_STORE_BLOCK_STORE_H_
