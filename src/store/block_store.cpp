#include "src/store/block_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/common/serialize.h"
#include "src/store/crc32c.h"

namespace algorand {
namespace {

// Layout constants. Each segment file starts with an 8-byte file magic, then
// a sequence of frames:
//   frame := magic u8 | type u8 | len u32 LE | crc32c(payload) u32 LE | payload
constexpr char kFileMagic[8] = {'A', 'L', 'G', 'O', 'S', 'E', 'G', '1'};
constexpr char kChainMagic[8] = {'A', 'L', 'G', 'O', 'C', 'H', 'N', '1'};
constexpr char kCkptMagic[8] = {'A', 'L', 'G', 'O', 'C', 'K', 'P', '1'};
constexpr uint32_t kCkptVersion = 1;
constexpr size_t kCkptHeader = 8 + 4 + 8 + 4;  // magic | version | len | crc.
constexpr uint8_t kFrameMagic = 0xa7;
constexpr size_t kFrameHeader = 1 + 1 + 4 + 4;
constexpr uint64_t kMaxRecordBytes = 64ull << 20;  // Sanity bound on len.

enum RecordType : uint8_t {
  kRecRound = 1,
  kRecFinalUpgrade = 2,
  kRecTruncate = 3,
  kRecCommit = 4,
  // Segment base marker: echoes the committed (next_round, tip) at segment
  // creation. Replay primes from it when it is the first frame of the first
  // segment — which after compaction is no longer round 1.
  kRecSegStart = 5,
  // chain.log record: one certificate-chain link for a pruned round.
  kRecChainLink = 6,
};

std::string SegmentName(uint32_t seq) {
  char buf[32];
  snprintf(buf, sizeof(buf), "seg-%08u.log", seq);
  return buf;
}

std::string CheckpointName(uint64_t round) {
  char buf[48];
  snprintf(buf, sizeof(buf), "ckpt-%020llu.ckpt", static_cast<unsigned long long>(round));
  return buf;
}

// Parses "ckpt-%llu.ckpt"; returns 0 for anything else (round 0 is never
// checkpointed).
uint64_t CheckpointRoundFromName(const char* name) {
  unsigned long long round = 0;
  char tail[8] = {0};
  if (sscanf(name, "ckpt-%20llu.%4s", &round, tail) != 2 || strcmp(tail, "ckpt") != 0) {
    return 0;
  }
  return round;
}

// Parses "seg-%08u.log"; returns 0 for anything else (0 is never a valid seq).
uint32_t SegmentSeqFromName(const char* name) {
  unsigned seq = 0;
  char tail[8] = {0};
  if (sscanf(name, "seg-%8u.%3s", &seq, tail) != 2 || strcmp(tail, "log") != 0) {
    return 0;
  }
  return seq;
}

bool MkdirRecursive(const std::string& dir) {
  std::string partial;
  for (size_t i = 0; i <= dir.size(); ++i) {
    if (i == dir.size() || dir[i] == '/') {
      if (!partial.empty() && partial != "/" &&
          ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return false;
      }
    }
    if (i < dir.size()) {
      partial.push_back(dir[i]);
    }
  }
  return true;
}

bool WritevAll(int fd, struct iovec* iov, int cnt) {
  while (cnt > 0) {
    ssize_t w = ::writev(fd, iov, cnt);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    size_t left = static_cast<size_t>(w);
    while (cnt > 0 && left >= iov[0].iov_len) {
      left -= iov[0].iov_len;
      ++iov;
      --cnt;
    }
    if (cnt > 0) {
      iov[0].iov_base = static_cast<uint8_t*>(iov[0].iov_base) + left;
      iov[0].iov_len -= left;
    }
  }
  return true;
}

bool WriteAll(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

struct ParsedFrame {
  uint8_t type = 0;
  uint64_t end = 0;  // Offset just past this frame.
  std::span<const uint8_t> payload;
};

// Validates the frame starting at `offset`; nullopt = torn/corrupt/EOF.
std::optional<ParsedFrame> ParseFrame(std::span<const uint8_t> file, uint64_t offset) {
  if (offset + kFrameHeader > file.size()) {
    return std::nullopt;
  }
  const uint8_t* h = file.data() + offset;
  if (h[0] != kFrameMagic) {
    return std::nullopt;
  }
  uint8_t type = h[1];
  if (type < kRecRound || type > kRecChainLink) {
    return std::nullopt;
  }
  uint32_t len = static_cast<uint32_t>(h[2]) | (static_cast<uint32_t>(h[3]) << 8) |
                 (static_cast<uint32_t>(h[4]) << 16) | (static_cast<uint32_t>(h[5]) << 24);
  uint32_t crc = static_cast<uint32_t>(h[6]) | (static_cast<uint32_t>(h[7]) << 8) |
                 (static_cast<uint32_t>(h[8]) << 16) | (static_cast<uint32_t>(h[9]) << 24);
  if (len > kMaxRecordBytes || offset + kFrameHeader + len > file.size()) {
    return std::nullopt;
  }
  std::span<const uint8_t> payload = file.subspan(offset + kFrameHeader, len);
  if (Crc32c(payload) != crc) {
    return std::nullopt;
  }
  ParsedFrame out;
  out.type = type;
  out.end = offset + kFrameHeader + len;
  out.payload = payload;
  return out;
}

std::optional<StoredRound> DecodeRoundPayload(std::span<const uint8_t> payload) {
  Reader rd(payload);
  StoredRound r;
  r.round = rd.U64();
  r.kind = rd.U8();
  r.tip_hash = rd.Fixed<32>();
  r.block = rd.Bytes();
  r.cert = rd.Bytes();
  r.final_cert = rd.Bytes();
  // v2 appends the block's next-round seed; v1 records end here and decode
  // to a zero seed (fast-sync then refuses to serve them as chain links).
  if (rd.ok() && rd.remaining() == 32) {
    r.next_seed = rd.Fixed<32>();
  }
  if (!rd.AtEnd() || r.round == 0 || r.kind > 1 || r.block.empty()) {
    return std::nullopt;
  }
  return r;
}

}  // namespace

std::vector<uint8_t> ChainLink::SerializePayload() const {
  Writer w;
  w.U64(round);
  w.U8(kind);
  w.Fixed(hash);
  w.Fixed(next_seed);
  w.Bytes(cert);
  return w.Take();
}

std::optional<ChainLink> ChainLink::DecodePayload(std::span<const uint8_t> payload) {
  Reader rd(payload);
  ChainLink link;
  link.round = rd.U64();
  link.kind = rd.U8();
  link.hash = rd.Fixed<32>();
  link.next_seed = rd.Fixed<32>();
  link.cert = rd.Bytes();
  if (!rd.AtEnd() || link.round == 0 || link.kind > 1) {
    return std::nullopt;
  }
  return link;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRound:
      return "every_round";
    case FsyncPolicy::kBatched:
      return "batched";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "?";
}

std::optional<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "every_round") {
    return FsyncPolicy::kEveryRound;
  }
  if (name == "batched") {
    return FsyncPolicy::kBatched;
  }
  if (name == "off") {
    return FsyncPolicy::kOff;
  }
  return std::nullopt;
}

// One queued writer operation. kFlush carries a waiter the writer signals
// after syncing.
BlockStore::BlockStore(StoreOptions opts) : opts_(std::move(opts)) {}

std::unique_ptr<BlockStore> BlockStore::Open(const StoreOptions& opts, std::string* error) {
  if (opts.dir.empty()) {
    if (error != nullptr) {
      *error = "empty store directory";
    }
    return nullptr;
  }
  if (!MkdirRecursive(opts.dir)) {
    if (error != nullptr) {
      *error = "cannot create " + opts.dir;
    }
    return nullptr;
  }
  std::unique_ptr<BlockStore> store(new BlockStore(opts));
  std::string err;
  if (!store->Recover(&err)) {
    if (error != nullptr) {
      *error = err;
    }
    return nullptr;
  }
  if (store->opts_.background_writer) {
    store->writer_ = std::thread([s = store.get()] { s->WriterLoop(); });
  }
  return store;
}

BlockStore::~BlockStore() {
  if (!dead_) {
    Flush();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) {
    writer_.join();
  }
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
  if (chain_fd_ >= 0) {
    ::close(chain_fd_);
    chain_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(fd_mu_);
  for (auto& [path, fd] : fd_cache_) {
    ::close(fd);
  }
  fd_cache_.clear();
}

// ---------------------------------------------------------------------------
// Recovery: scan segments, keep the committed prefix, repair the tail.
// ---------------------------------------------------------------------------

bool BlockStore::Recover(std::string* error) {
  auto wall_start = std::chrono::steady_clock::now();

  std::vector<uint32_t> seqs;
  {
    DIR* d = ::opendir(opts_.dir.c_str());
    if (d == nullptr) {
      *error = "cannot open " + opts_.dir;
      return false;
    }
    while (struct dirent* ent = ::readdir(d)) {
      uint32_t seq = SegmentSeqFromName(ent->d_name);
      if (seq != 0) {
        seqs.push_back(seq);
      }
    }
    ::closedir(d);
  }
  std::sort(seqs.begin(), seqs.end());

  // Staged records of the in-flight operation (between commits), applied to
  // the committed state only when the commit frame checks out.
  struct StagedRound {
    StoredRound meta;  // block/cert bytes unused after validation; kept small below.
    RoundLoc loc;
  };
  bool torn = false;  // First torn frame found; later segments are dropped.

  for (size_t si = 0; si < seqs.size() && !torn; ++si) {
    uint32_t seq = seqs[si];
    std::string path = opts_.dir + "/" + SegmentName(seq);
    // Read the whole segment (bounded by segment_bytes + one oversized op).
    std::vector<uint8_t> file;
    {
      int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        *error = "cannot open " + path;
        return false;
      }
      struct stat st {};
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        *error = "cannot stat " + path;
        return false;
      }
      file.resize(static_cast<size_t>(st.st_size));
      size_t got = 0;
      while (got < file.size()) {
        ssize_t r = ::pread(fd, file.data() + got, file.size() - got,
                            static_cast<off_t>(got));
        if (r <= 0) {
          ::close(fd);
          *error = "short read on " + path;
          return false;
        }
        got += static_cast<size_t>(r);
      }
      ::close(fd);
    }

    uint64_t committed_end = 0;  // Offset just past the last good commit.
    if (file.size() >= sizeof(kFileMagic) &&
        memcmp(file.data(), kFileMagic, sizeof(kFileMagic)) == 0) {
      committed_end = sizeof(kFileMagic);
    } else {
      // Unrecognized header: the file never became a segment (torn creation).
      torn = true;
    }

    std::vector<StagedRound> staged_rounds;
    std::vector<std::pair<uint64_t, std::pair<uint64_t, uint32_t>>> staged_finals;
    std::vector<uint64_t> staged_truncates;
    uint64_t offset = committed_end;
    while (!torn) {
      auto frame = ParseFrame(file, offset);
      if (!frame.has_value()) {
        torn = offset < file.size();  // Clean EOF at a frame boundary is fine.
        break;
      }
      switch (frame->type) {
        case kRecSegStart: {
          Reader rd(frame->payload);
          uint64_t base_next = rd.U64();
          Hash256 base_tip = rd.Fixed<32>();
          if (!rd.AtEnd() || base_next == 0) {
            torn = true;
            break;
          }
          if (offset == sizeof(kFileMagic)) {
            segments_[seq].has_base = true;
            if (si == 0) {
              // First frame of the oldest segment: the log starts here, not
              // at round 1 — compaction pruned the prefix, or fast-sync
              // primed a fresh joiner. Adopt the committed base so the
              // commit echoes of everything that follows line up.
              next_round_ = base_next;
              tip_hash_ = base_tip;
            }
          }
          if (staged_rounds.empty() && staged_finals.empty() &&
              staged_truncates.empty()) {
            committed_end = frame->end;  // Self-committed base marker.
          }
          break;
        }
        case kRecChainLink:
          // chain.log records never belong in a segment file.
          torn = true;
          break;
        case kRecRound: {
          auto r = DecodeRoundPayload(frame->payload);
          if (!r.has_value()) {
            torn = true;
            break;
          }
          StagedRound sr;
          sr.loc.segment = seq;
          sr.loc.offset = offset;
          sr.loc.kind = r->kind;
          sr.loc.tip_hash = r->tip_hash;
          sr.loc.has_final_inline = !r->final_cert.empty();
          sr.meta.round = r->round;
          sr.meta.kind = r->kind;
          sr.meta.tip_hash = r->tip_hash;
          staged_rounds.push_back(std::move(sr));
          break;
        }
        case kRecFinalUpgrade: {
          Reader rd(frame->payload);
          uint64_t round = rd.U64();
          std::vector<uint8_t> cert = rd.Bytes();
          if (!rd.AtEnd() || round == 0 || cert.empty()) {
            torn = true;
            break;
          }
          staged_finals.push_back(
              {round, {offset, static_cast<uint32_t>(frame->end - offset)}});
          break;
        }
        case kRecTruncate: {
          Reader rd(frame->payload);
          uint64_t from = rd.U64();
          if (!rd.AtEnd() || from == 0) {
            torn = true;
            break;
          }
          staged_truncates.push_back(from);
          break;
        }
        case kRecCommit: {
          Reader rd(frame->payload);
          uint64_t commit_next = rd.U64();
          Hash256 commit_tip = rd.Fixed<32>();
          if (!rd.AtEnd()) {
            torn = true;
            break;
          }
          // Predict the post-op state without mutating, then check the echo.
          uint64_t pred_next = next_round_;
          Hash256 pred_tip = tip_hash_;
          bool valid = true;
          size_t ri = 0;
          // A truncate (if any) leads the operation; rounds follow in order.
          for (uint64_t from : staged_truncates) {
            pred_next = std::min(pred_next, from);
            auto it = index_.find(from - 1);
            pred_tip = it != index_.end() ? it->second.tip_hash : Hash256{};
          }
          for (; ri < staged_rounds.size(); ++ri) {
            if (staged_rounds[ri].meta.round != pred_next) {
              valid = false;
              break;
            }
            pred_next = staged_rounds[ri].meta.round + 1;
            pred_tip = staged_rounds[ri].meta.tip_hash;
          }
          if (!valid || pred_next != commit_next || !(pred_tip == commit_tip)) {
            // Physically intact but logically stale: dead history whose
            // neighbours were garbage-collected after a suffix truncate (the
            // truncate record that kills it sits later in the log). Skip the
            // operation and keep scanning — real tears fail the magic/CRC
            // checks above, never this one.
            staged_rounds.clear();
            staged_finals.clear();
            staged_truncates.clear();
            committed_end = frame->end;
            break;
          }
          // Committed: fold the staged records into the durable state.
          for (uint64_t from : staged_truncates) {
            index_.erase(index_.lower_bound(from), index_.end());
            final_upgrades_.erase(final_upgrades_.lower_bound(from), final_upgrades_.end());
            if (highest_final_ >= from) {
              highest_final_ = from - 1;
            }
            for (auto& [sseq, info] : segments_) {
              if (info.min_round >= from && info.min_round != 0) {
                info.min_round = info.max_round = 0;
              } else if (info.max_round >= from) {
                info.max_round = from - 1;
              }
            }
          }
          for (StagedRound& sr : staged_rounds) {
            index_[sr.meta.round] = sr.loc;
            if (sr.meta.kind == 0 || sr.loc.has_final_inline) {
              // kind 0 == ConsensusKind::kFinal.
              highest_final_ = std::max(highest_final_, sr.meta.round);
            }
            auto& info = segments_[seq];
            if (info.min_round == 0 || sr.meta.round < info.min_round) {
              info.min_round = sr.meta.round;
            }
            info.max_round = std::max(info.max_round, sr.meta.round);
          }
          for (auto& [round, loc] : staged_finals) {
            final_upgrades_[round] = {seq, loc.first};
            if (round < pred_next) {
              highest_final_ = std::max(highest_final_, round);
            }
          }
          next_round_ = pred_next;
          tip_hash_ = pred_tip;
          staged_rounds.clear();
          staged_finals.clear();
          staged_truncates.clear();
          committed_end = frame->end;
          break;
        }
      }
      if (!torn) {
        offset = frame->end;
      }
    }
    if (!torn &&
        !(staged_rounds.empty() && staged_finals.empty() && staged_truncates.empty())) {
      // Payload frames with no commit at EOF: the crash hit between payload
      // and commit. Cut them too, or they would prepend themselves to the
      // next session's first operation and invalidate its echo.
      torn = true;
    }

    auto& info = segments_[seq];
    info.path = path;
    info.size = torn ? committed_end : file.size();
    if (torn) {
      // Repair: cut the file back to its last committed frame (or drop it
      // entirely if nothing in it ever committed), and drop every later
      // segment — an operation never spans segments, so nothing beyond the
      // torn point can be committed.
      if (committed_end <= sizeof(kFileMagic) && index_.empty() && si == 0) {
        // First segment, nothing committed: reset it to a bare header below.
        info.size = 0;
      }
      if (info.size > 0) {
        if (::truncate(path.c_str(), static_cast<off_t>(info.size)) != 0) {
          *error = "cannot repair " + path;
          return false;
        }
      } else {
        ::unlink(path.c_str());
        segments_.erase(seq);
      }
      for (size_t sj = si + 1; sj < seqs.size(); ++sj) {
        ::unlink((opts_.dir + "/" + SegmentName(seqs[sj])).c_str());
      }
    }
  }

  // Discover checkpoint sidecars. Only the header is validated here (cheap
  // restart); the payload CRC is checked on first read, and a corrupt file
  // behaves exactly like an absent one.
  {
    std::vector<std::pair<uint64_t, std::string>> found;
    DIR* d = ::opendir(opts_.dir.c_str());
    if (d != nullptr) {
      while (struct dirent* ent = ::readdir(d)) {
        uint64_t round = CheckpointRoundFromName(ent->d_name);
        if (round != 0) {
          found.emplace_back(round, opts_.dir + "/" + ent->d_name);
        }
      }
      ::closedir(d);
    }
    std::sort(found.begin(), found.end());
    for (auto& [round, path] : found) {
      if (round >= next_round_) {
        // Describes history the log no longer commits to (e.g. a fork switch
        // truncated below it while the store was down): dead, remove.
        ::unlink(path.c_str());
        continue;
      }
      uint8_t header[kCkptHeader];
      int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      bool ok = fd >= 0;
      uint64_t payload_len = 0;
      if (ok) {
        struct stat st {};
        ok = ::pread(fd, header, sizeof(header), 0) == static_cast<ssize_t>(sizeof(header)) &&
             ::fstat(fd, &st) == 0 && memcmp(header, kCkptMagic, sizeof(kCkptMagic)) == 0;
        if (ok) {
          Reader rd(std::span<const uint8_t>(header + 8, sizeof(header) - 8));
          uint32_t version = rd.U32();
          payload_len = rd.U64();
          ok = version == kCkptVersion &&
               static_cast<uint64_t>(st.st_size) == kCkptHeader + payload_len;
        }
        ::close(fd);
      }
      if (!ok) {
        ++ckpt_scan_failures_;
        continue;  // Left on disk for post-mortems; never served.
      }
      checkpoints_.push_back(CheckpointInfo{round, payload_len, path});
    }
  }

  // Load the chain-link sidecar: offsets of every intact frame; a torn tail
  // is cut, mirroring segment repair.
  chain_path_ = opts_.dir + "/chain.log";
  {
    std::vector<uint8_t> file;
    int fd = ::open(chain_path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0) {
      struct stat st {};
      if (::fstat(fd, &st) == 0) {
        file.resize(static_cast<size_t>(st.st_size));
        size_t got = 0;
        while (got < file.size()) {
          ssize_t r = ::pread(fd, file.data() + got, file.size() - got,
                              static_cast<off_t>(got));
          if (r <= 0) {
            file.resize(got);
            break;
          }
          got += static_cast<size_t>(r);
        }
      }
      ::close(fd);
    }
    uint64_t good_end = 0;
    if (file.size() >= sizeof(kChainMagic) &&
        memcmp(file.data(), kChainMagic, sizeof(kChainMagic)) == 0) {
      good_end = sizeof(kChainMagic);
      uint64_t off = good_end;
      while (true) {
        auto frame = ParseFrame(file, off);
        if (!frame.has_value() || frame->type != kRecChainLink ||
            frame->payload.size() < 8) {
          break;
        }
        Reader rd(frame->payload.subspan(0, 8));
        uint64_t round = rd.U64();
        if (round == 0) {
          break;
        }
        chain_links_[round] = {off, static_cast<uint32_t>(frame->end - off)};
        good_end = frame->end;
        off = frame->end;
      }
    }
    if (good_end == 0) {
      // Absent, empty or unrecognized: start a fresh sidecar.
      chain_fd_ = ::open(chain_path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
      if (chain_fd_ < 0 ||
          !WriteAll(chain_fd_, reinterpret_cast<const uint8_t*>(kChainMagic),
                    sizeof(kChainMagic))) {
        *error = "cannot create " + chain_path_;
        return false;
      }
      chain_size_ = sizeof(kChainMagic);
    } else {
      if (good_end < file.size() &&
          ::truncate(chain_path_.c_str(), static_cast<off_t>(good_end)) != 0) {
        *error = "cannot repair " + chain_path_;
        return false;
      }
      chain_fd_ = ::open(chain_path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
      if (chain_fd_ < 0) {
        *error = "cannot reopen " + chain_path_;
        return false;
      }
      chain_size_ = good_end;
    }
  }

  // Open (or create) the active segment for appending.
  if (segments_.empty()) {
    active_seq_ = 1;
    std::string path = opts_.dir + "/" + SegmentName(active_seq_);
    active_fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (active_fd_ < 0) {
      *error = "cannot create " + path;
      return false;
    }
    if (!WriteAll(active_fd_, reinterpret_cast<const uint8_t*>(kFileMagic),
                  sizeof(kFileMagic))) {
      *error = "cannot write header of " + path;
      return false;
    }
    active_size_ = sizeof(kFileMagic);
    segments_[active_seq_] = {path, active_size_, 0, 0};
  } else {
    active_seq_ = segments_.rbegin()->first;
    SegmentInfo& info = segments_.rbegin()->second;
    active_fd_ = ::open(info.path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (active_fd_ < 0) {
      *error = "cannot reopen " + info.path;
      return false;
    }
    active_size_ = info.size;
  }

  replayed_rounds_ = index_.size();
  replay_wall_ms_ = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
  return true;
}

// ---------------------------------------------------------------------------
// Append path (writer thread)
// ---------------------------------------------------------------------------

void BlockStore::WriterLoop() {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ with a drained queue.
      }
      op = std::move(queue_.front());
      queue_.pop_front();
      writer_busy_ = true;
    }
    Execute(op);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      writer_busy_ = false;
    }
    drained_cv_.notify_all();
  }
}

void BlockStore::Execute(Op& op) {
  switch (op.kind) {
    case Op::Kind::kRound:
      DoAppendRound(op.round);
      break;
    case Op::Kind::kFinal:
      DoFinalUpgrade(op.a, op.blob);
      break;
    case Op::Kind::kTruncate:
      DoTruncate(op.a);
      break;
    case Op::Kind::kFlush:
      SyncActive(opts_.fsync != FsyncPolicy::kOff);
      break;
    case Op::Kind::kCheckpoint:
      DoCheckpoint(op.a, op.serialize);
      break;
    case Op::Kind::kAdopt:
      DoAdoptCheckpoint(op.a, op.blob);
      break;
    case Op::Kind::kPrime:
      DoPrime(op.a, op.hash);
      break;
    case Op::Kind::kLinks:
      DoAppendLinks(op.blobs);
      break;
  }
  if (op.waiter != nullptr) {
    std::lock_guard<std::mutex> lock(op.waiter->mu);
    op.waiter->done = true;
    op.waiter->cv.notify_all();
  }
}

void BlockStore::WriteFrame(uint8_t type, const std::vector<uint8_t>& payload) {
  std::span<const uint8_t> piece(payload);
  WriteFramePieces(type, std::span<const std::span<const uint8_t>>(&piece, 1));
}

// Scatter-gather frame write: the payload is CRC'd and written piecewise, so
// big block bodies go straight from the StoredRound to the kernel without
// being assembled into a contiguous payload buffer first.
void BlockStore::WriteFramePieces(uint8_t type, std::span<const std::span<const uint8_t>> pieces) {
  uint8_t header[kFrameHeader];
  header[0] = kFrameMagic;
  header[1] = type;
  uint64_t len = 0;
  uint32_t crc = Crc32cInit();
  for (const auto& piece : pieces) {
    len += piece.size();
    crc = Crc32cExtend(crc, piece);
  }
  crc = Crc32cFinish(crc);
  for (int i = 0; i < 4; ++i) {
    header[2 + i] = static_cast<uint8_t>(len >> (8 * i));
    header[6 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  struct iovec iov[8];
  int cnt = 0;
  iov[cnt].iov_base = header;
  iov[cnt].iov_len = sizeof(header);
  ++cnt;
  for (const auto& piece : pieces) {
    if (!piece.empty() && cnt < 8) {
      iov[cnt].iov_base = const_cast<uint8_t*>(piece.data());
      iov[cnt].iov_len = piece.size();
      ++cnt;
    }
  }
  if (!WritevAll(active_fd_, iov, cnt)) {
    fprintf(stderr, "block_store: write failure in %s, store disabled\n", opts_.dir.c_str());
    dead_ = true;
    return;
  }
  uint64_t frame_bytes = sizeof(header) + len;
  active_size_ += frame_bytes;
  unsynced_bytes_ += frame_bytes;
  segments_[active_seq_].size = active_size_;
  if (c_bytes_ != nullptr) {
    c_bytes_->Increment(frame_bytes);
    c_records_->Increment();
  }
}

void BlockStore::RollSegmentIfNeeded() {
  if (active_size_ < opts_.segment_bytes) {
    return;
  }
  // Sync the finished segment regardless of policy: a torn tail in a
  // non-final segment would force recovery to drop everything after it.
  SyncActive(true);
  ::close(active_fd_);
  ++active_seq_;
  std::string path = opts_.dir + "/" + SegmentName(active_seq_);
  active_fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (active_fd_ < 0) {
    fprintf(stderr, "block_store: cannot roll to %s, store disabled\n", path.c_str());
    dead_ = true;
    return;
  }
  if (!WriteAll(active_fd_, reinterpret_cast<const uint8_t*>(kFileMagic),
                sizeof(kFileMagic))) {
    dead_ = true;
    return;
  }
  active_size_ = sizeof(kFileMagic);
  unsynced_bytes_ = 0;
  uint64_t base_next;
  Hash256 base_tip;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    segments_[active_seq_] = {path, active_size_, 0, 0, /*has_base=*/true};
    base_next = next_round_;
    base_tip = tip_hash_;
  }
  // Base marker: every rolled segment opens with the committed (next, tip)
  // so replay can prime itself here once compaction prunes everything below.
  Writer base;
  base.U64(base_next);
  base.Fixed(base_tip);
  WriteFrame(kRecSegStart, base.buffer());
  if (c_segments_ != nullptr) {
    c_segments_->Increment();
  }
}

void BlockStore::SyncActive(bool force) {
  if (!force && opts_.fsync == FsyncPolicy::kOff) {
    return;
  }
  if (unsynced_bytes_ == 0 || active_fd_ < 0) {
    return;
  }
  ::fdatasync(active_fd_);
  unsynced_bytes_ = 0;
  if (c_fsyncs_ != nullptr) {
    c_fsyncs_->Increment();
  }
}

void BlockStore::MaybeBatchedSync() {
  if (opts_.fsync == FsyncPolicy::kBatched && unsynced_bytes_ >= opts_.batch_bytes) {
    SyncActive(true);
  }
}

void BlockStore::DoAppendRound(const StoredRound& r) {
  if (dead_) {
    return;
  }
  RollSegmentIfNeeded();
  uint64_t frame_start = active_size_;
  // Wire layout mirrors DecodeRoundPayload, written without assembling the
  // (block-sized) payload into one buffer.
  Writer head;
  head.U64(r.round);
  head.U8(r.kind);
  head.Fixed(r.tip_hash);
  head.U32(static_cast<uint32_t>(r.block.size()));
  Writer cert_len;
  cert_len.U32(static_cast<uint32_t>(r.cert.size()));
  Writer final_len;
  final_len.U32(static_cast<uint32_t>(r.final_cert.size()));
  const std::span<const uint8_t> pieces[] = {
      std::span<const uint8_t>(head.buffer()),      std::span<const uint8_t>(r.block),
      std::span<const uint8_t>(cert_len.buffer()),  std::span<const uint8_t>(r.cert),
      std::span<const uint8_t>(final_len.buffer()), std::span<const uint8_t>(r.final_cert),
      std::span<const uint8_t>(r.next_seed.data(), r.next_seed.size())};
  WriteFramePieces(kRecRound, pieces);
  if (opts_.fsync == FsyncPolicy::kEveryRound) {
    SyncActive(true);  // WAL rule: payload durable before the commit frame.
  }
  Writer commit;
  commit.U64(r.round + 1);
  commit.Fixed(r.tip_hash);
  WriteFrame(kRecCommit, commit.buffer());
  if (opts_.fsync == FsyncPolicy::kEveryRound) {
    SyncActive(true);
  } else {
    MaybeBatchedSync();
  }
  if (dead_) {
    return;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  RoundLoc loc;
  loc.segment = active_seq_;
  loc.offset = frame_start;
  loc.kind = r.kind;
  loc.tip_hash = r.tip_hash;
  loc.has_final_inline = !r.final_cert.empty();
  index_[r.round] = loc;
  next_round_ = r.round + 1;
  tip_hash_ = r.tip_hash;
  if (r.kind == 0 || loc.has_final_inline) {  // ConsensusKind::kFinal == 0.
    highest_final_ = std::max(highest_final_, r.round);
  }
  auto& info = segments_[active_seq_];
  if (info.min_round == 0 || r.round < info.min_round) {
    info.min_round = r.round;
  }
  info.max_round = std::max(info.max_round, r.round);
}

void BlockStore::DoFinalUpgrade(uint64_t round, const std::vector<uint8_t>& final_cert) {
  if (dead_) {
    return;
  }
  RollSegmentIfNeeded();
  uint64_t frame_start = active_size_;
  Writer payload;
  payload.U64(round);
  payload.Bytes(final_cert);
  WriteFrame(kRecFinalUpgrade, payload.buffer());
  if (opts_.fsync == FsyncPolicy::kEveryRound) {
    SyncActive(true);
  }
  Writer commit;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    commit.U64(next_round_);
    commit.Fixed(tip_hash_);
  }
  WriteFrame(kRecCommit, commit.buffer());
  if (opts_.fsync == FsyncPolicy::kEveryRound) {
    SyncActive(true);
  } else {
    MaybeBatchedSync();
  }
  if (dead_) {
    return;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  final_upgrades_[round] = {active_seq_, frame_start};
  if (round < next_round_) {
    highest_final_ = std::max(highest_final_, round);
  }
}

void BlockStore::DoTruncate(uint64_t from_round) {
  if (dead_ || from_round == 0) {
    return;
  }
  RollSegmentIfNeeded();
  Writer payload;
  payload.U64(from_round);
  WriteFrame(kRecTruncate, payload.buffer());
  // The truncate must be durable before any dead segment is unlinked,
  // whatever the policy — otherwise a crash between the GC and the next sync
  // would resurrect half-deleted history.
  SyncActive(true);
  Writer commit;
  std::vector<std::string> doomed;
  uint64_t chain_trunc = 0;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    uint64_t new_next = std::min(next_round_, from_round);
    auto it = index_.find(from_round - 1);
    Hash256 new_tip = it != index_.end() ? it->second.tip_hash : Hash256{};
    commit.U64(new_next);
    commit.Fixed(new_tip);
    index_.erase(index_.lower_bound(from_round), index_.end());
    final_upgrades_.erase(final_upgrades_.lower_bound(from_round), final_upgrades_.end());
    if (highest_final_ >= from_round) {
      highest_final_ = from_round - 1;
    }
    next_round_ = new_next;
    tip_hash_ = new_tip;
    for (auto sit = segments_.begin(); sit != segments_.end();) {
      SegmentInfo& info = sit->second;
      if (sit->first != active_seq_ && info.min_round >= from_round && info.min_round != 0) {
        doomed.push_back(info.path);
        sit = segments_.erase(sit);
        continue;
      }
      if (info.max_round >= from_round) {
        info.max_round = from_round - 1;
      }
      if (info.min_round >= from_round) {
        info.min_round = info.max_round = 0;
      }
      ++sit;
    }
    // Checkpoints and chain links describing rounds >= from_round are dead
    // history now — a fork switch invalidates everything above it.
    for (auto cit = checkpoints_.begin(); cit != checkpoints_.end();) {
      if (cit->round >= from_round) {
        doomed.push_back(cit->path);
        cit = checkpoints_.erase(cit);
      } else {
        ++cit;
      }
    }
    auto lit = chain_links_.lower_bound(from_round);
    if (lit != chain_links_.end()) {
      chain_trunc = lit->second.first;  // Links append in round order.
      chain_links_.erase(lit, chain_links_.end());
    }
  }
  WriteFrame(kRecCommit, commit.buffer());
  SyncActive(true);
  for (const std::string& path : doomed) {
    ::unlink(path.c_str());
    DropCachedFd(path);
  }
  if (chain_trunc != 0 && chain_fd_ >= 0) {
    if (::ftruncate(chain_fd_, static_cast<off_t>(chain_trunc)) == 0) {
      chain_size_ = chain_trunc;  // O_APPEND: next write lands at the new end.
    }
    DropCachedFd(chain_path_);
  }
  {
    std::lock_guard<std::mutex> lock(ckpt_cache_mu_);
    if (ckpt_cache_round_ >= from_round) {
      ckpt_cache_round_ = 0;
      ckpt_cache_.reset();
    }
  }
  if (c_truncates_ != nullptr) {
    c_truncates_->Increment();
  }
}

// ---------------------------------------------------------------------------
// Checkpoints + compaction (writer thread)
// ---------------------------------------------------------------------------

bool BlockStore::WriteCheckpointFile(uint64_t round, const std::vector<uint8_t>& payload) {
  const std::string path = opts_.dir + "/" + CheckpointName(round);
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  uint8_t header[kCkptHeader];
  memcpy(header, kCkptMagic, sizeof(kCkptMagic));
  const uint64_t len = payload.size();
  const uint32_t crc = Crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    header[8 + i] = static_cast<uint8_t>(kCkptVersion >> (8 * i));
    header[20 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    header[12 + i] = static_cast<uint8_t>(len >> (8 * i));
  }
  bool ok = WriteAll(fd, header, sizeof(header)) &&
            WriteAll(fd, payload.data(), payload.size()) && ::fdatasync(fd) == 0;
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable, so "checkpoint exists" survives a crash.
  int dfd = ::open(opts_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    CheckpointInfo info{round, len, path};
    auto pos = std::lower_bound(
        checkpoints_.begin(), checkpoints_.end(), round,
        [](const CheckpointInfo& c, uint64_t r) { return c.round < r; });
    if (pos != checkpoints_.end() && pos->round == round) {
      *pos = std::move(info);
    } else {
      checkpoints_.insert(pos, std::move(info));
    }
  }
  if (c_ckpts_written_ != nullptr) {
    c_ckpts_written_->Increment();
    c_ckpt_bytes_->Increment(len);
  }
  return true;
}

void BlockStore::DoCheckpoint(uint64_t round,
                              const std::function<std::vector<uint8_t>()>& serialize) {
  if (dead_ || round == 0 || !serialize) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (round >= next_round_ || index_.find(round) == index_.end()) {
      return;  // Not a committed, retained round: nothing to anchor on.
    }
    for (const auto& c : checkpoints_) {
      if (c.round == round) {
        return;  // Already durable.
      }
    }
  }
  const std::vector<uint8_t> payload = serialize();
  if (payload.empty() || !WriteCheckpointFile(round, payload)) {
    return;
  }
  // Retention, then compaction below the oldest survivor.
  std::vector<std::string> drop;
  uint64_t cutoff = 0;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    const uint64_t retain = std::max<uint64_t>(1, opts_.checkpoint_retain);
    while (checkpoints_.size() > retain) {
      drop.push_back(checkpoints_.front().path);
      checkpoints_.erase(checkpoints_.begin());
    }
    cutoff = checkpoints_.front().round;
  }
  for (const std::string& path : drop) {
    ::unlink(path.c_str());
  }
  if (!drop.empty()) {
    std::lock_guard<std::mutex> lock(ckpt_cache_mu_);
    ckpt_cache_round_ = 0;
    ckpt_cache_.reset();
  }
  CompactBelow(cutoff);
}

void BlockStore::CompactBelow(uint64_t cutoff) {
  if (dead_ || cutoff <= 1) {
    return;
  }
  // Candidate prefix: ascending seqs, never the active segment, every live
  // round strictly below the cutoff — and the survivor that becomes the new
  // oldest segment must open with a SEGSTART base frame, or replay of the
  // compacted log would assume it starts at round 1 (pre-checkpoint-era
  // segments have no base marker; such a log is never cut).
  struct DoomedSeg {
    uint32_t seq = 0;
    std::string path;
    uint64_t size = 0;
    uint64_t min_round = 0;
    uint64_t max_round = 0;
  };
  std::vector<DoomedSeg> doomed;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (auto it = segments_.begin(); it != segments_.end() && it->first != active_seq_;
         ++it) {
      const SegmentInfo& info = it->second;
      auto next = std::next(it);
      const bool next_has_base = next != segments_.end() && next->second.has_base;
      if (!next_has_base || (info.min_round != 0 && info.max_round >= cutoff)) {
        break;  // Prefix rule: stop at the first segment that must stay.
      }
      doomed.push_back({it->first, info.path, info.size, info.min_round, info.max_round});
    }
  }
  if (doomed.empty()) {
    return;
  }
  // Preserve the certificate chain of every round the doomed prefix holds:
  // links must be durable in chain.log before the full blocks disappear.
  bool wrote_links = false;
  for (const DoomedSeg& d : doomed) {
    for (uint64_t r = d.min_round; r != 0 && r <= d.max_round; ++r) {
      bool ours;
      {
        std::lock_guard<std::mutex> lock(index_mu_);
        auto it = index_.find(r);
        ours = it != index_.end() && it->second.segment == d.seq &&
               chain_links_.find(r) == chain_links_.end();
      }
      if (!ours) {
        continue;
      }
      auto sr = ReadRound(r);
      if (!sr.has_value()) {
        return;  // Unreadable round: refuse to prune, keep full history.
      }
      ChainLink link;
      link.round = sr->round;
      link.kind = sr->kind;
      link.hash = sr->tip_hash;
      link.next_seed = sr->next_seed;
      link.cert = !sr->cert.empty() ? sr->cert : sr->final_cert;
      if (!AppendChainLinkFrame(link.SerializePayload())) {
        return;
      }
      wrote_links = true;
    }
  }
  if (wrote_links && chain_fd_ >= 0 && ::fdatasync(chain_fd_) != 0) {
    return;
  }
  uint64_t bytes_reclaimed = 0;
  for (const DoomedSeg& d : doomed) {
    {
      std::lock_guard<std::mutex> lock(index_mu_);
      for (uint64_t r = d.min_round; r != 0 && r <= d.max_round; ++r) {
        auto it = index_.find(r);
        if (it != index_.end() && it->second.segment == d.seq) {
          index_.erase(it);
        }
      }
      segments_.erase(d.seq);
      // Upgrade records inside a pruned prefix can only reference rounds
      // below the cutoff (they were written after those rounds, before any
      // surviving segment existed); their certs are folded into the links.
      final_upgrades_.erase(final_upgrades_.begin(), final_upgrades_.lower_bound(cutoff));
    }
    ::unlink(d.path.c_str());
    DropCachedFd(d.path);
    bytes_reclaimed += d.size;
  }
  if (c_compaction_runs_ != nullptr) {
    c_compaction_runs_->Increment();
    c_compaction_segments_->Increment(doomed.size());
    c_compaction_bytes_->Increment(bytes_reclaimed);
  }
}

bool BlockStore::AppendChainLinkFrame(const std::vector<uint8_t>& payload) {
  if (chain_fd_ < 0) {
    return false;
  }
  auto link = ChainLink::DecodePayload(payload);
  if (!link.has_value()) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    if (chain_links_.find(link->round) != chain_links_.end()) {
      return true;  // Already preserved.
    }
  }
  uint8_t header[kFrameHeader];
  header[0] = kFrameMagic;
  header[1] = kRecChainLink;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  for (int i = 0; i < 4; ++i) {
    header[2 + i] = static_cast<uint8_t>(len >> (8 * i));
    header[6 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  if (!WriteAll(chain_fd_, header, sizeof(header)) ||
      !WriteAll(chain_fd_, payload.data(), payload.size())) {
    return false;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  chain_links_[link->round] = {chain_size_,
                               static_cast<uint32_t>(kFrameHeader + payload.size())};
  chain_size_ += kFrameHeader + payload.size();
  return true;
}

void BlockStore::DoAdoptCheckpoint(uint64_t round, const std::vector<uint8_t>& payload) {
  if (dead_ || round == 0 || payload.empty()) {
    return;
  }
  WriteCheckpointFile(round, payload);
}

void BlockStore::DoPrime(uint64_t next_round, const Hash256& tip) {
  if (dead_ || next_round <= 1) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    // Only a virgin log can be primed: nothing committed, nothing written.
    if (next_round_ != 1 || !index_.empty() || segments_.size() != 1 ||
        active_size_ != sizeof(kFileMagic)) {
      return;
    }
  }
  Writer base;
  base.U64(next_round);
  base.Fixed(tip);
  WriteFrame(kRecSegStart, base.buffer());
  SyncActive(true);
  if (dead_) {
    return;
  }
  std::lock_guard<std::mutex> lock(index_mu_);
  next_round_ = next_round;
  tip_hash_ = tip;
  segments_[active_seq_].has_base = true;
}

void BlockStore::DoAppendLinks(const std::vector<std::vector<uint8_t>>& payloads) {
  if (dead_) {
    return;
  }
  bool wrote = false;
  for (const auto& payload : payloads) {
    wrote = AppendChainLinkFrame(payload) || wrote;
  }
  if (wrote && chain_fd_ >= 0) {
    ::fdatasync(chain_fd_);
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void BlockStore::Enqueue(Op op) {
  if (!opts_.background_writer) {
    Execute(op);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      return;
    }
    queue_.push_back(std::move(op));
  }
  queue_cv_.notify_one();
}

void BlockStore::AppendRound(StoredRound r) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kRound;
  op.round = std::move(r);
  Enqueue(std::move(op));
}

void BlockStore::AppendFinalUpgrade(uint64_t round, std::vector<uint8_t> final_cert) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kFinal;
  op.a = round;
  op.blob = std::move(final_cert);
  Enqueue(std::move(op));
}

void BlockStore::TruncateSuffix(uint64_t from_round) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kTruncate;
  op.a = from_round;
  Enqueue(std::move(op));
}

void BlockStore::AppendCheckpoint(uint64_t round,
                                  std::function<std::vector<uint8_t>()> serialize) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kCheckpoint;
  op.a = round;
  op.serialize = std::move(serialize);
  Enqueue(std::move(op));
}

void BlockStore::AdoptCheckpoint(uint64_t round, std::vector<uint8_t> payload) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kAdopt;
  op.a = round;
  op.blob = std::move(payload);
  Enqueue(std::move(op));
}

void BlockStore::PrimeAt(uint64_t next_round, const Hash256& tip_hash) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kPrime;
  op.a = next_round;
  op.hash = tip_hash;
  Enqueue(std::move(op));
}

void BlockStore::AppendChainLinks(std::vector<std::vector<uint8_t>> link_payloads) {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kLinks;
  op.blobs = std::move(link_payloads);
  Enqueue(std::move(op));
}

void BlockStore::Flush() {
  if (dead_) {
    return;
  }
  Op op;
  op.kind = Op::Kind::kFlush;
  if (!opts_.background_writer) {
    Execute(op);
    return;
  }
  op.waiter = std::make_shared<Op::FlushWaiter>();
  auto waiter = op.waiter;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      return;
    }
    queue_.push_back(std::move(op));
  }
  queue_cv_.notify_one();
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->done; });
}

void BlockStore::Crash() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();  // Queued-but-unwritten operations die with the process.
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) {
    writer_.join();
  }
  dead_ = true;
  if (active_fd_ >= 0) {
    ::close(active_fd_);  // No fsync: only what the OS already has survives.
    active_fd_ = -1;
  }
  if (chain_fd_ >= 0) {
    ::close(chain_fd_);
    chain_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(fd_mu_);
  for (auto& [path, fd] : fd_cache_) {
    ::close(fd);
  }
  fd_cache_.clear();
}

uint64_t BlockStore::next_round() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return next_round_;
}

uint64_t BlockStore::max_round() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return next_round_ - 1;
}

uint64_t BlockStore::highest_final_round() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return highest_final_;
}

Hash256 BlockStore::tip_hash() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return tip_hash_;
}

std::optional<StoredRound> BlockStore::ReadRound(uint64_t round) const {
  RoundLoc loc;
  std::string path;
  std::string upgrade_path;
  uint64_t upgrade_offset = 0;
  bool has_upgrade = false;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = index_.find(round);
    if (it == index_.end()) {
      if (c_index_misses_ != nullptr) {
        c_index_misses_->Increment();
      }
      return std::nullopt;
    }
    if (c_index_hits_ != nullptr) {
      c_index_hits_->Increment();
    }
    loc = it->second;
    auto seg = segments_.find(loc.segment);
    if (seg == segments_.end()) {
      return std::nullopt;
    }
    path = seg->second.path;
    auto up = final_upgrades_.find(round);
    if (up != final_upgrades_.end()) {
      auto upseg = segments_.find(up->second.first);
      if (upseg != segments_.end()) {
        has_upgrade = true;
        upgrade_path = upseg->second.path;
        upgrade_offset = up->second.second;
      }
    }
  }

  auto payload = ReadFrameAt(path, loc.offset, kRecRound);
  if (!payload.has_value()) {
    return std::nullopt;
  }
  auto r = DecodeRoundPayload(*payload);
  if (!r.has_value() || r->round != round) {
    return std::nullopt;
  }
  if (has_upgrade && r->final_cert.empty()) {
    if (auto up = ReadFrameAt(upgrade_path, upgrade_offset, kRecFinalUpgrade)) {
      Reader rd(*up);
      uint64_t up_round = rd.U64();
      std::vector<uint8_t> cert = rd.Bytes();
      if (rd.AtEnd() && up_round == round) {
        r->final_cert = std::move(cert);
      }
    }
  }
  if (c_reads_ != nullptr) {
    c_reads_->Increment();
  }
  return r;
}

// Reads one frame through the LRU fd cache. The lock covers lookup + pread:
// reads are short, and holding it prevents an eviction racing the pread with
// a closed fd. Committed offsets are stable, so the pread itself never races
// the appending writer.
std::optional<std::vector<uint8_t>> BlockStore::ReadFrameAt(const std::string& path,
                                                            uint64_t offset,
                                                            uint8_t want_type) const {
  constexpr size_t kMaxCachedFds = 8;
  std::lock_guard<std::mutex> lock(fd_mu_);
  int fd = -1;
  for (size_t i = 0; i < fd_cache_.size(); ++i) {
    if (fd_cache_[i].first == path) {
      fd = fd_cache_[i].second;
      if (i != 0) {
        std::rotate(fd_cache_.begin(), fd_cache_.begin() + i, fd_cache_.begin() + i + 1);
      }
      break;
    }
  }
  if (fd < 0) {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return std::nullopt;
    }
    fd_cache_.insert(fd_cache_.begin(), {path, fd});
    while (fd_cache_.size() > kMaxCachedFds) {
      ::close(fd_cache_.back().second);
      fd_cache_.pop_back();
    }
  }
  uint8_t header[kFrameHeader];
  if (::pread(fd, header, sizeof(header), static_cast<off_t>(offset)) !=
          static_cast<ssize_t>(sizeof(header)) ||
      header[0] != kFrameMagic || header[1] != want_type) {
    return std::nullopt;
  }
  uint32_t len = static_cast<uint32_t>(header[2]) | (static_cast<uint32_t>(header[3]) << 8) |
                 (static_cast<uint32_t>(header[4]) << 16) |
                 (static_cast<uint32_t>(header[5]) << 24);
  uint32_t crc = static_cast<uint32_t>(header[6]) | (static_cast<uint32_t>(header[7]) << 8) |
                 (static_cast<uint32_t>(header[8]) << 16) |
                 (static_cast<uint32_t>(header[9]) << 24);
  if (len > kMaxRecordBytes) {
    return std::nullopt;
  }
  std::vector<uint8_t> payload(len);
  size_t got = 0;
  while (got < payload.size()) {
    ssize_t r = ::pread(fd, payload.data() + got, payload.size() - got,
                        static_cast<off_t>(offset + kFrameHeader + got));
    if (r <= 0) {
      return std::nullopt;
    }
    got += static_cast<size_t>(r);
  }
  if (Crc32c(payload) != crc) {
    return std::nullopt;
  }
  return payload;
}

void BlockStore::DropCachedFd(const std::string& path) const {
  std::lock_guard<std::mutex> lock(fd_mu_);
  for (auto it = fd_cache_.begin(); it != fd_cache_.end(); ++it) {
    if (it->first == path) {
      ::close(it->second);
      fd_cache_.erase(it);
      return;
    }
  }
}

std::optional<ChainLink> BlockStore::ChainLinkAt(uint64_t round) const {
  // Retained rounds synthesize their link from the full record; pruned ones
  // are served from chain.log.
  if (auto sr = ReadRound(round)) {
    ChainLink link;
    link.round = sr->round;
    link.kind = sr->kind;
    link.hash = sr->tip_hash;
    link.next_seed = sr->next_seed;
    link.cert = !sr->cert.empty() ? sr->cert : sr->final_cert;
    return link;
  }
  uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    auto it = chain_links_.find(round);
    if (it == chain_links_.end()) {
      return std::nullopt;
    }
    offset = it->second.first;
  }
  auto payload = ReadFrameAt(chain_path_, offset, kRecChainLink);
  if (!payload.has_value()) {
    return std::nullopt;
  }
  auto link = ChainLink::DecodePayload(*payload);
  if (!link.has_value() || link->round != round) {
    return std::nullopt;
  }
  return link;
}

uint64_t BlockStore::first_retained_round() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return index_.empty() ? next_round_ : index_.begin()->first;
}

std::vector<CheckpointInfo> BlockStore::checkpoints() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return checkpoints_;
}

std::shared_ptr<const std::vector<uint8_t>> BlockStore::ReadCheckpointPayload(
    uint64_t round) const {
  {
    std::lock_guard<std::mutex> lock(ckpt_cache_mu_);
    if (ckpt_cache_round_ == round && ckpt_cache_ != nullptr) {
      return ckpt_cache_;
    }
  }
  std::string path;
  uint64_t payload_len = 0;
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    for (const auto& c : checkpoints_) {
      if (c.round == round) {
        path = c.path;
        payload_len = c.payload_bytes;
        break;
      }
    }
  }
  if (path.empty()) {
    return nullptr;  // Unknown round: absence, not a load failure.
  }
  bool ok = false;
  auto payload = std::make_shared<std::vector<uint8_t>>();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd >= 0) {
    uint8_t header[kCkptHeader];
    ok = ::pread(fd, header, sizeof(header), 0) == static_cast<ssize_t>(sizeof(header)) &&
         memcmp(header, kCkptMagic, sizeof(kCkptMagic)) == 0;
    uint32_t crc = 0;
    if (ok) {
      Reader rd(std::span<const uint8_t>(header + 8, sizeof(header) - 8));
      const uint32_t version = rd.U32();
      const uint64_t len = rd.U64();
      crc = rd.U32();
      ok = version == kCkptVersion && len == payload_len;
      if (ok) {
        payload->resize(len);
        size_t got = 0;
        while (got < payload->size()) {
          ssize_t r = ::pread(fd, payload->data() + got, payload->size() - got,
                              static_cast<off_t>(kCkptHeader + got));
          if (r <= 0) {
            ok = false;
            break;
          }
          got += static_cast<size_t>(r);
        }
      }
    }
    ::close(fd);
    if (ok && Crc32c(*payload) != crc) {
      ok = false;  // Bit flips anywhere in the payload land here.
    }
  }
  if (!ok) {
    if (c_ckpt_load_failures_ != nullptr) {
      c_ckpt_load_failures_->Increment();
    }
    return nullptr;
  }
  if (c_ckpt_loads_ != nullptr) {
    c_ckpt_loads_->Increment();
  }
  std::shared_ptr<const std::vector<uint8_t>> out = std::move(payload);
  std::lock_guard<std::mutex> lock(ckpt_cache_mu_);
  ckpt_cache_round_ = round;
  ckpt_cache_ = out;
  return out;
}

void BlockStore::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    c_bytes_ = c_records_ = c_fsyncs_ = c_truncates_ = c_segments_ = c_reads_ = nullptr;
    c_index_hits_ = c_index_misses_ = c_ckpts_written_ = c_ckpt_bytes_ = nullptr;
    c_ckpt_load_failures_ = c_ckpt_loads_ = c_compaction_runs_ = c_compaction_segments_ = nullptr;
    c_compaction_bytes_ = nullptr;
    return;
  }
  c_bytes_ = &metrics->GetCounter("store.bytes_written");
  c_records_ = &metrics->GetCounter("store.records_written");
  c_fsyncs_ = &metrics->GetCounter("store.fsyncs");
  c_truncates_ = &metrics->GetCounter("store.truncates");
  c_segments_ = &metrics->GetCounter("store.segments_created");
  c_reads_ = &metrics->GetCounter("store.reads");
  c_index_hits_ = &metrics->GetCounter("store.index_hits");
  c_index_misses_ = &metrics->GetCounter("store.index_misses");
  c_ckpts_written_ = &metrics->GetCounter("store.checkpoints_written");
  c_ckpt_bytes_ = &metrics->GetCounter("store.checkpoint_bytes");
  c_ckpt_load_failures_ = &metrics->GetCounter("store.checkpoint_load_failures");
  c_ckpt_loads_ = &metrics->GetCounter("store.checkpoint_loads");
  c_compaction_runs_ = &metrics->GetCounter("store.compaction_runs");
  c_compaction_segments_ = &metrics->GetCounter("store.compaction_segments_removed");
  c_compaction_bytes_ = &metrics->GetCounter("store.compaction_bytes_reclaimed");
  // Publish the Open() replay cost (scan happened before instruments existed).
  metrics->GetCounter("store.replay_rounds").Increment(replayed_rounds_);
  metrics->GetCounter("store.replay_wall_ms_total")
      .Increment(static_cast<uint64_t>(replay_wall_ms_));
  c_ckpt_load_failures_->Increment(ckpt_scan_failures_);
}

}  // namespace algorand
