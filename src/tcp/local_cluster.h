// LocalCluster: a whole Algorand network over real TCP sockets on localhost,
// driven by one single-threaded event loop. The deployment-shaped counterpart
// of SimHarness: same Node code, same gossip relay logic, but kernel sockets,
// wire-serialized messages, and wall-clock timers.
#ifndef ALGORAND_SRC_TCP_LOCAL_CLUSTER_H_
#define ALGORAND_SRC_TCP_LOCAL_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/common/verify_pool.h"
#include "src/core/node.h"
#include "src/core/verification_cache.h"
#include "src/obs/metrics.h"
#include "src/obs/round_tracer.h"
#include "src/store/block_store.h"
#include "src/tcp/tcp_transport.h"

namespace algorand {

struct LocalClusterConfig {
  size_t n_nodes = 8;
  uint64_t stake_per_user = 1000;
  uint64_t rng_seed = 1;
  size_t gossip_out_degree = 3;
  ProtocolParams params;  // Caller should scale lambdas to real-time budgets.
  bool use_sim_crypto = false;
  // Verification worker threads (see HarnessConfig::verify_workers): 0 =
  // verify inline on the event-loop thread; -1 (default) reads the
  // ALGORAND_VERIFY_WORKERS environment variable, else 0.
  int verify_workers = -1;
  // When a gossip connection drops (peer crash, socket error), redial with
  // exponential backoff instead of staying disconnected.
  bool enable_reconnect = false;
  // Durable storage: when non-empty, node i keeps a BlockStore at
  // <data_dir>/node-<i>. KillNode Crash()es the store and RestartNode
  // reopens it from disk (Node::RestoreFromStore) instead of using the
  // in-memory snapshot.
  std::string data_dir;
  FsyncPolicy store_fsync = FsyncPolicy::kBatched;
  bool store_background_writer = true;
};

class LocalCluster {
 public:
  explicit LocalCluster(const LocalClusterConfig& config);

  // Starts every node at the current wall time.
  void Start();

  // Runs the event loop until every node completed `rounds` rounds or
  // `wall_budget` elapses. Returns whether the target was reached.
  bool RunRounds(uint64_t rounds, SimTime wall_budget);

  EventLoop& loop() { return loop_; }
  Node& node(size_t i) { return *nodes_[i]; }
  size_t node_count() const { return nodes_.size(); }
  const TcpEndpoint& endpoint(size_t i) const { return *endpoints_[i]; }
  const GenesisBundle& genesis() const { return genesis_; }
  const SignerBackend& signer() const { return *signer_; }

  // True if every pair of nodes agrees on all common rounds.
  bool ChainsConsistent() const;

  // Fault injection: KillNode snapshots durable state, halts the node and
  // tears down its sockets (peers see EOF and begin reconnect-with-backoff).
  // RestartNode rebinds the same port, rebuilds endpoint/agent/node —
  // restored from the snapshot or genesis-fresh — and starts it; catch-up
  // brings it to the live tip.
  void KillNode(size_t i);
  void RestartNode(size_t i, bool from_snapshot = true);
  bool node_alive(size_t i) const { return alive_[i]; }

  // Node i's durable store; null when config.data_dir is empty or the node
  // is currently crashed.
  BlockStore* node_store(size_t i) const { return stores_[i].get(); }

  // Observability: per-node registries (endpoint + gossip + node) merged with
  // the cluster-wide registry (verification cache) into one snapshot. All
  // nodes share one RoundTracer.
  MetricsRegistry& node_metrics(size_t i) { return *metrics_[i]; }
  RoundTracer& tracer() { return tracer_; }
  MetricsSnapshot AggregateMetrics() const;

 private:
  // Wires slot `i` around the already-bound endpoints_[i]: address book,
  // metrics, reconnect policy, a fresh agent + node, and the receiver chain.
  // Initial construction and RestartNode share this.
  void WireSlot(size_t i);
  // Opens (or reopens) node i's store at <data_dir>/node-<i>.
  std::unique_ptr<BlockStore> OpenStoreFor(size_t i);

  LocalClusterConfig config_;
  GenesisBundle genesis_;
  EventLoop loop_;
  std::unique_ptr<GossipTopology> topology_;
  std::vector<std::unique_ptr<TcpEndpoint>> endpoints_;
  std::vector<std::unique_ptr<GossipAgent>> agents_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<NodeId, uint16_t> address_book_;
  // Crash/restart bookkeeping: halted nodes (and their agents) are parked,
  // not destroyed — event-loop timers may still hold their raw pointers.
  std::vector<bool> alive_;
  std::vector<std::vector<uint8_t>> snapshots_;
  std::vector<std::unique_ptr<Node>> node_graveyard_;
  std::vector<std::unique_ptr<GossipAgent>> agent_graveyard_;
  EcVrf ec_vrf_;
  SimVrf sim_vrf_;
  Ed25519Signer ed_signer_;
  SimSigner sim_signer_;
  const VrfBackend* vrf_ = nullptr;
  const SignerBackend* signer_ = nullptr;
  VerificationCache cache_;
  // After cache_: workers join before the cache (or backends) go away.
  std::unique_ptr<VerifyPool> pool_;
  std::vector<std::unique_ptr<MetricsRegistry>> metrics_;
  MetricsRegistry cluster_metrics_;
  RoundTracer tracer_;
  // Per-node durable stores (empty when data_dir is unset). Crashed stores
  // park in the graveyard: the halted node still points at its inert store.
  // Declared after metrics_: writer threads hold cached Counter pointers, so
  // stores must be destroyed (writers joined) before the registries.
  std::vector<std::unique_ptr<BlockStore>> stores_;
  std::vector<std::unique_ptr<BlockStore>> store_graveyard_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_TCP_LOCAL_CLUSTER_H_
