#include "src/tcp/framing.h"

#include <cstring>

namespace algorand {

std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(payload.size() + 4);
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(n >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameReader::Append(std::span<const uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::vector<uint8_t>> FrameReader::Next() {
  if (corrupted_ || buf_.size() - pos_ < 4) {
    return std::nullopt;
  }
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<uint32_t>(buf_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  if (n > kMaxFrameBytes) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + static_cast<size_t>(n)) {
    return std::nullopt;
  }
  std::vector<uint8_t> payload(buf_.begin() + static_cast<long>(pos_ + 4),
                               buf_.begin() + static_cast<long>(pos_ + 4 + n));
  pos_ += 4 + n;
  // Compact once the consumed prefix dominates.
  if (pos_ > 1 << 20 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  return payload;
}

}  // namespace algorand
