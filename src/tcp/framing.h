// Message framing for TCP streams: 4-byte little-endian length prefix
// followed by the payload. FrameReader reassembles frames from arbitrary
// read() chunk boundaries.
#ifndef ALGORAND_SRC_TCP_FRAMING_H_
#define ALGORAND_SRC_TCP_FRAMING_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace algorand {

// Maximum frame payload: generous for 10 MB blocks plus headroom.
constexpr uint32_t kMaxFrameBytes = 64u << 20;

// Prepends the length prefix.
std::vector<uint8_t> EncodeFrame(std::span<const uint8_t> payload);

class FrameReader {
 public:
  // Feeds raw stream bytes.
  void Append(std::span<const uint8_t> data);

  // Pops the next complete frame's payload, or nullopt if incomplete.
  std::optional<std::vector<uint8_t>> Next();

  // A frame declared longer than kMaxFrameBytes poisons the stream.
  bool corrupted() const { return corrupted_; }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;  // Consumed prefix (compacted occasionally).
  bool corrupted_ = false;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_TCP_FRAMING_H_
