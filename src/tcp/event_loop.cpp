#include "src/tcp/event_loop.h"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <array>
#include <cstdio>

namespace algorand {
namespace {

SimTime MonotonicNow() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * kSecond + ts.tv_nsec;
}

}  // namespace

EventLoop::EventLoop() : epoll_fd_(epoll_create1(0)), start_(MonotonicNow()) {}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

SimTime EventLoop::now() const { return MonotonicNow() - start_; }

void EventLoop::Schedule(SimTime delay, Callback fn) {
  ScheduleAt(now() + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventLoop::ScheduleAt(SimTime when, Callback fn) {
  if (when < now()) {
    when = now();
  }
  timers_.emplace(std::make_pair(when, next_seq_++), std::move(fn));
}

void EventLoop::AddFd(int fd, uint32_t events, FdHandler handler) {
  handlers_[fd] = std::move(handler);
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

void EventLoop::ModifyFd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::RemoveFd(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::DispatchTimers() {
  const SimTime t = now();
  while (!timers_.empty() && timers_.begin()->first.first <= t) {
    auto node = timers_.extract(timers_.begin());
    node.mapped()();
  }
}

int EventLoop::NextTimeoutMs(int cap_ms) const {
  if (timers_.empty()) {
    return cap_ms;
  }
  SimTime delta = timers_.begin()->first.first - now();
  if (delta <= 0) {
    return 0;
  }
  int ms = static_cast<int>(delta / kMillisecond) + 1;
  return ms < cap_ms ? ms : cap_ms;
}

void EventLoop::Run(const std::function<bool()>& stop_predicate) {
  stopped_ = false;
  std::array<epoll_event, 64> events;
  while (!stopped_) {
    if (stop_predicate && stop_predicate()) {
      return;
    }
    DispatchTimers();
    int n = epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                       NextTimeoutMs(50));
    for (int i = 0; i < n; ++i) {
      auto it = handlers_.find(events[static_cast<size_t>(i)].data.fd);
      if (it != handlers_.end()) {
        // Copy: the handler may remove itself.
        FdHandler handler = it->second;
        handler(events[static_cast<size_t>(i)].events);
      }
    }
    DispatchTimers();
  }
}

void EventLoop::RunFor(SimTime duration) {
  SimTime deadline = now() + duration;
  Run([this, deadline] { return now() >= deadline; });
}

}  // namespace algorand
