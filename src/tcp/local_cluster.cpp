#include "src/tcp/local_cluster.h"

namespace algorand {

LocalCluster::LocalCluster(const LocalClusterConfig& config)
    : config_(config),
      genesis_(MakeTestGenesis(config.n_nodes, config.stake_per_user, config.rng_seed)) {
  vrf_ = config_.use_sim_crypto ? static_cast<const VrfBackend*>(&sim_vrf_) : &ec_vrf_;
  signer_ =
      config_.use_sim_crypto ? static_cast<const SignerBackend*>(&sim_signer_) : &ed_signer_;

  DeterministicRng topo_rng(config_.rng_seed, "tcp-topology");
  topology_ = std::make_unique<GossipTopology>(config_.n_nodes, config_.gossip_out_degree,
                                               &topo_rng);

  // Bind every endpoint on an ephemeral port, then distribute the address
  // book (the paper's per-user IP/port file, §9).
  std::map<NodeId, uint16_t> address_book;
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    endpoints_.push_back(std::make_unique<TcpEndpoint>(&loop_, i, /*listen_port=*/0));
    address_book[i] = endpoints_.back()->port();
  }
  cache_.AttachMetrics(&cluster_metrics_);
  const size_t workers = ResolveVerifyWorkers(config_.verify_workers);
  if (workers > 0) {
    pool_ = std::make_unique<VerifyPool>(workers);
    pool_->AttachMetrics(&cluster_metrics_);
  }
  CryptoSuite crypto{vrf_, signer_, &cache_, pool_.get()};
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    metrics_.push_back(std::make_unique<MetricsRegistry>());
    endpoints_[i]->SetAddressBook(address_book);
    endpoints_[i]->AttachMetrics(metrics_.back().get());
    agents_.push_back(std::make_unique<GossipAgent>(i, endpoints_[i].get(), topology_.get()));
    agents_.back()->AttachMetrics(metrics_.back().get());
    TcpEndpoint* endpoint = endpoints_[i].get();
    GossipAgent* agent = agents_.back().get();
    nodes_.push_back(std::make_unique<Node>(i, &loop_, agent, genesis_.keys[i], genesis_.config,
                                            config_.params, crypto));
    nodes_.back()->AttachObservability(metrics_.back().get(), &tracer_);
    // With a pool, kick verification onto a worker as each frame is decoded;
    // by the time the relay logic asks for the verdict, the entry is ready or
    // in flight (worst case the protocol thread briefly waits).
    Node* node = nodes_.back().get();
    VerifyPool* pool = pool_.get();
    endpoint->set_receiver([agent, node, pool](NodeId from, const MessagePtr& msg) {
      if (pool != nullptr) {
        node->PrewarmMessage(msg, pool);
      }
      agent->OnReceive(from, msg);
    });
  }
  // Dial out-peers up front so the first round's gossip flows immediately.
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    endpoints_[i]->ConnectToPeers(topology_->neighbors(i));
  }
}

void LocalCluster::Start() {
  for (auto& node : nodes_) {
    node->Start();
  }
}

bool LocalCluster::RunRounds(uint64_t rounds, SimTime wall_budget) {
  auto done = [this, rounds] {
    for (const auto& node : nodes_) {
      if (node->ledger().chain_length() <= rounds) {
        return false;
      }
    }
    return true;
  };
  SimTime deadline = loop_.now() + wall_budget;
  loop_.Run([&] { return done() || loop_.now() >= deadline; });
  return done();
}

MetricsSnapshot LocalCluster::AggregateMetrics() const {
  MetricsSnapshot merged = cluster_metrics_.Snapshot();
  for (const auto& registry : metrics_) {
    merged.Merge(registry->Snapshot());
  }
  merged.counters["trace.events_recorded"] += tracer_.recorded();
  merged.counters["trace.events_dropped"] += tracer_.dropped();
  return merged;
}

bool LocalCluster::ChainsConsistent() const {
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const Ledger& a = nodes_[0]->ledger();
    const Ledger& b = nodes_[i]->ledger();
    uint64_t common = std::min<uint64_t>(a.chain_length(), b.chain_length());
    for (uint64_t r = 0; r < common; ++r) {
      if (a.BlockAtRound(r).Hash() != b.BlockAtRound(r).Hash()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace algorand
