#include "src/tcp/local_cluster.h"

#include <cstdio>
#include <filesystem>

namespace algorand {

LocalCluster::LocalCluster(const LocalClusterConfig& config)
    : config_(config),
      genesis_(MakeTestGenesis(config.n_nodes, config.stake_per_user, config.rng_seed)) {
  vrf_ = config_.use_sim_crypto ? static_cast<const VrfBackend*>(&sim_vrf_) : &ec_vrf_;
  signer_ =
      config_.use_sim_crypto ? static_cast<const SignerBackend*>(&sim_signer_) : &ed_signer_;

  DeterministicRng topo_rng(config_.rng_seed, "tcp-topology");
  topology_ = std::make_unique<GossipTopology>(config_.n_nodes, config_.gossip_out_degree,
                                               &topo_rng);

  // Bind every endpoint on an ephemeral port, then distribute the address
  // book (the paper's per-user IP/port file, §9).
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    endpoints_.push_back(std::make_unique<TcpEndpoint>(&loop_, i, /*listen_port=*/0));
    address_book_[i] = endpoints_.back()->port();
  }
  cache_.AttachMetrics(&cluster_metrics_);
  tracer_.AttachMetrics(&cluster_metrics_);
  const size_t workers = ResolveVerifyWorkers(config_.verify_workers);
  if (workers > 0) {
    pool_ = std::make_unique<VerifyPool>(workers);
    pool_->AttachMetrics(&cluster_metrics_);
  }
  agents_.resize(config_.n_nodes);
  nodes_.resize(config_.n_nodes);
  alive_.assign(config_.n_nodes, true);
  snapshots_.resize(config_.n_nodes);
  stores_.resize(config_.n_nodes);
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    metrics_.push_back(std::make_unique<MetricsRegistry>());
  }
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    WireSlot(i);
  }
  // Dial out-peers up front so the first round's gossip flows immediately.
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    endpoints_[i]->ConnectToPeers(topology_->neighbors(i));
  }
}

void LocalCluster::WireSlot(size_t i) {
  NodeId id = static_cast<NodeId>(i);
  endpoints_[i]->SetAddressBook(address_book_);
  endpoints_[i]->AttachMetrics(metrics_[i].get());
  if (config_.enable_reconnect) {
    endpoints_[i]->EnableReconnect(topology_->neighbors(id));
  }
  agents_[i] = std::make_unique<GossipAgent>(id, endpoints_[i].get(), topology_.get());
  agents_[i]->AttachMetrics(metrics_[i].get());
  agents_[i]->set_clock(&loop_);
  CryptoSuite crypto{vrf_, signer_, &cache_, pool_.get()};
  nodes_[i] = std::make_unique<Node>(id, &loop_, agents_[i].get(), genesis_.keys[i],
                                     genesis_.config, config_.params, crypto);
  if (!config_.data_dir.empty()) {
    auto store = OpenStoreFor(i);
    if (store != nullptr) {
      store->AttachMetrics(metrics_[i].get());
      if (store->max_round() > 0) {
        // The directory already holds a log (restart, or a reused dir from a
        // previous process): replay it before the node starts.
        nodes_[i]->RestoreFromStore(store.get());
      } else {
        nodes_[i]->AttachStore(store.get());
      }
      stores_[i] = std::move(store);
    }
  }
  nodes_[i]->AttachObservability(metrics_[i].get(), &tracer_);
  // With a pool, kick verification onto a worker as each frame is decoded;
  // by the time the relay logic asks for the verdict, the entry is ready or
  // in flight (worst case the protocol thread briefly waits).
  TcpEndpoint* endpoint = endpoints_[i].get();
  GossipAgent* agent = agents_[i].get();
  Node* node = nodes_[i].get();
  VerifyPool* pool = pool_.get();
  endpoint->set_receiver([agent, node, pool](NodeId from, const MessagePtr& msg) {
    if (pool != nullptr) {
      node->PrewarmMessage(msg, pool);
    }
    agent->OnReceive(from, msg);
  });
}

std::unique_ptr<BlockStore> LocalCluster::OpenStoreFor(size_t i) {
  StoreOptions opts;
  opts.dir = config_.data_dir + "/node-" + std::to_string(i);
  opts.fsync = config_.store_fsync;
  opts.background_writer = config_.store_background_writer;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  if (store == nullptr) {
    fprintf(stderr, "local_cluster: cannot open store for node %zu: %s\n", i, error.c_str());
  }
  return store;
}

void LocalCluster::KillNode(size_t i) {
  if (i >= nodes_.size() || !alive_[i]) {
    return;
  }
  if (stores_[i] != nullptr) {
    // SIGKILL semantics: queued log writes die, files close without flush;
    // restart finds exactly what the OS already had. No snapshot — the disk
    // log is the durable state.
    stores_[i]->Crash();
    store_graveyard_.push_back(std::move(stores_[i]));
  } else {
    snapshots_[i] = nodes_[i]->Snapshot().Serialize();
  }
  TraceEvent ev;
  ev.at = loop_.now();
  ev.node = static_cast<uint32_t>(i);
  ev.round = nodes_[i]->ledger().chain_length();
  ev.kind = TraceKind::kCrash;
  tracer_.Record(ev);
  nodes_[i]->Halt();
  alive_[i] = false;
  // Tearing down the endpoint closes the listener and every connection;
  // peers observe EOF and (if enabled) start redialing with backoff.
  endpoints_[i].reset();
  cluster_metrics_.GetCounter("restart.kills").Increment();
}

void LocalCluster::RestartNode(size_t i, bool from_snapshot) {
  if (i >= nodes_.size() || alive_[i]) {
    return;
  }
  // The old node/agent may still be referenced by queued event-loop timers;
  // park them instead of destroying them.
  node_graveyard_.push_back(std::move(nodes_[i]));
  agent_graveyard_.push_back(std::move(agents_[i]));
  // Rebind the same port so every other node's address book stays valid.
  endpoints_[i] = std::make_unique<TcpEndpoint>(&loop_, static_cast<NodeId>(i),
                                                address_book_.at(static_cast<NodeId>(i)));
  if (!config_.data_dir.empty() && !from_snapshot) {
    // Fresh rejoin: the disk is gone too. WireSlot reopens an empty store.
    std::error_code ec;
    std::filesystem::remove_all(config_.data_dir + "/node-" + std::to_string(i), ec);
  }
  WireSlot(i);  // With data_dir set, this reopens and replays the disk log.
  bool restored = false;
  if (!config_.data_dir.empty()) {
    restored = nodes_[i]->ledger().chain_length() > 1;
  } else if (from_snapshot && !snapshots_[i].empty()) {
    auto snap = NodeSnapshot::Deserialize(snapshots_[i]);
    restored = snap.has_value() && nodes_[i]->RestoreSnapshot(*snap);
  }
  TraceEvent ev;
  ev.at = loop_.now();
  ev.node = static_cast<uint32_t>(i);
  ev.round = nodes_[i]->ledger().chain_length();
  ev.kind = TraceKind::kRestart;
  ev.flag = restored ? 1 : 0;
  tracer_.Record(ev);
  alive_[i] = true;
  cluster_metrics_.GetCounter("restart.restarts").Increment();
  endpoints_[i]->ConnectToPeers(topology_->neighbors(static_cast<NodeId>(i)));
  nodes_[i]->Start();
}

void LocalCluster::Start() {
  for (auto& node : nodes_) {
    node->Start();
  }
}

bool LocalCluster::RunRounds(uint64_t rounds, SimTime wall_budget) {
  auto done = [this, rounds] {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!alive_[i]) {
        continue;  // A permanently-dead node must not stall the run.
      }
      if (nodes_[i]->ledger().chain_length() <= rounds) {
        return false;
      }
    }
    return true;
  };
  SimTime deadline = loop_.now() + wall_budget;
  loop_.Run([&] { return done() || loop_.now() >= deadline; });
  return done();
}

MetricsSnapshot LocalCluster::AggregateMetrics() const {
  MetricsSnapshot merged = cluster_metrics_.Snapshot();
  for (const auto& registry : metrics_) {
    merged.Merge(registry->Snapshot());
  }
  merged.counters["trace.events_recorded"] += tracer_.recorded();
  merged.counters["trace.events_dropped"] += tracer_.dropped();
  return merged;
}

bool LocalCluster::ChainsConsistent() const {
  for (size_t i = 1; i < nodes_.size(); ++i) {
    const Ledger& a = nodes_[0]->ledger();
    const Ledger& b = nodes_[i]->ledger();
    uint64_t common = std::min<uint64_t>(a.chain_length(), b.chain_length());
    // Compacted prefixes (checkpoint installs) hold no blocks below the base.
    for (uint64_t r = std::max<uint64_t>(a.base_round(), b.base_round()); r < common; ++r) {
      if (a.BlockAtRound(r).Hash() != b.BlockAtRound(r).Hash()) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace algorand
