// Real-time single-threaded event loop: epoll for socket readiness plus a
// timer heap implementing the Executor interface on the monotonic clock.
//
// This is the runtime under the real-TCP deployment mode (src/tcp): the same
// Node/BA* code that runs in the deterministic simulator runs here against
// wall-clock timers and kernel sockets.
#ifndef ALGORAND_SRC_TCP_EVENT_LOOP_H_
#define ALGORAND_SRC_TCP_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "src/common/executor.h"

namespace algorand {

class EventLoop : public Executor {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;

  EventLoop();
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- Executor ---
  // Monotonic nanoseconds since the loop was constructed.
  SimTime now() const override;
  void Schedule(SimTime delay, Callback fn) override;
  void ScheduleAt(SimTime when, Callback fn) override;

  // --- Sockets ---
  // Registers a non-blocking fd; handler runs with the epoll event mask.
  // `events` is an EPOLL* bitmask (EPOLLIN / EPOLLOUT / ...).
  void AddFd(int fd, uint32_t events, FdHandler handler);
  void ModifyFd(int fd, uint32_t events);
  void RemoveFd(int fd);

  // Runs until Stop() or until `predicate` returns true (checked after every
  // dispatch batch). A zero predicate means run until Stop().
  void Run(const std::function<bool()>& stop_predicate = nullptr);
  // Runs for at most `duration` wall time.
  void RunFor(SimTime duration);
  void Stop() { stopped_ = true; }

 private:
  void DispatchTimers();
  // Milliseconds until the next timer (or `cap`), for epoll_wait.
  int NextTimeoutMs(int cap_ms) const;

  int epoll_fd_;
  SimTime start_;
  bool stopped_ = false;
  uint64_t next_seq_ = 0;
  std::map<std::pair<SimTime, uint64_t>, Callback> timers_;
  std::unordered_map<int, FdHandler> handlers_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_TCP_EVENT_LOOP_H_
