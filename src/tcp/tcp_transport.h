// Real TCP gossip transport.
//
// Each node runs a TcpEndpoint: a listening socket plus outgoing connections
// to its gossip peers, all driven by the shared EventLoop. Messages are
// serialized with the wire codec (src/core/wire_codec.h) and framed with a
// length prefix; the first frame on every connection is a hello carrying the
// sender's NodeId, mirroring the paper's address-book design (§9: "an address
// book file listing the IP address and port number for every user's public
// key").
//
// This is the deployment-shaped runtime: the same Node code as in the
// simulator, but over kernel sockets and wall-clock timers. Peers are
// addressed on 127.0.0.1 with per-node ports (the multi-host generalization
// only changes the address book).
#ifndef ALGORAND_SRC_TCP_TCP_TRANSPORT_H_
#define ALGORAND_SRC_TCP_TCP_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/netsim/transport.h"
#include "src/obs/metrics.h"
#include "src/tcp/event_loop.h"
#include "src/tcp/framing.h"

namespace algorand {

struct TcpEndpointStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t decode_failures = 0;
  uint64_t reconnects = 0;  // Redial attempts made by the reconnect logic.
};

class TcpEndpoint : public Transport {
 public:
  using Receiver = std::function<void(NodeId from, const MessagePtr&)>;

  // Binds and listens on 127.0.0.1:listen_port immediately.
  TcpEndpoint(EventLoop* loop, NodeId self, uint16_t listen_port);
  ~TcpEndpoint() override;
  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  // The address book: NodeId -> 127.0.0.1 port.
  void SetAddressBook(std::map<NodeId, uint16_t> ports) { address_book_ = std::move(ports); }

  // Dials the given peers now (otherwise connections open lazily on first
  // send).
  void ConnectToPeers(const std::vector<NodeId>& peers);

  // Persistent peering: when a connection to one of `peers` drops or a dial
  // fails, redial after an exponential backoff (base, doubling, capped at
  // max). Attempts reset once the peer's hello arrives.
  void EnableReconnect(const std::vector<NodeId>& peers, SimTime backoff_base = Millis(50),
                       SimTime backoff_max = Seconds(2));

  void set_receiver(Receiver receiver) { receiver_ = std::move(receiver); }

  // Mirrors TcpEndpointStats into `registry` ("tcp.frames_in", "tcp.bytes_out",
  // "tcp.accepts", "tcp.connects", "tcp.disconnects", "tcp.decode_failures").
  // The stats_ struct remains the registry-free accessor.
  void AttachMetrics(MetricsRegistry* registry);

  // Transport: `from` must be this endpoint's own id.
  void Send(NodeId from, NodeId to, const MessagePtr& msg) override;

  bool listening() const { return listen_fd_ >= 0; }
  uint16_t port() const { return port_; }
  const TcpEndpointStats& stats() const { return stats_; }
  size_t connection_count() const { return connections_.size(); }

 private:
  struct Connection {
    int fd = -1;
    NodeId peer = UINT32_MAX;  // Unknown until the hello frame.
    bool hello_received = false;
    FrameReader reader;
    std::vector<uint8_t> out;  // Pending write bytes.
    size_t out_pos = 0;
  };

  void AcceptReady();
  void OnSocketEvent(int fd, uint32_t events);
  void ReadReady(Connection* conn);
  void FlushWrites(Connection* conn);
  void QueueBytes(Connection* conn, std::span<const uint8_t> bytes);
  Connection* ConnectionFor(NodeId peer);
  Connection* OpenConnection(NodeId peer);
  void CloseConnection(int fd);
  void RegisterConnection(std::unique_ptr<Connection> conn);
  void SendHello(Connection* conn);
  void ScheduleReconnect(NodeId peer);

  EventLoop* loop_;
  NodeId self_;
  uint16_t port_;
  int listen_fd_ = -1;
  std::map<NodeId, uint16_t> address_book_;
  Receiver receiver_;
  std::map<int, std::unique_ptr<Connection>> connections_;  // By fd.
  std::map<NodeId, int> fd_by_peer_;  // Preferred connection per peer.
  TcpEndpointStats stats_;

  // Reconnect-with-backoff state (inactive until EnableReconnect).
  std::set<NodeId> persistent_peers_;
  std::map<NodeId, uint32_t> reconnect_attempts_;
  std::set<NodeId> reconnect_pending_;  // A retry timer is already queued.
  SimTime reconnect_base_ = 0;          // 0 = reconnect disabled.
  SimTime reconnect_max_ = 0;
  // Timer guard: reconnect timers hold this weakly, so timers queued in the
  // event loop become no-ops once the endpoint is destroyed.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  // Registry-backed mirrors (null when unattached).
  struct Instruments {
    Counter* frames_in = nullptr;
    Counter* frames_out = nullptr;
    Counter* bytes_in = nullptr;
    Counter* bytes_out = nullptr;
    Counter* accepts = nullptr;
    Counter* connects = nullptr;
    Counter* disconnects = nullptr;
    Counter* decode_failures = nullptr;
    Counter* reconnects = nullptr;
  };
  Instruments obs_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_TCP_TCP_TRANSPORT_H_
