#include "src/tcp/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/core/wire_codec.h"

namespace algorand {
namespace {

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

std::vector<uint8_t> HelloFrame(NodeId self) {
  std::vector<uint8_t> hello(4);
  for (int i = 0; i < 4; ++i) {
    hello[static_cast<size_t>(i)] = static_cast<uint8_t>(self >> (8 * i));
  }
  return EncodeFrame(hello);
}

}  // namespace

TcpEndpoint::TcpEndpoint(EventLoop* loop, NodeId self, uint16_t listen_port)
    : loop_(loop), self_(self), port_(listen_port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(listen_port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 64) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return;
  }
  if (listen_port == 0) {
    // Ephemeral port: report what the kernel assigned.
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  SetNonBlocking(listen_fd_);
  loop_->AddFd(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); });
}

TcpEndpoint::~TcpEndpoint() {
  if (listen_fd_ >= 0) {
    loop_->RemoveFd(listen_fd_);
    close(listen_fd_);
  }
  for (auto& [fd, conn] : connections_) {
    loop_->RemoveFd(fd);
    close(fd);
  }
}

void TcpEndpoint::AcceptReady() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN or error: done for now.
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    if (obs_.accepts != nullptr) {
      obs_.accepts->Increment();
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    RegisterConnection(std::move(conn));
    SendHello(connections_.at(fd).get());
  }
}

void TcpEndpoint::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.frames_in = &registry->GetCounter("tcp.frames_in");
  obs_.frames_out = &registry->GetCounter("tcp.frames_out");
  obs_.bytes_in = &registry->GetCounter("tcp.bytes_in");
  obs_.bytes_out = &registry->GetCounter("tcp.bytes_out");
  obs_.accepts = &registry->GetCounter("tcp.accepts");
  obs_.connects = &registry->GetCounter("tcp.connects");
  obs_.disconnects = &registry->GetCounter("tcp.disconnects");
  obs_.decode_failures = &registry->GetCounter("tcp.decode_failures");
  obs_.reconnects = &registry->GetCounter("tcp.reconnects");
}

void TcpEndpoint::EnableReconnect(const std::vector<NodeId>& peers, SimTime backoff_base,
                                  SimTime backoff_max) {
  persistent_peers_.insert(peers.begin(), peers.end());
  reconnect_base_ = backoff_base <= 0 ? Millis(1) : backoff_base;
  reconnect_max_ = backoff_max < reconnect_base_ ? reconnect_base_ : backoff_max;
}

void TcpEndpoint::ScheduleReconnect(NodeId peer) {
  if (reconnect_base_ <= 0 || persistent_peers_.count(peer) == 0 ||
      !reconnect_pending_.insert(peer).second) {
    return;
  }
  uint32_t attempt = reconnect_attempts_[peer]++;
  SimTime backoff = reconnect_base_;
  for (uint32_t i = 0; i < attempt && backoff < reconnect_max_; ++i) {
    backoff *= 2;
  }
  if (backoff > reconnect_max_) {
    backoff = reconnect_max_;
  }
  std::weak_ptr<char> weak = alive_;
  loop_->Schedule(backoff, [this, weak, peer] {
    if (weak.expired()) {
      return;  // Endpoint destroyed while the timer was queued.
    }
    reconnect_pending_.erase(peer);
    if (fd_by_peer_.count(peer) != 0) {
      return;  // A connection (re)appeared meanwhile.
    }
    ++stats_.reconnects;
    if (obs_.reconnects != nullptr) {
      obs_.reconnects->Increment();
    }
    if (OpenConnection(peer) == nullptr) {
      ScheduleReconnect(peer);  // Dial failed outright; back off further.
    }
  });
}

void TcpEndpoint::RegisterConnection(std::unique_ptr<Connection> conn) {
  int fd = conn->fd;
  connections_[fd] = std::move(conn);
  loop_->AddFd(fd, EPOLLIN, [this, fd](uint32_t events) { OnSocketEvent(fd, events); });
}

void TcpEndpoint::SendHello(Connection* conn) { QueueBytes(conn, HelloFrame(self_)); }

void TcpEndpoint::OnSocketEvent(int fd, uint32_t events) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(fd);
    return;
  }
  if (events & EPOLLOUT) {
    FlushWrites(conn);
    if (connections_.count(fd) == 0) {
      return;  // Closed during flush.
    }
  }
  if (events & EPOLLIN) {
    ReadReady(conn);
  }
}

void TcpEndpoint::ReadReady(Connection* conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(n);
      if (obs_.bytes_in != nullptr) {
        obs_.bytes_in->Increment(static_cast<uint64_t>(n));
      }
      conn->reader.Append(std::span<const uint8_t>(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    // EOF or hard error.
    CloseConnection(conn->fd);
    return;
  }
  for (;;) {
    auto frame = conn->reader.Next();
    if (!frame) {
      if (conn->reader.corrupted()) {
        CloseConnection(conn->fd);
      }
      return;
    }
    if (!conn->hello_received) {
      if (frame->size() != 4) {
        CloseConnection(conn->fd);
        return;
      }
      NodeId peer = 0;
      for (int i = 0; i < 4; ++i) {
        peer |= static_cast<NodeId>((*frame)[static_cast<size_t>(i)]) << (8 * i);
      }
      conn->peer = peer;
      conn->hello_received = true;
      fd_by_peer_.emplace(peer, conn->fd);  // First mapping wins.
      reconnect_attempts_.erase(peer);      // Liveness proven; backoff resets.
      continue;
    }
    MessagePtr msg = DecodeMessage(*frame);
    if (!msg) {
      ++stats_.decode_failures;
      if (obs_.decode_failures != nullptr) {
        obs_.decode_failures->Increment();
      }
      continue;
    }
    ++stats_.messages_received;
    if (obs_.frames_in != nullptr) {
      obs_.frames_in->Increment();
    }
    if (receiver_) {
      const int fd = conn->fd;
      receiver_(conn->peer, msg);
      if (connections_.count(fd) == 0) {
        return;  // The receiver re-entered Send and closed this connection.
      }
    }
  }
}

void TcpEndpoint::QueueBytes(Connection* conn, std::span<const uint8_t> bytes) {
  conn->out.insert(conn->out.end(), bytes.begin(), bytes.end());
  FlushWrites(conn);
}

void TcpEndpoint::FlushWrites(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    // MSG_NOSIGNAL: a peer that crashed between our epoll wakeup and this
    // write must surface as EPIPE (-> CloseConnection -> reconnect), not kill
    // the process with SIGPIPE.
    ssize_t n = send(conn->fd, conn->out.data() + conn->out_pos,
                     conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      stats_.bytes_sent += static_cast<uint64_t>(n);
      if (obs_.bytes_out != nullptr) {
        obs_.bytes_out->Increment(static_cast<uint64_t>(n));
      }
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_->ModifyFd(conn->fd, EPOLLIN | EPOLLOUT);
      return;
    }
    if (n < 0 && errno == ENOTCONN) {
      // Connect still in progress; EPOLLOUT will fire when ready.
      loop_->ModifyFd(conn->fd, EPOLLIN | EPOLLOUT);
      return;
    }
    CloseConnection(conn->fd);
    return;
  }
  conn->out.clear();
  conn->out_pos = 0;
  loop_->ModifyFd(conn->fd, EPOLLIN);
}

TcpEndpoint::Connection* TcpEndpoint::ConnectionFor(NodeId peer) {
  auto it = fd_by_peer_.find(peer);
  if (it != fd_by_peer_.end()) {
    auto cit = connections_.find(it->second);
    if (cit != connections_.end()) {
      return cit->second.get();
    }
    fd_by_peer_.erase(it);
  }
  return OpenConnection(peer);
}

TcpEndpoint::Connection* TcpEndpoint::OpenConnection(NodeId peer) {
  auto addr_it = address_book_.find(peer);
  if (addr_it == address_book_.end()) {
    return nullptr;
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  sockaddr_in addr = LoopbackAddr(addr_it->second);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    return nullptr;
  }
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->peer = peer;
  conn->hello_received = false;  // Their hello still pending.
  Connection* raw = conn.get();
  RegisterConnection(std::move(conn));
  fd_by_peer_.emplace(peer, fd);
  if (obs_.connects != nullptr) {
    obs_.connects->Increment();
  }
  SendHello(raw);
  if (connections_.count(fd) == 0) {
    return nullptr;  // The hello flush failed and closed the connection.
  }
  return raw;
}

void TcpEndpoint::ConnectToPeers(const std::vector<NodeId>& peers) {
  for (NodeId peer : peers) {
    ConnectionFor(peer);
  }
}

void TcpEndpoint::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) {
    return;
  }
  NodeId peer = it->second->peer;
  loop_->RemoveFd(fd);
  close(fd);
  connections_.erase(it);
  if (obs_.disconnects != nullptr) {
    obs_.disconnects->Increment();
  }
  auto pit = fd_by_peer_.find(peer);
  if (pit != fd_by_peer_.end() && pit->second == fd) {
    fd_by_peer_.erase(pit);
  }
  if (peer != UINT32_MAX && fd_by_peer_.count(peer) == 0) {
    ScheduleReconnect(peer);  // No-op unless this peer is persistent.
  }
}

void TcpEndpoint::Send(NodeId from, NodeId to, const MessagePtr& msg) {
  if (from != self_) {
    return;
  }
  Connection* conn = ConnectionFor(to);
  if (conn == nullptr) {
    return;
  }
  // Encoded once per message, not per peer: relaying to N neighbours reuses
  // the memoized buffer.
  const std::vector<uint8_t>& payload = EncodeMessageCached(msg);
  if (payload.empty()) {
    return;
  }
  ++stats_.messages_sent;
  if (obs_.frames_out != nullptr) {
    obs_.frames_out->Increment();
  }
  QueueBytes(conn, EncodeFrame(payload));
}

}  // namespace algorand
