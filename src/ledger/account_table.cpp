#include "src/ledger/account_table.h"

namespace algorand {

void AccountTable::Credit(const PublicKey& pk, uint64_t amount) {
  accounts_[pk].balance += amount;
  total_weight_ += amount;
}

uint64_t AccountTable::BalanceOf(const PublicKey& pk) const {
  auto it = accounts_.find(pk);
  return it == accounts_.end() ? 0 : it->second.balance;
}

uint64_t AccountTable::NextNonceOf(const PublicKey& pk) const {
  auto it = accounts_.find(pk);
  return it == accounts_.end() ? 0 : it->second.next_nonce;
}

bool AccountTable::CheckTransaction(const Transaction& tx) const {
  auto it = accounts_.find(tx.from);
  if (it == accounts_.end()) {
    return false;
  }
  const Account& from = it->second;
  if (tx.nonce != from.next_nonce) {
    return false;
  }
  // Overflow-safe balance check.
  if (tx.amount > from.balance || tx.fee > from.balance - tx.amount) {
    return false;
  }
  return true;
}

bool AccountTable::ApplyTransaction(const Transaction& tx) {
  if (!CheckTransaction(tx)) {
    return false;
  }
  Account& from = accounts_[tx.from];
  from.balance -= tx.amount + tx.fee;
  from.next_nonce += 1;
  accounts_[tx.to].balance += tx.amount;
  total_weight_ -= tx.fee;  // Fees are burned.
  return true;
}

}  // namespace algorand
