#include "src/ledger/account_table.h"

#include <algorithm>

#include "src/crypto/sha256.h"

namespace algorand {

namespace {
constexpr size_t kInitialShardCapacity = 16;

// Grow at 3/4 load: size / capacity >= 3/4 after the pending insert.
bool NeedsGrowth(size_t size_after_insert, size_t capacity) {
  return capacity == 0 || size_after_insert * 4 > capacity * 3;
}
}  // namespace

void AccountTable::GrowShard(Shard* shard, size_t min_capacity) {
  size_t capacity = kInitialShardCapacity;
  while (capacity < min_capacity) {
    capacity <<= 1;
  }
  Shard grown;
  grown.ctrl.assign(capacity, 0);
  grown.slots.resize(capacity);
  grown.mask = capacity - 1;
  grown.size = shard->size;
  for (size_t i = 0; i < shard->slots.size(); ++i) {
    if (shard->ctrl[i] == 0) {
      continue;
    }
    size_t j = (Mix(shard->slots[i].key) >> kShardBits) & grown.mask;
    while (grown.ctrl[j] != 0) {
      j = (j + 1) & grown.mask;
    }
    grown.ctrl[j] = 1;
    grown.slots[j] = shard->slots[i];
  }
  *shard = std::move(grown);
}

const Account* AccountTable::Find(const PublicKey& pk) const {
  const uint64_t h = Mix(pk);
  const Shard& shard = shards_[h & (kShards - 1)];
  if (shard.size == 0) {
    return nullptr;
  }
  size_t i = (h >> kShardBits) & shard.mask;
  while (shard.ctrl[i] != 0) {
    if (shard.slots[i].key == pk) {
      return &shard.slots[i].account;
    }
    i = (i + 1) & shard.mask;
  }
  return nullptr;
}

Account* AccountTable::FindMutable(const PublicKey& pk) {
  return const_cast<Account*>(std::as_const(*this).Find(pk));
}

Account& AccountTable::GetOrInsert(const PublicKey& pk) {
  const uint64_t h = Mix(pk);
  Shard& shard = shards_[h & (kShards - 1)];
  if (NeedsGrowth(shard.size + 1, shard.slots.size())) {
    GrowShard(&shard, (shard.size + 1) * 2);
  }
  size_t i = (h >> kShardBits) & shard.mask;
  while (shard.ctrl[i] != 0) {
    if (shard.slots[i].key == pk) {
      return shard.slots[i].account;
    }
    i = (i + 1) & shard.mask;
  }
  shard.ctrl[i] = 1;
  shard.slots[i].key = pk;
  shard.slots[i].account = Account{};
  ++shard.size;
  return shard.slots[i].account;
}

size_t AccountTable::account_count() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    n += shard.size;
  }
  return n;
}

void AccountTable::Reserve(size_t expected_accounts) {
  // Spread across shards with slack for imbalance, then round so the 3/4
  // load factor is never crossed at the expected fill.
  const size_t per_shard = expected_accounts / kShards + 1;
  const size_t min_capacity = per_shard + per_shard / 2;
  for (Shard& shard : shards_) {
    if (shard.slots.size() < min_capacity) {
      GrowShard(&shard, min_capacity);
    }
  }
}

void AccountTable::Credit(const PublicKey& pk, uint64_t amount) {
  GetOrInsert(pk).balance += amount;
  total_weight_ += amount;
}

uint64_t AccountTable::BalanceOf(const PublicKey& pk) const {
  const Account* a = Find(pk);
  return a == nullptr ? 0 : a->balance;
}

uint64_t AccountTable::NextNonceOf(const PublicKey& pk) const {
  const Account* a = Find(pk);
  return a == nullptr ? 0 : a->next_nonce;
}

bool AccountTable::CheckTransaction(const Transaction& tx) const {
  const Account* from = Find(tx.from);
  if (from == nullptr) {
    return false;
  }
  if (tx.nonce != from->next_nonce) {
    return false;
  }
  // Overflow-safe balance check.
  if (tx.amount > from->balance || tx.fee > from->balance - tx.amount) {
    return false;
  }
  return true;
}

bool AccountTable::ApplyTransaction(const Transaction& tx) {
  if (!CheckTransaction(tx)) {
    return false;
  }
  Account* from = FindMutable(tx.from);
  from->balance -= tx.amount + tx.fee;
  from->next_nonce += 1;
  GetOrInsert(tx.to).balance += tx.amount;  // May invalidate `from`; done with it.
  total_weight_ -= tx.fee;                  // Fees are burned.
  return true;
}

void AccountTable::Upsert(const PublicKey& pk, const Account& account) {
  GetOrInsert(pk) = account;
}

std::vector<std::pair<PublicKey, Account>> AccountTable::SortedEntries() const {
  std::vector<std::pair<PublicKey, Account>> out;
  out.reserve(account_count());
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < shard.slots.size(); ++i) {
      if (shard.ctrl[i] != 0) {
        out.emplace_back(shard.slots[i].key, shard.slots[i].account);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

Hash256 AccountTable::StateFingerprint() const {
  Sha256 h;
  h.Update("account-table-v1");
  for (const auto& [pk, account] : SortedEntries()) {
    h.Update(std::span<const uint8_t>(pk.data(), pk.size()));
    uint8_t buf[16];
    for (int i = 0; i < 8; ++i) {
      buf[i] = static_cast<uint8_t>(account.balance >> (8 * i));
      buf[8 + i] = static_cast<uint8_t>(account.next_nonce >> (8 * i));
    }
    h.Update(std::span<const uint8_t>(buf, sizeof buf));
  }
  uint8_t tail[8];
  for (int i = 0; i < 8; ++i) {
    tail[i] = static_cast<uint8_t>(total_weight_ >> (8 * i));
  }
  h.Update(std::span<const uint8_t>(tail, sizeof tail));
  return h.Finish();
}

void AccountTable::SerializeTo(Writer* w) const {
  w->U64(total_weight_);
  const auto entries = SortedEntries();
  w->U64(entries.size());
  for (const auto& [pk, account] : entries) {
    w->Fixed(pk);
    w->U64(account.balance);
    w->U64(account.next_nonce);
  }
}

bool AccountTable::DeserializeFrom(Reader* rd) {
  const uint64_t total = rd->U64();
  const uint64_t count = rd->U64();
  // Entries are 48 bytes each; a count the input cannot possibly back is
  // malformed (prevents a corrupt header from driving a huge Reserve).
  if (!rd->ok() || count > rd->remaining() / 48 + 1) {
    return false;
  }
  Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const PublicKey pk = rd->Fixed<32>();
    Account account;
    account.balance = rd->U64();
    account.next_nonce = rd->U64();
    if (!rd->ok()) {
      return false;
    }
    Upsert(pk, account);
  }
  total_weight_ = total;
  return true;
}

Account AccountOverlay::Get(const PublicKey& pk) const {
  auto it = delta_.find(pk);
  if (it != delta_.end()) {
    return it->second;
  }
  const Account* a = base_->Find(pk);
  return a == nullptr ? Account{} : *a;
}

bool AccountOverlay::CheckTransaction(const Transaction& tx) const {
  const Account from = Get(tx.from);
  if (from.balance == 0 && from.next_nonce == 0 && base_->Find(tx.from) == nullptr &&
      delta_.find(tx.from) == delta_.end()) {
    return false;  // Unknown sender, same verdict as the table.
  }
  if (tx.nonce != from.next_nonce) {
    return false;
  }
  if (tx.amount > from.balance || tx.fee > from.balance - tx.amount) {
    return false;
  }
  return true;
}

bool AccountOverlay::ApplyTransaction(const Transaction& tx) {
  if (!CheckTransaction(tx)) {
    return false;
  }
  Account from = Get(tx.from);
  from.balance -= tx.amount + tx.fee;
  from.next_nonce += 1;
  delta_[tx.from] = from;
  Account to = Get(tx.to);
  to.balance += tx.amount;
  delta_[tx.to] = to;
  fees_burned_ += tx.fee;
  return true;
}

void AccountOverlay::CommitTo(AccountTable* table) const {
  for (const auto& [pk, account] : delta_) {
    table->Upsert(pk, account);
  }
  table->BurnFees(fees_burned_);
}

}  // namespace algorand
