#include "src/ledger/ledger.h"

#include "src/common/rng.h"

namespace algorand {

Ledger::Ledger(const GenesisConfig& config)
    : lookback_rounds_(config.weight_lookback_rounds),
      genesis_allocations_(config.allocations),
      seed0_(config.seed0) {
  accounts_.Reserve(config.allocations.size());
  for (const auto& [pk, amount] : config.allocations) {
    accounts_.Credit(pk, amount);
  }
  Block genesis;
  genesis.round = 0;
  genesis.is_empty = true;
  genesis.next_seed = Block::DerivedSeed(config.seed0, 0);
  chain_.push_back(genesis);
  kinds_.push_back(ConsensusKind::kFinal);
  base_seeds_.push_back(config.seed0);
  seeds_.push_back(config.seed0);
  seeds_.push_back(genesis.next_seed);
  tip_hash_ = genesis.Hash();
  round_by_hash_[tip_hash_] = 0;
  if (lookback_rounds_ > 0) {
    snapshots_.push_back(accounts_);
  }
}

bool Ledger::InstallCheckpoint(const Block& tip_block, AccountTable accounts,
                               uint64_t seed_base, std::vector<SeedBytes> seeds) {
  if (chain_length() != 1 || lookback_rounds_ > 0) {
    return false;  // Only a fresh, no-look-back ledger can adopt a prefix.
  }
  if (tip_block.round == 0 || seed_base > tip_block.round ||
      seed_base + seeds.size() != tip_block.round + 1) {
    return false;  // Seed window must cover [seed_base .. B] exactly.
  }
  base_round_ = tip_block.round;
  seed_base_ = seed_base;
  base_seeds_ = std::move(seeds);
  base_accounts_ = std::move(accounts);
  chain_.assign(1, tip_block);
  kinds_.assign(1, ConsensusKind::kFinal);
  RebuildState();
  return true;
}

bool Ledger::Append(const Block& block, ConsensusKind kind) {
  if (block.round != next_round() || block.prev_hash != tip_hash_) {
    return false;
  }
  // Apply transactions atomically (check all, then commit) through the
  // conflict-partitioned applier. The historical path copied the whole
  // account table as scratch — O(accounts) per block, prohibitive at 10^6
  // accounts; the applier's overlays are O(touched).
  static const BlockApplier kSequentialApplier;
  const BlockApplier* applier = applier_ != nullptr ? applier_ : &kSequentialApplier;
  if (!applier->ApplyBlock(block.txns, &accounts_, &last_exec_stats_)) {
    return false;
  }
  for (const Transaction& tx : block.txns) {
    txn_round_[tx.Id()] = block.round;
  }
  chain_.push_back(block);
  kinds_.push_back(kind);
  seeds_.push_back(block.next_seed);
  tip_hash_ = block.Hash();
  round_by_hash_[tip_hash_] = block.round;
  if (kind == ConsensusKind::kFinal) {
    // A final block confirms every predecessor (§8.2: total order of finals).
    for (auto& k : kinds_) {
      k = ConsensusKind::kFinal;
    }
  }
  if (lookback_rounds_ > 0) {
    snapshots_.push_back(accounts_);
    while (snapshots_.size() > lookback_rounds_ + 1) {
      snapshots_.pop_front();
    }
  }
  return true;
}

bool Ledger::ReplaceSuffix(uint64_t from_round, const std::vector<Block>& blocks) {
  if (from_round <= base_round_ || from_round > chain_length()) {
    return false;  // The compacted prefix is final; forks never reach it.
  }
  const size_t keep = from_round - base_round_;
  // Build the prospective chain.
  std::vector<Block> new_chain(chain_.begin(), chain_.begin() + static_cast<long>(keep));
  for (const Block& b : blocks) {
    if (b.round != new_chain.back().round + 1 || b.prev_hash != new_chain.back().Hash()) {
      return false;
    }
    new_chain.push_back(b);
  }
  std::vector<Block> old_chain = chain_;
  std::vector<ConsensusKind> old_kinds = kinds_;

  chain_ = std::move(new_chain);
  kinds_.assign(chain_.size(), ConsensusKind::kTentative);
  for (size_t r = 0; r < keep && r < old_kinds.size(); ++r) {
    kinds_[r] = old_kinds[r];
  }
  RebuildState();
  if (!replay_ok_) {
    chain_ = std::move(old_chain);
    kinds_ = std::move(old_kinds);
    RebuildState();
    return false;
  }
  return true;
}

void Ledger::RebuildState() {
  seeds_ = base_seeds_;  // Seeds of [seed_base_ .. base_round_].
  round_by_hash_.clear();
  txn_round_.clear();
  snapshots_.clear();
  replay_ok_ = true;

  if (base_round_ == 0) {
    accounts_ = AccountTable();
    accounts_.Reserve(genesis_allocations_.size());
    for (const auto& [pk, amount] : genesis_allocations_) {
      accounts_.Credit(pk, amount);
    }
  } else {
    accounts_ = base_accounts_;  // State after rounds 1..base_round_.
  }
  for (const Block& b : chain_) {
    seeds_.push_back(b.next_seed);
    round_by_hash_[b.Hash()] = b.round;
    if (b.round > base_round_) {
      // chain_[0] (genesis, or the checkpoint block) is already folded into
      // the starting account state; only the suffix replays transactions.
      for (const Transaction& tx : b.txns) {
        if (!accounts_.ApplyTransaction(tx)) {
          replay_ok_ = false;
        }
        txn_round_[tx.Id()] = b.round;
      }
    }
    if (lookback_rounds_ > 0) {
      snapshots_.push_back(accounts_);
      while (snapshots_.size() > lookback_rounds_ + 1) {
        snapshots_.pop_front();
      }
    }
  }
  tip_hash_ = chain_.back().Hash();
}

AccountTable Ledger::AccountsAtRound(uint64_t round) const {
  AccountTable table;
  if (base_round_ == 0) {
    table.Reserve(genesis_allocations_.size());
    for (const auto& [pk, amount] : genesis_allocations_) {
      table.Credit(pk, amount);
    }
  } else {
    table = base_accounts_;  // Rounds <= base_round_ resolve to the base state.
  }
  for (uint64_t r = base_round_ + 1; r <= round && r < chain_length(); ++r) {
    for (const Transaction& tx : chain_[r - base_round_].txns) {
      table.ApplyTransaction(tx);
    }
  }
  return table;
}

std::optional<Block> Ledger::BlockByHash(const Hash256& hash) const {
  auto it = round_by_hash_.find(hash);
  if (it == round_by_hash_.end()) {
    return std::nullopt;
  }
  return chain_[it->second - base_round_];
}

SeedBytes Ledger::SeedForRound(uint64_t round) const {
  // seeds_ covers [seed_base_, next_round()].
  return seeds_.at(round - seed_base_);
}

SeedBytes Ledger::SortitionSeed(uint64_t round, uint64_t refresh_interval) const {
  if (refresh_interval == 0) {
    refresh_interval = 1;
  }
  uint64_t offset = 1 + (round % refresh_interval);
  uint64_t idx = round > offset ? round - offset : 0;
  // A compacted ledger's window starts at seed_base_ — the checkpoint sized
  // it so every reachable idx from rounds > base_round_ lands inside it.
  return SeedForRound(std::max(idx, seed_base_));
}

uint64_t Ledger::WeightOf(const PublicKey& pk) const {
  if (lookback_rounds_ > 0 && snapshots_.size() > lookback_rounds_) {
    return snapshots_.front().WeightOf(pk);
  }
  return accounts_.WeightOf(pk);
}

uint64_t Ledger::total_weight() const {
  if (lookback_rounds_ > 0 && snapshots_.size() > lookback_rounds_) {
    return snapshots_.front().total_weight();
  }
  return accounts_.total_weight();
}

bool Ledger::IsConfirmed(const Hash256& txn_id) const {
  auto it = txn_round_.find(txn_id);
  if (it == txn_round_.end()) {
    return false;
  }
  uint64_t round = it->second;
  // Confirmed if this block or any successor is final.
  for (size_t i = round - base_round_; i < kinds_.size(); ++i) {
    if (kinds_[i] == ConsensusKind::kFinal) {
      return true;
    }
  }
  return false;
}

std::optional<uint64_t> Ledger::HighestFinalRound() const {
  for (size_t i = kinds_.size(); i > 1; --i) {
    if (kinds_[i - 1] == ConsensusKind::kFinal) {
      return base_round_ + i - 1;
    }
  }
  // The checkpoint block itself is certified final; only a genuine
  // genesis-only chain has no final round.
  if (base_round_ > 0) {
    return base_round_;
  }
  return std::nullopt;
}

GenesisBundle MakeTestGenesis(size_t n_users, uint64_t stake_per_user, uint64_t rng_seed) {
  GenesisBundle bundle;
  DeterministicRng rng(rng_seed, "genesis-keys");
  bundle.keys.reserve(n_users);
  for (size_t i = 0; i < n_users; ++i) {
    FixedBytes<32> seed;
    rng.FillBytes(seed.data(), seed.size());
    bundle.keys.push_back(Ed25519KeyFromSeed(seed));
    bundle.config.allocations.emplace_back(bundle.keys.back().public_key, stake_per_user);
  }
  DeterministicRng seed_rng(rng_seed, "genesis-seed0");
  seed_rng.FillBytes(bundle.config.seed0.data(), bundle.config.seed0.size());
  return bundle;
}

}  // namespace algorand
