// The account state implied by a chain prefix: balances and nonces per public
// key. Balances double as sortition weights (§2 "weighted users"), so the
// table also tracks the total outstanding currency W.
#ifndef ALGORAND_SRC_LEDGER_ACCOUNT_TABLE_H_
#define ALGORAND_SRC_LEDGER_ACCOUNT_TABLE_H_

#include <cstdint>
#include <map>

#include "src/common/bytes.h"
#include "src/ledger/transaction.h"

namespace algorand {

struct Account {
  uint64_t balance = 0;
  uint64_t next_nonce = 0;
};

class AccountTable {
 public:
  AccountTable() = default;

  // Mints `amount` to `pk` (genesis only).
  void Credit(const PublicKey& pk, uint64_t amount);

  uint64_t BalanceOf(const PublicKey& pk) const;
  uint64_t NextNonceOf(const PublicKey& pk) const;

  // Sortition weight of a user: their balance in currency units.
  uint64_t WeightOf(const PublicKey& pk) const { return BalanceOf(pk); }
  uint64_t total_weight() const { return total_weight_; }
  size_t account_count() const { return accounts_.size(); }

  // True if the transaction could apply right now (nonce matches, balance
  // covers amount + fee). Does not check the signature.
  bool CheckTransaction(const Transaction& tx) const;

  // Applies the transaction; returns false (and leaves state unchanged) if it
  // does not apply. Fees are burned, which shrinks total_weight.
  bool ApplyTransaction(const Transaction& tx);

  // Deterministic iteration for snapshots and tests.
  const std::map<PublicKey, Account>& accounts() const { return accounts_; }

 private:
  std::map<PublicKey, Account> accounts_;
  uint64_t total_weight_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_ACCOUNT_TABLE_H_
