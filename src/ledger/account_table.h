// The account state implied by a chain prefix: balances and nonces per public
// key. Balances double as sortition weights (§2 "weighted users"), so the
// table also tracks the total outstanding currency W.
//
// Layout: a sharded open-addressing hash table sized for millions of
// accounts. Each shard is a power-of-two array of 48-byte slots (key +
// balance + nonce) probed linearly from a mixed 64-bit prefix of the public
// key, so a lookup or balance update touches one cache line of metadata and
// one slot in the common case — against the std::map layout this removes the
// pointer chase and per-node allocation that dominated at 10^6 accounts.
// Accounts are never deleted, so probing needs no tombstones. Shards exist
// for the parallel block-apply path (ledger/exec.h): partitions that commit
// concurrently serialize per shard, not per table, via AccountTable::ShardOf.
//
// Iteration order over an open-addressing table depends on insertion order,
// which the parallel committer does not fix; every observable ordering
// (snapshots, fingerprints, tests) therefore goes through SortedEntries().
#ifndef ALGORAND_SRC_LEDGER_ACCOUNT_TABLE_H_
#define ALGORAND_SRC_LEDGER_ACCOUNT_TABLE_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/ledger/transaction.h"

namespace algorand {

struct Account {
  uint64_t balance = 0;
  uint64_t next_nonce = 0;

  friend bool operator==(const Account& a, const Account& b) {
    return a.balance == b.balance && a.next_nonce == b.next_nonce;
  }
};

class AccountTable {
 public:
  // Shard count is a layout constant: ShardOf() must agree across every code
  // path that locks shards (ledger/exec.h keys its commit mutexes by it).
  static constexpr size_t kShardBits = 6;
  static constexpr size_t kShards = size_t{1} << kShardBits;

  AccountTable() = default;

  // Mints `amount` to `pk` (genesis only).
  void Credit(const PublicKey& pk, uint64_t amount);

  uint64_t BalanceOf(const PublicKey& pk) const;
  uint64_t NextNonceOf(const PublicKey& pk) const;

  // Sortition weight of a user: their balance in currency units.
  uint64_t WeightOf(const PublicKey& pk) const { return BalanceOf(pk); }
  uint64_t total_weight() const { return total_weight_; }
  size_t account_count() const;

  // True if the transaction could apply right now (nonce matches, balance
  // covers amount + fee). Does not check the signature.
  bool CheckTransaction(const Transaction& tx) const;

  // Applies the transaction; returns false (and leaves state unchanged) if it
  // does not apply. Fees are burned, which shrinks total_weight.
  bool ApplyTransaction(const Transaction& tx);

  // Pre-sizes every shard for ~`expected_accounts` total entries so a bulk
  // load (genesis at millions of accounts) does not rehash log(n) times.
  void Reserve(size_t expected_accounts);

  // The account if present, else nullptr. Pointers are invalidated by any
  // mutation of the table.
  const Account* Find(const PublicKey& pk) const;

  // Inserts or overwrites the full account record. Used by the block-apply
  // committer to flush an overlay delta; does NOT touch total_weight (the
  // committer accounts for burned fees itself via BurnFees).
  void Upsert(const PublicKey& pk, const Account& account);

  // Subtracts burned fees from total outstanding currency. Pairs with
  // Upsert() when committing an overlay whose transfers conserve balance.
  void BurnFees(uint64_t fees) { total_weight_ -= fees; }

  // The shard an account lives in. The parallel committer locks this index.
  static size_t ShardOf(const PublicKey& pk) { return Mix(pk) & (kShards - 1); }

  // Deterministic (key-sorted) iteration for snapshots and tests. O(n log n).
  std::vector<std::pair<PublicKey, Account>> SortedEntries() const;

  // SHA-256 over the sorted entries plus total_weight: a layout-independent
  // digest of the logical state, used by the exec_workers A/B determinism
  // tests to pin "bit-identical ledger state".
  Hash256 StateFingerprint() const;

  // Serializes the logical state — total_weight plus the key-sorted entries,
  // the same ordering StateFingerprint hashes — for checkpoints (store/
  // checkpoint.h). Layout-independent: the bytes depend only on the logical
  // state, never on shard load factors or insertion order.
  void SerializeTo(Writer* w) const;

  // Restores state serialized by SerializeTo into this table (on top of
  // whatever it holds; callers pass a fresh table). Returns false on
  // malformed input, leaving the table unspecified.
  bool DeserializeFrom(Reader* rd);

 private:
  struct Slot {
    PublicKey key;
    Account account;
  };
  struct Shard {
    // ctrl[i] == 1 iff slots[i] holds an account. Probing scans ctrl (dense,
    // 64 entries per cache line) and only touches the 48-byte slot on a
    // candidate hit. Capacity is a power of two; mask == capacity - 1.
    std::vector<uint8_t> ctrl;
    std::vector<Slot> slots;
    size_t size = 0;
    size_t mask = 0;
  };

  // splitmix64 finalizer over the key's first 8 bytes: ed25519 keys are
  // already uniform, but synthetic test keys may be patterned.
  static uint64_t Mix(const PublicKey& pk) {
    uint64_t x = pk.prefix_u64();
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Account* FindMutable(const PublicKey& pk);
  Account& GetOrInsert(const PublicKey& pk);
  static void GrowShard(Shard* shard, size_t min_capacity);

  // The account count is derived by summing shard sizes (account_count())
  // rather than kept as one member: the parallel committer inserts into
  // different shards concurrently, and per-shard counters keep that race-free
  // under the per-shard commit locks.
  std::array<Shard, kShards> shards_;
  uint64_t total_weight_ = 0;
};

// A scratch view over an AccountTable: reads fall through to the base table,
// writes land in a small per-view delta map. Replaces the full-table copies
// the proposer / validator / append paths used to make, which are O(accounts)
// and prohibitive at millions of accounts; an overlay is O(touched).
class AccountOverlay {
 public:
  explicit AccountOverlay(const AccountTable& base) : base_(&base) {}

  uint64_t BalanceOf(const PublicKey& pk) const { return Get(pk).balance; }
  uint64_t NextNonceOf(const PublicKey& pk) const { return Get(pk).next_nonce; }

  // Same semantics as AccountTable::CheckTransaction/ApplyTransaction, seen
  // through the overlay.
  bool CheckTransaction(const Transaction& tx) const;
  bool ApplyTransaction(const Transaction& tx);

  uint64_t fees_burned() const { return fees_burned_; }
  size_t touched_count() const { return delta_.size(); }
  const std::unordered_map<PublicKey, Account, FixedBytesHasher>& delta() const { return delta_; }

  // Flushes the delta into `table` (single-threaded path) and burns the
  // accumulated fees. The overlay must have been built over `table`.
  void CommitTo(AccountTable* table) const;

 private:
  Account Get(const PublicKey& pk) const;

  const AccountTable* base_;
  std::unordered_map<PublicKey, Account, FixedBytesHasher> delta_;
  uint64_t fees_burned_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_ACCOUNT_TABLE_H_
