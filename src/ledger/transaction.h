// Payment transactions: a transfer of currency signed by the sender's key.
// Transactions carry a per-sender nonce so a payment cannot be replayed; this
// is what makes double-spending attempts visible as conflicting transactions.
#ifndef ALGORAND_SRC_LEDGER_TRANSACTION_H_
#define ALGORAND_SRC_LEDGER_TRANSACTION_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/crypto/signer.h"

namespace algorand {

struct Transaction {
  PublicKey from;
  PublicKey to;
  uint64_t amount = 0;
  uint64_t fee = 0;
  uint64_t nonce = 0;  // Must equal the sender's next nonce.
  Signature signature;

  // The signed portion (everything but the signature).
  std::vector<uint8_t> SerializeBody() const;
  std::vector<uint8_t> Serialize() const;
  static std::optional<Transaction> Deserialize(Reader* r);

  // SHA-256 of the full serialization: the transaction id.
  Hash256 Id() const;

  // Serialized size in bytes (fixed for this format).
  static constexpr size_t kWireSize = 32 + 32 + 8 + 8 + 8 + 64;
};

// Builds and signs a payment.
Transaction MakeTransaction(const Ed25519KeyPair& sender, const PublicKey& to, uint64_t amount,
                            uint64_t nonce, const SignerBackend& signer, uint64_t fee = 0);

// Checks the sender's signature.
bool VerifyTransactionSignature(const Transaction& tx, const SignerBackend& signer);

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_TRANSACTION_H_
