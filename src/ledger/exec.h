// Pipelined block execution: check → conflict-partition → apply in parallel.
//
// A 1 MB block holds ~6,900 signed payments (§10.2 measures committed
// throughput in MB/h of exactly such blocks). Applying them is
// embarrassingly parallel *between* groups of transactions that touch
// disjoint accounts, and strictly ordered *within* a group. The applier
// therefore union-finds transactions on touched accounts (sender and
// receiver), checks each partition against the base table through an
// AccountOverlay, and — only if every transaction in every partition applies
// — commits the per-partition deltas.
//
// Determinism invariant: the committed state is a function of the block
// alone, never of worker count or scheduling. This holds because (a)
// partitions own disjoint account sets, so their deltas never overlap and
// commit order is immaterial; (b) within a partition, transactions are
// checked and applied in block order; (c) burned fees are summed once by the
// calling thread; and (d) no observable API exposes hash-table layout (the
// only iteration order that could differ between schedules). exec_workers=0
// keeps everything on the calling thread — bit-identical state, and the
// tier-1 default so tests stay reproducible. The A/B is pinned by
// txpipeline_test and bench_txpipeline's fingerprint cross-check.
#ifndef ALGORAND_SRC_LEDGER_EXEC_H_
#define ALGORAND_SRC_LEDGER_EXEC_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/verify_pool.h"
#include "src/ledger/account_table.h"
#include "src/ledger/transaction.h"
#include "src/obs/metrics.h"

namespace algorand {

// Resolves the worker count for an `exec_workers` config field: non-negative
// is used as-is; negative (the default) defers to the ALGORAND_EXEC_WORKERS
// environment variable, else 0 (sequential). Mirrors ResolveVerifyWorkers so
// CI can run the whole suite with the parallel applier enabled.
size_t ResolveExecWorkers(int configured);

// Groups transaction indices into conflict partitions: two transactions land
// in the same partition iff they are connected through shared touched
// accounts (sender or receiver). Within each partition indices are in block
// order; partitions are ordered by their smallest transaction index. Output
// is deterministic (pure function of the block).
std::vector<std::vector<uint32_t>> PartitionByAccount(const std::vector<Transaction>& txns);

struct ExecStats {
  size_t txns = 0;
  size_t partitions = 0;
  size_t largest_partition = 0;
  bool parallel = false;  // True if this block went through pool workers.
};

class BlockApplier {
 public:
  // `pool` supplies worker threads for the parallel path; nullptr or a
  // zero-worker pool keeps every block on the calling thread. The pool may
  // be shared with other appliers (it is just a job queue).
  explicit BlockApplier(VerifyPool* pool = nullptr) : pool_(pool) {}

  // Routes "exec.blocks", "exec.txns", "exec.parallel_blocks", "exec.partitions"
  // counters and the "exec.apply_us" / "exec.partition_txns" histograms
  // through `registry`.
  void AttachMetrics(MetricsRegistry* registry);

  // Atomically applies the block's transactions to `table`: checks every
  // partition first, commits only if all of them apply in block order.
  // Returns false and leaves `table` unchanged otherwise. Thread-safe for
  // concurrent calls on *different* tables (shard locks serialize commits).
  bool ApplyBlock(const std::vector<Transaction>& txns, AccountTable* table,
                  ExecStats* stats = nullptr) const;

  // Validation-only variant: same verdict as ApplyBlock, no mutation.
  bool CheckBlock(const std::vector<Transaction>& txns, const AccountTable& table,
                  ExecStats* stats = nullptr) const;

  size_t worker_count() const { return pool_ == nullptr ? 0 : pool_->worker_count(); }

 private:
  // Checks every partition through an overlay (parallel when workers exist);
  // fills `overlays` on success. Returns false on the first failed partition.
  bool CheckPartitions(const std::vector<Transaction>& txns,
                       const std::vector<std::vector<uint32_t>>& partitions,
                       const AccountTable& table, std::vector<AccountOverlay>* overlays,
                       bool* ran_parallel) const;

  VerifyPool* pool_;
  // Commit-phase locks, keyed by AccountTable::ShardOf. Shared across every
  // table this applier touches — over-locking across tables is harmless.
  mutable std::array<std::mutex, AccountTable::kShards> shard_mu_;

  Counter* blocks_ = nullptr;
  Counter* txns_counter_ = nullptr;
  Counter* parallel_blocks_ = nullptr;
  Counter* partitions_counter_ = nullptr;
  Histogram* apply_us_ = nullptr;
  Histogram* partition_txns_ = nullptr;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_EXEC_H_
