// Concurrent transaction pool feeding proposer block assembly.
//
// The pool holds signed payments that have passed signature verification but
// are not yet in an agreed block. It enforces, under one lock so gossip
// threads and the protocol thread can share it:
//
//   * dedup by transaction id — relay copies of the same gossip payload are
//     counted and dropped;
//   * per-sender nonce sequencing — each sender keeps a nonce-ordered queue;
//     gaps are held (a future nonce waits for its predecessors) and only the
//     contiguous prefix starting at the ledger's next nonce is proposable;
//   * replacement by fee — a second transaction for the same (sender, nonce)
//     replaces the resident one only if it pays a strictly higher fee;
//   * fee-priority ordering — block assembly drains sender queues highest
//     head-fee first (ties by transaction id), so a full block carries the
//     most valuable payload;
//   * bounded capacity — at capacity the lowest-fee resident transaction is
//     evicted (preferring the tail of its sender's queue, so no new nonce
//     gaps are created); an arrival pricing below every resident is rejected.
//
// Every decision is a deterministic function of the pool contents and the
// account table passed in — assembly at two nodes with equal pools and
// ledgers yields byte-identical blocks.
#ifndef ALGORAND_SRC_LEDGER_MEMPOOL_H_
#define ALGORAND_SRC_LEDGER_MEMPOOL_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/ledger/account_table.h"
#include "src/ledger/transaction.h"
#include "src/obs/metrics.h"

namespace algorand {

struct MempoolConfig {
  size_t capacity = size_t{1} << 16;  // Max resident transactions.
};

class Mempool {
 public:
  enum class AddResult : uint8_t {
    kAdded,        // Newly admitted.
    kReplaced,     // Took over a (sender, nonce) slot from a lower-fee tx.
    kDuplicate,    // Same id already resident (relay copy), or same
                   // (sender, nonce) at an equal-or-higher fee.
    kStale,        // Nonce below the sender's ledger nonce: can never apply.
    kUnderpriced,  // Pool full and this tx prices below every resident one.
  };

  explicit Mempool(MempoolConfig config = {}) : config_(config) {}

  // Routes "mempool.added" / "mempool.duplicates" / "mempool.stale" /
  // "mempool.replaced" / "mempool.evicted" / "mempool.underpriced" /
  // "mempool.committed" counters and the "mempool.size" gauge through
  // `registry`.
  void AttachMetrics(MetricsRegistry* registry);

  // Admits `tx`, where `ledger_next_nonce` is the sender's current account
  // nonce. The caller has already verified the signature.
  AddResult Add(const Transaction& tx, uint64_t ledger_next_nonce);

  bool Contains(const Hash256& id) const;
  size_t size() const;

  // Assembles the fee-priority, nonce-sequenced transaction list for a block
  // proposal: highest head-fee sender queues first, each drained in nonce
  // order while the transactions keep applying against an overlay of
  // `accounts`, up to `max_bytes` of wire size. Deterministic.
  std::vector<Transaction> BuildBlock(const AccountTable& accounts, size_t max_bytes) const;

  // Commit-time maintenance after a block is appended: drops the committed
  // transactions by id, then drops any resident transaction of the touched
  // senders whose nonce fell below the ledger's — the apply-time
  // invalidation when a competing block spends the same nonces.
  void ObserveCommitted(const std::vector<Transaction>& committed, const AccountTable& accounts);

  // Full-scan staleness sweep against `accounts` (fork recovery / suffix
  // replacement, where any sender may have regressed or advanced).
  void DropStale(const AccountTable& accounts);

 private:
  // Eviction order: lowest fee first; within a fee, by sender then highest
  // nonce first, so the victim is a queue tail and no gap appears below it.
  struct EvictionOrder {
    bool operator()(const std::tuple<uint64_t, PublicKey, uint64_t>& a,
                    const std::tuple<uint64_t, PublicKey, uint64_t>& b) const {
      if (std::get<0>(a) != std::get<0>(b)) {
        return std::get<0>(a) < std::get<0>(b);
      }
      if (std::get<1>(a) != std::get<1>(b)) {
        return std::get<1>(a) < std::get<1>(b);
      }
      return std::get<2>(a) > std::get<2>(b);
    }
  };

  void RemoveLocked(const PublicKey& sender, uint64_t nonce);
  void DropStaleSenderLocked(const PublicKey& sender, uint64_t ledger_next_nonce);
  size_t SizeLocked() const { return ids_.size(); }
  void UpdateSizeGauge() const;

  const MempoolConfig config_;
  mutable std::mutex mu_;
  // Sender queues are std::map so iteration (assembly, sweeps) is
  // deterministic across nodes and runs.
  std::map<PublicKey, std::map<uint64_t, Transaction>> senders_;
  std::unordered_map<Hash256, std::pair<PublicKey, uint64_t>, FixedBytesHasher> ids_;
  std::set<std::tuple<uint64_t, PublicKey, uint64_t>, EvictionOrder> eviction_index_;

  Counter fallback_[7];
  Counter* added_ = &fallback_[0];
  Counter* duplicates_ = &fallback_[1];
  Counter* stale_ = &fallback_[2];
  Counter* replaced_ = &fallback_[3];
  Counter* evicted_ = &fallback_[4];
  Counter* underpriced_ = &fallback_[5];
  Counter* committed_ = &fallback_[6];
  Gauge* size_gauge_ = nullptr;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_MEMPOOL_H_
