#include "src/ledger/mempool.h"

#include <algorithm>

namespace algorand {

void Mempool::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    added_ = &fallback_[0];
    duplicates_ = &fallback_[1];
    stale_ = &fallback_[2];
    replaced_ = &fallback_[3];
    evicted_ = &fallback_[4];
    underpriced_ = &fallback_[5];
    committed_ = &fallback_[6];
    size_gauge_ = nullptr;
    return;
  }
  added_ = &registry->GetCounter("mempool.added");
  duplicates_ = &registry->GetCounter("mempool.duplicates");
  stale_ = &registry->GetCounter("mempool.stale");
  replaced_ = &registry->GetCounter("mempool.replaced");
  evicted_ = &registry->GetCounter("mempool.evicted");
  underpriced_ = &registry->GetCounter("mempool.underpriced");
  committed_ = &registry->GetCounter("mempool.committed");
  size_gauge_ = &registry->GetGauge("mempool.size");
}

void Mempool::UpdateSizeGauge() const {
  if (size_gauge_ != nullptr) {
    size_gauge_->Set(static_cast<int64_t>(ids_.size()));
  }
}

void Mempool::RemoveLocked(const PublicKey& sender, uint64_t nonce) {
  auto sit = senders_.find(sender);
  if (sit == senders_.end()) {
    return;
  }
  auto nit = sit->second.find(nonce);
  if (nit == sit->second.end()) {
    return;
  }
  ids_.erase(nit->second.Id());
  eviction_index_.erase({nit->second.fee, sender, nonce});
  sit->second.erase(nit);
  if (sit->second.empty()) {
    senders_.erase(sit);
  }
}

Mempool::AddResult Mempool::Add(const Transaction& tx, uint64_t ledger_next_nonce) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tx.nonce < ledger_next_nonce) {
    stale_->Increment();
    return AddResult::kStale;
  }
  const Hash256 id = tx.Id();
  if (ids_.find(id) != ids_.end()) {
    duplicates_->Increment();
    return AddResult::kDuplicate;
  }
  auto& queue = senders_[tx.from];
  auto slot = queue.find(tx.nonce);
  if (slot != queue.end()) {
    // A different transaction already claims this (sender, nonce): only a
    // strictly higher fee may replace it.
    if (tx.fee <= slot->second.fee) {
      duplicates_->Increment();
      return AddResult::kDuplicate;
    }
    ids_.erase(slot->second.Id());
    eviction_index_.erase({slot->second.fee, tx.from, tx.nonce});
    slot->second = tx;
    ids_.emplace(id, std::make_pair(tx.from, tx.nonce));
    eviction_index_.insert({tx.fee, tx.from, tx.nonce});
    replaced_->Increment();
    UpdateSizeGauge();
    return AddResult::kReplaced;
  }
  if (SizeLocked() >= config_.capacity) {
    const auto victim = *eviction_index_.begin();  // Lowest fee, tail-most.
    if (!(tx.fee > std::get<0>(victim))) {
      underpriced_->Increment();
      return AddResult::kUnderpriced;
    }
    RemoveLocked(std::get<1>(victim), std::get<2>(victim));
    evicted_->Increment();
  }
  senders_[tx.from].emplace(tx.nonce, tx);
  ids_.emplace(id, std::make_pair(tx.from, tx.nonce));
  eviction_index_.insert({tx.fee, tx.from, tx.nonce});
  added_->Increment();
  UpdateSizeGauge();
  return AddResult::kAdded;
}

bool Mempool::Contains(const Hash256& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.find(id) != ids_.end();
}

size_t Mempool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

std::vector<Transaction> Mempool::BuildBlock(const AccountTable& accounts,
                                             size_t max_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  AccountOverlay overlay(accounts);
  // Ready heads, drained highest fee first; ties broken by transaction id so
  // assembly is a pure function of (pool, accounts).
  struct HeadOrder {
    bool operator()(const std::tuple<uint64_t, Hash256, PublicKey>& a,
                    const std::tuple<uint64_t, Hash256, PublicKey>& b) const {
      if (std::get<0>(a) != std::get<0>(b)) {
        return std::get<0>(a) > std::get<0>(b);
      }
      return std::get<1>(a) < std::get<1>(b);
    }
  };
  std::set<std::tuple<uint64_t, Hash256, PublicKey>, HeadOrder> heads;
  for (const auto& [sender, queue] : senders_) {
    auto it = queue.find(accounts.NextNonceOf(sender));
    if (it != queue.end()) {
      heads.insert({it->second.fee, it->second.Id(), sender});
    }
  }
  std::vector<Transaction> out;
  size_t used = 0;
  while (!heads.empty() && used + Transaction::kWireSize <= max_bytes) {
    const auto head = *heads.begin();
    heads.erase(heads.begin());
    const PublicKey& sender = std::get<2>(head);
    const auto& queue = senders_.at(sender);
    auto it = queue.find(overlay.NextNonceOf(sender));
    if (it == queue.end()) {
      continue;
    }
    const Transaction& tx = it->second;
    if (!overlay.ApplyTransaction(tx)) {
      // Insufficient balance at this point of assembly; later nonces of this
      // sender cannot apply either (the nonce would gap), so drop the queue.
      continue;
    }
    out.push_back(tx);
    used += Transaction::kWireSize;
    auto next = queue.find(tx.nonce + 1);
    if (next != queue.end()) {
      heads.insert({next->second.fee, next->second.Id(), sender});
    }
  }
  return out;
}

void Mempool::ObserveCommitted(const std::vector<Transaction>& committed,
                               const AccountTable& accounts) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Transaction& tx : committed) {
    auto it = ids_.find(tx.Id());
    if (it != ids_.end()) {
      const auto [sender, nonce] = it->second;
      RemoveLocked(sender, nonce);
    }
  }
  committed_->Increment(committed.size());
  // Apply-time invalidation: a competing block may have consumed a sender's
  // nonce with a *different* transaction id; everything below the ledger
  // nonce is now unappliable.
  for (const Transaction& tx : committed) {
    DropStaleSenderLocked(tx.from, accounts.NextNonceOf(tx.from));
  }
  UpdateSizeGauge();
}

void Mempool::DropStaleSenderLocked(const PublicKey& sender, uint64_t ledger_next_nonce) {
  auto sit = senders_.find(sender);
  if (sit == senders_.end()) {
    return;
  }
  auto& queue = sit->second;
  while (!queue.empty() && queue.begin()->first < ledger_next_nonce) {
    ids_.erase(queue.begin()->second.Id());
    eviction_index_.erase({queue.begin()->second.fee, sender, queue.begin()->first});
    queue.erase(queue.begin());
    stale_->Increment();
  }
  if (queue.empty()) {
    senders_.erase(sit);
  }
}

void Mempool::DropStale(const AccountTable& accounts) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PublicKey> sender_list;
  sender_list.reserve(senders_.size());
  for (const auto& [sender, queue] : senders_) {
    sender_list.push_back(sender);
  }
  for (const PublicKey& sender : sender_list) {
    DropStaleSenderLocked(sender, accounts.NextNonceOf(sender));
  }
  UpdateSizeGauge();
}

}  // namespace algorand
