#include "src/ledger/exec.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>

namespace algorand {

size_t ResolveExecWorkers(int configured) {
  if (configured >= 0) {
    return static_cast<size_t>(configured);
  }
  const char* env = std::getenv("ALGORAND_EXEC_WORKERS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<size_t>(v) : 0;
}

std::vector<std::vector<uint32_t>> PartitionByAccount(const std::vector<Transaction>& txns) {
  const uint32_t n = static_cast<uint32_t>(txns.size());
  // Union-find over transaction indices, linked through touched accounts:
  // every account remembers the first transaction that touched it, and later
  // transactions union with that representative.
  std::vector<uint32_t> parent(n);
  for (uint32_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // Path halving.
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      // Root at the smaller index so partition order follows block order.
      if (b < a) {
        std::swap(a, b);
      }
      parent[b] = a;
    }
  };
  std::unordered_map<PublicKey, uint32_t, FixedBytesHasher> first_touch;
  first_touch.reserve(2 * n);
  for (uint32_t i = 0; i < n; ++i) {
    for (const PublicKey* pk : {&txns[i].from, &txns[i].to}) {
      auto [it, inserted] = first_touch.try_emplace(*pk, i);
      if (!inserted) {
        unite(it->second, i);
      }
    }
  }
  // Bucket by root; roots are minimal indices, so ordering partitions by
  // root index == ordering by smallest member.
  std::unordered_map<uint32_t, uint32_t> slot_of_root;
  std::vector<std::vector<uint32_t>> partitions;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t root = find(i);
    auto [it, inserted] = slot_of_root.try_emplace(root, static_cast<uint32_t>(partitions.size()));
    if (inserted) {
      partitions.emplace_back();
    }
    partitions[it->second].push_back(i);
  }
  return partitions;
}

void BlockApplier::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    blocks_ = txns_counter_ = parallel_blocks_ = partitions_counter_ = nullptr;
    apply_us_ = partition_txns_ = nullptr;
    return;
  }
  blocks_ = &registry->GetCounter("exec.blocks");
  txns_counter_ = &registry->GetCounter("exec.txns");
  parallel_blocks_ = &registry->GetCounter("exec.parallel_blocks");
  partitions_counter_ = &registry->GetCounter("exec.partitions");
  apply_us_ = &registry->GetHistogram("exec.apply_us", MetricsRegistry::DefaultTimeBucketsMs());
  partition_txns_ =
      &registry->GetHistogram("exec.partition_txns", MetricsRegistry::DefaultCountBuckets());
}

namespace {

// Completion latch for the fan-out phases: waits for exactly the jobs this
// block submitted, never for unrelated work sharing the pool.
struct JobLatch {
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;

  void Done() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending == 0) {
      cv.notify_all();
    }
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
  }
};

}  // namespace

bool BlockApplier::CheckPartitions(const std::vector<Transaction>& txns,
                                   const std::vector<std::vector<uint32_t>>& partitions,
                                   const AccountTable& table,
                                   std::vector<AccountOverlay>* overlays,
                                   bool* ran_parallel) const {
  overlays->assign(partitions.size(), AccountOverlay(table));
  const size_t workers = worker_count();
  auto check_one = [&](size_t p) {
    AccountOverlay& overlay = (*overlays)[p];
    for (uint32_t i : partitions[p]) {
      if (!overlay.ApplyTransaction(txns[i])) {
        return false;
      }
    }
    return true;
  };
  if (workers == 0 || partitions.size() < 2) {
    *ran_parallel = false;
    for (size_t p = 0; p < partitions.size(); ++p) {
      if (!check_one(p)) {
        return false;
      }
    }
    return true;
  }
  *ran_parallel = true;
  // Round-robin partitions into a bounded number of jobs so thousands of
  // singleton partitions do not become thousands of queue entries.
  const size_t jobs = std::min(partitions.size(), workers * 4);
  std::atomic<bool> all_ok{true};
  JobLatch latch;
  latch.pending = jobs;
  for (size_t j = 0; j < jobs; ++j) {
    pool_->Submit([&, j] {
      for (size_t p = j; p < partitions.size(); p += jobs) {
        if (!all_ok.load(std::memory_order_relaxed)) {
          break;
        }
        if (!check_one(p)) {
          all_ok.store(false, std::memory_order_relaxed);
          break;
        }
      }
      latch.Done();
    });
  }
  latch.Wait();
  return all_ok.load(std::memory_order_relaxed);
}

bool BlockApplier::ApplyBlock(const std::vector<Transaction>& txns, AccountTable* table,
                              ExecStats* stats) const {
  const auto start = std::chrono::steady_clock::now();
  const auto partitions = PartitionByAccount(txns);
  ExecStats local;
  local.txns = txns.size();
  local.partitions = partitions.size();
  for (const auto& part : partitions) {
    local.largest_partition = std::max(local.largest_partition, part.size());
    if (partition_txns_ != nullptr) {
      partition_txns_->Observe(static_cast<double>(part.size()));
    }
  }

  std::vector<AccountOverlay> overlays;
  if (!CheckPartitions(txns, partitions, *table, &overlays, &local.parallel)) {
    if (stats != nullptr) {
      *stats = local;
    }
    return false;
  }

  // Commit phase: every partition's delta is disjoint, so commit order is
  // immaterial; concurrent upserts serialize per table shard. Burned fees sum
  // on the calling thread so total_weight sees one deterministic subtraction.
  uint64_t fees = 0;
  const size_t workers = worker_count();
  if (!local.parallel || workers == 0 || overlays.size() < 2) {
    for (const AccountOverlay& overlay : overlays) {
      for (const auto& [pk, account] : overlay.delta()) {
        table->Upsert(pk, account);
      }
      fees += overlay.fees_burned();
    }
  } else {
    const size_t jobs = std::min(overlays.size(), workers * 4);
    JobLatch latch;
    latch.pending = jobs;
    for (size_t j = 0; j < jobs; ++j) {
      pool_->Submit([&, j] {
        for (size_t p = j; p < overlays.size(); p += jobs) {
          for (const auto& [pk, account] : overlays[p].delta()) {
            std::lock_guard<std::mutex> lock(shard_mu_[AccountTable::ShardOf(pk)]);
            table->Upsert(pk, account);
          }
        }
        latch.Done();
      });
    }
    latch.Wait();
    for (const AccountOverlay& overlay : overlays) {
      fees += overlay.fees_burned();
    }
  }
  table->BurnFees(fees);

  if (blocks_ != nullptr) {
    blocks_->Increment();
    txns_counter_->Increment(local.txns);
    partitions_counter_->Increment(local.partitions);
    if (local.parallel) {
      parallel_blocks_->Increment();
    }
    apply_us_->Observe(std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                                start)
                           .count());
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return true;
}

bool BlockApplier::CheckBlock(const std::vector<Transaction>& txns, const AccountTable& table,
                              ExecStats* stats) const {
  const auto partitions = PartitionByAccount(txns);
  ExecStats local;
  local.txns = txns.size();
  local.partitions = partitions.size();
  for (const auto& part : partitions) {
    local.largest_partition = std::max(local.largest_partition, part.size());
  }
  std::vector<AccountOverlay> overlays;
  const bool ok = CheckPartitions(txns, partitions, table, &overlays, &local.parallel);
  if (stats != nullptr) {
    *stats = local;
  }
  return ok;
}

}  // namespace algorand
