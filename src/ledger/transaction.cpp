#include "src/ledger/transaction.h"

#include "src/crypto/sha256.h"

namespace algorand {

std::vector<uint8_t> Transaction::SerializeBody() const {
  Writer w;
  w.Fixed(from);
  w.Fixed(to);
  w.U64(amount);
  w.U64(fee);
  w.U64(nonce);
  return w.Take();
}

std::vector<uint8_t> Transaction::Serialize() const {
  Writer w;
  w.Raw(SerializeBody());
  w.Fixed(signature);
  return w.Take();
}

std::optional<Transaction> Transaction::Deserialize(Reader* r) {
  Transaction tx;
  tx.from = r->Fixed<32>();
  tx.to = r->Fixed<32>();
  tx.amount = r->U64();
  tx.fee = r->U64();
  tx.nonce = r->U64();
  tx.signature = r->Fixed<64>();
  if (!r->ok()) {
    return std::nullopt;
  }
  return tx;
}

Hash256 Transaction::Id() const { return Sha256::Hash(Serialize()); }

Transaction MakeTransaction(const Ed25519KeyPair& sender, const PublicKey& to, uint64_t amount,
                            uint64_t nonce, const SignerBackend& signer, uint64_t fee) {
  Transaction tx;
  tx.from = sender.public_key;
  tx.to = to;
  tx.amount = amount;
  tx.fee = fee;
  tx.nonce = nonce;
  tx.signature = signer.Sign(sender, tx.SerializeBody());
  return tx;
}

bool VerifyTransactionSignature(const Transaction& tx, const SignerBackend& signer) {
  return signer.Verify(tx.from, tx.SerializeBody(), tx.signature);
}

}  // namespace algorand
