// Per-node ledger state: the chain of agreed blocks, the account table they
// imply, the per-round seed schedule (§5.2), and optional historical weight
// snapshots for the look-back rule (§5.3).
#ifndef ALGORAND_SRC_LEDGER_LEDGER_H_
#define ALGORAND_SRC_LEDGER_LEDGER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/ledger/account_table.h"
#include "src/ledger/block.h"
#include "src/ledger/exec.h"

namespace algorand {

// How a round's block was agreed (§4): final consensus confirms the block and
// all its predecessors; tentative consensus awaits a final successor.
enum class ConsensusKind : uint8_t {
  kFinal = 0,
  kTentative = 1,
};

struct GenesisConfig {
  std::vector<std::pair<PublicKey, uint64_t>> allocations;
  SeedBytes seed0;

  // If > 0, the ledger keeps account-table snapshots for this many recent
  // rounds so sortition can use look-back weights (§5.3).
  uint64_t weight_lookback_rounds = 0;
};

class Ledger {
 public:
  explicit Ledger(const GenesisConfig& config);

  // Appends a block extending the tip; the caller is responsible for protocol
  // validation (see core/validation.h). Returns false if the block does not
  // structurally extend the tip (wrong round or prev_hash) or a transaction
  // fails to apply.
  bool Append(const Block& block, ConsensusKind kind);

  // Replaces the chain suffix starting at `from_round` with `blocks`
  // (fork-recovery switch, §8.2). Replays state from the base (genesis, or
  // the installed checkpoint). Returns false and leaves the ledger unchanged
  // if the replacement does not form a valid chain, or if `from_round` dips
  // into the compacted prefix (<= base_round(): final history, never forked).
  bool ReplaceSuffix(uint64_t from_round, const std::vector<Block>& blocks);

  // Installs a checkpoint into a *fresh* ledger (chain_length() == 1, no
  // look-back configured): the round-B tip block, the account state after
  // applying rounds 1..B, and the seed window [seed_base .. B]. Afterwards
  // the ledger runs in compacted-prefix mode — rounds <= B are final and
  // their blocks unavailable; Append continues at B+1. Fails (leaving the
  // ledger untouched) on structural mismatch. Callers validate the state
  // against the checkpoint manifest (tip hash, fingerprint) themselves.
  bool InstallCheckpoint(const Block& tip_block, AccountTable accounts,
                         uint64_t seed_base, std::vector<SeedBytes> seeds);

  // Round below which history is compacted away (0 = full history from
  // genesis). chain, kinds and seeds start here, not at round 0.
  uint64_t base_round() const { return base_round_; }
  // Lowest round SeedForRound can answer (0 in full-history mode).
  uint64_t seed_base() const { return seed_base_; }
  // Look-back window configured at genesis (0 = current-weight sortition).
  uint64_t lookback_rounds() const { return lookback_rounds_; }

  // Only meaningful when base_round() == 0 (chain_.front() is the round-B
  // checkpoint block otherwise).
  const Block& genesis() const { return chain_.front(); }
  const Block& Tip() const { return chain_.back(); }
  Hash256 tip_hash() const { return tip_hash_; }
  // The round the node is currently trying to agree on.
  uint64_t next_round() const { return Tip().round + 1; }
  // Logical length: 1 + tip round, whether or not the prefix is compacted.
  size_t chain_length() const { return base_round_ + chain_.size(); }

  // Valid for round in [base_round(), chain_length()).
  const Block& BlockAtRound(uint64_t round) const { return chain_.at(round - base_round_); }
  std::optional<Block> BlockByHash(const Hash256& hash) const;

  // seed_r: defined for r in [seed_base, next_round()] — seed_base is 0 for a
  // full-history ledger, the checkpoint's window start otherwise.
  SeedBytes SeedForRound(uint64_t round) const;

  // The seed actually passed to sortition in round r, refreshed every
  // `refresh_interval` rounds: seed_{r-1-(r mod R)} (§5.2), clamped at the
  // genesis seed.
  SeedBytes SortitionSeed(uint64_t round, uint64_t refresh_interval) const;

  const AccountTable& accounts() const { return accounts_; }

  // Routes Append's transaction execution through `applier` (the pipelined
  // verify → partition → apply path of ledger/exec.h). Null restores the
  // built-in sequential applier. The applier must outlive the ledger; its
  // worker count never changes the committed state, only how it is computed.
  void SetApplier(const BlockApplier* applier) { applier_ = applier; }

  // Execution stats of the most recent successful Append.
  const ExecStats& last_exec_stats() const { return last_exec_stats_; }

  // Account state after applying blocks 1..round (by replay). Used by the
  // recovery protocol, which needs weights from the pre-fork (final) prefix.
  AccountTable AccountsAtRound(uint64_t round) const;

  // Sortition weights. If a look-back is configured and history is deep
  // enough, weights come from `lookback` rounds before the tip.
  uint64_t WeightOf(const PublicKey& pk) const;
  uint64_t total_weight() const;

  // Rounds below the base are final by construction (the checkpoint only
  // covers certified-final history).
  ConsensusKind ConsensusAtRound(uint64_t round) const {
    return round < base_round_ ? ConsensusKind::kFinal : kinds_.at(round - base_round_);
  }
  // Marks a tentative round final (a later final block confirms predecessors).
  void MarkFinal(uint64_t round) {
    if (round >= base_round_) {
      kinds_.at(round - base_round_) = ConsensusKind::kFinal;
    }
  }

  // A transaction is confirmed once it appears in a block that is final or
  // has a final successor (§4, §8.2).
  bool IsConfirmed(const Hash256& txn_id) const;

  // Rounds of the highest final block, if any beyond genesis.
  std::optional<uint64_t> HighestFinalRound() const;

 private:
  // Recomputes accounts/seeds/indexes by replaying chain_ from the base
  // (genesis allocations, or the installed checkpoint state). Sets
  // replay_ok_ false if any transaction fails to apply.
  void RebuildState();

  uint64_t lookback_rounds_;
  std::vector<std::pair<PublicKey, uint64_t>> genesis_allocations_;
  SeedBytes seed0_;
  bool replay_ok_ = true;

  // Compacted-prefix mode (InstallCheckpoint). base_round_ == 0 means full
  // history; then base_seeds_ == {seed0_} and base_accounts_ is unused.
  uint64_t base_round_ = 0;
  uint64_t seed_base_ = 0;
  // Seeds of rounds [seed_base_ .. base_round_]; chain_[0]'s next_seed (the
  // round base_round_+1 seed) is appended by RebuildState, keeping the replay
  // loop uniform across both modes.
  std::vector<SeedBytes> base_seeds_;
  AccountTable base_accounts_;  // State after rounds 1..base_round_.

  std::vector<Block> chain_;          // chain_[i] is the round base_round_+i block.
  std::vector<ConsensusKind> kinds_;  // Parallel to chain_.
  std::vector<SeedBytes> seeds_;      // seeds_[i] = seed of round seed_base_+i.
  Hash256 tip_hash_;
  AccountTable accounts_;
  const BlockApplier* applier_ = nullptr;
  ExecStats last_exec_stats_;
  std::unordered_map<Hash256, uint64_t, FixedBytesHasher> round_by_hash_;
  std::unordered_map<Hash256, uint64_t, FixedBytesHasher> txn_round_;  // txn id -> round.
  std::deque<AccountTable> snapshots_;  // Most recent last; only if lookback.
};

// Deterministic test/simulation genesis: `n` users with equal `stake`, keys
// derived from a seed. Returns the configs plus the key pairs.
struct GenesisBundle {
  GenesisConfig config;
  std::vector<Ed25519KeyPair> keys;
};
GenesisBundle MakeTestGenesis(size_t n_users, uint64_t stake_per_user, uint64_t rng_seed);

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_LEDGER_H_
