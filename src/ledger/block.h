// Block format (§8.1): a list of transactions plus the metadata BA* needs —
// round number, the proposer's VRF-based seed for the next round, the hash of
// the previous block, and a proposal timestamp.
//
// Simulated payload: experiments sweep block sizes up to 10 MB without
// materializing megabytes of payments. `padding_bytes` declares extra payload
// volume and `padding_digest` stands for its content (so two equivocating
// blocks from a malicious proposer really have different hashes); the network
// simulator charges bandwidth for WireSize() which includes the padding.
#ifndef ALGORAND_SRC_LEDGER_BLOCK_H_
#define ALGORAND_SRC_LEDGER_BLOCK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/common/time_units.h"
#include "src/ledger/transaction.h"

namespace algorand {

struct Block {
  uint64_t round = 0;
  Hash256 prev_hash;
  SimTime timestamp = 0;

  // Proposer credentials (all zero for the empty block).
  PublicKey proposer;
  VrfOutput proposer_vrf;   // Sortition hash: determines priority.
  VrfProof proposer_proof;  // Sortition proof for the proposer role.

  // The seed for round `round + 1` (§5.2) and its VRF proof. For empty blocks
  // the seed is derived by hashing, and the proof is all zero.
  SeedBytes next_seed;
  VrfProof next_seed_proof;

  std::vector<Transaction> txns;

  // Synthetic payload (see file comment).
  uint64_t padding_bytes = 0;
  Hash256 padding_digest;

  bool is_empty = false;

  Hash256 Hash() const;

  // Bytes this block occupies on the wire, including simulated padding.
  uint64_t WireSize() const;

  std::vector<uint8_t> Serialize() const;
  static std::optional<Block> Deserialize(std::span<const uint8_t> data);

  // The canonical empty block for a round (Algorithm 7's Empty()): computable
  // identically by every node that knows the previous block and the current
  // round's seed. `prev_seed` is the seed of round `round`.
  static Block MakeEmpty(uint64_t round, const Hash256& prev_hash, const SeedBytes& prev_seed);

  // The deterministic fallback seed H(prev_seed || round + 1) used when a
  // block carries no valid proposer seed (§5.2).
  static SeedBytes DerivedSeed(const SeedBytes& prev_seed, uint64_t round);
};

}  // namespace algorand

#endif  // ALGORAND_SRC_LEDGER_BLOCK_H_
