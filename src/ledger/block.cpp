#include "src/ledger/block.h"

#include "src/crypto/sha256.h"

namespace algorand {

std::vector<uint8_t> Block::Serialize() const {
  Writer w;
  w.U64(round);
  w.Fixed(prev_hash);
  w.I64(timestamp);
  w.Fixed(proposer);
  w.Fixed(proposer_vrf);
  w.Fixed(proposer_proof);
  w.Fixed(next_seed);
  w.Fixed(next_seed_proof);
  w.U8(is_empty ? 1 : 0);
  w.U64(padding_bytes);
  w.Fixed(padding_digest);
  w.U32(static_cast<uint32_t>(txns.size()));
  for (const Transaction& tx : txns) {
    w.Raw(tx.Serialize());
  }
  return w.Take();
}

std::optional<Block> Block::Deserialize(std::span<const uint8_t> data) {
  Reader r(data);
  Block b;
  b.round = r.U64();
  b.prev_hash = r.Fixed<32>();
  b.timestamp = r.I64();
  b.proposer = r.Fixed<32>();
  b.proposer_vrf = r.Fixed<64>();
  b.proposer_proof = r.Fixed<80>();
  b.next_seed = r.Fixed<32>();
  b.next_seed_proof = r.Fixed<80>();
  b.is_empty = r.U8() != 0;
  b.padding_bytes = r.U64();
  b.padding_digest = r.Fixed<32>();
  uint32_t n = r.U32();
  // Bound the count by the bytes actually left in the buffer before
  // reserving: a count the remainder cannot hold is malformed, full stop.
  // (The old bound, data.size() / kWireSize + 1, measured the whole buffer
  // including the ~300-byte header and was off by a couple of transactions.)
  if (!r.ok() || n > r.remaining() / Transaction::kWireSize) {
    return std::nullopt;
  }
  b.txns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto tx = Transaction::Deserialize(&r);
    if (!tx) {
      return std::nullopt;
    }
    b.txns.push_back(std::move(*tx));
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return b;
}

Hash256 Block::Hash() const { return Sha256::Hash(Serialize()); }

uint64_t Block::WireSize() const { return Serialize().size() + padding_bytes; }

SeedBytes Block::DerivedSeed(const SeedBytes& prev_seed, uint64_t round) {
  Writer w;
  w.Fixed(prev_seed);
  w.U64(round + 1);
  Hash256 h = Sha256::Hash(w.buffer());
  return SeedBytes::FromSpan(h.span());
}

Block Block::MakeEmpty(uint64_t round, const Hash256& prev_hash, const SeedBytes& prev_seed) {
  Block b;
  b.round = round;
  b.prev_hash = prev_hash;
  b.is_empty = true;
  b.next_seed = DerivedSeed(prev_seed, round);
  return b;
}

}  // namespace algorand
