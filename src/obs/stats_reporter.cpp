#include "src/obs/stats_reporter.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>

namespace algorand {
namespace {

// Keys are metric-style dot-paths; escape anyway so arbitrary caller names
// cannot break the line format.
void AppendJsonKey(std::string* out, const std::string& key) {
  out->push_back('"');
  for (char c : key) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c >= 0x20 ? c : '?');
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    v = 0;  // NaN/inf are not JSON.
  }
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

struct StatsReporter::State {
  Executor* executor;
  SimTime interval;
  Collect collect;
  std::ostream* out;

  std::mutex mu;
  bool running = false;
  uint64_t lines = 0;
};

StatsReporter::StatsReporter(Executor* executor, SimTime interval, Collect collect,
                             std::ostream* out)
    : state_(std::make_shared<State>()) {
  state_->executor = executor;
  state_->interval = interval > 0 ? interval : SimTime{1};
  state_->collect = std::move(collect);
  state_->out = out;
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  std::shared_ptr<State> state = state_;
  SimTime first;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->running) {
      return;
    }
    state->running = true;
    first = state->executor->now() + state->interval;
  }
  std::weak_ptr<State> weak = state;
  state->executor->ScheduleAt(first, [weak, first] {
    if (auto s = weak.lock()) {
      Tick(s, first);
    }
  });
}

void StatsReporter::Stop() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->running = false;
}

uint64_t StatsReporter::lines_emitted() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->lines;
}

std::string StatsReporter::MakeLine(double t_seconds, double lag_ms, const Sample& sample) {
  std::string line;
  line.reserve(64 + sample.size() * 24);
  char buf[64];
  snprintf(buf, sizeof(buf), "{\"t\":%.6f,\"lag_ms\":%.3f",
           std::isfinite(t_seconds) ? t_seconds : 0.0, std::isfinite(lag_ms) ? lag_ms : 0.0);
  line += buf;
  for (const auto& [key, value] : sample) {
    line.push_back(',');
    AppendJsonKey(&line, key);
    line.push_back(':');
    AppendNumber(&line, value);
  }
  line.push_back('}');
  return line;
}

void StatsReporter::Tick(const std::shared_ptr<State>& state, SimTime scheduled_at) {
  SimTime next;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->running) {
      return;
    }
    next = scheduled_at + state->interval;
  }
  SimTime now = state->executor->now();
  double lag_ms = now > scheduled_at ? static_cast<double>(now - scheduled_at) * 1e-6 : 0.0;
  Sample sample = state->collect ? state->collect() : Sample{};
  std::string line = MakeLine(ToSeconds(now), lag_ms, sample);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->running) {
      return;  // Stopped while collecting.
    }
    if (state->out != nullptr) {
      (*state->out) << line << '\n';
      state->out->flush();
    }
    ++state->lines;
  }
  std::weak_ptr<State> weak = state;
  state->executor->ScheduleAt(next, [weak, next] {
    if (auto s = weak.lock()) {
      Tick(s, next);
    }
  });
}

}  // namespace algorand
