// RoundTracer: structured per-node BA* event traces.
//
// The paper describes BA* as a sequence of observable per-user steps
// (propose, reduce, binary steps with an occasional coin flip, the final
// determination); formal-verification work on Algorand leans on exactly such
// per-step event sequences. The tracer records them as compact fixed-size
// events in a bounded ring buffer — a Byzantine flood or a very long run
// overwrites the oldest events instead of growing memory — and dumps JSONL
// (one event per line) for offline analysis. The JSONL schema round-trips:
// ParseTraceJsonl recovers the exact event stream, so offline tools (the
// trace_audit CLI, the CI gates) consume the same data the live observers
// see.
#ifndef ALGORAND_SRC_OBS_ROUND_TRACER_H_
#define ALGORAND_SRC_OBS_ROUND_TRACER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/time_units.h"
#include "src/obs/metrics.h"

namespace algorand {

enum class TraceKind : uint8_t {
  kRoundStart = 0,     // a = round's chain length (tip round).
  kSortition = 1,      // a = weighted votes won (0: not selected), b = role.
  kStepEnter = 2,      // step = wire step code entered.
  kStepExit = 3,       // a = weighted votes for the winning value, flag = timed out.
  kReductionDone = 4,  // value = reduction output.
  kCoinFlip = 5,       // a = coin bit.
  kBinaryDecided = 6,  // a = BinaryBA* steps used, value = decided hash.
  kRoundEnd = 7,       // flag bits: 1 final, 2 empty, 4 hung.
  kRecoveryEnter = 8,  // a = recovery attempt, round = session code.
  kCatchupStart = 9,   // a = target round, round = tip round at start.
  kCatchupBatch = 10,  // a = blocks applied, b = responding peer.
  kCatchupDone = 11,   // a = rounds gained, round = new tip round.
  kCrash = 12,         // round = chain length at crash (harness-injected).
  kRestart = 13,       // flag = restarted from snapshot (1) or fresh (0).
  // Causal block-lifecycle events (cross-node latency waterfalls).
  kProposalGossiped = 14,  // a = proposer's weighted votes, value = block hash.
  kBlockReceived = 15,     // a = origin node, b = origination time (ns),
                           // value = block hash; first valid receipt only.
};

// Role codes for kSortition events.
constexpr uint64_t kTraceRoleProposer = 0;
constexpr uint64_t kTraceRoleCommittee = 1;

// Flag bits for kRoundEnd.
constexpr uint8_t kTraceFinal = 1;
constexpr uint8_t kTraceEmpty = 2;
constexpr uint8_t kTraceHung = 4;

// Origin sentinel for kBlockReceived when the message carried no trace
// context (mirrors TraceContext::origin's unset value).
constexpr uint64_t kTraceNoOrigin = 0xffffffffull;

// Round codes with the top bit set are §8.2 recovery-session codes, not
// chain rounds (mirrors kRecoveryRoundBit in src/core/messages.h; redeclared
// here so the obs layer stays dependency-free).
constexpr uint64_t kTraceRecoverySessionBit = 1ULL << 63;

struct TraceEvent {
  SimTime at = 0;
  uint32_t node = 0;
  uint64_t round = 0;  // Chain round, or recovery session code (top bit set).
  TraceKind kind = TraceKind::kRoundStart;
  uint32_t step = 0;         // Wire step code where applicable.
  uint64_t a = 0;            // Kind-specific detail (votes, steps, coin...).
  uint64_t b = 0;
  uint64_t value_prefix = 0; // First 8 bytes (big-endian) of the relevant hash.
  uint8_t flag = 0;
};

bool operator==(const TraceEvent& x, const TraceEvent& y);

class RoundTracer {
 public:
  // Called for every recorded event, after it is stored in the ring: the
  // live consumption hook (SafetyAuditor, custom probes). Runs on the
  // recording thread; keep it cheap.
  using Observer = std::function<void(const TraceEvent&)>;

  explicit RoundTracer(size_t capacity = 1 << 16);

  void Record(const TraceEvent& event);

  // Events in recording order (oldest surviving first).
  std::vector<TraceEvent> Events() const;

  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const;                    // Total ever recorded.
  uint64_t dropped() const;                     // Overwritten by wraparound.

  // Mirrors ring health into `registry`: "trace.recorded" and
  // "trace.dropped" counters (each ring overwrite counts as one drop) plus a
  // "trace.ring_occupancy" gauge. Pass nullptr to detach.
  void AttachMetrics(MetricsRegistry* registry);

  // Registers the live observer (empty function clears it).
  void SetObserver(Observer observer);

  // One JSON object per line:
  // {"t":1.25,"node":3,"round":2,"ev":"step_exit","step":4,"votes":87,...}
  std::string ToJsonl() const;

  static const char* KindName(TraceKind kind);
  // Reverse of KindName; nullopt for unknown names.
  static std::optional<TraceKind> KindFromName(std::string_view name);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t total_ = 0;  // Next write index = total_ % ring_.size().
  Counter* recorded_counter_ = nullptr;
  Counter* dropped_counter_ = nullptr;
  Gauge* occupancy_gauge_ = nullptr;
  Observer observer_;
};

// Serializes one event exactly as a ToJsonl line (without the newline).
std::string TraceEventToJson(const TraceEvent& event);

// Parses one flat JSON object — string/number/bool values, no nesting — into
// key -> raw value token ("votes" -> "87", "ev" -> "step_exit" unquoted).
// Nullopt on malformed input. Shared by the trace parser and tests that
// validate JSON-lines output (e.g. the periodic stats reporter).
std::optional<std::map<std::string, std::string>> ParseFlatJsonObject(std::string_view line);

// Parses one ToJsonl line back into the exact event it was dumped from;
// nullopt on malformed input or unknown event names.
std::optional<TraceEvent> ParseTraceEventJson(std::string_view line);

// Parses a whole JSONL dump (blank lines skipped); nullopt if any line fails.
std::optional<std::vector<TraceEvent>> ParseTraceJsonl(std::string_view text);

}  // namespace algorand

#endif  // ALGORAND_SRC_OBS_ROUND_TRACER_H_
