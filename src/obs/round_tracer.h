// RoundTracer: structured per-node BA* event traces.
//
// The paper describes BA* as a sequence of observable per-user steps
// (propose, reduce, binary steps with an occasional coin flip, the final
// determination); formal-verification work on Algorand leans on exactly such
// per-step event sequences. The tracer records them as compact fixed-size
// events in a bounded ring buffer — a Byzantine flood or a very long run
// overwrites the oldest events instead of growing memory — and dumps JSONL
// (one event per line) for offline analysis.
#ifndef ALGORAND_SRC_OBS_ROUND_TRACER_H_
#define ALGORAND_SRC_OBS_ROUND_TRACER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/time_units.h"

namespace algorand {

enum class TraceKind : uint8_t {
  kRoundStart = 0,     // a = round's chain length (tip round).
  kSortition = 1,      // a = weighted votes won (0: not selected), b = role.
  kStepEnter = 2,      // step = wire step code entered.
  kStepExit = 3,       // a = weighted votes for the winning value, flag = timed out.
  kReductionDone = 4,  // value = reduction output.
  kCoinFlip = 5,       // a = coin bit.
  kBinaryDecided = 6,  // a = BinaryBA* steps used, value = decided hash.
  kRoundEnd = 7,       // flag bits: 1 final, 2 empty, 4 hung.
  kRecoveryEnter = 8,  // a = recovery attempt, round = session code.
  kCatchupStart = 9,   // a = target round, round = tip round at start.
  kCatchupBatch = 10,  // a = blocks applied, b = responding peer.
  kCatchupDone = 11,   // a = rounds gained, round = new tip round.
  kCrash = 12,         // round = chain length at crash (harness-injected).
  kRestart = 13,       // flag = restarted from snapshot (1) or fresh (0).
};

// Role codes for kSortition events.
constexpr uint64_t kTraceRoleProposer = 0;
constexpr uint64_t kTraceRoleCommittee = 1;

// Flag bits for kRoundEnd.
constexpr uint8_t kTraceFinal = 1;
constexpr uint8_t kTraceEmpty = 2;
constexpr uint8_t kTraceHung = 4;

struct TraceEvent {
  SimTime at = 0;
  uint32_t node = 0;
  uint64_t round = 0;  // Chain round, or recovery session code (top bit set).
  TraceKind kind = TraceKind::kRoundStart;
  uint32_t step = 0;         // Wire step code where applicable.
  uint64_t a = 0;            // Kind-specific detail (votes, steps, coin...).
  uint64_t b = 0;
  uint64_t value_prefix = 0; // First 8 bytes (big-endian) of the relevant hash.
  uint8_t flag = 0;
};

class RoundTracer {
 public:
  explicit RoundTracer(size_t capacity = 1 << 16);

  void Record(const TraceEvent& event);

  // Events in recording order (oldest surviving first).
  std::vector<TraceEvent> Events() const;

  size_t capacity() const { return ring_.size(); }
  uint64_t recorded() const;                    // Total ever recorded.
  uint64_t dropped() const;                     // Overwritten by wraparound.

  // One JSON object per line:
  // {"t":1.25,"node":3,"round":2,"ev":"step_exit","step":4,"votes":87,...}
  std::string ToJsonl() const;

  static const char* KindName(TraceKind kind);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  uint64_t total_ = 0;  // Next write index = total_ % ring_.size().
};

}  // namespace algorand

#endif  // ALGORAND_SRC_OBS_ROUND_TRACER_H_
