#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace algorand {
namespace {

// Minimal JSON string escape; metric names are dot-paths but stay safe for
// arbitrary input anyway.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Bucket bounds must be sorted and distinct before the (fixed-size) atomic
// bucket array is built; std::vector<std::atomic> cannot resize afterwards.
std::vector<double> NormalizeBounds(std::vector<double> bounds) {
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(NormalizeBounds(std::move(bounds))), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Accumulate the sum as a bit-cast double: a CAS loop keeps Observe
  // lock-free without requiring std::atomic<double>::fetch_add support.
  uint64_t old_bits = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double updated = std::bit_cast<double>(old_bits) + value;
    if (sum_bits_.compare_exchange_weak(old_bits, std::bit_cast<uint64_t>(updated),
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      double lower = i == 0 ? 0 : bounds[i - 1];
      if (i >= bounds.size()) {
        return lower;  // Overflow bucket: no upper boundary to interpolate to.
      }
      double upper = bounds[i];
      double within = target - static_cast<double>(cumulative);
      return lower + (upper - lower) * within / static_cast<double>(in_bucket);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0 : bounds.back();
}

HistogramSnapshot::Quantiles HistogramSnapshot::EstimateQuantiles() const {
  return Quantiles{Percentile(0.5), Percentile(0.9), Percentile(0.99)};
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
  for (const auto& [name, hist] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, hist);
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bounds != hist.bounds || mine.buckets.size() != hist.buckets.size()) {
      ++counters["obs.merge_conflicts"];
      continue;
    }
    for (size_t i = 0; i < mine.buckets.size(); ++i) {
      mine.buckets[i] += hist.buckets[i];
    }
    mine.count += hist.count;
    mine.sum += hist.sum;
  }
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

uint64_t MetricsSnapshot::CounterSumByPrefix(const std::string& prefix) const {
  uint64_t total = 0;
  for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    total += it->second;
  }
  return total;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    HistogramSnapshot::Quantiles q = hist.EstimateQuantiles();
    out += name + " count=" + std::to_string(hist.count) +
           " mean=" + FormatDouble(hist.Mean()) + " p50=" + FormatDouble(q.p50) +
           " p90=" + FormatDouble(q.p90) + " p99=" + FormatDouble(q.p99) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out += ",";
    first = false;
    HistogramSnapshot::Quantiles q = hist.EstimateQuantiles();
    out += "\"" + JsonEscape(name) + "\":{\"count\":" + std::to_string(hist.count) +
           ",\"sum\":" + FormatDouble(hist.sum) + ",\"mean\":" + FormatDouble(hist.Mean()) +
           ",\"p50\":" + FormatDouble(q.p50) + ",\"p90\":" + FormatDouble(q.p90) +
           ",\"p99\":" + FormatDouble(q.p99) + ",\"buckets\":[";
    for (size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i > 0) out += ",";
      std::string le = i < hist.bounds.size() ? FormatDouble(hist.bounds[i]) : "\"inf\"";
      out += "{\"le\":" + le + ",\"count\":" + std::to_string(hist.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.bounds = hist->bounds_;
    h.buckets.reserve(hist->buckets_.size());
    for (const auto& bucket : hist->buckets_) {
      h.buckets.push_back(bucket.load(std::memory_order_relaxed));
    }
    h.count = hist->count_.load(std::memory_order_relaxed);
    h.sum = std::bit_cast<double>(hist->sum_bits_.load(std::memory_order_relaxed));
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

std::vector<double> MetricsRegistry::DefaultTimeBucketsMs() {
  // 1-2-5 decades from 1 ms up, then ~15% steps through the seconds-to-a-
  // minute range where round and step latencies live (paper: tens of
  // seconds per round) so interpolated percentiles stay within a few
  // percent, then coarse beyond two minutes.
  return {1,    2,     5,     10,    20,    50,    100,   200,   350,   500,
          750,  1000,  1500,  2000,  3000,  4000,  5000,  6000,  7000,  8000,
          9000, 10000, 11500, 13000, 15000, 17500, 20000, 23000, 26000, 30000,
          35000, 40000, 45000, 52000, 60000, 75000, 90000, 120000, 180000,
          300000, 600000};
}

std::vector<double> MetricsRegistry::DefaultCountBuckets() {
  return {0, 1, 2, 3, 4, 5, 6, 8, 10, 15, 20, 30, 50, 100, 200, 500, 1000};
}

}  // namespace algorand
