// TraceCollector: joins per-node RoundTracer streams into per-round latency
// waterfalls — the cross-node view behind the paper's Figure 5 breakdown
// (time to gossip the block, BA* steps that reference the big block, BA*
// vote steps).
//
// Input is the shared trace-event stream (every event carries its node id);
// the collector groups events by chain round, joins each node's causal
// block-lifecycle markers (round start, first block receipt with the
// origination timestamp carried by the gossip trace context, reduction done,
// binary decided, round end) and reports:
//   - proposal-to-receipt latency percentiles across nodes (p50/p90/p99),
//   - the three Fig-5 phases, which partition each node's round wall time:
//       gossip    = round start -> first block receipt
//       reduction = receipt -> reduction done  (votes carry the block hash)
//       votes     = reduction done -> round end (BinaryBA* + final step)
//   - per-step durations from step_enter/step_exit pairs.
// Recovery-session events (round code top bit set) are excluded: they are
// not chain rounds.
#ifndef ALGORAND_SRC_OBS_TRACE_COLLECTOR_H_
#define ALGORAND_SRC_OBS_TRACE_COLLECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/round_tracer.h"

namespace algorand {

// One chain round's joined cross-node view.
struct RoundWaterfall {
  uint64_t round = 0;
  size_t nodes = 0;     // Nodes that completed the round (round_end seen).
  size_t receipts = 0;  // Nodes whose first valid block receipt was joined.

  // Proposal-to-receipt latency across nodes, milliseconds: how long the
  // proposer's block took to reach each node (origination timestamp from the
  // message's trace context).
  double receipt_p50_ms = 0;
  double receipt_p90_ms = 0;
  double receipt_p99_ms = 0;

  // Fig-5 phase means across completing nodes, milliseconds. For every node
  // the three phases partition its round wall time exactly.
  double gossip_ms = 0;     // Round start -> first block receipt.
  double reduction_ms = 0;  // Receipt -> reduction done (big-block steps).
  double votes_ms = 0;      // Reduction done -> round end (binary + final).
  double round_ms = 0;      // Mean round wall time (= sum of the three).

  // Mean BinaryBA* portion of the votes phase (reduction done -> binary
  // decided), for the reduction-vs-BinaryBA* split.
  double binary_ms = 0;

  // Median per-node duration of each BA* step, keyed by wire step code.
  std::map<uint32_t, double> step_p50_ms;
};

class TraceCollector {
 public:
  // Ingests events in any order (streams from several tracers may be
  // concatenated; per-node ordering is reconstructed from timestamps).
  void Ingest(const TraceEvent& event);
  void AddEvents(const std::vector<TraceEvent>& events);

  // Joined waterfalls for every chain round with at least one completing
  // node, sorted by round.
  std::vector<RoundWaterfall> Waterfalls() const;

  // Human-readable table, one row per round.
  static std::string ToText(const std::vector<RoundWaterfall>& rounds);
  // {"rounds":[{...}, ...]} with one object per round.
  static std::string ToJson(const std::vector<RoundWaterfall>& rounds);

 private:
  // Per (round, node) lifecycle markers, filled as events arrive.
  struct NodeRound {
    SimTime start_at = -1;
    SimTime first_receipt_at = -1;
    SimTime receipt_emitted_at = -1;  // Origination time from trace context.
    SimTime reduction_done_at = -1;
    SimTime binary_done_at = -1;
    SimTime end_at = -1;
    std::map<uint32_t, SimTime> step_enter_at;
    std::map<uint32_t, double> step_duration_ms;
  };

  std::map<uint64_t, std::map<uint32_t, NodeRound>> rounds_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_OBS_TRACE_COLLECTOR_H_
