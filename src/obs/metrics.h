// Node-level metrics registry: the uniform observability path behind the
// paper's evaluation numbers (§10, Figures 3-8).
//
// Every layer of the stack — gossip relay, BA* steps, the TCP transport —
// reports through named counters, gauges and fixed-bucket histograms.
// Increments are relaxed atomics so the real-socket path can share the same
// instruments with zero locking on the hot path; only instrument *creation*
// takes the registry mutex (callers resolve an instrument once and cache the
// pointer). Names are hierarchical dot-paths ("gossip.msgs_in.vote",
// "ba.step_time_ms"); snapshots are plain value maps that merge across nodes
// so a whole simulated deployment condenses into one exportable view.
#ifndef ALGORAND_SRC_OBS_METRICS_H_
#define ALGORAND_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace algorand {

// Monotone event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written level (queue depths, connection counts).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
// N buckets; one implicit overflow bucket catches the rest. Observations are
// relaxed atomic increments (no per-sample allocation, no lock).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;

  std::vector<double> bounds_;                        // Sorted, strictly increasing.
  std::vector<std::atomic<uint64_t>> buckets_;        // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};                 // Bit-cast double, CAS-accumulated.
};

// Point-in-time copy of one histogram, mergeable and queryable.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1 (last = overflow).
  uint64_t count = 0;
  double sum = 0;

  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  // Linear interpolation within the bucket containing quantile q in [0, 1].
  // The overflow bucket reports its lower bound (we cannot interpolate past
  // the last boundary).
  double Percentile(double q) const;

  // The three quantiles every report wants, in one struct: the JSON/text
  // export, the waterfall tables and the bench columns all read these
  // instead of re-deriving percentiles by hand.
  struct Quantiles {
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };
  Quantiles EstimateQuantiles() const;
};

// A value-typed view of a registry (or of many registries merged together).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Adds `other` into this snapshot: counters and gauges sum; histograms
  // with identical bounds merge bucket-wise (mismatched bounds keep the
  // existing instrument and count the conflict under "obs.merge_conflicts").
  void Merge(const MetricsSnapshot& other);

  uint64_t CounterValue(const std::string& name) const;
  // Sum of every counter whose name starts with `prefix` (e.g.
  // "gossip.msgs_out." across all message types).
  uint64_t CounterSumByPrefix(const std::string& prefix) const;

  // One "name value" line per instrument; histograms print count/mean/p50/p99.
  std::string ToText() const;
  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,buckets,...}}}
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates an instrument. Returned references stay valid for the
  // registry's lifetime; resolve once and cache.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // A histogram's bounds are fixed at first creation; later calls with a
  // different bounds argument return the existing instrument unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultTimeBucketsMs());

  MetricsSnapshot Snapshot() const;

  // Exponential-ish bucket boundaries in milliseconds, 1 ms .. 10 min,
  // sized for round/step latencies (paper: seconds to a minute per round).
  static std::vector<double> DefaultTimeBucketsMs();
  // Small linear buckets for step counts (BinaryBA* steps, committee sizes).
  static std::vector<double> DefaultCountBuckets();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_OBS_METRICS_H_
