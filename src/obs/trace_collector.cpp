#include "src/obs/trace_collector.h"

#include <algorithm>
#include <cstdio>

namespace algorand {
namespace {

constexpr double kMsPerNs = 1e-6;

double ToMs(SimTime t) { return static_cast<double>(t) * kMsPerNs; }

// Exact linear-interpolated percentile of a sample set (unlike the bucketed
// HistogramSnapshot estimate, the collector holds the raw values).
double SamplePercentile(std::vector<double>* values, double q) {
  if (values->empty()) {
    return 0;
  }
  std::sort(values->begin(), values->end());
  double pos = q * static_cast<double>(values->size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values->size() - 1);
  double frac = pos - static_cast<double>(lo);
  return (*values)[lo] + ((*values)[hi] - (*values)[lo]) * frac;
}

}  // namespace

void TraceCollector::Ingest(const TraceEvent& ev) {
  if (ev.round & kTraceRecoverySessionBit) {
    return;  // Recovery sessions are not chain rounds.
  }
  switch (ev.kind) {
    case TraceKind::kRoundStart:
    case TraceKind::kBlockReceived:
    case TraceKind::kReductionDone:
    case TraceKind::kBinaryDecided:
    case TraceKind::kRoundEnd:
    case TraceKind::kStepEnter:
    case TraceKind::kStepExit:
      break;
    default:
      return;  // Other kinds reuse `round` for tips/session codes.
  }
  NodeRound& nr = rounds_[ev.round][ev.node];
  switch (ev.kind) {
    case TraceKind::kRoundStart:
      if (nr.start_at < 0 || ev.at < nr.start_at) {
        nr.start_at = ev.at;
      }
      break;
    case TraceKind::kBlockReceived:
      if (nr.first_receipt_at < 0 || ev.at < nr.first_receipt_at) {
        nr.first_receipt_at = ev.at;
        nr.receipt_emitted_at =
            ev.a == kTraceNoOrigin ? -1 : static_cast<SimTime>(ev.b);
      }
      break;
    case TraceKind::kReductionDone:
      if (nr.reduction_done_at < 0) {
        nr.reduction_done_at = ev.at;
      }
      break;
    case TraceKind::kBinaryDecided:
      if (nr.binary_done_at < 0) {
        nr.binary_done_at = ev.at;
      }
      break;
    case TraceKind::kRoundEnd:
      if (nr.end_at < 0) {
        nr.end_at = ev.at;
      }
      break;
    case TraceKind::kStepEnter:
      nr.step_enter_at[ev.step] = ev.at;
      break;
    case TraceKind::kStepExit: {
      auto it = nr.step_enter_at.find(ev.step);
      if (it != nr.step_enter_at.end() && ev.at >= it->second) {
        nr.step_duration_ms[ev.step] = ToMs(ev.at - it->second);
      }
      break;
    }
    default:
      break;
  }
}

void TraceCollector::AddEvents(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& ev : events) {
    Ingest(ev);
  }
}

std::vector<RoundWaterfall> TraceCollector::Waterfalls() const {
  std::vector<RoundWaterfall> out;
  for (const auto& [round, nodes] : rounds_) {
    RoundWaterfall wf;
    wf.round = round;
    std::vector<double> receipt_ms;
    std::map<uint32_t, std::vector<double>> step_ms;
    double gossip_sum = 0;
    double reduction_sum = 0;
    double votes_sum = 0;
    double binary_sum = 0;
    size_t phase_nodes = 0;
    size_t binary_nodes = 0;
    for (const auto& [node, nr] : nodes) {
      (void)node;
      if (nr.end_at >= 0) {
        ++wf.nodes;
      }
      if (nr.first_receipt_at >= 0 && nr.receipt_emitted_at >= 0 &&
          nr.first_receipt_at >= nr.receipt_emitted_at) {
        ++wf.receipts;
        receipt_ms.push_back(ToMs(nr.first_receipt_at - nr.receipt_emitted_at));
      }
      for (const auto& [step, ms] : nr.step_duration_ms) {
        step_ms[step].push_back(ms);
      }
      // Phase partition needs the full lifecycle in causal order; nodes that
      // decided an empty round without ever receiving a block (or whose ring
      // lost a marker) are excluded from the phase means.
      if (nr.start_at < 0 || nr.end_at < nr.start_at || nr.first_receipt_at < nr.start_at ||
          nr.first_receipt_at < 0 || nr.reduction_done_at < nr.first_receipt_at ||
          nr.end_at < nr.reduction_done_at) {
        continue;
      }
      ++phase_nodes;
      gossip_sum += ToMs(nr.first_receipt_at - nr.start_at);
      reduction_sum += ToMs(nr.reduction_done_at - nr.first_receipt_at);
      votes_sum += ToMs(nr.end_at - nr.reduction_done_at);
      if (nr.binary_done_at >= nr.reduction_done_at) {
        ++binary_nodes;
        binary_sum += ToMs(nr.binary_done_at - nr.reduction_done_at);
      }
    }
    if (wf.nodes == 0) {
      continue;
    }
    if (!receipt_ms.empty()) {
      wf.receipt_p50_ms = SamplePercentile(&receipt_ms, 0.5);
      wf.receipt_p90_ms = SamplePercentile(&receipt_ms, 0.9);
      wf.receipt_p99_ms = SamplePercentile(&receipt_ms, 0.99);
    }
    if (phase_nodes > 0) {
      double n = static_cast<double>(phase_nodes);
      wf.gossip_ms = gossip_sum / n;
      wf.reduction_ms = reduction_sum / n;
      wf.votes_ms = votes_sum / n;
      wf.round_ms = (gossip_sum + reduction_sum + votes_sum) / n;
    }
    if (binary_nodes > 0) {
      wf.binary_ms = binary_sum / static_cast<double>(binary_nodes);
    }
    for (auto& [step, values] : step_ms) {
      wf.step_p50_ms[step] = SamplePercentile(&values, 0.5);
    }
    out.push_back(std::move(wf));
  }
  return out;
}

std::string TraceCollector::ToText(const std::vector<RoundWaterfall>& rounds) {
  std::string out;
  char buf[256];
  int n = snprintf(buf, sizeof(buf), "%-7s %-6s %-9s %-9s %-9s %-11s %-12s %-10s %-10s\n",
                   "round", "nodes", "rcpt_p50", "rcpt_p90", "rcpt_p99", "gossip_ms",
                   "reduce_ms", "votes_ms", "round_ms");
  out.append(buf, static_cast<size_t>(n));
  for (const RoundWaterfall& wf : rounds) {
    n = snprintf(buf, sizeof(buf),
                 "%-7llu %-6zu %-9.1f %-9.1f %-9.1f %-11.1f %-12.1f %-10.1f %-10.1f\n",
                 static_cast<unsigned long long>(wf.round), wf.nodes, wf.receipt_p50_ms,
                 wf.receipt_p90_ms, wf.receipt_p99_ms, wf.gossip_ms, wf.reduction_ms,
                 wf.votes_ms, wf.round_ms);
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

std::string TraceCollector::ToJson(const std::vector<RoundWaterfall>& rounds) {
  std::string out = "{\"rounds\":[";
  char buf[512];
  bool first_round = true;
  for (const RoundWaterfall& wf : rounds) {
    if (!first_round) {
      out += ",";
    }
    first_round = false;
    int n = snprintf(
        buf, sizeof(buf),
        "{\"round\":%llu,\"nodes\":%zu,\"receipts\":%zu,"
        "\"receipt_p50_ms\":%.3f,\"receipt_p90_ms\":%.3f,\"receipt_p99_ms\":%.3f,"
        "\"gossip_ms\":%.3f,\"reduction_ms\":%.3f,\"votes_ms\":%.3f,"
        "\"binary_ms\":%.3f,\"round_ms\":%.3f,\"step_p50_ms\":{",
        static_cast<unsigned long long>(wf.round), wf.nodes, wf.receipts, wf.receipt_p50_ms,
        wf.receipt_p90_ms, wf.receipt_p99_ms, wf.gossip_ms, wf.reduction_ms, wf.votes_ms,
        wf.binary_ms, wf.round_ms);
    out.append(buf, static_cast<size_t>(n));
    bool first_step = true;
    for (const auto& [step, ms] : wf.step_p50_ms) {
      n = snprintf(buf, sizeof(buf), "%s\"%u\":%.3f", first_step ? "" : ",", step, ms);
      out.append(buf, static_cast<size_t>(n));
      first_step = false;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace algorand
