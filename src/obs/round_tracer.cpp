#include "src/obs/round_tracer.h"

#include <cstdio>

namespace algorand {

RoundTracer::RoundTracer(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void RoundTracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[static_cast<size_t>(total_ % ring_.size())] = event;
  ++total_;
}

uint64_t RoundTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t RoundTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<TraceEvent> RoundTracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  uint64_t kept = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(static_cast<size_t>(kept));
  uint64_t start = total_ - kept;
  for (uint64_t i = start; i < total_; ++i) {
    out.push_back(ring_[static_cast<size_t>(i % ring_.size())]);
  }
  return out;
}

const char* RoundTracer::KindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRoundStart: return "round_start";
    case TraceKind::kSortition: return "sortition";
    case TraceKind::kStepEnter: return "step_enter";
    case TraceKind::kStepExit: return "step_exit";
    case TraceKind::kReductionDone: return "reduction_done";
    case TraceKind::kCoinFlip: return "coin_flip";
    case TraceKind::kBinaryDecided: return "binary_decided";
    case TraceKind::kRoundEnd: return "round_end";
    case TraceKind::kRecoveryEnter: return "recovery_enter";
    case TraceKind::kCatchupStart: return "catchup_start";
    case TraceKind::kCatchupBatch: return "catchup_batch";
    case TraceKind::kCatchupDone: return "catchup_done";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRestart: return "restart";
  }
  return "unknown";
}

std::string RoundTracer::ToJsonl() const {
  std::string out;
  char buf[256];
  for (const TraceEvent& ev : Events()) {
    int n = snprintf(buf, sizeof(buf),
                     "{\"t\":%.6f,\"node\":%u,\"round\":%llu,\"ev\":\"%s\"",
                     ToSeconds(ev.at), ev.node, static_cast<unsigned long long>(ev.round),
                     KindName(ev.kind));
    out.append(buf, static_cast<size_t>(n));
    if (ev.step != 0) {
      n = snprintf(buf, sizeof(buf), ",\"step\":%u", ev.step);
      out.append(buf, static_cast<size_t>(n));
    }
    switch (ev.kind) {
      case TraceKind::kSortition:
        n = snprintf(buf, sizeof(buf), ",\"votes\":%llu,\"role\":\"%s\"",
                     static_cast<unsigned long long>(ev.a),
                     ev.b == kTraceRoleProposer ? "proposer" : "committee");
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kStepExit:
        n = snprintf(buf, sizeof(buf), ",\"votes\":%llu,\"timed_out\":%s",
                     static_cast<unsigned long long>(ev.a), ev.flag ? "true" : "false");
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kCoinFlip:
        n = snprintf(buf, sizeof(buf), ",\"coin\":%llu", static_cast<unsigned long long>(ev.a));
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kBinaryDecided:
        n = snprintf(buf, sizeof(buf), ",\"binary_steps\":%llu",
                     static_cast<unsigned long long>(ev.a));
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kRoundEnd:
        n = snprintf(buf, sizeof(buf), ",\"final\":%s,\"empty\":%s,\"hung\":%s",
                     (ev.flag & kTraceFinal) ? "true" : "false",
                     (ev.flag & kTraceEmpty) ? "true" : "false",
                     (ev.flag & kTraceHung) ? "true" : "false");
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kRecoveryEnter:
        n = snprintf(buf, sizeof(buf), ",\"attempt\":%llu",
                     static_cast<unsigned long long>(ev.a));
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kCatchupStart:
        n = snprintf(buf, sizeof(buf), ",\"target\":%llu",
                     static_cast<unsigned long long>(ev.a));
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kCatchupBatch:
        n = snprintf(buf, sizeof(buf), ",\"applied\":%llu,\"peer\":%llu",
                     static_cast<unsigned long long>(ev.a),
                     static_cast<unsigned long long>(ev.b));
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kCatchupDone:
        n = snprintf(buf, sizeof(buf), ",\"gained\":%llu",
                     static_cast<unsigned long long>(ev.a));
        out.append(buf, static_cast<size_t>(n));
        break;
      case TraceKind::kRestart:
        n = snprintf(buf, sizeof(buf), ",\"from_snapshot\":%s", ev.flag ? "true" : "false");
        out.append(buf, static_cast<size_t>(n));
        break;
      default:
        break;
    }
    if (ev.value_prefix != 0) {
      n = snprintf(buf, sizeof(buf), ",\"value\":\"%016llx\"",
                   static_cast<unsigned long long>(ev.value_prefix));
      out.append(buf, static_cast<size_t>(n));
    }
    out += "}\n";
  }
  return out;
}

}  // namespace algorand
