#include "src/obs/round_tracer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace algorand {
namespace {

// Nanosecond-resolution seconds: nine decimals, so ParseTraceEventJson
// recovers the exact SimTime (runs shorter than ~104 days stay below the
// double mantissa limit).
void AppendTime(std::string* out, const char* key, SimTime t) {
  char buf[64];
  int n = snprintf(buf, sizeof(buf), ",\"%s\":%.9f", key, ToSeconds(t));
  out->append(buf, static_cast<size_t>(n));
}

SimTime SecondsToSimTime(double s) { return static_cast<SimTime>(std::llround(s * 1e9)); }

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = strtoull(token.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseHex64(const std::string& token, uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = strtoull(token.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// Missing keys default to their zero value; present keys must parse.
bool FieldU64(const std::map<std::string, std::string>& kv, const char* key, uint64_t* out) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    *out = 0;
    return true;
  }
  return ParseU64(it->second, out);
}

bool FieldBool(const std::map<std::string, std::string>& kv, const char* key, bool* out) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    *out = false;
    return true;
  }
  if (it->second == "true") {
    *out = true;
    return true;
  }
  if (it->second == "false") {
    *out = false;
    return true;
  }
  return false;
}

bool FieldTime(const std::map<std::string, std::string>& kv, const char* key, SimTime* out) {
  auto it = kv.find(key);
  if (it == kv.end()) {
    *out = 0;
    return true;
  }
  double seconds = 0;
  if (!ParseDouble(it->second, &seconds)) {
    return false;
  }
  *out = SecondsToSimTime(seconds);
  return true;
}

}  // namespace

bool operator==(const TraceEvent& x, const TraceEvent& y) {
  return x.at == y.at && x.node == y.node && x.round == y.round && x.kind == y.kind &&
         x.step == y.step && x.a == y.a && x.b == y.b && x.value_prefix == y.value_prefix &&
         x.flag == y.flag;
}

RoundTracer::RoundTracer(size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void RoundTracer::Record(const TraceEvent& event) {
  Observer observer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool overwrote = total_ >= ring_.size();
    ring_[static_cast<size_t>(total_ % ring_.size())] = event;
    ++total_;
    if (recorded_counter_ != nullptr) {
      recorded_counter_->Increment();
    }
    if (overwrote && dropped_counter_ != nullptr) {
      dropped_counter_->Increment();
    }
    if (occupancy_gauge_ != nullptr) {
      occupancy_gauge_->Set(
          static_cast<int64_t>(total_ < ring_.size() ? total_ : ring_.size()));
    }
    observer = observer_;
  }
  // Outside the ring lock: the observer (e.g. SafetyAuditor) may take its own
  // locks or record follow-up metrics.
  if (observer) {
    observer(event);
  }
}

uint64_t RoundTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t RoundTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

void RoundTracer::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    recorded_counter_ = nullptr;
    dropped_counter_ = nullptr;
    occupancy_gauge_ = nullptr;
    return;
  }
  recorded_counter_ = &registry->GetCounter("trace.recorded");
  dropped_counter_ = &registry->GetCounter("trace.dropped");
  occupancy_gauge_ = &registry->GetGauge("trace.ring_occupancy");
}

void RoundTracer::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

std::vector<TraceEvent> RoundTracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  uint64_t kept = total_ < ring_.size() ? total_ : ring_.size();
  out.reserve(static_cast<size_t>(kept));
  uint64_t start = total_ - kept;
  for (uint64_t i = start; i < total_; ++i) {
    out.push_back(ring_[static_cast<size_t>(i % ring_.size())]);
  }
  return out;
}

const char* RoundTracer::KindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRoundStart: return "round_start";
    case TraceKind::kSortition: return "sortition";
    case TraceKind::kStepEnter: return "step_enter";
    case TraceKind::kStepExit: return "step_exit";
    case TraceKind::kReductionDone: return "reduction_done";
    case TraceKind::kCoinFlip: return "coin_flip";
    case TraceKind::kBinaryDecided: return "binary_decided";
    case TraceKind::kRoundEnd: return "round_end";
    case TraceKind::kRecoveryEnter: return "recovery_enter";
    case TraceKind::kCatchupStart: return "catchup_start";
    case TraceKind::kCatchupBatch: return "catchup_batch";
    case TraceKind::kCatchupDone: return "catchup_done";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRestart: return "restart";
    case TraceKind::kProposalGossiped: return "proposal_gossiped";
    case TraceKind::kBlockReceived: return "block_received";
  }
  return "unknown";
}

std::optional<TraceKind> RoundTracer::KindFromName(std::string_view name) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(TraceKind::kBlockReceived); ++k) {
    auto kind = static_cast<TraceKind>(k);
    if (name == KindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string TraceEventToJson(const TraceEvent& ev) {
  std::string out;
  char buf[256];
  int n = snprintf(buf, sizeof(buf), "{\"t\":%.9f,\"node\":%u,\"round\":%llu,\"ev\":\"%s\"",
                   ToSeconds(ev.at), ev.node, static_cast<unsigned long long>(ev.round),
                   RoundTracer::KindName(ev.kind));
  out.append(buf, static_cast<size_t>(n));
  if (ev.step != 0) {
    n = snprintf(buf, sizeof(buf), ",\"step\":%u", ev.step);
    out.append(buf, static_cast<size_t>(n));
  }
  switch (ev.kind) {
    case TraceKind::kRoundStart:
      n = snprintf(buf, sizeof(buf), ",\"chain\":%llu", static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kSortition:
      n = snprintf(buf, sizeof(buf), ",\"votes\":%llu,\"role\":\"%s\"",
                   static_cast<unsigned long long>(ev.a),
                   ev.b == kTraceRoleProposer ? "proposer" : "committee");
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kStepExit:
      n = snprintf(buf, sizeof(buf), ",\"votes\":%llu,\"timed_out\":%s",
                   static_cast<unsigned long long>(ev.a), ev.flag ? "true" : "false");
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kCoinFlip:
      n = snprintf(buf, sizeof(buf), ",\"coin\":%llu", static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kBinaryDecided:
      n = snprintf(buf, sizeof(buf), ",\"binary_steps\":%llu",
                   static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kRoundEnd:
      n = snprintf(buf, sizeof(buf), ",\"final\":%s,\"empty\":%s,\"hung\":%s",
                   (ev.flag & kTraceFinal) ? "true" : "false",
                   (ev.flag & kTraceEmpty) ? "true" : "false",
                   (ev.flag & kTraceHung) ? "true" : "false");
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kRecoveryEnter:
      n = snprintf(buf, sizeof(buf), ",\"attempt\":%llu",
                   static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kCatchupStart:
      n = snprintf(buf, sizeof(buf), ",\"target\":%llu",
                   static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kCatchupBatch:
      n = snprintf(buf, sizeof(buf), ",\"applied\":%llu,\"peer\":%llu",
                   static_cast<unsigned long long>(ev.a),
                   static_cast<unsigned long long>(ev.b));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kCatchupDone:
      n = snprintf(buf, sizeof(buf), ",\"gained\":%llu",
                   static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kRestart:
      n = snprintf(buf, sizeof(buf), ",\"from_snapshot\":%s", ev.flag ? "true" : "false");
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kProposalGossiped:
      n = snprintf(buf, sizeof(buf), ",\"votes\":%llu", static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      break;
    case TraceKind::kBlockReceived:
      n = snprintf(buf, sizeof(buf), ",\"origin\":%llu", static_cast<unsigned long long>(ev.a));
      out.append(buf, static_cast<size_t>(n));
      AppendTime(&out, "emitted", static_cast<SimTime>(ev.b));
      break;
    default:
      break;
  }
  if (ev.value_prefix != 0) {
    n = snprintf(buf, sizeof(buf), ",\"value\":\"%016llx\"",
                 static_cast<unsigned long long>(ev.value_prefix));
    out.append(buf, static_cast<size_t>(n));
  }
  out += "}";
  return out;
}

std::string RoundTracer::ToJsonl() const {
  std::string out;
  for (const TraceEvent& ev : Events()) {
    out += TraceEventToJson(ev);
    out += "\n";
  }
  return out;
}

std::optional<std::map<std::string, std::string>> ParseFlatJsonObject(std::string_view line) {
  std::map<std::string, std::string> kv;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') {
    return std::nullopt;
  }
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws();
      if (i >= line.size() || line[i] != '"') {
        return std::nullopt;
      }
      ++i;
      size_t key_start = i;
      while (i < line.size() && line[i] != '"') {
        ++i;
      }
      if (i >= line.size()) {
        return std::nullopt;
      }
      std::string key(line.substr(key_start, i - key_start));
      ++i;
      skip_ws();
      if (i >= line.size() || line[i] != ':') {
        return std::nullopt;
      }
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        ++i;
        size_t val_start = i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;  // Keep escapes raw; trace values never need them.
          }
          ++i;
        }
        if (i >= line.size()) {
          return std::nullopt;
        }
        value = std::string(line.substr(val_start, i - val_start));
        ++i;
      } else {
        size_t val_start = i;
        while (i < line.size() && line[i] != ',' && line[i] != '}') {
          ++i;
        }
        if (i >= line.size()) {
          return std::nullopt;
        }
        size_t val_end = i;
        while (val_end > val_start &&
               (line[val_end - 1] == ' ' || line[val_end - 1] == '\t')) {
          --val_end;
        }
        if (val_end == val_start) {
          return std::nullopt;
        }
        value = std::string(line.substr(val_start, val_end - val_start));
      }
      if (!kv.emplace(std::move(key), std::move(value)).second) {
        return std::nullopt;  // Duplicate key.
      }
      skip_ws();
      if (i >= line.size()) {
        return std::nullopt;
      }
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      return std::nullopt;
    }
  }
  skip_ws();
  if (i != line.size()) {
    return std::nullopt;
  }
  return kv;
}

std::optional<TraceEvent> ParseTraceEventJson(std::string_view line) {
  auto parsed = ParseFlatJsonObject(line);
  if (!parsed) {
    return std::nullopt;
  }
  const auto& kv = *parsed;
  auto ev_it = kv.find("ev");
  if (ev_it == kv.end()) {
    return std::nullopt;
  }
  auto kind = RoundTracer::KindFromName(ev_it->second);
  if (!kind) {
    return std::nullopt;
  }
  TraceEvent ev;
  ev.kind = *kind;
  uint64_t u = 0;
  if (!FieldTime(kv, "t", &ev.at) || !FieldU64(kv, "node", &u)) {
    return std::nullopt;
  }
  ev.node = static_cast<uint32_t>(u);
  if (!FieldU64(kv, "round", &ev.round) || !FieldU64(kv, "step", &u)) {
    return std::nullopt;
  }
  ev.step = static_cast<uint32_t>(u);
  if (auto it = kv.find("value"); it != kv.end()) {
    if (!ParseHex64(it->second, &ev.value_prefix)) {
      return std::nullopt;
    }
  }
  bool flag = false;
  switch (ev.kind) {
    case TraceKind::kRoundStart:
      if (!FieldU64(kv, "chain", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kSortition: {
      if (!FieldU64(kv, "votes", &ev.a)) return std::nullopt;
      auto it = kv.find("role");
      ev.b = (it != kv.end() && it->second == "committee") ? kTraceRoleCommittee
                                                           : kTraceRoleProposer;
      break;
    }
    case TraceKind::kStepExit:
      if (!FieldU64(kv, "votes", &ev.a) || !FieldBool(kv, "timed_out", &flag)) {
        return std::nullopt;
      }
      ev.flag = flag ? 1 : 0;
      break;
    case TraceKind::kCoinFlip:
      if (!FieldU64(kv, "coin", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kBinaryDecided:
      if (!FieldU64(kv, "binary_steps", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kRoundEnd: {
      bool final_flag = false;
      bool empty_flag = false;
      bool hung_flag = false;
      if (!FieldBool(kv, "final", &final_flag) || !FieldBool(kv, "empty", &empty_flag) ||
          !FieldBool(kv, "hung", &hung_flag)) {
        return std::nullopt;
      }
      ev.flag = static_cast<uint8_t>((final_flag ? kTraceFinal : 0) |
                                     (empty_flag ? kTraceEmpty : 0) |
                                     (hung_flag ? kTraceHung : 0));
      break;
    }
    case TraceKind::kRecoveryEnter:
      if (!FieldU64(kv, "attempt", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kCatchupStart:
      if (!FieldU64(kv, "target", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kCatchupBatch:
      if (!FieldU64(kv, "applied", &ev.a) || !FieldU64(kv, "peer", &ev.b)) {
        return std::nullopt;
      }
      break;
    case TraceKind::kCatchupDone:
      if (!FieldU64(kv, "gained", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kRestart:
      if (!FieldBool(kv, "from_snapshot", &flag)) return std::nullopt;
      ev.flag = flag ? 1 : 0;
      break;
    case TraceKind::kProposalGossiped:
      if (!FieldU64(kv, "votes", &ev.a)) return std::nullopt;
      break;
    case TraceKind::kBlockReceived: {
      if (!FieldU64(kv, "origin", &ev.a)) return std::nullopt;
      SimTime emitted = 0;
      if (!FieldTime(kv, "emitted", &emitted)) return std::nullopt;
      ev.b = static_cast<uint64_t>(emitted);
      break;
    }
    case TraceKind::kStepEnter:
    case TraceKind::kReductionDone:
    case TraceKind::kCrash:
      break;
  }
  return ev;
}

std::optional<std::vector<TraceEvent>> ParseTraceJsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) {
      continue;
    }
    auto ev = ParseTraceEventJson(line);
    if (!ev) {
      return std::nullopt;
    }
    events.push_back(*ev);
  }
  return events;
}

}  // namespace algorand
