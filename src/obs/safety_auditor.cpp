#include "src/obs/safety_auditor.h"

#include <cstdio>

namespace algorand {
namespace {

std::string Hex16(uint64_t v) {
  char buf[20];
  snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

SafetyAuditor::SafetyAuditor(SafetyAuditorConfig config) : config_(config) {}

void SafetyAuditor::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    events_counter_ = nullptr;
    violations_counter_ = nullptr;
    equivocations_counter_ = nullptr;
    return;
  }
  events_counter_ = &registry->GetCounter("audit.events");
  violations_counter_ = &registry->GetCounter("audit.violations");
  equivocations_counter_ = &registry->GetCounter("audit.equivocations");
}

void SafetyAuditor::AddViolation(std::string message) {
  ++violation_count_;
  if (violations_counter_ != nullptr) {
    violations_counter_->Increment();
  }
  if (violations_.size() < config_.max_violations) {
    violations_.push_back(std::move(message));
  }
}

void SafetyAuditor::Observe(const TraceEvent& ev) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_counter_ != nullptr) {
    events_counter_->Increment();
  }
  const bool chain_round = (ev.round & kTraceRecoverySessionBit) == 0;
  switch (ev.kind) {
    case TraceKind::kRoundStart:
      if (chain_round) {
        round_started_.insert({ev.node, ev.round});
      }
      break;

    case TraceKind::kStepExit: {
      if (!chain_round || ev.flag != 0) {
        break;  // Recovery committees have their own weights; timeouts are fine.
      }
      const bool final_step = ev.step == config_.final_step_code;
      const double threshold =
          final_step ? config_.final_threshold : config_.step_threshold;
      if (threshold > 0 && static_cast<double>(ev.a) <= threshold) {
        AddViolation("node " + std::to_string(ev.node) + " round " + std::to_string(ev.round) +
                     " step " + std::to_string(ev.step) + ": winner declared with " +
                     std::to_string(ev.a) + " weighted votes, threshold " +
                     std::to_string(threshold));
      }
      if (final_step) {
        final_exit_value_[{ev.node, ev.round}] = ev.value_prefix;
        // Invariant 5: two real final-step quorums in one round must agree.
        // Restarted nodes may re-run a round from stale state; skip them.
        if (ev.value_prefix != 0 && restarted_nodes_.count(ev.node) == 0) {
          auto [win, inserted] =
              final_step_winner_.emplace(ev.round, FinalRecord{ev.value_prefix, ev.node});
          if (!inserted && win->second.value != ev.value_prefix) {
            AddViolation("round " + std::to_string(ev.round) +
                         ": final-step quorums on two values — node " +
                         std::to_string(win->second.node) + " has " + Hex16(win->second.value) +
                         ", node " + std::to_string(ev.node) + " has " + Hex16(ev.value_prefix));
          }
        }
      }
      break;
    }

    case TraceKind::kRoundEnd: {
      if (!chain_round || (ev.flag & kTraceHung) != 0) {
        break;
      }
      const bool is_final = (ev.flag & kTraceFinal) != 0;
      // Invariant 1: cluster-wide agreement on FINAL values.
      if (is_final && ev.value_prefix != 0) {
        auto [it, inserted] =
            final_by_round_.emplace(ev.round, FinalRecord{ev.value_prefix, ev.node});
        if (!inserted && it->second.value != ev.value_prefix) {
          AddViolation("round " + std::to_string(ev.round) + ": two FINAL blocks — node " +
                       std::to_string(it->second.node) + " has " + Hex16(it->second.value) +
                       ", node " + std::to_string(ev.node) + " has " + Hex16(ev.value_prefix));
        }
      }
      // Invariant 2: FINAL requires this node's own non-timed-out final-step
      // quorum, on the same value. The missing-quorum arm is only checked
      // when the stream covers the node's whole round; a recorded quorum on
      // the wrong value is a violation regardless of stream coverage.
      if (is_final && config_.final_threshold > 0) {
        auto fit = final_exit_value_.find({ev.node, ev.round});
        if (fit == final_exit_value_.end()) {
          if (round_started_.count({ev.node, ev.round}) != 0) {
            AddViolation("node " + std::to_string(ev.node) + " round " +
                         std::to_string(ev.round) +
                         ": FINAL consensus without a final-step quorum");
          }
        } else if (fit->second != 0 && ev.value_prefix != 0 &&
                   fit->second != ev.value_prefix) {
          AddViolation("node " + std::to_string(ev.node) + " round " + std::to_string(ev.round) +
                       ": FINAL value " + Hex16(ev.value_prefix) +
                       " differs from final-step quorum value " + Hex16(fit->second));
        }
      }
      // Invariant 3: tentative -> final upgrades are monotone per node.
      auto key = std::make_pair(ev.node, ev.round);
      auto it = outcome_by_node_round_.find(key);
      if (it != outcome_by_node_round_.end() && it->second.final) {
        if (!is_final || (ev.value_prefix != 0 && it->second.value != 0 &&
                          it->second.value != ev.value_prefix)) {
          AddViolation("node " + std::to_string(ev.node) + " round " + std::to_string(ev.round) +
                       ": FINAL outcome " + Hex16(it->second.value) + " regressed to " +
                       (is_final ? Hex16(ev.value_prefix) : std::string("tentative")));
        }
      }
      outcome_by_node_round_[key] = Outcome{ev.value_prefix, is_final};
      break;
    }

    case TraceKind::kCatchupStart:
      catchup_start_tip_[ev.node] = ev.round;  // round = tip at session start.
      break;

    case TraceKind::kCatchupDone: {
      auto it = catchup_start_tip_.find(ev.node);
      if (it != catchup_start_tip_.end()) {
        if (ev.round < it->second) {
          AddViolation("node " + std::to_string(ev.node) + ": catch-up regressed tip " +
                       std::to_string(it->second) + " -> " + std::to_string(ev.round));
        }
        catchup_start_tip_.erase(it);
      }
      break;
    }

    case TraceKind::kCrash:
    case TraceKind::kRestart: {
      // Forgive the node its history: a rejoining node may rebuild different
      // blocks for rounds it proposed before, and replays stale rounds whose
      // outcomes must not be compared against its pre-crash life.
      restarted_nodes_.insert(ev.node);
      catchup_start_tip_.erase(ev.node);
      for (auto it = proposal_by_round_origin_.begin();
           it != proposal_by_round_origin_.end();) {
        it = it->first.second == ev.node ? proposal_by_round_origin_.erase(it) : std::next(it);
      }
      for (auto it = outcome_by_node_round_.begin(); it != outcome_by_node_round_.end();) {
        it = it->first.first == ev.node ? outcome_by_node_round_.erase(it) : std::next(it);
      }
      for (auto it = final_exit_value_.begin(); it != final_exit_value_.end();) {
        it = it->first.first == ev.node ? final_exit_value_.erase(it) : std::next(it);
      }
      for (auto it = round_started_.begin(); it != round_started_.end();) {
        it = it->first == ev.node ? round_started_.erase(it) : std::next(it);
      }
      break;
    }

    case TraceKind::kProposalGossiped:
    case TraceKind::kBlockReceived: {
      if (!chain_round || ev.value_prefix == 0) {
        break;
      }
      const uint64_t origin =
          ev.kind == TraceKind::kProposalGossiped ? ev.node : ev.a;
      if (origin == kTraceNoOrigin || restarted_nodes_.count(origin) != 0) {
        break;
      }
      // A rejoined node replays stale rounds; blocks re-gossiped to it come
      // from stored copies whose trace context was re-stamped by the relayer,
      // so its receipts cannot witness proposer equivocation.
      if (ev.kind == TraceKind::kBlockReceived && restarted_nodes_.count(ev.node) != 0) {
        break;
      }
      auto key = std::make_pair(ev.round, origin);
      auto [it, inserted] = proposal_by_round_origin_.emplace(key, ev.value_prefix);
      if (!inserted && it->second != ev.value_prefix &&
          flagged_equivocations_.insert(key).second) {
        ++equivocation_count_;
        if (equivocations_counter_ != nullptr) {
          equivocations_counter_->Increment();
        }
      }
      break;
    }

    default:
      break;
  }
}

void SafetyAuditor::AddEvents(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& ev : events) {
    Observe(ev);
  }
}

std::vector<std::string> SafetyAuditor::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

uint64_t SafetyAuditor::violation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violation_count_;
}

uint64_t SafetyAuditor::equivocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return equivocation_count_;
}

std::string SafetyAuditor::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "safety audit: " + std::to_string(violation_count_) + " violation(s), " +
                    std::to_string(equivocation_count_) + " equivocation(s) flagged\n";
  for (const std::string& v : violations_) {
    out += "  VIOLATION: " + v + "\n";
  }
  if (violation_count_ > violations_.size()) {
    out += "  (+" + std::to_string(violation_count_ - violations_.size()) + " more)\n";
  }
  return out;
}

}  // namespace algorand
