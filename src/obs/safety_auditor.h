// SafetyAuditor: online cross-node assertion of BA* safety over the shared
// trace-event stream.
//
// The paper's safety goal (§3, §5.1) — with overwhelming probability no two
// honest users ever accept different final blocks for the same round — is a
// cross-node property, so no single node can check it. The auditor watches
// the same event stream the tracer records (live via RoundTracer's observer
// hook, or offline from a parsed JSONL dump) and asserts:
//   1. Agreement: no two FINAL round_end events in one round carry distinct
//      block hashes.
//   2. Certified quorum: a step_exit that declares a winner without timing
//      out must report more than the configured T*tau weighted votes
//      (final-step threshold for the final step, step threshold otherwise),
//      and a FINAL round_end must be preceded by that node's non-timed-out
//      final-step exit — on the same value the round_end reports.
//   5. Final-step agreement: no two nodes may exit the final step of one
//      round (non-timed-out, i.e. with real quorums) holding different
//      values — the vote-level precursor of invariant 1. Nodes that crashed
//      or restarted are exempt (they may re-run rounds from stale state).
//   3. Monotone finality: once a node reports a FINAL block for a round, a
//      later round_end for the same (node, round) may not change the value
//      or demote it to tentative.
//   4. Catch-up monotonicity: a catchup_done tip is never behind the tip the
//      session started from.
// Violations are sticky (strings + an "audit.violations" counter): any one
// means consensus or the implementation is broken, and tests hard-fail.
//
// Separately, the auditor *flags* proposer equivocation (§10.4): two
// distinct block hashes observed anywhere in the cluster for one (round,
// proposer). That is an attack indicator, not a safety violation — BA* is
// designed to survive it — so it lands in its own "audit.equivocations"
// counter. Nodes that crash or restart are forgiven their proposals: an
// honest node rejoining mid-round may legitimately rebuild a different
// block for a round it already proposed for.
#ifndef ALGORAND_SRC_OBS_SAFETY_AUDITOR_H_
#define ALGORAND_SRC_OBS_SAFETY_AUDITOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/round_tracer.h"

namespace algorand {

struct SafetyAuditorConfig {
  // Weighted-vote thresholds actually compared against step_exit counts
  // (ProtocolParams::StepThreshold()/FinalThreshold()). 0 disables the
  // quorum checks (offline audits of dumps with unknown parameters).
  double step_threshold = 0;
  double final_threshold = 0;
  // Wire step code of the final step (kStepFinal in src/core/messages.h).
  uint32_t final_step_code = 0xffffffff;
  // Cap on retained violation strings (the counters keep exact totals).
  size_t max_violations = 64;
};

class SafetyAuditor {
 public:
  explicit SafetyAuditor(SafetyAuditorConfig config = {});

  // Routes totals through `registry`: "audit.events", "audit.violations",
  // "audit.equivocations". Call before events flow.
  void AttachMetrics(MetricsRegistry* registry);

  // Live entry point; hand this to RoundTracer::SetObserver via
  //   tracer.SetObserver([&a](const TraceEvent& ev) { a.Observe(ev); });
  // Thread-safe.
  void Observe(const TraceEvent& event);
  void AddEvents(const std::vector<TraceEvent>& events);

  // Safety violations seen so far (capped at config.max_violations strings).
  std::vector<std::string> violations() const;
  uint64_t violation_count() const;
  bool ok() const { return violation_count() == 0; }

  // Distinct (round, proposer) equivocations flagged so far.
  uint64_t equivocations() const;

  // Multi-line human-readable summary.
  std::string Report() const;

 private:
  void AddViolation(std::string message);

  SafetyAuditorConfig config_;
  mutable std::mutex mu_;

  // Invariant 1: first FINAL value per round (+ reporting node).
  struct FinalRecord {
    uint64_t value = 0;
    uint32_t node = 0;
  };
  std::map<uint64_t, FinalRecord> final_by_round_;

  // Invariant 2: per (node, round), the value prefix of the node's
  // non-timed-out final-step exit (prerequisite of a FINAL round_end, which
  // must report the same value), and whether the stream contains the node's
  // round_start (without it the round is only partially covered — e.g. a
  // trimmed dump — and the check would false-positive).
  std::map<std::pair<uint32_t, uint64_t>, uint64_t> final_exit_value_;
  std::set<std::pair<uint32_t, uint64_t>> round_started_;

  // Invariant 5: first non-timed-out final-step exit value per round.
  std::map<uint64_t, FinalRecord> final_step_winner_;

  // Invariant 3: per (node, round), the reported outcome.
  struct Outcome {
    uint64_t value = 0;
    bool final = false;
  };
  std::map<std::pair<uint32_t, uint64_t>, Outcome> outcome_by_node_round_;

  // Invariant 4: per node, tip round at catchup_start.
  std::map<uint32_t, uint64_t> catchup_start_tip_;

  // Equivocation flagging: first block hash per (round, proposer), plus the
  // set of already-flagged pairs (count each attack once) and proposers
  // forgiven because they crashed/restarted.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> proposal_by_round_origin_;
  std::set<std::pair<uint64_t, uint64_t>> flagged_equivocations_;
  std::set<uint64_t> restarted_nodes_;

  std::vector<std::string> violations_;
  uint64_t violation_count_ = 0;
  uint64_t equivocation_count_ = 0;

  Counter* events_counter_ = nullptr;
  Counter* violations_counter_ = nullptr;
  Counter* equivocations_counter_ = nullptr;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_OBS_SAFETY_AUDITOR_H_
