// StatsReporter: periodic live introspection for long runs.
//
// Every `interval` it samples a caller-supplied set of named values (tip
// round, rounds/sec, verify-pool and gossip queue depths, per-peer send
// queues, ...) and writes one flat JSON object per line to an ostream, e.g.
//   {"t":12.500000,"lag_ms":0.413,"tip":41,"rounds_per_sec":3.28,...}
// "t" (executor seconds) and "lag_ms" (how late the tick fired vs. its
// scheduled time — an event-loop lag gauge in real-time runs) are always
// present; the rest come from the collect callback.
//
// The reporter drives itself off the shared Executor abstraction, so the
// same code reports from the deterministic simulator (virtual time) and from
// a LocalCluster's event loop (monotonic wall time). Ticks re-arm relative
// to the previous *scheduled* fire time, so intervals do not drift.
//
// Lines are valid flat JSON parseable by ParseFlatJsonObject (tested), so
// downstream tooling can consume the stream without a JSON library.
#ifndef ALGORAND_SRC_OBS_STATS_REPORTER_H_
#define ALGORAND_SRC_OBS_STATS_REPORTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/executor.h"

namespace algorand {

class StatsReporter {
 public:
  // Named samples for one tick, in emit order.
  using Sample = std::vector<std::pair<std::string, double>>;
  using Collect = std::function<Sample()>;

  // `executor` and `out` must outlive the reporter (or the reporter must be
  // stopped first); `collect` runs on the executor's thread.
  StatsReporter(Executor* executor, SimTime interval, Collect collect, std::ostream* out);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  // Schedules the first tick one interval from now. Idempotent.
  void Start();
  // Stops future ticks; queued timer callbacks become no-ops. Idempotent.
  void Stop();

  uint64_t lines_emitted() const;

  // Formats one report line (no trailing newline). Exposed for tests; Tick
  // uses exactly this.
  static std::string MakeLine(double t_seconds, double lag_ms, const Sample& sample);

 private:
  // Timer callbacks capture a weak_ptr to this state so a queued tick after
  // Stop()/destruction is a safe no-op.
  struct State;
  static void Tick(const std::shared_ptr<State>& state, SimTime scheduled_at);

  std::shared_ptr<State> state_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_OBS_STATS_REPORTER_H_
