#include "src/core/vote_counter.h"

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"

namespace algorand {

bool StepTally::AddVote(const PublicKey& pk, uint64_t weight, const Hash256& value,
                        const VrfOutput& sorthash) {
  if (weight == 0 || !voters_.insert(pk).second) {
    return false;
  }
  counts_[value] += weight;
  entries_.push_back(Entry{pk, weight, value, sorthash});
  total_weight_ += weight;
  return true;
}

uint64_t StepTally::CountFor(const Hash256& value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::optional<Hash256> StepTally::Leader(double threshold) const {
  // Replay arrival order so the result matches the streaming CountVotes loop.
  std::unordered_map<Hash256, uint64_t, FixedBytesHasher> running;
  for (const Entry& e : entries_) {
    uint64_t c = (running[e.value] += e.weight);
    if (static_cast<double>(c) > threshold) {
      return e.value;
    }
  }
  return std::nullopt;
}

int StepTally::CommonCoin() const {
  bool have = false;
  Hash256 best;
  for (const Entry& e : entries_) {
    for (uint64_t j = 0; j < e.weight; ++j) {
      Writer w;
      w.Fixed(e.sorthash);
      w.U64(j);
      Hash256 h = Sha256::Hash(w.buffer());
      if (!have || h < best) {
        best = h;
        have = true;
      }
    }
  }
  if (!have) {
    return 0;
  }
  return best[best.size() - 1] & 1;
}

}  // namespace algorand
