// SimHarness: assembles a complete Algorand deployment inside the
// discrete-event simulator — keys and genesis, latency/bandwidth models,
// gossip topology, honest and adversarial nodes — runs rounds, and checks the
// paper's safety goal across nodes. All integration tests, benchmarks and
// examples build on this.
#ifndef ALGORAND_SRC_CORE_SIM_HARNESS_H_
#define ALGORAND_SRC_CORE_SIM_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/verify_pool.h"
#include "src/core/adversary_nodes.h"
#include "src/core/node.h"
#include "src/netsim/latency.h"
#include "src/obs/metrics.h"
#include "src/obs/round_tracer.h"
#include "src/store/block_store.h"

namespace algorand {

struct HarnessConfig {
  size_t n_nodes = 50;
  uint64_t stake_per_user = 1000;
  // Optional per-user stake override (index -> stake); when set,
  // stake_per_user is ignored.
  std::function<uint64_t(size_t)> stake_of;
  // Look-back rounds for sortition weights (§5.3); 0 = current balances.
  uint64_t weight_lookback_rounds = 0;
  uint64_t rng_seed = 1;
  ProtocolParams params = ProtocolParams::ScaledCommittees(0.02);  // tau_step 40.

  // Network.
  size_t gossip_out_degree = 4;
  NetworkConfig net;
  enum class Latency { kUniform, kCity } latency = Latency::kCity;
  SimTime uniform_latency = Millis(50);
  SimTime uniform_jitter = Millis(20);

  // Crypto: real Ed25519 + ECVRF by default; the Sim backends reproduce the
  // paper's replace-crypto-with-sleeps methodology for very large runs.
  bool use_sim_crypto = false;

  // Event-queue implementation. The 4-ary heap is the default; the std::map
  // queue is kept for determinism regression tests (both produce identical
  // executions — see Simulation::QueueKind).
  bool use_map_event_queue = false;

  // Parallel event loop. 0 (default) = the classic sequential engine,
  // bit-compatible with every earlier release. >= 1 = the conservative-
  // lookahead ParallelSimulation with that many shard workers; any N produces
  // identical results to N=1 (the per-stream event keys make runs a pure
  // function of (seed, scenario) — see parallel_simulation.h), but parallel
  // runs order jitter draws per sender, so results differ from sim_workers=0.
  size_t sim_workers = 0;

  // Aggregate-user modeling (§10.1's 500k-user methodology): every node
  // hosts this many users' stake behind one gossip endpoint. Sub-user
  // sortition is Binomial over total weight, so one node holding K users'
  // stake draws committee seats statistically identically to K separate
  // users — that is UserGroupNode. Genesis allocations are scaled by this
  // factor; total users = n_nodes * users_per_group.
  size_t users_per_group = 1;

  // Verification pipeline: worker threads that prewarm the shared
  // VerificationCache while messages are in flight. 0 = single-threaded
  // (fully deterministic, the tier-1 test configuration); the pipeline only
  // changes wall-clock speed, never protocol decisions, because every cached
  // value is identical to what the inline path computes. -1 (default) reads
  // the ALGORAND_VERIFY_WORKERS environment variable, else 0 — the hook CI
  // uses to run the whole suite threaded under TSan.
  int verify_workers = -1;

  // Block-apply pipeline: worker threads for the conflict-partitioned
  // parallel apply (ledger/exec.h). Same contract as verify_workers: 0 =
  // sequential (the tier-1 configuration), any N commits bit-identical state,
  // -1 (default) reads the ALGORAND_EXEC_WORKERS environment variable.
  int exec_workers = -1;

  // Synthetic transaction load. `tx_clients` funded signing accounts
  // (`client_stake` each) and `filler_accounts` key-less accounts of stake 1
  // are appended to genesis after the node allocations — fillers inflate the
  // account table to millions of entries without the keypair cost, clients
  // carry the payment traffic. When tx_load_per_round > 0 the harness
  // injects that many signed client-to-client payments each time the honest
  // chain advances a round (plus one batch before the first round), nonces
  // tracked per client. Fees cycle over 1..tx_fee_levels *per client* —
  // monotone within a sender, so eviction can never open a nonce gap — which
  // exercises the mempool's fee-priority ordering across senders.
  size_t tx_clients = 0;
  uint64_t client_stake = 1'000'000;
  size_t filler_accounts = 0;
  size_t tx_load_per_round = 0;
  uint64_t tx_fee_levels = 8;

  // Adversary: the first floor(n * malicious_fraction) node ids run the
  // equivocation attack of §10.4 (their stake is the malicious stake, since
  // stakes are equal).
  double malicious_fraction = 0.0;

  // Seed-grinding adversaries (§5.2): the `grinding_count` node ids after the
  // equivocators run GrindingProposerNode, each grinding `grind_candidates`
  // payload variants per selected round and (when `grind_withhold` is set)
  // withholding its proposal whenever the empty-block fallback seed scores
  // better for its own next-round sortition.
  size_t grinding_count = 0;
  size_t grind_candidates = 8;
  bool grind_withhold = false;

  // Durable storage: when data_dir is non-empty every node opens a
  // BlockStore at <data_dir>/node-<i> and streams its committed rounds
  // there. KillNode then Crash()es the store (queued writes are lost, like a
  // SIGKILL) and RestartNode rebuilds the node by replaying the on-disk log
  // (Node::RestoreFromStore) — the in-memory snapshot path is bypassed, so
  // disk is the durable state under test. A dir that already holds a log is
  // replayed at construction (process-level restarts).
  std::string data_dir;
  FsyncPolicy store_fsync = FsyncPolicy::kBatched;
  // false = synchronous writes on the protocol thread (deterministic I/O
  // interleaving for tests); true = background writer thread.
  bool store_background_writer = true;

  // Fault injection: declarative crash/restart schedule, applied at Start().
  // A crashed node stops processing and receiving; at restart_at it comes
  // back from its snapshotted durable state (or empty, simulating a fresh
  // join) and catches up to the live chain via the peer catch-up protocol.
  struct CrashEvent {
    size_t node = 0;
    SimTime crash_at = 0;
    SimTime restart_at = 0;     // 0 (or <= crash_at) = never restarts.
    bool from_snapshot = true;  // false = lose durable state, rejoin fresh.
  };
  std::vector<CrashEvent> crash_schedule;

  // Override to build custom node types; return nullptr to get the default
  // behaviour for that id.
  using NodeFactory = std::function<std::unique_ptr<Node>(
      NodeId, Simulation*, GossipAgent*, const Ed25519KeyPair&, const GenesisConfig&,
      const ProtocolParams&, CryptoSuite, AdversaryCoordinator*)>;
  NodeFactory node_factory;
};

class SimHarness {
 public:
  explicit SimHarness(HarnessConfig config);
  ~SimHarness();

  // Starts every node at the current simulation time.
  void Start();

  // Runs until every honest node finished `rounds` rounds. Returns false if
  // the simulated deadline passed or the event queue drained first.
  bool RunRounds(uint64_t rounds, SimTime deadline = Hours(24));

  Simulation& sim() { return *sim_; }
  Network& network() { return *network_; }
  Node& node(size_t i) { return *nodes_[i]; }
  size_t node_count() const { return nodes_.size(); }
  // Simulated users, counting aggregation: node_count() * users_per_group.
  uint64_t total_users() const {
    return static_cast<uint64_t>(nodes_.size()) *
           static_cast<uint64_t>(config_.users_per_group);
  }
  bool is_malicious(size_t i) const { return i < malicious_count_; }
  size_t malicious_count() const { return malicious_count_; }
  const GenesisBundle& genesis() const { return genesis_; }
  VerificationCache& cache() { return cache_; }
  // The verification worker pool; null when running single-threaded.
  VerifyPool* verify_pool() { return pool_.get(); }
  AdversaryCoordinator& coordinator() { return coordinator_; }
  const VrfBackend& vrf() const { return *vrf_; }
  const SignerBackend& signer() const { return *signer_; }
  NetworkAdversary* network_adversary() const { return net_adversary_.get(); }
  void SetNetworkAdversary(std::unique_ptr<NetworkAdversary> adversary);

  // Observability. Each node owns a private MetricsRegistry (lock-free hot
  // path, no cross-node contention); AggregateMetrics() merges them with the
  // harness-wide registry (verification cache, sim/network totals) into one
  // deployment-level snapshot. All nodes share one RoundTracer — trace events
  // carry the node id.
  MetricsRegistry& node_metrics(size_t i) { return *metrics_[i]; }
  MetricsRegistry& global_metrics() { return global_metrics_; }
  RoundTracer& tracer() { return tracer_; }
  MetricsSnapshot AggregateMetrics() const;

  // Per-honest-node completion time (seconds) of `round`, for nodes that
  // finished it.
  std::vector<double> RoundLatencies(uint64_t round) const;

  // Seconds spent by honest nodes in each phase of `round` (Figure 7's
  // decomposition): block proposal, BA* without the final step, final step.
  struct PhaseBreakdown {
    double proposal = 0;
    double ba_without_final = 0;
    double final_step = 0;
  };
  PhaseBreakdown MeanPhaseBreakdown(uint64_t first_round, uint64_t last_round) const;

  // The paper's safety goal (§3): if any honest node reached *final*
  // consensus on a block in round r, every honest node's round-r block
  // matches it.
  struct SafetyReport {
    bool ok = true;
    std::string violation;
  };
  SafetyReport CheckSafety() const;

  // True if all honest nodes' chains agree on every common round (stronger
  // than safety; holds under strong synchrony).
  bool ChainsConsistent() const;

  // Submits a signed payment from node `from_idx` to node `to_idx` at every
  // node's pool (clients gossip transactions network-wide).
  Transaction SubmitPayment(size_t from_idx, size_t to_idx, uint64_t amount, uint64_t nonce);

  // The synthetic-load client keys (empty unless config.tx_clients > 0).
  const std::vector<Ed25519KeyPair>& client_keys() const { return client_keys_; }

  // Injects one round's worth of client payments (config.tx_load_per_round
  // transactions) into every live node's mempool. Called automatically by the
  // load probe; exposed for tests that drive load manually.
  void InjectTxLoad();

  // Transactions committed on node `i`'s chain (sum over its blocks).
  uint64_t CommittedTxCount(size_t i = 0) const;

  // Fault injection (usable directly or via config.crash_schedule).
  // KillNode snapshots the node's durable state, halts it and stops
  // delivering to it. RestartNode replaces it with a fresh Node — restored
  // from the snapshot taken at kill time, or genesis-fresh — and starts it;
  // the catch-up protocol brings it to the live tip.
  void KillNode(size_t i);
  void RestartNode(size_t i, bool from_snapshot = true);
  bool node_alive(size_t i) const { return alive_[i]; }

  // Node i's durable store; null when config.data_dir is empty (or the node
  // is currently crashed — its store object is parked, inert).
  BlockStore* node_store(size_t i) const { return stores_[i].get(); }

 private:
  // Opens (or reopens) node i's store at <data_dir>/node-<i>.
  std::unique_ptr<BlockStore> OpenStoreFor(size_t i);
  HarnessConfig config_;
  DeterministicRng rng_;
  GenesisBundle genesis_;
  // Sequential Simulation or ParallelSimulation, per config.sim_workers
  // (constructed in the ctor body: the parallel engine's lookahead is
  // send_overhead + the latency model's floor).
  std::unique_ptr<Simulation> sim_;
  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<GossipTopology> topology_;
  std::vector<std::unique_ptr<GossipAgent>> agents_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Crash/restart bookkeeping. Halted nodes move to the graveyard instead of
  // being destroyed: the simulator's event queue may still hold lambdas that
  // capture their raw `this`.
  std::vector<bool> alive_;
  std::vector<std::vector<uint8_t>> snapshots_;
  std::vector<std::unique_ptr<Node>> graveyard_;
  std::unique_ptr<NetworkAdversary> net_adversary_;
  std::vector<std::unique_ptr<MetricsRegistry>> metrics_;
  MetricsRegistry global_metrics_;
  RoundTracer tracer_;
  // Per-node durable stores (empty unique_ptrs when data_dir is unset).
  // Crashed stores are parked like crashed nodes: the graveyarded node still
  // holds a raw pointer to its (inert) store. Declared after metrics_: the
  // background writer threads hold cached Counter pointers, so the stores
  // must be destroyed (writers joined) before the registries go away.
  std::vector<std::unique_ptr<BlockStore>> stores_;
  std::vector<std::unique_ptr<BlockStore>> store_graveyard_;

  EcVrf ec_vrf_;
  SimVrf sim_vrf_;
  Ed25519Signer ed_signer_;
  SimSigner sim_signer_;
  const VrfBackend* vrf_ = nullptr;
  const SignerBackend* signer_ = nullptr;
  VerificationCache cache_;
  // Declared after cache_ (and the crypto backends) so workers are joined
  // before anything they touch is destroyed.
  std::unique_ptr<VerifyPool> pool_;
  // Separate pool for block-apply partitions: long apply jobs must never
  // queue behind (or starve) in-flight signature prewarms.
  std::unique_ptr<VerifyPool> exec_pool_;
  AdversaryCoordinator coordinator_;
  size_t malicious_count_ = 0;
  uint64_t probe_generation_ = 0;

  // Synthetic-load state (see HarnessConfig::tx_load_per_round).
  std::vector<Ed25519KeyPair> client_keys_;
  std::vector<uint64_t> client_nonces_;
  uint64_t tx_counter_ = 0;
  uint64_t last_loaded_round_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_SIM_HARNESS_H_
