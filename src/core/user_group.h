// UserGroupNode: one simulated process hosting the stake of K users.
//
// The paper's 500,000-user evaluation (§10.1) runs 500 users per VM process;
// this repository's analogue is one Node object whose genesis allocation is
// K times the per-user stake. That is faithful for sortition because
// selection is Binomial over *weight* (§5.1's sub-user model): a node holding
// K·s units of stake draws committee seats with exactly the distribution of
// K independent users of stake s, via one SimVrf evaluation per (round, step)
// instead of K. The group shares its host node's VerificationCache and gossip
// endpoint, so network load scales with processes, not users — the same
// collapse the paper's testbed relies on. parallel_sim_test pins the
// distributional claim: committee-size histograms under aggregation match
// the unaggregated small-stake configuration.
//
// Protocol behaviour is inherited unchanged from Node — aggregation is a
// stake-shape choice made in genesis (SimHarness scales allocations by
// users_per_group), not a logic fork. The subclass exists so deployments,
// metrics and tests can tell a K-user group apart from a singleton user.
#ifndef ALGORAND_SRC_CORE_USER_GROUP_H_
#define ALGORAND_SRC_CORE_USER_GROUP_H_

#include "src/core/node.h"

namespace algorand {

class UserGroupNode : public Node {
 public:
  UserGroupNode(NodeId id, Executor* sim, GossipAgent* gossip, const Ed25519KeyPair& key,
                const GenesisConfig& genesis, const ProtocolParams& params, CryptoSuite crypto,
                uint64_t users_hosted)
      : Node(id, sim, gossip, key, genesis, params, crypto), users_hosted_(users_hosted) {}

  uint64_t users_hosted() const { return users_hosted_; }

 private:
  const uint64_t users_hosted_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_USER_GROUP_H_
