// Adversarial node behaviours for the misbehaving-user experiments (§10.4)
// and for safety/liveness tests.
//
// The paper's attack: the highest-priority block proposer equivocates —
// gossiping one version of its block to half its peers and a different
// version to the rest — while malicious committee members vote for both
// versions. AdversaryCoordinator is the malicious users' out-of-band channel
// (colluding attackers share state by assumption).
#ifndef ALGORAND_SRC_CORE_ADVERSARY_NODES_H_
#define ALGORAND_SRC_CORE_ADVERSARY_NODES_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "src/core/node.h"

namespace algorand {

// Shared state among colluding malicious nodes. Mutations race under the
// parallel engine (colluders live on different shards), so the channel is
// mutex-guarded and the winner of concurrent registrations for one round is
// chosen by lowest proposer id — an order-independent rule, which keeps
// parallel runs deterministic across worker counts.
class AdversaryCoordinator {
 public:
  void RegisterEquivocation(NodeId proposer, uint64_t round, const Hash256& a, const Hash256& b) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = equivocations_.try_emplace(round, proposer, std::make_pair(a, b));
    if (!inserted && proposer < it->second.first) {
      it->second = {proposer, std::make_pair(a, b)};
    }
  }
  std::optional<std::pair<Hash256, Hash256>> PairFor(uint64_t round) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = equivocations_.find(round);
    if (it == equivocations_.end()) {
      return std::nullopt;
    }
    return it->second.second;
  }

 private:
  mutable std::mutex mu_;
  // round -> (registering proposer, the two equivocated block hashes).
  std::map<uint64_t, std::pair<NodeId, std::pair<Hash256, Hash256>>> equivocations_;
};

// Implements the §10.4 attack when selected as proposer (equivocate) and as
// committee member (vote for both equivocated blocks).
class EquivocatingNode : public Node {
 public:
  EquivocatingNode(NodeId id, Executor* sim, GossipAgent* gossip, const Ed25519KeyPair& key,
                   const GenesisConfig& genesis, const ProtocolParams& params, CryptoSuite crypto,
                   AdversaryCoordinator* coordinator)
      : Node(id, sim, gossip, key, genesis, params, crypto), coordinator_(coordinator) {}

 protected:
  void MaybePropose() override;
  void EmitVotes(uint32_t step_code, const SortitionResult& sort, const Hash256& value) override;

 private:
  AdversaryCoordinator* coordinator_;
};

// §5.2 seed-grinding attacker. When selected as proposer it grinds many
// payload variants of its block, looking for one whose induced next-round
// seed favours its own future sortition. The paper's seed-refresh rule makes
// this futile: seed_{r+1} = VRF_sk(seed_r || r+1) depends only on the current
// seed and the round number, never on the block payload, so every variant
// yields the identical seed (tests pin distinct seeds == 1 per ground round).
// The attacker's only residual lever is the 1-bit propose-vs-withhold choice
// — withholding lets the round fall back to the empty block, whose seed is
// H(seed_r || r+1) (§5.2's no-proof fallback). With `withhold_when_worse` the
// node plays that bit greedily; GrindStats quantifies how little it buys.
class GrindingProposerNode : public Node {
 public:
  struct GrindStats {
    uint64_t rounds_selected = 0;      // Rounds where proposer sortition hit.
    uint64_t candidates_tried = 0;     // Payload variants ground, total.
    uint64_t distinct_next_seeds = 0;  // Sum over ground rounds of |{next_seed}|.
    uint64_t fallback_preferred = 0;   // Rounds where the empty-block seed scored better.
    uint64_t withheld = 0;             // Rounds where the proposal was withheld.
  };

  GrindingProposerNode(NodeId id, Executor* sim, GossipAgent* gossip, const Ed25519KeyPair& key,
                       const GenesisConfig& genesis, const ProtocolParams& params,
                       CryptoSuite crypto, size_t grind_candidates, bool withhold_when_worse)
      : Node(id, sim, gossip, key, genesis, params, crypto),
        grind_candidates_(grind_candidates == 0 ? 1 : grind_candidates),
        withhold_when_worse_(withhold_when_worse) {}

  const GrindStats& grind_stats() const { return stats_; }

 protected:
  void MaybePropose() override;

 private:
  // The attacker's payoff for a candidate next-round seed: its own proposer
  // sortition weight in round r+1 under that seed.
  uint64_t ScoreSeed(const SeedBytes& seed) const;

  size_t grind_candidates_;
  bool withhold_when_worse_;
  GrindStats stats_;
};

// Selected committee members stay silent (fail-stop behaviour / vote
// withholding).
class SilentNode : public Node {
 public:
  using Node::Node;

 protected:
  void MaybePropose() override {}
  void EmitVotes(uint32_t, const SortitionResult&, const Hash256&) override {}
};

// Always votes for the empty block, trying to starve real transactions.
class EmptyVoterNode : public Node {
 public:
  using Node::Node;

 protected:
  void EmitVotes(uint32_t step_code, const SortitionResult& sort, const Hash256&) override {
    Node::EmitVotes(step_code, sort, empty_hash());
  }
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_ADVERSARY_NODES_H_
