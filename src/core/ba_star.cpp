#include "src/core/ba_star.h"

namespace algorand {

BaStar::BaStar(const ProtocolParams& params, BaEnvironment* env, CompletionHandler on_complete)
    : params_(params), env_(env), on_complete_(std::move(on_complete)) {}

const StepTally* BaStar::TallyFor(uint32_t step_code) const {
  auto it = tallies_.find(step_code);
  return it == tallies_.end() ? nullptr : &it->second;
}

void BaStar::OnVote(uint32_t step_code, const PublicKey& pk, uint64_t weight, const Hash256& value,
                    const VrfOutput& sorthash) {
  StepTally& tally = tallies_[step_code];
  if (!tally.AddVote(pk, weight, value, sorthash)) {
    return;
  }
  if (waiting_ && step_code == wait_step_) {
    auto leader = tally.Leader(wait_threshold_);
    if (leader) {
      CompleteWait(leader);
    }
  }
}

void BaStar::WaitCountVotes(uint32_t step_code, double threshold, SimTime timeout,
                            WaitContinuation k) {
  waiting_ = true;
  wait_step_ = step_code;
  wait_threshold_ = threshold;
  wait_entered_at_ = env_->Now();
  wait_k_ = std::move(k);
  uint64_t epoch = ++wait_epoch_;

  if (observer_) {
    BaStepEvent ev;
    ev.kind = BaStepEvent::Kind::kStepEnter;
    ev.step = step_code;
    ev.at = wait_entered_at_;
    Emit(ev);
  }

  // Votes that arrived before we entered this step may already decide it.
  auto it = tallies_.find(step_code);
  if (it != tallies_.end()) {
    auto leader = it->second.Leader(threshold);
    if (leader) {
      CompleteWait(leader);
      return;
    }
  }
  env_->ScheduleAfter(timeout, [this, epoch] {
    if (waiting_ && wait_epoch_ == epoch) {
      CompleteWait(std::nullopt);
    }
  });
}

void BaStar::CompleteWait(std::optional<Hash256> value) {
  waiting_ = false;
  if (observer_) {
    BaStepEvent ev;
    ev.kind = BaStepEvent::Kind::kStepExit;
    ev.step = wait_step_;
    ev.at = env_->Now();
    ev.entered_at = wait_entered_at_;
    ev.timed_out = !value.has_value();
    if (value) {
      ev.value = *value;
      auto it = tallies_.find(wait_step_);
      ev.votes = it == tallies_.end() ? 0 : it->second.CountFor(*value);
    }
    Emit(ev);
  }
  WaitContinuation k = std::move(wait_k_);
  wait_k_ = nullptr;
  k(value);
}

void BaStar::Start(const Hash256& proposed_hash, const Hash256& empty_hash) {
  started_ = true;
  proposed_ = proposed_hash;
  empty_ = empty_hash;

  // --- Reduction (Algorithm 7) ---
  // Step 1: gossip the block hash. Other users may still be waiting for
  // block proposals, so allow lambda_block + lambda_step.
  env_->CastVote(kStepReduction1, params_.tau_step, proposed_);
  WaitCountVotes(kStepReduction1, params_.StepThreshold(),
                 params_.lambda_block + params_.lambda_step,
                 [this](std::optional<Hash256> r1) {
                   // Step 2: re-gossip the popular hash, or the empty hash on
                   // timeout.
                   Hash256 vote = r1.value_or(empty_);
                   env_->CastVote(kStepReduction2, params_.tau_step, vote);
                   WaitCountVotes(kStepReduction2, params_.StepThreshold(), params_.lambda_step,
                                  [this](std::optional<Hash256> r2) {
                                    result_.reduction_done_at = env_->Now();
                                    StartBinary(r2.value_or(empty_));
                                  });
                 });
}

void BaStar::StartBinary(const Hash256& hblock) {
  if (observer_) {
    BaStepEvent ev;
    ev.kind = BaStepEvent::Kind::kReductionDone;
    ev.at = env_->Now();
    ev.value = hblock;
    Emit(ev);
  }
  // BinaryBA* (Algorithm 8): consensus on hblock or the empty hash.
  block_hash_ = hblock;
  r_ = hblock;
  bba_step_ = 1;
  BinaryStepA();
}

bool BaStar::CheckMaxSteps() {
  if (bba_step_ <= params_.max_steps) {
    return false;
  }
  // HangForever(): no consensus; the caller's recovery protocol (§8.2) must
  // restore liveness. We surface the hang instead of blocking.
  result_.hung = true;
  result_.binary_steps = bba_step_ - 1;
  result_.binary_done_at = env_->Now();
  result_.final_done_at = env_->Now();
  done_ = true;
  on_complete_(result_);
  return true;
}

void BaStar::BinaryStepA() {
  if (CheckMaxSteps()) {
    return;
  }
  const uint32_t code = CurrentBinaryCode();
  env_->CastVote(code, params_.tau_step, r_);
  WaitCountVotes(code, params_.StepThreshold(), params_.lambda_step,
                 [this, code](std::optional<Hash256> r) {
                   if (!r.has_value()) {
                     r_ = block_hash_;
                   } else {
                     r_ = *r;
                     if (r_ != empty_) {
                       FinishBinary(r_, code, /*from_first_step=*/bba_step_ == 1);
                       return;
                     }
                   }
                   ++bba_step_;
                   BinaryStepB();
                 });
}

void BaStar::BinaryStepB() {
  if (CheckMaxSteps()) {
    return;
  }
  const uint32_t code = CurrentBinaryCode();
  env_->CastVote(code, params_.tau_step, r_);
  WaitCountVotes(code, params_.StepThreshold(), params_.lambda_step,
                 [this, code](std::optional<Hash256> r) {
                   if (!r.has_value()) {
                     r_ = empty_;
                   } else {
                     r_ = *r;
                     if (r_ == empty_) {
                       FinishBinary(r_, code, /*from_first_step=*/false);
                       return;
                     }
                   }
                   ++bba_step_;
                   BinaryStepC();
                 });
}

void BaStar::BinaryStepC() {
  if (CheckMaxSteps()) {
    return;
  }
  const uint32_t code = CurrentBinaryCode();
  env_->CastVote(code, params_.tau_step, r_);
  WaitCountVotes(code, params_.StepThreshold(), params_.lambda_step,
                 [this, code](std::optional<Hash256> r) {
                   if (!r.has_value()) {
                     // Common coin breaks adversarial vote-splitting: flip
                     // toward block_hash or empty based on the lowest
                     // sortition hash seen this step (Algorithm 9).
                     int coin = 0;
                     if (params_.common_coin_enabled) {
                       const StepTally* tally = TallyFor(code);
                       coin = tally ? tally->CommonCoin() : 0;
                     }
                     if (observer_) {
                       BaStepEvent ev;
                       ev.kind = BaStepEvent::Kind::kCoinFlip;
                       ev.step = code;
                       ev.at = env_->Now();
                       ev.coin = coin;
                       Emit(ev);
                     }
                     r_ = (coin == 0) ? block_hash_ : empty_;
                   } else {
                     r_ = *r;
                   }
                   ++bba_step_;
                   BinaryStepA();
                 });
}

void BaStar::VoteAheadThreeSteps(const Hash256& value) {
  // Carry departing-node votes into the next three steps so stragglers can
  // still cross the threshold (§7.4 "getting unstuck" prelude).
  for (int s = bba_step_ + 1; s <= bba_step_ + 3; ++s) {
    env_->CastVote(BinaryStepCode(s), params_.tau_step, value);
  }
}

void BaStar::FinishBinary(const Hash256& value, uint32_t deciding_step, bool from_first_step) {
  if (observer_) {
    BaStepEvent ev;
    ev.kind = BaStepEvent::Kind::kBinaryDecided;
    ev.step = deciding_step;
    ev.at = env_->Now();
    ev.binary_steps = bba_step_;
    ev.value = value;
    Emit(ev);
  }
  VoteAheadThreeSteps(value);
  if (from_first_step && params_.final_step_enabled) {
    // Consensus in the very first step can be declared final if the final
    // committee confirms it (§7.4).
    env_->CastVote(kStepFinal, params_.tau_final, value);
  }
  result_.value = value;
  result_.binary_steps = bba_step_;
  result_.deciding_step = deciding_step;
  result_.binary_done_at = env_->Now();

  if (!params_.final_step_enabled) {
    // Ablation: no finality determination; everything stays tentative.
    result_.final = false;
    result_.final_done_at = env_->Now();
    done_ = true;
    on_complete_(result_);
    return;
  }

  // --- Final/tentative determination (Algorithm 3) ---
  WaitCountVotes(kStepFinal, params_.FinalThreshold(), params_.lambda_step,
                 [this](std::optional<Hash256> rf) {
                   result_.final = rf.has_value() && *rf == result_.value;
                   result_.final_done_at = env_->Now();
                   done_ = true;
                   on_complete_(result_);
                 });
}

}  // namespace algorand
