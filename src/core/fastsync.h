// Certificate-chain fast-sync (§8.3 made O(recent)): instead of fetching and
// re-executing every block since genesis, a fresh node downloads a peer's
// latest checkpoint manifest, walks the certificate chain genesis -> B link
// by link (block hashes + deciding certificates, no block bodies), fetches
// the checkpoint payload in chunks, validates the account fingerprint
// against the manifest, installs the state, and rejoins normal catch-up for
// the suffix past B.
//
// Trust argument (DESIGN.md §13): each link's certificate is checked for
// vote signatures and structural binding (votes name this round, this block
// hash, and the previous link's hash), so the chain of hashes from the known
// genesis to the manifest tip is vouched for at every hop. Sortition weights
// at historical rounds are not reconstructible without the very replay
// fast-sync avoids, so quorum weight is not re-counted per link; the
// implicit anchor is the first post-checkpoint certificate, which normal
// catch-up validates in full against the installed state — a wrong state
// fails there and the node never advances on it.
//
// All six messages are point-to-point (requester/responder addressed), never
// relayed, mirroring the catch-up protocol's shape.
#ifndef ALGORAND_SRC_CORE_FASTSYNC_H_
#define ALGORAND_SRC_CORE_FASTSYNC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/netsim/message.h"

namespace algorand {

// "What is your newest durable checkpoint?" Answered with the manifest.
class FastSyncManifestRequest : public SimMessage {
 public:
  uint32_t requester = 0;
  uint64_t seq = 0;  // Per-requester nonce; retries defeat gossip dedup.

  static constexpr uint64_t kWireSize = 4 + 8;

  std::vector<uint8_t> Serialize() const;
  static std::optional<FastSyncManifestRequest> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "fastsync_manifest_req"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

class FastSyncManifestResponse : public SimMessage {
 public:
  uint32_t responder = 0;
  uint64_t seq = 0;  // Echo of the request nonce.
  // CheckpointData::kManifestBytes of the payload head (ParseManifest input);
  // empty = the responder holds no checkpoint.
  std::vector<uint8_t> manifest;
  uint64_t payload_bytes = 0;  // Full checkpoint payload size, for chunking.

  std::vector<uint8_t> Serialize() const;
  static std::optional<FastSyncManifestResponse> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "fastsync_manifest_resp"; }

 protected:
  uint64_t ComputeWireSize() const override { return 4 + 8 + 4 + manifest.size() + 8; }
  Hash256 ComputeDedupId() const override;
};

// A window of certificate-chain links [from_round, from_round + limit).
class FastSyncLinksRequest : public SimMessage {
 public:
  uint32_t requester = 0;
  uint64_t seq = 0;
  uint64_t from_round = 0;
  uint32_t limit = 0;

  static constexpr uint64_t kWireSize = 4 + 8 + 8 + 4;

  std::vector<uint8_t> Serialize() const;
  static std::optional<FastSyncLinksRequest> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "fastsync_links_req"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

class FastSyncLinksResponse : public SimMessage {
 public:
  uint32_t responder = 0;
  uint64_t seq = 0;
  uint64_t from_round = 0;
  // ChainLink::SerializePayload bytes for consecutive rounds starting at
  // from_round; may be a partial window (responder's history ends sooner).
  std::vector<std::vector<uint8_t>> links;

  std::vector<uint8_t> Serialize() const;
  static std::optional<FastSyncLinksResponse> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "fastsync_links_resp"; }

 protected:
  uint64_t ComputeWireSize() const override;
  Hash256 ComputeDedupId() const override;
};

// A byte range of one checkpoint's payload.
class FastSyncChunkRequest : public SimMessage {
 public:
  uint32_t requester = 0;
  uint64_t seq = 0;
  uint64_t round = 0;   // Checkpoint round (from the manifest).
  uint64_t offset = 0;  // Byte offset into the payload.
  uint32_t limit = 0;   // Max bytes wanted (responders clamp).

  static constexpr uint64_t kWireSize = 4 + 8 + 8 + 8 + 4;

  std::vector<uint8_t> Serialize() const;
  static std::optional<FastSyncChunkRequest> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "fastsync_chunk_req"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

class FastSyncChunkResponse : public SimMessage {
 public:
  uint32_t responder = 0;
  uint64_t seq = 0;
  uint64_t round = 0;
  uint64_t offset = 0;
  uint64_t total_bytes = 0;  // Full payload size (progress/termination check).
  std::vector<uint8_t> data;  // Empty = round unknown or offset out of range.

  std::vector<uint8_t> Serialize() const;
  static std::optional<FastSyncChunkResponse> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "fastsync_chunk_resp"; }

 protected:
  uint64_t ComputeWireSize() const override { return 4 + 8 + 8 + 8 + 8 + 4 + data.size(); }
  Hash256 ComputeDedupId() const override;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_FASTSYNC_H_
