#include "src/core/fastsync.h"

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"

namespace algorand {

std::vector<uint8_t> FastSyncManifestRequest::Serialize() const {
  Writer w;
  w.U32(requester);
  w.U64(seq);
  return w.Take();
}

std::optional<FastSyncManifestRequest> FastSyncManifestRequest::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  FastSyncManifestRequest m;
  m.requester = r.U32();
  m.seq = r.U64();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 FastSyncManifestRequest::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> FastSyncManifestResponse::Serialize() const {
  Writer w;
  w.U32(responder);
  w.U64(seq);
  w.Bytes(manifest);
  w.U64(payload_bytes);
  return w.Take();
}

std::optional<FastSyncManifestResponse> FastSyncManifestResponse::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  FastSyncManifestResponse m;
  m.responder = r.U32();
  m.seq = r.U64();
  m.manifest = r.Bytes();
  m.payload_bytes = r.U64();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 FastSyncManifestResponse::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> FastSyncLinksRequest::Serialize() const {
  Writer w;
  w.U32(requester);
  w.U64(seq);
  w.U64(from_round);
  w.U32(limit);
  return w.Take();
}

std::optional<FastSyncLinksRequest> FastSyncLinksRequest::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  FastSyncLinksRequest m;
  m.requester = r.U32();
  m.seq = r.U64();
  m.from_round = r.U64();
  m.limit = r.U32();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 FastSyncLinksRequest::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> FastSyncLinksResponse::Serialize() const {
  Writer w;
  w.U32(responder);
  w.U64(seq);
  w.U64(from_round);
  w.U32(static_cast<uint32_t>(links.size()));
  for (const std::vector<uint8_t>& link : links) {
    w.Bytes(link);
  }
  return w.Take();
}

std::optional<FastSyncLinksResponse> FastSyncLinksResponse::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  FastSyncLinksResponse m;
  m.responder = r.U32();
  m.seq = r.U64();
  m.from_round = r.U64();
  uint32_t n = r.U32();
  if (!r.ok() || n > data.size()) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < n; ++i) {
    m.links.push_back(r.Bytes());
    if (!r.ok()) {
      return std::nullopt;
    }
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

uint64_t FastSyncLinksResponse::ComputeWireSize() const {
  uint64_t size = 4 + 8 + 8 + 4;
  for (const std::vector<uint8_t>& link : links) {
    size += 4 + link.size();
  }
  return size;
}

Hash256 FastSyncLinksResponse::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> FastSyncChunkRequest::Serialize() const {
  Writer w;
  w.U32(requester);
  w.U64(seq);
  w.U64(round);
  w.U64(offset);
  w.U32(limit);
  return w.Take();
}

std::optional<FastSyncChunkRequest> FastSyncChunkRequest::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  FastSyncChunkRequest m;
  m.requester = r.U32();
  m.seq = r.U64();
  m.round = r.U64();
  m.offset = r.U64();
  m.limit = r.U32();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 FastSyncChunkRequest::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> FastSyncChunkResponse::Serialize() const {
  Writer w;
  w.U32(responder);
  w.U64(seq);
  w.U64(round);
  w.U64(offset);
  w.U64(total_bytes);
  w.Bytes(data);
  return w.Take();
}

std::optional<FastSyncChunkResponse> FastSyncChunkResponse::Deserialize(
    std::span<const uint8_t> bytes) {
  Reader r(bytes);
  FastSyncChunkResponse m;
  m.responder = r.U32();
  m.seq = r.U64();
  m.round = r.U64();
  m.offset = r.U64();
  m.total_bytes = r.U64();
  m.data = r.Bytes();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 FastSyncChunkResponse::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

}  // namespace algorand
