#include "src/core/node.h"

#include "src/common/serialize.h"
#include "src/common/verify_pool.h"
#include "src/crypto/sha256.h"
#include "src/store/block_store.h"
#include "src/store/checkpoint.h"

namespace algorand {
namespace {

// Verification-cache key: the message id salted with the verification
// context, so nodes on different forks (different seed/weights) never share
// a cache entry that would not be identical anyway.
Hash256 ContextKey(const Hash256& dedup_id, const SeedBytes& seed, uint64_t total_weight) {
  Writer w;
  w.Fixed(dedup_id);
  w.Fixed(seed);
  w.U64(total_weight);
  return Sha256::Hash(w.buffer());
}

// First 8 bytes of a hash, big-endian — enough identity for a trace line.
uint64_t HashPrefix(const Hash256& h) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) {
    v = (v << 8) | h[i];
  }
  return v;
}

constexpr double kMsPerSecond = 1e3;

double ToMillis(SimTime t) { return ToSeconds(t) * kMsPerSecond; }

}  // namespace

Node::Node(NodeId id, Executor* sim, GossipAgent* gossip, const Ed25519KeyPair& key,
           const GenesisConfig& genesis, const ProtocolParams& params, CryptoSuite crypto)
    : id_(id),
      sim_(sim),
      gossip_(gossip),
      key_(key),
      params_(params),
      crypto_(crypto),
      ledger_(genesis),
      mempool_(MempoolConfig{static_cast<size_t>(params.mempool_capacity)}),
      tx_verifier_(crypto.signer, crypto.cache, crypto.pool),
      applier_(crypto.exec_pool),
      catchup_rng_(id, "catchup") {
  genesis_hash_ = ledger_.tip_hash();  // The ledger is genesis-fresh here.
  ledger_.SetApplier(&applier_);
  gossip_->set_validator([this](const MessagePtr& msg) { return ValidateForRelay(msg); });
  gossip_->set_handler([this](const MessagePtr& msg) { HandleMessage(msg); });
}

void Node::Start() {
  StartRound(ledger_.next_round());
  ScheduleRecoveryCheck();
}

void Node::AttachObservability(MetricsRegistry* metrics, RoundTracer* tracer) {
  metrics_ = metrics;
  tracer_ = tracer;
  mempool_.AttachMetrics(metrics);
  applier_.AttachMetrics(metrics);
  if (metrics == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.blocks_proposed = &metrics->GetCounter("node.blocks.proposed");
  obs_.blocks_validated = &metrics->GetCounter("node.blocks.validated");
  obs_.votes_cast = &metrics->GetCounter("node.votes.cast");
  obs_.votes_counted = &metrics->GetCounter("node.votes.counted");
  obs_.rounds_completed = &metrics->GetCounter("node.rounds.completed");
  obs_.rounds_final = &metrics->GetCounter("node.rounds.final");
  obs_.rounds_empty = &metrics->GetCounter("node.rounds.empty");
  obs_.rounds_hung = &metrics->GetCounter("node.rounds.hung");
  obs_.recoveries = &metrics->GetCounter("node.recoveries");
  obs_.catchup_sessions = &metrics->GetCounter("catchup.sessions");
  obs_.catchup_requests = &metrics->GetCounter("catchup.requests");
  obs_.catchup_served = &metrics->GetCounter("catchup.served");
  obs_.catchup_timeouts = &metrics->GetCounter("catchup.timeouts");
  obs_.catchup_bad_batches = &metrics->GetCounter("catchup.bad_batches");
  obs_.catchup_blocks = &metrics->GetCounter("catchup.blocks_applied");
  obs_.catchup_completed = &metrics->GetCounter("catchup.completed");
  obs_.catchup_rotations = &metrics->GetCounter("catchup.peer_rotations");
  obs_.catchup_aborted = &metrics->GetCounter("catchup.aborted");
  obs_.fastsync_sessions = &metrics->GetCounter("catchup.fastsync_sessions");
  obs_.fastsync_completed = &metrics->GetCounter("catchup.fastsync_completed");
  obs_.fastsync_failed = &metrics->GetCounter("catchup.fastsync_failed");
  obs_.fastsync_links = &metrics->GetCounter("catchup.fastsync_links_verified");
  obs_.fastsync_bytes = &metrics->GetCounter("catchup.fastsync_bytes");
  obs_.fastsync_served = &metrics->GetCounter("catchup.fastsync_served");
  obs_.checkpoints_requested = &metrics->GetCounter("node.checkpoints_requested");
  obs_.step_time_ms = &metrics->GetHistogram("ba.step_time_ms");
  obs_.proposal_time_ms = &metrics->GetHistogram("ba.proposal_time_ms");
  obs_.reduction_time_ms = &metrics->GetHistogram("ba.reduction_time_ms");
  obs_.binary_time_ms = &metrics->GetHistogram("ba.binary_time_ms");
  obs_.final_time_ms = &metrics->GetHistogram("ba.final_time_ms");
  obs_.round_time_ms = &metrics->GetHistogram("ba.round_time_ms");
  obs_.binary_steps =
      &metrics->GetHistogram("ba.binary_steps", MetricsRegistry::DefaultCountBuckets());
}

void Node::Trace(TraceKind kind, uint32_t step, uint64_t a, uint64_t b, uint64_t value_prefix,
                 uint8_t flag) {
  if (tracer_ == nullptr) {
    return;
  }
  TraceEvent ev;
  ev.at = sim_->now();
  ev.node = id_;
  ev.round = in_recovery_ ? recovery_code_ : current_round_;
  ev.kind = kind;
  ev.step = step;
  ev.a = a;
  ev.b = b;
  ev.value_prefix = value_prefix;
  ev.flag = flag;
  tracer_->Record(ev);
}

void Node::ObserveBaStep(const BaStepEvent& event) {
  switch (event.kind) {
    case BaStepEvent::Kind::kStepEnter:
      Trace(TraceKind::kStepEnter, event.step);
      break;
    case BaStepEvent::Kind::kStepExit:
      if (obs_.step_time_ms != nullptr) {
        obs_.step_time_ms->Observe(ToMillis(event.at - event.entered_at));
      }
      Trace(TraceKind::kStepExit, event.step, event.votes, 0, HashPrefix(event.value),
            event.timed_out ? 1 : 0);
      break;
    case BaStepEvent::Kind::kReductionDone:
      Trace(TraceKind::kReductionDone, 0, 0, 0, HashPrefix(event.value));
      break;
    case BaStepEvent::Kind::kCoinFlip:
      Trace(TraceKind::kCoinFlip, event.step, static_cast<uint64_t>(event.coin));
      break;
    case BaStepEvent::Kind::kBinaryDecided:
      Trace(TraceKind::kBinaryDecided, event.step, static_cast<uint64_t>(event.binary_steps), 0,
            HashPrefix(event.value));
      break;
  }
}

void Node::RecordRoundMetrics(const RoundRecord& rec) {
  if (metrics_ == nullptr) {
    return;
  }
  obs_.rounds_completed->Increment();
  if (rec.final) {
    obs_.rounds_final->Increment();
  }
  if (rec.empty) {
    obs_.rounds_empty->Increment();
  }
  obs_.round_time_ms->Observe(ToMillis(rec.end_time - rec.start_time));
  obs_.proposal_time_ms->Observe(ToMillis(rec.proposal_done_at - rec.start_time));
  if (rec.reduction_done_at >= rec.proposal_done_at) {
    obs_.reduction_time_ms->Observe(ToMillis(rec.reduction_done_at - rec.proposal_done_at));
  }
  if (rec.binary_done_at >= rec.reduction_done_at) {
    obs_.binary_time_ms->Observe(ToMillis(rec.binary_done_at - rec.reduction_done_at));
  }
  if (rec.end_time >= rec.binary_done_at) {
    obs_.final_time_ms->Observe(ToMillis(rec.end_time - rec.binary_done_at));
  }
  obs_.binary_steps->Observe(static_cast<double>(rec.binary_steps));
}

void Node::SubmitTransaction(const Transaction& tx) {
  if (tx_verifier_.VerifyOne(tx)) {
    mempool_.Add(tx, ledger_.accounts().NextNonceOf(tx.from));
  }
}

void Node::GossipTransaction(const Transaction& tx) {
  SubmitTransaction(tx);
  auto msg = std::make_shared<TransactionMessage>();
  msg->tx = tx;
  GossipMessage(msg);
}

void Node::ConfigureCertificateSharding(uint32_t shard_count) {
  shard_count_ = shard_count == 0 ? 1 : shard_count;
}

SimTime Node::Now() const { return sim_->now(); }

void Node::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  // BaStar instances are per-round (and per recovery session); their timers
  // must not fire into a destroyed machine after the node moved on. The
  // epoch bumps on every round change and recovery transition.
  uint64_t epoch = sched_epoch_;
  sim_->Schedule(delay, [this, epoch, fn = std::move(fn)] {
    if (sched_epoch_ == epoch) {
      fn();
    }
  });
}

RoundContext Node::MakeContext() const {
  RoundContext ctx;
  ctx.round = current_round_;
  ctx.seed = ledger_.SortitionSeed(current_round_, params_.seed_refresh_interval);
  ctx.prev_hash = ledger_.tip_hash();
  ctx.total_weight = ledger_.total_weight();
  const Ledger* ledger = &ledger_;
  ctx.weight_of = [ledger](const PublicKey& pk) { return ledger->WeightOf(pk); };
  return ctx;
}

// ---------------------------------------------------------------------------
// Round lifecycle
// ---------------------------------------------------------------------------

void Node::StartRound(uint64_t round) {
  current_round_ = round;
  ++sched_epoch_;
  ctx_ = MakeContext();
  if (crypto_.cache != nullptr) {
    crypto_.cache->NoteRound(round);  // Prunes entries from finished rounds.
  }
  empty_block_ = Block::MakeEmpty(round, ledger_.tip_hash(), ledger_.SeedForRound(round));
  empty_hash_ = empty_block_.Hash();
  proposal_ = ProposalState{};
  round_votes_.clear();
  // Prune relay bookkeeping for finished rounds.
  relayed_votes_.erase(relayed_votes_.begin(),
                       relayed_votes_.lower_bound(std::make_tuple(round, 0u, PublicKey())));
  if (gossip_ != nullptr) {
    gossip_->AdvanceSeenWindow(round);  // Round-windowed dedup pruning.
  }
  prev_ba_ = std::move(ba_);  // Defer destruction past the caller's frames.
  ba_ = std::make_unique<BaStar>(params_, this,
                                 [this](const BaResult& result) { OnBaComplete(result); });
  ba_->set_observer([this](const BaStepEvent& event) { ObserveBaStep(event); });
  phase_ = Phase::kWaitPriority;

  records_.push_back(RoundRecord{});
  records_.back().round = round;
  records_.back().start_time = sim_->now();
  Trace(TraceKind::kRoundStart, 0, ledger_.chain_length());

  MaybePropose();

  // Replay buffered traffic for this round (it may immediately give us the
  // best priority, blocks, and early votes).
  ReplayBufferedMessages(round);

  // Wait lambda_priority + lambda_stepvar to learn the highest priority (§6).
  uint64_t round_at_schedule = round;
  sim_->Schedule(params_.lambda_priority + params_.lambda_stepvar, [this, round_at_schedule] {
    if (current_round_ == round_at_schedule && phase_ == Phase::kWaitPriority) {
      OnPriorityWindowClosed();
    }
  });
}

void Node::OnPriorityWindowClosed() {
  phase_ = Phase::kWaitBlock;
  // If the best-priority proposer's block is already here, go; otherwise wait
  // up to lambda_block for it.
  if (proposal_.have_best) {
    auto it = proposal_.block_hash_by_proposer.find(proposal_.best_pk);
    if (it != proposal_.block_hash_by_proposer.end()) {
      StartAgreement(it->second);
      return;
    }
  }
  uint64_t round = current_round_;
  sim_->Schedule(params_.lambda_block, [this, round] {
    if (current_round_ == round && phase_ == Phase::kWaitBlock) {
      OnBlockWindowClosed(round);
    }
  });
}

void Node::OnBlockWindowClosed(uint64_t round) {
  if (current_round_ != round || phase_ != Phase::kWaitBlock) {
    return;
  }
  // No block from the best proposer in time: fall back to the empty block.
  StartAgreement(empty_hash_);
}

void Node::StartAgreement(const Hash256& candidate) {
  phase_ = Phase::kAgreement;
  RoundRecord& rec = records_.back();
  rec.proposal_done_at = sim_->now();
  rec.best_priority_at = proposal_.best_priority_at;
  auto seen = proposal_.block_seen_at.find(candidate);
  rec.candidate_block_at = seen == proposal_.block_seen_at.end() ? 0 : seen->second;
  ba_->Start(candidate, empty_hash_);
}

void Node::OnBaComplete(const BaResult& result) {
  ba_result_ = result;
  RoundRecord& rec = records_.back();
  rec.reduction_done_at = result.reduction_done_at;
  rec.binary_done_at = result.binary_done_at;
  rec.binary_steps = result.binary_steps;
  if (result.hung) {
    rec.hung = true;
    rec.end_time = sim_->now();
    hung_ = true;
    if (obs_.rounds_hung != nullptr) {
      obs_.rounds_hung->Increment();
    }
    Trace(TraceKind::kRoundEnd, 0, 0, 0, 0, kTraceHung);
    phase_ = Phase::kIdle;  // Recovery (§8.2) is the only way forward.
    return;
  }
  ba_result_.final = FinalVerdict(result);
  rec.final = ba_result_.final;
  TryFinishRound();
}

void Node::TryFinishRound() {
  // Locate the agreed block: the empty block, a stored proposal, or fetch it
  // from peers (BlockOfHash in Algorithm 3).
  const Hash256& value = ba_result_.value;
  if (value == empty_hash_) {
    AppendAgreedBlock(empty_block_);
    return;
  }
  auto it = proposal_.blocks_by_hash.find(value);
  if (it != proposal_.blocks_by_hash.end()) {
    AppendAgreedBlock(it->second);
    return;
  }
  // Not here yet: ask neighbours, retry while it is missing.
  phase_ = Phase::kFetchBlock;
  auto req = std::make_shared<BlockRequestMessage>();
  req->round = current_round_;
  req->block_hash = value;
  req->requester = id_;
  for (NodeId peer : gossip_->neighbors()) {
    gossip_->SendTo(peer, req);
  }
  uint64_t round = current_round_;
  sim_->Schedule(params_.lambda_step, [this, round] {
    if (current_round_ == round && phase_ == Phase::kFetchBlock) {
      TryFinishRound();
    }
  });
}

void Node::AppendAgreedBlock(const Block& block) {
  ConsensusKind kind = ba_result_.final ? ConsensusKind::kFinal : ConsensusKind::kTentative;
  if (!ledger_.Append(block, kind)) {
    // Should not happen for validated blocks; treat as empty to preserve
    // progress (§8.1's "pass an empty block" rule).
    ledger_.Append(empty_block_, kind);
  }
  // Drop committed ids, then any transaction the new account state makes
  // unappliable (a competing block may have spent the same nonces).
  mempool_.ObserveCommitted(block.txns, ledger_.accounts());
  RoundRecord& rec = records_.back();
  rec.end_time = sim_->now();
  rec.empty = block.is_empty;
  RecordRoundMetrics(rec);
  Trace(TraceKind::kRoundEnd, ba_result_.deciding_step, 0, 0, HashPrefix(ba_result_.value),
        static_cast<uint8_t>((rec.final ? kTraceFinal : 0) | (rec.empty ? kTraceEmpty : 0)));

  // Certificate: votes of the deciding step (§8.3), sharded if configured.
  Certificate cert = BuildCertificateForStep(ba_result_.deciding_step, params_.StepThreshold());
  if (shard_count_ <= 1 || (cert.round % shard_count_) == (id_ % shard_count_)) {
    certificates_[cert.round] = cert;
  }
  std::optional<Certificate> final_cert;
  if (ba_result_.final) {
    final_cert = BuildCertificateForStep(kStepFinal, params_.FinalThreshold());
    final_certificates_[cert.round] = *final_cert;
    // Finality supersedes fork suspicions up to this round.
    fork_monitor_.Prune(ledger_.HighestFinalRound().value_or(0));
  }
  // Disk gets the certificate unconditionally (no shard filter): the log is
  // this node's history of record, and catch-up serves from it beyond the
  // in-memory shard window.
  StreamRoundToStore(cert.round, kind, &cert, final_cert ? &*final_cert : nullptr);
  MaybeCheckpoint();

  StartRound(current_round_ + 1);
}

void Node::StreamRoundToStore(uint64_t round, ConsensusKind kind, const Certificate* cert,
                              const Certificate* final_cert) {
  if (store_ == nullptr) {
    return;
  }
  StoredRound sr;
  sr.round = round;
  sr.kind = static_cast<uint8_t>(kind);
  // Serialize the ledger's copy, not the caller's candidate: Append may have
  // fallen back to the empty block.
  const Block& block = ledger_.BlockAtRound(round);
  sr.block = block.Serialize();
  sr.next_seed = block.next_seed;
  // The chain tip as of this round; equals the live tip except when
  // re-streaming a replacement suffix round by round after a fork switch.
  sr.tip_hash = round + 1 == ledger_.next_round() ? ledger_.tip_hash() : block.Hash();
  if (cert != nullptr && !cert->votes.empty()) {
    sr.cert = cert->Serialize();
  }
  if (final_cert != nullptr && !final_cert->votes.empty()) {
    sr.final_cert = final_cert->Serialize();
  }
  store_->AppendRound(std::move(sr));
}

Certificate Node::BuildCertificateForStep(uint32_t step, double needed) const {
  Certificate cert;
  cert.round = current_round_;
  cert.step = step;
  cert.block_hash = ba_result_.value;
  const StepTally* tally = ba_->TallyFor(step);
  if (tally == nullptr) {
    return cert;
  }
  double total = 0;
  for (const StepTally::Entry& e : tally->entries()) {
    if (e.value != cert.block_hash) {
      continue;
    }
    auto it = round_votes_.find({step, e.pk});
    if (it == round_votes_.end()) {
      continue;  // Own vote stored at emission; should always be present.
    }
    cert.votes.push_back(it->second);
    total += static_cast<double>(e.weight);
    if (total > needed) {
      break;
    }
  }
  return cert;
}

// ---------------------------------------------------------------------------
// Block proposal (§6)
// ---------------------------------------------------------------------------

Block Node::BuildBlockProposal() {
  Block block;
  block.round = current_round_;
  block.prev_hash = ledger_.tip_hash();
  block.timestamp = sim_->now();
  block.proposer = key_.public_key;

  // Proposed seed for the next round: VRF(seed_r || r+1) (§5.2).
  Writer alpha;
  alpha.Fixed(ledger_.SeedForRound(current_round_));
  alpha.U64(current_round_ + 1);
  VrfResult seed_res = crypto_.vrf->Prove(key_, alpha.buffer());
  block.next_seed = SeedBytes::FromSpan(std::span<const uint8_t>(seed_res.output.data(), 32));
  block.next_seed_proof = seed_res.proof;

  // Fill with applicable transactions — the mempool's fee-priority,
  // nonce-sequenced draw against an overlay of current accounts — then pad
  // to the configured size.
  block.txns = mempool_.BuildBlock(ledger_.accounts(), params_.block_size_bytes);
  uint64_t used = static_cast<uint64_t>(block.txns.size()) * Transaction::kWireSize;
  if (used < params_.block_size_bytes) {
    block.padding_bytes = params_.block_size_bytes - used;
    Writer digest;
    digest.U64(current_round_);
    digest.Fixed(key_.public_key);
    block.padding_digest = Sha256::Hash(digest.buffer());
  }
  return block;
}

void Node::MaybePropose() {
  SortitionResult sort =
      RunSortition(*crypto_.vrf, key_, ctx_.seed, params_.tau_proposer, Role::kProposer,
                   current_round_, 0, SelfWeight(), ctx_.total_weight);
  Trace(TraceKind::kSortition, 0, sort.votes, kTraceRoleProposer);
  if (sort.votes == 0) {
    return;
  }
  if (obs_.blocks_proposed != nullptr) {
    obs_.blocks_proposed->Increment();
  }
  Block block = BuildBlockProposal();
  block.proposer_vrf = sort.hash;
  block.proposer_proof = sort.proof;

  auto priority_msg = std::make_shared<PriorityMessage>(
      MakePriorityMessage(key_, current_round_, sort.hash, sort.proof, sort.votes,
                          *crypto_.signer));
  auto block_msg = std::make_shared<BlockMessage>();
  block_msg->block = block;

  // Small priority message first so the network can discard lower-priority
  // blocks early, then the block itself. (The ablation skips the priority
  // message entirely.)
  if (params_.priority_gossip_enabled) {
    GossipMessage(priority_msg);
  }
  GossipMessage(block_msg);
  Trace(TraceKind::kProposalGossiped, 0, sort.votes, 0, HashPrefix(block.Hash()));
}

void Node::GossipMessage(const MessagePtr& msg) {
  // Start verifying our own outbound message on a worker before the gossip
  // agent's local delivery asks for the verdict; the inline lookup then joins
  // the in-flight computation instead of running it on the protocol thread.
  if (crypto_.pool != nullptr) {
    PrewarmMessage(msg, crypto_.pool);
  }
  gossip_->Gossip(msg);
}

// ---------------------------------------------------------------------------
// Voting (BaEnvironment)
// ---------------------------------------------------------------------------

void Node::CastVote(uint32_t step_code, double tau, const Hash256& value) {
  const RoundContext& ctx = in_recovery_ ? recovery_ctx_ : ctx_;
  const uint64_t vote_round = in_recovery_ ? recovery_code_ : current_round_;
  const uint64_t weight =
      in_recovery_ ? recovery_accounts_.WeightOf(key_.public_key) : SelfWeight();
  // Participant replacement (ablation): sortition normally draws a fresh
  // committee per (round, step); with replacement off, one step-0 draw
  // serves the whole round.
  const uint32_t sort_step = params_.participant_replacement_enabled ? step_code : 0;
  SortitionResult sort = RunSortition(*crypto_.vrf, key_, ctx.seed, tau, Role::kCommittee,
                                      vote_round, sort_step, weight, ctx.total_weight);
  if (sort.votes == 0) {
    return;  // Not on this step's committee.
  }
  if (obs_.votes_cast != nullptr) {
    obs_.votes_cast->Increment();
  }
  Trace(TraceKind::kSortition, step_code, sort.votes, kTraceRoleCommittee);
  EmitVotes(step_code, sort, value);
}

void Node::EmitVotes(uint32_t step_code, const SortitionResult& sort, const Hash256& value) {
  const RoundContext& ctx = in_recovery_ ? recovery_ctx_ : ctx_;
  const uint64_t vote_round = in_recovery_ ? recovery_code_ : current_round_;
  VoteMessage vote = MakeVote(key_, vote_round, step_code, sort.hash, sort.proof, ctx.prev_hash,
                              value, *crypto_.signer);
  GossipMessage(std::make_shared<VoteMessage>(vote));
}

// ---------------------------------------------------------------------------
// Message verification
// ---------------------------------------------------------------------------

uint64_t Node::VerifyVote(const VoteMessage& vote, const RoundContext& ctx) const {
  const bool final_step = vote.step == kStepFinal;
  const double tau = final_step ? params_.tau_final : params_.tau_step;
  const uint32_t sort_step = params_.participant_replacement_enabled ? vote.step : 0;
  auto compute = [&]() -> uint64_t {
    if (!crypto_.signer->Verify(vote.pk, vote.SignedBody(), vote.signature)) {
      return 0;
    }
    return VerifySortition(*crypto_.vrf, vote.pk, vote.sorthash, vote.sort_proof, ctx.seed, tau,
                           Role::kCommittee, vote.round, sort_step, ctx.weight_of(vote.pk),
                           ctx.total_weight);
  };
  if (crypto_.cache != nullptr) {
    return crypto_.cache->GetOrCompute(ContextKey(vote.DedupId(), ctx.seed, ctx.total_weight),
                                       compute);
  }
  return compute();
}

uint64_t Node::VerifyProposerSortition(const PublicKey& pk, const VrfOutput& sorthash,
                                       const VrfProof& proof, const RoundContext& ctx) const {
  auto compute = [&]() -> uint64_t {
    return VerifySortition(*crypto_.vrf, pk, sorthash, proof, ctx.seed, params_.tau_proposer,
                           Role::kProposer, ctx.round, 0, ctx.weight_of(pk), ctx.total_weight);
  };
  if (crypto_.cache != nullptr) {
    Writer w;
    w.Fixed(pk);
    w.Fixed(sorthash);
    w.U64(ctx.round);
    return crypto_.cache->GetOrCompute(
        ContextKey(Sha256::Hash(w.buffer()), ctx.seed, ctx.total_weight), compute);
  }
  return compute();
}

void Node::PrewarmMessage(const MessagePtr& msg, VerifyPool* pool) {
  if (pool == nullptr || pool->worker_count() == 0 || crypto_.cache == nullptr) {
    return;
  }
  VerificationCache* cache = crypto_.cache;
  const VrfBackend* vrf = crypto_.vrf;
  const SignerBackend* signer = crypto_.signer;

  if (auto txn = std::dynamic_pointer_cast<const TransactionMessage>(msg)) {
    // Payment signatures are context-free, so they can always be prewarmed;
    // the relay validator then hits the cache instead of verifying inline.
    tx_verifier_.Prewarm({txn->tx});
    return;
  }

  if (auto vote = std::dynamic_pointer_cast<const VoteMessage>(msg)) {
    // Recovery votes need session context and future/stale votes are not
    // verifiable yet (unknown seed) — both are skipped, exactly the cases the
    // inline path also cannot cache usefully.
    if ((vote->round & kRecoveryRoundBit) != 0 || vote->round != current_round_) {
      return;
    }
    const bool final_step = vote->step == kStepFinal;
    const double tau = final_step ? params_.tau_final : params_.tau_step;
    const uint32_t sort_step = params_.participant_replacement_enabled ? vote->step : 0;
    // Resolved on the protocol thread: the job must not touch the ledger.
    const uint64_t weight = ctx_.weight_of(vote->pk);
    const SeedBytes seed = ctx_.seed;
    const uint64_t total = ctx_.total_weight;
    const Hash256 key = ContextKey(vote->DedupId(), seed, total);
    if (cache->Contains(key)) {
      return;
    }
    pool->Submit([cache, key, vote, vrf, signer, seed, tau, sort_step, weight, total] {
      cache->Prewarm(key, [&]() -> uint64_t {
        if (!signer->Verify(vote->pk, vote->SignedBody(), vote->signature)) {
          return 0;
        }
        return VerifySortition(*vrf, vote->pk, vote->sorthash, vote->sort_proof, seed, tau,
                               Role::kCommittee, vote->round, sort_step, weight, total);
      });
    });
    return;
  }

  // Priority and block messages share the cached proposer-sortition check;
  // the rest of block validation (contents, seed VRF) stays on the protocol
  // thread, which is fine — the sortition proof is the expensive part.
  PublicKey pk;
  VrfOutput sorthash;
  VrfProof proof;
  uint64_t msg_round = 0;
  if (auto pri = std::dynamic_pointer_cast<const PriorityMessage>(msg)) {
    pk = pri->pk;
    sorthash = pri->sorthash;
    proof = pri->sort_proof;
    msg_round = pri->round;
  } else if (auto blk = std::dynamic_pointer_cast<const BlockMessage>(msg)) {
    pk = blk->block.proposer;
    sorthash = blk->block.proposer_vrf;
    proof = blk->block.proposer_proof;
    msg_round = blk->block.round;
    // Transaction signatures are context-free: start them regardless of the
    // round check below so ValidateBlockContents' batch verify hits the cache.
    tx_verifier_.Prewarm(blk->block.txns);
  } else {
    return;
  }
  if (msg_round != current_round_) {
    return;
  }
  const uint64_t weight = ctx_.weight_of(pk);
  const SeedBytes seed = ctx_.seed;
  const uint64_t total = ctx_.total_weight;
  const uint64_t round = ctx_.round;
  const double tau = params_.tau_proposer;
  Writer w;
  w.Fixed(pk);
  w.Fixed(sorthash);
  w.U64(round);
  const Hash256 key = ContextKey(Sha256::Hash(w.buffer()), seed, total);
  if (cache->Contains(key)) {
    return;
  }
  pool->Submit([cache, key, vrf, pk, sorthash, proof, seed, tau, round, weight, total] {
    cache->Prewarm(key, [&]() -> uint64_t {
      return VerifySortition(*vrf, pk, sorthash, proof, seed, tau, Role::kProposer, round, 0,
                             weight, total);
    });
  });
}

bool Node::ValidateBlockContents(const Block& block) const {
  if (block.round != current_round_ || block.prev_hash != ledger_.tip_hash()) {
    return false;
  }
  // Timestamp: greater than the previous block's and approximately current
  // (within an hour), §8.1.
  if (block.round > 1) {
    if (block.timestamp <= ledger_.Tip().timestamp) {
      return false;
    }
  }
  if (block.timestamp > sim_->now() + Hours(1) || block.timestamp + Hours(1) < sim_->now()) {
    return false;
  }
  // Proposer credentials.
  if (VerifyProposerSortition(block.proposer, block.proposer_vrf, block.proposer_proof, ctx_) ==
      0) {
    return false;
  }
  // Seed: VRF(seed_r || r+1) under the proposer's key (§5.2).
  Writer alpha;
  alpha.Fixed(ledger_.SeedForRound(current_round_));
  alpha.U64(current_round_ + 1);
  auto seed_out = crypto_.vrf->Verify(block.proposer, alpha.buffer(), block.next_seed_proof);
  if (!seed_out ||
      SeedBytes::FromSpan(std::span<const uint8_t>(seed_out->data(), 32)) != block.next_seed) {
    return false;
  }
  // Transactions: batch signature verification (fanned across the verify
  // pool, free for gossip-prewarmed entries) plus applicability via the
  // conflict-partitioned checker. Both verdicts are worker-count independent.
  if (!tx_verifier_.VerifyBatch(block.txns)) {
    return false;
  }
  if (!applier_.CheckBlock(block.txns, ledger_.accounts())) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Gossip plumbing
// ---------------------------------------------------------------------------

GossipVerdict Node::ValidateForRelay(const MessagePtr& msg) {
  if (auto rec = std::dynamic_pointer_cast<const RecoveryProposalMessage>(msg)) {
    return ValidateRecoveryProposal(*rec);
  }
  if (auto vote = std::dynamic_pointer_cast<const VoteMessage>(msg)) {
    if (vote->round & kRecoveryRoundBit) {
      if (!in_recovery_ || vote->round != recovery_code_) {
        // Cannot validate a recovery vote outside the matching session.
        return GossipVerdict::kDeliverOnly;
      }
      if (VerifyVote(*vote, recovery_ctx_) == 0) {
        return GossipVerdict::kReject;
      }
      auto key = std::make_tuple(vote->round, vote->step, vote->pk);
      if (relayed_votes_[key]++ > 0) {
        return GossipVerdict::kDeliverOnly;
      }
      return GossipVerdict::kRelay;
    }
    if (vote->round < current_round_) {
      return GossipVerdict::kReject;  // Stale.
    }
    if (vote->round > current_round_) {
      // Cannot verify sortition yet (unknown future seed); hold without
      // relaying to bound adversarial amplification.
      return GossipVerdict::kDeliverOnly;
    }
    uint64_t weight = VerifyVote(*vote, ctx_);
    if (weight == 0) {
      return GossipVerdict::kReject;
    }
    // Relay at most one message per (round, step, pk) (§8.4).
    auto key = std::make_tuple(vote->round, vote->step, vote->pk);
    if (relayed_votes_[key]++ > 0) {
      return GossipVerdict::kDeliverOnly;
    }
    return GossipVerdict::kRelay;
  }
  if (auto pri = std::dynamic_pointer_cast<const PriorityMessage>(msg)) {
    if (pri->round != current_round_) {
      return pri->round > current_round_ ? GossipVerdict::kDeliverOnly : GossipVerdict::kReject;
    }
    if (!crypto_.signer->Verify(pri->pk, pri->SignedBody(), pri->signature)) {
      return GossipVerdict::kReject;
    }
    uint64_t votes = VerifyProposerSortition(pri->pk, pri->sorthash, pri->sort_proof, ctx_);
    if (votes == 0) {
      return GossipVerdict::kReject;
    }
    // Relay only if this is the best priority seen so far (§6).
    Hash256 priority = ProposalPriority(pri->sorthash, votes);
    if (proposal_.have_best && !PriorityBeats(priority, proposal_.best_priority)) {
      return GossipVerdict::kDeliverOnly;
    }
    return GossipVerdict::kRelay;
  }
  if (auto blk = std::dynamic_pointer_cast<const BlockMessage>(msg)) {
    if (blk->block.round != current_round_) {
      return blk->block.round > current_round_ ? GossipVerdict::kDeliverOnly
                                               : GossipVerdict::kReject;
    }
    if (!ValidateBlockContents(blk->block)) {
      return GossipVerdict::kReject;
    }
    uint64_t votes =
        VerifyProposerSortition(blk->block.proposer, blk->block.proposer_vrf,
                                blk->block.proposer_proof, ctx_);
    if (votes == 0) {
      return GossipVerdict::kReject;
    }
    Hash256 priority = ProposalPriority(blk->block.proposer_vrf, votes);
    if (params_.priority_gossip_enabled && proposal_.have_best &&
        PriorityBeats(proposal_.best_priority, priority)) {
      return GossipVerdict::kDeliverOnly;  // A better proposer is known.
    }
    return GossipVerdict::kRelay;
  }
  if (auto txn = std::dynamic_pointer_cast<const TransactionMessage>(msg)) {
    // Relay payments with a valid signature and a nonce that is not already
    // spent; full applicability is checked at proposal time. The cached
    // verifier makes relay copies a lookup, not a signature check.
    if (!tx_verifier_.VerifyOne(txn->tx)) {
      return GossipVerdict::kReject;
    }
    if (txn->tx.nonce < ledger_.accounts().NextNonceOf(txn->tx.from)) {
      return GossipVerdict::kReject;  // Stale or replayed.
    }
    return GossipVerdict::kRelay;
  }
  // Block requests are point-to-point.
  return GossipVerdict::kDeliverOnly;
}

void Node::HandleMessage(const MessagePtr& msg) {
  if (halted_) {
    return;  // A crashed node processes nothing.
  }
  if (auto rec = std::dynamic_pointer_cast<const RecoveryProposalMessage>(msg)) {
    HandleRecoveryProposal(rec);
    return;
  }
  if (auto vote = std::dynamic_pointer_cast<const VoteMessage>(msg)) {
    if (vote->round & kRecoveryRoundBit) {
      MaybeJoinRecoverySession(vote->round);
      HandleVote(vote);
      return;
    }
    if (vote->round > current_round_) {
      RememberFutureMessage(vote->round, msg);
      NoteCatchupEvidence(vote->round);
      return;
    }
    if (vote->round == current_round_) {
      HandleVote(vote);
    }
    return;
  }
  if (auto pri = std::dynamic_pointer_cast<const PriorityMessage>(msg)) {
    if (pri->round > current_round_) {
      RememberFutureMessage(pri->round, msg);
      NoteCatchupEvidence(pri->round);
      return;
    }
    if (pri->round == current_round_) {
      HandlePriority(pri);
    }
    return;
  }
  if (auto blk = std::dynamic_pointer_cast<const BlockMessage>(msg)) {
    if (blk->block.round > current_round_) {
      RememberFutureMessage(blk->block.round, msg);
      NoteCatchupEvidence(blk->block.round);
      return;
    }
    if (blk->block.round == current_round_) {
      HandleBlock(blk);
    }
    return;
  }
  if (auto req = std::dynamic_pointer_cast<const BlockRequestMessage>(msg)) {
    HandleBlockRequest(req);
    return;
  }
  if (auto creq = std::dynamic_pointer_cast<const CatchupRequestMessage>(msg)) {
    HandleCatchupRequest(creq);
    return;
  }
  if (auto cresp = std::dynamic_pointer_cast<const CatchupResponseMessage>(msg)) {
    HandleCatchupResponse(cresp);
    return;
  }
  if (auto fmq = std::dynamic_pointer_cast<const FastSyncManifestRequest>(msg)) {
    HandleFastSyncManifestRequest(fmq);
    return;
  }
  if (auto fmr = std::dynamic_pointer_cast<const FastSyncManifestResponse>(msg)) {
    HandleFastSyncManifestResponse(fmr);
    return;
  }
  if (auto flq = std::dynamic_pointer_cast<const FastSyncLinksRequest>(msg)) {
    HandleFastSyncLinksRequest(flq);
    return;
  }
  if (auto flr = std::dynamic_pointer_cast<const FastSyncLinksResponse>(msg)) {
    HandleFastSyncLinksResponse(flr);
    return;
  }
  if (auto fcq = std::dynamic_pointer_cast<const FastSyncChunkRequest>(msg)) {
    HandleFastSyncChunkRequest(fcq);
    return;
  }
  if (auto fcr = std::dynamic_pointer_cast<const FastSyncChunkResponse>(msg)) {
    HandleFastSyncChunkResponse(fcr);
    return;
  }
  if (auto txn = std::dynamic_pointer_cast<const TransactionMessage>(msg)) {
    SubmitTransaction(txn->tx);
    return;
  }
}

void Node::HandleVote(const std::shared_ptr<const VoteMessage>& vote) {
  if (catchup_.active || fastsync_.active) {
    return;  // A stale BA* must not complete mid-catch-up.
  }
  if (vote->round & kRecoveryRoundBit) {
    if (!in_recovery_ || vote->round != recovery_code_ ||
        vote->prev_hash != recovery_ctx_.prev_hash) {
      return;
    }
    uint64_t weight = VerifyVote(*vote, recovery_ctx_);
    if (weight > 0) {
      recovery_ba_->OnVote(vote->step, vote->pk, weight, vote->value, vote->sorthash);
    }
    return;
  }
  // Votes binding to another chain are fork evidence, not countable votes.
  if (vote->prev_hash != ctx_.prev_hash) {
    fork_monitor_.RecordAlienVote(vote->round, vote->prev_hash);
    return;
  }
  uint64_t weight = VerifyVote(*vote, ctx_);
  if (weight == 0) {
    return;
  }
  if (obs_.votes_counted != nullptr) {
    obs_.votes_counted->Increment();
  }
  round_votes_.emplace(std::make_pair(vote->step, vote->pk), *vote);
  ba_->OnVote(vote->step, vote->pk, weight, vote->value, vote->sorthash);
}

void Node::HandlePriority(const std::shared_ptr<const PriorityMessage>& msg) {
  if (catchup_.active || fastsync_.active) {
    return;
  }
  if (!crypto_.signer->Verify(msg->pk, msg->SignedBody(), msg->signature)) {
    return;
  }
  uint64_t votes = VerifyProposerSortition(msg->pk, msg->sorthash, msg->sort_proof, ctx_);
  if (votes == 0) {
    return;
  }
  if (proposal_.banned_proposers.count(msg->pk)) {
    return;
  }
  Hash256 priority = ProposalPriority(msg->sorthash, votes);
  if (!proposal_.have_best || PriorityBeats(priority, proposal_.best_priority)) {
    proposal_.have_best = true;
    proposal_.best_priority = priority;
    proposal_.best_pk = msg->pk;
    proposal_.best_priority_at = sim_->now();
  }
}

void Node::HandleBlock(const std::shared_ptr<const BlockMessage>& msg) {
  if (catchup_.active || fastsync_.active) {
    return;
  }
  const Block& block = msg->block;
  if (!ValidateBlockContents(block)) {
    return;
  }
  uint64_t votes = VerifyProposerSortition(block.proposer, block.proposer_vrf,
                                           block.proposer_proof, ctx_);
  if (votes == 0) {
    return;
  }
  Hash256 hash = block.Hash();
  Hash256 priority = ProposalPriority(block.proposer_vrf, votes);
  if (obs_.blocks_validated != nullptr) {
    obs_.blocks_validated->Increment();
  }

  if (proposal_.banned_proposers.count(block.proposer)) {
    return;  // Known equivocator this round.
  }
  // An equivocating proposer sends different blocks to different peers. If we
  // see two distinct blocks from one proposer before agreement starts, we
  // discard both and proceed with the empty block right away rather than
  // waiting out lambda_block (§10.4's optimization).
  auto existing = proposal_.block_hash_by_proposer.find(block.proposer);
  if (existing != proposal_.block_hash_by_proposer.end() && existing->second != hash) {
    proposal_.blocks_by_hash.erase(existing->second);
    proposal_.block_hash_by_proposer.erase(existing);
    proposal_.banned_proposers.insert(block.proposer);
    bool was_best = proposal_.have_best && proposal_.best_pk == block.proposer;
    if (was_best) {
      proposal_.have_best = false;  // Forget the equivocator's priority.
    }
    if (phase_ == Phase::kWaitBlock && was_best) {
      StartAgreement(empty_hash_);
    }
    return;
  }

  proposal_.blocks_by_hash.emplace(hash, block);
  proposal_.block_hash_by_proposer[block.proposer] = hash;
  proposal_.block_seen_at.emplace(hash, sim_->now());
  {
    // First valid receipt of this proposal: join against the originator's
    // gossip stamp (carried in-process on the shared message, over TCP in the
    // codec envelope) for true propagation latency.
    const TraceContext& tc = msg->trace_context();
    Trace(TraceKind::kBlockReceived, 0, tc.stamped() ? tc.origin : kTraceNoOrigin,
          tc.emitted_at, HashPrefix(hash));
  }

  // The block implies its own priority message.
  if (!proposal_.have_best || PriorityBeats(priority, proposal_.best_priority)) {
    proposal_.have_best = true;
    proposal_.best_priority = priority;
    proposal_.best_pk = block.proposer;
    proposal_.best_priority_at = sim_->now();
  }

  if (phase_ == Phase::kWaitBlock && proposal_.have_best &&
      proposal_.best_pk == block.proposer) {
    StartAgreement(hash);
  } else if (phase_ == Phase::kFetchBlock && hash == ba_result_.value) {
    TryFinishRound();
  }
}

void Node::HandleBlockRequest(const std::shared_ptr<const BlockRequestMessage>& msg) {
  // Serve from this round's proposals or from the chain.
  std::optional<Block> found;
  auto it = proposal_.blocks_by_hash.find(msg->block_hash);
  if (it != proposal_.blocks_by_hash.end()) {
    found = it->second;
  } else {
    found = ledger_.BlockByHash(msg->block_hash);
  }
  if (!found) {
    return;
  }
  auto reply = std::make_shared<BlockMessage>();
  reply->block = *found;
  gossip_->SendTo(msg->requester, reply);
}

// ---------------------------------------------------------------------------
// Live catch-up (§8.3): a lagging or restarted node fetches block+certificate
// batches from peers instead of waiting for the chain to come to it.
// ---------------------------------------------------------------------------

void Node::NoteCatchupEvidence(uint64_t round) {
  if (halted_) {
    return;
  }
  if (fastsync_.active) {
    // Same rule as below: gossip evidence may only widen the target.
    if (round > 0 && round - 1 > fastsync_.target_round) {
      fastsync_.target_round = round - 1;
    }
    return;
  }
  if (catchup_.active) {
    // Already fetching; only widen the target. The target always comes from
    // gossip evidence (a vote/block for `round` implies rounds < round are
    // settled somewhere), never from a responder's self-reported tip — a
    // Byzantine responder must not be able to inflate it.
    if (round > 0 && round - 1 > catchup_.target_round) {
      catchup_.target_round = round - 1;
    }
    return;
  }
  if (round > current_round_ + params_.catchup_trigger_lead) {
    // A genesis-fresh node (nothing to lose, everything to fetch) prefers
    // checkpoint fast-sync when enabled; everyone else block-catches-up.
    if (params_.fastsync_enabled && ledger_.chain_length() == 1) {
      StartFastSync(round - 1);
    } else {
      StartCatchup(round - 1);
    }
  }
}

void Node::StartCatchup(uint64_t target_round) {
  ++catchup_session_;
  ++sched_epoch_;  // Kill BA*/proposal timers for the round we are leaving.
  // Catch-up preempts an in-progress recovery session: certificate-backed
  // evidence of rounds ahead means the network moved on without us, so
  // fetching that chain beats re-agreeing on a stale suffix — and a stalled
  // recovery (stragglers hung at different rounds never form a committee)
  // must not lock the node out of catch-up forever.
  in_recovery_ = false;
  phase_ = Phase::kCatchup;
  catchup_.active = true;
  catchup_.target_round = target_round;
  catchup_.started_at_round = ledger_.next_round() - 1;
  catchup_.attempt = 0;
  catchup_.empty_streak = 0;
  catchup_.blocked_until = 0;
  catchup_.peers.clear();
  catchup_.peer_cursor = 0;
  catchup_.inflight.clear();
  catchup_.ready.clear();
  if (obs_.catchup_sessions != nullptr) {
    obs_.catchup_sessions->Increment();
  }
  Trace(TraceKind::kCatchupStart, 0, target_round);
  PumpCatchup();
}

void Node::PumpCatchup() {
  if (!catchup_.active || halted_) {
    return;
  }
  // Apply every ready batch that starts at (or before) the next needed round.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = catchup_.ready.begin(); it != catchup_.ready.end(); ++it) {
      if (it->first > ledger_.next_round()) {
        continue;
      }
      auto resp = it->second;
      catchup_.ready.erase(it);
      uint64_t applied = 0;
      if (!ApplyCatchupResponse(*resp, &applied)) {
        if (obs_.catchup_bad_batches != nullptr) {
          obs_.catchup_bad_batches->Increment();
        }
        FailCatchupAttempt();  // Rotates to a different peer with backoff.
        return;
      }
      if (applied > 0) {
        catchup_.attempt = 0;  // Progress resets the failure streaks.
        catchup_.empty_streak = 0;
      }
      progressed = true;
      break;  // Iterator invalidated; rescan.
    }
  }
  if (ledger_.next_round() > catchup_.target_round) {
    FinishCatchup();
    return;
  }
  if (sim_->now() < catchup_.blocked_until) {
    return;  // Backing off; the scheduled wakeup will re-pump.
  }
  while (catchup_.inflight.size() < params_.catchup_max_inflight) {
    uint64_t from = CatchupFrontier();
    if (from > catchup_.target_round) {
      break;  // Everything up to the target is applied, inflight, or ready.
    }
    SendCatchupRequest(from);
    if (catchup_.inflight.find(from) == catchup_.inflight.end()) {
      break;  // No peers available; evidence will retrigger later.
    }
  }
}

uint64_t Node::CatchupFrontier() const {
  // Lowest round not yet applied and not covered by an inflight request's
  // window or a ready batch. Sharded peers may answer with partial batches;
  // the frontier then lands exactly on the gap so the next request (to a
  // different peer) fills it.
  uint64_t frontier = ledger_.next_round();
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& [from, pending] : catchup_.inflight) {
      if (frontier >= from && frontier < from + pending.limit) {
        frontier = from + pending.limit;
        moved = true;
      }
    }
    for (const auto& [from, resp] : catchup_.ready) {
      if (frontier >= from && frontier < from + resp->entries.size()) {
        frontier = from + resp->entries.size();
        moved = true;
      }
    }
  }
  return frontier;
}

NodeId Node::NextCatchupPeer() {
  if (catchup_.peers.empty()) {
    // Draw from every addressable node (§9 address book), not just gossip
    // neighbours: certificates may be sharded across the network, and the
    // shard class holding the frontier round is not guaranteed to appear in
    // a small neighbour set.
    size_t n = gossip_->network_size();
    for (NodeId p = 0; p < n; ++p) {
      if (p != id_) {
        catchup_.peers.push_back(p);
      }
    }
    if (catchup_.peers.empty()) {
      catchup_.peers = gossip_->neighbors();
    }
    catchup_rng_.Shuffle(&catchup_.peers);
    catchup_.peer_cursor = 0;
  }
  NodeId peer = catchup_.peers[catchup_.peer_cursor % catchup_.peers.size()];
  ++catchup_.peer_cursor;
  return peer;
}

void Node::SendCatchupRequest(uint64_t from_round) {
  if (catchup_.peers.empty() && gossip_->neighbors().empty()) {
    return;
  }
  NodeId peer = NextCatchupPeer();
  auto req = std::make_shared<CatchupRequestMessage>();
  req->requester = id_;
  req->seq = catchup_seq_++;
  req->from_round = from_round;
  req->limit = params_.catchup_batch_limit;
  catchup_.inflight[from_round] = CatchupState::Pending{peer, req->seq, req->limit};
  if (obs_.catchup_requests != nullptr) {
    obs_.catchup_requests->Increment();
  }
  gossip_->SendTo(peer, req);
  // Per-request timeout: if the answer never lands, drop the slot and rotate.
  uint64_t session = catchup_session_;
  uint64_t seq = req->seq;
  sim_->Schedule(params_.catchup_timeout, [this, session, seq, from_round] {
    if (halted_ || !catchup_.active || catchup_session_ != session) {
      return;
    }
    auto it = catchup_.inflight.find(from_round);
    if (it == catchup_.inflight.end() || it->second.seq != seq) {
      return;  // Answered (or superseded) in time.
    }
    catchup_.inflight.erase(it);
    if (obs_.catchup_timeouts != nullptr) {
      obs_.catchup_timeouts->Increment();
    }
    FailCatchupAttempt();
  });
}

void Node::FailCatchupAttempt() {
  if (!catchup_.active) {
    return;
  }
  ++catchup_.attempt;
  if (obs_.catchup_rotations != nullptr) {
    obs_.catchup_rotations->Increment();
  }
  if (catchup_.attempt > 10) {
    // Evidence may have been fabricated (an unreachable target keeps every
    // peer "failing"); abort rather than wedge. Fresh evidence retriggers.
    AbortCatchup();
    return;
  }
  // Exponential backoff with jitter before asking the next peer.
  SimTime backoff = params_.catchup_backoff_base;
  for (uint32_t i = 1; i < catchup_.attempt && backoff < params_.catchup_backoff_max; ++i) {
    backoff *= 2;
  }
  if (backoff > params_.catchup_backoff_max) {
    backoff = params_.catchup_backoff_max;
  }
  backoff += static_cast<SimTime>(
      catchup_rng_.UniformU64(static_cast<uint64_t>(params_.catchup_backoff_base)));
  catchup_.blocked_until = sim_->now() + backoff;
  uint64_t session = catchup_session_;
  sim_->Schedule(backoff, [this, session] {
    if (halted_ || !catchup_.active || catchup_session_ != session) {
      return;
    }
    catchup_.blocked_until = 0;
    PumpCatchup();
  });
}

void Node::HandleCatchupRequest(const std::shared_ptr<const CatchupRequestMessage>& msg) {
  auto resp = BuildCatchupResponse(*msg);
  if (resp == nullptr) {
    return;
  }
  if (obs_.catchup_served != nullptr) {
    obs_.catchup_served->Increment();
  }
  gossip_->SendTo(msg->requester, resp);
}

std::shared_ptr<CatchupResponseMessage> Node::BuildCatchupResponse(
    const CatchupRequestMessage& req) const {
  auto resp = std::make_shared<CatchupResponseMessage>();
  resp->responder = id_;
  resp->seq = req.seq;
  resp->from_round = req.from_round;
  resp->tip_round = ledger_.chain_length() - 1;
  uint32_t limit = req.limit == 0 ? 1 : req.limit;
  if (limit > 64) {
    limit = 64;  // Bound the response a single request can make us build.
  }
  uint64_t r = req.from_round < 1 ? 1 : req.from_round;
  uint64_t last_served = 0;
  const uint64_t base = ledger_.base_round();
  while (r < ledger_.chain_length() && resp->entries.size() < limit) {
    auto it = certificates_.find(r);
    if (it != certificates_.end() && r > base) {
      resp->entries.push_back(
          CatchupResponseMessage::Entry{ledger_.BlockAtRound(r), it->second});
      last_served = r;
      ++r;
      continue;
    }
    // Shard gap in memory — or a round at/below our compacted base, whose
    // block the ledger no longer holds: fall through to the durable log,
    // which keeps block and certificate for every retained round (the index
    // makes this an O(1) seek, not a segment scan). Rounds compaction pruned
    // come back empty, so the batch honestly ends where our history does.
    std::optional<CatchupResponseMessage::Entry> from_disk;
    if (store_ != nullptr) {
      if (auto stored = store_->ReadRound(r); stored.has_value() && !stored->cert.empty()) {
        auto cert = Certificate::Deserialize(stored->cert);
        auto block = Block::Deserialize(stored->block);
        if (cert.has_value() && block.has_value()) {
          from_disk = CatchupResponseMessage::Entry{std::move(*block), std::move(*cert)};
        }
      }
    }
    if (!from_disk.has_value()) {
      break;  // Sharded/pruned storage: serve the prefix we hold (partial batch).
    }
    resp->entries.push_back(std::move(*from_disk));
    last_served = r;
    ++r;
  }
  // Attach the highest final-step certificate covering the served prefix so
  // the requester can mark finality (final blocks are totally ordered, §8.3).
  for (auto it = final_certificates_.rbegin(); it != final_certificates_.rend(); ++it) {
    if (it->first <= last_served) {
      resp->final_cert = it->second;
      break;
    }
  }
  return resp;
}

void Node::HandleCatchupResponse(const std::shared_ptr<const CatchupResponseMessage>& msg) {
  if (halted_ || !catchup_.active) {
    return;
  }
  auto it = catchup_.inflight.find(msg->from_round);
  if (it == catchup_.inflight.end() || it->second.seq != msg->seq ||
      it->second.peer != msg->responder) {
    return;  // Unsolicited, stale, or spoofed; only the asked peer may answer.
  }
  catchup_.inflight.erase(it);
  if (msg->entries.empty()) {
    // The peer answered but had nothing for this window — under sharded
    // certificate storage that is routine (wrong shard class), so rotate to
    // the next peer immediately instead of paying exponential backoff: the
    // round-trip itself paces the loop, and backing off here loses the race
    // against a live network advancing one round per agreement interval.
    // The streak bound still catches fabricated evidence (a target beyond
    // every honest tip makes every peer answer empty forever).
    ++catchup_.empty_streak;
    if (obs_.catchup_rotations != nullptr) {
      obs_.catchup_rotations->Increment();
    }
    if (catchup_.empty_streak > 32 + catchup_.peers.size()) {
      AbortCatchup();
      return;
    }
    PumpCatchup();
    return;
  }
  catchup_.ready[msg->from_round] = msg;
  PumpCatchup();
}

bool Node::ApplyCatchupResponse(const CatchupResponseMessage& resp, uint64_t* applied) {
  for (const CatchupResponseMessage::Entry& e : resp.entries) {
    uint64_t next = ledger_.next_round();
    if (e.block.round < next) {
      continue;  // Overlap with already-applied rounds is harmless.
    }
    if (e.block.round > next) {
      break;  // Gap inside the batch; stop at the contiguous prefix.
    }
    if (e.cert.round != e.block.round || e.cert.block_hash != e.block.Hash()) {
      return false;
    }
    RoundContext ctx = CatchupContext(next);
    if (!ValidateCertificate(e.cert, ctx, params_, *crypto_.vrf, *crypto_.signer)) {
      return false;
    }
    ConsensusKind kind =
        e.cert.step == kStepFinal ? ConsensusKind::kFinal : ConsensusKind::kTentative;
    if (!ledger_.Append(e.block, kind)) {
      return false;
    }
    if (kind == ConsensusKind::kFinal) {
      for (uint64_t r = 1; r < e.cert.round; ++r) {
        ledger_.MarkFinal(r);
      }
    }
    if (shard_count_ <= 1 || (e.cert.round % shard_count_) == (id_ % shard_count_)) {
      certificates_[e.cert.round] = e.cert;
    }
    StreamRoundToStore(e.cert.round, kind, &e.cert, nullptr);
    mempool_.ObserveCommitted(e.block.txns, ledger_.accounts());
    ++*applied;
    if (obs_.catchup_blocks != nullptr) {
      obs_.catchup_blocks->Increment();
    }
  }
  if (resp.final_cert.has_value()) {
    const Certificate& fc = *resp.final_cert;
    if (fc.round > ledger_.base_round() && fc.round >= 1 && fc.round < ledger_.next_round()) {
      if (fc.step != kStepFinal) {
        return false;
      }
      const Block& covered = ledger_.BlockAtRound(fc.round);
      if (fc.block_hash != covered.Hash()) {
        return false;
      }
      RoundContext ctx;
      ctx.round = fc.round;
      ctx.seed = ledger_.SortitionSeed(fc.round, params_.seed_refresh_interval);
      ctx.prev_hash = covered.prev_hash;
      ctx.total_weight = ledger_.total_weight();
      const Ledger* ledger = &ledger_;
      ctx.weight_of = [ledger](const PublicKey& pk) { return ledger->WeightOf(pk); };
      if (!ValidateCertificate(fc, ctx, params_, *crypto_.vrf, *crypto_.signer)) {
        return false;
      }
      for (uint64_t r = 1; r <= fc.round; ++r) {
        ledger_.MarkFinal(r);
      }
      if (shard_count_ <= 1 || (fc.round % shard_count_) == (id_ % shard_count_)) {
        final_certificates_[fc.round] = fc;
      }
      if (store_ != nullptr) {
        store_->AppendFinalUpgrade(fc.round, fc.Serialize());
      }
    }
    // A final cert beyond what we applied is simply ignored (not an error):
    // a partial batch legitimately undershoots the responder's final round.
  }
  if (*applied > 0) {
    Trace(TraceKind::kCatchupBatch, 0, *applied, resp.responder);
    MaybeCheckpoint();
  }
  return true;
}

RoundContext Node::CatchupContext(uint64_t round) const {
  RoundContext ctx;
  ctx.round = round;
  ctx.seed = ledger_.SortitionSeed(round, params_.seed_refresh_interval);
  ctx.prev_hash = ledger_.tip_hash();
  ctx.total_weight = ledger_.total_weight();
  const Ledger* ledger = &ledger_;
  ctx.weight_of = [ledger](const PublicKey& pk) { return ledger->WeightOf(pk); };
  return ctx;
}

void Node::FinishCatchup() {
  uint64_t gained = ledger_.next_round() - 1 - catchup_.started_at_round;
  catchup_.active = false;
  catchup_.inflight.clear();
  catchup_.ready.clear();
  ++catchup_session_;  // Orphans any pending timeout/backoff lambdas.
  ++catchups_completed_;
  hung_ = false;
  fork_monitor_.Prune(ledger_.HighestFinalRound().value_or(0));
  if (obs_.catchup_completed != nullptr) {
    obs_.catchup_completed->Increment();
  }
  Trace(TraceKind::kCatchupDone, 0, gained);
  // Rejoin live BA* at the new tip; buffered tip-round traffic replays there.
  StartRound(ledger_.next_round());
}

void Node::AbortCatchup() {
  catchup_.active = false;
  catchup_.inflight.clear();
  catchup_.ready.clear();
  ++catchup_session_;
  if (obs_.catchup_aborted != nullptr) {
    obs_.catchup_aborted->Increment();
  }
  StartRound(ledger_.next_round());
}

// ---------------------------------------------------------------------------
// Crash/restart support
// ---------------------------------------------------------------------------

NodeSnapshot Node::Snapshot() const {
  NodeSnapshot snap;
  snap.shard_count = shard_count_;
  for (uint64_t r = ledger_.base_round() + 1; r < ledger_.chain_length(); ++r) {
    snap.blocks.push_back(ledger_.BlockAtRound(r));
    snap.kinds.push_back(static_cast<uint8_t>(ledger_.ConsensusAtRound(r)));
  }
  for (const auto& [round, cert] : certificates_) {
    snap.certificates.push_back(cert);
  }
  for (const auto& [round, cert] : final_certificates_) {
    snap.final_certificates.push_back(cert);
  }
  return snap;
}

bool Node::RestoreSnapshot(const NodeSnapshot& snapshot) {
  if (ledger_.chain_length() != 1 || snapshot.blocks.size() != snapshot.kinds.size()) {
    return false;  // Restore only into a genesis-fresh node.
  }
  for (size_t i = 0; i < snapshot.blocks.size(); ++i) {
    ConsensusKind kind = static_cast<ConsensusKind>(snapshot.kinds[i]);
    if (!ledger_.Append(snapshot.blocks[i], kind)) {
      return false;
    }
  }
  shard_count_ = snapshot.shard_count == 0 ? 1 : snapshot.shard_count;
  for (const Certificate& cert : snapshot.certificates) {
    certificates_[cert.round] = cert;
  }
  for (const Certificate& cert : snapshot.final_certificates) {
    final_certificates_[cert.round] = cert;
  }
  return true;
}

bool Node::RestoreFromStore(BlockStore* store) {
  if (store == nullptr || ledger_.chain_length() != 1) {
    return false;  // Restore only into a genesis-fresh node.
  }
  store_ = store;
  // Checkpoint ladder: restoring from the newest intact checkpoint skips the
  // replay of everything below it. A corrupt or mismatched checkpoint file is
  // never loaded silently — each candidate is fully validated (tip hash,
  // fingerprint, genesis binding), and on failure we step down to the next
  // older one, bottoming out at plain WAL replay from genesis.
  uint64_t start = 1;
  if (ledger_.lookback_rounds() == 0) {
    auto ckpts = store->checkpoints();  // Oldest first.
    for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
      auto payload = store->ReadCheckpointPayload(it->round);
      if (payload == nullptr) {
        continue;
      }
      std::optional<CheckpointData> data = CheckpointData::Deserialize(*payload);
      if (!data.has_value() || data->manifest.round != it->round ||
          data->manifest.genesis_hash != genesis_hash_) {
        continue;
      }
      std::optional<Block> tip = Block::Deserialize(data->tip_block);
      if (!tip.has_value() || tip->round != data->manifest.round ||
          tip->Hash() != data->manifest.tip_hash) {
        continue;
      }
      AccountTable table;
      Reader ar(data->accounts);
      if (!table.DeserializeFrom(&ar) || !ar.AtEnd() ||
          table.StateFingerprint() != data->manifest.fingerprint) {
        continue;
      }
      if (!ledger_.InstallCheckpoint(*tip, std::move(table), data->seed_base,
                                     data->seeds)) {
        continue;
      }
      start = data->manifest.round + 1;
      last_checkpoint_round_ = data->manifest.round;
      break;
    }
  }
  if (start == 1 && store->first_retained_round() > 1) {
    // The log was compacted below some checkpoint but no checkpoint loaded:
    // the prefix is unreconstructible. Refuse rather than restore a chain
    // with a hole in it.
    return false;
  }
  uint64_t stop = 0;  // First round that failed validation (0 = none).
  for (uint64_t r = start; r < store->next_round(); ++r) {
    std::optional<StoredRound> stored = store->ReadRound(r);
    if (!stored.has_value()) {
      stop = r;
      break;
    }
    std::optional<Block> block = Block::Deserialize(stored->block);
    if (!block.has_value() || block->round != r) {
      stop = r;
      break;
    }
    Hash256 hash = block->Hash();
    // Validate certificates against the chain reconstructed so far — the
    // log is not trusted blindly; a record only counts if its certificate
    // proves the round the way a catch-up batch would (§8.3). Rounds logged
    // without a certificate (recovery-adopted suffixes) are accepted on
    // chain structure alone: Append still checks parent hash and round.
    RoundContext ctx = CatchupContext(r);
    std::optional<Certificate> cert;
    if (!stored->cert.empty()) {
      cert = Certificate::Deserialize(stored->cert);
      if (!cert.has_value() || cert->round != r || cert->block_hash != hash ||
          !ValidateCertificate(*cert, ctx, params_, *crypto_.vrf, *crypto_.signer)) {
        stop = r;
        break;
      }
    }
    std::optional<Certificate> final_cert;
    if (!stored->final_cert.empty()) {
      final_cert = Certificate::Deserialize(stored->final_cert);
      if (!final_cert.has_value() || final_cert->round != r ||
          final_cert->step != kStepFinal || final_cert->block_hash != hash ||
          !ValidateCertificate(*final_cert, ctx, params_, *crypto_.vrf, *crypto_.signer)) {
        stop = r;
        break;
      }
    }
    ConsensusKind kind = static_cast<ConsensusKind>(stored->kind);
    if (!ledger_.Append(*block, kind)) {
      stop = r;
      break;
    }
    if (cert.has_value() &&
        (shard_count_ <= 1 || (r % shard_count_) == (id_ % shard_count_))) {
      certificates_[r] = *cert;
    }
    if (final_cert.has_value()) {
      for (uint64_t f = 1; f <= r; ++f) {
        ledger_.MarkFinal(f);
      }
      if (shard_count_ <= 1 || (r % shard_count_) == (id_ % shard_count_)) {
        final_certificates_[r] = *final_cert;
      }
    }
  }
  if (stop != 0) {
    // Disk and memory must agree after restore: cut the log back to the
    // prefix that validated, so the next AppendRound lines up.
    store->TruncateSuffix(stop);
  }
  fork_monitor_.Prune(ledger_.HighestFinalRound().value_or(0));
  return true;
}

void Node::Halt() {
  halted_ = true;
  ++sched_epoch_;  // Dead: every pending lambda must find a changed epoch...
  ++catchup_session_;  // ...or session, and the halted_ flag backstops both.
  phase_ = Phase::kIdle;
  in_recovery_ = false;
  catchup_.active = false;
  catchup_.inflight.clear();
  catchup_.ready.clear();
  ++fastsync_session_;
  fastsync_.active = false;
  fastsync_.links.clear();
  fastsync_.payload.clear();
}

// ---------------------------------------------------------------------------
// Fork recovery (§8.2)
// ---------------------------------------------------------------------------

uint64_t Node::RecoveryCode(uint32_t attempt) const {
  // The window is pinned when the session is first entered (at an aligned
  // clock boundary) so retries stay in the same code space on every node
  // even when their attempt timers drift across a boundary.
  return kRecoveryRoundBit | (recovery_window_ << 8) | attempt;
}

void Node::ScheduleRecoveryCheck() {
  // Loosely synchronized clocks: every node wakes at multiples of the
  // recovery interval and joins a recovery session if it is stuck or has
  // observed fork evidence.
  SimTime next = (sim_->now() / params_.recovery_interval + 1) * params_.recovery_interval;
  sim_->ScheduleAt(next, [this] {
    if (halted_) {
      return;  // A crashed node must stop rescheduling itself.
    }
    if (!in_recovery_ && !catchup_.active && !fastsync_.active &&
        (hung_ || fork_monitor_.ForkSuspected())) {
      recovery_attempt_ = 0;
      recovery_window_ = static_cast<uint64_t>(sim_->now() / params_.recovery_interval);
      EnterRecovery();
    }
    ScheduleRecoveryCheck();
  });
}

void Node::MaybeJoinRecoverySession(uint64_t code) {
  if (halted_ || catchup_.active || fastsync_.active) {
    return;  // Catch-up owns the node until it finishes or aborts.
  }
  if (!hung_ && !fork_monitor_.ForkSuspected() && !in_recovery_) {
    return;  // Healthy nodes ignore recovery chatter.
  }
  if (in_recovery_ && code <= recovery_code_) {
    return;  // Already in this session or a newer one.
  }
  // Sanity: the claimed window must be near our clock (loose synchrony).
  uint64_t window = (code & ~kRecoveryRoundBit) >> 8;
  uint64_t my_window = static_cast<uint64_t>(sim_->now() / params_.recovery_interval);
  if (window > my_window + 1 || window + 1 < my_window) {
    return;
  }
  recovery_window_ = window;
  recovery_attempt_ = static_cast<uint32_t>(code & 0xff);
  EnterRecovery();
}

void Node::EnterRecovery() {
  in_recovery_ = true;
  phase_ = Phase::kRecovery;
  ++sched_epoch_;
  recovery_code_ = RecoveryCode(recovery_attempt_);

  // Anchor at the last common final round: finals are totally ordered, so
  // every honest node shares this prefix (and its seed and weights).
  recovery_final_round_ = ledger_.HighestFinalRound().value_or(0);
  const Hash256 anchor = ledger_.BlockAtRound(recovery_final_round_).Hash();
  recovery_accounts_ = ledger_.AccountsAtRound(recovery_final_round_);

  // A fresh seed per attempt: H(seed_f || code), "applying a hash function to
  // the seed each time to produce a different set of proposers and committee
  // members".
  Writer w;
  w.Fixed(ledger_.SeedForRound(recovery_final_round_));
  w.U64(recovery_code_);
  Hash256 seed_hash = Sha256::Hash(w.buffer());

  recovery_ctx_ = RoundContext{};
  recovery_ctx_.round = recovery_code_;
  recovery_ctx_.seed = SeedBytes::FromSpan(seed_hash.span());
  recovery_ctx_.prev_hash = anchor;
  recovery_ctx_.total_weight = recovery_accounts_.total_weight();
  const AccountTable* accounts = &recovery_accounts_;
  recovery_ctx_.weight_of = [accounts](const PublicKey& pk) { return accounts->WeightOf(pk); };

  // Fallback value: an empty block directly extending the final prefix
  // (agreeing on it truncates every fork back to the common ancestor).
  recovery_empty_ = Block::MakeEmpty(recovery_final_round_ + 1, anchor,
                                     ledger_.SeedForRound(recovery_final_round_ + 1));
  recovery_empty_hash_ = recovery_empty_.Hash();

  recovery_candidates_.clear();
  have_best_recovery_ = false;
  prev_recovery_ba_ = std::move(recovery_ba_);
  recovery_ba_ = std::make_unique<BaStar>(
      params_, this, [this](const BaResult& result) { OnRecoveryBaComplete(result); });
  recovery_ba_->set_observer([this](const BaStepEvent& event) { ObserveBaStep(event); });
  Trace(TraceKind::kRecoveryEnter, 0, recovery_attempt_);

  MaybeProposeRecovery();

  ScheduleAfter(params_.lambda_priority + params_.lambda_stepvar, [this] {
    if (in_recovery_ && !recovery_ba_->started()) {
      StartRecoveryAgreement();
    }
  });
}

void Node::MaybeProposeRecovery() {
  SortitionResult sort = RunSortition(
      *crypto_.vrf, key_, recovery_ctx_.seed, params_.tau_proposer, Role::kRecovery,
      recovery_code_, 0, recovery_accounts_.WeightOf(key_.public_key),
      recovery_ctx_.total_weight);
  if (sort.votes == 0) {
    return;
  }
  // Propose an empty block extending the longest fork this node has seen —
  // its own chain (which includes all final blocks).
  auto msg = std::make_shared<RecoveryProposalMessage>();
  msg->pk = key_.public_key;
  msg->code = recovery_code_;
  msg->sorthash = sort.hash;
  msg->sort_proof = sort.proof;
  for (uint64_t r = recovery_final_round_ + 1; r < ledger_.chain_length(); ++r) {
    msg->suffix.push_back(ledger_.BlockAtRound(r));
  }
  msg->block = Block::MakeEmpty(ledger_.next_round(), ledger_.tip_hash(),
                                ledger_.SeedForRound(ledger_.next_round()));
  msg->signature = crypto_.signer->Sign(key_, msg->SignedBody());
  GossipMessage(msg);
}

GossipVerdict Node::ValidateRecoveryProposal(const RecoveryProposalMessage& msg) {
  if (!in_recovery_ || msg.code != recovery_code_) {
    return GossipVerdict::kDeliverOnly;  // Can't judge it; let it pass once.
  }
  if (!crypto_.signer->Verify(msg.pk, msg.SignedBody(), msg.signature)) {
    return GossipVerdict::kReject;
  }
  uint64_t votes = VerifySortition(*crypto_.vrf, msg.pk, msg.sorthash, msg.sort_proof,
                                   recovery_ctx_.seed, params_.tau_proposer, Role::kRecovery,
                                   recovery_code_, 0, recovery_ctx_.weight_of(msg.pk),
                                   recovery_ctx_.total_weight);
  if (votes == 0) {
    return GossipVerdict::kReject;
  }
  // The proposed chain must link from our final prefix and be at least as
  // long as the chain we already have.
  Hash256 prev = recovery_ctx_.prev_hash;
  uint64_t round = recovery_final_round_;
  for (const Block& b : msg.suffix) {
    if (b.prev_hash != prev || b.round != round + 1) {
      return GossipVerdict::kReject;
    }
    prev = b.Hash();
    round = b.round;
  }
  if (msg.block.prev_hash != prev || msg.block.round != round + 1 || !msg.block.is_empty) {
    return GossipVerdict::kReject;
  }
  if (msg.block.round < ledger_.next_round()) {
    return GossipVerdict::kDeliverOnly;  // Shorter than our chain: not for us.
  }
  return GossipVerdict::kRelay;
}

void Node::HandleRecoveryProposal(const std::shared_ptr<const RecoveryProposalMessage>& msg) {
  MaybeJoinRecoverySession(msg->code);
  if (!in_recovery_ || msg->code != recovery_code_) {
    return;
  }
  if (ValidateRecoveryProposal(*msg) == GossipVerdict::kReject) {
    return;
  }
  uint64_t votes = VerifySortition(*crypto_.vrf, msg->pk, msg->sorthash, msg->sort_proof,
                                   recovery_ctx_.seed, params_.tau_proposer, Role::kRecovery,
                                   recovery_code_, 0, recovery_ctx_.weight_of(msg->pk),
                                   recovery_ctx_.total_weight);
  if (votes == 0) {
    return;
  }
  if (msg->block.round < ledger_.next_round()) {
    return;  // Shorter than the chain we already have.
  }
  Hash256 hash = msg->block.Hash();
  RecoveryCandidate candidate;
  candidate.block = msg->block;
  candidate.suffix = msg->suffix;
  candidate.priority = ProposalPriority(msg->sorthash, votes);
  recovery_candidates_.emplace(hash, std::move(candidate));
  if (!have_best_recovery_ ||
      PriorityBeats(recovery_candidates_.at(hash).priority, best_recovery_priority_)) {
    have_best_recovery_ = true;
    best_recovery_priority_ = recovery_candidates_.at(hash).priority;
    best_recovery_hash_ = hash;
  }
}

void Node::StartRecoveryAgreement() {
  Hash256 candidate = have_best_recovery_ ? best_recovery_hash_ : recovery_empty_hash_;
  recovery_ba_->Start(candidate, recovery_empty_hash_);
}

void Node::OnRecoveryBaComplete(const BaResult& result) {
  if (result.hung) {
    // Retry with a rehashed seed (fresh proposers and committees).
    ++recovery_attempt_;
    EnterRecovery();
    return;
  }
  std::vector<Block> replacement;
  if (result.value == recovery_empty_hash_) {
    replacement.push_back(recovery_empty_);
  } else {
    auto it = recovery_candidates_.find(result.value);
    if (it == recovery_candidates_.end()) {
      // Agreed on a fork we never received; retry (the next attempt's
      // proposers will include holders of that fork).
      ++recovery_attempt_;
      EnterRecovery();
      return;
    }
    replacement = it->second.suffix;
    replacement.push_back(it->second.block);
  }
  if (!ledger_.ReplaceSuffix(recovery_final_round_ + 1, replacement)) {
    ++recovery_attempt_;
    EnterRecovery();
    return;
  }
  // The adopted fork may have spent different nonces than the abandoned one;
  // drop anything the new account state makes unappliable.
  mempool_.DropStale(ledger_.accounts());
  if (store_ != nullptr) {
    // Mirror the fork switch on disk: one truncate record (fsync'd before
    // any segment GC), then the adopted suffix. Recovery-adopted blocks
    // carry no per-round certificate — the recovery session itself vouched
    // for them — so they are logged cert-less.
    store_->TruncateSuffix(recovery_final_round_ + 1);
    for (uint64_t r = recovery_final_round_ + 1; r < ledger_.next_round(); ++r) {
      StreamRoundToStore(r, ledger_.ConsensusAtRound(r), nullptr, nullptr);
    }
  }
  // Recovered: resume normal operation on the agreed fork.
  in_recovery_ = false;
  ++sched_epoch_;
  hung_ = false;
  recovery_attempt_ = 0;
  ++recoveries_completed_;
  if (obs_.recoveries != nullptr) {
    obs_.recoveries->Increment();
  }
  fork_monitor_.Clear();
  StartRound(ledger_.next_round());
}

// ---------------------------------------------------------------------------
// Checkpoints + certificate-chain fast-sync (DESIGN.md §13)
// ---------------------------------------------------------------------------

void Node::MaybeCheckpoint() {
  if (store_ == nullptr || params_.checkpoint_interval == 0 ||
      ledger_.lookback_rounds() > 0) {
    // Look-back sortition needs the snapshot window a checkpoint cannot
    // capture; checkpointing is simply off in that configuration.
    return;
  }
  std::optional<uint64_t> hf = ledger_.HighestFinalRound();
  if (!hf.has_value()) {
    return;  // Only final history is checkpointable (never forked off).
  }
  uint64_t b = *hf - *hf % params_.checkpoint_interval;
  if (b == 0 || b <= last_checkpoint_round_ || b < ledger_.base_round()) {
    return;
  }
  const Block& tip = ledger_.BlockAtRound(b);
  CheckpointData data;
  data.manifest.round = b;
  data.manifest.tip_hash = tip.Hash();
  data.manifest.highest_final = *hf;
  data.manifest.genesis_hash = genesis_hash_;
  AccountTable accounts = ledger_.AccountsAtRound(b);
  data.manifest.fingerprint = accounts.StateFingerprint();
  // Seed window: from any round r > b the refresh rule reaches back at most
  // R + 1 rounds (seed_{r-1-(r mod R)}), so [b - R - 64, b] covers every
  // future lookup with margin — clamped to what this ledger can still answer
  // (it may itself run on a compacted prefix).
  uint64_t refresh = params_.seed_refresh_interval == 0 ? 1 : params_.seed_refresh_interval;
  uint64_t seed_base = b > refresh + 64 ? b - refresh - 64 : 0;
  if (seed_base < ledger_.seed_base()) {
    seed_base = ledger_.seed_base();
  }
  data.seed_base = seed_base;
  data.seeds.reserve(b - seed_base + 1);
  for (uint64_t r = seed_base; r <= b; ++r) {
    data.seeds.push_back(ledger_.SeedForRound(r));
  }
  data.tip_block = tip.Serialize();
  last_checkpoint_round_ = b;
  if (obs_.checkpoints_requested != nullptr) {
    obs_.checkpoints_requested->Increment();
  }
  // The account section can be tens of MB; serialize it on the store's
  // writer thread, off the protocol path. The table travels by value — the
  // ledger mutates on while the checkpoint is in flight.
  store_->AppendCheckpoint(
      b, [data = std::move(data), accounts = std::move(accounts)]() mutable {
        Writer w;
        accounts.SerializeTo(&w);
        data.accounts = w.Take();
        return data.Serialize();
      });
}

void Node::StartFastSync(uint64_t target_round) {
  ++fastsync_session_;
  ++sched_epoch_;  // Kill BA*/proposal timers for the round we are leaving.
  in_recovery_ = false;
  phase_ = Phase::kCatchup;
  fastsync_ = FastSyncState{};
  fastsync_.active = true;
  fastsync_.target_round = target_round;
  fastsync_.prev_hash = genesis_hash_;  // The cert chain starts at round 0.
  fastsync_.next_link = 1;
  if (obs_.fastsync_sessions != nullptr) {
    obs_.fastsync_sessions->Increment();
  }
  Trace(TraceKind::kCatchupStart, 1, target_round);
  fastsync_.peer = NextFastSyncPeer();
  SendFastSyncManifestRequest();
}

NodeId Node::NextFastSyncPeer() {
  // One random peer per attempt (no pool: an attempt is a whole
  // manifest -> links -> chunks conversation with a single peer).
  size_t n = gossip_->network_size();
  if (n <= 1) {
    auto nb = gossip_->neighbors();
    return nb.empty() ? id_ : nb[catchup_rng_.UniformU64(nb.size())];
  }
  NodeId peer = static_cast<NodeId>(catchup_rng_.UniformU64(n));
  while (peer == id_) {
    peer = static_cast<NodeId>(catchup_rng_.UniformU64(n));
  }
  return peer;
}

void Node::SendFastSyncManifestRequest() {
  auto req = std::make_shared<FastSyncManifestRequest>();
  req->requester = id_;
  req->seq = fastsync_seq_++;
  fastsync_.seq = req->seq;
  gossip_->SendTo(fastsync_.peer, req);
  ArmFastSyncTimeout(req->seq);
}

void Node::SendFastSyncLinksRequest() {
  auto req = std::make_shared<FastSyncLinksRequest>();
  req->requester = id_;
  req->seq = fastsync_seq_++;
  req->from_round = fastsync_.next_link;
  req->limit = params_.fastsync_links_batch == 0 ? 1 : params_.fastsync_links_batch;
  fastsync_.seq = req->seq;
  gossip_->SendTo(fastsync_.peer, req);
  ArmFastSyncTimeout(req->seq);
}

void Node::SendFastSyncChunkRequest() {
  auto req = std::make_shared<FastSyncChunkRequest>();
  req->requester = id_;
  req->seq = fastsync_seq_++;
  req->round = fastsync_.manifest.round;
  req->offset = fastsync_.payload.size();
  req->limit = params_.fastsync_chunk_bytes == 0 ? 1 : params_.fastsync_chunk_bytes;
  fastsync_.seq = req->seq;
  gossip_->SendTo(fastsync_.peer, req);
  ArmFastSyncTimeout(req->seq);
}

void Node::ArmFastSyncTimeout(uint64_t seq) {
  uint64_t session = fastsync_session_;
  sim_->Schedule(params_.catchup_timeout, [this, session, seq] {
    if (halted_ || !fastsync_.active || fastsync_session_ != session ||
        fastsync_.seq != seq) {
      return;  // Answered (or the session moved on) in time.
    }
    FailFastSyncAttempt();
  });
}

void Node::HandleFastSyncManifestResponse(
    const std::shared_ptr<const FastSyncManifestResponse>& msg) {
  if (halted_ || !fastsync_.active || fastsync_.stage != FastSyncState::Stage::kManifest ||
      msg->seq != fastsync_.seq || msg->responder != fastsync_.peer) {
    return;  // Unsolicited, stale, or spoofed; only the asked peer may answer.
  }
  if (msg->manifest.empty()) {
    FailFastSyncAttempt();  // Peer holds no checkpoint; try another.
    return;
  }
  std::optional<CheckpointManifest> manifest = CheckpointData::ParseManifest(msg->manifest);
  if (!manifest.has_value() || manifest->round == 0 ||
      manifest->genesis_hash != genesis_hash_ || msg->payload_bytes == 0 ||
      msg->payload_bytes > (uint64_t{1} << 30)) {
    FailFastSyncAttempt();  // Wrong chain, or an absurd payload size.
    return;
  }
  fastsync_.manifest = *manifest;
  fastsync_.payload_bytes = msg->payload_bytes;
  fastsync_.stage = FastSyncState::Stage::kLinks;
  SendFastSyncLinksRequest();
}

bool Node::VerifyFastSyncLink(const ChainLink& link) const {
  if (link.round != fastsync_.next_link || link.cert.empty()) {
    // Rounds without a certificate (recovery-adopted suffixes) cannot be
    // vouched for by the chain; fast-sync fails over to full catch-up.
    return false;
  }
  std::optional<Certificate> cert = Certificate::Deserialize(link.cert);
  if (!cert.has_value() || cert->round != link.round ||
      cert->block_hash != link.hash || cert->votes.empty()) {
    return false;
  }
  for (const VoteMessage& v : cert->votes) {
    // Structural binding: each vote names this round, this block hash, and
    // the previous (already verified) link's hash — so forging any one link
    // means forging signatures, not just splicing hashes.
    if (v.round != link.round || v.value != link.hash ||
        v.prev_hash != fastsync_.prev_hash || v.step != cert->step) {
      return false;
    }
    if (!crypto_.signer->Verify(v.pk, v.SignedBody(), v.signature)) {
      return false;
    }
  }
  return true;
}

void Node::HandleFastSyncLinksResponse(
    const std::shared_ptr<const FastSyncLinksResponse>& msg) {
  if (halted_ || !fastsync_.active || fastsync_.stage != FastSyncState::Stage::kLinks ||
      msg->seq != fastsync_.seq || msg->responder != fastsync_.peer) {
    return;
  }
  if (msg->links.empty() || msg->from_round != fastsync_.next_link) {
    FailFastSyncAttempt();  // The peer's link history has a hole below B.
    return;
  }
  for (const std::vector<uint8_t>& payload : msg->links) {
    std::optional<ChainLink> link = ChainLink::DecodePayload(payload);
    if (!link.has_value() || !VerifyFastSyncLink(*link)) {
      FailFastSyncAttempt();
      return;
    }
    fastsync_.prev_hash = link->hash;
    ++fastsync_.next_link;
    fastsync_.links.push_back(std::move(*link));
    if (obs_.fastsync_links != nullptr) {
      obs_.fastsync_links->Increment();
    }
    if (fastsync_.next_link > fastsync_.manifest.round) {
      break;  // Chain complete; surplus links are ignored.
    }
  }
  if (fastsync_.next_link > fastsync_.manifest.round) {
    if (fastsync_.prev_hash != fastsync_.manifest.tip_hash) {
      // The verified chain ends on a different block than the manifest
      // claims — the checkpoint belongs to another history.
      FailFastSyncAttempt();
      return;
    }
    fastsync_.stage = FastSyncState::Stage::kChunks;
    fastsync_.payload.clear();
    fastsync_.payload.reserve(fastsync_.payload_bytes);
    SendFastSyncChunkRequest();
  } else {
    SendFastSyncLinksRequest();
  }
}

void Node::HandleFastSyncChunkResponse(
    const std::shared_ptr<const FastSyncChunkResponse>& msg) {
  if (halted_ || !fastsync_.active || fastsync_.stage != FastSyncState::Stage::kChunks ||
      msg->seq != fastsync_.seq || msg->responder != fastsync_.peer) {
    return;
  }
  if (msg->round != fastsync_.manifest.round || msg->offset != fastsync_.payload.size() ||
      msg->total_bytes != fastsync_.payload_bytes || msg->data.empty() ||
      fastsync_.payload.size() + msg->data.size() > fastsync_.payload_bytes) {
    FailFastSyncAttempt();
    return;
  }
  fastsync_.payload.insert(fastsync_.payload.end(), msg->data.begin(), msg->data.end());
  if (obs_.fastsync_bytes != nullptr) {
    obs_.fastsync_bytes->Increment(msg->data.size());
  }
  if (fastsync_.payload.size() < fastsync_.payload_bytes) {
    SendFastSyncChunkRequest();
    return;
  }
  if (InstallFastSyncCheckpoint()) {
    FinishFastSync();
  } else {
    FailFastSyncAttempt();  // Payload contradicts the verified manifest/chain.
  }
}

bool Node::InstallFastSyncCheckpoint() {
  std::optional<CheckpointData> data = CheckpointData::Deserialize(fastsync_.payload);
  if (!data.has_value()) {
    return false;
  }
  const CheckpointManifest& m = fastsync_.manifest;
  if (data->manifest.round != m.round || data->manifest.tip_hash != m.tip_hash ||
      data->manifest.fingerprint != m.fingerprint ||
      data->manifest.highest_final != m.highest_final ||
      data->manifest.genesis_hash != m.genesis_hash) {
    return false;  // Payload head must equal the manifest the chain vouched for.
  }
  std::optional<Block> tip = Block::Deserialize(data->tip_block);
  if (!tip.has_value() || tip->round != m.round || tip->Hash() != m.tip_hash) {
    return false;
  }
  AccountTable table;
  Reader ar(data->accounts);
  if (!table.DeserializeFrom(&ar) || !ar.AtEnd() ||
      table.StateFingerprint() != m.fingerprint) {
    return false;  // The state does not hash to what the manifest promised.
  }
  const uint64_t b = m.round;
  if (data->seed_base > b || data->seed_base + data->seeds.size() != b + 1) {
    return false;
  }
  // Seed cross-check against the verified chain: link r carries next_seed =
  // seed_{r+1} (links[j] is round j+1), so every seed in the window is pinned
  // by a certificate, not taken on the responder's word.
  for (size_t i = 0; i < data->seeds.size(); ++i) {
    uint64_t r = data->seed_base + i;
    SeedBytes expected;
    if (r <= 1) {
      expected = ledger_.SeedForRound(r);  // Genesis window: locally known.
    } else {
      expected = fastsync_.links[r - 2].next_seed;
    }
    if (data->seeds[i] != expected) {
      return false;
    }
  }
  if (tip->next_seed != fastsync_.links[b - 1].next_seed) {
    return false;  // Round b's own link must agree with the tip block.
  }
  if (!ledger_.InstallCheckpoint(*tip, std::move(table), data->seed_base,
                                 std::move(data->seeds))) {
    return false;
  }
  last_checkpoint_round_ = b;
  if (store_ != nullptr) {
    // Persist what we verified: the checkpoint payload (so a restart resumes
    // from here, and we can serve fast-sync in turn), the primed log, and
    // the cert chain below b.
    store_->AdoptCheckpoint(b, fastsync_.payload);
    store_->PrimeAt(b + 1, m.tip_hash);
    std::vector<std::vector<uint8_t>> payloads;
    payloads.reserve(fastsync_.links.size());
    for (const ChainLink& l : fastsync_.links) {
      payloads.push_back(l.SerializePayload());
    }
    store_->AppendChainLinks(std::move(payloads));
  }
  fork_monitor_.Prune(b);
  return true;
}

void Node::FailFastSyncAttempt() {
  if (!fastsync_.active) {
    return;
  }
  ++fastsync_.attempt;
  if (fastsync_.attempt > 5) {
    FailFastSync();
    return;
  }
  // Reset the conversation and try another peer; the target survives.
  fastsync_.stage = FastSyncState::Stage::kManifest;
  fastsync_.manifest = CheckpointManifest{};
  fastsync_.payload_bytes = 0;
  fastsync_.next_link = 1;
  fastsync_.prev_hash = genesis_hash_;
  fastsync_.links.clear();
  fastsync_.payload.clear();
  fastsync_.peer = NextFastSyncPeer();
  SendFastSyncManifestRequest();
}

void Node::FailFastSync() {
  uint64_t target = fastsync_.target_round;
  fastsync_.active = false;
  fastsync_.links.clear();
  fastsync_.payload.clear();
  ++fastsync_session_;
  if (obs_.fastsync_failed != nullptr) {
    obs_.fastsync_failed->Increment();
  }
  // Fall back to plain block catch-up from genesis — slower but always
  // sufficient (it needs no peer to hold a checkpoint).
  StartCatchup(target);
}

void Node::FinishFastSync() {
  uint64_t target = fastsync_.target_round;
  uint64_t b = fastsync_.manifest.round;
  fastsync_.active = false;
  fastsync_.links.clear();
  fastsync_.payload.clear();
  ++fastsync_session_;
  ++fastsyncs_completed_;
  hung_ = false;
  if (obs_.fastsync_completed != nullptr) {
    obs_.fastsync_completed->Increment();
  }
  Trace(TraceKind::kCatchupDone, 1, b);
  if (target >= ledger_.next_round()) {
    // Normal catch-up fetches the suffix past the checkpoint; its first
    // certificate validates in full against the installed state — the
    // implicit anchor of the fast-sync trust argument.
    StartCatchup(target);
  } else {
    StartRound(ledger_.next_round());
  }
}

void Node::HandleFastSyncManifestRequest(
    const std::shared_ptr<const FastSyncManifestRequest>& msg) {
  if (halted_) {
    return;
  }
  auto resp = std::make_shared<FastSyncManifestResponse>();
  resp->responder = id_;
  resp->seq = msg->seq;
  if (store_ != nullptr) {
    // Newest checkpoint whose payload still loads (a corrupt file steps
    // down to the next older one, mirroring the restore ladder).
    auto ckpts = store_->checkpoints();
    for (auto it = ckpts.rbegin(); it != ckpts.rend(); ++it) {
      auto payload = store_->ReadCheckpointPayload(it->round);
      if (payload == nullptr || payload->size() < CheckpointData::kManifestBytes) {
        continue;
      }
      resp->manifest.assign(payload->begin(),
                            payload->begin() + CheckpointData::kManifestBytes);
      resp->payload_bytes = payload->size();
      break;
    }
  }
  // An empty manifest is still an answer: it lets the requester rotate to
  // another peer immediately instead of waiting out the timeout.
  if (obs_.fastsync_served != nullptr) {
    obs_.fastsync_served->Increment();
  }
  gossip_->SendTo(msg->requester, resp);
}

void Node::HandleFastSyncLinksRequest(
    const std::shared_ptr<const FastSyncLinksRequest>& msg) {
  if (halted_) {
    return;
  }
  auto resp = std::make_shared<FastSyncLinksResponse>();
  resp->responder = id_;
  resp->seq = msg->seq;
  uint64_t from = msg->from_round < 1 ? 1 : msg->from_round;
  resp->from_round = from;
  uint32_t limit = msg->limit == 0 ? 1 : msg->limit;
  if (limit > 256) {
    limit = 256;  // Bound the response a single request can make us build.
  }
  if (store_ != nullptr) {
    for (uint64_t r = from; resp->links.size() < limit; ++r) {
      std::optional<ChainLink> link = store_->ChainLinkAt(r);
      if (!link.has_value()) {
        break;  // Serve the contiguous prefix we hold (partial window).
      }
      resp->links.push_back(link->SerializePayload());
    }
  }
  if (obs_.fastsync_served != nullptr) {
    obs_.fastsync_served->Increment();
  }
  gossip_->SendTo(msg->requester, resp);
}

void Node::HandleFastSyncChunkRequest(
    const std::shared_ptr<const FastSyncChunkRequest>& msg) {
  if (halted_) {
    return;
  }
  auto resp = std::make_shared<FastSyncChunkResponse>();
  resp->responder = id_;
  resp->seq = msg->seq;
  resp->round = msg->round;
  resp->offset = msg->offset;
  if (store_ != nullptr) {
    auto payload = store_->ReadCheckpointPayload(msg->round);
    if (payload != nullptr) {
      resp->total_bytes = payload->size();
      if (msg->offset < payload->size()) {
        uint64_t limit = msg->limit == 0 ? 1 : msg->limit;
        if (limit > (uint64_t{1} << 20)) {
          limit = uint64_t{1} << 20;
        }
        uint64_t n = std::min<uint64_t>(limit, payload->size() - msg->offset);
        resp->data.assign(payload->begin() + msg->offset,
                          payload->begin() + msg->offset + n);
      }
    }
  }
  if (obs_.fastsync_served != nullptr) {
    obs_.fastsync_served->Increment();
  }
  gossip_->SendTo(msg->requester, resp);
}

void Node::RememberFutureMessage(uint64_t round, const MessagePtr& msg) {
  // Bounded buffer: a Byzantine flood of far-future messages must not grow
  // memory without limit.
  constexpr size_t kMaxPerRound = 100000;
  auto& bucket = future_messages_[round];
  if (bucket.size() < kMaxPerRound) {
    bucket.push_back(msg);
  }
}

void Node::ReplayBufferedMessages(uint64_t round) {
  auto it = future_messages_.find(round);
  if (it == future_messages_.end()) {
    // Also drop buffers for rounds we skipped past.
    future_messages_.erase(future_messages_.begin(), future_messages_.lower_bound(round));
    return;
  }
  std::vector<MessagePtr> msgs = std::move(it->second);
  future_messages_.erase(future_messages_.begin(), ++it);
  for (const MessagePtr& msg : msgs) {
    HandleMessage(msg);
  }
}

}  // namespace algorand
