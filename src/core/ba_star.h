// BA* (§7) as an event-driven state machine.
//
// The paper presents BA* as blocking pseudocode: CommitteeVote() then
// CountVotes() with a deadline. Here each CountVotes becomes a wait state —
// a tally that completes as soon as some value crosses the vote threshold or
// a timer fires — so thousands of nodes interleave inside one discrete-event
// simulation. The transitions are a line-by-line translation of
// Algorithm 3 (BA*), Algorithm 7 (Reduction) and Algorithm 8 (BinaryBA*),
// including the vote-ahead-three-steps rule, the special `final` vote in
// binary step 1, and the common-coin fallback in every third step.
//
// BaStar is deliberately network-agnostic: the environment callback casts
// committee votes (sortition + signing + gossip live in the Node), and OnVote
// feeds back every verified vote for this round, whatever step it belongs
// to — early votes buffer in their step's tally until the machine gets there.
#ifndef ALGORAND_SRC_CORE_BA_STAR_H_
#define ALGORAND_SRC_CORE_BA_STAR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/time_units.h"
#include "src/core/messages.h"
#include "src/core/params.h"
#include "src/core/vote_counter.h"

namespace algorand {

// Services BaStar needs from its host (the Node, or a test harness).
class BaEnvironment {
 public:
  virtual ~BaEnvironment() = default;
  // Runs committee sortition for (round, step_code) with expected committee
  // size tau and, if selected, signs and gossips a vote for `value`.
  virtual void CastVote(uint32_t step_code, double tau, const Hash256& value) = 0;
  virtual void ScheduleAfter(SimTime delay, std::function<void()> fn) = 0;
  virtual SimTime Now() const = 0;
};

struct BaResult {
  Hash256 value;
  bool final = false;          // Final vs tentative consensus (§7.4).
  bool hung = false;           // Exceeded MaxSteps; recovery required (§8.2).
  int binary_steps = 0;        // BinaryBA* steps executed.
  uint32_t deciding_step = 0;  // Wire step whose votes certify the value.
  SimTime reduction_done_at = 0;
  SimTime binary_done_at = 0;
  SimTime final_done_at = 0;
};

// Observability callout emitted at BA* step transitions. The host translates
// these into tracer events and step-latency histograms; BaStar itself stays
// free of any metrics dependency.
struct BaStepEvent {
  enum class Kind {
    kStepEnter,      // Entered a CountVotes wait on `step`.
    kStepExit,       // Left the wait: value decided or timeout.
    kReductionDone,  // Reduction output chosen; `value` feeds BinaryBA*.
    kCoinFlip,       // Step-3 common coin consulted; `coin` is the bit.
    kBinaryDecided,  // BinaryBA* reached consensus on `value`.
  };
  Kind kind = Kind::kStepEnter;
  uint32_t step = 0;       // Wire step code.
  SimTime at = 0;
  SimTime entered_at = 0;  // kStepExit: when the wait began.
  uint64_t votes = 0;      // kStepExit: weighted votes for the winning value.
  bool timed_out = false;  // kStepExit: wait expired without a leader.
  int coin = 0;            // kCoinFlip.
  int binary_steps = 0;    // kBinaryDecided.
  Hash256 value{};
};

class BaStar {
 public:
  using CompletionHandler = std::function<void(const BaResult&)>;
  using StepObserver = std::function<void(const BaStepEvent&)>;

  BaStar(const ProtocolParams& params, BaEnvironment* env, CompletionHandler on_complete);

  // Optional: receives a BaStepEvent at every step transition. Set before
  // Start().
  void set_observer(StepObserver observer) { observer_ = std::move(observer); }

  // Begins the round with the node's candidate block hash (from block
  // proposal) and the canonical empty-block hash for this round.
  void Start(const Hash256& proposed_hash, const Hash256& empty_hash);

  // Feeds a signature- and sortition-verified vote. Weight is the voter's
  // sub-user count; per-pk dedup happens in the tally.
  void OnVote(uint32_t step_code, const PublicKey& pk, uint64_t weight, const Hash256& value,
              const VrfOutput& sorthash);

  bool done() const { return done_; }
  bool started() const { return started_; }
  const BaResult& result() const { return result_; }

  // Tally access (certificate assembly, common-coin tests). Null if the step
  // received no votes.
  const StepTally* TallyFor(uint32_t step_code) const;

 private:
  using WaitContinuation = std::function<void(std::optional<Hash256>)>;

  // Enters a CountVotes wait on `step_code` with the given weighted-vote
  // threshold and timeout.
  void WaitCountVotes(uint32_t step_code, double threshold, SimTime timeout,
                      WaitContinuation k);
  void CompleteWait(std::optional<Hash256> value);

  void StartBinary(const Hash256& hblock);
  void BinaryStepA();
  void BinaryStepB();
  void BinaryStepC();
  // Consensus reached in BinaryBA*: vote ahead three steps and move to the
  // final-step count.
  void FinishBinary(const Hash256& value, uint32_t deciding_step, bool from_first_step);
  void VoteAheadThreeSteps(const Hash256& value);
  bool CheckMaxSteps();

  uint32_t CurrentBinaryCode() const { return BinaryStepCode(bba_step_); }

  void Emit(const BaStepEvent& event) {
    if (observer_) {
      observer_(event);
    }
  }

  ProtocolParams params_;
  BaEnvironment* env_;
  CompletionHandler on_complete_;
  StepObserver observer_;

  std::map<uint32_t, StepTally> tallies_;

  bool started_ = false;
  bool done_ = false;
  BaResult result_;

  Hash256 proposed_;    // Candidate from block proposal (may equal empty_).
  Hash256 empty_;       // Canonical empty-block hash for the round.
  Hash256 block_hash_;  // BinaryBA*'s non-empty candidate (reduction output).
  Hash256 r_;           // The running vote value in BinaryBA*.
  int bba_step_ = 0;    // 1-based BinaryBA* step counter.

  // Wait state.
  bool waiting_ = false;
  uint32_t wait_step_ = 0;
  double wait_threshold_ = 0;
  SimTime wait_entered_at_ = 0;
  uint64_t wait_epoch_ = 0;  // Invalidates stale timers.
  WaitContinuation wait_k_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_BA_STAR_H_
