#include "src/core/params.h"

namespace algorand {

ProtocolParams ProtocolParams::Paper() { return ProtocolParams{}; }

ProtocolParams ProtocolParams::ScaledCommittees(double factor) {
  ProtocolParams p;
  p.tau_proposer = p.tau_proposer * factor < 5 ? 5 : p.tau_proposer * factor;
  p.tau_step *= factor;
  p.tau_final *= factor;
  return p;
}

}  // namespace algorand
