// Per-round consensus context (the `ctx` of Algorithms 3-9): the sortition
// seed in force, the previous block hash votes must bind to, and the weight
// table used to verify sortition proofs.
#ifndef ALGORAND_SRC_CORE_CONTEXT_H_
#define ALGORAND_SRC_CORE_CONTEXT_H_

#include <cstdint>
#include <functional>

#include "src/common/bytes.h"

namespace algorand {

struct RoundContext {
  uint64_t round = 0;
  SeedBytes seed;       // Sortition seed for this round (after refresh rule).
  Hash256 prev_hash;    // H(last agreed block).
  uint64_t total_weight = 0;
  // Weight (stake) of a public key per the ledger this round agrees on.
  std::function<uint64_t(const PublicKey&)> weight_of;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_CONTEXT_H_
