#include "src/core/wire_codec.h"

namespace algorand {
namespace {

std::vector<uint8_t> Tagged(WireType type, std::vector<uint8_t> body) {
  std::vector<uint8_t> out;
  out.reserve(body.size() + 1);
  out.push_back(static_cast<uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

std::vector<uint8_t> EncodeMessage(const SimMessage& msg) {
  if (auto* v = dynamic_cast<const VoteMessage*>(&msg)) {
    return Tagged(WireType::kVote, v->Serialize());
  }
  if (auto* p = dynamic_cast<const PriorityMessage*>(&msg)) {
    return Tagged(WireType::kPriority, p->Serialize());
  }
  if (auto* b = dynamic_cast<const BlockMessage*>(&msg)) {
    return Tagged(WireType::kBlock, b->block.Serialize());
  }
  if (auto* r = dynamic_cast<const BlockRequestMessage*>(&msg)) {
    return Tagged(WireType::kBlockRequest, r->Serialize());
  }
  if (auto* rp = dynamic_cast<const RecoveryProposalMessage*>(&msg)) {
    return Tagged(WireType::kRecoveryProposal, rp->Serialize());
  }
  if (auto* t = dynamic_cast<const TransactionMessage*>(&msg)) {
    return Tagged(WireType::kTransaction, t->Serialize());
  }
  if (auto* cq = dynamic_cast<const CatchupRequestMessage*>(&msg)) {
    return Tagged(WireType::kCatchupRequest, cq->Serialize());
  }
  if (auto* cr = dynamic_cast<const CatchupResponseMessage*>(&msg)) {
    return Tagged(WireType::kCatchupResponse, cr->Serialize());
  }
  return {};
}

const std::vector<uint8_t>& EncodeMessageCached(const SimMessage& msg) {
  // The encoder must be a plain function pointer for the memo slot;
  // EncodeMessage is overloaded, so name it through a captureless lambda.
  return msg.EncodedWire(+[](const SimMessage& m) { return EncodeMessage(m); });
}

MessagePtr DecodeMessage(std::span<const uint8_t> payload) {
  if (payload.empty()) {
    return nullptr;
  }
  auto type = static_cast<WireType>(payload[0]);
  auto body = payload.subspan(1);
  switch (type) {
    case WireType::kVote: {
      auto m = VoteMessage::Deserialize(body);
      return m ? std::make_shared<VoteMessage>(std::move(*m)) : nullptr;
    }
    case WireType::kPriority: {
      auto m = PriorityMessage::Deserialize(body);
      return m ? std::make_shared<PriorityMessage>(std::move(*m)) : nullptr;
    }
    case WireType::kBlock: {
      auto b = Block::Deserialize(body);
      if (!b) {
        return nullptr;
      }
      auto msg = std::make_shared<BlockMessage>();
      msg->block = std::move(*b);
      return msg;
    }
    case WireType::kBlockRequest: {
      auto m = BlockRequestMessage::Deserialize(body);
      return m ? std::make_shared<BlockRequestMessage>(std::move(*m)) : nullptr;
    }
    case WireType::kRecoveryProposal: {
      auto m = RecoveryProposalMessage::Deserialize(body);
      return m ? std::make_shared<RecoveryProposalMessage>(std::move(*m)) : nullptr;
    }
    case WireType::kTransaction: {
      auto m = TransactionMessage::Deserialize(body);
      return m ? std::make_shared<TransactionMessage>(std::move(*m)) : nullptr;
    }
    case WireType::kCatchupRequest: {
      auto m = CatchupRequestMessage::Deserialize(body);
      return m ? std::make_shared<CatchupRequestMessage>(std::move(*m)) : nullptr;
    }
    case WireType::kCatchupResponse: {
      auto m = CatchupResponseMessage::Deserialize(body);
      return m ? std::make_shared<CatchupResponseMessage>(std::move(*m)) : nullptr;
    }
  }
  return nullptr;
}

}  // namespace algorand
