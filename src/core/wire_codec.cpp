#include "src/core/wire_codec.h"

namespace algorand {
namespace {

constexpr size_t kEnvelopeSize = 13;  // tag(1) + origin(4 LE) + emitted_at(8 LE).

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t GetU32(std::span<const uint8_t> in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(std::span<const uint8_t> in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

std::vector<uint8_t> Tagged(WireType type, const SimMessage& msg, std::vector<uint8_t> body) {
  // The envelope carries the originator's trace context so propagation
  // latency can be joined across processes; UINT32_MAX origin = unstamped.
  const TraceContext& tc = msg.trace_context();
  std::vector<uint8_t> out;
  out.reserve(body.size() + kEnvelopeSize);
  out.push_back(static_cast<uint8_t>(type));
  PutU32(&out, tc.origin);
  PutU64(&out, tc.emitted_at);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

std::vector<uint8_t> EncodeMessage(const SimMessage& msg) {
  if (auto* v = dynamic_cast<const VoteMessage*>(&msg)) {
    return Tagged(WireType::kVote, msg, v->Serialize());
  }
  if (auto* p = dynamic_cast<const PriorityMessage*>(&msg)) {
    return Tagged(WireType::kPriority, msg, p->Serialize());
  }
  if (auto* b = dynamic_cast<const BlockMessage*>(&msg)) {
    return Tagged(WireType::kBlock, msg, b->block.Serialize());
  }
  if (auto* r = dynamic_cast<const BlockRequestMessage*>(&msg)) {
    return Tagged(WireType::kBlockRequest, msg, r->Serialize());
  }
  if (auto* rp = dynamic_cast<const RecoveryProposalMessage*>(&msg)) {
    return Tagged(WireType::kRecoveryProposal, msg, rp->Serialize());
  }
  if (auto* t = dynamic_cast<const TransactionMessage*>(&msg)) {
    return Tagged(WireType::kTransaction, msg, t->Serialize());
  }
  if (auto* cq = dynamic_cast<const CatchupRequestMessage*>(&msg)) {
    return Tagged(WireType::kCatchupRequest, msg, cq->Serialize());
  }
  if (auto* cr = dynamic_cast<const CatchupResponseMessage*>(&msg)) {
    return Tagged(WireType::kCatchupResponse, msg, cr->Serialize());
  }
  if (auto* fmq = dynamic_cast<const FastSyncManifestRequest*>(&msg)) {
    return Tagged(WireType::kFastSyncManifestRequest, msg, fmq->Serialize());
  }
  if (auto* fmr = dynamic_cast<const FastSyncManifestResponse*>(&msg)) {
    return Tagged(WireType::kFastSyncManifestResponse, msg, fmr->Serialize());
  }
  if (auto* flq = dynamic_cast<const FastSyncLinksRequest*>(&msg)) {
    return Tagged(WireType::kFastSyncLinksRequest, msg, flq->Serialize());
  }
  if (auto* flr = dynamic_cast<const FastSyncLinksResponse*>(&msg)) {
    return Tagged(WireType::kFastSyncLinksResponse, msg, flr->Serialize());
  }
  if (auto* fcq = dynamic_cast<const FastSyncChunkRequest*>(&msg)) {
    return Tagged(WireType::kFastSyncChunkRequest, msg, fcq->Serialize());
  }
  if (auto* fcr = dynamic_cast<const FastSyncChunkResponse*>(&msg)) {
    return Tagged(WireType::kFastSyncChunkResponse, msg, fcr->Serialize());
  }
  return {};
}

const std::vector<uint8_t>& EncodeMessageCached(const SimMessage& msg) {
  // The encoder must be a plain function pointer for the memo slot;
  // EncodeMessage is overloaded, so name it through a captureless lambda.
  return msg.EncodedWire(+[](const SimMessage& m) { return EncodeMessage(m); });
}

MessagePtr DecodeMessage(std::span<const uint8_t> payload) {
  if (payload.size() < kEnvelopeSize) {
    return nullptr;
  }
  auto type = static_cast<WireType>(payload[0]);
  uint32_t origin = GetU32(payload.subspan(1, 4));
  uint64_t emitted_at = GetU64(payload.subspan(5, 8));
  auto body = payload.subspan(kEnvelopeSize);
  auto stamped = [origin, emitted_at](MessagePtr msg) {
    if (msg != nullptr && origin != UINT32_MAX) {
      msg->StampTraceContext(origin, emitted_at);
    }
    return msg;
  };
  switch (type) {
    case WireType::kVote: {
      auto m = VoteMessage::Deserialize(body);
      return stamped(m ? std::make_shared<VoteMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kPriority: {
      auto m = PriorityMessage::Deserialize(body);
      return stamped(m ? std::make_shared<PriorityMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kBlock: {
      auto b = Block::Deserialize(body);
      if (!b) {
        return nullptr;
      }
      auto msg = std::make_shared<BlockMessage>();
      msg->block = std::move(*b);
      return stamped(std::move(msg));
    }
    case WireType::kBlockRequest: {
      auto m = BlockRequestMessage::Deserialize(body);
      return stamped(m ? std::make_shared<BlockRequestMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kRecoveryProposal: {
      auto m = RecoveryProposalMessage::Deserialize(body);
      return stamped(m ? std::make_shared<RecoveryProposalMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kTransaction: {
      auto m = TransactionMessage::Deserialize(body);
      return stamped(m ? std::make_shared<TransactionMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kCatchupRequest: {
      auto m = CatchupRequestMessage::Deserialize(body);
      return stamped(m ? std::make_shared<CatchupRequestMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kCatchupResponse: {
      auto m = CatchupResponseMessage::Deserialize(body);
      return stamped(m ? std::make_shared<CatchupResponseMessage>(std::move(*m)) : nullptr);
    }
    case WireType::kFastSyncManifestRequest: {
      auto m = FastSyncManifestRequest::Deserialize(body);
      return stamped(m ? std::make_shared<FastSyncManifestRequest>(std::move(*m)) : nullptr);
    }
    case WireType::kFastSyncManifestResponse: {
      auto m = FastSyncManifestResponse::Deserialize(body);
      return stamped(m ? std::make_shared<FastSyncManifestResponse>(std::move(*m)) : nullptr);
    }
    case WireType::kFastSyncLinksRequest: {
      auto m = FastSyncLinksRequest::Deserialize(body);
      return stamped(m ? std::make_shared<FastSyncLinksRequest>(std::move(*m)) : nullptr);
    }
    case WireType::kFastSyncLinksResponse: {
      auto m = FastSyncLinksResponse::Deserialize(body);
      return stamped(m ? std::make_shared<FastSyncLinksResponse>(std::move(*m)) : nullptr);
    }
    case WireType::kFastSyncChunkRequest: {
      auto m = FastSyncChunkRequest::Deserialize(body);
      return stamped(m ? std::make_shared<FastSyncChunkRequest>(std::move(*m)) : nullptr);
    }
    case WireType::kFastSyncChunkResponse: {
      auto m = FastSyncChunkResponse::Deserialize(body);
      return stamped(m ? std::make_shared<FastSyncChunkResponse>(std::move(*m)) : nullptr);
    }
  }
  return nullptr;
}

}  // namespace algorand
