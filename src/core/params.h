// Protocol parameters (the paper's Figure 4) plus scaled profiles for
// single-machine simulation.
//
// The paper's deployment values assume hundreds of thousands of users; the
// discrete-event simulator runs hundreds to thousands. Scaled profiles shrink
// the expected committee sizes proportionally while keeping every structural
// constant (thresholds T, step counts, timeouts) identical, so the protocol
// logic exercised is the same.
#ifndef ALGORAND_SRC_CORE_PARAMS_H_
#define ALGORAND_SRC_CORE_PARAMS_H_

#include <cstdint>

#include "src/common/time_units.h"

namespace algorand {

struct ProtocolParams {
  // Assumed fraction of money held by honest users (h > 2/3).
  double honest_fraction = 0.80;

  // Seed refresh interval R (§5.2): sortition at round r uses
  // seed_{r-1-(r mod R)}.
  uint64_t seed_refresh_interval = 1000;

  // Expected number of block proposers, tau_proposer (§6, Appendix B.1).
  double tau_proposer = 26;

  // Expected committee size and vote threshold for ordinary BA* steps
  // (§7.5, Appendix B.2). A value receives consensus in a step when it
  // collects more than t_step * tau_step weighted votes.
  double tau_step = 2000;
  double t_step = 0.685;

  // Final-step committee size and threshold (§7.4, Appendix C.1).
  double tau_final = 10000;
  double t_final = 0.74;

  // Maximum number of BinaryBA* steps before declaring the round stuck
  // (recovery then applies, §8.2).
  int max_steps = 150;

  // Timeouts (Figure 4): gossip time for sortition proofs, block receipt
  // timeout, per-step timeout, and the estimated variance in BA* completion
  // across users.
  SimTime lambda_priority = Seconds(5);
  SimTime lambda_block = Minutes(1);
  SimTime lambda_step = Seconds(20);
  SimTime lambda_stepvar = Seconds(5);

  // Block payload size in bytes (1 MB in most of the paper's experiments).
  uint64_t block_size_bytes = 1 << 20;

  // Pending-transaction pool capacity, in transactions. At capacity the
  // lowest-fee resident transaction is evicted; an arrival pricing below
  // every resident one is rejected (ledger/mempool.h).
  uint64_t mempool_capacity = uint64_t{1} << 16;

  // Fork-recovery cadence (§8.2): users kick off recovery on loosely
  // synchronized clocks at this interval.
  SimTime recovery_interval = Hours(1);

  // --- Live catch-up (§8.3) ---
  // A node seeing votes this many rounds ahead of its own tip starts a
  // catch-up session instead of waiting for the chain to come to it.
  uint64_t catchup_trigger_lead = 2;
  // Rounds requested per CatchupRequestMessage (responders clamp to 64).
  uint32_t catchup_batch_limit = 16;
  // Cap on concurrently outstanding catch-up requests.
  uint32_t catchup_max_inflight = 2;
  // Per-request timeout; an unanswered request rotates to another peer.
  SimTime catchup_timeout = Seconds(10);
  // Exponential backoff after a timeout or bad batch: base * 2^(attempt-1)
  // plus deterministic jitter in [0, base), capped at the max.
  SimTime catchup_backoff_base = Seconds(2);
  SimTime catchup_backoff_max = Minutes(1);

  // --- Checkpoints + fast-sync (DESIGN.md §13) ---
  // Every `checkpoint_interval` final rounds the node writes a durable
  // ledger-state checkpoint to its store (and the store compacts segments
  // below the oldest retained one). 0 = disabled. Ignored when the genesis
  // configures weight look-back (snapshot history cannot be checkpointed).
  uint64_t checkpoint_interval = 0;
  // A genesis-fresh node seeing evidence far ahead bootstraps from a peer's
  // checkpoint via the certificate chain instead of replaying every block.
  bool fastsync_enabled = false;
  // Chain links requested per FastSyncLinksRequest (responders clamp to 256).
  uint32_t fastsync_links_batch = 128;
  // Checkpoint payload bytes requested per chunk (responders clamp to 1 MB).
  uint32_t fastsync_chunk_bytes = 256 << 10;

  // --- Ablation switches (all on in the real protocol) ---
  // Step-3 common coin (§7.4 "getting unstuck"); when off, the third step's
  // timeout deterministically falls back to the block hash, which a
  // vote-splitting adversary can exploit indefinitely.
  bool common_coin_enabled = true;
  // Two-message block proposal (§6): small priority message first, and
  // non-best blocks are not relayed. When off, every proposer's full block
  // floods the network.
  bool priority_gossip_enabled = true;
  // The special final step (§7.4). When off, BA* never declares finality and
  // all consensus is tentative.
  bool final_step_enabled = true;
  // Participant replacement (§2, §4): every BA* step elects a fresh committee
  // via sortition over (round, step). When off, one committee drawn at step 0
  // serves the whole round — the configuration a targeted-DoS adversary can
  // exploit once the members' first votes reveal them.
  bool participant_replacement_enabled = true;

  // The paper's deployment parameters, verbatim from Figure 4.
  static ProtocolParams Paper();

  // Shrinks the expected committee sizes by `factor` (e.g. 0.05 gives
  // tau_step = 100) for simulations with few users. Thresholds and timeouts
  // are unchanged.
  static ProtocolParams ScaledCommittees(double factor);

  // Vote-count thresholds actually compared against accumulated weighted
  // votes (strictly greater than, per CountVotes in Algorithm 5).
  double StepThreshold() const { return t_step * tau_step; }
  double FinalThreshold() const { return t_final * tau_final; }
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_PARAMS_H_
