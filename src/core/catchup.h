// Bootstrapping new users (§8.3): a joining user downloads the block history
// with the per-round certificates and validates them in order from genesis,
// so it always knows the correct weights for checking the next round's
// sortition proofs.
#ifndef ALGORAND_SRC_CORE_CATCHUP_H_
#define ALGORAND_SRC_CORE_CATCHUP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/certificate.h"
#include "src/core/params.h"
#include "src/ledger/ledger.h"

namespace algorand {

struct CatchupResult {
  bool ok = false;
  std::string error;
  uint64_t verified_rounds = 0;
  std::unique_ptr<Ledger> ledger;  // State after replaying verified rounds.
};

// Validates `blocks[i]`/`certs[i]` (round i+1) in order starting from
// genesis. Stops with an error at the first certificate or chain-linkage
// failure. If `final_cert` is provided it is checked against the last block
// (the "certificate proving safety" of §8.3); only then are all rounds
// marked final.
CatchupResult CatchupFromGenesis(const GenesisConfig& genesis, const ProtocolParams& params,
                                 const std::vector<Block>& blocks,
                                 const std::vector<Certificate>& certs, const VrfBackend& vrf,
                                 const SignerBackend& signer,
                                 const Certificate* final_cert = nullptr);

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_CATCHUP_H_
