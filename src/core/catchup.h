// Bootstrapping new users (§8.3): a joining user downloads the block history
// with the per-round certificates and validates them in order from genesis,
// so it always knows the correct weights for checking the next round's
// sortition proofs.
#ifndef ALGORAND_SRC_CORE_CATCHUP_H_
#define ALGORAND_SRC_CORE_CATCHUP_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/certificate.h"
#include "src/core/params.h"
#include "src/ledger/ledger.h"

namespace algorand {

struct CatchupResult {
  bool ok = false;
  std::string error;
  uint64_t verified_rounds = 0;
  std::unique_ptr<Ledger> ledger;  // State after replaying verified rounds.
};

// Validates `blocks[i]`/`certs[i]` (round i+1) in order starting from
// genesis. Stops with an error at the first certificate or chain-linkage
// failure. If `final_cert` is provided it is checked against the last block
// (the "certificate proving safety" of §8.3); only then are all rounds
// marked final.
CatchupResult CatchupFromGenesis(const GenesisConfig& genesis, const ProtocolParams& params,
                                 const std::vector<Block>& blocks,
                                 const std::vector<Certificate>& certs, const VrfBackend& vrf,
                                 const SignerBackend& signer,
                                 const Certificate* final_cert = nullptr);

// --- Live catch-up wire protocol (§8.3) ---
//
// A lagging node that sees votes for rounds ahead of its tip asks a random
// peer for a batch of blocks + certificates starting at `from_round`. The
// response is verified through ValidateCertificate before any block is
// appended; a tampered batch costs the peer its turn (rotation) but can
// never corrupt the requester's chain.

class CatchupRequestMessage : public SimMessage {
 public:
  uint32_t requester = 0;   // NodeId to answer to (point-to-point reply).
  uint64_t seq = 0;         // Per-requester nonce: retries defeat gossip dedup.
  uint64_t from_round = 0;  // First round wanted (requester's next_round).
  uint32_t limit = 0;       // Max rounds in the response batch.

  static constexpr uint64_t kWireSize = 4 + 8 + 8 + 4;

  std::vector<uint8_t> Serialize() const;
  static std::optional<CatchupRequestMessage> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "catchup_req"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

class CatchupResponseMessage : public SimMessage {
 public:
  struct Entry {
    Block block;
    Certificate cert;  // Deciding-step certificate covering the block.
  };

  uint32_t responder = 0;
  uint64_t seq = 0;         // Echo of the request nonce.
  uint64_t from_round = 0;  // Round of entries.front() (echo of the request).
  uint64_t tip_round = 0;   // Responder's highest stored round (informational).
  std::vector<Entry> entries;  // Consecutive rounds; may be a partial batch
                               // when the responder's cert shard has gaps.
  std::optional<Certificate> final_cert;  // Highest final-step cert ≤ batch end.

  std::vector<uint8_t> Serialize() const;
  static std::optional<CatchupResponseMessage> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "catchup_resp"; }

 protected:
  uint64_t ComputeWireSize() const override;
  Hash256 ComputeDedupId() const override;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_CATCHUP_H_
