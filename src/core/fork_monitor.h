// Fork detection (§8.2): users passively monitor all BA* votes — including
// votes whose prev_hash does not match their own chain — and keep track of
// the forks those votes imply, so the periodic recovery protocol can propose
// the longest fork to agree on.
#ifndef ALGORAND_SRC_CORE_FORK_MONITOR_H_
#define ALGORAND_SRC_CORE_FORK_MONITOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/common/bytes.h"

namespace algorand {

class ForkMonitor {
 public:
  // Records a vote that extends a chain whose tip (prev_hash) is not ours.
  void RecordAlienVote(uint64_t round, const Hash256& prev_hash) {
    auto& info = alien_[prev_hash];
    info.votes += 1;
    if (round > info.highest_round) {
      info.highest_round = round;
    }
  }

  bool ForkSuspected() const { return !alien_.empty(); }
  size_t alien_tip_count() const { return alien_.size(); }

  uint64_t VotesForTip(const Hash256& tip) const {
    auto it = alien_.find(tip);
    return it == alien_.end() ? 0 : it->second.votes;
  }

  void Clear() { alien_.clear(); }

 private:
  struct TipInfo {
    uint64_t votes = 0;
    uint64_t highest_round = 0;
  };
  std::unordered_map<Hash256, TipInfo, FixedBytesHasher> alien_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_FORK_MONITOR_H_
