// Fork detection (§8.2): users passively monitor all BA* votes — including
// votes whose prev_hash does not match their own chain — and keep track of
// the forks those votes imply, so the periodic recovery protocol can propose
// the longest fork to agree on.
#ifndef ALGORAND_SRC_CORE_FORK_MONITOR_H_
#define ALGORAND_SRC_CORE_FORK_MONITOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/common/bytes.h"

namespace algorand {

class ForkMonitor {
 public:
  // Hard cap on tracked tips: a Byzantine voter flooding fabricated
  // prev_hashes must not grow this map without bound. When full, a new tip
  // evicts the stalest tracked one (lowest highest_round) only if it is
  // strictly fresher; otherwise it is dropped.
  static constexpr size_t kDefaultMaxTips = 1024;

  // Records a vote that extends a chain whose tip (prev_hash) is not ours.
  void RecordAlienVote(uint64_t round, const Hash256& prev_hash) {
    auto it = alien_.find(prev_hash);
    if (it == alien_.end()) {
      if (alien_.size() >= max_tips_ && !EvictStalerThan(round)) {
        return;
      }
      it = alien_.emplace(prev_hash, TipInfo{}).first;
    }
    it->second.votes += 1;
    if (round > it->second.highest_round) {
      it->second.highest_round = round;
    }
  }

  // Drops tips whose most recent vote is at or below the last final round:
  // finality supersedes any fork those votes implied. Call whenever the
  // final frontier advances so the map tracks only live suspicions.
  void Prune(uint64_t final_round) {
    for (auto it = alien_.begin(); it != alien_.end();) {
      it = it->second.highest_round <= final_round ? alien_.erase(it) : std::next(it);
    }
  }

  bool ForkSuspected() const { return !alien_.empty(); }
  size_t alien_tip_count() const { return alien_.size(); }

  uint64_t VotesForTip(const Hash256& tip) const {
    auto it = alien_.find(tip);
    return it == alien_.end() ? 0 : it->second.votes;
  }

  void Clear() { alien_.clear(); }
  void set_max_tips(size_t n) { max_tips_ = n == 0 ? 1 : n; }

 private:
  struct TipInfo {
    uint64_t votes = 0;
    uint64_t highest_round = 0;
  };

  // Evicts the tracked tip with the lowest highest_round if it is strictly
  // staler than `round`. Returns true if a slot was freed.
  bool EvictStalerThan(uint64_t round) {
    auto stalest = alien_.end();
    for (auto it = alien_.begin(); it != alien_.end(); ++it) {
      if (stalest == alien_.end() ||
          it->second.highest_round < stalest->second.highest_round) {
        stalest = it;
      }
    }
    if (stalest == alien_.end() || stalest->second.highest_round >= round) {
      return false;
    }
    alien_.erase(stalest);
    return true;
  }

  size_t max_tips_ = kDefaultMaxTips;
  std::unordered_map<Hash256, TipInfo, FixedBytesHasher> alien_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_FORK_MONITOR_H_
