#include "src/core/adversary_nodes.h"

#include "src/crypto/sha256.h"

namespace algorand {

void EquivocatingNode::MaybePropose() {
  SortitionResult sort = RunSortition(*crypto().vrf, key(), MakeContext().seed,
                                      params().tau_proposer, Role::kProposer, current_round(), 0,
                                      SelfWeight(), ledger().total_weight());
  if (sort.votes == 0) {
    return;
  }
  // Build two versions of the block that differ in (synthetic) payload.
  Block a = BuildBlockProposal();
  a.proposer_vrf = sort.hash;
  a.proposer_proof = sort.proof;
  Block b = a;
  b.padding_digest = Sha256::Hash(
      std::span<const uint8_t>(a.padding_digest.data(), a.padding_digest.size()));
  if (b.padding_digest == a.padding_digest) {
    b.padding_bytes = a.padding_bytes + 1;  // Guarantee distinct hashes.
  }

  coordinator_->RegisterEquivocation(id(), current_round(), a.Hash(), b.Hash());

  auto priority = std::make_shared<PriorityMessage>(MakePriorityMessage(
      key(), current_round(), sort.hash, sort.proof, sort.votes, *crypto().signer));
  GossipMessage(priority);

  // Send version A to even-indexed neighbours and version B to the rest.
  auto msg_a = std::make_shared<BlockMessage>();
  msg_a->block = a;
  auto msg_b = std::make_shared<BlockMessage>();
  msg_b->block = b;
  const auto& nbrs = gossip()->neighbors();
  for (size_t i = 0; i < nbrs.size(); ++i) {
    gossip()->SendTo(nbrs[i], i % 2 == 0 ? MessagePtr(msg_a) : MessagePtr(msg_b));
  }
}

void EquivocatingNode::EmitVotes(uint32_t step_code, const SortitionResult& sort,
                                 const Hash256& value) {
  auto pair = coordinator_->PairFor(current_round());
  if (!pair) {
    Node::EmitVotes(step_code, sort, value);
    return;
  }
  // Vote for both equivocated blocks. Honest relays forward at most one of
  // these per step (§8.4), but direct neighbours see both.
  Node::EmitVotes(step_code, sort, pair->first);
  Node::EmitVotes(step_code, sort, pair->second);
}

}  // namespace algorand
