#include "src/core/adversary_nodes.h"

#include <algorithm>
#include <vector>

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"

namespace algorand {

void EquivocatingNode::MaybePropose() {
  SortitionResult sort = RunSortition(*crypto().vrf, key(), MakeContext().seed,
                                      params().tau_proposer, Role::kProposer, current_round(), 0,
                                      SelfWeight(), ledger().total_weight());
  if (sort.votes == 0) {
    return;
  }
  // Build two versions of the block that differ in (synthetic) payload.
  Block a = BuildBlockProposal();
  a.proposer_vrf = sort.hash;
  a.proposer_proof = sort.proof;
  Block b = a;
  b.padding_digest = Sha256::Hash(
      std::span<const uint8_t>(a.padding_digest.data(), a.padding_digest.size()));
  if (b.padding_digest == a.padding_digest) {
    b.padding_bytes = a.padding_bytes + 1;  // Guarantee distinct hashes.
  }

  coordinator_->RegisterEquivocation(id(), current_round(), a.Hash(), b.Hash());

  auto priority = std::make_shared<PriorityMessage>(MakePriorityMessage(
      key(), current_round(), sort.hash, sort.proof, sort.votes, *crypto().signer));
  GossipMessage(priority);

  // Send version A to even-indexed neighbours and version B to the rest.
  auto msg_a = std::make_shared<BlockMessage>();
  msg_a->block = a;
  auto msg_b = std::make_shared<BlockMessage>();
  msg_b->block = b;
  const auto& nbrs = gossip()->neighbors();
  for (size_t i = 0; i < nbrs.size(); ++i) {
    gossip()->SendTo(nbrs[i], i % 2 == 0 ? MessagePtr(msg_a) : MessagePtr(msg_b));
  }
}

void EquivocatingNode::EmitVotes(uint32_t step_code, const SortitionResult& sort,
                                 const Hash256& value) {
  auto pair = coordinator_->PairFor(current_round());
  if (!pair) {
    Node::EmitVotes(step_code, sort, value);
    return;
  }
  // Vote for both equivocated blocks. Honest relays forward at most one of
  // these per step (§8.4), but direct neighbours see both.
  Node::EmitVotes(step_code, sort, pair->first);
  Node::EmitVotes(step_code, sort, pair->second);
}

uint64_t GrindingProposerNode::ScoreSeed(const SeedBytes& seed) const {
  return RunSortition(*crypto().vrf, key(), seed, params().tau_proposer, Role::kProposer,
                      current_round() + 1, 0, SelfWeight(), ledger().total_weight())
      .votes;
}

void GrindingProposerNode::MaybePropose() {
  SortitionResult sort = RunSortition(*crypto().vrf, key(), MakeContext().seed,
                                      params().tau_proposer, Role::kProposer, current_round(), 0,
                                      SelfWeight(), ledger().total_weight());
  if (sort.votes == 0) {
    return;
  }
  ++stats_.rounds_selected;

  Block block = BuildBlockProposal();
  block.proposer_vrf = sort.hash;
  block.proposer_proof = sort.proof;

  // Grind payload variants and count how many distinct next-round seeds they
  // can reach. BuildBlockProposal already committed next_seed = VRF(seed_r ||
  // r+1), whose input contains no block payload, so mutating the payload
  // cannot move the seed — the loop is the attack *attempt* the test
  // quantifies, not a working lever.
  Block best = block;
  std::vector<SeedBytes> seeds;
  seeds.reserve(grind_candidates_);
  for (size_t k = 0; k < grind_candidates_; ++k) {
    Block variant = block;
    Writer w;
    w.Fixed(block.padding_digest);
    w.U64(k);
    variant.padding_digest = Sha256::Hash(w.buffer());
    ++stats_.candidates_tried;
    seeds.push_back(variant.next_seed);
    // Prefer the variant whose hash sorts lowest — an arbitrary tiebreak the
    // real attacker would replace with its payoff function if the seed
    // actually moved.
    if (variant.Hash() < best.Hash()) {
      best = variant;
    }
  }
  std::sort(seeds.begin(), seeds.end());
  stats_.distinct_next_seeds +=
      static_cast<uint64_t>(std::unique(seeds.begin(), seeds.end()) - seeds.begin());

  // The one real lever (§5.2): withholding the proposal steers the round
  // toward the empty block, whose seed is H(seed_r || r+1) instead of the
  // VRF output this node would have to publish.
  const SeedBytes fallback =
      Block::DerivedSeed(ledger().SeedForRound(current_round()), current_round() + 1);
  if (ScoreSeed(fallback) > ScoreSeed(best.next_seed)) {
    ++stats_.fallback_preferred;
    if (withhold_when_worse_) {
      ++stats_.withheld;
      return;
    }
  }

  auto priority = std::make_shared<PriorityMessage>(MakePriorityMessage(
      key(), current_round(), sort.hash, sort.proof, sort.votes, *crypto().signer));
  if (params().priority_gossip_enabled) {
    GossipMessage(priority);
  }
  auto block_msg = std::make_shared<BlockMessage>();
  block_msg->block = best;
  GossipMessage(block_msg);
}

}  // namespace algorand
