// Batch transaction-signature verification.
//
// A 1 MB block carries ~6,900 Ed25519 signatures — §10.1 identifies exactly
// this as the dominant CPU cost of a node. TxSigVerifier fans a block's
// signature checks out across the shared VerifyPool and memoizes verdicts in
// the round-pruned VerificationCache keyed by transaction id: a transaction
// prewarmed at gossip receipt (Node::PrewarmMessage) or verified once at
// submit time is never re-verified when the block containing it arrives.
// Signature validity is a pure function of the transaction bytes (no round
// context), so cached verdicts need no ContextKey salt and worker count can
// never change a protocol decision — with zero workers everything runs
// inline on the calling thread, the deterministic tier-1 configuration.
#ifndef ALGORAND_SRC_CORE_TX_VERIFIER_H_
#define ALGORAND_SRC_CORE_TX_VERIFIER_H_

#include <vector>

#include "src/common/verify_pool.h"
#include "src/core/verification_cache.h"
#include "src/crypto/signer.h"
#include "src/ledger/transaction.h"

namespace algorand {

class TxSigVerifier {
 public:
  // All pointers are borrowed. `cache` and `pool` may be null (inline,
  // uncached verification); `signer` must not be.
  TxSigVerifier(const SignerBackend* signer, VerificationCache* cache, VerifyPool* pool)
      : signer_(signer), cache_(cache), pool_(pool) {}

  // Verifies one signature through the cache.
  bool VerifyOne(const Transaction& tx) const;

  // Verifies every signature; false if any is invalid. With pool workers the
  // checks run chunked across threads (cache-aware, so prewarmed entries are
  // free); otherwise sequentially. Verdict is worker-count independent.
  bool VerifyBatch(const std::vector<Transaction>& txns) const;

  // Submits pool jobs that prewarm the cache for `txns` (gossip-receipt
  // pipeline hook). No-op without a pool worker or cache.
  void Prewarm(const std::vector<Transaction>& txns) const;

 private:
  uint64_t ComputeOne(const Transaction& tx) const {
    return signer_->Verify(tx.from, tx.SerializeBody(), tx.signature) ? 1 : 0;
  }

  const SignerBackend* signer_;
  VerificationCache* cache_;
  VerifyPool* pool_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_TX_VERIFIER_H_
