// Numerical analysis behind Figure 3 and Appendix B: the expected committee
// size tau needed so that, with probability >= 1 - epsilon, a sortition-drawn
// committee simultaneously satisfies BA*'s safety and liveness constraints
//   (1)  g > T * tau            (enough honest votes to make progress)
//   (2)  g/2 + b <= T * tau     (adversary + split honest votes cannot
//                                certify two values)
// where g and b are the honest and malicious committee-member counts. With
// many users, sortition draws are Poisson: g ~ Poisson(h*tau),
// b ~ Poisson((1-h)*tau).
#ifndef ALGORAND_SRC_CORE_COMMITTEE_ANALYSIS_H_
#define ALGORAND_SRC_CORE_COMMITTEE_ANALYSIS_H_

#include <cstdint>

namespace algorand {

// P(constraints violated) for honest fraction h, committee size tau and
// threshold fraction T, computed by exact summation of the Poisson joint
// distribution over a +-12 sigma window.
double CommitteeViolationProbability(double h, double tau, double threshold);

// The best (smallest) violation probability over T in (2/3, 1), along with
// the T that achieves it.
struct ThresholdChoice {
  double threshold = 0;
  double violation = 1.0;
};
ThresholdChoice BestThreshold(double h, double tau);

// Smallest expected committee size tau such that some threshold T keeps the
// violation probability below epsilon. Returns 0 if none is found below
// `tau_limit`.
double RequiredCommitteeSize(double h, double epsilon, double tau_limit = 20000);

// §8.3 certificate-forgery bound: log2 of the probability that the adversary
// alone controls more than T*tau votes in one step's committee (it could then
// fabricate a certificate for an arbitrary step number). The paper states
// this is below 2^-166 per step for tau_step > 1000 at h = 80%.
double Log2CertificateForgeryProbability(double h, double tau, double threshold);

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_COMMITTEE_ANALYSIS_H_
