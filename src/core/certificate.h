// Block certificates (§8.3): the set of votes from the deciding BA* step
// that lets any (possibly new) user replay the consensus conclusion for a
// round. A certificate is valid when every vote checks out (signature,
// sortition for the claimed round/step, binding to the same previous block)
// and the weighted votes for the block hash exceed the step threshold.
#ifndef ALGORAND_SRC_CORE_CERTIFICATE_H_
#define ALGORAND_SRC_CORE_CERTIFICATE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/context.h"
#include "src/core/messages.h"
#include "src/core/params.h"
#include "src/core/sortition.h"
#include "src/crypto/vrf.h"

namespace algorand {

struct Certificate {
  uint64_t round = 0;
  uint32_t step = 0;  // Wire step code whose votes certify the value.
  Hash256 block_hash;
  std::vector<VoteMessage> votes;

  // Bytes this certificate would occupy on the wire.
  uint64_t WireSize() const;

  std::vector<uint8_t> Serialize() const;
  static std::optional<Certificate> Deserialize(std::span<const uint8_t> data);
};

// Validates a certificate against the round context (seed, weights, previous
// block hash). `final_cert` selects the final-step threshold (T_final *
// tau_final) over the ordinary step threshold.
bool ValidateCertificate(const Certificate& cert, const RoundContext& ctx,
                         const ProtocolParams& params, const VrfBackend& vrf,
                         const SignerBackend& signer);

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_CERTIFICATE_H_
