// Weighted vote tallying for one (round, step) — the data structure behind
// CountVotes (Algorithm 5) and CommonCoin (Algorithm 9).
//
// Each public key is counted once (first vote wins, matching the `voters`
// set in the paper); a vote carries the voter's sub-user count as weight.
#ifndef ALGORAND_SRC_CORE_VOTE_COUNTER_H_
#define ALGORAND_SRC_CORE_VOTE_COUNTER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/vrf.h"

namespace algorand {

class StepTally {
 public:
  struct Entry {
    PublicKey pk;
    uint64_t weight = 0;
    Hash256 value;
    VrfOutput sorthash;
  };

  // Records a vote; returns false if this pk already voted in the step.
  bool AddVote(const PublicKey& pk, uint64_t weight, const Hash256& value,
               const VrfOutput& sorthash);

  // Total weighted votes for a value.
  uint64_t CountFor(const Hash256& value) const;

  // The first value whose count exceeds `threshold`, in arrival order of the
  // crossing vote (at most one value can cross a >1/2-of-committee threshold
  // under honest-majority assumptions, but ties from an adversary resolve by
  // arrival, matching the streaming CountVotes loop).
  std::optional<Hash256> Leader(double threshold) const;

  // Common coin (Algorithm 9): least-significant bit of the minimum
  // H(sorthash || j) over all recorded votes and their sub-user indices.
  int CommonCoin() const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t voter_count() const { return voters_.size(); }
  uint64_t total_weight() const { return total_weight_; }

 private:
  std::unordered_set<PublicKey, FixedBytesHasher> voters_;
  std::unordered_map<Hash256, uint64_t, FixedBytesHasher> counts_;
  std::vector<Entry> entries_;  // Arrival order, for certificates and coin.
  uint64_t total_weight_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_VOTE_COUNTER_H_
