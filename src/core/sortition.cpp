#include "src/core/sortition.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"

namespace algorand {

std::vector<uint8_t> SortitionAlpha(const SeedBytes& seed, Role role, uint64_t round,
                                    uint32_t step) {
  Writer w;
  w.Fixed(seed);
  w.U8(static_cast<uint8_t>(role));
  w.U64(round);
  w.U32(step);
  return w.Take();
}

long double HashToFraction(const VrfOutput& hash) {
  // Top 128 bits, big-endian, as a fraction of [0,1). long double on x86 has
  // a 64-bit mantissa; the second word contributes the tail. 2^-128 precision
  // dwarfs any interval width that matters at simulation scales.
  uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | hash[static_cast<size_t>(i)];
    lo = (lo << 8) | hash[static_cast<size_t>(i + 8)];
  }
  long double frac =
      static_cast<long double>(hi) * 0x1.0p-64L + static_cast<long double>(lo) * 0x1.0p-128L;
  // The true fraction is < 1, but rounding at the top of the range can hit
  // 1.0 exactly; clamp so callers can rely on [0, 1).
  if (frac >= 1.0L) {
    frac = 1.0L - 0x1.0p-64L;
  }
  return frac;
}

uint64_t SelectSubUsersUncached(const VrfOutput& hash, uint64_t weight, double p) {
  if (weight == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return weight;
  }
  const long double frac = HashToFraction(hash);
  const long double w = static_cast<long double>(weight);
  const long double lp = static_cast<long double>(p);

  // Walk the binomial CDF using the term recurrence
  //   B(k+1)/B(k) = (w-k)/(k+1) * p/(1-p).
  // The term is tracked in log space so weights with w*p far past the double
  // range still work; the cumulative sum only accumulates representable
  // terms, which is exactly the set of terms that can move a 128-bit uniform
  // fraction across an interval boundary.
  const long double log_ratio_base = std::log(lp) - std::log1p(-lp);
  long double log_term = w * std::log1p(-lp);  // log B(0; w, p).
  long double cumulative = 0.0L;
  uint64_t k = 0;
  for (;;) {
    cumulative += std::exp(log_term);
    if (frac < cumulative) {
      return k;
    }
    if (k >= weight) {
      // frac sits in the final sliver above CDF(w) that exists only due to
      // rounding; everything is selected.
      return weight;
    }
    log_term += std::log(w - static_cast<long double>(k)) -
                std::log(static_cast<long double>(k) + 1.0L) + log_ratio_base;
    ++k;
    // Termination guard: once the CDF is indistinguishable from 1 the loop
    // cannot be crossed by frac < 1, but frac can sit in the 2^-128 tail.
    if (cumulative >= 1.0L - 1e-30L) {
      return k;
    }
  }
}

namespace {

// Precomputed CDF prefix for one (weight, p) pair: cdf[k] is the exact
// cumulative long double the recurrence produces after adding term k, so the
// cached lookup reproduces the uncached loop's result bit-for-bit.
struct CdfTable {
  std::vector<long double> cdf;
  // Why the table ended. Exactly one of these is true unless truncated.
  bool ended_by_guard = false;   // cumulative >= 1 - 1e-30 after cdf.size()-1.
  bool ended_by_weight = false;  // Last entry is k == weight.
  // Resume state when truncated at kSortitionCdfMaxTableEntries: the loop
  // variables as they stood entering iteration k == cdf.size().
  long double tail_log_term = 0.0L;
  long double tail_cumulative = 0.0L;
  long double log_ratio_base = 0.0L;
};

std::shared_ptr<const CdfTable> BuildCdfTable(uint64_t weight, double p) {
  auto table = std::make_shared<CdfTable>();
  const long double w = static_cast<long double>(weight);
  const long double lp = static_cast<long double>(p);
  table->log_ratio_base = std::log(lp) - std::log1p(-lp);
  long double log_term = w * std::log1p(-lp);
  long double cumulative = 0.0L;
  uint64_t k = 0;
  for (;;) {
    cumulative += std::exp(log_term);
    table->cdf.push_back(cumulative);
    if (k >= weight) {
      table->ended_by_weight = true;
      break;
    }
    log_term += std::log(w - static_cast<long double>(k)) -
                std::log(static_cast<long double>(k) + 1.0L) + table->log_ratio_base;
    ++k;
    if (cumulative >= 1.0L - 1e-30L) {
      table->ended_by_guard = true;
      break;
    }
    if (table->cdf.size() >= kSortitionCdfMaxTableEntries) {
      table->tail_log_term = log_term;
      table->tail_cumulative = cumulative;
      break;
    }
  }
  return table;
}

uint64_t LookupCdf(const CdfTable& table, long double frac, uint64_t weight) {
  // The uncached loop returns the first k with frac < CDF(k); the cumulative
  // sequence is non-decreasing (terms are exp(...) >= 0), so that k is a
  // binary search.
  auto it = std::upper_bound(table.cdf.begin(), table.cdf.end(), frac);
  if (it != table.cdf.end()) {
    return static_cast<uint64_t>(it - table.cdf.begin());
  }
  if (table.ended_by_weight) {
    return weight;  // The rounding sliver above CDF(w): everything selected.
  }
  if (table.ended_by_guard) {
    return table.cdf.size();  // The loop's post-increment guard exit.
  }
  // Truncated table: resume the exact recurrence where the table stopped.
  const long double w = static_cast<long double>(weight);
  long double log_term = table.tail_log_term;
  long double cumulative = table.tail_cumulative;
  uint64_t k = table.cdf.size();
  for (;;) {
    cumulative += std::exp(log_term);
    if (frac < cumulative) {
      return k;
    }
    if (k >= weight) {
      return weight;
    }
    log_term += std::log(w - static_cast<long double>(k)) -
                std::log(static_cast<long double>(k) + 1.0L) + table.log_ratio_base;
    ++k;
    if (cumulative >= 1.0L - 1e-30L) {
      return k;
    }
  }
}

struct CdfKey {
  uint64_t weight;
  uint64_t p_bits;
  bool operator==(const CdfKey& o) const { return weight == o.weight && p_bits == o.p_bits; }
};
struct CdfKeyHasher {
  size_t operator()(const CdfKey& k) const {
    return static_cast<size_t>(k.weight * 0x9e3779b97f4a7c15ULL ^ k.p_bits);
  }
};

// One LRU stripe. The lock covers only map/list maintenance; misses build
// their table outside it (a racing duplicate build is harmless — the first
// insert wins and losers adopt it).
class CdfCacheStripe {
 public:
  explicit CdfCacheStripe(size_t max_entries) : max_entries_(max_entries) {}

  std::shared_ptr<const CdfTable> Get(const CdfKey& key, uint64_t weight, double p) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<const CdfTable> table = BuildCdfTable(weight, p);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      return it->second->second;  // Lost the build race; use the winner's.
    }
    lru_.emplace_front(key, table);
    index_[key] = lru_.begin();
    if (lru_.size() > max_entries_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    return table;
  }

  void AccumulateStats(SortitionCdfCacheStats* out) const {
    out->hits += hits_.load(std::memory_order_relaxed);
    out->misses += misses_.load(std::memory_order_relaxed);
    out->evictions += evictions_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    out->entries += lru_.size();
  }

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::list<std::pair<CdfKey, std::shared_ptr<const CdfTable>>> lru_;
  std::unordered_map<CdfKey, decltype(lru_)::iterator, CdfKeyHasher> index_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

// Mutex-striped LRU keyed by (weight, exact p bits). Sortition runs
// concurrently on the protocol thread, VerifyPool workers and the parallel
// engine's shard workers; striping by key hash keeps them off each other's
// locks (distinct weights — different nodes' stakes — land on different
// stripes). Total capacity matches the old single-stripe cache (256), split
// evenly; GetSortitionCdfCacheStats sums the stripes, so hits + misses still
// equals total lookups and `entries` is the whole cache's population.
class CdfCache {
 public:
  static constexpr size_t kStripes = 16;
  static constexpr size_t kMaxEntries = 256;

  CdfCache() {
    stripes_.reserve(kStripes);
    for (size_t i = 0; i < kStripes; ++i) {
      stripes_.emplace_back(std::make_unique<CdfCacheStripe>(kMaxEntries / kStripes));
    }
  }

  std::shared_ptr<const CdfTable> Get(uint64_t weight, double p) {
    CdfKey key{weight, BitsOf(p)};
    return stripes_[CdfKeyHasher{}(key) % kStripes]->Get(key, weight, p);
  }

  SortitionCdfCacheStats Stats() const {
    SortitionCdfCacheStats out;
    for (const auto& stripe : stripes_) {
      stripe->AccumulateStats(&out);
    }
    return out;
  }

 private:
  static uint64_t BitsOf(double p) {
    uint64_t bits = 0;
    std::memcpy(&bits, &p, sizeof(bits));
    return bits;
  }

  std::vector<std::unique_ptr<CdfCacheStripe>> stripes_;
};

CdfCache& GlobalCdfCache() {
  static CdfCache* cache = new CdfCache();  // Leaked: outlives worker threads.
  return *cache;
}

}  // namespace

uint64_t SelectSubUsers(const VrfOutput& hash, uint64_t weight, double p) {
  if (weight == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return weight;
  }
  const long double frac = HashToFraction(hash);
  std::shared_ptr<const CdfTable> table = GlobalCdfCache().Get(weight, p);
  return LookupCdf(*table, frac, weight);
}

SortitionCdfCacheStats GetSortitionCdfCacheStats() { return GlobalCdfCache().Stats(); }

SortitionResult RunSortition(const VrfBackend& vrf, const Ed25519KeyPair& key,
                             const SeedBytes& seed, double tau, Role role, uint64_t round,
                             uint32_t step, uint64_t weight, uint64_t total_weight) {
  SortitionResult out;
  if (total_weight == 0) {
    return out;
  }
  std::vector<uint8_t> alpha = SortitionAlpha(seed, role, round, step);
  VrfResult res = vrf.Prove(key, alpha);
  out.hash = res.output;
  out.proof = res.proof;
  double p = tau / static_cast<double>(total_weight);
  out.votes = SelectSubUsers(res.output, weight, p);
  return out;
}

uint64_t VerifySortition(const VrfBackend& vrf, const PublicKey& pk, const VrfOutput& hash,
                         const VrfProof& proof, const SeedBytes& seed, double tau, Role role,
                         uint64_t round, uint32_t step, uint64_t weight, uint64_t total_weight) {
  if (total_weight == 0) {
    return 0;
  }
  std::vector<uint8_t> alpha = SortitionAlpha(seed, role, round, step);
  auto output = vrf.Verify(pk, alpha, proof);
  if (!output || *output != hash) {
    return 0;
  }
  double p = tau / static_cast<double>(total_weight);
  return SelectSubUsers(hash, weight, p);
}

Hash256 ProposalPriority(const VrfOutput& hash, uint64_t votes) {
  Hash256 best;
  for (size_t i = 0; i < best.size(); ++i) {
    best[i] = 0xff;
  }
  for (uint64_t j = 0; j < votes; ++j) {
    Writer w;
    w.Fixed(hash);
    w.U64(j);
    Hash256 candidate = Sha256::Hash(w.buffer());
    if (candidate < best) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace algorand
