#include "src/core/sortition.h"

#include <cmath>

#include "src/common/serialize.h"
#include "src/crypto/sha256.h"

namespace algorand {

std::vector<uint8_t> SortitionAlpha(const SeedBytes& seed, Role role, uint64_t round,
                                    uint32_t step) {
  Writer w;
  w.Fixed(seed);
  w.U8(static_cast<uint8_t>(role));
  w.U64(round);
  w.U32(step);
  return w.Take();
}

long double HashToFraction(const VrfOutput& hash) {
  // Top 128 bits, big-endian, as a fraction of [0,1). long double on x86 has
  // a 64-bit mantissa; the second word contributes the tail. 2^-128 precision
  // dwarfs any interval width that matters at simulation scales.
  uint64_t hi = 0, lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | hash[static_cast<size_t>(i)];
    lo = (lo << 8) | hash[static_cast<size_t>(i + 8)];
  }
  long double frac =
      static_cast<long double>(hi) * 0x1.0p-64L + static_cast<long double>(lo) * 0x1.0p-128L;
  // The true fraction is < 1, but rounding at the top of the range can hit
  // 1.0 exactly; clamp so callers can rely on [0, 1).
  if (frac >= 1.0L) {
    frac = 1.0L - 0x1.0p-64L;
  }
  return frac;
}

uint64_t SelectSubUsers(const VrfOutput& hash, uint64_t weight, double p) {
  if (weight == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return weight;
  }
  const long double frac = HashToFraction(hash);
  const long double w = static_cast<long double>(weight);
  const long double lp = static_cast<long double>(p);

  // Walk the binomial CDF using the term recurrence
  //   B(k+1)/B(k) = (w-k)/(k+1) * p/(1-p).
  // The term is tracked in log space so weights with w*p far past the double
  // range still work; the cumulative sum only accumulates representable
  // terms, which is exactly the set of terms that can move a 128-bit uniform
  // fraction across an interval boundary.
  const long double log_ratio_base = std::log(lp) - std::log1p(-lp);
  long double log_term = w * std::log1p(-lp);  // log B(0; w, p).
  long double cumulative = 0.0L;
  uint64_t k = 0;
  for (;;) {
    cumulative += std::exp(log_term);
    if (frac < cumulative) {
      return k;
    }
    if (k >= weight) {
      // frac sits in the final sliver above CDF(w) that exists only due to
      // rounding; everything is selected.
      return weight;
    }
    log_term += std::log(w - static_cast<long double>(k)) -
                std::log(static_cast<long double>(k) + 1.0L) + log_ratio_base;
    ++k;
    // Termination guard: once the CDF is indistinguishable from 1 the loop
    // cannot be crossed by frac < 1, but frac can sit in the 2^-128 tail.
    if (cumulative >= 1.0L - 1e-30L) {
      return k;
    }
  }
}

SortitionResult RunSortition(const VrfBackend& vrf, const Ed25519KeyPair& key,
                             const SeedBytes& seed, double tau, Role role, uint64_t round,
                             uint32_t step, uint64_t weight, uint64_t total_weight) {
  SortitionResult out;
  if (total_weight == 0) {
    return out;
  }
  std::vector<uint8_t> alpha = SortitionAlpha(seed, role, round, step);
  VrfResult res = vrf.Prove(key, alpha);
  out.hash = res.output;
  out.proof = res.proof;
  double p = tau / static_cast<double>(total_weight);
  out.votes = SelectSubUsers(res.output, weight, p);
  return out;
}

uint64_t VerifySortition(const VrfBackend& vrf, const PublicKey& pk, const VrfOutput& hash,
                         const VrfProof& proof, const SeedBytes& seed, double tau, Role role,
                         uint64_t round, uint32_t step, uint64_t weight, uint64_t total_weight) {
  if (total_weight == 0) {
    return 0;
  }
  std::vector<uint8_t> alpha = SortitionAlpha(seed, role, round, step);
  auto output = vrf.Verify(pk, alpha, proof);
  if (!output || *output != hash) {
    return 0;
  }
  double p = tau / static_cast<double>(total_weight);
  return SelectSubUsers(hash, weight, p);
}

Hash256 ProposalPriority(const VrfOutput& hash, uint64_t votes) {
  Hash256 best;
  for (size_t i = 0; i < best.size(); ++i) {
    best[i] = 0xff;
  }
  for (uint64_t j = 0; j < votes; ++j) {
    Writer w;
    w.Fixed(hash);
    w.U64(j);
    Hash256 candidate = Sha256::Hash(w.buffer());
    if (candidate < best) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace algorand
