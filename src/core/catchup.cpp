#include "src/core/catchup.h"

#include "src/crypto/sha256.h"

namespace algorand {
namespace {

// The context pointer must outlive the returned RoundContext's use.
RoundContext ContextFor(const Ledger* ledger, const ProtocolParams& params, uint64_t round) {
  RoundContext ctx;
  ctx.round = round;
  ctx.seed = ledger->SortitionSeed(round, params.seed_refresh_interval);
  ctx.prev_hash = ledger->tip_hash();
  ctx.total_weight = ledger->total_weight();
  ctx.weight_of = [ledger](const PublicKey& pk) { return ledger->WeightOf(pk); };
  return ctx;
}

}  // namespace

CatchupResult CatchupFromGenesis(const GenesisConfig& genesis, const ProtocolParams& params,
                                 const std::vector<Block>& blocks,
                                 const std::vector<Certificate>& certs, const VrfBackend& vrf,
                                 const SignerBackend& signer, const Certificate* final_cert) {
  CatchupResult result;
  result.ledger = std::make_unique<Ledger>(genesis);
  if (blocks.size() != certs.size()) {
    result.error = "blocks/certificates length mismatch";
    return result;
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Block& block = blocks[i];
    const Certificate& cert = certs[i];
    const uint64_t round = result.ledger->next_round();
    if (block.round != round) {
      result.error = "block round mismatch at round " + std::to_string(round);
      return result;
    }
    if (cert.block_hash != block.Hash()) {
      result.error = "certificate does not cover block at round " + std::to_string(round);
      return result;
    }
    RoundContext ctx = ContextFor(result.ledger.get(), params, round);
    if (!ValidateCertificate(cert, ctx, params, vrf, signer)) {
      result.error = "invalid certificate at round " + std::to_string(round);
      return result;
    }
    if (!result.ledger->Append(block, ConsensusKind::kTentative)) {
      result.error = "block does not apply at round " + std::to_string(round);
      return result;
    }
    ++result.verified_rounds;
  }
  if (final_cert != nullptr) {
    // The final-step certificate proves safety of its round; since final
    // blocks are totally ordered, checking the most recent one suffices
    // (§8.3). Its round must be within the replayed chain.
    if (final_cert->round >= result.ledger->next_round()) {
      result.error = "final certificate beyond chain";
      return result;
    }
    const Block& covered = result.ledger->BlockAtRound(final_cert->round);
    if (final_cert->block_hash != covered.Hash() || final_cert->step != kStepFinal) {
      result.error = "final certificate mismatch";
      return result;
    }
    // Rebuild the context of that round: seeds and weights as of its start.
    // Weights may have shifted since; for equal-stake simulations the current
    // table matches. A production implementation would keep per-round weight
    // snapshots; here we validate against the ledger's weight history if
    // configured, else the current table.
    RoundContext ctx;
    ctx.round = final_cert->round;
    ctx.seed = result.ledger->SortitionSeed(final_cert->round, params.seed_refresh_interval);
    ctx.prev_hash = covered.prev_hash;
    ctx.total_weight = result.ledger->total_weight();
    const Ledger* l = result.ledger.get();
    ctx.weight_of = [l](const PublicKey& pk) { return l->WeightOf(pk); };
    if (!ValidateCertificate(*final_cert, ctx, params, vrf, signer)) {
      result.error = "invalid final certificate";
      return result;
    }
    result.ledger->MarkFinal(final_cert->round);
    for (uint64_t r = 1; r < final_cert->round; ++r) {
      result.ledger->MarkFinal(r);
    }
  }
  result.ok = true;
  return result;
}

std::vector<uint8_t> CatchupRequestMessage::Serialize() const {
  Writer w;
  w.U32(requester);
  w.U64(seq);
  w.U64(from_round);
  w.U32(limit);
  return w.Take();
}

std::optional<CatchupRequestMessage> CatchupRequestMessage::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  CatchupRequestMessage m;
  m.requester = r.U32();
  m.seq = r.U64();
  m.from_round = r.U64();
  m.limit = r.U32();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 CatchupRequestMessage::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> CatchupResponseMessage::Serialize() const {
  Writer w;
  w.U32(responder);
  w.U64(seq);
  w.U64(from_round);
  w.U64(tip_round);
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.Bytes(e.block.Serialize());
    w.Bytes(e.cert.Serialize());
  }
  w.U8(final_cert.has_value() ? 1 : 0);
  if (final_cert.has_value()) {
    w.Bytes(final_cert->Serialize());
  }
  return w.Take();
}

std::optional<CatchupResponseMessage> CatchupResponseMessage::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  CatchupResponseMessage m;
  m.responder = r.U32();
  m.seq = r.U64();
  m.from_round = r.U64();
  m.tip_round = r.U64();
  uint32_t n = r.U32();
  if (!r.ok() || n > data.size()) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < n; ++i) {
    auto bb = r.Bytes();
    auto block = Block::Deserialize(bb);
    auto cb = r.Bytes();
    auto cert = Certificate::Deserialize(cb);
    if (!block || !cert) {
      return std::nullopt;
    }
    m.entries.push_back(Entry{std::move(*block), std::move(*cert)});
  }
  uint8_t has_final = r.U8();
  if (!r.ok() || has_final > 1) {
    return std::nullopt;
  }
  if (has_final == 1) {
    auto fb = r.Bytes();
    auto cert = Certificate::Deserialize(fb);
    if (!cert) {
      return std::nullopt;
    }
    m.final_cert = std::move(*cert);
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

uint64_t CatchupResponseMessage::ComputeWireSize() const {
  uint64_t size = 4 + 8 + 8 + 8 + 4 + 1;
  for (const Entry& e : entries) {
    size += 8 + e.block.WireSize() + e.cert.WireSize();
  }
  if (final_cert.has_value()) {
    size += 4 + final_cert->WireSize();
  }
  return size;
}

Hash256 CatchupResponseMessage::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

}  // namespace algorand
