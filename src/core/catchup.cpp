#include "src/core/catchup.h"

namespace algorand {
namespace {

// The context pointer must outlive the returned RoundContext's use.
RoundContext ContextFor(const Ledger* ledger, const ProtocolParams& params, uint64_t round) {
  RoundContext ctx;
  ctx.round = round;
  ctx.seed = ledger->SortitionSeed(round, params.seed_refresh_interval);
  ctx.prev_hash = ledger->tip_hash();
  ctx.total_weight = ledger->total_weight();
  ctx.weight_of = [ledger](const PublicKey& pk) { return ledger->WeightOf(pk); };
  return ctx;
}

}  // namespace

CatchupResult CatchupFromGenesis(const GenesisConfig& genesis, const ProtocolParams& params,
                                 const std::vector<Block>& blocks,
                                 const std::vector<Certificate>& certs, const VrfBackend& vrf,
                                 const SignerBackend& signer, const Certificate* final_cert) {
  CatchupResult result;
  result.ledger = std::make_unique<Ledger>(genesis);
  if (blocks.size() != certs.size()) {
    result.error = "blocks/certificates length mismatch";
    return result;
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    const Block& block = blocks[i];
    const Certificate& cert = certs[i];
    const uint64_t round = result.ledger->next_round();
    if (block.round != round) {
      result.error = "block round mismatch at round " + std::to_string(round);
      return result;
    }
    if (cert.block_hash != block.Hash()) {
      result.error = "certificate does not cover block at round " + std::to_string(round);
      return result;
    }
    RoundContext ctx = ContextFor(result.ledger.get(), params, round);
    if (!ValidateCertificate(cert, ctx, params, vrf, signer)) {
      result.error = "invalid certificate at round " + std::to_string(round);
      return result;
    }
    if (!result.ledger->Append(block, ConsensusKind::kTentative)) {
      result.error = "block does not apply at round " + std::to_string(round);
      return result;
    }
    ++result.verified_rounds;
  }
  if (final_cert != nullptr) {
    // The final-step certificate proves safety of its round; since final
    // blocks are totally ordered, checking the most recent one suffices
    // (§8.3). Its round must be within the replayed chain.
    if (final_cert->round >= result.ledger->next_round()) {
      result.error = "final certificate beyond chain";
      return result;
    }
    const Block& covered = result.ledger->BlockAtRound(final_cert->round);
    if (final_cert->block_hash != covered.Hash() || final_cert->step != kStepFinal) {
      result.error = "final certificate mismatch";
      return result;
    }
    // Rebuild the context of that round: seeds and weights as of its start.
    // Weights may have shifted since; for equal-stake simulations the current
    // table matches. A production implementation would keep per-round weight
    // snapshots; here we validate against the ledger's weight history if
    // configured, else the current table.
    RoundContext ctx;
    ctx.round = final_cert->round;
    ctx.seed = result.ledger->SortitionSeed(final_cert->round, params.seed_refresh_interval);
    ctx.prev_hash = covered.prev_hash;
    ctx.total_weight = result.ledger->total_weight();
    const Ledger* l = result.ledger.get();
    ctx.weight_of = [l](const PublicKey& pk) { return l->WeightOf(pk); };
    if (!ValidateCertificate(*final_cert, ctx, params, vrf, signer)) {
      result.error = "invalid final certificate";
      return result;
    }
    result.ledger->MarkFinal(final_cert->round);
    for (uint64_t r = 1; r < final_cert->round; ++r) {
      result.ledger->MarkFinal(r);
    }
  }
  result.ok = true;
  return result;
}

}  // namespace algorand
