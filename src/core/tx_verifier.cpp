#include "src/core/tx_verifier.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace algorand {

bool TxSigVerifier::VerifyOne(const Transaction& tx) const {
  if (cache_ == nullptr) {
    return ComputeOne(tx) != 0;
  }
  return cache_->GetOrCompute(tx.Id(), [&] { return ComputeOne(tx); }) != 0;
}

bool TxSigVerifier::VerifyBatch(const std::vector<Transaction>& txns) const {
  const size_t workers = pool_ == nullptr ? 0 : pool_->worker_count();
  if (workers == 0 || txns.size() < 2) {
    for (const Transaction& tx : txns) {
      if (!VerifyOne(tx)) {
        return false;
      }
    }
    return true;
  }
  // Chunk the block across workers; each chunk goes through the cache so
  // gossip-prewarmed signatures cost a lookup, not a verification.
  const size_t jobs = std::min(txns.size(), workers * 4);
  std::atomic<bool> all_ok{true};
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = jobs;
  for (size_t j = 0; j < jobs; ++j) {
    pool_->Submit([&, j] {
      for (size_t i = j; i < txns.size(); i += jobs) {
        if (!all_ok.load(std::memory_order_relaxed)) {
          break;
        }
        if (!VerifyOne(txns[i])) {
          all_ok.store(false, std::memory_order_relaxed);
          break;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) {
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return pending == 0; });
  return all_ok.load(std::memory_order_relaxed);
}

void TxSigVerifier::Prewarm(const std::vector<Transaction>& txns) const {
  if (pool_ == nullptr || pool_->worker_count() == 0 || cache_ == nullptr || txns.empty()) {
    return;
  }
  const size_t jobs = std::min(txns.size(), pool_->worker_count() * 4);
  for (size_t j = 0; j < jobs; ++j) {
    // Jobs copy the shared state they need; the caller's vector may die
    // before they run, so chunks are materialized per job.
    std::vector<Transaction> chunk;
    for (size_t i = j; i < txns.size(); i += jobs) {
      if (!cache_->Contains(txns[i].Id())) {
        chunk.push_back(txns[i]);
      }
    }
    if (chunk.empty()) {
      continue;
    }
    VerificationCache* cache = cache_;
    const SignerBackend* signer = signer_;
    pool_->Submit([cache, signer, chunk = std::move(chunk)] {
      for (const Transaction& tx : chunk) {
        cache->Prewarm(tx.Id(), [&]() -> uint64_t {
          return signer->Verify(tx.from, tx.SerializeBody(), tx.signature) ? 1 : 0;
        });
      }
    });
  }
}

}  // namespace algorand
