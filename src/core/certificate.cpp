#include "src/core/certificate.h"

#include <unordered_set>

namespace algorand {

uint64_t Certificate::WireSize() const {
  uint64_t size = 8 + 4 + 32;
  for (const VoteMessage& v : votes) {
    size += v.WireSize();
  }
  return size;
}

std::vector<uint8_t> Certificate::Serialize() const {
  Writer w;
  w.U64(round);
  w.U32(step);
  w.Fixed(block_hash);
  w.U32(static_cast<uint32_t>(votes.size()));
  for (const VoteMessage& v : votes) {
    w.Bytes(v.Serialize());
  }
  return w.Take();
}

std::optional<Certificate> Certificate::Deserialize(std::span<const uint8_t> data) {
  Reader r(data);
  Certificate c;
  c.round = r.U64();
  c.step = r.U32();
  c.block_hash = r.Fixed<32>();
  uint32_t n = r.U32();
  if (!r.ok() || n > data.size()) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < n; ++i) {
    auto vb = r.Bytes();
    auto vote = VoteMessage::Deserialize(vb);
    if (!vote) {
      return std::nullopt;
    }
    c.votes.push_back(std::move(*vote));
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return c;
}

bool ValidateCertificate(const Certificate& cert, const RoundContext& ctx,
                         const ProtocolParams& params, const VrfBackend& vrf,
                         const SignerBackend& signer) {
  if (cert.round != ctx.round) {
    return false;
  }
  const bool final_cert = cert.step == kStepFinal;
  const double tau = final_cert ? params.tau_final : params.tau_step;
  const double threshold = final_cert ? params.FinalThreshold() : params.StepThreshold();

  uint64_t weight = 0;
  std::unordered_set<PublicKey, FixedBytesHasher> seen;
  for (const VoteMessage& v : cert.votes) {
    // All votes must be for this round/step/value and extend the same chain.
    if (v.round != cert.round || v.step != cert.step || v.value != cert.block_hash ||
        v.prev_hash != ctx.prev_hash) {
      return false;
    }
    if (!seen.insert(v.pk).second) {
      return false;  // Duplicate voter.
    }
    if (!signer.Verify(v.pk, v.SignedBody(), v.signature)) {
      return false;
    }
    uint64_t votes = VerifySortition(vrf, v.pk, v.sorthash, v.sort_proof, ctx.seed, tau,
                                     Role::kCommittee, v.round, v.step, ctx.weight_of(v.pk),
                                     ctx.total_weight);
    if (votes == 0) {
      return false;
    }
    weight += votes;
  }
  return static_cast<double>(weight) > threshold;
}

}  // namespace algorand
