#include "src/core/certificate.h"

#include <unordered_set>

namespace algorand {

uint64_t Certificate::WireSize() const {
  uint64_t size = 8 + 4 + 32;
  for (const VoteMessage& v : votes) {
    size += v.WireSize();
  }
  return size;
}

bool ValidateCertificate(const Certificate& cert, const RoundContext& ctx,
                         const ProtocolParams& params, const VrfBackend& vrf,
                         const SignerBackend& signer) {
  if (cert.round != ctx.round) {
    return false;
  }
  const bool final_cert = cert.step == kStepFinal;
  const double tau = final_cert ? params.tau_final : params.tau_step;
  const double threshold = final_cert ? params.FinalThreshold() : params.StepThreshold();

  uint64_t weight = 0;
  std::unordered_set<PublicKey, FixedBytesHasher> seen;
  for (const VoteMessage& v : cert.votes) {
    // All votes must be for this round/step/value and extend the same chain.
    if (v.round != cert.round || v.step != cert.step || v.value != cert.block_hash ||
        v.prev_hash != ctx.prev_hash) {
      return false;
    }
    if (!seen.insert(v.pk).second) {
      return false;  // Duplicate voter.
    }
    if (!signer.Verify(v.pk, v.SignedBody(), v.signature)) {
      return false;
    }
    uint64_t votes = VerifySortition(vrf, v.pk, v.sorthash, v.sort_proof, ctx.seed, tau,
                                     Role::kCommittee, v.round, v.step, ctx.weight_of(v.pk),
                                     ctx.total_weight);
    if (votes == 0) {
      return false;
    }
    weight += votes;
  }
  return static_cast<double>(weight) > threshold;
}

}  // namespace algorand
