#include "src/core/sim_harness.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "src/core/user_group.h"
#include "src/netsim/parallel_simulation.h"

namespace algorand {

SimHarness::SimHarness(HarnessConfig config)
    : config_(std::move(config)),
      rng_(config_.rng_seed, "harness"),
      genesis_(MakeTestGenesis(config_.n_nodes, config_.stake_per_user, config_.rng_seed)) {
  if (config_.stake_of) {
    for (size_t i = 0; i < genesis_.config.allocations.size(); ++i) {
      genesis_.config.allocations[i].second = config_.stake_of(i);
    }
  }
  if (config_.users_per_group > 1) {
    // Aggregate-user modeling: each node carries its whole group's stake.
    // Binomial sortition over weight makes this statistically identical to
    // users_per_group separate users of the original stake.
    for (auto& alloc : genesis_.config.allocations) {
      alloc.second *= config_.users_per_group;
    }
  }
  if (config_.tx_clients > 0) {
    // Client accounts ride after the node allocations: funded, with real
    // signing keys, but no stake scaling — they pay, they don't propose.
    DeterministicRng client_rng(config_.rng_seed, "tx-clients");
    client_keys_.reserve(config_.tx_clients);
    for (size_t i = 0; i < config_.tx_clients; ++i) {
      FixedBytes<32> seed;
      client_rng.FillBytes(seed.data(), seed.size());
      client_keys_.push_back(Ed25519KeyFromSeed(seed));
      genesis_.config.allocations.emplace_back(client_keys_.back().public_key,
                                               config_.client_stake);
    }
    client_nonces_.assign(config_.tx_clients, 0);
  }
  if (config_.filler_accounts > 0) {
    // Fillers scale the account table to millions of entries. They never
    // sign anything, so a raw random public key (no keypair derivation) is
    // enough; stake 1 keeps their sortition weight negligible.
    DeterministicRng filler_rng(config_.rng_seed, "tx-fillers");
    genesis_.config.allocations.reserve(genesis_.config.allocations.size() +
                                        config_.filler_accounts);
    for (size_t i = 0; i < config_.filler_accounts; ++i) {
      PublicKey pk;
      filler_rng.FillBytes(pk.data(), pk.size());
      genesis_.config.allocations.emplace_back(pk, 1);
    }
  }
  genesis_.config.weight_lookback_rounds = config_.weight_lookback_rounds;
  vrf_ = config_.use_sim_crypto ? static_cast<const VrfBackend*>(&sim_vrf_) : &ec_vrf_;
  signer_ =
      config_.use_sim_crypto ? static_cast<const SignerBackend*>(&sim_signer_) : &ed_signer_;

  if (config_.latency == HarnessConfig::Latency::kCity) {
    latency_ = std::make_unique<CityLatencyModel>(config_.n_nodes, config_.rng_seed);
  } else {
    latency_ = std::make_unique<UniformLatencyModel>(config_.uniform_latency,
                                                     config_.uniform_jitter, config_.rng_seed);
  }
  if (config_.sim_workers > 0) {
    // Conservative lookahead: no delivery can land earlier than send time +
    // sender overhead + the latency floor (Network::Send adds both).
    const SimTime lookahead = config_.net.send_overhead + latency_->Floor();
    sim_ = std::make_unique<ParallelSimulation>(config_.sim_workers, config_.n_nodes, lookahead);
    // Concurrent senders need independent jitter streams; draw values differ
    // from the shared-stream sequential engine, so this is parallel-only.
    latency_->SetPerSenderStreams(config_.n_nodes);
  } else {
    sim_ = std::make_unique<Simulation>(config_.use_map_event_queue
                                            ? Simulation::QueueKind::kMap
                                            : Simulation::QueueKind::kHeap);
  }
  network_ =
      std::make_unique<Network>(sim_.get(), latency_.get(), config_.net, config_.n_nodes);
  DeterministicRng topo_rng = rng_.Fork("topology");
  topology_ = std::make_unique<GossipTopology>(config_.n_nodes, config_.gossip_out_degree,
                                               &topo_rng);

  malicious_count_ =
      static_cast<size_t>(static_cast<double>(config_.n_nodes) * config_.malicious_fraction);

  cache_.AttachMetrics(&global_metrics_);
  tracer_.AttachMetrics(&global_metrics_);
  const size_t workers = ResolveVerifyWorkers(config_.verify_workers);
  if (workers > 0) {
    pool_ = std::make_unique<VerifyPool>(workers);
    pool_->AttachMetrics(&global_metrics_);
  }
  const size_t exec_workers = ResolveExecWorkers(config_.exec_workers);
  if (exec_workers > 0) {
    exec_pool_ = std::make_unique<VerifyPool>(exec_workers);
    exec_pool_->AttachMetrics(&global_metrics_, "exec");
  }

  CryptoSuite crypto{vrf_, signer_, &cache_, pool_.get(), exec_pool_.get()};
  agents_.reserve(config_.n_nodes);
  nodes_.reserve(config_.n_nodes);
  metrics_.reserve(config_.n_nodes);
  for (NodeId i = 0; i < config_.n_nodes; ++i) {
    metrics_.push_back(std::make_unique<MetricsRegistry>());
    agents_.push_back(std::make_unique<GossipAgent>(i, network_.get(), topology_.get()));
    agents_.back()->AttachMetrics(metrics_.back().get());
    agents_.back()->set_clock(sim_.get());
    std::unique_ptr<Node> node;
    if (config_.node_factory) {
      node = config_.node_factory(i, sim_.get(), agents_.back().get(), genesis_.keys[i],
                                  genesis_.config, config_.params, crypto, &coordinator_);
    }
    if (!node) {
      if (i < malicious_count_) {
        node = std::make_unique<EquivocatingNode>(i, sim_.get(), agents_.back().get(),
                                                  genesis_.keys[i], genesis_.config,
                                                  config_.params, crypto, &coordinator_);
      } else if (i < malicious_count_ + config_.grinding_count) {
        node = std::make_unique<GrindingProposerNode>(
            i, sim_.get(), agents_.back().get(), genesis_.keys[i], genesis_.config,
            config_.params, crypto, config_.grind_candidates, config_.grind_withhold);
      } else if (config_.users_per_group > 1) {
        node = std::make_unique<UserGroupNode>(i, sim_.get(), agents_.back().get(),
                                               genesis_.keys[i], genesis_.config, config_.params,
                                               crypto, config_.users_per_group);
      } else {
        node = std::make_unique<Node>(i, sim_.get(), agents_.back().get(), genesis_.keys[i],
                                      genesis_.config, config_.params, crypto);
      }
    }
    node->AttachObservability(metrics_.back().get(), &tracer_);
    nodes_.push_back(std::move(node));
  }
  alive_.assign(config_.n_nodes, true);
  snapshots_.resize(config_.n_nodes);
  stores_.resize(config_.n_nodes);
  if (!config_.data_dir.empty()) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      auto store = OpenStoreFor(i);
      if (store == nullptr) {
        continue;
      }
      store->AttachMetrics(metrics_[i].get());
      if (store->max_round() > 0) {
        // The directory already holds a log (process-level restart): replay
        // it into the fresh node before it starts.
        nodes_[i]->RestoreFromStore(store.get());
      } else {
        nodes_[i]->AttachStore(store.get());
      }
      stores_[i] = std::move(store);
    }
  }
  network_->set_delivery_handler([this](NodeId to, NodeId from, const MessagePtr& msg) {
    if (!alive_[to]) {
      return;  // Crashed nodes receive nothing until restarted.
    }
    agents_[to]->OnReceive(from, msg);
  });
}

SimHarness::~SimHarness() = default;

void SimHarness::SetNetworkAdversary(std::unique_ptr<NetworkAdversary> adversary) {
  net_adversary_ = std::move(adversary);
  if (net_adversary_ != nullptr && config_.sim_workers > 0) {
    net_adversary_->SetPerSenderStreams(config_.n_nodes);
  }
  network_->set_adversary(net_adversary_.get());
}

void SimHarness::Start() {
  // Seed the mempools before the first proposals are assembled, then keep
  // them topped up: a probe injects one batch per round the honest chain
  // advances. Two batches go in up front — round N+1's proposal is built in
  // the same event cascade that commits round N, before the probe's next
  // tick, so without a standing one-batch buffer every other block would
  // sail empty at full-block load. (Load generation targets the sequential
  // engine, like SubmitPayment.)
  if (config_.tx_load_per_round > 0 && client_keys_.size() >= 2) {
    InjectTxLoad();
    InjectTxLoad();
    last_loaded_round_ = nodes_[malicious_count_]->ledger().chain_length();
    auto probe = std::make_shared<std::function<void()>>();
    *probe = [this, probe] {
      uint64_t tip = 0;
      size_t tip_node = malicious_count_;
      for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
        if (alive_[i] && nodes_[i]->ledger().chain_length() > tip) {
          tip = nodes_[i]->ledger().chain_length();
          tip_node = i;
        }
      }
      while (last_loaded_round_ < tip) {
        // Back off while the chain is committing empty blocks: injecting into
        // a pool that is not draining only forces fee evictions, and an
        // evicted middle nonce strands every later nonce of that sender.
        const uint64_t backlog = tx_counter_ - CommittedTxCount(tip_node);
        if (backlog >= 2 * config_.tx_load_per_round) {
          break;
        }
        InjectTxLoad();
        ++last_loaded_round_;
      }
      sim_->Schedule(Seconds(1), *probe);
    };
    sim_->Schedule(Seconds(1), *probe);
  }
  // Each node's startup events are keyed to its own stream so the parallel
  // engine orders them independently of the worker count (no-op on the
  // sequential engine).
  for (size_t i = 0; i < nodes_.size(); ++i) {
    sim_->SetExternalStream(static_cast<uint32_t>(i));
    nodes_[i]->Start();
  }
  sim_->SetExternalStream(Simulation::kGlobalStream);
  for (const HarnessConfig::CrashEvent& ev : config_.crash_schedule) {
    if (ev.node >= nodes_.size()) {
      continue;
    }
    sim_->ScheduleAt(ev.crash_at, [this, ev] { KillNode(ev.node); });
    if (ev.restart_at > ev.crash_at) {
      sim_->ScheduleAt(ev.restart_at, [this, ev] { RestartNode(ev.node, ev.from_snapshot); });
    }
  }
}

std::unique_ptr<BlockStore> SimHarness::OpenStoreFor(size_t i) {
  StoreOptions opts;
  opts.dir = config_.data_dir + "/node-" + std::to_string(i);
  opts.fsync = config_.store_fsync;
  opts.background_writer = config_.store_background_writer;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  if (store == nullptr) {
    fprintf(stderr, "sim_harness: cannot open store for node %zu: %s\n", i, error.c_str());
  }
  return store;
}

void SimHarness::KillNode(size_t i) {
  if (i >= nodes_.size() || !alive_[i]) {
    return;
  }
  if (stores_[i] != nullptr) {
    // SIGKILL semantics: queued-but-unwritten log operations die with the
    // process; whatever was write()n is what restart will find. No snapshot
    // — the on-disk log is the durable state under test.
    stores_[i]->Crash();
    store_graveyard_.push_back(std::move(stores_[i]));
  } else {
    // Durable state survives the crash; everything in-memory is lost.
    snapshots_[i] = nodes_[i]->Snapshot().Serialize();
  }
  TraceEvent ev;
  ev.at = sim_->now();
  ev.node = static_cast<uint32_t>(i);
  ev.round = nodes_[i]->ledger().chain_length();
  ev.kind = TraceKind::kCrash;
  tracer_.Record(ev);
  nodes_[i]->Halt();
  alive_[i] = false;
  global_metrics_.GetCounter("restart.kills").Increment();
}

void SimHarness::RestartNode(size_t i, bool from_snapshot) {
  if (i >= nodes_.size() || alive_[i]) {
    return;
  }
  // The old node may still be referenced by queued simulator lambdas; park it
  // (halted) instead of destroying it.
  graveyard_.push_back(std::move(nodes_[i]));
  CryptoSuite crypto{vrf_, signer_, &cache_, pool_.get(), exec_pool_.get()};
  // Reproduce the node's original configuration (sharding, subclass hooks):
  // a restart changes state, not deployment shape.
  std::unique_ptr<Node> node;
  if (config_.node_factory) {
    node = config_.node_factory(static_cast<NodeId>(i), sim_.get(), agents_[i].get(),
                                genesis_.keys[i], genesis_.config, config_.params, crypto,
                                &coordinator_);
  }
  if (!node) {
    if (i >= malicious_count_ && i < malicious_count_ + config_.grinding_count) {
      node = std::make_unique<GrindingProposerNode>(
          static_cast<NodeId>(i), sim_.get(), agents_[i].get(), genesis_.keys[i],
          genesis_.config, config_.params, crypto, config_.grind_candidates,
          config_.grind_withhold);
    } else if (config_.users_per_group > 1 && i >= malicious_count_) {
      node = std::make_unique<UserGroupNode>(static_cast<NodeId>(i), sim_.get(),
                                             agents_[i].get(), genesis_.keys[i], genesis_.config,
                                             config_.params, crypto, config_.users_per_group);
    } else {
      node = std::make_unique<Node>(static_cast<NodeId>(i), sim_.get(), agents_[i].get(),
                                    genesis_.keys[i], genesis_.config, config_.params, crypto);
    }
  }
  bool restored = false;
  if (!config_.data_dir.empty()) {
    if (!from_snapshot) {
      // Fresh rejoin: the node lost its disk too. Wipe the directory so the
      // reopened store starts empty.
      std::error_code ec;
      std::filesystem::remove_all(config_.data_dir + "/node-" + std::to_string(i), ec);
    }
    auto store = OpenStoreFor(i);
    if (store != nullptr) {
      store->AttachMetrics(metrics_[i].get());
      restored = node->RestoreFromStore(store.get()) && store->max_round() > 0;
      stores_[i] = std::move(store);
    }
  } else if (from_snapshot && !snapshots_[i].empty()) {
    auto snap = NodeSnapshot::Deserialize(snapshots_[i]);
    restored = snap.has_value() && node->RestoreSnapshot(*snap);
  }
  node->AttachObservability(metrics_[i].get(), &tracer_);
  TraceEvent ev;
  ev.at = sim_->now();
  ev.node = static_cast<uint32_t>(i);
  ev.round = node->ledger().chain_length();
  ev.kind = TraceKind::kRestart;
  ev.flag = restored ? 1 : 0;
  tracer_.Record(ev);
  nodes_[i] = std::move(node);
  alive_[i] = true;
  global_metrics_.GetCounter("restart.restarts").Increment();
  sim_->SetExternalStream(static_cast<uint32_t>(i));
  nodes_[i]->Start();
  sim_->SetExternalStream(Simulation::kGlobalStream);
}

bool SimHarness::RunRounds(uint64_t rounds, SimTime deadline) {
  auto honest_done = [this, rounds] {
    for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
      if (!alive_[i]) {
        continue;  // Permanently-crashed nodes must not stall the run.
      }
      if (nodes_[i]->ledger().chain_length() <= rounds) {
        return false;
      }
    }
    return true;
  };
  // Periodic completion probe: cheap relative to protocol traffic. The
  // generation stamp kills probes left over from earlier RunRounds calls.
  // The probe holds itself only weakly — the local shared_ptr (alive across
  // RunUntil) is the sole owner, so no reference cycle outlives this call.
  const uint64_t generation = ++probe_generation_;
  auto probe = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = probe;
  *probe = [this, weak, honest_done, generation] {
    if (generation != probe_generation_) {
      return;  // Stale probe from a previous RunRounds call.
    }
    if (honest_done()) {
      sim_->Stop();
      return;
    }
    if (auto self = weak.lock()) {
      sim_->Schedule(Seconds(1), *self);
    }
  };
  sim_->Schedule(Seconds(1), *probe);
  sim_->RunUntil(deadline);
  return honest_done();
}

std::vector<double> SimHarness::RoundLatencies(uint64_t round) const {
  std::vector<double> latencies;
  for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
    for (const RoundRecord& rec : nodes_[i]->round_records()) {
      if (rec.round == round && rec.end_time > 0) {
        latencies.push_back(ToSeconds(rec.end_time - rec.start_time));
      }
    }
  }
  return latencies;
}

SimHarness::PhaseBreakdown SimHarness::MeanPhaseBreakdown(uint64_t first_round,
                                                          uint64_t last_round) const {
  PhaseBreakdown sum;
  size_t count = 0;
  for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
    for (const RoundRecord& rec : nodes_[i]->round_records()) {
      if (rec.round < first_round || rec.round > last_round || rec.end_time == 0) {
        continue;
      }
      sum.proposal += ToSeconds(rec.proposal_done_at - rec.start_time);
      sum.ba_without_final += ToSeconds(rec.binary_done_at - rec.proposal_done_at);
      sum.final_step += ToSeconds(rec.end_time - rec.binary_done_at);
      ++count;
    }
  }
  if (count > 0) {
    sum.proposal /= static_cast<double>(count);
    sum.ba_without_final /= static_cast<double>(count);
    sum.final_step /= static_cast<double>(count);
  }
  return sum;
}

SimHarness::SafetyReport SimHarness::CheckSafety() const {
  SafetyReport report;
  // For every round where some honest node recorded FINAL consensus, every
  // other honest node that has any block at that round must have the same
  // block hash.
  uint64_t max_round = 0;
  for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
    max_round = std::max<uint64_t>(max_round, nodes_[i]->ledger().chain_length());
  }
  for (uint64_t r = 1; r < max_round; ++r) {
    bool have_final = false;
    Hash256 final_hash;
    size_t final_node = 0;
    for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
      const Ledger& ledger = nodes_[i]->ledger();
      // A compacted prefix (checkpoint install) holds no blocks below the
      // base; those rounds were final and fingerprint-validated at install.
      if (ledger.chain_length() <= r || r < ledger.base_round()) {
        continue;
      }
      if (ledger.ConsensusAtRound(r) == ConsensusKind::kFinal) {
        Hash256 h = ledger.BlockAtRound(r).Hash();
        if (!have_final) {
          have_final = true;
          final_hash = h;
          final_node = i;
        } else if (h != final_hash) {
          report.ok = false;
          report.violation = "two final blocks at round " + std::to_string(r) + " (nodes " +
                             std::to_string(final_node) + ", " + std::to_string(i) + ")";
          return report;
        }
      }
    }
    if (!have_final) {
      continue;
    }
    for (size_t i = malicious_count_; i < nodes_.size(); ++i) {
      const Ledger& ledger = nodes_[i]->ledger();
      if (ledger.chain_length() <= r || r < ledger.base_round()) {
        continue;
      }
      if (ledger.BlockAtRound(r).Hash() != final_hash) {
        report.ok = false;
        report.violation = "node " + std::to_string(i) + " disagrees with final block at round " +
                           std::to_string(r);
        return report;
      }
    }
  }
  return report;
}

bool SimHarness::ChainsConsistent() const {
  for (size_t i = malicious_count_ + 1; i < nodes_.size(); ++i) {
    const Ledger& a = nodes_[malicious_count_]->ledger();
    const Ledger& b = nodes_[i]->ledger();
    uint64_t common = std::min<uint64_t>(a.chain_length(), b.chain_length());
    // Rounds either side compacted away are final by construction; compare
    // the overlap both ledgers can still materialize.
    for (uint64_t r = std::max<uint64_t>(a.base_round(), b.base_round()); r < common; ++r) {
      if (a.BlockAtRound(r).Hash() != b.BlockAtRound(r).Hash()) {
        return false;
      }
    }
  }
  return true;
}

MetricsSnapshot SimHarness::AggregateMetrics() const {
  MetricsSnapshot merged = global_metrics_.Snapshot();
  for (const auto& registry : metrics_) {
    merged.Merge(registry->Snapshot());
  }
  // Fold in simulator/network totals so one snapshot describes the run.
  merged.counters["sim.events_executed"] += sim_->executed_events();
  merged.counters["sim.users"] += total_users();
  for (const auto& [name, value] : sim_->EngineStats()) {
    merged.counters[name] += value;
  }
  merged.counters["net.bytes_sent"] += network_->total_bytes_sent();
  for (const auto& [type, count] : network_->message_counts_by_type()) {
    merged.counters["net.msgs." + type] += count;
  }
  merged.counters["trace.events_recorded"] += tracer_.recorded();
  merged.counters["trace.events_dropped"] += tracer_.dropped();
  return merged;
}

void SimHarness::InjectTxLoad() {
  if (config_.tx_load_per_round == 0 || client_keys_.size() < 2) {
    return;
  }
  const uint64_t fee_levels = std::max<uint64_t>(1, config_.tx_fee_levels);
  for (size_t k = 0; k < config_.tx_load_per_round; ++k) {
    const size_t from = static_cast<size_t>(tx_counter_ % client_keys_.size());
    const size_t to = (from + 1) % client_keys_.size();
    // Fee depends on the sender only: monotone within a sender's nonce
    // sequence, so mempool eviction can never strand a later nonce behind an
    // evicted earlier one, while cross-sender fee priority stays exercised.
    const uint64_t fee = 1 + static_cast<uint64_t>(from) % fee_levels;
    Transaction tx = MakeTransaction(client_keys_[from], client_keys_[to].public_key,
                                     /*amount=*/1, client_nonces_[from]++, *signer_, fee);
    ++tx_counter_;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!alive_[i]) {
        continue;
      }
      sim_->SetExternalStream(static_cast<uint32_t>(i));
      nodes_[i]->SubmitTransaction(tx);
    }
  }
  sim_->SetExternalStream(Simulation::kGlobalStream);
}

uint64_t SimHarness::CommittedTxCount(size_t i) const {
  const Ledger& ledger = nodes_[i]->ledger();
  uint64_t total = 0;  // Counts only the retained suffix on compacted ledgers.
  for (uint64_t r = ledger.base_round(); r < ledger.chain_length(); ++r) {
    total += ledger.BlockAtRound(r).txns.size();
  }
  return total;
}

Transaction SimHarness::SubmitPayment(size_t from_idx, size_t to_idx, uint64_t amount,
                                      uint64_t nonce) {
  Transaction tx = MakeTransaction(genesis_.keys[from_idx],
                                   genesis_.keys[to_idx].public_key, amount, nonce, *signer_);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    sim_->SetExternalStream(static_cast<uint32_t>(i));
    nodes_[i]->SubmitTransaction(tx);
  }
  sim_->SetExternalStream(Simulation::kGlobalStream);
  return tx;
}

}  // namespace algorand
