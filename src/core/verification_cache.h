// Shared verification cache.
//
// Within one simulation process every node re-verifies the same gossip
// message; one valid check per unique message suffices (the receivers share
// the arithmetic, not the trust — each node would perform the identical
// computation). This is the paper's own methodology at 500k users, where
// verifications were replaced by equal-cost sleeps (§10.1). The cache maps a
// message's DedupId to its verified sortition weight (0 = invalid).
#ifndef ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_
#define ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace algorand {

class VerificationCache {
 public:
  // Routes hit/miss counts through `registry` ("verify.cache_hits" /
  // "verify.cache_misses"); without a registry the private fallback counters
  // keep the accessors working.
  void AttachMetrics(MetricsRegistry* registry) {
    if (registry == nullptr) {
      hits_ = &fallback_hits_;
      misses_ = &fallback_misses_;
      return;
    }
    hits_ = &registry->GetCounter("verify.cache_hits");
    misses_ = &registry->GetCounter("verify.cache_misses");
  }

  // Returns the cached value or computes, stores and returns it.
  uint64_t GetOrCompute(const Hash256& id, const std::function<uint64_t()>& compute) {
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      hits_->Increment();
      return it->second;
    }
    misses_->Increment();
    uint64_t v = compute();
    cache_.emplace(id, v);
    return v;
  }

  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  std::unordered_map<Hash256, uint64_t, FixedBytesHasher> cache_;
  Counter fallback_hits_;
  Counter fallback_misses_;
  Counter* hits_ = &fallback_hits_;
  Counter* misses_ = &fallback_misses_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_
