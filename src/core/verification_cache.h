// Shared verification cache.
//
// Within one simulation process every node re-verifies the same gossip
// message; one valid check per unique message suffices (the receivers share
// the arithmetic, not the trust — each node would perform the identical
// computation). This is the paper's own methodology at 500k users, where
// verifications were replaced by equal-cost sleeps (§10.1). The cache maps a
// message's DedupId to its verified sortition weight (0 = invalid).
//
// The cache is thread-safe and doubles as the rendezvous point of the
// VerifyPool pipeline: workers Prewarm() entries while a message is still in
// flight, and the protocol thread's GetOrCompute() either hits a finished
// entry, waits briefly for the worker computing it, or (cache miss) computes
// inline exactly as in the single-threaded configuration. Entries are
// round-stamped and pruned a few rounds after their last use so the map does
// not grow with chain length.
#ifndef ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_
#define ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"

namespace algorand {

class VerificationCache {
 public:
  // Routes cache counts through `registry` ("verify.cache_hits" /
  // "verify.cache_misses" / "verify.cache_pruned", plus the pipeline's
  // "verify.pool_prewarms" / "verify.pool_waits" and the "verify.pool_wait_us"
  // histogram); without a registry the private fallback counters keep the
  // accessors working.
  void AttachMetrics(MetricsRegistry* registry) {
    if (registry == nullptr) {
      hits_ = &fallback_hits_;
      misses_ = &fallback_misses_;
      pruned_ = &fallback_pruned_;
      prewarms_ = &fallback_prewarms_;
      pool_waits_ = &fallback_pool_waits_;
      pool_wait_us_ = nullptr;
      return;
    }
    hits_ = &registry->GetCounter("verify.cache_hits");
    misses_ = &registry->GetCounter("verify.cache_misses");
    pruned_ = &registry->GetCounter("verify.cache_pruned");
    prewarms_ = &registry->GetCounter("verify.pool_prewarms");
    pool_waits_ = &registry->GetCounter("verify.pool_waits");
    pool_wait_us_ = &registry->GetHistogram("verify.pool_wait_us");
  }

  // Returns the cached value or computes, stores and returns it. Templated
  // over the callable so the hot path never allocates a std::function. If
  // another thread is computing this entry (a pool prewarm), waits for its
  // result instead of recomputing.
  template <typename F>
  uint64_t GetOrCompute(const Hash256& id, F&& compute) {
    std::unique_lock<std::mutex> lock(mu_);
    auto [it, inserted] = cache_.try_emplace(id);
    Entry& entry = it->second;
    entry.round = round_;
    if (!inserted) {
      if (!entry.ready) {
        // A pool worker is computing this entry right now; its result is
        // identical to what we would compute, so wait rather than duplicate
        // the work. (Unreachable in the single-threaded configuration.)
        pool_waits_->Increment();
        auto start = std::chrono::steady_clock::now();
        cv_.wait(lock, [&entry] { return entry.ready; });
        if (pool_wait_us_ != nullptr) {
          pool_wait_us_->Observe(
              std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
                  .count());
        }
      }
      hits_->Increment();
      return entry.value;
    }
    misses_->Increment();
    lock.unlock();
    uint64_t v = compute();  // Off-lock: other entries stay accessible.
    lock.lock();
    entry.value = v;
    entry.ready = true;
    lock.unlock();
    cv_.notify_all();
    return v;
  }

  // Pipeline entry point, run on a VerifyPool worker: computes and stores the
  // entry unless it is already present (ready or claimed by another thread).
  template <typename F>
  void Prewarm(const Hash256& id, F&& compute) {
    Entry* entry = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = cache_.try_emplace(id);
      if (!inserted) {
        return;  // Cached or in flight elsewhere; nothing to add.
      }
      it->second.round = round_;
      prewarms_->Increment();
      // References into unordered_map survive inserts/rehashes, and NoteRound
      // never erases a non-ready entry, so the pointer stays valid off-lock.
      entry = &it->second;
    }
    uint64_t v = compute();
    {
      std::lock_guard<std::mutex> lock(mu_);
      entry->value = v;
      entry->ready = true;
    }
    cv_.notify_all();
  }

  // True if `id` is present (ready or in flight). A racy pre-check for
  // prewarm submitters; the authoritative dedup is inside Prewarm().
  bool Contains(const Hash256& id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.find(id) != cache_.end();
  }

  // Round-advancement hook: prunes entries last touched more than
  // kKeepRounds rounds ago. Message verdicts are only consulted around the
  // round the message belongs to, so old entries are dead weight — without
  // pruning the map grows linearly with chain length.
  void NoteRound(uint64_t round) {
    std::lock_guard<std::mutex> lock(mu_);
    if (round <= round_) {
      return;
    }
    round_ = round;
    if (round_ <= kKeepRounds) {
      return;
    }
    const uint64_t min_keep = round_ - kKeepRounds;
    uint64_t removed = 0;
    for (auto it = cache_.begin(); it != cache_.end();) {
      // Never prune an in-flight entry: a worker or waiter holds a reference.
      if (it->second.ready && it->second.round < min_keep) {
        it = cache_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    if (removed > 0) {
      pruned_->Increment(removed);
    }
  }

  uint64_t hits() const { return hits_->Value(); }
  uint64_t misses() const { return misses_->Value(); }
  uint64_t pruned() const { return pruned_->Value(); }
  uint64_t prewarms() const { return prewarms_->Value(); }
  uint64_t pool_waits() const { return pool_waits_->Value(); }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
  }

 private:
  // Entries from the previous 2 rounds may still serve buffered or straggler
  // messages; anything older is unreachable in practice.
  static constexpr uint64_t kKeepRounds = 2;

  struct Entry {
    uint64_t value = 0;
    bool ready = false;
    uint64_t round = 0;  // Last round this entry was touched in.
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<Hash256, Entry, FixedBytesHasher> cache_;
  uint64_t round_ = 0;

  Counter fallback_hits_;
  Counter fallback_misses_;
  Counter fallback_pruned_;
  Counter fallback_prewarms_;
  Counter fallback_pool_waits_;
  Counter* hits_ = &fallback_hits_;
  Counter* misses_ = &fallback_misses_;
  Counter* pruned_ = &fallback_pruned_;
  Counter* prewarms_ = &fallback_prewarms_;
  Counter* pool_waits_ = &fallback_pool_waits_;
  Histogram* pool_wait_us_ = nullptr;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_
