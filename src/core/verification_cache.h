// Shared verification cache.
//
// Within one simulation process every node re-verifies the same gossip
// message; one valid check per unique message suffices (the receivers share
// the arithmetic, not the trust — each node would perform the identical
// computation). This is the paper's own methodology at 500k users, where
// verifications were replaced by equal-cost sleeps (§10.1). The cache maps a
// message's DedupId to its verified sortition weight (0 = invalid).
#ifndef ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_
#define ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/common/bytes.h"

namespace algorand {

class VerificationCache {
 public:
  // Returns the cached value or computes, stores and returns it.
  uint64_t GetOrCompute(const Hash256& id, const std::function<uint64_t()>& compute) {
    auto it = cache_.find(id);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    uint64_t v = compute();
    cache_.emplace(id, v);
    return v;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  std::unordered_map<Hash256, uint64_t, FixedBytesHasher> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_VERIFICATION_CACHE_H_
