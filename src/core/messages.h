// Wire messages of the Algorand protocol.
//
// Step numbering on the wire: the two Reduction steps and the special `final`
// step get reserved codes; BinaryBA* steps 1..MaxSteps map to codes starting
// at kStepBinaryBase. Committees are selected per (round, wire step), so any
// injective encoding works as long as every node uses the same one.
#ifndef ALGORAND_SRC_CORE_MESSAGES_H_
#define ALGORAND_SRC_CORE_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serialize.h"
#include "src/crypto/signer.h"
#include "src/ledger/block.h"
#include "src/netsim/message.h"

namespace algorand {

// Recovery sessions (§8.2) vote with round numbers that have the top bit
// set, so they can never collide with ordinary chain rounds.
constexpr uint64_t kRecoveryRoundBit = 1ULL << 63;

constexpr uint32_t kStepReduction1 = 1;
constexpr uint32_t kStepReduction2 = 2;
constexpr uint32_t kStepBinaryBase = 3;  // BinaryBA* step s -> code s + 2.
constexpr uint32_t kStepFinal = 0xffffffff;

inline uint32_t BinaryStepCode(int step) { return kStepBinaryBase + static_cast<uint32_t>(step) - 1; }

// Committee vote (Algorithm 4): the signed payload covers round, step, the
// sortition credentials, the previous-block hash binding the vote to a chain,
// and the value voted for. ~316 bytes on the wire, matching the paper's
// "about 200 bytes" small-message claim.
class VoteMessage : public SimMessage {
 public:
  // Fixed layout: pk || round || step || sorthash || sort_proof || prev_hash
  // || value || signature. Tests assert this equals Serialize().size().
  static constexpr uint64_t kWireSize = 32 + 8 + 4 + 64 + 80 + 32 + 32 + 64;

  PublicKey pk;
  uint64_t round = 0;
  uint32_t step = 0;
  VrfOutput sorthash;
  VrfProof sort_proof;
  Hash256 prev_hash;
  Hash256 value;
  Signature signature;

  std::vector<uint8_t> SignedBody() const;
  std::vector<uint8_t> Serialize() const;
  static std::optional<VoteMessage> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "vote"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

// First proposal message (§6): small, carries only the proposer's priority
// credentials so the network quickly learns who won.
class PriorityMessage : public SimMessage {
 public:
  // Fixed layout: pk || round || sorthash || sort_proof || sub_users || sig.
  static constexpr uint64_t kWireSize = 32 + 8 + 64 + 80 + 8 + 64;

  PublicKey pk;
  uint64_t round = 0;
  VrfOutput sorthash;
  VrfProof sort_proof;
  uint64_t sub_users = 0;  // j from sortition; priority is derived.
  Signature signature;

  std::vector<uint8_t> SignedBody() const;
  std::vector<uint8_t> Serialize() const;
  static std::optional<PriorityMessage> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "priority"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

// Second proposal message: the full block (§6). The block embeds the
// proposer's sortition credentials.
class BlockMessage : public SimMessage {
 public:
  Block block;

  const char* TypeName() const override { return "block"; }

 protected:
  uint64_t ComputeWireSize() const override { return block.WireSize(); }
  Hash256 ComputeDedupId() const override { return block.Hash(); }
};

// Request for a block pre-image after BA* agreed on a hash the node never
// received (BlockOfHash in Algorithm 3). Answered point-to-point with a
// BlockMessage.
class BlockRequestMessage : public SimMessage {
 public:
  static constexpr uint64_t kWireSize = 8 + 32 + 4;

  uint64_t round = 0;
  Hash256 block_hash;
  uint32_t requester = 0;  // NodeId to answer to.

  std::vector<uint8_t> Serialize() const;
  static std::optional<BlockRequestMessage> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "block_req"; }

 protected:
  uint64_t ComputeWireSize() const override { return kWireSize; }
  Hash256 ComputeDedupId() const override;
};

// A payment submitted by a client, gossiped to reach whoever proposes the
// next block (Figure 1: "users submit new transactions" via gossip).
class TransactionMessage : public SimMessage {
 public:
  Transaction tx;

  std::vector<uint8_t> Serialize() const { return tx.Serialize(); }
  static std::optional<TransactionMessage> Deserialize(std::span<const uint8_t> data);

  const char* TypeName() const override { return "txn"; }

 protected:
  uint64_t ComputeWireSize() const override { return Transaction::kWireSize; }
  Hash256 ComputeDedupId() const override { return tx.Id(); }
};

// Fork-recovery proposal (§8.2): a "fork proposer" proposes an empty block
// whose predecessor is the longest fork it observed, shipping the chain
// suffix (blocks after the last common final round) so nodes on other forks
// can validate its length and switch.
class RecoveryProposalMessage : public SimMessage {
 public:
  PublicKey pk;
  uint64_t code = 0;  // Recovery session code (epoch/attempt derived).
  VrfOutput sorthash;
  VrfProof sort_proof;
  Block block;                // Empty block extending the proposed fork.
  std::vector<Block> suffix;  // Blocks from the final prefix to the fork tip.
  Signature signature;

  std::vector<uint8_t> SignedBody() const;
  std::vector<uint8_t> Serialize() const;
  static std::optional<RecoveryProposalMessage> Deserialize(std::span<const uint8_t> data);
  const char* TypeName() const override { return "recovery"; }

 protected:
  uint64_t ComputeWireSize() const override;
  Hash256 ComputeDedupId() const override;
};

// Builds and signs a vote.
VoteMessage MakeVote(const Ed25519KeyPair& key, uint64_t round, uint32_t step,
                     const VrfOutput& sorthash, const VrfProof& sort_proof,
                     const Hash256& prev_hash, const Hash256& value, const SignerBackend& signer);

// Builds and signs a priority announcement.
PriorityMessage MakePriorityMessage(const Ed25519KeyPair& key, uint64_t round,
                                    const VrfOutput& sorthash, const VrfProof& sort_proof,
                                    uint64_t sub_users, const SignerBackend& signer);

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_MESSAGES_H_
