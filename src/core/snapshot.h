// Durable node state for crash-restart fault injection (§8.3: a user who
// was offline "can catch up" — but first it must come back with whatever it
// had persisted). A NodeSnapshot captures the chain of agreed blocks with
// their consensus kinds, the stored step/final certificates, and the
// certificate shard configuration. Restoring a snapshot into a fresh Node
// reproduces exactly the durable state; everything else (votes, buffered
// messages, BA* progress) is volatile and intentionally lost in a crash.
#ifndef ALGORAND_SRC_CORE_SNAPSHOT_H_
#define ALGORAND_SRC_CORE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/certificate.h"
#include "src/ledger/block.h"
#include "src/ledger/ledger.h"

namespace algorand {

struct NodeSnapshot {
  uint32_t shard_count = 0;  // 0 = store every round's certificate.
  // Blocks for rounds 1..N (genesis is reproduced from config) and their
  // consensus kinds, parallel arrays.
  std::vector<Block> blocks;
  std::vector<uint8_t> kinds;  // ConsensusKind per block.
  std::vector<Certificate> certificates;        // Deciding-step certs.
  std::vector<Certificate> final_certificates;  // Final-step certs.

  std::vector<uint8_t> Serialize() const;
  static std::optional<NodeSnapshot> Deserialize(std::span<const uint8_t> data);
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_SNAPSHOT_H_
