// Wire codec: tags and serializes every protocol message for transports that
// move real bytes (src/tcp). The simulator passes shared pointers around and
// never needs this; the TCP runtime round-trips every message through it.
//
// Frame payload layout:
//   1-byte type tag || 4-byte LE trace origin || 8-byte LE trace emitted-at
//   || message serialization.
// The 12-byte trace context is the message's causal origination stamp
// (UINT32_MAX origin when unstamped); DecodeMessage re-stamps the decoded
// message so receipt latency joins work across processes.
#ifndef ALGORAND_SRC_CORE_WIRE_CODEC_H_
#define ALGORAND_SRC_CORE_WIRE_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/catchup.h"
#include "src/core/fastsync.h"
#include "src/core/messages.h"

namespace algorand {

enum class WireType : uint8_t {
  kVote = 1,
  kPriority = 2,
  kBlock = 3,
  kBlockRequest = 4,
  kRecoveryProposal = 5,
  kTransaction = 6,
  kCatchupRequest = 7,
  kCatchupResponse = 8,
  kFastSyncManifestRequest = 9,
  kFastSyncManifestResponse = 10,
  kFastSyncLinksRequest = 11,
  kFastSyncLinksResponse = 12,
  kFastSyncChunkRequest = 13,
  kFastSyncChunkResponse = 14,
};

// Serializes a message with its type tag. Returns an empty vector for
// message types the codec does not know (none exist in-tree).
std::vector<uint8_t> EncodeMessage(const SimMessage& msg);
inline std::vector<uint8_t> EncodeMessage(const MessagePtr& msg) { return EncodeMessage(*msg); }

// Same bytes, memoized on the message: the first call encodes and caches,
// later calls (e.g. relaying one gossip message to many TCP peers) return the
// cached buffer. Requires the usual immutable-after-first-send contract.
const std::vector<uint8_t>& EncodeMessageCached(const SimMessage& msg);
inline const std::vector<uint8_t>& EncodeMessageCached(const MessagePtr& msg) {
  return EncodeMessageCached(*msg);
}

// Parses a tagged payload back into a message; nullptr on malformed input.
MessagePtr DecodeMessage(std::span<const uint8_t> payload);

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_WIRE_CODEC_H_
