#include "src/core/messages.h"

#include "src/crypto/sha256.h"

namespace algorand {

std::vector<uint8_t> VoteMessage::SignedBody() const {
  Writer w;
  w.U64(round);
  w.U32(step);
  w.Fixed(sorthash);
  w.Fixed(sort_proof);
  w.Fixed(prev_hash);
  w.Fixed(value);
  return w.Take();
}

std::vector<uint8_t> VoteMessage::Serialize() const {
  Writer w;
  w.Fixed(pk);
  w.Raw(SignedBody());
  w.Fixed(signature);
  return w.Take();
}

std::optional<VoteMessage> VoteMessage::Deserialize(std::span<const uint8_t> data) {
  Reader r(data);
  VoteMessage m;
  m.pk = r.Fixed<32>();
  m.round = r.U64();
  m.step = r.U32();
  m.sorthash = r.Fixed<64>();
  m.sort_proof = r.Fixed<80>();
  m.prev_hash = r.Fixed<32>();
  m.value = r.Fixed<32>();
  m.signature = r.Fixed<64>();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 VoteMessage::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> PriorityMessage::SignedBody() const {
  Writer w;
  w.U64(round);
  w.Fixed(sorthash);
  w.Fixed(sort_proof);
  w.U64(sub_users);
  return w.Take();
}

std::vector<uint8_t> PriorityMessage::Serialize() const {
  Writer w;
  w.Fixed(pk);
  w.Raw(SignedBody());
  w.Fixed(signature);
  return w.Take();
}

std::optional<PriorityMessage> PriorityMessage::Deserialize(std::span<const uint8_t> data) {
  Reader r(data);
  PriorityMessage m;
  m.pk = r.Fixed<32>();
  m.round = r.U64();
  m.sorthash = r.Fixed<64>();
  m.sort_proof = r.Fixed<80>();
  m.sub_users = r.U64();
  m.signature = r.Fixed<64>();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 PriorityMessage::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::vector<uint8_t> BlockRequestMessage::Serialize() const {
  Writer w;
  w.U64(round);
  w.Fixed(block_hash);
  w.U32(requester);
  return w.Take();
}

std::optional<BlockRequestMessage> BlockRequestMessage::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  BlockRequestMessage m;
  m.round = r.U64();
  m.block_hash = r.Fixed<32>();
  m.requester = r.U32();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

Hash256 BlockRequestMessage::ComputeDedupId() const { return Sha256::Hash(Serialize()); }

std::optional<TransactionMessage> TransactionMessage::Deserialize(std::span<const uint8_t> data) {
  Reader r(data);
  auto tx = Transaction::Deserialize(&r);
  if (!tx || !r.AtEnd()) {
    return std::nullopt;
  }
  TransactionMessage m;
  m.tx = std::move(*tx);
  return m;
}

std::vector<uint8_t> RecoveryProposalMessage::SignedBody() const {
  Writer w;
  w.U64(code);
  w.Fixed(sorthash);
  w.Fixed(sort_proof);
  w.Fixed(block.Hash());
  w.U32(static_cast<uint32_t>(suffix.size()));
  for (const Block& b : suffix) {
    w.Fixed(b.Hash());
  }
  return w.Take();
}

uint64_t RecoveryProposalMessage::ComputeWireSize() const {
  uint64_t size = 32 + 8 + 64 + 80 + 64 + block.WireSize();
  for (const Block& b : suffix) {
    size += b.WireSize();
  }
  return size;
}

Hash256 RecoveryProposalMessage::ComputeDedupId() const { return Sha256::Hash(SignedBody()); }

std::vector<uint8_t> RecoveryProposalMessage::Serialize() const {
  Writer w;
  w.Fixed(pk);
  w.U64(code);
  w.Fixed(sorthash);
  w.Fixed(sort_proof);
  w.Bytes(block.Serialize());
  w.U32(static_cast<uint32_t>(suffix.size()));
  for (const Block& b : suffix) {
    w.Bytes(b.Serialize());
  }
  w.Fixed(signature);
  return w.Take();
}

std::optional<RecoveryProposalMessage> RecoveryProposalMessage::Deserialize(
    std::span<const uint8_t> data) {
  Reader r(data);
  RecoveryProposalMessage m;
  m.pk = r.Fixed<32>();
  m.code = r.U64();
  m.sorthash = r.Fixed<64>();
  m.sort_proof = r.Fixed<80>();
  auto block_bytes = r.Bytes();
  auto block = Block::Deserialize(block_bytes);
  if (!block) {
    return std::nullopt;
  }
  m.block = std::move(*block);
  uint32_t n = r.U32();
  if (!r.ok() || n > data.size()) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < n; ++i) {
    auto sb = r.Bytes();
    auto suffix_block = Block::Deserialize(sb);
    if (!suffix_block) {
      return std::nullopt;
    }
    m.suffix.push_back(std::move(*suffix_block));
  }
  m.signature = r.Fixed<64>();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return m;
}

VoteMessage MakeVote(const Ed25519KeyPair& key, uint64_t round, uint32_t step,
                     const VrfOutput& sorthash, const VrfProof& sort_proof,
                     const Hash256& prev_hash, const Hash256& value, const SignerBackend& signer) {
  VoteMessage m;
  m.pk = key.public_key;
  m.round = round;
  m.step = step;
  m.sorthash = sorthash;
  m.sort_proof = sort_proof;
  m.prev_hash = prev_hash;
  m.value = value;
  m.signature = signer.Sign(key, m.SignedBody());
  return m;
}

PriorityMessage MakePriorityMessage(const Ed25519KeyPair& key, uint64_t round,
                                    const VrfOutput& sorthash, const VrfProof& sort_proof,
                                    uint64_t sub_users, const SignerBackend& signer) {
  PriorityMessage m;
  m.pk = key.public_key;
  m.round = round;
  m.sorthash = sorthash;
  m.sort_proof = sort_proof;
  m.sub_users = sub_users;
  m.signature = signer.Sign(key, m.SignedBody());
  return m;
}

}  // namespace algorand
