#include "src/core/committee_analysis.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace algorand {
namespace {

// Poisson pmf values over [lo, hi], computed in log space.
std::vector<double> PoissonWindow(double lambda, int64_t lo, int64_t hi) {
  std::vector<double> pmf;
  pmf.reserve(static_cast<size_t>(hi - lo + 1));
  for (int64_t k = lo; k <= hi; ++k) {
    double logp = -lambda + static_cast<double>(k) * std::log(lambda) -
                  std::lgamma(static_cast<double>(k) + 1.0);
    pmf.push_back(std::exp(logp));
  }
  return pmf;
}

struct Window {
  int64_t lo;
  int64_t hi;
};

Window PoissonSupportWindow(double lambda) {
  double sigma = std::sqrt(lambda);
  int64_t lo = std::max<int64_t>(0, static_cast<int64_t>(lambda - 14 * sigma) - 2);
  int64_t hi = static_cast<int64_t>(lambda + 14 * sigma) + 4;
  return {lo, hi};
}

}  // namespace

double CommitteeViolationProbability(double h, double tau, double threshold) {
  const double lambda_g = h * tau;
  const double lambda_b = (1.0 - h) * tau;
  const double vote_threshold = threshold * tau;

  Window wg = PoissonSupportWindow(lambda_g);
  Window wb = PoissonSupportWindow(lambda_b);
  std::vector<double> pg = PoissonWindow(lambda_g, wg.lo, wg.hi);
  std::vector<double> pb = PoissonWindow(lambda_b, wb.lo, wb.hi);

  // Tail mass outside the window counts as violation (conservative).
  double mass_g = 0, mass_b = 0;
  for (double v : pg) {
    mass_g += v;
  }
  for (double v : pb) {
    mass_b += v;
  }
  double outside = (1.0 - mass_g) + (1.0 - mass_b);

  // P(b > vote_threshold - g/2) as a function of g: precompute the suffix
  // sums of pb so the joint loop is O(|g| + |b|).
  std::vector<double> pb_suffix(pb.size() + 1, 0.0);
  for (size_t i = pb.size(); i > 0; --i) {
    pb_suffix[i - 1] = pb_suffix[i] + pb[i - 1];
  }
  auto prob_b_greater = [&](double x) {
    // P(b > x) for b in the window.
    int64_t first_bad = static_cast<int64_t>(std::floor(x)) + 1;  // smallest b with b > x.
    if (first_bad <= wb.lo) {
      return pb_suffix[0];
    }
    if (first_bad > wb.hi) {
      return 0.0;
    }
    return pb_suffix[static_cast<size_t>(first_bad - wb.lo)];
  };

  double violation = 0.0;
  for (int64_t g = wg.lo; g <= wg.hi; ++g) {
    double p_g = pg[static_cast<size_t>(g - wg.lo)];
    if (static_cast<double>(g) <= vote_threshold) {
      // Liveness violated outright regardless of b.
      violation += p_g;
      continue;
    }
    // Safety violated when g/2 + b > vote_threshold.
    violation += p_g * prob_b_greater(vote_threshold - static_cast<double>(g) / 2.0);
  }
  // Clamp: tiny negative values are cancellation noise from the window sums.
  return std::min(1.0, std::max(0.0, violation + outside));
}

double Log2CertificateForgeryProbability(double h, double tau, double threshold) {
  // b ~ Poisson(lambda) with lambda = (1-h) * tau; we need log P(b > k) for
  // k = threshold * tau, deep in the tail. Sum the dominant terms in log
  // space starting at k+1 (the series decays geometrically by lambda/k).
  const double lambda = (1.0 - h) * tau;
  const int64_t k = static_cast<int64_t>(threshold * tau);
  // log pmf at k+1.
  double logp = -lambda + static_cast<double>(k + 1) * std::log(lambda) -
                std::lgamma(static_cast<double>(k + 2));
  // Tail sum bounded by geometric series with ratio r = lambda / (k+2).
  double r = lambda / static_cast<double>(k + 2);
  double log_tail = logp - std::log1p(-r);
  return log_tail / std::log(2.0);
}

ThresholdChoice BestThreshold(double h, double tau) {
  ThresholdChoice best;
  for (double t = 0.667; t <= 0.95; t += 0.0005) {
    double v = CommitteeViolationProbability(h, tau, t);
    if (v < best.violation) {
      best.violation = v;
      best.threshold = t;
    }
  }
  return best;
}

double RequiredCommitteeSize(double h, double epsilon, double tau_limit) {
  // The violation probability is monotone decreasing in tau for the optimal
  // T, so binary search on tau (granularity 1).
  double lo = 10, hi = tau_limit;
  if (BestThreshold(h, hi).violation > epsilon) {
    return 0;
  }
  while (hi - lo > 1.0) {
    double mid = 0.5 * (lo + hi);
    if (BestThreshold(h, mid).violation <= epsilon) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return std::ceil(hi);
}

}  // namespace algorand
