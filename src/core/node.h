// The Algorand node: ties block proposal (§6), BA* (§7), the ledger (§8.1),
// certificates (§8.3) and the gossip relay rules (§8.4) into the per-user
// state machine the paper evaluates.
//
// One Node instance is one "user" of the paper's experiments. Nodes interact
// only through the gossip network; every run is deterministic given the
// simulation seed. Adversarial behaviours are subclasses that override the
// protected virtual hooks (propose/vote), so the honest logic stays in one
// place.
#ifndef ALGORAND_SRC_CORE_NODE_H_
#define ALGORAND_SRC_CORE_NODE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/core/ba_star.h"
#include "src/core/catchup.h"
#include "src/core/certificate.h"
#include "src/core/context.h"
#include "src/core/fastsync.h"
#include "src/core/fork_monitor.h"
#include "src/core/params.h"
#include "src/core/snapshot.h"
#include "src/core/sortition.h"
#include "src/core/tx_verifier.h"
#include "src/core/verification_cache.h"
#include "src/ledger/ledger.h"
#include "src/ledger/mempool.h"
#include "src/netsim/gossip.h"
#include "src/netsim/simulation.h"
#include "src/obs/metrics.h"
#include "src/obs/round_tracer.h"
#include "src/store/block_store.h"
#include "src/store/checkpoint.h"

namespace algorand {

class VerifyPool;

// Crypto backends shared by all nodes of a simulation.
struct CryptoSuite {
  const VrfBackend* vrf = nullptr;
  const SignerBackend* signer = nullptr;
  VerificationCache* cache = nullptr;  // Optional.
  // Optional verification worker pool. With a shared cache the first
  // verification of a message happens at its origin (every later receiver
  // hits the cache), so nodes prewarm their own outbound messages here and
  // the pool carries the compute off the protocol thread.
  VerifyPool* pool = nullptr;
  // Optional worker pool for the block-apply pipeline (ledger/exec.h):
  // conflict partitions of a committed block apply across these threads.
  // Kept separate from `pool` so long apply jobs never starve prewarms.
  // Null or zero workers = sequential apply (the deterministic default).
  VerifyPool* exec_pool = nullptr;
};

// Per-round timing/outcome record, the raw data behind Figures 5-8.
struct RoundRecord {
  uint64_t round = 0;
  SimTime start_time = 0;
  SimTime proposal_done_at = 0;  // Entered BA* with a candidate.
  SimTime best_priority_at = 0;  // Last improvement to the known best priority.
  SimTime candidate_block_at = 0;  // Receipt of the block BA* started with (0: empty).
  SimTime reduction_done_at = 0;
  SimTime binary_done_at = 0;  // BinaryBA* returned (BA* minus final step).
  SimTime end_time = 0;        // Block appended; next round may start.
  bool final = false;
  bool empty = false;
  bool hung = false;
  int binary_steps = 0;
};

class Node : public BaEnvironment {
 public:
  Node(NodeId id, Executor* sim, GossipAgent* gossip, const Ed25519KeyPair& key,
       const GenesisConfig& genesis, const ProtocolParams& params, CryptoSuite crypto);
  ~Node() override = default;

  // Begins round 1 at the current simulation time.
  void Start();

  // Routes this node's per-round instrumentation through `metrics` ("node.*"
  // counters, "ba.*" timing histograms) and structured BA* events through
  // `tracer`. Either may be null. Call before Start(); instrument pointers
  // are resolved once here so the per-event path never takes the registry
  // lock.
  void AttachObservability(MetricsRegistry* metrics, RoundTracer* tracer);

  // Adds a payment to the pending pool (§4, Figure 1).
  void SubmitTransaction(const Transaction& tx);

  // Submits a payment *and* gossips it network-wide, the way a client
  // attached to this node would (Figure 1).
  void GossipTransaction(const Transaction& tx);

  const Ledger& ledger() const { return ledger_; }
  Ledger* mutable_ledger() { return &ledger_; }
  NodeId id() const { return id_; }
  const Ed25519KeyPair& key() const { return key_; }
  const ProtocolParams& params() const { return params_; }
  const std::vector<RoundRecord>& round_records() const { return records_; }
  const std::map<uint64_t, Certificate>& certificates() const { return certificates_; }
  // Final-step certificates (§8.3: "a certificate proving the safety of a
  // block"), available for rounds this node saw reach final consensus.
  const std::map<uint64_t, Certificate>& final_certificates() const {
    return final_certificates_;
  }
  const ForkMonitor& fork_monitor() const { return fork_monitor_; }
  bool hung() const { return hung_; }
  bool in_recovery() const { return in_recovery_; }
  uint64_t recoveries_completed() const { return recoveries_completed_; }
  uint64_t current_round() const { return current_round_; }
  size_t pending_txn_count() const { return mempool_.size(); }
  const Mempool& mempool() const { return mempool_; }
  Mempool* mutable_mempool() { return &mempool_; }
  bool in_catchup() const { return catchup_.active; }
  uint64_t catchups_completed() const { return catchups_completed_; }
  bool in_fastsync() const { return fastsync_.active; }
  uint64_t fastsyncs_completed() const { return fastsyncs_completed_; }
  bool halted() const { return halted_; }

  // --- Durable storage (src/store) ---
  // Routes this node's committed rounds through `store`: every append,
  // catch-up application, finality upgrade and fork switch is streamed to
  // the log. The caller owns the store (one per node directory). Call before
  // Start(); pass nullptr to detach.
  void AttachStore(BlockStore* store) { store_ = store; }
  BlockStore* store() const { return store_; }

  // Rebuilds chain + certificate maps by replaying `store` into a
  // genesis-fresh node, validating each round's certificate against the
  // reconstructed chain (§8.3: bootstrapping from stored certificates).
  // Stops at the first record that fails validation and truncates the store
  // back to the valid prefix, so disk and memory agree afterwards. Attaches
  // the store. Call after ConfigureCertificateSharding, before Start().
  // Returns false if the node already made progress past genesis.
  bool RestoreFromStore(BlockStore* store);

  // --- Crash/restart (fault injection) ---
  // Serializes the node's durable state: chain, consensus kinds, stored
  // certificates and the shard configuration. Volatile state (BA* progress,
  // buffered messages, the transaction pool) is deliberately excluded — a
  // crash loses it.
  NodeSnapshot Snapshot() const;
  // Loads a snapshot into a freshly constructed node (chain still at
  // genesis). Returns false if the node already made progress or the
  // snapshot's chain does not apply.
  bool RestoreSnapshot(const NodeSnapshot& snapshot);
  // Permanently stops this node: kills all pending timers via the scheduling
  // epoch and makes every handler a no-op. Used by the harness to park a
  // "crashed" node whose callbacks may still sit in the event queue.
  void Halt();

  // Verification pipeline hook: if `msg` carries a signature/VRF payload
  // verifiable in this node's *current* round context, submits a job to
  // `pool` that prewarms the shared VerificationCache. Everything the job
  // needs (seed, weights, committee size) is resolved here on the protocol
  // thread; the job itself is a pure function, so running it on a worker
  // changes wall-clock timing but never a protocol decision. Called by the
  // harness/cluster transport while the message is still in flight.
  void PrewarmMessage(const MessagePtr& msg, VerifyPool* pool);

  // Serves block/certificate history to catching-up peers (§8.3). When
  // sharding is configured (shard_count > 1) a node persists certificates
  // only for rounds where round % shard_count == id % shard_count.
  void ConfigureCertificateSharding(uint32_t shard_count);

  // --- BaEnvironment ---
  void CastVote(uint32_t step_code, double tau, const Hash256& value) override;
  void ScheduleAfter(SimTime delay, std::function<void()> fn) override;
  SimTime Now() const override;

 protected:
  // Block-proposal hook: runs proposer sortition and, when selected, builds
  // and gossips the priority message and the block. Adversaries override
  // (e.g. to equivocate).
  virtual void MaybePropose();

  // Vote-casting hook invoked when committee sortition selects this node;
  // honest nodes gossip exactly one vote for `value`. Adversaries override.
  virtual void EmitVotes(uint32_t step_code, const SortitionResult& sort, const Hash256& value);

  // Decides whether a completed BA* round counts as FINAL for this node.
  // Honest nodes defer to the protocol's final-step quorum; the model
  // checker's seeded-bug node overrides this to claim finality it did not
  // earn, giving the checker a schedule-dependent violation to find.
  virtual bool FinalVerdict(const BaResult& result) const { return result.final; }

  // Builds this node's block proposal for the current round.
  Block BuildBlockProposal();

  // Serves a catch-up request from local chain + certificate storage. A
  // sharded node stops at its first certificate gap (partial batch). Virtual
  // so adversarial subclasses can serve tampered batches in tests.
  virtual std::shared_ptr<CatchupResponseMessage> BuildCatchupResponse(
      const CatchupRequestMessage& req) const;

  // Shared helpers for subclasses.
  void GossipMessage(const MessagePtr& msg);
  RoundContext MakeContext() const;
  GossipAgent* gossip() { return gossip_; }
  Executor* sim() { return sim_; }
  const CryptoSuite& crypto() const { return crypto_; }
  const Hash256& empty_hash() const { return empty_hash_; }
  uint64_t SelfWeight() const { return ledger_.WeightOf(key_.public_key); }

 private:
  friend class SimHarness;

  enum class Phase {
    kIdle,
    kWaitPriority,
    kWaitBlock,
    kAgreement,
    kFetchBlock,
    kRecovery,
    kCatchup,
  };

  void StartRound(uint64_t round);
  void OnPriorityWindowClosed();
  void OnBlockWindowClosed(uint64_t round);
  void StartAgreement(const Hash256& candidate);
  void OnBaComplete(const BaResult& result);
  void TryFinishRound();
  void AppendAgreedBlock(const Block& block);
  // Gathers stored votes of `step` for the agreed value until their weight
  // exceeds `threshold`.
  Certificate BuildCertificateForStep(uint32_t step, double threshold) const;
  // Streams the just-appended round `round` (the current ledger tip) to the
  // attached store, if any. Null certificates mean "none recorded".
  void StreamRoundToStore(uint64_t round, ConsensusKind kind, const Certificate* cert,
                          const Certificate* final_cert);

  // Gossip plumbing.
  GossipVerdict ValidateForRelay(const MessagePtr& msg);
  void HandleMessage(const MessagePtr& msg);
  void HandleVote(const std::shared_ptr<const VoteMessage>& vote);
  void HandlePriority(const std::shared_ptr<const PriorityMessage>& msg);
  void HandleBlock(const std::shared_ptr<const BlockMessage>& msg);
  void HandleBlockRequest(const std::shared_ptr<const BlockRequestMessage>& msg);

  // --- Live catch-up (§8.3) ---
  // Called when gossip shows traffic for a round ahead of ours; triggers or
  // extends a catch-up session.
  void NoteCatchupEvidence(uint64_t round);
  void StartCatchup(uint64_t target_round);
  // The session driver: applies ready batches, finishes or aborts, and keeps
  // the in-flight request window full.
  void PumpCatchup();
  void SendCatchupRequest(uint64_t from_round);
  // Lowest round not covered by an in-flight request or ready batch.
  uint64_t CatchupFrontier() const;
  NodeId NextCatchupPeer();
  // Timeout or bad batch: bump the attempt counter, rotate peers, back off
  // exponentially (with jitter), and abort the session if it keeps failing.
  void FailCatchupAttempt();
  void FinishCatchup();
  void AbortCatchup();
  void HandleCatchupRequest(const std::shared_ptr<const CatchupRequestMessage>& msg);
  void HandleCatchupResponse(const std::shared_ptr<const CatchupResponseMessage>& msg);
  // Validates and appends a response batch in round order. Returns false on
  // the first invalid entry (the whole batch is then charged to the peer).
  bool ApplyCatchupResponse(const CatchupResponseMessage& resp, uint64_t* applied);
  // Context for validating the certificate of `round` == ledger_.next_round().
  RoundContext CatchupContext(uint64_t round) const;

  // --- Checkpoints + certificate-chain fast-sync (DESIGN.md §13) ---
  // After a final round crosses a checkpoint-interval boundary, captures the
  // ledger state at the boundary round and hands it to the store (which
  // writes the sidecar off the protocol thread and compacts old segments).
  void MaybeCheckpoint();
  // Bootstraps a genesis-fresh node from a peer's checkpoint: manifest ->
  // cert-chain links -> payload chunks -> install -> normal catch-up for the
  // suffix. Any failure falls back to full catch-up from genesis.
  void StartFastSync(uint64_t target_round);
  NodeId NextFastSyncPeer();
  void SendFastSyncManifestRequest();
  void SendFastSyncLinksRequest();
  void SendFastSyncChunkRequest();
  // Arms the per-request timeout for the outstanding request `seq`.
  void ArmFastSyncTimeout(uint64_t seq);
  // Verifies one chain link continues the verified prefix: consecutive
  // round, certificate deserializes and names this round/hash, and every
  // vote's signature checks out and binds to the previous link's hash.
  bool VerifyFastSyncLink(const ChainLink& link) const;
  // Full payload received: re-derives and cross-checks manifest, tip block,
  // account fingerprint and seed window, installs into the ledger, persists
  // checkpoint + links + log prime to the store. False = peer served junk.
  bool InstallFastSyncCheckpoint();
  // Peer-scoped failure: rotate to another peer and restart the handshake,
  // or (after enough attempts) give up on fast-sync entirely.
  void FailFastSyncAttempt();
  // Session failure: abandon fast-sync and fall back to ordinary catch-up
  // from genesis.
  void FailFastSync();
  void FinishFastSync();
  void HandleFastSyncManifestRequest(const std::shared_ptr<const FastSyncManifestRequest>& msg);
  void HandleFastSyncManifestResponse(
      const std::shared_ptr<const FastSyncManifestResponse>& msg);
  void HandleFastSyncLinksRequest(const std::shared_ptr<const FastSyncLinksRequest>& msg);
  void HandleFastSyncLinksResponse(const std::shared_ptr<const FastSyncLinksResponse>& msg);
  void HandleFastSyncChunkRequest(const std::shared_ptr<const FastSyncChunkRequest>& msg);
  void HandleFastSyncChunkResponse(const std::shared_ptr<const FastSyncChunkResponse>& msg);

  // Verifies a vote's signature and sortition for the current round context;
  // returns the weighted vote count (0 = invalid). Uses the shared cache.
  uint64_t VerifyVote(const VoteMessage& vote, const RoundContext& ctx) const;
  uint64_t VerifyProposerSortition(const PublicKey& pk, const VrfOutput& sorthash,
                                   const VrfProof& proof, const RoundContext& ctx) const;

  // Validates a received block's contents (§8.1); on failure the block is
  // treated as garbage (never a candidate).
  bool ValidateBlockContents(const Block& block) const;

  void RememberFutureMessage(uint64_t round, const MessagePtr& msg);
  void ReplayBufferedMessages(uint64_t round);

  // --- Observability ---
  // Translates BaStar step transitions into tracer events and the
  // "ba.step_time_ms" histogram (shared by the normal and recovery machines).
  void ObserveBaStep(const BaStepEvent& event);
  // Records a trace event stamped with this node's id and current time; the
  // round defaults to the active one (recovery session code in recovery).
  void Trace(TraceKind kind, uint32_t step = 0, uint64_t a = 0, uint64_t b = 0,
             uint64_t value_prefix = 0, uint8_t flag = 0);
  // Observes the completed round's phase durations into the "ba.*"
  // histograms and bumps the round-outcome counters.
  void RecordRoundMetrics(const RoundRecord& rec);

  // --- Fork recovery (§8.2) ---
  // Periodic clock-driven check: enters recovery when the node is hung or
  // has fork evidence.
  void ScheduleRecoveryCheck();
  void EnterRecovery();
  // Joins a newer recovery session observed on the wire (a stuck node whose
  // retries drifted out of step with the majority adopts their session code).
  void MaybeJoinRecoverySession(uint64_t code);
  void MaybeProposeRecovery();
  void StartRecoveryAgreement();
  void OnRecoveryBaComplete(const BaResult& result);
  void HandleRecoveryProposal(const std::shared_ptr<const RecoveryProposalMessage>& msg);
  GossipVerdict ValidateRecoveryProposal(const RecoveryProposalMessage& msg);
  // The recovery session code all (loosely synchronized) nodes derive for
  // attempt `attempt` of the recovery window containing `now`.
  uint64_t RecoveryCode(uint32_t attempt) const;

  NodeId id_;
  Executor* sim_;
  GossipAgent* gossip_;
  Ed25519KeyPair key_;
  ProtocolParams params_;
  CryptoSuite crypto_;
  Ledger ledger_;

  // Observability (null when not attached). Instrument pointers are resolved
  // once in AttachObservability.
  MetricsRegistry* metrics_ = nullptr;
  RoundTracer* tracer_ = nullptr;
  struct Instruments {
    Counter* blocks_proposed = nullptr;
    Counter* blocks_validated = nullptr;
    Counter* votes_cast = nullptr;
    Counter* votes_counted = nullptr;
    Counter* rounds_completed = nullptr;
    Counter* rounds_final = nullptr;
    Counter* rounds_empty = nullptr;
    Counter* rounds_hung = nullptr;
    Counter* recoveries = nullptr;
    Counter* catchup_sessions = nullptr;
    Counter* catchup_requests = nullptr;
    Counter* catchup_served = nullptr;
    Counter* catchup_timeouts = nullptr;
    Counter* catchup_bad_batches = nullptr;
    Counter* catchup_blocks = nullptr;
    Counter* catchup_completed = nullptr;
    Counter* catchup_rotations = nullptr;
    Counter* catchup_aborted = nullptr;
    Counter* fastsync_sessions = nullptr;
    Counter* fastsync_completed = nullptr;
    Counter* fastsync_failed = nullptr;
    Counter* fastsync_links = nullptr;
    Counter* fastsync_bytes = nullptr;
    Counter* fastsync_served = nullptr;
    Counter* checkpoints_requested = nullptr;
    Histogram* step_time_ms = nullptr;
    Histogram* proposal_time_ms = nullptr;
    Histogram* reduction_time_ms = nullptr;
    Histogram* binary_time_ms = nullptr;
    Histogram* final_time_ms = nullptr;
    Histogram* round_time_ms = nullptr;
    Histogram* binary_steps = nullptr;
  };
  Instruments obs_;

  Phase phase_ = Phase::kIdle;
  uint64_t current_round_ = 0;
  RoundContext ctx_;
  Hash256 empty_hash_;
  Block empty_block_;
  std::unique_ptr<BaStar> ba_;
  // The previous round's machine is parked here for one round instead of
  // being destroyed inside its own completion callback.
  std::unique_ptr<BaStar> prev_ba_;
  BaResult ba_result_;
  bool hung_ = false;

  // Proposal-phase state for the current round.
  struct ProposalState {
    bool have_best = false;
    Hash256 best_priority;
    PublicKey best_pk;
    SimTime best_priority_at = 0;
    std::unordered_map<Hash256, SimTime, FixedBytesHasher> block_seen_at;
    std::unordered_map<Hash256, Block, FixedBytesHasher> blocks_by_hash;
    std::unordered_map<PublicKey, Hash256, FixedBytesHasher> block_hash_by_proposer;
    // Proposers caught equivocating this round (§10.4 optimization).
    std::unordered_set<PublicKey, FixedBytesHasher> banned_proposers;
  };
  ProposalState proposal_;

  // Verified votes stored for certificate assembly: (step, pk) -> message.
  std::map<std::pair<uint32_t, PublicKey>, VoteMessage> round_votes_;

  // Messages for rounds we have not reached yet.
  std::map<uint64_t, std::vector<MessagePtr>> future_messages_;

  // Transactions waiting for inclusion: deduped, nonce-sequenced,
  // fee-prioritized (ledger/mempool.h). Declared before applier_/ledger use
  // sites but after crypto_ so tx_verifier_ can borrow the suite's backends.
  Mempool mempool_;
  // Cache-aware batch signature verification for transactions.
  TxSigVerifier tx_verifier_;
  // Conflict-partitioned block apply; attached to ledger_ in the ctor.
  BlockApplier applier_;

  std::vector<RoundRecord> records_;
  std::map<uint64_t, Certificate> certificates_;
  std::map<uint64_t, Certificate> final_certificates_;
  uint32_t shard_count_ = 1;

  // Durable log (null = in-memory only). Owned by the harness/cluster.
  BlockStore* store_ = nullptr;

  ForkMonitor fork_monitor_;

  // Relay bookkeeping: one vote relayed per (round, step, pk) (§8.4).
  std::map<std::tuple<uint64_t, uint32_t, PublicKey>, int> relayed_votes_;

  // Scheduling epoch: bumped on round changes and recovery transitions so
  // timers scheduled for a dead state never fire into it.
  uint64_t sched_epoch_ = 0;

  // Set by Halt(): the node is a parked zombie (crashed); every handler and
  // periodic check returns immediately.
  bool halted_ = false;

  // --- Live catch-up state (§8.3) ---
  struct CatchupState {
    bool active = false;
    uint64_t target_round = 0;      // Catch up through this round.
    uint64_t started_at_round = 0;  // Tip round when the session began.
    uint32_t attempt = 0;           // Consecutive failures; reset on progress.
    uint32_t empty_streak = 0;      // Consecutive empty answers; reset on progress.
    SimTime blocked_until = 0;      // Backoff gate for new requests.
    std::vector<NodeId> peers;      // Shuffled peer pool, rotated per request.
    size_t peer_cursor = 0;
    struct Pending {
      NodeId peer = 0;
      uint64_t seq = 0;
      uint32_t limit = 0;
    };
    std::map<uint64_t, Pending> inflight;  // from_round -> outstanding request.
    // Verified-later batches keyed by from_round, applied in chain order.
    std::map<uint64_t, std::shared_ptr<const CatchupResponseMessage>> ready;
  };
  CatchupState catchup_;
  // Bumped when a session starts/ends so timers for dead sessions no-op.
  uint64_t catchup_session_ = 0;
  // Request nonce; never reset, so responses to old sessions cannot alias.
  uint64_t catchup_seq_ = 0;
  uint64_t catchups_completed_ = 0;
  DeterministicRng catchup_rng_;

  // --- Fast-sync state (DESIGN.md §13) ---
  struct FastSyncState {
    bool active = false;
    enum class Stage : uint8_t { kManifest, kLinks, kChunks };
    Stage stage = Stage::kManifest;
    NodeId peer = 0;      // The one peer this attempt talks to.
    uint64_t seq = 0;     // Nonce of the single outstanding request.
    uint64_t target_round = 0;  // Gossip-evidence round; post-install catch-up target.
    uint32_t attempt = 0;       // Peers tried this session.
    CheckpointManifest manifest;
    uint64_t payload_bytes = 0;
    uint64_t next_link = 1;  // Next chain-link round to verify.
    Hash256 prev_hash;       // Verified hash of round next_link - 1.
    std::vector<ChainLink> links;   // Verified links 1..next_link-1.
    std::vector<uint8_t> payload;   // Checkpoint payload prefix received.
  };
  FastSyncState fastsync_;
  uint64_t fastsync_session_ = 0;
  uint64_t fastsync_seq_ = 0;
  uint64_t fastsyncs_completed_ = 0;
  // Hash of the round-0 block, pinned at construction: a compacted ledger
  // can no longer serve genesis(), but checkpoints must bind to it.
  Hash256 genesis_hash_;
  // Highest round this node asked the store to checkpoint (or adopted).
  uint64_t last_checkpoint_round_ = 0;

  // Recovery state (§8.2).
  bool in_recovery_ = false;
  uint64_t recovery_code_ = 0;
  uint32_t recovery_attempt_ = 0;
  uint64_t recovery_window_ = 0;  // Pinned at session entry; retries keep it.
  uint64_t recoveries_completed_ = 0;
  uint64_t recovery_final_round_ = 0;  // Last common final round f.
  RoundContext recovery_ctx_;
  AccountTable recovery_accounts_;  // Weights as of round f.
  Block recovery_empty_;            // Fallback: empty block extending round f.
  Hash256 recovery_empty_hash_;
  std::unique_ptr<BaStar> recovery_ba_;
  std::unique_ptr<BaStar> prev_recovery_ba_;
  struct RecoveryCandidate {
    Block block;
    std::vector<Block> suffix;
    Hash256 priority;
  };
  std::unordered_map<Hash256, RecoveryCandidate, FixedBytesHasher> recovery_candidates_;
  bool have_best_recovery_ = false;
  Hash256 best_recovery_priority_;
  Hash256 best_recovery_hash_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_NODE_H_
