#include "src/core/snapshot.h"

#include "src/common/serialize.h"

namespace algorand {

std::vector<uint8_t> NodeSnapshot::Serialize() const {
  Writer w;
  w.U32(shard_count);
  w.U32(static_cast<uint32_t>(blocks.size()));
  for (size_t i = 0; i < blocks.size(); ++i) {
    w.Bytes(blocks[i].Serialize());
    w.U8(i < kinds.size() ? kinds[i] : 1);
  }
  w.U32(static_cast<uint32_t>(certificates.size()));
  for (const Certificate& c : certificates) {
    w.Bytes(c.Serialize());
  }
  w.U32(static_cast<uint32_t>(final_certificates.size()));
  for (const Certificate& c : final_certificates) {
    w.Bytes(c.Serialize());
  }
  return w.Take();
}

std::optional<NodeSnapshot> NodeSnapshot::Deserialize(std::span<const uint8_t> data) {
  Reader r(data);
  NodeSnapshot s;
  s.shard_count = r.U32();
  uint32_t n_blocks = r.U32();
  if (!r.ok() || n_blocks > data.size()) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < n_blocks; ++i) {
    auto bb = r.Bytes();
    auto block = Block::Deserialize(bb);
    uint8_t kind = r.U8();
    if (!block || !r.ok() || kind > 1) {
      return std::nullopt;
    }
    s.blocks.push_back(std::move(*block));
    s.kinds.push_back(kind);
  }
  for (auto* out : {&s.certificates, &s.final_certificates}) {
    uint32_t n = r.U32();
    if (!r.ok() || n > data.size()) {
      return std::nullopt;
    }
    for (uint32_t i = 0; i < n; ++i) {
      auto cb = r.Bytes();
      auto cert = Certificate::Deserialize(cb);
      if (!cert) {
        return std::nullopt;
      }
      out->push_back(std::move(*cert));
    }
  }
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return s;
}

}  // namespace algorand
