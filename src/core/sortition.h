// Cryptographic sortition (§5, Algorithms 1 and 2).
//
// Sortition privately selects users in proportion to their weight. A user
// with weight w (currency units) is treated as w sub-users, each selected
// independently with probability p = tau / W. The VRF output, interpreted as
// a uniform fraction of [0,1), is inverted through the binomial CDF to decide
// how many of the user's sub-users were chosen; the VRF proof lets everyone
// else check the outcome with only the public key and the ledger's weights.
#ifndef ALGORAND_SRC_CORE_SORTITION_H_
#define ALGORAND_SRC_CORE_SORTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/vrf.h"

namespace algorand {

// Roles a user can be selected for. The role is part of the VRF input so
// selections for different purposes are independent.
enum class Role : uint8_t {
  kProposer = 1,   // Block proposal (§6).
  kCommittee = 2,  // BA* step committee (§7).
  kRecovery = 3,   // Fork-recovery proposer (§8.2).
};

// Serializes seed || role || round || step as the VRF input alpha.
std::vector<uint8_t> SortitionAlpha(const SeedBytes& seed, Role role, uint64_t round,
                                    uint32_t step);

struct SortitionResult {
  VrfOutput hash;   // Pseudo-random VRF output (drives sub-user count).
  VrfProof proof;   // Proof of the output for VerifySortition.
  uint64_t votes = 0;  // j: the number of selected sub-users (0 = not selected).
};

// Algorithm 1: runs sortition for `key` with weight `weight` out of total
// weight `total_weight`, for an expected `tau` selected sub-users overall.
SortitionResult RunSortition(const VrfBackend& vrf, const Ed25519KeyPair& key,
                             const SeedBytes& seed, double tau, Role role, uint64_t round,
                             uint32_t step, uint64_t weight, uint64_t total_weight);

// Algorithm 2: verifies a sortition proof and returns the number of selected
// sub-users (0 if the proof is invalid or the user was not selected).
uint64_t VerifySortition(const VrfBackend& vrf, const PublicKey& pk, const VrfOutput& hash,
                         const VrfProof& proof, const SeedBytes& seed, double tau, Role role,
                         uint64_t round, uint32_t step, uint64_t weight, uint64_t total_weight);

// The binomial CDF inversion at the heart of both algorithms: given the
// uniform fraction encoded by `hash`, returns j such that the fraction lies
// in [CDF(j-1), CDF(j)) for Binomial(weight, p). Exposed for direct testing.
//
// The CDF depends only on (weight, p), and a simulation evaluates it for the
// same pair millions of times (every node, every step, every round — stakes
// are few distinct values and p is tau/W). SelectSubUsers therefore serves
// lookups from a process-wide LRU of precomputed CDF prefix tables; the
// cached path is bit-identical to the uncached recurrence because the tables
// store the exact cumulative long-double sequence the loop would produce
// (the lookup is a binary search over a non-decreasing sequence for the
// first k with frac < CDF(k), which is precisely the loop's exit test).
// Tables past kSortitionCdfMaxTableEntries terms store the loop's resume
// state instead of growing without bound.
uint64_t SelectSubUsers(const VrfOutput& hash, uint64_t weight, double p);

// The original uncached log-space recurrence; reference for equivalence
// tests and the cached-vs-uncached microbenchmark.
uint64_t SelectSubUsersUncached(const VrfOutput& hash, uint64_t weight, double p);

// Cap on precomputed CDF terms per (weight, p) table; beyond it the lookup
// resumes the exact recurrence from the stored tail state.
constexpr size_t kSortitionCdfMaxTableEntries = 4096;

// Process-wide cache statistics (relaxed counters; safe to read any time).
struct SortitionCdfCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
};
SortitionCdfCacheStats GetSortitionCdfCacheStats();

// Maps a VRF output to a uniform fraction of [0,1) using its top 128 bits.
long double HashToFraction(const VrfOutput& hash);

// Block-proposal priority (§6): the best (numerically smallest) value of
// SHA-256(vrf_hash || sub_user_index) over the j selected sub-users. Lower is
// higher priority. `votes` must be >= 1.
Hash256 ProposalPriority(const VrfOutput& hash, uint64_t votes);

// Compares priorities: true if `a` beats `b` (a is smaller).
inline bool PriorityBeats(const Hash256& a, const Hash256& b) { return a < b; }

}  // namespace algorand

#endif  // ALGORAND_SRC_CORE_SORTITION_H_
