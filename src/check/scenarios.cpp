#include "src/check/scenarios.h"

#include <memory>
#include <set>
#include <sstream>

#include "src/check/model_checker.h"
#include "src/core/messages.h"
#include "src/core/sim_harness.h"
#include "src/netsim/adversary.h"
#include "src/obs/safety_auditor.h"

namespace algorand {

namespace {

// One assertion line: "[ok] ..." / "[FAIL] ...". Returns the condition so
// callers can fold it into the scenario verdict.
bool Check(std::ostringstream& out, bool cond, const std::string& what) {
  out << (cond ? "  [ok]   " : "  [FAIL] ") << what << "\n";
  return cond;
}

SafetyAuditorConfig AuditorConfigFor(const ProtocolParams& params) {
  SafetyAuditorConfig acfg;
  acfg.step_threshold = params.StepThreshold();
  acfg.final_threshold = params.FinalThreshold();
  acfg.final_step_code = kStepFinal;
  return acfg;
}

// The small fast deployment shared by the scenarios (the recovery_test
// configuration: sim crypto, uniform latency, quick hang detection).
HarnessConfig ScenarioHarnessConfig(size_t n_nodes, uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = n_nodes;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = 32 * 1024;
  cfg.params.max_steps = 9;
  cfg.params.recovery_interval = Minutes(10);
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.use_sim_crypto = true;
  cfg.sim_workers = 0;
  cfg.verify_workers = 0;
  return cfg;
}

// --- seed-grind ------------------------------------------------------------
//
// A §5.2 grinding proposer tries 16 payloads per selected round and plays the
// withhold bit greedily. Expected outcome: the VRF refresh rule pins every
// ground round to exactly ONE reachable next-seed (payload grinding buys
// nothing), consensus stays live and safe under the attack.
ScenarioResult RunSeedGrind() {
  ScenarioResult result;
  std::ostringstream out;
  HarnessConfig cfg = ScenarioHarnessConfig(10, 21);
  cfg.grinding_count = 1;
  cfg.grind_candidates = 16;
  cfg.grind_withhold = true;
  SimHarness h(cfg);
  SafetyAuditor auditor(AuditorConfigFor(cfg.params));
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });
  h.Start();
  const bool done = h.RunRounds(6, Hours(4));

  const auto& grinder = dynamic_cast<const GrindingProposerNode&>(h.node(0));
  const auto& stats = grinder.grind_stats();
  out << "seed-grind: rounds_selected=" << stats.rounds_selected
      << " candidates_tried=" << stats.candidates_tried
      << " distinct_next_seeds=" << stats.distinct_next_seeds
      << " fallback_preferred=" << stats.fallback_preferred << " withheld=" << stats.withheld
      << "\n";
  bool ok = Check(out, done, "cluster finishes 6 rounds despite the grinder");
  ok &= Check(out, stats.rounds_selected >= 1, "grinder was selected as proposer");
  ok &= Check(out, stats.candidates_tried == stats.rounds_selected * 16,
              "grinder ground 16 payload variants per selected round");
  ok &= Check(out, stats.distinct_next_seeds == stats.rounds_selected,
              "VRF seed-refresh rule: every ground round reaches exactly 1 next-seed");
  ok &= Check(out, h.CheckSafety().ok, "cross-node safety holds");
  ok &= Check(out, auditor.ok(), "safety auditor is silent");
  result.pass = ok;
  result.detail = out.str();
  return result;
}

// --- threshold-equivocation ------------------------------------------------
//
// §10.4 equivocating proposers + double-voting committee members at the
// ScaledCommittees(0.02) thresholds (tau_step 40 / T 0.685, tau_final 200 /
// T 0.74), hammered with randomized schedule exploration (message reordering
// + adversarial vote drops/delays on top of the in-protocol attack).
// Expected outcome: the attack is *observed* (equivocations flagged) but no
// explored schedule ever violates safety.
ScenarioResult RunThresholdEquivocation() {
  ScenarioResult result;
  std::ostringstream out;
  CheckConfig cfg;
  cfg.n_nodes = 8;
  cfg.rounds = 2;
  cfg.harness_seed = 11;
  cfg.malicious_fraction = 0.25;  // 2 of 8 nodes equivocate.
  cfg.max_choice_points = 10;
  cfg.adversary_max_decisions = 4;
  ModelChecker checker(cfg);

  uint64_t equivocations = 0;
  uint64_t schedules = 0;
  uint64_t violations = 0;
  DeterministicRng batch(33, "threshold-equivocation");
  for (int i = 0; i < 40; ++i) {
    RandomStrategy strategy(batch.NextU64(), cfg.max_choice_points);
    ScheduleOutcome outcome = checker.RunWithStrategy(&strategy);
    ++schedules;
    equivocations += outcome.equivocations;
    if (!outcome.safety_ok) {
      ++violations;
      for (const std::string& v : outcome.violations) {
        out << "  violation: " << v << "  [trace " << outcome.trace.Serialize() << "]\n";
      }
    }
  }
  out << "threshold-equivocation: schedules=" << schedules << " equivocations_flagged="
      << equivocations << " violations=" << violations << "\n";
  bool ok = Check(out, equivocations > 0, "the equivocation attack was observed and flagged");
  ok &= Check(out, violations == 0, "no explored schedule violates safety at the tau thresholds");
  result.pass = ok;
  result.detail = out.str();
  return result;
}

// --- partition-rejoin ------------------------------------------------------
//
// Network split mid-BinaryBA*: after one healthy round, a 4/16 partition
// isolates a 20% minority for 9 minutes, then heals. Expected outcome (§8.2):
// stall-then-recover, not fork — the minority makes no progress during the
// split, the 80% majority keeps committing, and after the heal both sides
// converge on the majority's single chain with partition-era rounds FINAL on
// every node. The SafetyAuditor watches the whole run.
ScenarioResult RunPartitionRejoin() {
  ScenarioResult result;
  std::ostringstream out;
  SimHarness h(ScenarioHarnessConfig(20, 5));
  SafetyAuditor auditor(AuditorConfigFor(ProtocolParams::ScaledCommittees(0.02)));
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });
  h.Start();
  bool warmup = h.RunRounds(1, Hours(1));

  std::set<NodeId> minority = {0, 1, 2, 3};
  const SimTime split_at = h.sim().now();  // Mid-protocol: round 2 is running.
  const SimTime heal_at = split_at + Minutes(9);
  h.SetNetworkAdversary(std::make_unique<PartitionAdversary>(minority, split_at, heal_at));
  h.sim().RunUntil(heal_at);

  const uint64_t minority_tip_at_heal = h.node(0).ledger().chain_length();
  const uint64_t majority_tip_at_heal = h.node(19).ledger().chain_length();

  h.sim().RunUntil(heal_at + Minutes(25));

  out << "partition-rejoin: minority_tip@heal=" << minority_tip_at_heal
      << " majority_tip@heal=" << majority_tip_at_heal
      << " minority_tip@end=" << h.node(0).ledger().chain_length()
      << " majority_tip@end=" << h.node(19).ledger().chain_length() << "\n";

  bool ok = Check(out, warmup, "pre-partition warm-up round commits");
  ok &= Check(out, minority_tip_at_heal <= 3,
              "stall: the 20% side cannot commit rounds during the split");
  ok &= Check(out, majority_tip_at_heal > minority_tip_at_heal,
              "progress: the 80% side keeps committing during the split");
  ok &= Check(out, h.node(0).ledger().chain_length() >= majority_tip_at_heal,
              "recover: the minority catches up past the majority's split-time tip");
  bool partition_rounds_final = true;
  for (uint64_t r = minority_tip_at_heal; r < majority_tip_at_heal; ++r) {
    partition_rounds_final &=
        h.node(0).ledger().ConsensusAtRound(r) == ConsensusKind::kFinal;
  }
  ok &= Check(out, partition_rounds_final,
              "tentative->final: partition-era rounds are FINAL on the rejoined minority");
  ok &= Check(out, h.ChainsConsistent(), "one chain: all nodes agree on every common round");
  ok &= Check(out, h.CheckSafety().ok, "cross-node safety holds");
  ok &= Check(out, auditor.ok(), "safety auditor is silent across split and heal");
  if (!auditor.ok()) {
    out << auditor.Report();
  }
  result.pass = ok;
  result.detail = out.str();
  return result;
}

}  // namespace

std::vector<ScenarioInfo> ListScenarios() {
  return {
      {"seed-grind",
       "§5.2 grinding proposer: payload grinding is seed-neutral, consensus stays safe"},
      {"threshold-equivocation",
       "§10.4 equivocation at the tau thresholds under randomized schedule exploration"},
      {"partition-rejoin",
       "network split mid-BinaryBA*: stall-then-recover with FINAL convergence, no fork"},
  };
}

std::optional<ScenarioResult> RunScenarioByName(const std::string& name) {
  if (name == "seed-grind") {
    return RunSeedGrind();
  }
  if (name == "threshold-equivocation") {
    return RunThresholdEquivocation();
  }
  if (name == "partition-rejoin") {
    return RunPartitionRejoin();
  }
  return std::nullopt;
}

}  // namespace algorand
