// Named attack scenarios from "Another Look at ALGORAND", runnable via
// check_cli --mode=scenario --scenario=<name>. Each scenario builds its own
// deployment, mounts the attack, and asserts the paper's expected outcome:
// safety holds unconditionally, liveness degrades gracefully (§8.2) — the
// partition stalls and recovers rather than forking, the equivocators get
// flagged but never split finality, and the seed grinder's advantage is
// bounded to the 1-bit propose/withhold choice by the VRF refresh rule.
#ifndef ALGORAND_SRC_CHECK_SCENARIOS_H_
#define ALGORAND_SRC_CHECK_SCENARIOS_H_

#include <optional>
#include <string>
#include <vector>

namespace algorand {

struct ScenarioResult {
  bool pass = false;
  std::string detail;  // Multi-line human-readable assertion report.
};

struct ScenarioInfo {
  const char* name;
  const char* description;
};

// The library: seed-grind, threshold-equivocation, partition-rejoin.
std::vector<ScenarioInfo> ListScenarios();

// Runs one scenario; nullopt if the name is unknown.
std::optional<ScenarioResult> RunScenarioByName(const std::string& name);

}  // namespace algorand

#endif  // ALGORAND_SRC_CHECK_SCENARIOS_H_
