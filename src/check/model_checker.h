// ModelChecker: drives SimHarness as a determinized schedule explorer.
//
// PR 7 made every simulation a pure function of (seed, scenario); this module
// cashes that in as a stateless model checker for BA* (ROADMAP item 4, the
// CADP/Coq formalization direction). Three nondeterminism sources are reified
// into choice points answered by a Strategy (strategy.h):
//
//   kDelivery  — which of the events inside a weak-synchrony window runs
//                next (Simulation::ScheduleChoiceHook);
//   kAdversary — per-transmission deliver/drop/delay (HookedAdversary);
//   kCrash     — crash/restart injection at periodic probe ticks.
//
// Every explored schedule runs under the online SafetyAuditor plus two
// checker-side end-state invariants: cross-node safety (no two honest chains
// disagree on a FINAL round — SimHarness::CheckSafety) and certificate
// quorums (every stored certificate revalidates against the node's own chain,
// ValidateCertificate's signature + sortition + > T*tau weight check).
// A violating schedule's ChoiceTrace is greedily delta-minimized and dumped
// as a replayable counterexample artifact.
#ifndef ALGORAND_SRC_CHECK_MODEL_CHECKER_H_
#define ALGORAND_SRC_CHECK_MODEL_CHECKER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/check/strategy.h"
#include "src/common/time_units.h"

namespace algorand {

struct CheckConfig {
  // Deployment shape (kept small: the schedule tree is what's large).
  size_t n_nodes = 4;
  uint64_t rounds = 2;
  uint64_t harness_seed = 7;

  // Delivery choice points: events within `window` of the earliest pending
  // event are concurrent; at most `max_candidates` race per choice point.
  SimTime window = Millis(5);
  size_t max_candidates = 3;

  // Schedule-depth bound: choices beyond this take the default (option 0).
  size_t max_choice_points = 12;

  // Adversary choice points (deliver/drop/delay per transmission). Consulted
  // for at most `adversary_max_decisions` vote transmissions (votes are the
  // safety-critical traffic; 0 = disabled). Delayed votes arrive
  // `adversary_delay` late.
  size_t adversary_max_decisions = 0;
  SimTime adversary_delay = Millis(250);

  // Crash/restart choice points: every `crash_probe_interval` a probe may
  // kill an alive node or restart a killed one, at most `max_crash_events`
  // times per schedule (0 = disabled).
  size_t max_crash_events = 0;
  SimTime crash_probe_interval = Seconds(5);

  // Per-schedule simulated-time budget; schedules that don't finish `rounds`
  // by then are recorded as incomplete (a liveness observation, not a safety
  // violation — the adversary is allowed to stall).
  SimTime deadline = Minutes(30);

  // Optional in-protocol adversaries riding along (§10.4 equivocators and
  // §5.2 seed grinders, as in SimHarness).
  double malicious_fraction = 0;
  size_t grinding_count = 0;
  bool grind_withhold = false;

  // Test-only: node 0 runs ForcedFinalNode (test_bugs.h), the deliberately
  // seeded safety bug the checker must be able to find.
  bool seeded_bug = false;
};

// Everything observed about one explored schedule. `Fingerprint()` is the
// bit-for-bit replay contract: two runs of the same (config, trace) must
// produce identical fingerprints (event counts, per-node tips, verdicts).
struct ScheduleOutcome {
  bool completed = false;   // RunRounds finished within the deadline.
  bool safety_ok = true;    // No auditor/cross-node/certificate violation.
  std::vector<std::string> violations;
  uint64_t executed_events = 0;
  uint64_t equivocations = 0;
  std::vector<uint64_t> tips;          // Per-node chain length.
  std::vector<uint64_t> tip_prefixes;  // Per-node tip-hash prefix (uint64).
  ChoiceTrace trace;                   // As recorded by the strategy.
  bool diverged = false;               // Prefix replay mismatch (see strategy.h).

  std::string Fingerprint() const;
};

class ModelChecker {
 public:
  explicit ModelChecker(CheckConfig config) : config_(config) {}

  const CheckConfig& config() const { return config_; }

  // Runs one schedule under `prefix` (defaults beyond it). Deterministic:
  // same config + prefix => same outcome, fingerprint included.
  ScheduleOutcome RunOne(const ChoiceTrace& prefix);

  // Runs one schedule under an arbitrary strategy (owned by the caller).
  ScheduleOutcome RunWithStrategy(Strategy* strategy);

  struct ExploreResult {
    uint64_t schedules = 0;
    uint64_t violations = 0;
    uint64_t incomplete = 0;  // Schedules that missed the deadline.
    bool exhausted = false;   // DFS visited the whole (depth-bounded) tree.
    std::optional<ScheduleOutcome> first_violation;
  };

  // Exhaustive DFS over the depth-bounded choice tree, up to `max_schedules`
  // leaves (0 = unlimited). `progress` (optional) is invoked every 1000
  // schedules with the running count.
  ExploreResult RunExhaustive(uint64_t max_schedules,
                              const std::function<void(const ExploreResult&)>& progress = {});

  // `schedules` independent seeded-random schedules.
  ExploreResult RunRandom(uint64_t schedules, uint64_t seed,
                          const std::function<void(const ExploreResult&)>& progress = {});

  // Greedy delta-minimization of a violating trace: (1) shortest violating
  // prefix, (2) reset each remaining non-default choice to the default if the
  // violation survives. Returns the minimized trace, which still violates.
  ChoiceTrace Minimize(const ChoiceTrace& trace);

  // Counterexample artifact IO. The artifact is a small text file holding the
  // config, the violation strings, the expected fingerprint and the trace.
  static bool WriteCounterexample(const std::string& path, const CheckConfig& config,
                                  const ScheduleOutcome& outcome);
  struct Counterexample {
    CheckConfig config;
    ChoiceTrace trace;
    std::string fingerprint;  // Fingerprint recorded at dump time.
  };
  static std::optional<Counterexample> ReadCounterexample(const std::string& path);

 private:
  CheckConfig config_;
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CHECK_MODEL_CHECKER_H_
