// Choice traces and exploration strategies for the BA* model checker.
//
// A model-checking run is an ordinary deterministic simulation whose
// nondeterminism — delivery order among near-simultaneous events, per-message
// adversary decisions, crash/restart injection — has been reified into an
// explicit sequence of integer choices. A Strategy answers each choice as it
// arises and records what it answered; the recorded ChoiceTrace is a complete,
// replayable name for the schedule (PR 7's determinism contract makes the run
// a pure function of (config, trace)). Exploration is then search over traces:
// DFS enumerates them lexicographically via PrefixStrategy, randomized sweeps
// sample them via RandomStrategy, and counterexample replay/minimization feed
// recorded traces back through PrefixStrategy.
#ifndef ALGORAND_SRC_CHECK_STRATEGY_H_
#define ALGORAND_SRC_CHECK_STRATEGY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace algorand {

// What kind of nondeterminism a choice point resolves.
enum class ChoiceKind : uint8_t {
  kDelivery = 0,   // Which of N concurrent events runs next.
  kAdversary = 1,  // Deliver / drop / delay a transmission.
  kCrash = 2,      // Crash/restart injection at a probe tick.
};

struct Choice {
  ChoiceKind kind = ChoiceKind::kDelivery;
  uint32_t chosen = 0;   // Option taken, in [0, options).
  uint32_t options = 1;  // Options that were available.

  bool operator==(const Choice& other) const {
    return kind == other.kind && chosen == other.chosen && options == other.options;
  }
};

// The full decision record of one schedule. Serializes to a compact text form
// ("d1/3 a0/2 c2/5": kind letter, chosen/options) used by counterexample
// artifacts and the check_cli --trace flag.
struct ChoiceTrace {
  std::vector<Choice> choices;

  bool operator==(const ChoiceTrace& other) const { return choices == other.choices; }

  std::string Serialize() const;
  static std::optional<ChoiceTrace> Parse(const std::string& text);
};

// Base strategy: answers choice points, applies the schedule-depth bound, and
// records the trace. `Choose` is the only entry point the hooks call. The
// depth bound is per kind: delivery choice points fire at every dequeue and
// would otherwise exhaust the budget in the first simulated milliseconds,
// starving the adversary and crash choices that only arise at round
// boundaries. After `max_choice_points` recorded choices OF A KIND, further
// choice points of that kind take the default option 0 (FIFO delivery /
// deliver / no fault) without recording, so the search tree has bounded depth
// (≤ 3 × max_choice_points total) while runs always terminate normally.
class Strategy {
 public:
  explicit Strategy(size_t max_choice_points) : max_choice_points_(max_choice_points) {}
  virtual ~Strategy() = default;

  uint32_t Choose(ChoiceKind kind, uint32_t options) {
    if (options <= 1) {
      return 0;  // Not a choice point; nothing to record.
    }
    size_t& recorded = recorded_[static_cast<size_t>(kind)];
    if (recorded >= max_choice_points_) {
      return 0;  // Beyond this kind's depth bound: deterministic default.
    }
    uint32_t chosen = Pick(kind, options);
    if (chosen >= options) {
      chosen = 0;
    }
    ++recorded;
    trace_.choices.push_back(Choice{kind, chosen, options});
    return chosen;
  }

  const ChoiceTrace& trace() const { return trace_; }
  size_t max_choice_points() const { return max_choice_points_; }

 protected:
  // Picks an option in [0, options); called only for real, in-depth choice
  // points. Index i of the choice point being answered is trace_.choices.size().
  virtual uint32_t Pick(ChoiceKind kind, uint32_t options) = 0;

  ChoiceTrace trace_;

 private:
  size_t max_choice_points_;
  size_t recorded_[3] = {0, 0, 0};  // Per-kind recorded-choice counts.
};

// Replays a fixed prefix of choices, then takes the default (0) for anything
// beyond it. With the full recorded trace as prefix this is exact replay; with
// a shortened or edited prefix it is the DFS successor / minimization probe.
// `diverged()` reports whether the live run presented a different number of
// options than the prefix recorded at some position — impossible for a
// faithful replay, and a loud canary for determinism regressions.
class PrefixStrategy : public Strategy {
 public:
  PrefixStrategy(ChoiceTrace prefix, size_t max_choice_points)
      : Strategy(max_choice_points), prefix_(std::move(prefix)) {}

  bool diverged() const { return diverged_; }

 protected:
  uint32_t Pick(ChoiceKind kind, uint32_t options) override {
    const size_t i = trace_.choices.size();
    if (i >= prefix_.choices.size()) {
      return 0;
    }
    const Choice& c = prefix_.choices[i];
    if (c.kind != kind || c.options != options || c.chosen >= options) {
      diverged_ = true;
      return c.chosen < options ? c.chosen : 0;
    }
    return c.chosen;
  }

 private:
  ChoiceTrace prefix_;
  bool diverged_ = false;
};

// Seeded uniform random exploration; each schedule gets its own stream.
class RandomStrategy : public Strategy {
 public:
  RandomStrategy(uint64_t seed, size_t max_choice_points)
      : Strategy(max_choice_points), rng_(seed, "check-random") {}

 protected:
  uint32_t Pick(ChoiceKind, uint32_t options) override {
    return static_cast<uint32_t>(rng_.UniformU64(options));
  }

 private:
  DeterministicRng rng_;
};

// Computes the DFS successor of an observed trace: increment the deepest
// choice that still has untried options and drop everything after it. Returns
// nullopt when the (depth-bounded) tree is exhausted. Enumerating leaves this
// way visits every distinct schedule exactly once, in lexicographic order.
std::optional<ChoiceTrace> NextDfsPrefix(const ChoiceTrace& observed);

}  // namespace algorand

#endif  // ALGORAND_SRC_CHECK_STRATEGY_H_
