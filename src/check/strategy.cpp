#include "src/check/strategy.h"

#include <cstdio>
#include <sstream>

namespace algorand {

namespace {

char KindLetter(ChoiceKind kind) {
  switch (kind) {
    case ChoiceKind::kDelivery:
      return 'd';
    case ChoiceKind::kAdversary:
      return 'a';
    case ChoiceKind::kCrash:
      return 'c';
  }
  return '?';
}

bool KindFromLetter(char ch, ChoiceKind* out) {
  switch (ch) {
    case 'd':
      *out = ChoiceKind::kDelivery;
      return true;
    case 'a':
      *out = ChoiceKind::kAdversary;
      return true;
    case 'c':
      *out = ChoiceKind::kCrash;
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string ChoiceTrace::Serialize() const {
  std::string out;
  char buf[48];
  for (const Choice& c : choices) {
    snprintf(buf, sizeof(buf), "%s%c%u/%u", out.empty() ? "" : " ", KindLetter(c.kind),
             c.chosen, c.options);
    out += buf;
  }
  return out;
}

std::optional<ChoiceTrace> ChoiceTrace::Parse(const std::string& text) {
  ChoiceTrace trace;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    Choice c;
    if (token.size() < 4 || !KindFromLetter(token[0], &c.kind)) {
      return std::nullopt;
    }
    unsigned chosen = 0;
    unsigned options = 0;
    if (sscanf(token.c_str() + 1, "%u/%u", &chosen, &options) != 2 || options < 2 ||
        chosen >= options) {
      return std::nullopt;
    }
    c.chosen = chosen;
    c.options = options;
    trace.choices.push_back(c);
  }
  return trace;
}

std::optional<ChoiceTrace> NextDfsPrefix(const ChoiceTrace& observed) {
  ChoiceTrace next = observed;
  while (!next.choices.empty()) {
    Choice& back = next.choices.back();
    if (back.chosen + 1 < back.options) {
      ++back.chosen;
      return next;
    }
    next.choices.pop_back();
  }
  return std::nullopt;
}

}  // namespace algorand
