// Deliberately broken node behaviours, used ONLY to validate that the model
// checker can find real safety bugs. Nothing in src/ outside the checker (and
// its tests/CLI) may instantiate these.
#ifndef ALGORAND_SRC_CHECK_TEST_BUGS_H_
#define ALGORAND_SRC_CHECK_TEST_BUGS_H_

#include "src/core/node.h"

namespace algorand {

// Declares every completed round FINAL, whether or not the final step
// reached its T_final * tau_final quorum. On a clean schedule this is
// indistinguishable from an honest node — the final step genuinely passes,
// so the forced verdict agrees with the earned one. The bug only manifests
// on schedules where enough final-step votes are dropped, delayed past the
// step timeout, or reordered that the final step times out while BA* still
// settles tentatively: then this node upgrades an uncertified value to FINAL
// and the SafetyAuditor's quorum invariant fires. That schedule dependence is
// exactly what makes it a good probe for the explorer.
class ForcedFinalNode : public Node {
 public:
  using Node::Node;

 protected:
  bool FinalVerdict(const BaResult&) const override { return true; }
};

}  // namespace algorand

#endif  // ALGORAND_SRC_CHECK_TEST_BUGS_H_
