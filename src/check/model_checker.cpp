#include "src/check/model_checker.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string_view>
#include <tuple>

#include "src/core/certificate.h"
#include "src/core/context.h"
#include "src/core/messages.h"
#include "src/core/sim_harness.h"
#include "src/check/test_bugs.h"
#include "src/netsim/adversary.h"
#include "src/obs/safety_auditor.h"

namespace algorand {

namespace {

template <typename Bytes>
uint64_t Prefix64(const Bytes& h) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | h.data()[i];
  }
  return v;
}

// The harness configuration every schedule runs under: the small, fast,
// fully deterministic shape the tier-1 tests use (sequential engine, inline
// verification, sim crypto, uniform latency).
HarnessConfig MakeHarnessConfig(const CheckConfig& cfg) {
  HarnessConfig hc;
  hc.n_nodes = cfg.n_nodes;
  hc.rng_seed = cfg.harness_seed;
  hc.params = ProtocolParams::ScaledCommittees(0.02);
  hc.params.block_size_bytes = 4 * 1024;
  hc.params.max_steps = 9;
  hc.params.recovery_interval = Minutes(10);
  hc.latency = HarnessConfig::Latency::kUniform;
  hc.uniform_latency = Millis(50);
  hc.uniform_jitter = Millis(20);
  hc.use_sim_crypto = true;
  hc.sim_workers = 0;    // Choice hooks exist only on the sequential engine.
  hc.verify_workers = 0; // Inline verification: bit-identical replays.
  hc.malicious_fraction = cfg.malicious_fraction;
  hc.grinding_count = cfg.grinding_count;
  hc.grind_withhold = cfg.grind_withhold;
  if (cfg.seeded_bug) {
    hc.node_factory = [](NodeId id, Simulation* sim, GossipAgent* gossip,
                         const Ed25519KeyPair& key, const GenesisConfig& genesis,
                         const ProtocolParams& params, CryptoSuite crypto,
                         AdversaryCoordinator*) -> std::unique_ptr<Node> {
      if (id != 0) {
        return nullptr;  // Default node type.
      }
      return std::make_unique<ForcedFinalNode>(id, sim, gossip, key, genesis, params, crypto);
    };
  }
  return hc;
}

// kDelivery choice points: the Simulation dequeue hook.
class DeliveryChoiceHook : public ScheduleChoiceHook {
 public:
  DeliveryChoiceHook(Strategy* strategy, SimTime window, size_t max_candidates)
      : strategy_(strategy), window_(window), max_candidates_(max_candidates) {}

  SimTime Window() const override { return window_; }
  size_t MaxCandidates() const override { return max_candidates_; }
  size_t ChooseNext(SimTime, size_t count) override {
    return strategy_->Choose(ChoiceKind::kDelivery, static_cast<uint32_t>(count));
  }

 private:
  Strategy* strategy_;
  SimTime window_;
  size_t max_candidates_;
};

// kCrash choice points: a periodic probe that may kill one alive node or
// restart one checker-killed node. At most one node is down at a time, and at
// most `budget` fault events fire per schedule, so schedules stay mostly live.
struct CrashProbeState {
  SimHarness* harness = nullptr;
  Strategy* strategy = nullptr;
  SimTime interval = 0;
  size_t budget = 0;
  std::vector<size_t> down;  // Nodes the probe killed (eligible for restart).
};

void ScheduleCrashProbe(CrashProbeState* st) {
  if (st->budget == 0 && st->down.empty()) {
    return;  // Nothing left to do (never strand a killed node).
  }
  st->harness->sim().Schedule(st->interval, [st] {
    SimHarness& h = *st->harness;
    std::vector<size_t> kills;
    if (st->budget > 0 && st->down.empty()) {
      for (size_t i = 0; i < h.node_count(); ++i) {
        // Malicious subclasses are not reconstructed by RestartNode; only
        // honest nodes are crash candidates.
        if (h.node_alive(i) && !h.is_malicious(i)) {
          kills.push_back(i);
        }
      }
    }
    std::vector<size_t> restarts = st->budget > 0 ? st->down : std::vector<size_t>{};
    const uint32_t options = static_cast<uint32_t>(1 + kills.size() + restarts.size());
    uint32_t chosen = st->strategy->Choose(ChoiceKind::kCrash, options);
    if (chosen > 0 && chosen <= kills.size()) {
      const size_t victim = kills[chosen - 1];
      h.KillNode(victim);
      st->down.push_back(victim);
      --st->budget;
    } else if (chosen > static_cast<uint32_t>(kills.size())) {
      const size_t idx = chosen - 1 - kills.size();
      const size_t victim = restarts[idx];
      h.RestartNode(victim);
      st->down.erase(st->down.begin() + static_cast<long>(idx));
      --st->budget;
    }
    if (st->budget == 0 && !st->down.empty()) {
      // Out of budget with a node still dead: bring it back for free so the
      // schedule can finish (a permanently dead node is a liveness question,
      // not the safety question the checker asks).
      for (size_t victim : st->down) {
        h.RestartNode(victim);
      }
      st->down.clear();
    }
    ScheduleCrashProbe(st);
  });
}

}  // namespace

std::string ScheduleOutcome::Fingerprint() const {
  std::ostringstream out;
  out << "completed=" << (completed ? 1 : 0) << ";safety=" << (safety_ok ? 1 : 0)
      << ";events=" << executed_events << ";equiv=" << equivocations << ";tips=";
  for (size_t i = 0; i < tips.size(); ++i) {
    out << (i == 0 ? "" : ",") << tips[i];
  }
  out << ";tiph=";
  char buf[20];
  for (size_t i = 0; i < tip_prefixes.size(); ++i) {
    snprintf(buf, sizeof(buf), "%s%016" PRIx64, i == 0 ? "" : ",", tip_prefixes[i]);
    out << buf;
  }
  out << ";violations=" << violations.size();
  for (const std::string& v : violations) {
    out << "|" << v;
  }
  return out.str();
}

ScheduleOutcome ModelChecker::RunOne(const ChoiceTrace& prefix) {
  PrefixStrategy strategy(prefix, config_.max_choice_points);
  ScheduleOutcome out = RunWithStrategy(&strategy);
  out.diverged = strategy.diverged();
  return out;
}

ScheduleOutcome ModelChecker::RunWithStrategy(Strategy* strategy) {
  const HarnessConfig hc = MakeHarnessConfig(config_);
  ScheduleOutcome out;

  size_t adversary_budget = config_.adversary_max_decisions;
  // One recorded decision per (voter pk prefix, round): gossip relays
  // retransmit a vote along every path, so deciding per transmission both
  // burns the budget on duplicates and makes drops invisible (another copy
  // arrives anyway). Memoizing the choice extends it to all relay copies,
  // which keeps the schedule replayable while giving drops real teeth.
  std::map<std::pair<uint64_t, uint64_t>, uint32_t> vote_decisions;
  CrashProbeState crash;

  SafetyAuditorConfig acfg;
  acfg.step_threshold = hc.params.StepThreshold();
  acfg.final_threshold = hc.params.FinalThreshold();
  acfg.final_step_code = kStepFinal;
  SafetyAuditor auditor(acfg);

  SimHarness h(hc);
  h.tracer().SetObserver([&auditor](const TraceEvent& ev) { auditor.Observe(ev); });

  DeliveryChoiceHook hook(strategy, config_.window, config_.max_candidates);
  h.sim().set_choice_hook(&hook);

  if (config_.adversary_max_decisions > 0) {
    h.SetNetworkAdversary(std::make_unique<HookedAdversary>(
        [this, strategy, &adversary_budget, &vote_decisions](
            NodeId, NodeId to, const MessagePtr& msg, SimTime) -> AdversaryAction {
          // The adversary concentrates its falsification power on one victim
          // (node 0 — honest nodes are symmetric in this harness) and on the
          // final-step votes that decide whether the round closes FINAL or
          // tentative — the quorum the safety invariants hinge on. Spending
          // decisions on round-opening votes or spreading them across
          // destinations dilutes the budget before anything interesting is
          // in flight.
          if (to != 0 || std::string_view(msg->TypeName()) != "vote") {
            return AdversaryAction::Deliver();
          }
          const auto* vote = static_cast<const VoteMessage*>(msg.get());
          if (vote->step != kStepFinal) {
            return AdversaryAction::Deliver();
          }
          const std::pair<uint64_t, uint64_t> key{Prefix64(vote->pk), vote->round};
          auto it = vote_decisions.find(key);
          uint32_t decision = 0;
          if (it != vote_decisions.end()) {
            decision = it->second;  // Relay copy: replay the recorded choice.
          } else if (adversary_budget > 0) {
            --adversary_budget;
            decision = strategy->Choose(ChoiceKind::kAdversary, 3);
            vote_decisions.emplace(key, decision);
          }
          switch (decision) {
            case 1:
              return AdversaryAction::Drop();
            case 2:
              return AdversaryAction::Delay(config_.adversary_delay);
            default:
              return AdversaryAction::Deliver();
          }
        }));
  }

  h.Start();

  if (config_.max_crash_events > 0) {
    crash.harness = &h;
    crash.strategy = strategy;
    crash.interval = config_.crash_probe_interval;
    crash.budget = config_.max_crash_events;
    ScheduleCrashProbe(&crash);
  }

  out.completed = h.RunRounds(config_.rounds, config_.deadline);
  h.sim().set_choice_hook(nullptr);

  // --- Verdicts -----------------------------------------------------------
  out.executed_events = h.sim().executed_events();
  out.equivocations = auditor.equivocations();
  for (size_t i = 0; i < h.node_count(); ++i) {
    const Ledger& l = h.node(i).ledger();
    out.tips.push_back(l.chain_length());
    out.tip_prefixes.push_back(Prefix64(l.tip_hash()));
  }

  for (const std::string& v : auditor.violations()) {
    out.violations.push_back("auditor: " + v);
  }
  if (auditor.violation_count() > auditor.violations().size()) {
    out.violations.push_back(
        "auditor: +" +
        std::to_string(auditor.violation_count() - auditor.violations().size()) + " more");
  }

  SimHarness::SafetyReport safety = h.CheckSafety();
  if (!safety.ok) {
    out.violations.push_back("cross-node: " + safety.violation);
  }

  // Certificate quorums: every certificate backing a chain block must
  // revalidate (signatures, sortition proofs, > T*tau weighted votes) against
  // the node's own ledger. Stale certificates from truncated forks (their
  // block no longer on the chain) are skipped — they back nothing.
  for (size_t i = 0; i < h.node_count(); ++i) {
    if (h.is_malicious(i)) {
      continue;
    }
    const Node& node = h.node(i);
    const Ledger& l = node.ledger();
    auto check_certs = [&](const std::map<uint64_t, Certificate>& certs, const char* label) {
      for (const auto& [r, cert] : certs) {
        if (r == 0 || r >= l.chain_length()) {
          continue;
        }
        if (cert.block_hash != l.BlockAtRound(r).Hash()) {
          continue;  // Stale fork certificate; backs no chain block.
        }
        RoundContext ctx;
        ctx.round = r;
        ctx.seed = l.SortitionSeed(r, hc.params.seed_refresh_interval);
        ctx.prev_hash = l.BlockAtRound(r - 1).Hash();
        ctx.total_weight = l.total_weight();
        ctx.weight_of = [&l](const PublicKey& pk) { return l.WeightOf(pk); };
        if (!ValidateCertificate(cert, ctx, hc.params, h.vrf(), h.signer())) {
          out.violations.push_back("certificate: node " + std::to_string(i) + " round " +
                                   std::to_string(r) + " " + label +
                                   " certificate fails quorum validation");
        }
      }
    };
    check_certs(node.certificates(), "step");
    check_certs(node.final_certificates(), "final");
  }

  out.safety_ok = out.violations.empty();
  out.trace = strategy->trace();
  return out;
}

ModelChecker::ExploreResult ModelChecker::RunExhaustive(
    uint64_t max_schedules, const std::function<void(const ExploreResult&)>& progress) {
  ExploreResult res;
  ChoiceTrace prefix;
  for (;;) {
    ScheduleOutcome out = RunOne(prefix);
    ++res.schedules;
    if (!out.completed) {
      ++res.incomplete;
    }
    if (!out.safety_ok) {
      ++res.violations;
      if (!res.first_violation) {
        res.first_violation = out;
      }
    }
    if (progress && res.schedules % 1000 == 0) {
      progress(res);
    }
    std::optional<ChoiceTrace> next = NextDfsPrefix(out.trace);
    if (!next) {
      res.exhausted = true;
      break;
    }
    if (max_schedules != 0 && res.schedules >= max_schedules) {
      break;
    }
    prefix = std::move(*next);
  }
  return res;
}

ModelChecker::ExploreResult ModelChecker::RunRandom(
    uint64_t schedules, uint64_t seed,
    const std::function<void(const ExploreResult&)>& progress) {
  ExploreResult res;
  DeterministicRng batch(seed, "check-batch");
  for (uint64_t i = 0; i < schedules; ++i) {
    RandomStrategy strategy(batch.NextU64(), config_.max_choice_points);
    ScheduleOutcome out = RunWithStrategy(&strategy);
    ++res.schedules;
    if (!out.completed) {
      ++res.incomplete;
    }
    if (!out.safety_ok) {
      ++res.violations;
      if (!res.first_violation) {
        res.first_violation = out;
      }
    }
    if (progress && res.schedules % 1000 == 0) {
      progress(res);
    }
  }
  return res;
}

ChoiceTrace ModelChecker::Minimize(const ChoiceTrace& trace) {
  // Probes run a mutated prefix; a mutation reroutes the schedule, so the
  // untouched tail of the prefix may no longer line up with the choice points
  // the rerouted run presents (PrefixStrategy reports that as divergence).
  // Whenever a probe still violates we therefore adopt the run's RECORDED
  // trace — the self-consistent completion of the mutated prefix — so the
  // final result always replays without divergence.
  auto probe = [this](const ChoiceTrace& t, ChoiceTrace* recorded) {
    ScheduleOutcome out = RunOne(t);
    *recorded = out.trace;
    return !out.safety_ok;
  };

  // Phase 1: shortest violating prefix (everything beyond a prefix runs with
  // default choices, so a length-L prefix is a complete schedule).
  ChoiceTrace best = trace;
  for (size_t len = 0; len <= trace.choices.size(); ++len) {
    ChoiceTrace t;
    t.choices.assign(trace.choices.begin(),
                     trace.choices.begin() + static_cast<long>(len));
    ChoiceTrace recorded;
    if (probe(t, &recorded)) {
      best = std::move(recorded);
      break;
    }
  }

  // Phase 2: reset each surviving non-default choice to the default when the
  // violation persists without it. `best` is always a full recorded trace, so
  // it can grow as mutations reroute the run — index against its live size.
  for (size_t i = 0; i < best.choices.size(); ++i) {
    if (best.choices[i].chosen == 0) {
      continue;
    }
    ChoiceTrace t = best;
    t.choices[i].chosen = 0;
    ChoiceTrace recorded;
    if (probe(t, &recorded)) {
      best = std::move(recorded);
    }
  }

  // Trailing defaults are implied by prefix semantics.
  while (!best.choices.empty() && best.choices.back().chosen == 0) {
    best.choices.pop_back();
  }
  return best;
}

bool ModelChecker::WriteCounterexample(const std::string& path, const CheckConfig& config,
                                       const ScheduleOutcome& outcome) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# algorand model-checker counterexample\n";
  out << "nodes=" << config.n_nodes << "\n";
  out << "rounds=" << config.rounds << "\n";
  out << "seed=" << config.harness_seed << "\n";
  out << "window=" << config.window << "\n";
  out << "max_candidates=" << config.max_candidates << "\n";
  out << "depth=" << config.max_choice_points << "\n";
  out << "adv_decisions=" << config.adversary_max_decisions << "\n";
  out << "adv_delay=" << config.adversary_delay << "\n";
  out << "crash_events=" << config.max_crash_events << "\n";
  out << "crash_interval=" << config.crash_probe_interval << "\n";
  out << "deadline=" << config.deadline << "\n";
  out << "malicious=" << config.malicious_fraction << "\n";
  out << "grinding=" << config.grinding_count << "\n";
  out << "grind_withhold=" << (config.grind_withhold ? 1 : 0) << "\n";
  out << "seeded_bug=" << (config.seeded_bug ? 1 : 0) << "\n";
  for (const std::string& v : outcome.violations) {
    out << "violation=" << v << "\n";
  }
  out << "fingerprint=" << outcome.Fingerprint() << "\n";
  out << "trace=" << outcome.trace.Serialize() << "\n";
  return static_cast<bool>(out);
}

std::optional<ModelChecker::Counterexample> ModelChecker::ReadCounterexample(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  Counterexample ce;
  bool have_trace = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "nodes") {
      ce.config.n_nodes = std::stoull(value);
    } else if (key == "rounds") {
      ce.config.rounds = std::stoull(value);
    } else if (key == "seed") {
      ce.config.harness_seed = std::stoull(value);
    } else if (key == "window") {
      ce.config.window = std::stoll(value);
    } else if (key == "max_candidates") {
      ce.config.max_candidates = std::stoull(value);
    } else if (key == "depth") {
      ce.config.max_choice_points = std::stoull(value);
    } else if (key == "adv_decisions") {
      ce.config.adversary_max_decisions = std::stoull(value);
    } else if (key == "adv_delay") {
      ce.config.adversary_delay = std::stoll(value);
    } else if (key == "crash_events") {
      ce.config.max_crash_events = std::stoull(value);
    } else if (key == "crash_interval") {
      ce.config.crash_probe_interval = std::stoll(value);
    } else if (key == "deadline") {
      ce.config.deadline = std::stoll(value);
    } else if (key == "malicious") {
      ce.config.malicious_fraction = std::stod(value);
    } else if (key == "grinding") {
      ce.config.grinding_count = std::stoull(value);
    } else if (key == "grind_withhold") {
      ce.config.grind_withhold = value == "1";
    } else if (key == "seeded_bug") {
      ce.config.seeded_bug = value == "1";
    } else if (key == "fingerprint") {
      ce.fingerprint = value;
    } else if (key == "trace") {
      std::optional<ChoiceTrace> trace = ChoiceTrace::Parse(value);
      if (!trace) {
        return std::nullopt;
      }
      ce.trace = std::move(*trace);
      have_trace = true;
    }
  }
  if (!have_trace) {
    return std::nullopt;
  }
  return ce;
}

}  // namespace algorand
