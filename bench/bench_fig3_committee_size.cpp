// Figure 3: expected committee size tau sufficient to keep the probability of
// violating BA*'s safety/liveness constraints below 5e-9, as a function of
// the honest-stake fraction h. Pure numerics (Poisson model of sortition).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/committee_analysis.h"

using namespace algorand;

int main() {
  bench::Banner("fig3", "Figure 3 (committee size vs h, violation < 5e-9)",
                "committee size decreases with h; grows sharply as h -> 2/3; "
                "at h=80%, tau ~ 2000 with T ~ 0.685 suffices (the paper's star)");

  const double kEpsilon = 5e-9;
  printf("%-8s %-14s %-12s %-22s\n", "h", "required tau", "best T", "violation @ paper(2000)");
  for (double h = 0.76; h <= 0.901; h += 0.02) {
    double tau = RequiredCommitteeSize(h, kEpsilon);
    ThresholdChoice best = BestThreshold(h, tau);
    double at2000 = BestThreshold(h, 2000).violation;
    printf("%-8.2f %-14.0f %-12.4f %-22.3e\n", h, tau, best.threshold, at2000);
  }

  printf("\npaper parameter check: h=0.80, tau_step=2000, T=0.685 -> violation %.3e (< 5e-9: %s)\n",
         CommitteeViolationProbability(0.80, 2000, 0.685),
         CommitteeViolationProbability(0.80, 2000, 0.685) < kEpsilon ? "yes" : "NO");
  return 0;
}
