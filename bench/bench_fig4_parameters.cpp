// Figure 4: the implementation parameters, printed with their provenance, and
// cross-checked against the committee-size analysis.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/committee_analysis.h"
#include "src/core/params.h"

using namespace algorand;

int main() {
  bench::Banner("fig4", "Figure 4 (implementation parameters)",
                "the parameter table of the paper's prototype");

  ProtocolParams p = ProtocolParams::Paper();
  printf("%-16s %-44s %s\n", "parameter", "meaning", "value");
  printf("%-16s %-44s %.0f%%\n", "h", "assumed fraction of honest weighted users",
         p.honest_fraction * 100);
  printf("%-16s %-44s %llu\n", "R", "seed refresh interval (# of rounds)",
         static_cast<unsigned long long>(p.seed_refresh_interval));
  printf("%-16s %-44s %.0f\n", "tau_proposer", "expected # of block proposers", p.tau_proposer);
  printf("%-16s %-44s %.0f\n", "tau_step", "expected # of committee members", p.tau_step);
  printf("%-16s %-44s %.1f%%\n", "T_step", "threshold of tau_step for BA*", p.t_step * 100);
  printf("%-16s %-44s %.0f\n", "tau_final", "expected # of final committee members",
         p.tau_final);
  printf("%-16s %-44s %.0f%%\n", "T_final", "threshold of tau_final for BA*", p.t_final * 100);
  printf("%-16s %-44s %d\n", "MaxSteps", "maximum # of steps in BinaryBA*", p.max_steps);
  printf("%-16s %-44s %.0f seconds\n", "lambda_priority", "time to gossip sortition proofs",
         ToSeconds(p.lambda_priority));
  printf("%-16s %-44s %.0f minute(s)\n", "lambda_block", "timeout for receiving a block",
         ToSeconds(p.lambda_block) / 60);
  printf("%-16s %-44s %.0f seconds\n", "lambda_step", "timeout for a BA* step",
         ToSeconds(p.lambda_step));
  printf("%-16s %-44s %.0f seconds\n", "lambda_stepvar", "estimate of BA* completion variance",
         ToSeconds(p.lambda_stepvar));

  printf("\ncross-checks against the Appendix B analysis:\n");
  printf("  violation(h=0.80, tau_step=2000, T=0.685)  = %.3e (target < 5e-9)\n",
         CommitteeViolationProbability(0.80, 2000, 0.685));
  printf("  violation(h=0.80, tau_final=10000, T=0.74) = %.3e (stronger for finality)\n",
         CommitteeViolationProbability(0.80, 10000, 0.74));
  return 0;
}
