// §10.3 CPU costs: google-benchmark microbenchmarks of the cryptographic
// primitives that dominate Algorand's CPU usage (the paper: "most of it for
// verifying signatures and VRFs").
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/core/sortition.h"
#include "src/crypto/ed25519.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"
#include "src/crypto/vrf.h"

namespace algorand {
namespace {

Ed25519KeyPair BenchKey() {
  FixedBytes<32> seed;
  DeterministicRng rng(1);
  rng.FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

void BM_Sha256_1KB(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_Sha256_1MB(benchmark::State& state) {
  std::vector<uint8_t> data(1 << 20, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Sha256_1MB);

void BM_Sha512_1KB(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha512_1KB);

void BM_Ed25519_Sign(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto msg = BytesOfString("a typical 316-byte committee vote message body padded out to size....");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(key, msg));
  }
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto msg = BytesOfString("a typical 316-byte committee vote message body padded out to size....");
  Signature sig = Ed25519Sign(key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(key.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519_Verify);

void BM_EcVrf_Prove(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto alpha = BytesOfString("seed||role||round||step");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcVrfProve(key, alpha));
  }
}
BENCHMARK(BM_EcVrf_Prove);

void BM_EcVrf_Verify(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto alpha = BytesOfString("seed||role||round||step");
  VrfResult res = EcVrfProve(key, alpha);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcVrfVerify(key.public_key, alpha, res.proof));
  }
}
BENCHMARK(BM_EcVrf_Verify);

void BM_Sortition_SelectSubUsers(benchmark::State& state) {
  DeterministicRng rng(2);
  VrfOutput hash;
  rng.FillBytes(hash.data(), hash.size());
  for (auto _ : state) {
    // Paper-scale: weight 1000 of W=50M total, tau=2000.
    benchmark::DoNotOptimize(SelectSubUsers(hash, 1000, 2000.0 / 50e6));
  }
}
BENCHMARK(BM_Sortition_SelectSubUsers);

void BM_Sortition_FullRun(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  SeedBytes seed;
  EcVrf vrf;
  uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunSortition(vrf, key, seed, 2000, Role::kCommittee, ++round, 1, 1000, 50000000));
  }
}
BENCHMARK(BM_Sortition_FullRun);

}  // namespace
}  // namespace algorand

BENCHMARK_MAIN();
