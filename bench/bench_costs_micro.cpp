// §10.3 CPU costs: google-benchmark microbenchmarks of the cryptographic
// primitives that dominate Algorand's CPU usage (the paper: "most of it for
// verifying signatures and VRFs").
#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/verify_pool.h"
#include "src/core/messages.h"
#include "src/core/sortition.h"
#include "src/core/tx_verifier.h"
#include "src/ledger/account_table.h"
#include "src/netsim/simulation.h"
#include "src/crypto/ed25519.h"
#include "src/crypto/internal/ge25519.h"
#include "src/crypto/internal/sc25519.h"
#include "src/crypto/sha256.h"
#include "src/crypto/sha512.h"
#include "src/crypto/vrf.h"
#include "src/store/block_store.h"

namespace algorand {
namespace {

Ed25519KeyPair BenchKey() {
  FixedBytes<32> seed;
  DeterministicRng rng(1);
  rng.FillBytes(seed.data(), 32);
  return Ed25519KeyFromSeed(seed);
}

void BM_Sha256_1KB(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_Sha256_1MB(benchmark::State& state) {
  std::vector<uint8_t> data(1 << 20, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * (1 << 20));
}
BENCHMARK(BM_Sha256_1MB);

void BM_Sha512_1KB(benchmark::State& state) {
  std::vector<uint8_t> data(1024, 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha512_1KB);

void BM_Ed25519_Sign(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto msg = BytesOfString("a typical 316-byte committee vote message body padded out to size....");
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(key, msg));
  }
}
BENCHMARK(BM_Ed25519_Sign);

void BM_Ed25519_Verify(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto msg = BytesOfString("a typical 316-byte committee vote message body padded out to size....");
  Signature sig = Ed25519Sign(key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(key.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519_Verify);

void BM_EcVrf_Prove(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto alpha = BytesOfString("seed||role||round||step");
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcVrfProve(key, alpha));
  }
}
BENCHMARK(BM_EcVrf_Prove);

void BM_EcVrf_Verify(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto alpha = BytesOfString("seed||role||round||step");
  VrfResult res = EcVrfProve(key, alpha);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcVrfVerify(key.public_key, alpha, res.proof));
  }
}
BENCHMARK(BM_EcVrf_Verify);

// Pre-optimization reference paths (the seed's four independent scalar
// multiplications), kept for the before/after numbers in BENCH_crypto.json.
void BM_Ed25519_Verify_Legacy(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto msg = BytesOfString("a typical 316-byte committee vote message body padded out to size....");
  Signature sig = Ed25519Sign(key, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519VerifyLegacy(key.public_key, msg, sig));
  }
}
BENCHMARK(BM_Ed25519_Verify_Legacy);

void BM_EcVrf_Verify_Legacy(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  auto alpha = BytesOfString("seed||role||round||step");
  VrfResult res = EcVrfProve(key, alpha);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EcVrfVerifyLegacy(key.public_key, alpha, res.proof));
  }
}
BENCHMARK(BM_EcVrf_Verify_Legacy);

// Curve-level breakdown of the verify cost: textbook ladder vs w-NAF single
// scalar vs the interleaved double-scalar form verification actually uses.
internal::GePoint BenchPoint() {
  DeterministicRng rng(3);
  uint8_t wide[64], s[32];
  rng.FillBytes(wide, 64);
  internal::ScReduce64(s, wide);
  return internal::GeScalarMultBase(s);
}

void BM_GeScalarMult(benchmark::State& state) {
  internal::GePoint p = BenchPoint();
  uint8_t s[32];
  DeterministicRng rng(4);
  rng.FillBytes(s, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internal::GeScalarMult(s, p));
  }
}
BENCHMARK(BM_GeScalarMult);

void BM_GeScalarMultVartime(benchmark::State& state) {
  internal::GePoint p = BenchPoint();
  uint8_t s[32];
  DeterministicRng rng(5);
  rng.FillBytes(s, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internal::GeScalarMultVartime(s, p));
  }
}
BENCHMARK(BM_GeScalarMultVartime);

void BM_GeDoubleScalarMult(benchmark::State& state) {
  internal::GePoint p = BenchPoint();
  uint8_t a[32], b[32];
  DeterministicRng rng(6);
  rng.FillBytes(a, 32);
  rng.FillBytes(b, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internal::GeDoubleScalarMultVartime(a, p, b));
  }
}
BENCHMARK(BM_GeDoubleScalarMult);

// Batch verification throughput through the VerifyPool: 64 distinct vote-
// sized signatures per batch, verified inline (workers = 0) or fanned out to
// worker threads. Reported per signature. This is where the pipeline pays
// off: a round's burst of committee votes verifies in parallel while the
// protocol thread keeps dequeueing.
void BM_BatchVerify_Pool(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  constexpr size_t kBatch = 64;
  DeterministicRng rng(7);
  std::vector<Ed25519KeyPair> keys;
  std::vector<std::vector<uint8_t>> msgs;
  std::vector<Signature> sigs;
  for (size_t i = 0; i < kBatch; ++i) {
    FixedBytes<32> seed;
    rng.FillBytes(seed.data(), 32);
    keys.push_back(Ed25519KeyFromSeed(seed));
    msgs.emplace_back(316);
    rng.FillBytes(msgs.back().data(), msgs.back().size());
    sigs.push_back(Ed25519Sign(keys.back(), msgs.back()));
  }
  VerifyPool pool(workers);
  std::atomic<uint32_t> ok{0};
  for (auto _ : state) {
    ok.store(0, std::memory_order_relaxed);
    if (pool.worker_count() == 0) {
      for (size_t i = 0; i < kBatch; ++i) {
        ok.fetch_add(Ed25519Verify(keys[i].public_key, msgs[i], sigs[i]) ? 1 : 0,
                     std::memory_order_relaxed);
      }
    } else {
      for (size_t i = 0; i < kBatch; ++i) {
        pool.Submit([&, i] {
          ok.fetch_add(Ed25519Verify(keys[i].public_key, msgs[i], sigs[i]) ? 1 : 0,
                       std::memory_order_relaxed);
        });
      }
      pool.Drain();
    }
    if (ok.load(std::memory_order_relaxed) != kBatch) {
      state.SkipWithError("verification failed");
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_BatchVerify_Pool)->Arg(0)->Arg(2)->Arg(4)->UseRealTime();

void BM_Sortition_SelectSubUsers(benchmark::State& state) {
  DeterministicRng rng(2);
  VrfOutput hash;
  rng.FillBytes(hash.data(), hash.size());
  for (auto _ : state) {
    // Paper-scale: weight 1000 of W=50M total, tau=2000.
    benchmark::DoNotOptimize(SelectSubUsers(hash, 1000, 2000.0 / 50e6));
  }
}
BENCHMARK(BM_Sortition_SelectSubUsers);

void BM_Sortition_FullRun(benchmark::State& state) {
  Ed25519KeyPair key = BenchKey();
  SeedBytes seed;
  EcVrf vrf;
  uint64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunSortition(vrf, key, seed, 2000, Role::kCommittee, ++round, 1, 1000, 50000000));
  }
}
BENCHMARK(BM_Sortition_FullRun);

void BM_Sortition_CdfCached(benchmark::State& state) {
  DeterministicRng rng(3);
  std::vector<VrfOutput> hashes(256);
  for (auto& h : hashes) {
    rng.FillBytes(h.data(), h.size());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectSubUsers(hashes[i++ % hashes.size()], 1000, 2000.0 / 50e6));
  }
}
BENCHMARK(BM_Sortition_CdfCached);

void BM_Sortition_CdfUncached(benchmark::State& state) {
  DeterministicRng rng(3);
  std::vector<VrfOutput> hashes(256);
  for (auto& h : hashes) {
    rng.FillBytes(h.data(), h.size());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SelectSubUsersUncached(hashes[i++ % hashes.size()], 1000, 2000.0 / 50e6));
  }
}
BENCHMARK(BM_Sortition_CdfUncached);

// --- Simulation engine ---

void BM_Simulation_ScheduleStep(benchmark::State& state) {
  const bool map_queue = state.range(0) != 0;
  Simulation sim(map_queue ? Simulation::QueueKind::kMap : Simulation::QueueKind::kHeap);
  // Steady-state queue of 4096 pending events, randomized delays: each
  // iteration schedules one event and runs one, the simulator's hot loop.
  DeterministicRng rng(7);
  uint64_t x = 0;
  for (int i = 0; i < 4096; ++i) {
    sim.Schedule(static_cast<SimTime>(rng.NextU64() % Seconds(10)), [&x] { ++x; });
  }
  for (auto _ : state) {
    sim.Schedule(static_cast<SimTime>(rng.NextU64() % Seconds(10)), [&x] { ++x; });
    sim.Step();
  }
  benchmark::DoNotOptimize(x);
  state.SetLabel(map_queue ? "map" : "heap");
}
BENCHMARK(BM_Simulation_ScheduleStep)->Arg(0)->Arg(1);

void BM_DedupId_Cached_vs_Uncached(benchmark::State& state) {
  const bool fresh_each_time = state.range(0) != 0;
  VoteMessage vote;
  vote.round = 12;
  vote.step = 3;
  DeterministicRng rng(9);
  rng.FillBytes(vote.pk.data(), vote.pk.size());
  rng.FillBytes(vote.value.data(), vote.value.size());
  for (auto _ : state) {
    if (fresh_each_time) {
      VoteMessage copy = vote;  // Copying resets the memo: uncached path.
      benchmark::DoNotOptimize(copy.DedupId());
    } else {
      benchmark::DoNotOptimize(vote.DedupId());  // Memoized after first call.
    }
  }
  state.SetLabel(fresh_each_time ? "uncached" : "cached");
}
BENCHMARK(BM_DedupId_Cached_vs_Uncached)->Arg(0)->Arg(1);

// --- Durable block store ---

std::string BenchStoreDir(const char* name) {
  std::string dir = std::string("/tmp/algorand_bench_store_") + name;
  std::filesystem::remove_all(dir);
  return dir;
}

StoredRound BenchStoredRound(uint64_t round, size_t block_bytes) {
  StoredRound r;
  r.round = round;
  r.kind = 1;
  DeterministicRng rng(round);
  rng.FillBytes(r.tip_hash.data(), r.tip_hash.size());
  r.block.resize(block_bytes);
  rng.FillBytes(r.block.data(), r.block.size());
  r.cert.resize(2048);  // A realistic serialized certificate footprint.
  rng.FillBytes(r.cert.data(), r.cert.size());
  return r;
}

// Append throughput per fsync policy (synchronous writer: measures the disk
// path itself, not queue handoff). Arg is the FsyncPolicy enum value.
void BM_BlockStore_AppendRound(benchmark::State& state) {
  const auto policy = static_cast<FsyncPolicy>(state.range(0));
  const size_t kBlockBytes = 32 * 1024;
  std::string dir = BenchStoreDir("append");
  StoreOptions opts;
  opts.dir = dir;
  opts.fsync = policy;
  opts.background_writer = false;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  uint64_t round = 1;
  for (auto _ : state) {
    store->AppendRound(BenchStoredRound(round++, kBlockBytes));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBlockBytes));
  state.SetLabel(FsyncPolicyName(policy));
  store.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_BlockStore_AppendRound)->Arg(0)->Arg(1)->Arg(2);

// Open()-time replay: scan + index a 512-round log (the restart cost a
// recovering node pays before it can start catching up).
void BM_BlockStore_Replay512Rounds(benchmark::State& state) {
  const size_t kBlockBytes = 32 * 1024;
  std::string dir = BenchStoreDir("replay");
  StoreOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kOff;
  opts.background_writer = false;
  std::string error;
  {
    auto store = BlockStore::Open(opts, &error);
    for (uint64_t r = 1; r <= 512; ++r) {
      store->AppendRound(BenchStoredRound(r, kBlockBytes));
    }
  }
  for (auto _ : state) {
    auto store = BlockStore::Open(opts, &error);
    benchmark::DoNotOptimize(store->max_round());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 512 *
                          static_cast<int64_t>(kBlockBytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_BlockStore_Replay512Rounds);

// Disk-backed catch-up read path: random committed round -> pread + decode.
void BM_BlockStore_ReadRound(benchmark::State& state) {
  const size_t kBlockBytes = 32 * 1024;
  std::string dir = BenchStoreDir("read");
  StoreOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kOff;
  opts.background_writer = false;
  std::string error;
  auto store = BlockStore::Open(opts, &error);
  for (uint64_t r = 1; r <= 256; ++r) {
    store->AppendRound(BenchStoredRound(r, kBlockBytes));
  }
  uint64_t round = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->ReadRound(1 + (round++ * 97) % 256));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBlockBytes));
  store.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_BlockStore_ReadRound);

// Transaction signature verification, sequential vs batched through the
// VerifyPool (the proposal-validation path of ValidateBlockContents). Arg is
// the worker count; 0 is the inline loop. No cache: this measures raw batch
// verification, not prewarm hits (those are ~free by construction).
void BM_TxVerify_Batched_vs_Sequential(benchmark::State& state) {
  const size_t workers = static_cast<size_t>(state.range(0));
  const Ed25519Signer signer;
  DeterministicRng rng(17);
  std::vector<Ed25519KeyPair> keys;
  for (size_t i = 0; i < 8; ++i) {
    FixedBytes<32> seed;
    rng.FillBytes(seed.data(), 32);
    keys.push_back(Ed25519KeyFromSeed(seed));
  }
  std::vector<Transaction> txns;
  for (size_t i = 0; i < 256; ++i) {
    txns.push_back(MakeTransaction(keys[i % keys.size()], keys[(i + 1) % keys.size()].public_key,
                                   1, i / keys.size(), signer, 1));
  }
  VerifyPool pool(workers);
  TxSigVerifier verifier(&signer, nullptr, workers > 0 ? &pool : nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.VerifyBatch(txns));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(txns.size()));
}
BENCHMARK(BM_TxVerify_Batched_vs_Sequential)->Arg(0)->Arg(2)->Arg(4)->UseRealTime();

// Account-table lookup+update at 1M accounts: the retired std::map layout
// (Arg 0) against the sharded open-addressing table (Arg 1). Each iteration
// is one payment's worth of account traffic — debit sender, credit receiver —
// at uniformly random keys, i.e. worst-case cache behaviour for both layouts.
void BM_AccountTable_LookupUpdate_1M(benchmark::State& state) {
  constexpr uint64_t kAccounts = 1'000'000;
  const bool sharded = state.range(0) == 1;
  auto key_of = [](uint64_t i) {
    PublicKey pk{};
    // Spread bits like a hash would: synthetic sequential ids are the
    // patterned-key case the table's mixer must handle.
    for (size_t b = 0; b < 8; ++b) {
      pk.data()[b] = static_cast<uint8_t>((i * 0x9e3779b97f4a7c15ULL) >> (8 * b));
    }
    return pk;
  };
  std::map<PublicKey, Account> map_table;
  AccountTable table;
  table.Reserve(kAccounts);
  for (uint64_t i = 0; i < kAccounts; ++i) {
    if (sharded) {
      table.Credit(key_of(i), 1000);
    } else {
      map_table[key_of(i)].balance += 1000;
    }
  }
  DeterministicRng rng(23);
  for (auto _ : state) {
    const PublicKey from = key_of(rng.NextU64() % kAccounts);
    const PublicKey to = key_of(rng.NextU64() % kAccounts);
    if (sharded) {
      const Account* a = table.Find(from);
      Account updated = *a;
      updated.balance -= 1;
      updated.next_nonce += 1;
      table.Upsert(from, updated);
      Account dst = table.Find(to) != nullptr ? *table.Find(to) : Account{};
      dst.balance += 1;
      table.Upsert(to, dst);
      benchmark::DoNotOptimize(updated.balance);
    } else {
      Account& a = map_table[from];
      a.balance -= 1;
      a.next_nonce += 1;
      map_table[to].balance += 1;
      benchmark::DoNotOptimize(a.balance);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccountTable_LookupUpdate_1M)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace algorand

BENCHMARK_MAIN();
