// Shared helpers for the figure-reproduction benchmark binaries: consistent
// table formatting and a standard banner explaining how to read the output.
#ifndef ALGORAND_BENCH_BENCH_UTIL_H_
#define ALGORAND_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace algorand {
namespace bench {

inline void Banner(const char* experiment_id, const char* paper_artifact,
                   const char* expectation) {
  printf("================================================================================\n");
  printf("%s — reproduces %s\n", experiment_id, paper_artifact);
  printf("paper expectation: %s\n", expectation);
  printf("================================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vprintf(fmt, args);
  va_end(args);
  printf("\n");
}

inline void Note(const char* text) { printf("note: %s\n", text); }

}  // namespace bench
}  // namespace algorand

#endif  // ALGORAND_BENCH_BENCH_UTIL_H_
