// Figure 6: the bandwidth-starved configuration. The paper packs 500 user
// processes per VM (10x less bandwidth per user than Figure 5), raises
// lambda_step to one minute, and replaces crypto verification with sleeps.
// The claims: latency is ~4x higher than Figure 5 at the same user count, and
// scaling remains roughly flat up to 500,000 users.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("fig6", "Figure 6 (latency with 500 users/VM: 10x less bandwidth, lambda_step = 1 min)",
         "latency several times Figure 5's at equal user counts (paper: ~4x, "
         "bandwidth-bound), still ~flat as users grow");

  printf("%-8s %-8s %-8s %-8s %-8s %-8s %-8s\n", "users", "min(s)", "p25(s)", "med(s)", "p75(s)",
         "max(s)", "safety");
  const size_t kUserCounts[] = {100, 200, 400};
  for (size_t n : kUserCounts) {
    RunSpec spec;
    spec.n_nodes = n;
    spec.rounds = 3;
    spec.seed = 42;
    spec.uplink_bytes_per_sec = 20e6 / 8 / 10;  // 2 Mbit/s per user process.
    spec.lambda_step = Minutes(1);
    RunResult r = RunScenario(spec);
    printf("%-8zu %-8.1f %-8.1f %-8.1f %-8.1f %-8.1f %-8s%s\n", n, r.latency.min, r.latency.p25,
           r.latency.median, r.latency.p75, r.latency.max, r.safety_ok ? "ok" : "VIOLATED",
           r.completed ? "" : "  [incomplete]");
  }
  Note("compare the med(s) column with bench_fig5's at the same user counts");
  return 0;
}
