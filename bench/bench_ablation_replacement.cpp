// Ablation: participant replacement (§2, §4) — the paper's headline defence
// against a fully adaptive adversary.
//
// The adversary watches the wire and, about a second after a node reveals
// itself by originating a committee vote (§8.4's practical reaction bound),
// disconnects it for a minute — with enough capacity to keep a whole
// committee dark, but only a sixth of the network. With replacement ON that
// is useless: the member already spoke, and the next step's committee is a
// fresh sortition draw. With replacement OFF (one committee per round, as in
// classical BFT with fixed participants), the same nodes must speak in every
// step — the adversary silences them after their first message and rounds
// stop completing.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/sim_harness.h"

using namespace algorand;

namespace {

struct Outcome {
  double completed_fraction = 0;  // Nodes that finished >= 2 rounds.
  double median_latency = 0;
  uint64_t victims = 0;
  bool safety = false;
};

Outcome Run(bool replacement, uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = 200;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = 26;
  // A committee that is a small minority of the network: the adversary can
  // DoS all of one step's voters yet leave 5/6 of the network untouched.
  cfg.params.tau_step = 30;
  cfg.params.tau_final = 60;
  cfg.params.t_final = 0.60;  // Keep finality reachable at this small tau.
  cfg.params.block_size_bytes = 64 << 10;
  cfg.params.participant_replacement_enabled = replacement;
  cfg.params.max_steps = 12;  // Give up quickly when stuck.
  cfg.use_sim_crypto = true;
  cfg.latency = HarnessConfig::Latency::kCity;

  SimHarness h(cfg);
  h.SetNetworkAdversary(std::make_unique<VoterDosAdversary>(Minutes(1), /*max victims=*/35,
                                                            /*reaction=*/Millis(50)));
  VoterDosAdversary* adv = static_cast<VoterDosAdversary*>(h.network_adversary());
  h.Start();
  h.sim().RunUntil(Minutes(5));

  Outcome out;
  size_t done = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    done += h.node(i).ledger().chain_length() > 2;
  }
  out.completed_fraction = static_cast<double>(done) / static_cast<double>(h.node_count());
  out.victims = adv->victims_targeted();
  std::vector<double> latencies;
  for (uint64_t r = 1; r <= 2; ++r) {
    for (double v : h.RoundLatencies(r)) {
      latencies.push_back(v);
    }
  }
  out.median_latency = Summarize(std::move(latencies)).median;
  out.safety = h.CheckSafety().ok;
  return out;
}

}  // namespace

int main() {
  bench::Banner("ablation-replacement",
                "§2/§4 participant replacement vs a fully adaptive DoS adversary",
                "with per-step committees, DoS-on-first-vote cannot stop rounds; "
                "with a fixed per-round committee the same attack halts progress");

  printf("%-24s %-22s %-12s %-10s %-8s\n", "mode", "nodes w/ 2 rounds", "med lat(s)", "victims",
         "safety");
  Outcome with_replacement = Run(true, 31);
  Outcome without = Run(false, 31);
  printf("%-24s %-21.0f%% %-12.1f %-10llu %-8s\n", "replacement ON",
         with_replacement.completed_fraction * 100, with_replacement.median_latency,
         static_cast<unsigned long long>(with_replacement.victims),
         with_replacement.safety ? "ok" : "VIOLATED");
  printf("%-24s %-21.0f%% %-12.1f %-10llu %-8s\n", "replacement OFF",
         without.completed_fraction * 100, without.median_latency,
         static_cast<unsigned long long>(without.victims), without.safety ? "ok" : "VIOLATED");
  bench::Note("adversary: DoS each observed vote originator for 60 s after a 50 ms reaction "
              "delay; capacity 35 of 200 nodes (covers a committee, not the network)");
  return 0;
}
