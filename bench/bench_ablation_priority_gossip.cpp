// Ablation: the two-message block proposal protocol (§6).
//
// Algorand gossips a tiny priority/proof message first so users can discard
// all but the highest-priority proposer's block; blocks that are not the
// current best are not relayed. This bench disables that machinery — every
// proposer's full block floods the network — and measures the bandwidth and
// latency cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/sim_harness.h"

using namespace algorand;

namespace {

struct Outcome {
  double block_mb_per_round = 0;
  double median_latency = 0;
  bool safety = false;
};

Outcome Run(bool priority_gossip, uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = 100;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = 26;  // ~26 proposers per round, as in the paper.
  cfg.params.tau_step = 100;
  cfg.params.tau_final = 300;
  cfg.params.block_size_bytes = 1 << 20;
  cfg.params.priority_gossip_enabled = priority_gossip;
  cfg.use_sim_crypto = true;
  cfg.latency = HarnessConfig::Latency::kCity;

  SimHarness h(cfg);
  h.Start();
  const uint64_t kRounds = 3;
  bool ok = h.RunRounds(kRounds, Hours(6));
  Outcome out;
  out.safety = ok && h.CheckSafety().ok;
  uint64_t block_msgs = 0;
  const auto by_type = h.network().message_counts_by_type();
  auto it = by_type.find("block");
  if (it != by_type.end()) {
    block_msgs = it->second;
  }
  out.block_mb_per_round = static_cast<double>(block_msgs) *
                           static_cast<double>(cfg.params.block_size_bytes) / 1e6 /
                           static_cast<double>(kRounds);
  std::vector<double> latencies;
  for (uint64_t r = 1; r <= kRounds; ++r) {
    for (double v : h.RoundLatencies(r)) {
      latencies.push_back(v);
    }
  }
  out.median_latency = Summarize(std::move(latencies)).median;
  return out;
}

}  // namespace

int main() {
  bench::Banner("ablation-priority", "§6 two-message proposal (priority gossip vs block flood)",
                "without the priority message, every proposer's 1 MB block is "
                "relayed network-wide: block bytes grow ~tau_proposer-fold and "
                "the proposal phase slows down");

  printf("%-22s %-20s %-14s %-8s\n", "mode", "block MB/round(net)", "median lat(s)", "safety");
  Outcome with_priority = Run(true, 17);
  Outcome without = Run(false, 17);
  printf("%-22s %-20.0f %-14.1f %-8s\n", "priority gossip ON", with_priority.block_mb_per_round,
         with_priority.median_latency, with_priority.safety ? "ok" : "VIOLATED");
  printf("%-22s %-20.0f %-14.1f %-8s\n", "priority gossip OFF", without.block_mb_per_round,
         without.median_latency, without.safety ? "ok" : "VIOLATED");
  printf("\nblock bandwidth ratio (off/on): %.1fx\n",
         without.block_mb_per_round / with_priority.block_mb_per_round);
  return 0;
}
