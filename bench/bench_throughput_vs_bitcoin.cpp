// §10.2 throughput comparison: committed megabytes of transactions per hour
// for Algorand at several block sizes, versus the Bitcoin (Nakamoto) baseline
// of 1 MB every ~10 minutes. Paper claims: ~327 MB/h at 2 MB blocks
// (~22 s rounds), ~750 MB/h at 10 MB blocks — 125x Bitcoin's ~6 MB/h.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"
#include "src/baseline/nakamoto.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("tput", "§10.2 (throughput: Algorand vs Bitcoin)",
         "Algorand reaches hundreds of MB/h; Bitcoin ~6 MB/h; ratio grows "
         "with block size up to ~125x at 10 MB blocks");

  // Bitcoin baseline: 1 MB block / 10 min, 6 confirmations, 10 s propagation.
  NakamotoConfig btc;
  NakamotoResult btc_result = SimulateNakamoto(btc, 7 * 24 * 3600.0);
  printf("bitcoin baseline: %.1f MB/h committed, %.0f s mean confirmation, fork rate %.3f\n\n",
         btc_result.throughput_bytes_per_hour / 1e6, btc_result.mean_confirmation_latency_s,
         btc_result.fork_rate);

  printf("%-8s %-12s %-12s %-14s %-14s %-10s\n", "block", "round(s)", "MB/hour",
         "MB/h(pipelined)", "vs bitcoin", "safety");
  const uint64_t kSizes[] = {1 << 20, 2 << 20, 10 << 20};
  const char* kLabels[] = {"1MB", "2MB", "10MB"};
  for (size_t i = 0; i < 3; ++i) {
    RunSpec spec;
    spec.n_nodes = 120;
    spec.rounds = 3;
    spec.seed = 3;
    spec.block_size = kSizes[i];
    RunResult r = RunScenario(spec);
    double round_s = r.latency.median;
    double mb_per_hour = static_cast<double>(kSizes[i]) / 1e6 * (3600.0 / round_s);
    // Pipelining the final step with the next round (§10.2).
    double pipelined_s = round_s - r.phases.final_step;
    double mb_per_hour_pipe = static_cast<double>(kSizes[i]) / 1e6 * (3600.0 / pipelined_s);
    printf("%-8s %-12.1f %-12.1f %-14.1f %-13.0fx %-10s\n", kLabels[i], round_s, mb_per_hour,
           mb_per_hour_pipe, mb_per_hour_pipe / (btc_result.throughput_bytes_per_hour / 1e6),
           r.safety_ok ? "ok" : "VIOLATED");
  }
  Note("Algorand latency here includes the fixed 10 s priority window; amortized by block size");
  return 0;
}
