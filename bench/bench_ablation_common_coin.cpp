// Ablation: the common coin of BinaryBA*'s third step (§7.4 "getting
// unstuck").
//
// This bench reproduces the paper's vote-splitting attack at the BA*-machine
// level. Two honest groups A and B (70 weighted votes each) disagree after an
// asynchronous reduction: A's reduction timed out (its BinaryBA* candidate is
// the empty hash), B's concluded with the proposed block. The adversary holds
// 35 votes (threshold is 0.685 * 150 = 102.75, so 70 + 35 = 105 crosses) and
// plays the paper's strategy each step, releasing its votes just before the
// timeout:
//   - step 3k+1 (A-type, returns on non-empty): push EMPTY over the threshold
//     for group A (no return), let B time out (-> r_B = block);
//   - step 3k+2 (B-type, returns on empty): push BLOCK for group B (no
//     return), let A time out (-> r_A = empty);
//   - step 3k+3 (C-type, never returns): push EMPTY for A; B times out and
//     follows the coin — or, with the coin disabled, deterministically takes
//     the block hash, which the adversary knows in advance.
//
// Expected: with the coin, each cycle reunifies the groups with probability
// ~1/2 (the adversary cannot predict the coin when it commits), so consensus
// lands within a few cycles. Without the coin, the split lasts to MaxSteps.
#include <cstdio>

#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/ba_star.h"
#include "src/netsim/simulation.h"

using namespace algorand;

namespace {

constexpr uint64_t kGroupWeight = 70;
constexpr uint64_t kAdversaryWeight = 35;
constexpr SimTime kJustBeforeTimeout = Millis(19900);  // lambda_step is 20 s.

PublicKey MakePk(int who, uint32_t step) {
  PublicKey pk;
  pk[0] = static_cast<uint8_t>(who);
  pk[1] = static_cast<uint8_t>(step);
  pk[2] = static_cast<uint8_t>(step >> 8);
  pk[3] = static_cast<uint8_t>(step >> 16);
  return pk;
}

VrfOutput MakeSorthash(int who, uint32_t step, uint64_t seed) {
  VrfOutput h;
  // Spread entropy so the per-step common coin is effectively a fresh bit.
  uint64_t x = static_cast<uint64_t>(who) * 0x9e3779b97f4a7c15ULL + step * 0xbf58476d1ce4e5b9ULL +
               seed * 0x94d049bb133111ebULL;
  for (int i = 0; i < 8; ++i) {
    h[static_cast<size_t>(i)] = static_cast<uint8_t>(x >> (8 * i));
    h[static_cast<size_t>(63 - i)] = static_cast<uint8_t>((x * 31) >> (8 * i));
  }
  return h;
}

struct Machine : BaEnvironment {
  Machine(int id, Simulation* sim, const ProtocolParams& params) : id(id), sim(sim) {
    ba = std::make_unique<BaStar>(params, this, [this](const BaResult& r) {
      done = true;
      result = r;
    });
  }
  void CastVote(uint32_t step_code, double, const Hash256& value) override {
    if (on_cast) {
      on_cast(id, step_code, value);
    }
  }
  void ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    sim->Schedule(delay, std::move(fn));
  }
  SimTime Now() const override { return sim->now(); }

  int id;
  Simulation* sim;
  std::unique_ptr<BaStar> ba;
  std::function<void(int, uint32_t, const Hash256&)> on_cast;
  bool done = false;
  BaResult result;
};

struct AttackOutcome {
  bool consensus = false;
  bool agree = false;
  int steps_a = 0;
  int steps_b = 0;
};

AttackOutcome RunAttack(bool coin_enabled, uint64_t seed) {
  ProtocolParams params = ProtocolParams::Paper();
  params.tau_step = 150;   // Threshold 102.75.
  params.tau_final = 300;  // Final threshold 222 (never reached here).
  params.max_steps = 30;
  params.common_coin_enabled = coin_enabled;

  Simulation sim;
  Machine a(0, &sim, params);
  Machine b(1, &sim, params);

  Hash256 block_hash, empty_hash;
  block_hash[0] = 0xbb;
  empty_hash[0] = 0xee;

  auto deliver = [&](Machine* m, int who, uint32_t step, uint64_t weight, const Hash256& value) {
    m->ba->OnVote(step, MakePk(who, step), weight, value, MakeSorthash(who, step, seed));
  };

  // Adversary bookkeeping: first time a binary step is entered (first cast for
  // its code), commit the push for that step just before the timeout.
  std::map<uint32_t, bool> adversary_armed;
  auto arm_adversary = [&](uint32_t code) {
    if (adversary_armed[code]) {
      return;
    }
    adversary_armed[code] = true;
    int type = static_cast<int>((code - kStepBinaryBase) % 3);  // 0=A, 1=B, 2=C.
    sim.Schedule(kJustBeforeTimeout, [&, code, type] {
      if (type == 0 || type == 2) {
        deliver(&a, /*who=*/9, code, kAdversaryWeight, empty_hash);  // Push A to empty.
      } else {
        deliver(&b, /*who=*/9, code, kAdversaryWeight, block_hash);  // Push B to block.
      }
    });
  };

  auto on_cast = [&](int who, uint32_t code, const Hash256& value) {
    if (code == kStepReduction1 || code == kStepReduction2) {
      // Asynchronous reduction: A receives nothing (its reduction times out,
      // candidate = empty). B receives its own vote plus the adversary's,
      // timed so B finishes its reduction when A does (t ~= 100 s).
      if (who == 1) {
        SimTime when = code == kStepReduction1 ? Millis(79900) : Millis(19800);
        sim.Schedule(when, [&, code, value] {
          deliver(&b, /*who=*/1, code, kGroupWeight, value);
          deliver(&b, /*who=*/9, code, kAdversaryWeight, value);
        });
      }
      return;
    }
    if (code == kStepFinal) {
      return;  // Final votes never reach the threshold in this scenario.
    }
    // Binary steps: honest votes reach everyone promptly (strong synchrony
    // for honest traffic); the adversary's selective push is armed per step.
    sim.Schedule(Millis(100), [&, who, code, value] {
      deliver(&a, who, code, kGroupWeight, value);
      deliver(&b, who, code, kGroupWeight, value);
    });
    arm_adversary(code);
  };
  a.on_cast = on_cast;
  b.on_cast = on_cast;

  // A never saw the block (proposes empty); B proposes the block.
  a.ba->Start(empty_hash, empty_hash);
  b.ba->Start(block_hash, empty_hash);
  sim.RunUntil(Hours(2));

  AttackOutcome out;
  out.consensus = a.done && b.done && !a.result.hung && !b.result.hung;
  out.agree = out.consensus && a.result.value == b.result.value;
  out.steps_a = a.result.binary_steps;
  out.steps_b = b.result.binary_steps;
  return out;
}

}  // namespace

int main() {
  bench::Banner("ablation-coin", "§7.4 'getting unstuck' (common coin vs no coin)",
                "with the coin: the vote-splitting adversary is beaten within a few "
                "3-step cycles; without it: both groups stay split until MaxSteps");

  printf("%-6s %-6s %-12s %-8s %-12s\n", "coin", "seed", "consensus", "agree", "steps(A/B)");
  int coin_success = 0, nocoin_success = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    AttackOutcome with_coin = RunAttack(true, seed);
    AttackOutcome without = RunAttack(false, seed);
    coin_success += with_coin.consensus;
    nocoin_success += without.consensus;
    printf("%-6s %-6llu %-12s %-8s %d/%d\n", "on", static_cast<unsigned long long>(seed),
           with_coin.consensus ? "reached" : "HUNG", with_coin.agree ? "yes" : "-",
           with_coin.steps_a, with_coin.steps_b);
    printf("%-6s %-6llu %-12s %-8s %d/%d\n", "off", static_cast<unsigned long long>(seed),
           without.consensus ? "reached" : "HUNG", without.agree ? "yes" : "-", without.steps_a,
           without.steps_b);
  }
  printf("\nsummary: coin on -> %d/8 attacks beaten; coin off -> %d/8 (expect 8 vs 0)\n",
         coin_success, nocoin_success);
  return 0;
}
