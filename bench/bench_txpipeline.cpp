// Transaction-pipeline throughput: committed tx/sec through the full
// mempool → batch-verify → conflict-partitioned-apply path, at an account
// table of millions of entries and 1 MB blocks (§10.2 measures committed
// throughput of exactly such blocks).
//
//   $ ./bench/bench_txpipeline --accounts=1000000 --workers=0,2,4 --rounds=3 \
//         --out=BENCH_txn.json [--real-crypto] [--seed=N]
//
// --workers sweeps EXEC worker counts for the block applier (ledger/exec.h):
// 0 = the sequential tier-1 path, N >= 1 = conflict partitions applied
// through a worker pool. Every worker count must commit the bit-identical
// chain and account state — the report cross-checks chain tips, account
// fingerprints, and committed counts across all points and exits 3 on any
// mismatch (the harness-level twin of txpipeline_test's A/B).
// --accounts adds that many key-less filler accounts of stake 1 to genesis,
// so lookups run against a realistically-sized table; the paying clients and
// consensus nodes ride on top of them. Sim crypto is the default (the
// paper's replace-crypto-with-sleeps methodology — this benchmark measures
// the pipeline, not ed25519); --real-crypto signs and verifies for real.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/sim_harness.h"

using namespace algorand;
using namespace algorand::bench;

namespace {

struct Options {
  size_t accounts = 1'000'000;
  std::vector<size_t> workers = {0, 2};
  uint64_t rounds = 3;
  size_t n_nodes = 6;
  size_t clients = 64;
  size_t load = 0;  // tx/round; 0 = sized to fill a block.
  uint64_t block_bytes = 1 << 20;
  uint64_t seed = 1;
  bool real_crypto = false;
  bool help = false;
  std::string out = "BENCH_txn.json";
};

bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

std::vector<size_t> ParseSizeList(const std::string& spec) {
  std::vector<size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<size_t>(std::stoul(item)));
    }
  }
  return out;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, &i, "accounts", &v)) {
      opt.accounts = static_cast<size_t>(std::stoull(v));
    } else if (ParseFlag(argc, argv, &i, "workers", &v)) {
      opt.workers = ParseSizeList(v);
    } else if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "nodes", &v)) {
      opt.n_nodes = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "clients", &v)) {
      opt.clients = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "load", &v)) {
      opt.load = static_cast<size_t>(std::stoull(v));
    } else if (ParseFlag(argc, argv, &i, "block-bytes", &v)) {
      opt.block_bytes = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "seed", &v)) {
      opt.seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "out", &v)) {
      opt.out = v;
    } else if (strcmp(argv[i], "--real-crypto") == 0) {
      opt.real_crypto = true;
    } else {
      opt.help = true;
    }
  }
  return opt;
}

std::string HashHex(const Hash256& h) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < 8; ++i) {  // 8 bytes is plenty for a cross-check id.
    out += kHex[h.data()[i] >> 4];
    out += kHex[h.data()[i] & 0xf];
  }
  return out;
}

struct PointResult {
  size_t exec_workers = 0;
  double wall_seconds = 0;
  uint64_t committed = 0;
  uint64_t accounts = 0;
  bool completed = false;
  bool safety_ok = false;
  Hash256 tip;
  Hash256 fingerprint;
};

PointResult RunPoint(const Options& opt, size_t exec_workers) {
  HarnessConfig cfg;
  cfg.n_nodes = opt.n_nodes;
  cfg.rng_seed = opt.seed;
  cfg.use_sim_crypto = !opt.real_crypto;
  cfg.verify_workers = 0;  // Isolate the exec sweep; prewarm is benched elsewhere.
  cfg.exec_workers = static_cast<int>(exec_workers);
  // Consensus stake stays with the nodes; clients and fillers must be
  // noise-level weight. Non-voting stake directly shrinks expected committee
  // weight below tau, and even ~15% of it makes BA* time out into the
  // empty-block fallback on marginal rounds.
  cfg.stake_per_user = 50'000'000;
  cfg.tx_clients = opt.clients;
  cfg.client_stake = 50'000;
  cfg.filler_accounts = opt.accounts;
  cfg.params.block_size_bytes = opt.block_bytes;
  const size_t block_capacity = opt.block_bytes / Transaction::kWireSize;
  cfg.tx_load_per_round = opt.load > 0 ? opt.load : block_capacity;
  // The pool must absorb a full round of load on top of leftovers.
  cfg.params.mempool_capacity = 4 * cfg.tx_load_per_round;

  PointResult res;
  res.exec_workers = exec_workers;
  auto t0 = std::chrono::steady_clock::now();
  SimHarness h(cfg);
  h.Start();
  res.completed = h.RunRounds(opt.rounds, Hours(48));
  auto t1 = std::chrono::steady_clock::now();
  res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.safety_ok = h.CheckSafety().ok;
  res.committed = h.CommittedTxCount();
  res.accounts = h.node(0).ledger().accounts().account_count();
  res.tip = h.node(0).ledger().tip_hash();
  res.fingerprint = h.node(0).ledger().accounts().StateFingerprint();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (opt.help || opt.workers.empty() || opt.rounds == 0 || opt.n_nodes < 2) {
    printf(
        "usage: bench_txpipeline [flags]\n"
        "  --accounts=N      filler accounts in genesis (default 1000000)\n"
        "  --workers=A,B,C   exec worker counts to sweep: 0 = sequential\n"
        "                    apply, N>=1 = conflict-partitioned parallel\n"
        "                    apply (default 0,2)\n"
        "  --rounds=N        consensus rounds per point (default 3)\n"
        "  --nodes=N         consensus nodes (default 6)\n"
        "  --clients=N       paying client accounts (default 64)\n"
        "  --load=N          injected tx per round (default: one block's\n"
        "                    worth, block-bytes / tx wire size)\n"
        "  --block-bytes=N   block payload size (default 1 MB)\n"
        "  --seed=N          rng seed (default 1)\n"
        "  --real-crypto     ed25519 instead of sim crypto\n"
        "  --out=FILE        JSON report path (default BENCH_txn.json)\n");
    return opt.help ? 1 : 0;
  }

  Banner("txpipeline", "committed tx/sec at 1 MB blocks (the throughput unit of §10.2)",
         "identical chains and account state across exec worker counts; tx/sec limited by "
         "the apply pipeline, not the account table");

  std::vector<PointResult> results;
  for (size_t w : opt.workers) {
    results.push_back(RunPoint(opt, w));
  }

  printf("%-8s %-10s %-10s %-12s %-12s %-18s %-10s\n", "workers", "accounts", "wall(s)",
         "committed", "tx/sec", "state-fingerprint", "safety");
  bool all_ok = true;
  bool identical = true;
  for (size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    all_ok = all_ok && r.completed && r.safety_ok;
    if (r.tip != results[0].tip || r.fingerprint != results[0].fingerprint ||
        r.committed != results[0].committed) {
      identical = false;
    }
    double tps = r.wall_seconds > 0 ? static_cast<double>(r.committed) / r.wall_seconds : 0;
    printf("%-8zu %-10llu %-10.2f %-12llu %-12.0f %-18s %-10s%s\n", r.exec_workers,
           static_cast<unsigned long long>(r.accounts), r.wall_seconds,
           static_cast<unsigned long long>(r.committed), tps, HashHex(r.fingerprint).c_str(),
           r.safety_ok ? "ok" : "VIOLATED", r.completed ? "" : "  [incomplete]");
  }

  std::string json = "{\n  \"crypto\": \"";
  json += opt.real_crypto ? "ed25519" : "sim";
  json += "\",\n  \"block_bytes\": " + std::to_string(opt.block_bytes);
  json += ",\n  \"rounds\": " + std::to_string(opt.rounds);
  json += ",\n  \"nodes\": " + std::to_string(opt.n_nodes);
  json += ",\n  \"clients\": " + std::to_string(opt.clients);
  json += ",\n  \"seed\": " + std::to_string(opt.seed);
  json += ",\n  \"points\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const PointResult& r = results[i];
    double tps = r.wall_seconds > 0 ? static_cast<double>(r.committed) / r.wall_seconds : 0;
    char buf[512];
    snprintf(buf, sizeof(buf),
             "    {\"exec_workers\": %zu, \"accounts\": %llu, \"wall_seconds\": %.3f, "
             "\"committed_txns\": %llu, \"committed_tx_per_sec\": %.0f, \"tip\": \"%s\", "
             "\"state_fingerprint\": \"%s\", \"completed\": %s, \"safety_ok\": %s}%s\n",
             r.exec_workers, static_cast<unsigned long long>(r.accounts), r.wall_seconds,
             static_cast<unsigned long long>(r.committed), tps, HashHex(r.tip).c_str(),
             HashHex(r.fingerprint).c_str(), r.completed ? "true" : "false",
             r.safety_ok ? "true" : "false", i + 1 < results.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"worker_counts_bit_identical\": ";
  json += identical ? "true" : "false";
  json += "\n}\n";

  std::ofstream out_file(opt.out, std::ios::binary);
  if (out_file) {
    out_file << json;
    printf("report: %s\n", opt.out.c_str());
  } else {
    fprintf(stderr, "error: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  Note("single-core hosts show no parallel wall-clock win; the A/B pins correctness, the");
  Note("tx/sec column is the committed-throughput measurement (per point, whole run)");
  if (!identical) {
    fprintf(stderr, "error: exec worker counts disagreed on chain tip / account state\n");
    return 3;
  }
  return all_ok ? 0 : 2;
}
