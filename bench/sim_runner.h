// Shared scenario runner for the figure-reproduction benches: configures a
// SimHarness, runs a few rounds, and condenses the per-node records into the
// statistics the paper plots.
//
// Scaling policy (documented in DESIGN.md/EXPERIMENTS.md): expected committee
// sizes are held CONSTANT while the user count sweeps — that is the paper's
// central scalability argument (§8.4: per-user cost depends on committee
// size, not user count). Crypto uses the Sim backends plus the verification
// cache, mirroring the paper's replace-verification-with-sleeps methodology.
#ifndef ALGORAND_BENCH_SIM_RUNNER_H_
#define ALGORAND_BENCH_SIM_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/core/sim_harness.h"
#include "src/obs/trace_collector.h"

namespace algorand {
namespace bench {

struct RunSpec {
  size_t n_nodes = 150;
  uint64_t rounds = 3;
  uint64_t seed = 1;
  uint64_t block_size = 1 << 20;

  double tau_proposer = 26;  // Paper value.
  double tau_step = 100;
  double tau_final = 300;

  double uplink_bytes_per_sec = 20e6 / 8;  // 20 Mbit/s, the paper's cap.
  SimTime lambda_step = Seconds(20);
  double malicious_fraction = 0;
  bool real_crypto = false;
  SimTime deadline = Hours(6);
  // Engine workers: 0 = classic sequential Simulation, >= 1 = the
  // conservative-lookahead ParallelSimulation with that many shards (any N
  // is bit-identical to N=1 — see parallel_simulation.h).
  size_t sim_workers = 0;
  // Users hosted per node (aggregate-user modeling); total simulated users =
  // n_nodes * users_per_group.
  size_t users_per_group = 1;
  // A/B switch for the event-queue benchmark; kMap is the reference queue.
  bool use_map_event_queue = false;
  // Durable store A/B: when data_dir is non-empty every node streams its
  // rounds to a disk log there — the cost of durability on the sim hot path.
  std::string data_dir;
  FsyncPolicy store_fsync = FsyncPolicy::kBatched;
};

struct RunResult {
  bool completed = false;
  bool safety_ok = false;
  Summary latency;  // Round-completion seconds across honest nodes & rounds.
  SimHarness::PhaseBreakdown phases;
  double bytes_per_user_per_round = 0;
  uint64_t executed_events = 0;
  double wall_seconds = 0;  // Real time spent inside RunRounds.
  // Merged cross-node metrics snapshot; the registry-backed view of the same
  // run ("ba.round_time_ms", "gossip.msgs_in.*", ...).
  MetricsSnapshot metrics;
  // Per-round latency waterfalls joined from the causal trace events — the
  // Fig-5 phase breakdown measured from real cross-node event data.
  std::vector<RoundWaterfall> waterfalls;
};

inline RunResult RunScenario(const RunSpec& spec) {
  HarnessConfig cfg;
  cfg.n_nodes = spec.n_nodes;
  cfg.rng_seed = spec.seed;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = spec.tau_proposer;
  cfg.params.tau_step = spec.tau_step;
  cfg.params.tau_final = spec.tau_final;
  cfg.params.lambda_step = spec.lambda_step;
  cfg.params.block_size_bytes = spec.block_size;
  cfg.net.uplink_bytes_per_sec = spec.uplink_bytes_per_sec;
  cfg.latency = HarnessConfig::Latency::kCity;
  cfg.use_sim_crypto = !spec.real_crypto;
  cfg.malicious_fraction = spec.malicious_fraction;
  cfg.use_map_event_queue = spec.use_map_event_queue;
  cfg.data_dir = spec.data_dir;
  cfg.store_fsync = spec.store_fsync;
  cfg.sim_workers = spec.sim_workers;
  cfg.users_per_group = spec.users_per_group;

  SimHarness h(cfg);
  h.Start();
  RunResult result;
  auto wall_start = std::chrono::steady_clock::now();
  result.completed = h.RunRounds(spec.rounds, spec.deadline);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.safety_ok = h.CheckSafety().ok;
  std::vector<double> latencies;
  for (uint64_t r = 1; r <= spec.rounds; ++r) {
    for (double v : h.RoundLatencies(r)) {
      latencies.push_back(v);
    }
  }
  result.latency = Summarize(std::move(latencies));
  result.phases = h.MeanPhaseBreakdown(1, spec.rounds);
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < h.node_count(); ++i) {
    total_bytes += h.network().traffic(static_cast<NodeId>(i)).bytes_sent;
  }
  // Per *user*, so aggregate runs stay comparable: with users_per_group > 1
  // the denominator counts every hosted user (identical to the old per-node
  // figure when users_per_group == 1).
  result.bytes_per_user_per_round = static_cast<double>(total_bytes) /
                                    static_cast<double>(h.total_users()) /
                                    static_cast<double>(spec.rounds);
  result.executed_events = h.sim().executed_events();
  result.metrics = h.AggregateMetrics();
  TraceCollector collector;
  collector.AddEvents(h.tracer().Events());
  result.waterfalls = collector.Waterfalls();
  return result;
}

// Runs a batch of scenarios across `workers` threads. Each worker owns a
// complete SimHarness per scenario (share-nothing: separate event queues,
// networks, metrics registries), so results are identical to running the
// specs sequentially — the only shared state is the work index. Results land
// at the same index as their spec.
inline std::vector<RunResult> RunScenariosParallel(const std::vector<RunSpec>& specs,
                                                   size_t workers) {
  std::vector<RunResult> results(specs.size());
  if (workers == 0) {
    workers = 1;
  }
  workers = std::min(workers, specs.size());
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) {
        return;
      }
      results[i] = RunScenario(specs[i]);
    }
  };
  if (workers <= 1) {
    work();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back(work);
  }
  for (auto& t : pool) {
    t.join();
  }
  return results;
}

}  // namespace bench
}  // namespace algorand

#endif  // ALGORAND_BENCH_SIM_RUNNER_H_
