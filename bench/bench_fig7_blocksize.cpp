// Figure 7: round latency decomposed by phase as the block size sweeps from
// kilobytes to 10 MB. The claims: the block-proposal phase grows linearly
// with block size (gossip of the large payload), while BA* itself — both the
// part before the final step and the final step — stays flat (~12 s + ~6 s in
// the paper's testbed).
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("fig7", "Figure 7 (latency breakdown vs block size)",
         "block-proposal time grows with block size; BA* (w/o final) and the "
         "final step are independent of block size");

  printf("%-10s %-12s %-14s %-12s %-10s %-8s\n", "block", "proposal(s)", "ba_wo_final(s)",
         "final(s)", "total(s)", "safety");
  const uint64_t kSizes[] = {1 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20, 10 << 20};
  const char* kLabels[] = {"1KB", "64KB", "256KB", "1MB", "2MB", "10MB"};
  for (size_t i = 0; i < 6; ++i) {
    RunSpec spec;
    spec.n_nodes = 150;
    spec.rounds = 3;
    spec.seed = 7;
    spec.block_size = kSizes[i];
    RunResult r = RunScenario(spec);
    double total = r.phases.proposal + r.phases.ba_without_final + r.phases.final_step;
    printf("%-10s %-12.1f %-14.1f %-12.1f %-10.1f %-8s\n", kLabels[i], r.phases.proposal,
           r.phases.ba_without_final, r.phases.final_step, total,
           r.safety_ok ? "ok" : "VIOLATED");
  }
  Note("the final step can be pipelined with the next round to raise throughput (§10.2)");
  return 0;
}
