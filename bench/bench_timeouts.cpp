// §10.5 timeout-parameter validation: measures, inside a full simulated
// deployment, the quantities the Figure 4 timeouts must dominate —
//   - time for the winning priority message to reach users  (< lambda_priority = 5 s)
//   - time for the winning block to reach users              (< lambda_block = 60 s)
//   - per-BA*-step completion time                           (< lambda_step = 20 s)
//   - spread (p75-p25) of BA* completion across users        (< lambda_stepvar = 5 s)
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("timeouts", "§10.5 (validating the Figure 4 timeout parameters)",
         "steps finish well under lambda_step; priority gossip ~1 s; blocks "
         "gossip well under lambda_block; completion spread under lambda_stepvar");

  HarnessConfig cfg;
  cfg.n_nodes = 150;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = 26;
  cfg.params.tau_step = 100;
  cfg.params.tau_final = 300;
  cfg.params.block_size_bytes = 1 << 20;
  cfg.use_sim_crypto = true;
  cfg.rng_seed = 8;
  SimHarness h(cfg);
  h.Start();
  if (!h.RunRounds(4, Hours(2))) {
    printf("run failed\n");
    return 1;
  }

  std::vector<double> priority_times, block_times, step_times, completion_times;
  for (size_t i = 0; i < h.node_count(); ++i) {
    for (const RoundRecord& rec : h.node(i).round_records()) {
      if (rec.end_time == 0 || rec.round < 2) {
        continue;  // Skip the first round (synchronized start skews it).
      }
      if (rec.best_priority_at > rec.start_time) {
        priority_times.push_back(ToSeconds(rec.best_priority_at - rec.start_time));
      }
      if (rec.candidate_block_at > rec.start_time) {
        block_times.push_back(ToSeconds(rec.candidate_block_at - rec.start_time));
      }
      if (rec.binary_steps > 0) {
        step_times.push_back(ToSeconds(rec.binary_done_at - rec.reduction_done_at) /
                             rec.binary_steps);
      }
      completion_times.push_back(ToSeconds(rec.end_time - rec.start_time));
    }
  }
  Summary pri = Summarize(std::move(priority_times));
  Summary blk = Summarize(std::move(block_times));
  Summary stp = Summarize(std::move(step_times));
  Summary cmp = Summarize(std::move(completion_times));

  printf("%-34s %-10s %-10s %-10s %-14s %s\n", "quantity", "median(s)", "p75(s)", "max(s)",
         "budget", "ok?");
  printf("%-34s %-10.2f %-10.2f %-10.2f %-14s %s\n", "priority gossip (from round start)",
         pri.median, pri.p75, pri.max, "lambda_priority=5s", pri.max < 5 ? "yes" : "over");
  printf("%-34s %-10.2f %-10.2f %-10.2f %-14s %s\n", "winning 1MB block receipt", blk.median,
         blk.p75, blk.max, "lambda_block=60s", blk.max < 60 ? "yes" : "over");
  printf("%-34s %-10.2f %-10.2f %-10.2f %-14s %s\n", "per BA* step", stp.median, stp.p75, stp.max,
         "lambda_step=20s", stp.max < 20 ? "yes" : "over");
  printf("%-34s %-10.2f %-10.2f %-10.2f %-14s %s\n", "round completion spread (p75-p25)",
         cmp.p75 - cmp.p25, 0.0, 0.0, "lambda_stepvar=5s",
         (cmp.p75 - cmp.p25) < 5 ? "yes" : "over");
  return 0;
}
