// Figure 8: round latency as the fraction of malicious (equivocating) stake
// grows from 0 to 20%. The attack is the paper's: the malicious proposer
// gossips two versions of its block to disjoint peer sets, and malicious
// committee members vote for both versions. The claim: latency is not
// significantly affected.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("fig8", "Figure 8 (latency vs fraction of malicious users)",
         "round latency approximately unchanged up to 20% malicious stake");

  printf("%-10s %-8s %-8s %-8s %-8s %-8s %-8s\n", "malicious", "min(s)", "p25(s)", "med(s)",
         "p75(s)", "max(s)", "safety");
  const double kFractions[] = {0.0, 0.05, 0.10, 0.15, 0.20};
  for (double f : kFractions) {
    RunSpec spec;
    spec.n_nodes = 150;
    spec.rounds = 3;
    spec.seed = 21;
    spec.block_size = 256 << 10;
    // Larger committees keep the honest-votes margin at simulation scale
    // comparable (in sigmas) to the paper's tau_step = 2000.
    spec.tau_step = 400;
    spec.tau_final = 1000;
    spec.malicious_fraction = f;
    RunResult r = RunScenario(spec);
    printf("%-10.0f%% %-7.1f %-8.1f %-8.1f %-8.1f %-8.1f %-8s%s\n", f * 100, r.latency.min,
           r.latency.p25, r.latency.median, r.latency.p75, r.latency.max,
           r.safety_ok ? "ok" : "VIOLATED", r.completed ? "" : "  [incomplete]");
  }
  Note("malicious nodes equivocate when proposing and double-vote on committees (§10.4)");
  return 0;
}
