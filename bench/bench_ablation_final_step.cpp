// Ablation: the final step (§7.4).
//
// The final committee vote is what upgrades BA* consensus from tentative to
// final — and final consensus is what lets users actually confirm
// transactions (§4, §8.2). With the final step disabled, agreement still
// works (chains stay consistent under strong synchrony) but nothing is ever
// confirmed: the safety guarantee against weak synchrony is gone.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/sim_harness.h"

using namespace algorand;

namespace {

struct Outcome {
  uint64_t rounds_final = 0;
  uint64_t rounds_total = 0;
  bool txn_confirmed = false;
  bool chains_consistent = false;
};

Outcome Run(bool final_step, uint64_t seed) {
  HarnessConfig cfg;
  cfg.n_nodes = 50;
  cfg.rng_seed = seed;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = 26;
  cfg.params.tau_step = 100;
  cfg.params.tau_final = 300;
  cfg.params.block_size_bytes = 64 << 10;
  cfg.params.final_step_enabled = final_step;
  cfg.use_sim_crypto = true;
  cfg.latency = HarnessConfig::Latency::kUniform;

  SimHarness h(cfg);
  Transaction tx = h.SubmitPayment(1, 2, 10, 0);
  h.Start();
  h.RunRounds(3, Hours(4));
  Outcome out;
  const Node& node = h.node(0);
  for (const RoundRecord& rec : node.round_records()) {
    if (rec.end_time == 0) {
      continue;
    }
    ++out.rounds_total;
    out.rounds_final += rec.final;
  }
  out.txn_confirmed = node.ledger().IsConfirmed(tx.Id());
  out.chains_consistent = h.ChainsConsistent();
  return out;
}

}  // namespace

int main() {
  bench::Banner("ablation-final", "§7.4 final step (finality vs tentative-only)",
                "without the final step, agreement still proceeds but no round is "
                "ever FINAL, so no transaction is ever confirmed");

  printf("%-18s %-14s %-16s %-12s\n", "mode", "final rounds", "txn confirmed", "consistent");
  Outcome with_final = Run(true, 23);
  Outcome without = Run(false, 23);
  printf("%-18s %llu/%-12llu %-16s %-12s\n", "final step ON",
         static_cast<unsigned long long>(with_final.rounds_final),
         static_cast<unsigned long long>(with_final.rounds_total),
         with_final.txn_confirmed ? "yes" : "no",
         with_final.chains_consistent ? "yes" : "NO");
  printf("%-18s %llu/%-12llu %-16s %-12s\n", "final step OFF",
         static_cast<unsigned long long>(without.rounds_final),
         static_cast<unsigned long long>(without.rounds_total),
         without.txn_confirmed ? "yes" : "no", without.chains_consistent ? "yes" : "NO");
  return 0;
}
