// Figure 5: round-completion latency as the number of users grows, with the
// committee sizes held fixed. The paper sweeps 5,000-50,000 users across
// 1,000 VMs; the simulator sweeps a proportional range on one machine.
// The claim being reproduced: latency stays nearly constant as users grow.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("fig5", "Figure 5 (latency vs number of users, 1 MB blocks)",
         "round latency well under a minute and ~flat as users scale "
         "(paper: ~22 s from 5k to 50k users)");

  printf("%-8s %-8s %-8s %-8s %-8s %-8s %-10s %-8s\n", "users", "min(s)", "p25(s)", "med(s)",
         "p75(s)", "max(s)", "bytes/usr", "safety");
  const size_t kUserCounts[] = {50, 100, 200, 300, 400};
  for (size_t n : kUserCounts) {
    RunSpec spec;
    spec.n_nodes = n;
    spec.rounds = 3;
    spec.seed = 42;
    RunResult r = RunScenario(spec);
    printf("%-8zu %-8.1f %-8.1f %-8.1f %-8.1f %-8.1f %-10.0f %-8s%s\n", n, r.latency.min,
           r.latency.p25, r.latency.median, r.latency.p75, r.latency.max,
           r.bytes_per_user_per_round, r.safety_ok ? "ok" : "VIOLATED",
           r.completed ? "" : "  [incomplete]");
  }
  Note("committee sizes fixed (tau_step=100, tau_final=300) across the sweep, as in the paper");
  Note("per-user bandwidth is ~independent of user count: the committee does the talking");
  return 0;
}
