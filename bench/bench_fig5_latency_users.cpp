// Figure 5: round-completion latency as the number of users grows, with the
// committee sizes held fixed. The paper sweeps 5,000-50,000 users across
// 1,000 VMs; the simulator sweeps a proportional range on one machine.
// The claim being reproduced: latency stays nearly constant as users grow.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("fig5", "Figure 5 (latency vs number of users, 1 MB blocks)",
         "round latency well under a minute and ~flat as users scale "
         "(paper: ~22 s from 5k to 50k users)");

  printf("%-8s %-8s %-8s %-8s %-10s %-8s | %-9s %-9s %-9s %-9s\n", "users", "p50(s)",
         "p90(s)", "p99(s)", "bytes/usr", "safety", "gossip(s)", "reduce(s)", "votes(s)",
         "rcpt_p90");
  const size_t kUserCounts[] = {50, 100, 200, 300, 400};
  for (size_t n : kUserCounts) {
    RunSpec spec;
    spec.n_nodes = n;
    spec.rounds = 3;
    spec.seed = 42;
    RunResult r = RunScenario(spec);
    // Round-latency quantiles from the registry histogram every node feeds.
    HistogramSnapshot::Quantiles q{};
    auto it = r.metrics.histograms.find("ba.round_time_ms");
    if (it != r.metrics.histograms.end()) {
      q = it->second.EstimateQuantiles();
    }
    // Phase columns come from the joined cross-node trace events: the three
    // Fig-5 phases partition each node's round wall time (block gossip, BA*
    // steps that reference the block, remaining vote steps), averaged across
    // the run's rounds. rcpt_p90 is the cross-node proposal-to-receipt p90.
    double gossip = 0;
    double reduce = 0;
    double votes = 0;
    double receipt_p90 = 0;
    for (const RoundWaterfall& wf : r.waterfalls) {
      gossip += wf.gossip_ms / 1e3;
      reduce += wf.reduction_ms / 1e3;
      votes += wf.votes_ms / 1e3;
      receipt_p90 = std::max(receipt_p90, wf.receipt_p90_ms / 1e3);
    }
    if (!r.waterfalls.empty()) {
      double rounds = static_cast<double>(r.waterfalls.size());
      gossip /= rounds;
      reduce /= rounds;
      votes /= rounds;
    }
    printf("%-8zu %-8.1f %-8.1f %-8.1f %-10.0f %-8s | %-9.1f %-9.1f %-9.1f %-9.1f%s\n", n,
           q.p50 / 1e3, q.p90 / 1e3, q.p99 / 1e3, r.bytes_per_user_per_round,
           r.safety_ok ? "ok" : "VIOLATED", gossip, reduce, votes, receipt_p90,
           r.completed ? "" : "  [incomplete]");
  }
  Note("committee sizes fixed (tau_step=100, tau_final=300) across the sweep, as in the paper");
  Note("per-user bandwidth is ~independent of user count: the committee does the talking");
  Note("phase columns are joined from real cross-node trace events (TraceCollector), not timers");
  return 0;
}
