// Figure 5: round-completion latency as the number of users grows, with the
// committee sizes held fixed. The paper sweeps 5,000-50,000 users across
// 1,000 VMs; the simulator sweeps a proportional range on one machine.
// The claim being reproduced: latency stays nearly constant as users grow.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("fig5", "Figure 5 (latency vs number of users, 1 MB blocks)",
         "round latency well under a minute and ~flat as users scale "
         "(paper: ~22 s from 5k to 50k users)");

  printf("%-8s %-8s %-8s %-8s %-8s %-8s %-10s %-8s | %-9s %-9s %-9s\n", "users", "min(s)",
         "p25(s)", "med(s)", "p75(s)", "max(s)", "bytes/usr", "safety", "prop(s)", "ba(s)",
         "final(s)");
  const size_t kUserCounts[] = {50, 100, 200, 300, 400};
  for (size_t n : kUserCounts) {
    RunSpec spec;
    spec.n_nodes = n;
    spec.rounds = 3;
    spec.seed = 42;
    RunResult r = RunScenario(spec);
    // Phase columns come from the metrics registry: the medians of the
    // per-node "ba.*_time_ms" histograms every round records (the Figure 5
    // latency decomposed the way §10.2 reports it).
    auto phase_median_s = [&r](const char* name) {
      auto it = r.metrics.histograms.find(name);
      return it == r.metrics.histograms.end() ? 0.0 : it->second.Percentile(0.5) / 1e3;
    };
    double prop = phase_median_s("ba.proposal_time_ms");
    double ba = phase_median_s("ba.reduction_time_ms") + phase_median_s("ba.binary_time_ms");
    double fin = phase_median_s("ba.final_time_ms");
    printf("%-8zu %-8.1f %-8.1f %-8.1f %-8.1f %-8.1f %-10.0f %-8s | %-9.1f %-9.1f %-9.1f%s\n",
           n, r.latency.min, r.latency.p25, r.latency.median, r.latency.p75, r.latency.max,
           r.bytes_per_user_per_round, r.safety_ok ? "ok" : "VIOLATED", prop, ba, fin,
           r.completed ? "" : "  [incomplete]");
  }
  Note("committee sizes fixed (tau_step=100, tau_final=300) across the sweep, as in the paper");
  Note("per-user bandwidth is ~independent of user count: the committee does the talking");
  Note("phase columns are registry-histogram medians (ba.*_time_ms) from the same runs");
  return 0;
}
