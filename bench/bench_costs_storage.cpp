// §10.3 bandwidth and storage costs:
//   - bytes sent per user per round (paper: ~10 Mbit/s during a ~20 s round
//     with 1 MB blocks and 50k users; independent of user count),
//   - certificate size (paper: ~300 KB per block at tau_step = 2000),
//   - the effect of sharding certificate storage modulo N (§8.3).
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"
#include "src/core/catchup.h"

using namespace algorand;
using namespace algorand::bench;

int main() {
  Banner("costs", "§10.3 (bandwidth and storage costs)",
         "per-user bandwidth independent of user count; certificate size "
         "proportional to committee size (paper: ~300 KB at tau_step=2000); "
         "sharding divides storage by N");

  // Bandwidth: per-user bytes per round at two network sizes.
  printf("bandwidth (1 MB blocks, fixed committees):\n");
  printf("%-8s %-16s %-18s\n", "users", "bytes/user/round", "~Mbit/s over round");
  for (size_t n : {100, 200, 400}) {
    RunSpec spec;
    spec.n_nodes = n;
    spec.rounds = 3;
    spec.seed = 5;
    RunResult r = RunScenario(spec);
    double mbit_s = r.bytes_per_user_per_round * 8 / 1e6 / r.latency.median;
    printf("%-8zu %-16.0f %-18.2f\n", n, r.bytes_per_user_per_round, mbit_s);
  }

  // Certificate size: measured from a real run, then extrapolated to the
  // paper's committee size.
  HarnessConfig cfg;
  cfg.n_nodes = 100;
  cfg.params = ProtocolParams::Paper();
  cfg.params.tau_proposer = 26;
  cfg.params.tau_step = 100;
  cfg.params.tau_final = 300;
  cfg.params.block_size_bytes = 64 << 10;
  cfg.use_sim_crypto = true;
  cfg.rng_seed = 6;
  SimHarness h(cfg);
  h.Start();
  if (!h.RunRounds(3, Hours(2))) {
    printf("certificate run failed\n");
    return 1;
  }
  uint64_t cert_bytes = 0, cert_votes = 0, certs = 0;
  for (const auto& [round, cert] : h.node(0).certificates()) {
    cert_bytes += cert.WireSize();
    cert_votes += cert.votes.size();
    ++certs;
  }
  double per_cert = static_cast<double>(cert_bytes) / static_cast<double>(certs);
  double per_vote = static_cast<double>(cert_bytes) / static_cast<double>(cert_votes);
  printf("\ncertificates: %.0f bytes each at tau_step=%.0f (%.0f bytes/vote, %.1f votes/cert)\n",
         per_cert, cfg.params.tau_step, per_vote,
         static_cast<double>(cert_votes) / static_cast<double>(certs));
  // Vote weight scales with committee size; extrapolate to the paper's 2000.
  double paper_cert = per_cert * (2000.0 / cfg.params.tau_step);
  printf("extrapolated to tau_step=2000: ~%.0f KB per certificate "
         "(paper reports ~300 KB with its smaller vote encoding)\n",
         paper_cert / 1024);
  printf("storage overhead for 1 MB blocks: %.0f%% unsharded; sharding mod 10 -> %.0f%%\n",
         paper_cert / (1 << 20) * 100, paper_cert / (1 << 20) * 10);
  return 0;
}
