// Model-checker throughput: schedules/sec for the exploration modes the CI
// smoke job and the overnight sweeps lean on. Exploration cost is linear in
// schedules executed, so this number is the budget planner: a 10k-schedule
// exhaustive sweep at ~400 schedules/sec is ~25 s of CI time.
//
//   $ ./bench/bench_modelcheck [--nodes=4] [--rounds=2] [--schedules=200]
//         [--depth=12] [--out=BENCH_modelcheck.json]
//
// Three points are measured: plain exhaustive DFS (delivery reordering only),
// random exploration with adversary decisions, and random exploration with
// adversary + crash injection (the expensive end: kills, restarts, catch-up).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/check/model_checker.h"

using namespace algorand;

namespace {

struct Options {
  size_t nodes = 4;
  uint64_t rounds = 2;
  uint64_t schedules = 200;
  size_t depth = 12;
  std::string out = "BENCH_modelcheck.json";
  bool help = false;
};

bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

struct Point {
  std::string name;
  uint64_t schedules = 0;
  uint64_t violations = 0;
  uint64_t incomplete = 0;
  double wall_s = 0;
  double schedules_per_sec = 0;
};

Point Measure(const std::string& name, ModelChecker* checker, bool exhaustive,
              uint64_t schedules) {
  Point pt;
  pt.name = name;
  const auto start = std::chrono::steady_clock::now();
  ModelChecker::ExploreResult res = exhaustive ? checker->RunExhaustive(schedules)
                                               : checker->RunRandom(schedules, 42);
  pt.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  pt.schedules = res.schedules;
  pt.violations = res.violations;
  pt.incomplete = res.incomplete;
  pt.schedules_per_sec =
      pt.wall_s > 0 ? static_cast<double>(res.schedules) / pt.wall_s : 0;
  printf("%-24s %6llu schedules  %8.1f/s  %llu violations  %llu incomplete\n",
         name.c_str(), static_cast<unsigned long long>(pt.schedules), pt.schedules_per_sec,
         static_cast<unsigned long long>(pt.violations),
         static_cast<unsigned long long>(pt.incomplete));
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argc, argv, &i, "nodes", &v)) {
      opt.nodes = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "schedules", &v)) {
      opt.schedules = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "depth", &v)) {
      opt.depth = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "out", &v)) {
      opt.out = v;
    } else {
      opt.help = true;
    }
  }
  if (opt.help) {
    printf("usage: bench_modelcheck [--nodes=N] [--rounds=N] [--schedules=N] "
           "[--depth=N] [--out=FILE]\n");
    return 2;
  }

  printf("model-checker throughput: %zu nodes, %llu rounds, depth %zu, %llu schedules/point\n\n",
         opt.nodes, static_cast<unsigned long long>(opt.rounds), opt.depth,
         static_cast<unsigned long long>(opt.schedules));

  std::vector<Point> points;

  CheckConfig base;
  base.n_nodes = opt.nodes;
  base.rounds = opt.rounds;
  base.max_choice_points = opt.depth;
  {
    ModelChecker checker(base);
    points.push_back(Measure("exhaustive/delivery", &checker, true, opt.schedules));
  }
  {
    CheckConfig cfg = base;
    cfg.adversary_max_decisions = 6;
    ModelChecker checker(cfg);
    points.push_back(Measure("random/adversary", &checker, false, opt.schedules));
  }
  {
    CheckConfig cfg = base;
    cfg.adversary_max_decisions = 4;
    cfg.max_crash_events = 2;
    ModelChecker checker(cfg);
    points.push_back(Measure("random/adversary+crash", &checker, false, opt.schedules));
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"modelcheck\",\n  \"nodes\": " << opt.nodes
       << ",\n  \"rounds\": " << opt.rounds << ",\n  \"depth\": " << opt.depth
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    json << "    {\"name\": \"" << pt.name << "\", \"schedules\": " << pt.schedules
         << ", \"violations\": " << pt.violations << ", \"incomplete\": " << pt.incomplete
         << ", \"wall_s\": " << pt.wall_s << ", \"schedules_per_sec\": "
         << pt.schedules_per_sec << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out(opt.out, std::ios::binary);
  if (out) {
    out << json.str();
    printf("\nwrote %s\n", opt.out.c_str());
  } else {
    fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  return 0;
}
