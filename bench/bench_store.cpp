// Checkpoint / compaction / fast-sync storage benchmark (DESIGN.md §13):
//
//   $ ./bench/bench_store --rounds=2000 --interval=100 --out=BENCH_store.json
//
// Two identical deployments (same seed, same traffic) are built side by
// side — one with ledger checkpoints + log compaction enabled, one with the
// plain append-only WAL — and four A/B measurements are taken:
//
//   1. cold restart: kill a node, restart it from disk. Checkpointed dir
//      restores from the latest checkpoint (ledger in compacted-prefix
//      mode); plain dir replays the full WAL round by round. The paper-style
//      claim under test: checkpoint restore is >= 5x faster at a >= 2k-round
//      chain.
//   2. new-node join: wipe a node and rejoin fresh. With fast-sync it
//      verifies the certificate chain to the peer checkpoint and installs
//      state; without, it block-catches-up from genesis.
//   3. on-disk bytes: compaction prunes segments below the retained
//      checkpoints; the plain run keeps every byte ever appended.
//   4. bit-identity: both deployments (and every restart path) must land on
//      the same tip hash and account-state fingerprint — the benchmark exits
//      3 on any mismatch, so the speedups can't come from skipped work.
//
// Sim crypto (the paper's replace-crypto-with-sleeps methodology): this
// measures the storage layer, not ed25519.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/sim_harness.h"

using namespace algorand;
using namespace algorand::bench;

namespace {

namespace fs = std::filesystem;

struct Options {
  uint64_t rounds = 2000;
  size_t n_nodes = 6;
  uint64_t interval = 100;  // Checkpoint every N final rounds.
  size_t load = 20;         // Injected tx per round.
  uint64_t block_bytes = 8 << 10;
  uint64_t seed = 1;
  bool help = false;
  std::string out = "BENCH_store.json";
};

bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "nodes", &v)) {
      opt.n_nodes = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "interval", &v)) {
      opt.interval = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "load", &v)) {
      opt.load = static_cast<size_t>(std::stoull(v));
    } else if (ParseFlag(argc, argv, &i, "block-bytes", &v)) {
      opt.block_bytes = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "seed", &v)) {
      opt.seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "out", &v)) {
      opt.out = v;
    } else {
      opt.help = true;
    }
  }
  return opt;
}

std::string HashHex(const Hash256& h) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < 8; ++i) {
    out += kHex[h.data()[i] >> 4];
    out += kHex[h.data()[i] & 0xf];
  }
  return out;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) {
      total += entry.file_size(ec);
    }
  }
  return total;
}

HarnessConfig BaseConfig(const Options& opt, const std::string& dir, bool checkpoints) {
  HarnessConfig cfg;
  cfg.n_nodes = opt.n_nodes;
  cfg.rng_seed = opt.seed;
  cfg.params = ProtocolParams::ScaledCommittees(0.02);
  cfg.params.block_size_bytes = opt.block_bytes;
  cfg.latency = HarnessConfig::Latency::kUniform;
  cfg.use_sim_crypto = true;
  cfg.verify_workers = 0;
  cfg.exec_workers = 0;
  // Consensus stake must dwarf client stake: non-voting weight shrinks
  // expected committee weight below tau and rounds decay into timeout
  // fallbacks (see bench_txpipeline.cpp).
  cfg.stake_per_user = 50'000'000;
  cfg.tx_clients = 16;
  cfg.client_stake = 50'000;
  cfg.tx_load_per_round = opt.load;
  cfg.params.mempool_capacity = 4 * std::max<size_t>(opt.load, 1);
  cfg.data_dir = dir;
  cfg.store_fsync = FsyncPolicy::kBatched;
  cfg.store_background_writer = true;  // The production configuration.
  if (checkpoints) {
    cfg.params.checkpoint_interval = opt.interval;
    cfg.params.fastsync_enabled = true;
  }
  return cfg;
}

struct SideResult {
  double build_wall_seconds = 0;
  uint64_t disk_bytes_node0 = 0;
  double restart_seconds = 0;
  uint64_t restart_base_round = 0;
  double join_wall_seconds = 0;
  double join_sim_seconds = 0;
  uint64_t fastsync_completed = 0;
  uint64_t fastsync_links = 0;
  uint64_t compaction_runs = 0;
  uint64_t compaction_bytes_reclaimed = 0;
  uint64_t checkpoints_written = 0;
  bool safety_ok = false;
  bool converged = true;
  Hash256 tip;
  Hash256 fingerprint;
};

// Builds the chain, then measures (a) cold restart of node 0 from its disk
// state and (b) a wiped fresh rejoin of node 1 to convergence.
SideResult RunSide(const Options& opt, const std::string& dir, bool checkpoints) {
  fs::remove_all(dir);
  HarnessConfig cfg = BaseConfig(opt, dir, checkpoints);
  SideResult res;

  auto t0 = std::chrono::steady_clock::now();
  SimHarness h(cfg);
  h.Start();
  res.converged = h.RunRounds(opt.rounds, Hours(24 * 365));
  auto t1 = std::chrono::steady_clock::now();
  res.build_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.tip = h.node(2).ledger().tip_hash();
  res.fingerprint = h.node(2).ledger().accounts().StateFingerprint();
  res.disk_bytes_node0 = DirBytes(dir + "/node-0");

  // (a) Cold restart: checkpointed side restores from the sidecar,
  // plain side replays the whole WAL. RestartNode wall time is dominated by
  // Node::RestoreFromStore.
  h.KillNode(0);
  auto r0 = std::chrono::steady_clock::now();
  h.RestartNode(0, /*from_snapshot=*/true);
  auto r1 = std::chrono::steady_clock::now();
  res.restart_seconds = std::chrono::duration<double>(r1 - r0).count();
  res.restart_base_round = h.node(0).ledger().base_round();

  // (b) Fresh rejoin: node 1 loses its disk and catches up to the live tip —
  // certificate-chain fast-sync when enabled, full block catch-up otherwise.
  uint64_t target = h.node(2).ledger().chain_length();
  h.KillNode(1);
  auto j0 = std::chrono::steady_clock::now();
  SimTime sim0 = h.sim().now();
  h.RestartNode(1, /*from_snapshot=*/false);
  SimTime deadline = h.sim().now() + Hours(4);
  while (h.node(1).ledger().chain_length() < target && h.sim().now() < deadline) {
    h.sim().RunUntil(h.sim().now() + Seconds(2));
  }
  auto j1 = std::chrono::steady_clock::now();
  res.join_wall_seconds = std::chrono::duration<double>(j1 - j0).count();
  res.join_sim_seconds = ToSeconds(h.sim().now() - sim0);
  res.converged = res.converged && h.node(1).ledger().chain_length() >= target;
  res.fastsync_completed = h.node(1).fastsyncs_completed();

  auto m = h.AggregateMetrics();
  res.fastsync_links = m.counters["catchup.fastsync_links_verified"];
  res.compaction_runs = m.counters["store.compaction_runs"];
  res.compaction_bytes_reclaimed = m.counters["store.compaction_bytes_reclaimed"];
  res.checkpoints_written = m.counters["store.checkpoints_written"];
  res.safety_ok = h.CheckSafety().ok;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (opt.help || opt.rounds == 0 || opt.n_nodes < 3 || opt.interval == 0) {
    printf(
        "usage: bench_store [flags]\n"
        "  --rounds=N       chain length to build per side (default 2000)\n"
        "  --nodes=N        consensus nodes (default 6, min 3)\n"
        "  --interval=N     checkpoint every N final rounds (default 100)\n"
        "  --load=N         injected tx per round (default 20)\n"
        "  --block-bytes=N  block payload size (default 8192)\n"
        "  --seed=N         rng seed (default 1)\n"
        "  --out=FILE       JSON report path (default BENCH_store.json)\n");
    return opt.help ? 1 : 0;
  }

  Banner("store", "checkpoint restart + cert-chain fast-sync vs full WAL replay (DESIGN.md §13)",
         "restart from checkpoint >= 5x faster than full replay at a >= 2k-round chain; "
         "compaction shrinks the on-disk log; all paths land on bit-identical state");

  std::string base = fs::temp_directory_path().string() + "/algorand_bench_store";
  printf("building two %llu-round deployments (%zu nodes, %zu tx/round)...\n",
         static_cast<unsigned long long>(opt.rounds), opt.n_nodes, opt.load);
  SideResult ckpt = RunSide(opt, base + "_ckpt", /*checkpoints=*/true);
  SideResult plain = RunSide(opt, base + "_plain", /*checkpoints=*/false);

  bool identical = ckpt.tip == plain.tip && ckpt.fingerprint == plain.fingerprint;
  double restart_speedup =
      ckpt.restart_seconds > 0 ? plain.restart_seconds / ckpt.restart_seconds : 0;
  double disk_ratio = ckpt.disk_bytes_node0 > 0
                          ? static_cast<double>(plain.disk_bytes_node0) /
                                static_cast<double>(ckpt.disk_bytes_node0)
                          : 0;

  printf("\n%-26s %-14s %-14s\n", "", "checkpointed", "plain-wal");
  Row("%-26s %-14.1f %-14.1f", "build wall (s)", ckpt.build_wall_seconds,
      plain.build_wall_seconds);
  Row("%-26s %-14.4f %-14.4f", "cold restart (s)", ckpt.restart_seconds,
      plain.restart_seconds);
  Row("%-26s %-14llu %-14llu", "restart base round",
      static_cast<unsigned long long>(ckpt.restart_base_round),
      static_cast<unsigned long long>(plain.restart_base_round));
  Row("%-26s %-14.1f %-14.1f", "fresh join wall (s)", ckpt.join_wall_seconds,
      plain.join_wall_seconds);
  Row("%-26s %-14.1f %-14.1f", "fresh join sim (s)", ckpt.join_sim_seconds,
      plain.join_sim_seconds);
  Row("%-26s %-14llu %-14llu", "node-0 disk bytes",
      static_cast<unsigned long long>(ckpt.disk_bytes_node0),
      static_cast<unsigned long long>(plain.disk_bytes_node0));
  Row("%-26s %-14llu %-14s", "checkpoints written",
      static_cast<unsigned long long>(ckpt.checkpoints_written), "-");
  Row("%-26s %-14llu %-14s", "compaction runs",
      static_cast<unsigned long long>(ckpt.compaction_runs), "-");
  Row("%-26s %-14llu %-14s", "bytes reclaimed",
      static_cast<unsigned long long>(ckpt.compaction_bytes_reclaimed), "-");
  Row("%-26s %-14llu %-14llu", "fast-syncs completed",
      static_cast<unsigned long long>(ckpt.fastsync_completed),
      static_cast<unsigned long long>(plain.fastsync_completed));
  printf("\nrestart speedup: %.1fx   disk reduction: %.2fx   bit-identical: %s\n",
         restart_speedup, disk_ratio, identical ? "yes" : "NO");

  char buf[2048];
  snprintf(buf, sizeof(buf),
           "{\n"
           "  \"rounds\": %llu,\n"
           "  \"nodes\": %zu,\n"
           "  \"checkpoint_interval\": %llu,\n"
           "  \"tx_per_round\": %zu,\n"
           "  \"block_bytes\": %llu,\n"
           "  \"seed\": %llu,\n"
           "  \"checkpointed\": {\"build_wall_seconds\": %.2f, \"restart_seconds\": %.4f, "
           "\"restart_base_round\": %llu, \"join_wall_seconds\": %.2f, "
           "\"join_sim_seconds\": %.1f, \"disk_bytes_node0\": %llu, "
           "\"checkpoints_written\": %llu, \"compaction_runs\": %llu, "
           "\"compaction_bytes_reclaimed\": %llu, \"fastsyncs_completed\": %llu, "
           "\"fastsync_links_verified\": %llu, \"tip\": \"%s\", \"fingerprint\": \"%s\", "
           "\"safety_ok\": %s, \"converged\": %s},\n"
           "  \"plain_wal\": {\"build_wall_seconds\": %.2f, \"restart_seconds\": %.4f, "
           "\"restart_base_round\": %llu, \"join_wall_seconds\": %.2f, "
           "\"join_sim_seconds\": %.1f, \"disk_bytes_node0\": %llu, \"tip\": \"%s\", "
           "\"fingerprint\": \"%s\", \"safety_ok\": %s, \"converged\": %s},\n"
           "  \"restart_speedup\": %.2f,\n"
           "  \"disk_reduction\": %.3f,\n"
           "  \"bit_identical\": %s\n"
           "}\n",
           static_cast<unsigned long long>(opt.rounds), opt.n_nodes,
           static_cast<unsigned long long>(opt.interval), opt.load,
           static_cast<unsigned long long>(opt.block_bytes),
           static_cast<unsigned long long>(opt.seed), ckpt.build_wall_seconds,
           ckpt.restart_seconds, static_cast<unsigned long long>(ckpt.restart_base_round),
           ckpt.join_wall_seconds, ckpt.join_sim_seconds,
           static_cast<unsigned long long>(ckpt.disk_bytes_node0),
           static_cast<unsigned long long>(ckpt.checkpoints_written),
           static_cast<unsigned long long>(ckpt.compaction_runs),
           static_cast<unsigned long long>(ckpt.compaction_bytes_reclaimed),
           static_cast<unsigned long long>(ckpt.fastsync_completed),
           static_cast<unsigned long long>(ckpt.fastsync_links), HashHex(ckpt.tip).c_str(),
           HashHex(ckpt.fingerprint).c_str(), ckpt.safety_ok ? "true" : "false",
           ckpt.converged ? "true" : "false", plain.build_wall_seconds,
           plain.restart_seconds, static_cast<unsigned long long>(plain.restart_base_round),
           plain.join_wall_seconds, plain.join_sim_seconds,
           static_cast<unsigned long long>(plain.disk_bytes_node0),
           HashHex(plain.tip).c_str(), HashHex(plain.fingerprint).c_str(),
           plain.safety_ok ? "true" : "false", plain.converged ? "true" : "false",
           restart_speedup, disk_ratio, identical ? "true" : "false");

  std::ofstream out_file(opt.out, std::ios::binary);
  if (out_file) {
    out_file << buf;
    printf("report: %s\n", opt.out.c_str());
  } else {
    fprintf(stderr, "error: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  Note("restart wall time is Node::RestoreFromStore: checkpoint install vs full WAL replay;");
  Note("the bit-identical flag pins that every fast path landed on the replay state exactly");
  if (!identical) {
    fprintf(stderr, "error: checkpointed and plain deployments disagreed on tip/state\n");
    return 3;
  }
  return ckpt.safety_ok && plain.safety_ok && ckpt.converged && plain.converged ? 0 : 2;
}
