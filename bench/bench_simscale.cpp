// Simulator scaling sweep: wall-clock and events/sec as the node count grows,
// with committee sizes fixed (the paper's §8.4 scaling discipline). This is
// the engine benchmark behind the Figure 5/6 reproductions — it measures the
// simulator itself, not the protocol, so regressions in the event queue,
// message memoization, or sortition cache show up here first.
//
//   $ ./bench/bench_simscale --nodes=100,200,500 --rounds=3 --workers=4 \
//         --out=BENCH_sim.json [--map-queue] [--seed=N]
//
// Each node count runs as an independent share-nothing SimHarness; --workers
// spreads the sweep across threads (results are identical to sequential).
// --map-queue A/Bs the reference std::map event queue against the default
// 4-ary heap. The JSON report records wall seconds, wall seconds per round,
// executed events, and events/sec per sweep point.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

namespace {

struct Options {
  std::vector<size_t> nodes = {100, 200, 500};
  uint64_t rounds = 3;
  size_t workers = 1;
  uint64_t seed = 1;
  bool map_queue = false;
  bool help = false;
  std::string out = "BENCH_sim.json";
  // Durable-store A/B: every node writes its disk log under DIR/n<count>/.
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kBatched;
};

bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

std::vector<size_t> ParseNodeList(const std::string& spec) {
  std::vector<size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<size_t>(std::stoul(item)));
    }
  }
  return out;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, &i, "nodes", &v)) {
      opt.nodes = ParseNodeList(v);
    } else if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "workers", &v)) {
      opt.workers = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "seed", &v)) {
      opt.seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "out", &v)) {
      opt.out = v;
    } else if (ParseFlag(argc, argv, &i, "data-dir", &v)) {
      opt.data_dir = v;
    } else if (ParseFlag(argc, argv, &i, "fsync", &v)) {
      if (auto policy = ParseFsyncPolicy(v)) {
        opt.fsync = *policy;
      } else {
        opt.help = true;
      }
    } else if (strcmp(argv[i], "--map-queue") == 0) {
      opt.map_queue = true;
    } else {
      opt.help = true;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (opt.help || opt.nodes.empty()) {
    printf(
        "usage: bench_simscale [flags]\n"
        "  --nodes=A,B,C   node counts to sweep (default 100,200,500)\n"
        "  --rounds=N      rounds per point (default 3)\n"
        "  --workers=N     sweep points run on N threads (default 1)\n"
        "  --seed=N        rng seed (default 1)\n"
        "  --map-queue     use the reference std::map event queue\n"
        "  --data-dir=DIR  durable block store per node under DIR (A/B the\n"
        "                  cost of disk logging on the sim hot path)\n"
        "  --fsync=POLICY  store fsync policy: every_round, batched, off\n"
        "  --out=FILE      JSON report path (default BENCH_sim.json)\n");
    return opt.help ? 1 : 0;
  }

  Banner("simscale", "simulator scaling (engine benchmark, not a paper figure)",
         "events/sec roughly flat as node count grows; wall-clock ~linear in events");

  std::vector<RunSpec> specs;
  for (size_t n : opt.nodes) {
    RunSpec spec;
    spec.n_nodes = n;
    spec.rounds = opt.rounds;
    spec.seed = opt.seed;
    spec.use_map_event_queue = opt.map_queue;
    if (!opt.data_dir.empty()) {
      spec.data_dir = opt.data_dir + "/n" + std::to_string(n);
      spec.store_fsync = opt.fsync;
    }
    specs.push_back(spec);
  }
  std::vector<RunResult> results = RunScenariosParallel(specs, opt.workers);

  printf("%-8s %-10s %-12s %-12s %-12s %-10s %-8s\n", "nodes", "wall(s)", "wall/round",
         "events", "events/sec", "med-lat(s)", "safety");
  std::string json = "{\n  \"queue\": \"";
  json += opt.map_queue ? "map" : "heap";
  json += "\",\n  \"store\": \"";
  json += opt.data_dir.empty() ? "none" : FsyncPolicyName(opt.fsync);
  json += "\",\n  \"rounds\": " + std::to_string(opt.rounds);
  json += ",\n  \"seed\": " + std::to_string(opt.seed);
  json += ",\n  \"workers\": " + std::to_string(opt.workers);
  json += ",\n  \"points\": [\n";
  bool all_ok = true;
  for (size_t i = 0; i < specs.size(); ++i) {
    const RunResult& r = results[i];
    double per_round = r.wall_seconds / static_cast<double>(opt.rounds);
    double eps = r.wall_seconds > 0 ? static_cast<double>(r.executed_events) / r.wall_seconds : 0;
    all_ok = all_ok && r.completed && r.safety_ok;
    printf("%-8zu %-10.2f %-12.2f %-12llu %-12.0f %-10.1f %-8s%s\n", specs[i].n_nodes,
           r.wall_seconds, per_round, static_cast<unsigned long long>(r.executed_events), eps,
           r.latency.median, r.safety_ok ? "ok" : "VIOLATED",
           r.completed ? "" : "  [incomplete]");
    char buf[512];
    snprintf(buf, sizeof(buf),
             "    {\"nodes\": %zu, \"wall_seconds\": %.3f, \"wall_seconds_per_round\": %.3f, "
             "\"executed_events\": %llu, \"events_per_sec\": %.0f, "
             "\"median_round_latency_s\": %.2f, \"completed\": %s, \"safety_ok\": %s}%s\n",
             specs[i].n_nodes, r.wall_seconds, per_round,
             static_cast<unsigned long long>(r.executed_events), eps, r.latency.median,
             r.completed ? "true" : "false", r.safety_ok ? "true" : "false",
             i + 1 < specs.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream out(opt.out, std::ios::binary);
  if (out) {
    out << json;
    printf("report: %s\n", opt.out.c_str());
  } else {
    fprintf(stderr, "error: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  Note("sim crypto + verification cache (the paper's methodology); committee sizes fixed");
  Note("--map-queue reruns the sweep on the reference std::map event queue for A/B");
  return all_ok ? 0 : 2;
}
