// Simulator scaling sweep: wall-clock and events/sec as the node count,
// engine worker count, and users-per-node grow, with committee sizes fixed
// (the paper's §8.4 scaling discipline). This is the engine benchmark behind
// the Figure 5/6 reproductions — it measures the simulator itself, not the
// protocol, so regressions in the event queue, message memoization, the
// parallel engine, or the sortition cache show up here first.
//
//   $ ./bench/bench_simscale --nodes=100,200,500 --rounds=3 --workers=1,2,4 \
//         --users-per-group=500 --out=BENCH_sim.json [--map-queue] [--seed=N]
//
// --workers sweeps ENGINE worker counts: 0 = the classic sequential engine,
// N >= 1 = the conservative-lookahead parallel engine with N shard workers
// (every N >= 1 produces bit-identical executed_events — the report calls
// out any mismatch). Each (nodes x workers) pair is one sweep point.
// --users-per-group=K makes every node host K users' stake (aggregate-user
// modeling; 1000 nodes x 500 = the paper's 500k-user configuration).
// --sweep-threads spreads independent sweep points across OS threads
// (share-nothing; results identical to sequential). --map-queue A/Bs the
// reference std::map event queue against the default 4-ary heap. The JSON
// report records wall seconds, wall seconds per round, executed events, and
// events/sec per sweep point.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/sim_runner.h"

using namespace algorand;
using namespace algorand::bench;

namespace {

struct Options {
  std::vector<size_t> nodes = {100, 200, 500};
  uint64_t rounds = 3;
  std::vector<size_t> workers = {0};  // Engine workers; 0 = sequential.
  size_t users_per_group = 1;
  size_t sweep_threads = 1;
  uint64_t seed = 1;
  bool map_queue = false;
  bool help = false;
  std::string out = "BENCH_sim.json";
  // Durable-store A/B: every node writes its disk log under DIR/n<count>/.
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kBatched;
};

bool ParseFlag(int argc, char** argv, int* i, const char* name, std::string* value) {
  const char* arg = argv[*i];
  std::string prefix = std::string("--") + name;
  if (strncmp(arg, prefix.c_str(), prefix.size()) != 0) {
    return false;
  }
  const char* rest = arg + prefix.size();
  if (*rest == '=') {
    *value = rest + 1;
    return true;
  }
  if (*rest == '\0' && *i + 1 < argc) {
    *value = argv[*i + 1];
    ++*i;
    return true;
  }
  return false;
}

std::vector<size_t> ParseSizeList(const std::string& spec) {
  std::vector<size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(static_cast<size_t>(std::stoul(item)));
    }
  }
  return out;
}

Options Parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, &i, "nodes", &v)) {
      opt.nodes = ParseSizeList(v);
    } else if (ParseFlag(argc, argv, &i, "rounds", &v)) {
      opt.rounds = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "workers", &v)) {
      opt.workers = ParseSizeList(v);
    } else if (ParseFlag(argc, argv, &i, "users-per-group", &v)) {
      opt.users_per_group = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "sweep-threads", &v)) {
      opt.sweep_threads = static_cast<size_t>(std::stoul(v));
    } else if (ParseFlag(argc, argv, &i, "seed", &v)) {
      opt.seed = std::stoull(v);
    } else if (ParseFlag(argc, argv, &i, "out", &v)) {
      opt.out = v;
    } else if (ParseFlag(argc, argv, &i, "data-dir", &v)) {
      opt.data_dir = v;
    } else if (ParseFlag(argc, argv, &i, "fsync", &v)) {
      if (auto policy = ParseFsyncPolicy(v)) {
        opt.fsync = *policy;
      } else {
        opt.help = true;
      }
    } else if (strcmp(argv[i], "--map-queue") == 0) {
      opt.map_queue = true;
    } else {
      opt.help = true;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = Parse(argc, argv);
  if (opt.help || opt.nodes.empty() || opt.workers.empty() || opt.users_per_group == 0) {
    printf(
        "usage: bench_simscale [flags]\n"
        "  --nodes=A,B,C        node counts to sweep (default 100,200,500)\n"
        "  --rounds=N           rounds per point (default 3)\n"
        "  --workers=A,B,C      engine worker counts to sweep: 0 = sequential\n"
        "                       engine, N>=1 = parallel engine with N shards\n"
        "                       (default 0)\n"
        "  --users-per-group=K  users hosted per node (aggregate-user\n"
        "                       modeling; total users = nodes*K; default 1)\n"
        "  --sweep-threads=N    independent sweep points run on N OS threads\n"
        "                       (default 1)\n"
        "  --seed=N             rng seed (default 1)\n"
        "  --map-queue          use the reference std::map event queue\n"
        "                       (sequential engine only)\n"
        "  --data-dir=DIR       durable block store per node under DIR (A/B\n"
        "                       the cost of disk logging on the sim hot path)\n"
        "  --fsync=POLICY       store fsync policy: every_round, batched, off\n"
        "  --out=FILE           JSON report path (default BENCH_sim.json)\n");
    return opt.help ? 1 : 0;
  }

  Banner("simscale", "simulator scaling (engine benchmark, not a paper figure)",
         "events/sec roughly flat as node count grows; wall-clock ~linear in events");

  std::vector<RunSpec> specs;
  for (size_t n : opt.nodes) {
    for (size_t w : opt.workers) {
      RunSpec spec;
      spec.n_nodes = n;
      spec.rounds = opt.rounds;
      spec.seed = opt.seed;
      spec.use_map_event_queue = opt.map_queue;
      spec.sim_workers = w;
      spec.users_per_group = opt.users_per_group;
      if (!opt.data_dir.empty()) {
        spec.data_dir = opt.data_dir + "/n" + std::to_string(n) + "w" + std::to_string(w);
        spec.store_fsync = opt.fsync;
      }
      specs.push_back(spec);
    }
  }
  std::vector<RunResult> results = RunScenariosParallel(specs, opt.sweep_threads);

  printf("%-8s %-8s %-10s %-10s %-12s %-12s %-12s %-10s %-8s\n", "nodes", "workers", "users",
         "wall(s)", "wall/round", "events", "events/sec", "med-lat(s)", "safety");
  std::string json = "{\n  \"queue\": \"";
  json += opt.map_queue ? "map" : "heap";
  json += "\",\n  \"store\": \"";
  json += opt.data_dir.empty() ? "none" : FsyncPolicyName(opt.fsync);
  json += "\",\n  \"rounds\": " + std::to_string(opt.rounds);
  json += ",\n  \"seed\": " + std::to_string(opt.seed);
  json += ",\n  \"users_per_group\": " + std::to_string(opt.users_per_group);
  json += ",\n  \"points\": [\n";
  bool all_ok = true;
  // Parallel-engine determinism cross-check: every worker count >= 1 at one
  // node count must execute exactly the same number of events.
  std::map<size_t, uint64_t> parallel_events_by_nodes;
  bool determinism_ok = true;
  for (size_t i = 0; i < specs.size(); ++i) {
    const RunResult& r = results[i];
    const size_t users = specs[i].n_nodes * specs[i].users_per_group;
    double per_round = r.wall_seconds / static_cast<double>(opt.rounds);
    double eps = r.wall_seconds > 0 ? static_cast<double>(r.executed_events) / r.wall_seconds : 0;
    all_ok = all_ok && r.completed && r.safety_ok;
    if (specs[i].sim_workers >= 1) {
      auto [it, inserted] =
          parallel_events_by_nodes.emplace(specs[i].n_nodes, r.executed_events);
      if (!inserted && it->second != r.executed_events) {
        determinism_ok = false;
        fprintf(stderr,
                "DETERMINISM MISMATCH: nodes=%zu workers=%zu executed %llu events, expected "
                "%llu\n",
                specs[i].n_nodes, specs[i].sim_workers,
                static_cast<unsigned long long>(r.executed_events),
                static_cast<unsigned long long>(it->second));
      }
    }
    printf("%-8zu %-8zu %-10zu %-10.2f %-12.2f %-12llu %-12.0f %-10.1f %-8s%s\n",
           specs[i].n_nodes, specs[i].sim_workers, users, r.wall_seconds, per_round,
           static_cast<unsigned long long>(r.executed_events), eps, r.latency.median,
           r.safety_ok ? "ok" : "VIOLATED", r.completed ? "" : "  [incomplete]");
    char buf[512];
    snprintf(buf, sizeof(buf),
             "    {\"nodes\": %zu, \"workers\": %zu, \"users\": %zu, \"wall_seconds\": %.3f, "
             "\"wall_seconds_per_round\": %.3f, \"executed_events\": %llu, "
             "\"events_per_sec\": %.0f, \"median_round_latency_s\": %.2f, \"completed\": %s, "
             "\"safety_ok\": %s}%s\n",
             specs[i].n_nodes, specs[i].sim_workers, users, r.wall_seconds, per_round,
             static_cast<unsigned long long>(r.executed_events), eps, r.latency.median,
             r.completed ? "true" : "false", r.safety_ok ? "true" : "false",
             i + 1 < specs.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"parallel_event_counts_identical\": ";
  json += determinism_ok ? "true" : "false";
  json += "\n}\n";

  std::ofstream out(opt.out, std::ios::binary);
  if (out) {
    out << json;
    printf("report: %s\n", opt.out.c_str());
  } else {
    fprintf(stderr, "error: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  Note("sim crypto + verification cache (the paper's methodology); committee sizes fixed");
  Note("--map-queue reruns the sweep on the reference std::map event queue for A/B");
  if (!determinism_ok) {
    fprintf(stderr, "error: parallel worker counts disagreed on executed_events\n");
    return 3;
  }
  return all_ok ? 0 : 2;
}
