file(REMOVE_RECURSE
  "CMakeFiles/algorand_common.dir/bytes.cpp.o"
  "CMakeFiles/algorand_common.dir/bytes.cpp.o.d"
  "CMakeFiles/algorand_common.dir/hex.cpp.o"
  "CMakeFiles/algorand_common.dir/hex.cpp.o.d"
  "CMakeFiles/algorand_common.dir/rng.cpp.o"
  "CMakeFiles/algorand_common.dir/rng.cpp.o.d"
  "CMakeFiles/algorand_common.dir/stats.cpp.o"
  "CMakeFiles/algorand_common.dir/stats.cpp.o.d"
  "libalgorand_common.a"
  "libalgorand_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
