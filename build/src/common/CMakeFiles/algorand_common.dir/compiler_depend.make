# Empty compiler generated dependencies file for algorand_common.
# This may be replaced when dependencies are built.
