file(REMOVE_RECURSE
  "libalgorand_common.a"
)
