# Empty dependencies file for algorand_ledger.
# This may be replaced when dependencies are built.
