file(REMOVE_RECURSE
  "CMakeFiles/algorand_ledger.dir/account_table.cpp.o"
  "CMakeFiles/algorand_ledger.dir/account_table.cpp.o.d"
  "CMakeFiles/algorand_ledger.dir/block.cpp.o"
  "CMakeFiles/algorand_ledger.dir/block.cpp.o.d"
  "CMakeFiles/algorand_ledger.dir/ledger.cpp.o"
  "CMakeFiles/algorand_ledger.dir/ledger.cpp.o.d"
  "CMakeFiles/algorand_ledger.dir/transaction.cpp.o"
  "CMakeFiles/algorand_ledger.dir/transaction.cpp.o.d"
  "libalgorand_ledger.a"
  "libalgorand_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
