file(REMOVE_RECURSE
  "libalgorand_ledger.a"
)
