# Empty compiler generated dependencies file for algorand_baseline.
# This may be replaced when dependencies are built.
