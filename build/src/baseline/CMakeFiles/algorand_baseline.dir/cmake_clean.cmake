file(REMOVE_RECURSE
  "CMakeFiles/algorand_baseline.dir/nakamoto.cpp.o"
  "CMakeFiles/algorand_baseline.dir/nakamoto.cpp.o.d"
  "libalgorand_baseline.a"
  "libalgorand_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
