file(REMOVE_RECURSE
  "libalgorand_baseline.a"
)
