file(REMOVE_RECURSE
  "libalgorand_core.a"
)
