# Empty compiler generated dependencies file for algorand_core.
# This may be replaced when dependencies are built.
