file(REMOVE_RECURSE
  "CMakeFiles/algorand_core.dir/adversary_nodes.cpp.o"
  "CMakeFiles/algorand_core.dir/adversary_nodes.cpp.o.d"
  "CMakeFiles/algorand_core.dir/ba_star.cpp.o"
  "CMakeFiles/algorand_core.dir/ba_star.cpp.o.d"
  "CMakeFiles/algorand_core.dir/catchup.cpp.o"
  "CMakeFiles/algorand_core.dir/catchup.cpp.o.d"
  "CMakeFiles/algorand_core.dir/certificate.cpp.o"
  "CMakeFiles/algorand_core.dir/certificate.cpp.o.d"
  "CMakeFiles/algorand_core.dir/committee_analysis.cpp.o"
  "CMakeFiles/algorand_core.dir/committee_analysis.cpp.o.d"
  "CMakeFiles/algorand_core.dir/messages.cpp.o"
  "CMakeFiles/algorand_core.dir/messages.cpp.o.d"
  "CMakeFiles/algorand_core.dir/node.cpp.o"
  "CMakeFiles/algorand_core.dir/node.cpp.o.d"
  "CMakeFiles/algorand_core.dir/params.cpp.o"
  "CMakeFiles/algorand_core.dir/params.cpp.o.d"
  "CMakeFiles/algorand_core.dir/sim_harness.cpp.o"
  "CMakeFiles/algorand_core.dir/sim_harness.cpp.o.d"
  "CMakeFiles/algorand_core.dir/sortition.cpp.o"
  "CMakeFiles/algorand_core.dir/sortition.cpp.o.d"
  "CMakeFiles/algorand_core.dir/vote_counter.cpp.o"
  "CMakeFiles/algorand_core.dir/vote_counter.cpp.o.d"
  "CMakeFiles/algorand_core.dir/wire_codec.cpp.o"
  "CMakeFiles/algorand_core.dir/wire_codec.cpp.o.d"
  "libalgorand_core.a"
  "libalgorand_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
