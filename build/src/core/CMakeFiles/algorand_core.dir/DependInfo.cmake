
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversary_nodes.cpp" "src/core/CMakeFiles/algorand_core.dir/adversary_nodes.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/adversary_nodes.cpp.o.d"
  "/root/repo/src/core/ba_star.cpp" "src/core/CMakeFiles/algorand_core.dir/ba_star.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/ba_star.cpp.o.d"
  "/root/repo/src/core/catchup.cpp" "src/core/CMakeFiles/algorand_core.dir/catchup.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/catchup.cpp.o.d"
  "/root/repo/src/core/certificate.cpp" "src/core/CMakeFiles/algorand_core.dir/certificate.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/certificate.cpp.o.d"
  "/root/repo/src/core/committee_analysis.cpp" "src/core/CMakeFiles/algorand_core.dir/committee_analysis.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/committee_analysis.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/algorand_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/algorand_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/node.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/algorand_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/params.cpp.o.d"
  "/root/repo/src/core/sim_harness.cpp" "src/core/CMakeFiles/algorand_core.dir/sim_harness.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/sim_harness.cpp.o.d"
  "/root/repo/src/core/sortition.cpp" "src/core/CMakeFiles/algorand_core.dir/sortition.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/sortition.cpp.o.d"
  "/root/repo/src/core/vote_counter.cpp" "src/core/CMakeFiles/algorand_core.dir/vote_counter.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/vote_counter.cpp.o.d"
  "/root/repo/src/core/wire_codec.cpp" "src/core/CMakeFiles/algorand_core.dir/wire_codec.cpp.o" "gcc" "src/core/CMakeFiles/algorand_core.dir/wire_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/algorand_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/algorand_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/algorand_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/algorand_netsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
