file(REMOVE_RECURSE
  "libalgorand_tcp.a"
)
