file(REMOVE_RECURSE
  "CMakeFiles/algorand_tcp.dir/event_loop.cpp.o"
  "CMakeFiles/algorand_tcp.dir/event_loop.cpp.o.d"
  "CMakeFiles/algorand_tcp.dir/framing.cpp.o"
  "CMakeFiles/algorand_tcp.dir/framing.cpp.o.d"
  "CMakeFiles/algorand_tcp.dir/local_cluster.cpp.o"
  "CMakeFiles/algorand_tcp.dir/local_cluster.cpp.o.d"
  "CMakeFiles/algorand_tcp.dir/tcp_transport.cpp.o"
  "CMakeFiles/algorand_tcp.dir/tcp_transport.cpp.o.d"
  "libalgorand_tcp.a"
  "libalgorand_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
