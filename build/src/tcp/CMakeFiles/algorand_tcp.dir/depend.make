# Empty dependencies file for algorand_tcp.
# This may be replaced when dependencies are built.
