file(REMOVE_RECURSE
  "libalgorand_netsim.a"
)
