# Empty compiler generated dependencies file for algorand_netsim.
# This may be replaced when dependencies are built.
