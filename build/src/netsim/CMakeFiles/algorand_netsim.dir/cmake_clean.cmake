file(REMOVE_RECURSE
  "CMakeFiles/algorand_netsim.dir/gossip.cpp.o"
  "CMakeFiles/algorand_netsim.dir/gossip.cpp.o.d"
  "CMakeFiles/algorand_netsim.dir/latency.cpp.o"
  "CMakeFiles/algorand_netsim.dir/latency.cpp.o.d"
  "CMakeFiles/algorand_netsim.dir/network.cpp.o"
  "CMakeFiles/algorand_netsim.dir/network.cpp.o.d"
  "CMakeFiles/algorand_netsim.dir/simulation.cpp.o"
  "CMakeFiles/algorand_netsim.dir/simulation.cpp.o.d"
  "libalgorand_netsim.a"
  "libalgorand_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
