file(REMOVE_RECURSE
  "CMakeFiles/algorand_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/algorand_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/internal/fe25519.cpp.o"
  "CMakeFiles/algorand_crypto.dir/internal/fe25519.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/internal/ge25519.cpp.o"
  "CMakeFiles/algorand_crypto.dir/internal/ge25519.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/internal/sc25519.cpp.o"
  "CMakeFiles/algorand_crypto.dir/internal/sc25519.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/internal/u256.cpp.o"
  "CMakeFiles/algorand_crypto.dir/internal/u256.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/sha256.cpp.o"
  "CMakeFiles/algorand_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/sha512.cpp.o"
  "CMakeFiles/algorand_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/signer.cpp.o"
  "CMakeFiles/algorand_crypto.dir/signer.cpp.o.d"
  "CMakeFiles/algorand_crypto.dir/vrf.cpp.o"
  "CMakeFiles/algorand_crypto.dir/vrf.cpp.o.d"
  "libalgorand_crypto.a"
  "libalgorand_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorand_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
