# Empty compiler generated dependencies file for algorand_crypto.
# This may be replaced when dependencies are built.
