
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/ed25519.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/ed25519.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/crypto/internal/fe25519.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/fe25519.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/fe25519.cpp.o.d"
  "/root/repo/src/crypto/internal/ge25519.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/ge25519.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/ge25519.cpp.o.d"
  "/root/repo/src/crypto/internal/sc25519.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/sc25519.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/sc25519.cpp.o.d"
  "/root/repo/src/crypto/internal/u256.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/u256.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/internal/u256.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/crypto/signer.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/signer.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/signer.cpp.o.d"
  "/root/repo/src/crypto/vrf.cpp" "src/crypto/CMakeFiles/algorand_crypto.dir/vrf.cpp.o" "gcc" "src/crypto/CMakeFiles/algorand_crypto.dir/vrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/algorand_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
