file(REMOVE_RECURSE
  "libalgorand_crypto.a"
)
