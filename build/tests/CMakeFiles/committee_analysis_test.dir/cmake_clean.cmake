file(REMOVE_RECURSE
  "CMakeFiles/committee_analysis_test.dir/committee_analysis_test.cpp.o"
  "CMakeFiles/committee_analysis_test.dir/committee_analysis_test.cpp.o.d"
  "committee_analysis_test"
  "committee_analysis_test.pdb"
  "committee_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/committee_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
