# Empty dependencies file for committee_analysis_test.
# This may be replaced when dependencies are built.
