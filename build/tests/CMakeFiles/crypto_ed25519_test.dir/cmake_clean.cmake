file(REMOVE_RECURSE
  "CMakeFiles/crypto_ed25519_test.dir/crypto_ed25519_test.cpp.o"
  "CMakeFiles/crypto_ed25519_test.dir/crypto_ed25519_test.cpp.o.d"
  "crypto_ed25519_test"
  "crypto_ed25519_test.pdb"
  "crypto_ed25519_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_ed25519_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
