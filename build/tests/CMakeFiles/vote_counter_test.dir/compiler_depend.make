# Empty compiler generated dependencies file for vote_counter_test.
# This may be replaced when dependencies are built.
