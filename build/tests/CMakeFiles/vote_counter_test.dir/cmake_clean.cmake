file(REMOVE_RECURSE
  "CMakeFiles/vote_counter_test.dir/vote_counter_test.cpp.o"
  "CMakeFiles/vote_counter_test.dir/vote_counter_test.cpp.o.d"
  "vote_counter_test"
  "vote_counter_test.pdb"
  "vote_counter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vote_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
