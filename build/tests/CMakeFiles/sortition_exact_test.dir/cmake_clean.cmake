file(REMOVE_RECURSE
  "CMakeFiles/sortition_exact_test.dir/sortition_exact_test.cpp.o"
  "CMakeFiles/sortition_exact_test.dir/sortition_exact_test.cpp.o.d"
  "sortition_exact_test"
  "sortition_exact_test.pdb"
  "sortition_exact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sortition_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
