# Empty dependencies file for sortition_exact_test.
# This may be replaced when dependencies are built.
