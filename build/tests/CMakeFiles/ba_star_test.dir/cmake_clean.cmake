file(REMOVE_RECURSE
  "CMakeFiles/ba_star_test.dir/ba_star_test.cpp.o"
  "CMakeFiles/ba_star_test.dir/ba_star_test.cpp.o.d"
  "ba_star_test"
  "ba_star_test.pdb"
  "ba_star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
