# Empty dependencies file for ba_star_test.
# This may be replaced when dependencies are built.
