file(REMOVE_RECURSE
  "CMakeFiles/crypto_field_test.dir/crypto_field_test.cpp.o"
  "CMakeFiles/crypto_field_test.dir/crypto_field_test.cpp.o.d"
  "crypto_field_test"
  "crypto_field_test.pdb"
  "crypto_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
