# Empty compiler generated dependencies file for crypto_vrf_test.
# This may be replaced when dependencies are built.
