file(REMOVE_RECURSE
  "CMakeFiles/crypto_vrf_test.dir/crypto_vrf_test.cpp.o"
  "CMakeFiles/crypto_vrf_test.dir/crypto_vrf_test.cpp.o.d"
  "crypto_vrf_test"
  "crypto_vrf_test.pdb"
  "crypto_vrf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_vrf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
