file(REMOVE_RECURSE
  "CMakeFiles/consensus_integration_test.dir/consensus_integration_test.cpp.o"
  "CMakeFiles/consensus_integration_test.dir/consensus_integration_test.cpp.o.d"
  "consensus_integration_test"
  "consensus_integration_test.pdb"
  "consensus_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
