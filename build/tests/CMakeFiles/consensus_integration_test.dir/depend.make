# Empty dependencies file for consensus_integration_test.
# This may be replaced when dependencies are built.
