# Empty dependencies file for crypto_sha_test.
# This may be replaced when dependencies are built.
