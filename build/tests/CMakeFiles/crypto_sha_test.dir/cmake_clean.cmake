file(REMOVE_RECURSE
  "CMakeFiles/crypto_sha_test.dir/crypto_sha_test.cpp.o"
  "CMakeFiles/crypto_sha_test.dir/crypto_sha_test.cpp.o.d"
  "crypto_sha_test"
  "crypto_sha_test.pdb"
  "crypto_sha_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_sha_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
