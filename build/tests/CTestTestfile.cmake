# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_sha_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_field_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_ed25519_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_vrf_test[1]_include.cmake")
include("/root/repo/build/tests/sortition_test[1]_include.cmake")
include("/root/repo/build/tests/committee_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/vote_counter_test[1]_include.cmake")
include("/root/repo/build/tests/ba_star_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_integration_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/sortition_exact_test[1]_include.cmake")
include("/root/repo/build/tests/certificate_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
