file(REMOVE_RECURSE
  "CMakeFiles/bench_costs_storage.dir/bench_costs_storage.cpp.o"
  "CMakeFiles/bench_costs_storage.dir/bench_costs_storage.cpp.o.d"
  "bench_costs_storage"
  "bench_costs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
