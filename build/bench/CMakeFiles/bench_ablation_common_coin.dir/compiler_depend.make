# Empty compiler generated dependencies file for bench_ablation_common_coin.
# This may be replaced when dependencies are built.
