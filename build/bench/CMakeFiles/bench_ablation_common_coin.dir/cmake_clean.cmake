file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_common_coin.dir/bench_ablation_common_coin.cpp.o"
  "CMakeFiles/bench_ablation_common_coin.dir/bench_ablation_common_coin.cpp.o.d"
  "bench_ablation_common_coin"
  "bench_ablation_common_coin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_common_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
