file(REMOVE_RECURSE
  "CMakeFiles/bench_costs_micro.dir/bench_costs_micro.cpp.o"
  "CMakeFiles/bench_costs_micro.dir/bench_costs_micro.cpp.o.d"
  "bench_costs_micro"
  "bench_costs_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costs_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
