# Empty dependencies file for bench_costs_micro.
# This may be replaced when dependencies are built.
