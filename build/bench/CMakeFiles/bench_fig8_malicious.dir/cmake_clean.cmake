file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_malicious.dir/bench_fig8_malicious.cpp.o"
  "CMakeFiles/bench_fig8_malicious.dir/bench_fig8_malicious.cpp.o.d"
  "bench_fig8_malicious"
  "bench_fig8_malicious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_malicious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
