# Empty dependencies file for bench_fig8_malicious.
# This may be replaced when dependencies are built.
