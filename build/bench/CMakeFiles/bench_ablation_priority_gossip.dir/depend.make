# Empty dependencies file for bench_ablation_priority_gossip.
# This may be replaced when dependencies are built.
