file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_latency_users.dir/bench_fig5_latency_users.cpp.o"
  "CMakeFiles/bench_fig5_latency_users.dir/bench_fig5_latency_users.cpp.o.d"
  "bench_fig5_latency_users"
  "bench_fig5_latency_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_latency_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
