# Empty dependencies file for bench_fig3_committee_size.
# This may be replaced when dependencies are built.
