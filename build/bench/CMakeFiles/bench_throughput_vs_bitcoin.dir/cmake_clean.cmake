file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput_vs_bitcoin.dir/bench_throughput_vs_bitcoin.cpp.o"
  "CMakeFiles/bench_throughput_vs_bitcoin.dir/bench_throughput_vs_bitcoin.cpp.o.d"
  "bench_throughput_vs_bitcoin"
  "bench_throughput_vs_bitcoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput_vs_bitcoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
