# Empty compiler generated dependencies file for bench_throughput_vs_bitcoin.
# This may be replaced when dependencies are built.
