# Empty dependencies file for bench_fig4_parameters.
# This may be replaced when dependencies are built.
